/**
 * @file
 * Hot-path benchmark: times the compute-heavy loops of the toolchain
 * -- mixed-radix statevector gate application, one GRAPE gradient
 * iteration (plus the per-segment fan-out at 2/4/8 lanes), the
 * Padé-13 vs Taylor family exponential, SWAP routing over the
 * expanded graph, full mapping+routing of the deep QAOA/heavy-hex
 * workload, the exhaustive strategy's candidate-pair sweep on
 * heavyHex65 (serial vs thread-pool fan-out at 2/4/8 lanes), the
 * evaluation-sweep cell fan-out at 1/2/4/8 lanes, the
 * CompilerService request path (cold vs warm-memo-cache batch
 * throughput at 1/2/4/8 lanes), the template tier (cold full
 * compiles vs parameter rebinds across a 20-point QAOA-40/heavyHex65
 * angle grid at 1/2/4/8 lanes), and the persistence tier (cold
 * compiles vs a disk-warm restart vs warm memo over the same request
 * catalog), and the device registry (strategy x zoo-device sweep via
 * CompileRequest::forDevice, with per-device timings and a totalEps
 * results table) -- against the retained
 * naive/uncached/serial reference paths in the same binary,
 * and emits machine-readable JSON with a "host" metadata object
 * (nproc, QOMPRESS_THREADS, build type) so snapshots from different
 * machines stay interpretable (the BENCH_*.json trajectory; compare
 * runs with tools/bench_diff.py --regress-threshold).
 *
 * Flags:
 *   --check      differential mode: assert optimized kernels agree
 *                with references (1e-10), that a warm serial GRAPE
 *                gradient step performs zero heap allocations (and a
 *                warm pooled one performs zero *per lane*), that the
 *                Padé-13 family exponential matches the Taylor
 *                reference to 1e-12 and beats it by >= 1.15x, that
 *                cached (partial-invalidation) and uncached
 *                mapping+routing emit identical circuits, that
 *                the exhaustive search, the eval sweep, and the GRAPE
 *                gradient produce bit-identical results at every lane
 *                count, and that CompilerService requests are
 *                bit-identical to direct strategy compiles at every
 *                lane count with warm (memoized) batches beating cold
 *                ones by >= the memo cache's expected margin, and that
 *                template rebinds are bit-identical to full compiles
 *                of the same angle-grid instances while beating them
 *                by >= the rebind margin, and that a disk-warm
 *                restart decodes artifacts bit-identical to direct
 *                compiles while serving the catalog >= the
 *                persistence margin faster than cold compiles, and
 *                that registry-resolved device compiles are
 *                bit-identical to direct compiles on the registry
 *                topology, a neutral uniform calibration is
 *                bit-identical to no calibration, and a calibration
 *                install re-keys exactly its device (stale miss,
 *                fresh hit, unrelated warm hit, counter partition
 *                intact); exits nonzero on violation.
 *                Registered under ctest label "bench".
 *   --quick      smaller repetition counts.
 *   --out=FILE   also write the JSON to FILE.
 */

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "circuits/bv.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "circuits/registry.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "compiler/pipeline.hh"
#include "eval/sweep.hh"
#include "ir/passes.hh"
#include "pulse/grape.hh"
#include "pulse/hamiltonian.hh"
#include "pulse/targets.hh"
#include "service/compiler_service.hh"
#include "sim/statevector.hh"
#include "strategies/awe.hh"
#include "strategies/exhaustive.hh"

// ------------------------------------------------------------------
// Allocation-counting hook: every global operator new bumps a
// thread-local counter. Thread-local rather than a process-wide
// atomic for two reasons: once the thread pool exists in-process,
// worker threads may allocate (queue nodes, lane contexts)
// concurrently with the GRAPE zero-alloc window and a global counter
// would blame those allocations on the GRAPE step; and a shared
// atomic would put a contended RMW into every allocation during the
// multithreaded exhaustive sections this bench times.
// ------------------------------------------------------------------

static thread_local std::uint64_t t_alloc_count = 0;

// GCC cannot see that the replaced operator new below is malloc-backed
// and (once the counters perturb inlining) flags the free() in the
// matching operator delete as a mismatched pair; it is not.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    ++t_alloc_count;
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    ++t_alloc_count;
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace qompress;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct SimResult
{
    double optimized_ms;
    double naive_ms;
    double max_diff;
};

SimResult
benchStatevector(int reps)
{
    Rng rng(12345);
    const std::vector<int> dims = {4, 2, 4, 2, 4, 2, 4, 2, 4, 2};
    const auto gates = bench::mixedGateWorkload(dims, rng);

    // Start both kernels from the same random product state.
    MixedRadixState fast = bench::randomState(dims, rng);
    MixedRadixState slow = fast;

    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r)
        for (const auto &g : gates)
            fast.applyUnitary(g.units, g.u);
    const double opt_s = secondsSince(t0);

    const auto t1 = Clock::now();
    for (int r = 0; r < reps; ++r)
        for (const auto &g : gates)
            slow.applyUnitaryNaive(g.units, g.u);
    const double naive_s = secondsSince(t1);

    return {1e3 * opt_s / reps, 1e3 * naive_s / reps,
            bench::maxAmpDiff(fast, slow)};
}

struct GrapeBenchResult
{
    double optimized_ms;
    double naive_ms;
    double max_grad_diff;
    std::uint64_t warm_allocs;
};

GrapeBenchResult
benchGrape(int reps)
{
    std::vector<int> dims;
    const CMatrix target = namedTarget("CX2", dims);
    const TransmonSystem system(dims, /*guard_levels=*/1);
    GrapeOptions opts;
    opts.threads = 1; // the serial baseline; lanes timed separately
    GrapeOptimizer grape(system, target, /*duration_ns=*/160.0,
                         /*segments=*/40, opts);

    Rng rng(99);
    std::vector<std::vector<double>> controls(
        grape.numControls(),
        std::vector<double>(grape.segments(), 0.0));
    const double amp = 0.25 * system.maxAmplitude();
    for (auto &row : controls)
        for (auto &v : row)
            v = rng.nextDouble(-amp, amp);

    GrapeWorkspace ws;
    std::vector<std::vector<double>> grad, grad_naive;
    double fid = 0.0, leak = 0.0;

    // Warm-up sizes every workspace buffer; afterwards a gradient
    // step must not touch the heap. Measured on the thread-local
    // counter so concurrent pool-thread allocations cannot leak into
    // the window.
    grape.objectiveAndGradient(controls, grad, fid, leak, ws);
    const std::uint64_t before = t_alloc_count;
    grape.objectiveAndGradient(controls, grad, fid, leak, ws);
    const std::uint64_t warm_allocs = t_alloc_count - before;

    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r)
        grape.objectiveAndGradient(controls, grad, fid, leak, ws);
    const double opt_s = secondsSince(t0);

    const auto t1 = Clock::now();
    for (int r = 0; r < reps; ++r)
        grape.objectiveAndGradientNaive(controls, grad_naive, fid, leak);
    const double naive_s = secondsSince(t1);

    double worst = 0.0;
    for (std::size_t k = 0; k < grad.size(); ++k)
        for (std::size_t j = 0; j < grad[k].size(); ++j)
            worst = std::max(worst,
                             std::abs(grad[k][j] - grad_naive[k][j]));

    return {1e3 * opt_s / reps, 1e3 * naive_s / reps, worst,
            warm_allocs};
}

struct RouteBenchResult
{
    double cached_ms;
    double uncached_ms;
    bool identical;
    std::uint64_t gates;
};

bool
sameGates(const CompiledCircuit &a, const CompiledCircuit &b)
{
    if (a.numGates() != b.numGates())
        return false;
    for (int i = 0; i < a.numGates(); ++i) {
        const PhysGate &x = a.gates()[i];
        const PhysGate &y = b.gates()[i];
        if (x.cls != y.cls || x.slots != y.slots ||
            x.logical != y.logical || x.param != y.param ||
            x.logical2 != y.logical2 || x.param2 != y.param2 ||
            x.sourceGate != y.sourceGate ||
            x.sourceGate2 != y.sourceGate2 ||
            x.isRouting != y.isRouting)
            return false;
    }
    return true;
}

RouteBenchResult
benchRouting(int reps)
{
    const Circuit bv = decomposeToNativeGates(bernsteinVazirani(20));
    const Topology topo = Topology::grid(20);
    const GateLibrary lib;
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, lib);
    const InteractionModel im(bv);

    MapperOptions mopts;
    const Layout initial = mapCircuit(bv, im, cost, mopts);

    RouterOptions cached_opts;
    cached_opts.lookaheadWeight = 0.5; // exercise the lookahead field
    cached_opts.useDistanceCache = true;
    RouterOptions uncached_opts = cached_opts;
    uncached_opts.useDistanceCache = false;

    auto route = [&](const RouterOptions &ropts) {
        Layout layout = initial;
        CompiledCircuit out(layout, "bv20");
        routeCircuit(bv, layout, cost, out, ropts);
        return out;
    };

    const auto t0 = Clock::now();
    CompiledCircuit cached_out;
    for (int r = 0; r < reps; ++r)
        cached_out = route(cached_opts);
    const double cached_s = secondsSince(t0);

    const auto t1 = Clock::now();
    CompiledCircuit uncached_out;
    for (int r = 0; r < reps; ++r)
        uncached_out = route(uncached_opts);
    const double uncached_s = secondsSince(t1);

    return {1e3 * cached_s / reps, 1e3 * uncached_s / reps,
            sameGates(cached_out, uncached_out),
            static_cast<std::uint64_t>(cached_out.numGates())};
}

struct QaoaHhBenchResult
{
    double cached_ms;
    double uncached_ms;
    bool identical;
    std::uint64_t gates;
    std::uint64_t cache_hits;
    std::uint64_t cache_misses;
    std::uint64_t cache_revalidations;
};

/**
 * The deep communication workload: mapping + routing of p-round
 * hardware-native QAOA over the 65-unit heavy-hex lattice, with AWE
 * compression pairs committed so placement flips encoded bits (the
 * regime where whole-cache version keying used to thrash and partial
 * invalidation pays off). Cached runs share one CompileContext cache
 * between mapping and routing; uncached runs recompute every Dijkstra
 * field.
 */
QaoaHhBenchResult
benchQaoaHeavyHex(int reps, int rounds)
{
    const Circuit qaoa =
        decomposeToNativeGates(qaoaHeavyHex(40, rounds));
    const Topology topo = Topology::heavyHex65();
    const GateLibrary lib;
    const InteractionModel im(qaoa);

    CompilerConfig cfg;
    const auto pairs = AweStrategy().choosePairs(qaoa, topo, lib, cfg);

    MapperOptions mopts;
    mopts.pairs = pairs;

    std::uint64_t hits = 0, misses = 0, revalidations = 0;
    auto run = [&](bool use_cache, bool collect_stats) {
        CompilerConfig run_cfg = cfg;
        run_cfg.useDistanceCache = use_cache;
        CompileContext ctx(topo, lib, run_cfg);
        Layout layout =
            mapCircuit(qaoa, im, ctx.cost(), mopts, ctx.cache());
        CompiledCircuit out(layout, "qaoa_hh");
        RouterOptions ropts;
        ropts.lookaheadWeight = 0.5;
        ropts.useDistanceCache = use_cache;
        routeCircuit(qaoa, layout, ctx.cost(), out, ropts, ctx.cache());
        if (collect_stats) {
            hits = ctx.cacheStats().hits();
            misses = ctx.cacheStats().misses();
            revalidations = ctx.cacheStats().revalidations();
        }
        return out;
    };

    const auto t0 = Clock::now();
    CompiledCircuit cached_out;
    for (int r = 0; r < reps; ++r)
        cached_out = run(true, r == 0);
    const double cached_s = secondsSince(t0);

    const auto t1 = Clock::now();
    CompiledCircuit uncached_out;
    for (int r = 0; r < reps; ++r)
        uncached_out = run(false, false);
    const double uncached_s = secondsSince(t1);

    bool identical = sameGates(cached_out, uncached_out);
    for (QubitId q = 0; identical && q < qaoa.numQubits(); ++q) {
        identical = cached_out.finalLayout().slotOf(q) ==
                    uncached_out.finalLayout().slotOf(q);
    }

    return {1e3 * cached_s / reps, 1e3 * uncached_s / reps, identical,
            static_cast<std::uint64_t>(cached_out.numGates()), hits,
            misses, revalidations};
}

struct ExhaustiveBenchResult
{
    double serial_ms; // 1 lane
    double t2_ms;
    double t4_ms;
    double t8_ms;
    bool identical; // same pairing at every lane count
    std::uint64_t pairs;
};

/**
 * The candidate-sweep workload: the exhaustive (ec) strategy on a
 * seeded QAOA circuit over heavyHex65, where every committed pair
 * costs O(n^2) full candidate compiles. One lane is the serial
 * baseline; 2/4/8 lanes fan the candidate compiles over the thread
 * pool with one CompileContext per lane. The sweep is embarrassingly
 * parallel, so on a machine with >= 4 cores the 4-lane run should
 * approach 4x; pairings must be bit-identical at every lane count
 * (deterministic serial reduction over candidate scores).
 */
ExhaustiveBenchResult
benchExhaustive(int qubits)
{
    const Circuit qaoa =
        decomposeToNativeGates(qaoaFromGraph(randomGraph(qubits, 0.4, 11)));
    const Topology topo = Topology::heavyHex65();
    const GateLibrary lib;
    const ExhaustiveStrategy ec;

    auto run = [&](int lanes, double &ms) {
        CompilerConfig cfg;
        cfg.lookaheadWeight = 0.5;
        cfg.threads = lanes;
        CompileContext ctx(topo, lib, cfg);
        const auto t0 = Clock::now();
        auto pairs = ec.choosePairs(qaoa, topo, lib, cfg, ctx);
        ms = 1e3 * secondsSince(t0);
        return pairs;
    };

    ExhaustiveBenchResult res{};
    // Discarded warmups: lanes=0 constructs and warms the process
    // pool (the one a run whose lane count equals the process default
    // will reuse) and lanes=8 pays allocator growth and cold caches on
    // the private-pool path, so the serial baseline that follows does
    // not absorb one-time process costs. A timed run whose lane count
    // differs from the process default still spawns its private pool
    // inside choosePairs — lanes-1 thread spawns, well under 1% of
    // the ~90 ms workload.
    double warmup_ms = 0.0;
    run(0, warmup_ms);
    run(8, warmup_ms);
    const auto p1 = run(1, res.serial_ms);
    const auto p2 = run(2, res.t2_ms);
    const auto p4 = run(4, res.t4_ms);
    const auto p8 = run(8, res.t8_ms);
    res.identical = p1 == p2 && p1 == p4 && p1 == p8;
    res.pairs = static_cast<std::uint64_t>(p1.size());
    return res;
}

struct SweepBenchResult
{
    double serial_ms;
    double t2_ms;
    double t4_ms;
    double t8_ms;
    bool identical; // records bit-identical at every lane count
    std::uint64_t cells;
};

bool
sameRecords(const std::vector<SweepRecord> &a,
            const std::vector<SweepRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const SweepRecord &x = a[i];
        const SweepRecord &y = b[i];
        if (x.family != y.family || x.strategy != y.strategy ||
            x.requestedSize != y.requestedSize ||
            x.qubits != y.qubits ||
            x.numCompressions != y.numCompressions ||
            x.metrics.gateEps != y.metrics.gateEps ||
            x.metrics.coherenceEps != y.metrics.coherenceEps ||
            x.metrics.totalEps != y.metrics.totalEps ||
            x.metrics.durationNs != y.metrics.durationNs ||
            x.metrics.numGates != y.metrics.numGates)
            return false;
    }
    return true;
}

/**
 * The evaluation-layer workload: a (family x size x strategy) grid —
 * the shape of every figure bench — compiled through runSweep at
 * 1/2/4/8 lanes. Cells land in pre-sized slots, so the records must
 * be bit-identical whatever the lane count.
 */
SweepBenchResult
benchSweep(int sizes_hi)
{
    SweepSpec spec;
    spec.families = {"bv", "qaoa_random"};
    spec.sizes = {8, sizes_hi};
    spec.strategies = {"qubit_only", "eqm", "rb", "awe", "pp"};
    spec.config.lookaheadWeight = 0.5;

    auto run = [&](int lanes, double &ms) {
        spec.threads = lanes;
        const auto t0 = Clock::now();
        auto records = runSweep(spec);
        ms = 1e3 * secondsSince(t0);
        return records;
    };

    SweepBenchResult res{};
    // Discarded warm-up: pays allocator growth, cold code paths, and
    // (when 8 happens to be the process default) the global pool's
    // spawn. Lane counts that differ from the process default still
    // construct and join their private pool inside each timed run —
    // lanes-1 thread spawns, which is real overhead the lane timings
    // deliberately include (it is what a caller of that lane count
    // pays per sweep).
    double warmup_ms = 0.0;
    run(8, warmup_ms);
    const auto r1 = run(1, res.serial_ms);
    const auto r2 = run(2, res.t2_ms);
    const auto r4 = run(4, res.t4_ms);
    const auto r8 = run(8, res.t8_ms);
    res.identical = sameRecords(r1, r2) && sameRecords(r1, r4) &&
                    sameRecords(r1, r8);
    res.cells = static_cast<std::uint64_t>(r1.size());
    return res;
}

struct GrapeLanesBenchResult
{
    double serial_ms;
    double t2_ms;
    double t4_ms;
    double t8_ms;
    bool identical; // objective+gradient bit-identical across lanes
    std::uint64_t warm_lane_allocs; // max per-lane allocs, warm call
};

/**
 * The per-segment GRAPE fan-out: the same CX2/40-segment gradient
 * iteration as the serial section, at 1/2/4/8 lanes. The per-lane
 * allocation probe (this binary's thread-local operator-new counter)
 * asserts the zero-alloc warm-iteration property holds for every
 * lane, not just the calling thread.
 */
GrapeLanesBenchResult
benchGrapeLanes(int reps)
{
    std::vector<int> dims;
    const CMatrix target = namedTarget("CX2", dims);
    const TransmonSystem system(dims, /*guard_levels=*/1);

    Rng rng(99);
    std::vector<std::vector<double>> controls;
    {
        GrapeOptions probe_opts;
        probe_opts.threads = 1;
        GrapeOptimizer probe(system, target, 160.0, 40, probe_opts);
        controls.assign(probe.numControls(),
                        std::vector<double>(probe.segments(), 0.0));
        const double amp = 0.25 * system.maxAmplitude();
        for (auto &row : controls)
            for (auto &v : row)
                v = rng.nextDouble(-amp, amp);
    }

    GrapeLanesBenchResult res{};
    std::vector<std::vector<double>> grad_serial;
    for (int lanes : {1, 2, 4, 8}) {
        GrapeOptions opts;
        opts.threads = lanes;
        GrapeOptimizer grape(system, target, 160.0, 40, opts);
        GrapeWorkspace ws;
        ws.allocProbe = [] { return t_alloc_count; };
        std::vector<std::vector<double>> grad;
        double fid = 0.0, leak = 0.0;
        // Two warm-ups: the first sizes shared buffers, the second
        // lets every lane touch (and size) its own scratch.
        grape.objectiveAndGradient(controls, grad, fid, leak, ws);
        grape.objectiveAndGradient(controls, grad, fid, leak, ws);
        const auto t0 = Clock::now();
        for (int r = 0; r < reps; ++r)
            grape.objectiveAndGradient(controls, grad, fid, leak, ws);
        const double ms = 1e3 * secondsSince(t0) / reps;
        for (const auto allocs : ws.laneAllocs)
            res.warm_lane_allocs = std::max(res.warm_lane_allocs,
                                            allocs);
        switch (lanes) {
        case 1:
            res.serial_ms = ms;
            grad_serial = grad;
            res.identical = true;
            break;
        case 2:
            res.t2_ms = ms;
            break;
        case 4:
            res.t4_ms = ms;
            break;
        default:
            res.t8_ms = ms;
            break;
        }
        res.identical = res.identical && grad == grad_serial;
    }
    return res;
}

struct PadeBenchResult
{
    double pade_ms;   // expmFamilyInto (Padé-13) over all segments
    double taylor_ms; // expmFamilyIntoTaylor, same inputs
    double max_diff;  // worst elementwise deviation, eA and every dU
};

/**
 * The pulse-kernel microbench: one GRAPE sweep's worth of segment
 * generators (CX2, 40 segments, 4 drive directions), exponentiated by
 * the Padé-13 production kernel vs the retained Taylor
 * scaling-and-squaring reference.
 */
PadeBenchResult
benchPade(int reps)
{
    std::vector<int> dims;
    const CMatrix target = namedTarget("CX2", dims);
    const TransmonSystem system(dims, /*guard_levels=*/1);
    const int segments = 40;
    const double dt = 160.0 / segments;
    const auto &hc = system.controls();

    std::vector<CMatrix> bgen(hc.size());
    for (std::size_t k = 0; k < hc.size(); ++k)
        scaleInto(bgen[k], CMatrix::Scalar(0.0, -dt), hc[k]);
    Rng rng(99);
    const double amp = 0.25 * system.maxAmplitude();
    std::vector<CMatrix> agens;
    agens.reserve(segments);
    for (int j = 0; j < segments; ++j) {
        CMatrix h = system.drift();
        for (const auto &c : hc)
            h += c * CMatrix::Scalar(rng.nextDouble(-amp, amp));
        agens.push_back(h * CMatrix::Scalar(0.0, -dt));
    }

    ExpmFamilyWorkspace ws;
    CMatrix eA, eA_ref;
    std::vector<CMatrix> ds, ds_ref;
    PadeBenchResult res{};
    for (const auto &a : agens) { // warm both paths and diff them
        expmFamilyInto(eA, ds, a, bgen, ws);
        expmFamilyIntoTaylor(eA_ref, ds_ref, a, bgen, ws);
        for (int r = 0; r < eA.rows(); ++r)
            for (int c = 0; c < eA.cols(); ++c)
                res.max_diff = std::max(
                    res.max_diff, std::abs(eA(r, c) - eA_ref(r, c)));
        for (std::size_t k = 0; k < ds.size(); ++k)
            for (int r = 0; r < eA.rows(); ++r)
                for (int c = 0; c < eA.cols(); ++c)
                    res.max_diff = std::max(
                        res.max_diff,
                        std::abs(ds[k](r, c) - ds_ref[k](r, c)));
    }

    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r)
        for (const auto &a : agens)
            expmFamilyInto(eA, ds, a, bgen, ws);
    res.pade_ms = 1e3 * secondsSince(t0) / reps;

    const auto t1 = Clock::now();
    for (int r = 0; r < reps; ++r)
        for (const auto &a : agens)
            expmFamilyIntoTaylor(eA_ref, ds_ref, a, bgen, ws);
    res.taylor_ms = 1e3 * secondsSince(t1) / reps;
    return res;
}

struct ServiceBenchResult
{
    double cold_t1_ms, cold_t2_ms, cold_t4_ms, cold_t8_ms;
    double warm_t1_ms, warm_t2_ms, warm_t4_ms, warm_t8_ms;
    bool identical; // service artifacts == direct strategy compiles
    std::uint64_t requests; // distinct requests per pass
    std::uint64_t hits;     // memo hits observed at 1 lane
    std::uint64_t misses;   // memo misses observed at 1 lane
};

/** Warm batches must beat cold ones at least this much (they skip the
 *  whole pipeline: a warm request is request fingerprinting plus one
 *  locked map lookup). Asserted under --check. */
constexpr double kServiceWarmMargin = 5.0;

bool
sameCompileResults(const CompileResult &a, const CompileResult &b)
{
    return sameGates(a.compiled, b.compiled) &&
           a.compressions == b.compressions &&
           a.metrics.gateEps == b.metrics.gateEps &&
           a.metrics.coherenceEps == b.metrics.coherenceEps &&
           a.metrics.totalEps == b.metrics.totalEps &&
           a.metrics.durationNs == b.metrics.durationNs &&
           a.metrics.numGates == b.metrics.numGates;
}

/**
 * The service-front-end workload: a (family x size x strategy)
 * request grid -- the redundant-compile shape of every evaluation
 * sweep -- issued twice through a CompilerService at each lane count.
 * The cold pass (memo cleared) measures request-path compile
 * throughput; the warm pass measures memoized request throughput.
 * Artifacts must be bit-identical to direct strategy compiles at
 * every lane count, and the warm pass must beat the cold one by the
 * memo cache's expected margin.
 */
ServiceBenchResult
benchService(int reps, int sizes_hi)
{
    const GateLibrary lib;
    CompilerConfig cfg;
    cfg.lookaheadWeight = 0.5;

    std::vector<CompileRequest> reqs;
    std::vector<CompileResult> direct;
    for (const char *family : {"bv", "qaoa_random"}) {
        for (int size : {8, sizes_hi}) {
            const Circuit circuit = benchmarkFamily(family).make(size);
            const Topology topo = Topology::grid(circuit.numQubits());
            for (const char *strat : {"eqm", "rb", "awe"}) {
                reqs.push_back(CompileRequest::forCircuit(
                    circuit, topo, strat, cfg, lib));
                direct.push_back(makeStrategy(strat)->compile(
                    circuit, topo, lib, cfg));
            }
        }
    }

    ServiceBenchResult res{};
    res.identical = true;
    res.requests = static_cast<std::uint64_t>(reqs.size());
    for (int lanes : {1, 2, 4, 8}) {
        ServiceOptions sopts;
        sopts.threads = lanes;
        CompilerService service(sopts);

        auto run_pass = [&](double &ms_acc,
                            std::vector<CompileArtifact> *out) {
            const auto t0 = Clock::now();
            auto handles = service.submitBatch(reqs, lanes);
            for (std::size_t i = 0; i < handles.size(); ++i) {
                CompileArtifact a = handles[i].get();
                if (out)
                    (*out)[i] = std::move(a);
            }
            ms_acc += 1e3 * secondsSince(t0);
        };

        // Discarded warm-up: spawns the lane pool, grows the
        // allocator, and populates the memo once.
        double discard = 0.0;
        run_pass(discard, nullptr);

        double cold_ms = 0.0, warm_ms = 0.0;
        std::vector<CompileArtifact> artifacts(reqs.size());
        // Warm passes are microseconds; batch them per cold rep so the
        // timer sees a stable window.
        const int warm_iters = 20;
        for (int r = 0; r < reps; ++r) {
            service.clearCache(); // drop artifacts AND pooled contexts
            run_pass(cold_ms, r == 0 ? &artifacts : nullptr);
            double warm_acc = 0.0;
            for (int w = 0; w < warm_iters; ++w)
                run_pass(warm_acc, nullptr);
            warm_ms += warm_acc / warm_iters;
        }
        cold_ms /= reps;
        warm_ms /= reps;

        for (std::size_t i = 0; i < artifacts.size(); ++i) {
            res.identical = res.identical &&
                            sameCompileResults(*artifacts[i], direct[i]);
        }
        switch (lanes) {
        case 1: {
            res.cold_t1_ms = cold_ms;
            res.warm_t1_ms = warm_ms;
            const ServiceStats stats = service.stats();
            res.hits = stats.hits;
            res.misses = stats.misses;
            break;
        }
        case 2:
            res.cold_t2_ms = cold_ms;
            res.warm_t2_ms = warm_ms;
            break;
        case 4:
            res.cold_t4_ms = cold_ms;
            res.warm_t4_ms = warm_ms;
            break;
        default:
            res.cold_t8_ms = cold_ms;
            res.warm_t8_ms = warm_ms;
            break;
        }
    }
    return res;
}

struct TemplateBenchResult
{
    double cold_t1_ms, cold_t2_ms, cold_t4_ms, cold_t8_ms;
    double rebind_t1_ms, rebind_t2_ms, rebind_t4_ms, rebind_t8_ms;
    bool identical;         // rebound artifacts == full-compile artifacts
    std::uint64_t angles;   // grid points per pass
    std::uint64_t template_hits;   // tier counters observed at 1 lane
    std::uint64_t template_misses;
};

/** A template rebind skips mapping, routing, and scheduling entirely
 *  (deep-copy + O(gates) parameter patch + metrics re-price), so it
 *  must beat a cold full compile of the same instance by at least
 *  this factor on the angle-sweep workload. Asserted under --check. */
constexpr double kTemplateRebindMargin = 10.0;

/**
 * The parameterized-sweep workload: a >= 20-point angle grid over the
 * QAOA-40/heavyHex65 circuit (one structure, varying rotation
 * angles), issued through a CompilerService at each lane count. The
 * cold pass forces full compiles via CompileRequest::fullCompile (and
 * clears the memo between reps, so every point pays the whole
 * pipeline); the rebind pass warms one template with a single
 * full compile of an off-grid exemplar, then serves the entire grid
 * from the template tier. Rebound artifacts must be bit-identical to
 * the full compiles of the same instances.
 */
TemplateBenchResult
benchTemplate(int reps, int rounds, int num_angles)
{
    const Circuit base = qaoaHeavyHex(40, rounds);
    const Topology topo = Topology::heavyHex65();
    const GateLibrary lib;
    CompilerConfig cfg;
    cfg.lookaheadWeight = 0.5;
    const char *strat = "awe";

    // The angle grid (distinct points, none equal to the exemplar's),
    // bound positionally over the base structure.
    const Circuit exemplar = bindParams(base, {0.77, 1.31});
    std::vector<CompileRequest> full_reqs, rebind_reqs;
    for (int i = 0; i < num_angles; ++i) {
        const Circuit inst = bindParams(
            base, {0.11 + 0.143 * i, 2.93 - 0.117 * i});
        auto req =
            CompileRequest::forCircuit(inst, topo, strat, cfg, lib);
        rebind_reqs.push_back(req);
        req.fullCompile = true;
        full_reqs.push_back(std::move(req));
    }

    TemplateBenchResult res{};
    res.identical = true;
    res.angles = static_cast<std::uint64_t>(num_angles);
    for (int lanes : {1, 2, 4, 8}) {
        ServiceOptions sopts;
        sopts.threads = lanes;
        CompilerService service(sopts);

        auto run_pass = [&](const std::vector<CompileRequest> &reqs,
                            double &ms_acc,
                            std::vector<CompileArtifact> *out) {
            const auto t0 = Clock::now();
            auto handles = service.submitBatch(reqs, lanes);
            for (std::size_t i = 0; i < handles.size(); ++i) {
                CompileArtifact a = handles[i].get();
                if (out)
                    (*out)[i] = std::move(a);
            }
            ms_acc += 1e3 * secondsSince(t0);
        };

        // Discarded warm-up: spawns the lane pool and grows the
        // allocator on the compile-heavy path.
        double discard = 0.0;
        run_pass(full_reqs, discard, nullptr);

        double cold_ms = 0.0, rebind_ms = 0.0;
        std::vector<CompileArtifact> cold(full_reqs.size());
        std::vector<CompileArtifact> rebound(rebind_reqs.size());
        for (int r = 0; r < reps; ++r) {
            // Cold: every grid point pays the full pipeline (the memo
            // was cleared, and fullCompile bypasses the templates).
            service.clearCache();
            run_pass(full_reqs, cold_ms, r == 0 ? &cold : nullptr);
            // Rebind: one off-grid full compile plants the template
            // (untimed), then the whole grid rides it.
            service.clearCache();
            service.compileSync(CompileRequest::forCircuit(
                exemplar, topo, strat, cfg, lib));
            run_pass(rebind_reqs, rebind_ms,
                     r == 0 ? &rebound : nullptr);
        }
        cold_ms /= reps;
        rebind_ms /= reps;

        for (std::size_t i = 0; i < rebound.size(); ++i) {
            res.identical = res.identical &&
                            sameCompileResults(*rebound[i], *cold[i]);
        }
        switch (lanes) {
        case 1: {
            res.cold_t1_ms = cold_ms;
            res.rebind_t1_ms = rebind_ms;
            const ServiceStats stats = service.stats();
            res.template_hits = stats.templateHits;
            res.template_misses = stats.templateMisses;
            break;
        }
        case 2:
            res.cold_t2_ms = cold_ms;
            res.rebind_t2_ms = rebind_ms;
            break;
        case 4:
            res.cold_t4_ms = cold_ms;
            res.rebind_t4_ms = rebind_ms;
            break;
        default:
            res.cold_t8_ms = cold_ms;
            res.rebind_t8_ms = rebind_ms;
            break;
        }
    }
    return res;
}

struct PersistBenchResult
{
    double cold_ms; // no store, memo cleared per pass: full pipeline
    double disk_ms; // store warm, memo cleared per pass: decode path
    double memo_ms; // memo warm: request fingerprint + map lookup
    bool identical; // disk-loaded artifacts == direct strategy compiles
    std::uint64_t requests;    // catalog size per pass
    std::uint64_t disk_hits;   // observed on the warm-restarted service
    std::uint64_t disk_writes; // records written while priming
    std::uint64_t store_bytes; // log size after priming
};

/** A disk-warm service must serve the catalog at least this much
 *  faster than cold compiles: a disk hit is one pread + CRC check +
 *  decode, with mapping/routing/scheduling all skipped. Asserted
 *  under --check. */
constexpr double kPersistDiskWarmMargin = 5.0;

/**
 * The persistence-tier workload: the same (family x size x strategy)
 * catalog as the service section, served three ways. Cold pays the
 * full pipeline per pass (no store, memo dropped). Disk-warm primes
 * an artifact store once, then boots a *fresh* service on it -- the
 * warm-restart path -- and serves every pass from the disk tier with
 * the memo dropped between passes. Memo-warm serves from the
 * in-memory tier on the same service. Disk-loaded artifacts must be
 * bit-identical to direct strategy compiles.
 */
PersistBenchResult
benchPersist(int reps, int sizes_hi)
{
    const GateLibrary lib;
    CompilerConfig cfg;
    cfg.lookaheadWeight = 0.5;

    // Sizes start at 12: compile cost grows superlinearly with size
    // while decode stays linear, so larger circuits keep the
    // disk-warm margin comfortably clear of timer noise.
    std::vector<CompileRequest> reqs;
    std::vector<CompileResult> direct;
    for (const char *family : {"bv", "qaoa_random"}) {
        for (int size : {12, sizes_hi}) {
            const Circuit circuit = benchmarkFamily(family).make(size);
            const Topology topo = Topology::grid(circuit.numQubits());
            for (const char *strat : {"eqm", "rb", "awe"}) {
                reqs.push_back(CompileRequest::forCircuit(
                    circuit, topo, strat, cfg, lib));
                direct.push_back(makeStrategy(strat)->compile(
                    circuit, topo, lib, cfg));
            }
        }
    }

    const std::string store_path =
        "bench_hotpaths_store_" + std::to_string(::getpid()) + ".qst";
    std::remove(store_path.c_str());

    PersistBenchResult res{};
    res.identical = true;
    res.requests = static_cast<std::uint64_t>(reqs.size());

    // Synchronous passes: the tiers differ in decode-vs-compile cost,
    // which batch/pool dispatch overhead would mask at this scale.
    auto run_pass = [&](CompilerService &service, double &ms_acc,
                        std::vector<CompileArtifact> *out) {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            CompileArtifact a = service.compileSync(reqs[i]);
            if (out)
                (*out)[i] = std::move(a);
        }
        ms_acc += 1e3 * secondsSince(t0);
    };

    // Cold baseline: no store, memo dropped before every timed pass.
    {
        ServiceOptions sopts;
        sopts.threads = 1;
        CompilerService service(sopts);
        double discard = 0.0;
        run_pass(service, discard, nullptr); // allocator/context warm-up
        for (int r = 0; r < reps; ++r) {
            service.clearCache();
            run_pass(service, res.cold_ms, nullptr);
        }
        res.cold_ms /= reps;
    }

    // Prime the store: one pass on a store-backed service writes the
    // whole catalog behind the misses.
    {
        ServiceOptions sopts;
        sopts.threads = 1;
        sopts.storePath = store_path;
        CompilerService service(sopts);
        double discard = 0.0;
        run_pass(service, discard, nullptr);
        const ServiceStats stats = service.stats();
        res.disk_writes = stats.diskWrites;
        res.store_bytes = stats.storeBytes;
    }

    // Warm restart: a fresh service on the primed store. Disk passes
    // drop the memo first so every request rides the disk tier; the
    // memo passes afterwards ride the in-memory tier. Both passes are
    // microseconds-scale, so batch them for a stable timer window.
    {
        ServiceOptions sopts;
        sopts.threads = 1;
        sopts.storePath = store_path;
        CompilerService service(sopts);
        const int disk_iters = reps * 20;
        std::vector<CompileArtifact> artifacts(reqs.size());
        for (int it = 0; it < disk_iters; ++it) {
            service.clearCache(); // drops memo+templates, not the store
            run_pass(service, res.disk_ms,
                     it == 0 ? &artifacts : nullptr);
        }
        res.disk_ms /= disk_iters;

        const int memo_iters = disk_iters * 5; // ~micros each; drown scheduler jitter
        for (int it = 0; it < memo_iters; ++it)
            run_pass(service, res.memo_ms, nullptr);
        res.memo_ms /= memo_iters;

        const ServiceStats stats = service.stats();
        res.disk_hits = stats.diskHits;
        for (std::size_t i = 0; i < artifacts.size(); ++i) {
            res.identical = res.identical &&
                            sameCompileResults(*artifacts[i], direct[i]);
        }
    }

    std::remove(store_path.c_str());
    return res;
}

struct DeviceBenchResult
{
    std::string table;      ///< JSON rows: per device x strategy
    bool identical;         ///< registry path == direct compiles
    bool neutral_identical; ///< neutral uniform cal == no cal
    bool invalidation_ok;   ///< stale miss, fresh hit, unrelated hit
    bool partition_ok;      ///< requests == hits+tmpl+disk+misses+coal
    std::uint64_t devices;  ///< zoo devices swept
};

/**
 * The device-registry workload: a strategy x zoo-device sweep, every
 * request resolved by name through CompileRequest::forDevice (registry
 * topology + current calibration). Each cell is timed cold and its
 * totalEps lands in the results table -- the per-device counterpart of
 * the figure sweeps, over topologies from 23 to 127 units. The
 * differential legs pin the subsystem's two contracts: resolution is
 * free of semantic drift (registry compiles bit-identical to direct
 * compiles on the registry topology; a neutral uniform calibration
 * bit-identical to none), and a calibration install re-keys exactly
 * its own device (stale miss then fresh hit, the unrelated device's
 * warm entry survives, the counter partition stays intact).
 */
DeviceBenchResult
benchDevices(int reps)
{
    const GateLibrary lib;
    CompilerConfig cfg;
    cfg.lookaheadWeight = 0.5;
    const Circuit circuit = bernsteinVazirani(16);
    const char *strategies[] = {"eqm", "rb", "awe"};
    const char *devices[] = {"falcon27",    "heavyhex23", "heavyhex65",
                             "heavyhex127", "ring65",     "grid64"};

    DeviceBenchResult res{};
    res.identical = true;
    res.devices = std::size(devices);

    CompilerService service;
    char row[256];
    for (const char *dev : devices) {
        const Device d = service.devices().get(dev);
        for (const char *strat : strategies) {
            double ms = 0.0;
            CompileArtifact art;
            for (int r = 0; r < reps; ++r) {
                service.clearCache();
                const auto t0 = Clock::now();
                art = service.compileSync(CompileRequest::forDevice(
                    circuit, dev, strat, cfg, lib));
                ms += 1e3 * secondsSince(t0);
            }
            ms /= reps;
            const CompileResult direct = makeStrategy(strat)->compile(
                circuit, d.topology, lib, cfg);
            res.identical =
                res.identical && sameCompileResults(*art, direct);
            std::snprintf(row, sizeof row,
                          "    \"device_%s_%s_ms\": %.4f,\n"
                          "    \"device_%s_%s_eps\": %.6f,\n",
                          dev, strat, ms, dev, strat,
                          art->metrics.totalEps);
            res.table += row;
        }
    }

    // Neutral-calibration differential: a uniform record carrying the
    // library constants (zero readout, no edge scales) must price
    // every gate exactly like no calibration at all.
    {
        const Device d = service.devices().get("heavyhex65");
        CompilerConfig neutral = cfg;
        neutral.calibration =
            std::make_shared<const DeviceCalibration>(
                DeviceCalibration::uniform(
                    d.topology.name(), d.topology.numUnits(),
                    GateLibrary::kT1QubitNs,
                    GateLibrary::kT1QuquartNs));
        const CompileResult plain = makeStrategy("eqm")->compile(
            circuit, d.topology, lib, cfg);
        const CompileResult cal = makeStrategy("eqm")->compile(
            circuit, d.topology, lib, neutral);
        res.neutral_identical =
            sameCompileResults(plain, cal) &&
            plain.metrics.readoutEps == cal.metrics.readoutEps;
    }

    // Invalidation differential on a fresh service (clean counters):
    // warm two devices, install a calibration on one, and read the
    // exact miss/hit trajectory off the counters.
    {
        CompilerService svc;
        auto req = [&](const char *dev) {
            return CompileRequest::forDevice(circuit, dev, "eqm", cfg,
                                             lib);
        };
        svc.compileSync(req("falcon27")); // miss (cold)
        svc.compileSync(req("ring65"));   // miss (cold)
        svc.compileSync(req("falcon27")); // hit  (warm)
        svc.devices().setCalibration(
            "falcon27",
            DeviceCalibration::uniform("falcon27", 27, 100000.0,
                                       30000.0, 0.01));
        svc.compileSync(req("falcon27")); // miss (stale key)
        svc.compileSync(req("falcon27")); // hit  (fresh entry)
        svc.compileSync(req("ring65"));   // hit  (unrelated survives)
        const ServiceStats st = svc.stats();
        res.invalidation_ok = st.misses == 3 && st.hits == 3;
        res.partition_ok = st.requests == st.hits + st.templateHits +
                                              st.diskHits + st.misses +
                                              st.coalesced;
    }
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    using qompress::bench::parseArgs;
    const auto args = parseArgs(argc, argv);
    const bool check = args.has("--check");
    std::string out_path;
    for (const auto &e : args.extra) {
        if (e.rfind("--out=", 0) == 0)
            out_path = e.substr(6);
    }

    const int sim_reps = check ? 3 : (args.quick ? 10 : 40);
    const int grape_reps = check ? 2 : (args.quick ? 5 : 20);
    const int route_reps = check ? 1 : (args.quick ? 3 : 10);
    const int qaoa_reps = check ? 1 : (args.quick ? 2 : 5);
    const int qaoa_rounds = check ? 1 : 3;
    const int exh_qubits = check ? 6 : (args.quick ? 8 : 12);
    const int sweep_hi = check ? 10 : (args.quick ? 10 : 14);
    const int grape_lane_reps = check ? 3 : (args.quick ? 5 : 20);
    // The Padé/Taylor ratio gates --check, so keep its rep count high
    // enough to be stable even there (~tens of ms per path).
    const int pade_reps = args.quick ? 20 : 40;
    // The warm/cold service ratio also gates --check; the margin is
    // wide (kServiceWarmMargin vs a real ~100x), so small rep counts
    // stay safe.
    const int service_reps = check ? 2 : (args.quick ? 2 : 4);
    const int service_hi = check ? 10 : (args.quick ? 12 : 14);
    // The rebind/cold ratio gates --check; the margin is wide
    // (kTemplateRebindMargin vs a real ~100x on this workload), so
    // small rep counts and fewer rounds stay safe.
    const int template_reps = check ? 1 : (args.quick ? 2 : 3);
    const int template_rounds = check ? 1 : 2;
    const int template_angles = 20;
    // The disk-warm/cold ratio gates --check; the margin is wide
    // (kPersistDiskWarmMargin vs a real >= 100x: a decode pass costs
    // microseconds against milliseconds of compiles), and the cheap
    // disk/memo passes are internally batched 10x per rep.
    const int persist_reps = check ? 2 : (args.quick ? 2 : 4);
    // Must differ from the grid's base size (12) in every mode: equal
    // sizes would collapse the catalog to duplicate keys, which the
    // write-behind dedup guard would surface as disk_writes < requests.
    const int persist_hi = args.quick || check ? 16 : 18;
    // The device sweep's gates are identity differentials, not timing
    // ratios, so one rep suffices under --check. Timed modes rep
    // higher than the other sections: the cells are ~1 ms compiles,
    // cheap enough that averaging down the timer noise costs little,
    // and the device_ section gates at 10% in CI.
    const int device_reps = check ? 1 : (args.quick ? 5 : 10);

    const SimResult sim = benchStatevector(sim_reps);
    const GrapeBenchResult gr = benchGrape(grape_reps);
    const RouteBenchResult rt = benchRouting(route_reps);
    const QaoaHhBenchResult qh = benchQaoaHeavyHex(qaoa_reps, qaoa_rounds);
    const ExhaustiveBenchResult ex = benchExhaustive(exh_qubits);
    const SweepBenchResult sw = benchSweep(sweep_hi);
    const GrapeLanesBenchResult gl = benchGrapeLanes(grape_lane_reps);
    const PadeBenchResult pd = benchPade(pade_reps);
    const ServiceBenchResult sv = benchService(service_reps, service_hi);
    const TemplateBenchResult tm =
        benchTemplate(template_reps, template_rounds, template_angles);
    const PersistBenchResult ps = benchPersist(persist_reps, persist_hi);
    const DeviceBenchResult dv = benchDevices(device_reps);

    const double sim_speedup =
        sim.optimized_ms > 0.0 ? sim.naive_ms / sim.optimized_ms : 0.0;
    const double grape_speedup =
        gr.optimized_ms > 0.0 ? gr.naive_ms / gr.optimized_ms : 0.0;
    const double route_speedup =
        rt.cached_ms > 0.0 ? rt.uncached_ms / rt.cached_ms : 0.0;
    const double qaoa_speedup =
        qh.cached_ms > 0.0 ? qh.uncached_ms / qh.cached_ms : 0.0;
    const double exh_speedup_t4 =
        ex.t4_ms > 0.0 ? ex.serial_ms / ex.t4_ms : 0.0;
    const double sweep_speedup_t4 =
        sw.t4_ms > 0.0 ? sw.serial_ms / sw.t4_ms : 0.0;
    const double grape_seg_speedup_t4 =
        gl.t4_ms > 0.0 ? gl.serial_ms / gl.t4_ms : 0.0;
    const double pade_speedup =
        pd.pade_ms > 0.0 ? pd.taylor_ms / pd.pade_ms : 0.0;
    const double service_warm_speedup =
        sv.warm_t1_ms > 0.0 ? sv.cold_t1_ms / sv.warm_t1_ms : 0.0;
    const double template_rebind_speedup =
        tm.rebind_t1_ms > 0.0 ? tm.cold_t1_ms / tm.rebind_t1_ms : 0.0;
    const double persist_disk_speedup =
        ps.disk_ms > 0.0 ? ps.cold_ms / ps.disk_ms : 0.0;
    const double persist_memo_speedup =
        ps.memo_ms > 0.0 ? ps.cold_ms / ps.memo_ms : 0.0;

    const char *qt_env = std::getenv("QOMPRESS_THREADS");
#ifndef QOMPRESS_BUILD_TYPE
#define QOMPRESS_BUILD_TYPE "unknown"
#endif

    char buf[32768]; // headroom for the dynamic device table
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"bench\": \"hotpaths\",\n"
        "  \"host\": {\n"
        "    \"nproc\": %u,\n"
        "    \"qompress_threads\": \"%s\",\n"
        "    \"build_type\": \"%s\"\n"
        "  },\n"
        "  \"metrics\": {\n"
        "    \"statevector_apply_ms\": %.4f,\n"
        "    \"statevector_naive_ms\": %.4f,\n"
        "    \"statevector_speedup\": %.3f,\n"
        "    \"statevector_max_diff\": %.3e,\n"
        "    \"grape_gradient_ms\": %.4f,\n"
        "    \"grape_gradient_naive_ms\": %.4f,\n"
        "    \"grape_speedup\": %.3f,\n"
        "    \"grape_max_grad_diff\": %.3e,\n"
        "    \"grape_warm_allocs\": %llu,\n"
        "    \"route_bv20_cached_ms\": %.4f,\n"
        "    \"route_bv20_uncached_ms\": %.4f,\n"
        "    \"route_speedup\": %.3f,\n"
        "    \"route_gates\": %llu,\n"
        "    \"route_identical\": %s,\n"
        "    \"qaoa_hh_cached_ms\": %.4f,\n"
        "    \"qaoa_hh_uncached_ms\": %.4f,\n"
        "    \"qaoa_hh_speedup\": %.3f,\n"
        "    \"qaoa_hh_gates\": %llu,\n"
        "    \"qaoa_hh_cache_hits\": %llu,\n"
        "    \"qaoa_hh_cache_misses\": %llu,\n"
        "    \"qaoa_hh_cache_revalidations\": %llu,\n"
        "    \"qaoa_hh_identical\": %s,\n"
        "    \"exhaustive_hh_serial_ms\": %.4f,\n"
        "    \"exhaustive_hh_t2_ms\": %.4f,\n"
        "    \"exhaustive_hh_t4_ms\": %.4f,\n"
        "    \"exhaustive_hh_t8_ms\": %.4f,\n"
        "    \"exhaustive_hh_speedup_t4\": %.3f,\n"
        "    \"exhaustive_hh_pairs\": %llu,\n"
        "    \"exhaustive_hh_identical\": %s,\n"
        "    \"sweep_serial_ms\": %.4f,\n"
        "    \"sweep_t2_ms\": %.4f,\n"
        "    \"sweep_t4_ms\": %.4f,\n"
        "    \"sweep_t8_ms\": %.4f,\n"
        "    \"sweep_speedup_t4\": %.3f,\n"
        "    \"sweep_cells\": %llu,\n"
        "    \"sweep_identical\": %s,\n"
        "    \"grape_seg_serial_ms\": %.4f,\n"
        "    \"grape_seg_t2_ms\": %.4f,\n"
        "    \"grape_seg_t4_ms\": %.4f,\n"
        "    \"grape_seg_t8_ms\": %.4f,\n"
        "    \"grape_seg_speedup_t4\": %.3f,\n"
        "    \"grape_seg_warm_lane_allocs\": %llu,\n"
        "    \"grape_seg_identical\": %s,\n"
        "    \"expm_pade_ms\": %.4f,\n"
        "    \"expm_taylor_ms\": %.4f,\n"
        "    \"expm_pade_speedup\": %.3f,\n"
        "    \"expm_pade_max_diff\": %.3e,\n"
        "    \"service_cold_t1_ms\": %.4f,\n"
        "    \"service_cold_t2_ms\": %.4f,\n"
        "    \"service_cold_t4_ms\": %.4f,\n"
        "    \"service_cold_t8_ms\": %.4f,\n"
        "    \"service_warm_t1_ms\": %.4f,\n"
        "    \"service_warm_t2_ms\": %.4f,\n"
        "    \"service_warm_t4_ms\": %.4f,\n"
        "    \"service_warm_t8_ms\": %.4f,\n"
        "    \"service_warm_speedup\": %.3f,\n"
        "    \"service_requests\": %llu,\n"
        "    \"service_hits\": %llu,\n"
        "    \"service_misses\": %llu,\n"
        "    \"service_identical\": %s,\n"
        "    \"template_cold_t1_ms\": %.4f,\n"
        "    \"template_cold_t2_ms\": %.4f,\n"
        "    \"template_cold_t4_ms\": %.4f,\n"
        "    \"template_cold_t8_ms\": %.4f,\n"
        "    \"template_rebind_t1_ms\": %.4f,\n"
        "    \"template_rebind_t2_ms\": %.4f,\n"
        "    \"template_rebind_t4_ms\": %.4f,\n"
        "    \"template_rebind_t8_ms\": %.4f,\n"
        "    \"template_rebind_speedup\": %.3f,\n"
        "    \"template_angles\": %llu,\n"
        "    \"template_hits\": %llu,\n"
        "    \"template_misses\": %llu,\n"
        "    \"template_identical\": %s,\n"
        "    \"persist_cold_ms\": %.4f,\n"
        "    \"persist_disk_ms\": %.4f,\n"
        "    \"persist_memo_ms\": %.4f,\n"
        "    \"persist_disk_speedup\": %.3f,\n"
        "    \"persist_memo_speedup\": %.3f,\n"
        "    \"persist_requests\": %llu,\n"
        "    \"persist_disk_hits\": %llu,\n"
        "    \"persist_disk_writes\": %llu,\n"
        "    \"persist_store_bytes\": %llu,\n"
        "    \"persist_identical\": %s,\n"
        "%s" // the device results table (dynamic: device x strategy)
        "    \"device_zoo_count\": %llu,\n"
        "    \"device_registry_identical\": %s,\n"
        "    \"device_neutral_identical\": %s,\n"
        "    \"device_invalidation_ok\": %s,\n"
        "    \"device_partition_ok\": %s\n"
        "  }\n"
        "}\n",
        std::thread::hardware_concurrency(),
        qt_env ? qt_env : "unset", QOMPRESS_BUILD_TYPE,
        sim.optimized_ms, sim.naive_ms, sim_speedup, sim.max_diff,
        gr.optimized_ms, gr.naive_ms, grape_speedup, gr.max_grad_diff,
        static_cast<unsigned long long>(gr.warm_allocs), rt.cached_ms,
        rt.uncached_ms, route_speedup,
        static_cast<unsigned long long>(rt.gates),
        rt.identical ? "true" : "false", qh.cached_ms, qh.uncached_ms,
        qaoa_speedup, static_cast<unsigned long long>(qh.gates),
        static_cast<unsigned long long>(qh.cache_hits),
        static_cast<unsigned long long>(qh.cache_misses),
        static_cast<unsigned long long>(qh.cache_revalidations),
        qh.identical ? "true" : "false", ex.serial_ms, ex.t2_ms,
        ex.t4_ms, ex.t8_ms, exh_speedup_t4,
        static_cast<unsigned long long>(ex.pairs),
        ex.identical ? "true" : "false", sw.serial_ms, sw.t2_ms,
        sw.t4_ms, sw.t8_ms, sweep_speedup_t4,
        static_cast<unsigned long long>(sw.cells),
        sw.identical ? "true" : "false", gl.serial_ms, gl.t2_ms,
        gl.t4_ms, gl.t8_ms, grape_seg_speedup_t4,
        static_cast<unsigned long long>(gl.warm_lane_allocs),
        gl.identical ? "true" : "false", pd.pade_ms, pd.taylor_ms,
        pade_speedup, pd.max_diff, sv.cold_t1_ms, sv.cold_t2_ms,
        sv.cold_t4_ms, sv.cold_t8_ms, sv.warm_t1_ms, sv.warm_t2_ms,
        sv.warm_t4_ms, sv.warm_t8_ms, service_warm_speedup,
        static_cast<unsigned long long>(sv.requests),
        static_cast<unsigned long long>(sv.hits),
        static_cast<unsigned long long>(sv.misses),
        sv.identical ? "true" : "false", tm.cold_t1_ms, tm.cold_t2_ms,
        tm.cold_t4_ms, tm.cold_t8_ms, tm.rebind_t1_ms, tm.rebind_t2_ms,
        tm.rebind_t4_ms, tm.rebind_t8_ms, template_rebind_speedup,
        static_cast<unsigned long long>(tm.angles),
        static_cast<unsigned long long>(tm.template_hits),
        static_cast<unsigned long long>(tm.template_misses),
        tm.identical ? "true" : "false", ps.cold_ms, ps.disk_ms,
        ps.memo_ms, persist_disk_speedup, persist_memo_speedup,
        static_cast<unsigned long long>(ps.requests),
        static_cast<unsigned long long>(ps.disk_hits),
        static_cast<unsigned long long>(ps.disk_writes),
        static_cast<unsigned long long>(ps.store_bytes),
        ps.identical ? "true" : "false", dv.table.c_str(),
        static_cast<unsigned long long>(dv.devices),
        dv.identical ? "true" : "false",
        dv.neutral_identical ? "true" : "false",
        dv.invalidation_ok ? "true" : "false",
        dv.partition_ok ? "true" : "false");
    std::cout << buf;
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        out << buf;
        if (!out) {
            std::cerr << "error: cannot write '" << out_path << "'\n";
            return 1;
        }
    }

    if (check) {
        int failures = 0;
        auto expect = [&](bool ok, const char *what) {
            std::cerr << (ok ? "PASS: " : "FAIL: ") << what << '\n';
            if (!ok)
                ++failures;
        };
        expect(sim.max_diff <= 1e-10,
               "applyUnitary agrees with naive kernel to 1e-10");
        expect(gr.max_grad_diff <= 1e-10,
               "GRAPE gradient agrees with naive reference to 1e-10");
        expect(gr.warm_allocs == 0,
               "warm GRAPE gradient step performs zero heap "
               "allocations");
        expect(rt.identical,
               "cached and uncached routing emit identical circuits");
        expect(qh.identical,
               "partial-invalidation cached and uncached QAOA/heavy-hex "
               "mapping+routing emit identical circuits");
        expect(ex.identical,
               "exhaustive search chooses bit-identical pairings at "
               "1/2/4/8 lanes");
        expect(sw.identical,
               "eval sweep emits bit-identical records at 1/2/4/8 "
               "lanes");
        expect(gl.identical,
               "GRAPE objective+gradient is bit-identical at 1/2/4/8 "
               "lanes");
        expect(gl.warm_lane_allocs == 0,
               "warm pooled GRAPE gradient step performs zero heap "
               "allocations on every lane");
        expect(pd.max_diff <= 1e-12,
               "Pade-13 family exponential matches the Taylor "
               "reference to 1e-12");
        expect(pade_speedup >= 1.15,
               "Pade-13 family exponential beats the Taylor reference "
               "by >= 1.15x");
        expect(sv.identical,
               "CompilerService artifacts are bit-identical to direct "
               "strategy compiles at 1/2/4/8 lanes");
        expect(sv.hits > 0 && sv.misses > 0,
               "service memo cache observed both misses (cold) and "
               "hits (warm)");
        expect(service_warm_speedup >= kServiceWarmMargin,
               "warm (memoized) service batches beat cold ones by >= "
               "the memo cache's expected margin");
        expect(tm.identical,
               "template rebinds are bit-identical to full compiles "
               "across the QAOA angle grid at 1/2/4/8 lanes");
        expect(tm.template_hits > 0,
               "the angle grid was served from the template tier");
        expect(template_rebind_speedup >= kTemplateRebindMargin,
               "template rebinds beat cold full compiles by >= the "
               "template tier's expected margin");
        expect(ps.identical,
               "disk-tier artifacts decode bit-identical to direct "
               "strategy compiles");
        expect(ps.disk_writes == ps.requests,
               "priming pass wrote the whole catalog behind the "
               "misses exactly once");
        expect(ps.disk_hits > 0,
               "the warm-restarted service served requests from the "
               "disk tier");
        expect(persist_disk_speedup >= kPersistDiskWarmMargin,
               "a disk-warm restart serves the catalog >= the "
               "persistence tier's expected margin over cold compiles");
        expect(dv.identical,
               "registry-resolved device compiles are bit-identical "
               "to direct compiles on the registry topology");
        expect(dv.neutral_identical,
               "a neutral uniform calibration compiles bit-identical "
               "to no calibration");
        expect(dv.invalidation_ok,
               "a calibration install re-keys exactly its device: "
               "stale miss, fresh hit, unrelated warm hit");
        expect(dv.partition_ok,
               "the service counter partition holds across "
               "calibration updates");
        return failures == 0 ? 0 : 1;
    }
    return 0;
}
