/**
 * @file
 * Closed- and open-loop traffic generator for qompressd: the standing
 * production-scale benchmark the roadmap's "millions of users" north
 * star asks for.
 *
 * Traffic mixes (all over real sockets, keep-alive connections):
 *
 *  - Zipf mix: POST /compile bodies drawn from a catalog of registry
 *    circuits with Zipf(1.1)-ranked popularity — the repeat-heavy
 *    shape of production compile traffic. Warm requests are exact
 *    memo-tier hits.
 *  - Parameterized-sweep mix: the same QAOA structure with fresh
 *    random rotation angles per request — every request is an exact-
 *    tier NEAR-miss that the template tier must serve by rebind.
 *  - Burst (open-loop-ish) arrivals: fixed-size back-to-back volleys
 *    separated by idle gaps, reported as tail latency.
 *  - Malformed mix: adversarial QASM and raw-garbage HTTP; each must
 *    come back as a structured 4xx while the server keeps serving.
 *  - Fault scenario: a dedicated store-backed server is driven
 *    through a disk-fault episode (every store read/write failing
 *    with EIO via common/faultpoint.hh). The disk tier must degrade
 *    while every request keeps succeeding, recover once the faults
 *    clear, flip /healthz through ok -> degraded -> draining, and
 *    leave a log a cold restart fully recovers.
 *
 * Emits bench_diff.py-compatible JSON ("loadgen_" sections; the two
 * *_ms wall-clock timings are the gated metrics, tail latencies are
 * reported in _us as informational). --check asserts the acceptance
 * invariants: zero 5xx, zero transport errors, templateHits > 0 from
 * the sweep mix, the ServiceStats partition (requests == hits +
 * templateHits + misses + coalesced), and liveness after the
 * malformed mix.
 *
 * Usage:
 *   bench_loadgen [--quick] [--check] [--out=FILE]
 *                 [--connect=HOST:PORT] [--conns=N] [--seed=N]
 *
 * Without --connect an in-process qompressd is booted on an ephemeral
 * loopback port (still real sockets), so the bench is self-contained;
 * with --connect it drives an external server (the CI smoke job boots
 * ./qompressd and points the loadgen at it).
 */

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.hh"
#include "common/error.hh"
#include "common/faultpoint.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "ir/circuit.hh"
#include "server/histogram.hh"
#include "server/http.hh"
#include "server/server.hh"
#include "service/artifact_store.hh"

using namespace qompress;

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

struct Args
{
    bool quick = false;
    bool check = false;
    std::string out;
    std::string host;
    int port = 0;
    int conns = 0;
    std::uint64_t seed = 12345;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string s = argv[i];
        if (s == "--quick") {
            a.quick = true;
        } else if (s == "--check") {
            a.check = true;
        } else if (s.rfind("--out=", 0) == 0) {
            a.out = s.substr(6);
        } else if (s.rfind("--connect=", 0) == 0) {
            const std::string hp = s.substr(10);
            const auto colon = hp.find(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr,
                             "--connect wants HOST:PORT, got '%s'\n",
                             hp.c_str());
                std::exit(2);
            }
            a.host = hp.substr(0, colon);
            a.port = std::atoi(hp.c_str() + colon + 1);
        } else if (s.rfind("--conns=", 0) == 0) {
            a.conns = std::atoi(s.c_str() + 8);
        } else if (s.rfind("--seed=", 0) == 0) {
            a.seed = std::strtoull(s.c_str() + 7, nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", s.c_str());
            std::exit(2);
        }
    }
    return a;
}

/** One keep-alive client connection with auto-reconnect. */
class Client
{
  public:
    Client(std::string host, int port, std::uint64_t seed = 1)
        : host_(std::move(host)), port_(port), rng_(seed)
    {
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    /** Issue one request; false on transport failure (after one
     *  reconnect attempt, since the server may close on errors). */
    bool
    request(const std::string &raw, int &status, std::string &body)
    {
        std::map<std::string, std::string> headers;
        return requestOnce(raw, status, headers, body);
    }

    /**
     * request() plus jittered exponential backoff: transport failures
     * and 503s (overload shed, draining) are retried up to
     * @p maxAttempts times, sleeping ~5, ~10, ~20... ms between tries
     * with a uniform 0.5-1.5x jitter so synchronized clients spread
     * out instead of re-stampeding. A 503 carrying Retry-After raises
     * the sleep to what the server asked for.
     */
    bool
    requestWithRetry(const std::string &raw, int &status,
                     std::string &body, int maxAttempts = 4)
    {
        double backoff_ms = 5.0;
        for (int attempt = 1;; ++attempt) {
            std::map<std::string, std::string> headers;
            const bool sent = requestOnce(raw, status, headers, body);
            if (sent && status != 503)
                return true;
            if (attempt >= maxAttempts)
                return sent;
            double wait_ms = backoff_ms * rng_.nextDouble(0.5, 1.5);
            if (sent) {
                if (const auto ra = headers.find("retry-after");
                    ra != headers.end()) {
                    const double ra_ms =
                        std::atof(ra->second.c_str()) * 1000.0;
                    if (ra_ms > wait_ms)
                        wait_ms = ra_ms;
                }
            }
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(wait_ms));
            backoff_ms *= 2.0;
        }
    }

  private:
    bool
    requestOnce(const std::string &raw, int &status,
                std::map<std::string, std::string> &headers,
                std::string &body)
    {
        for (int attempt = 0; attempt < 2; ++attempt) {
            if (fd_ < 0) {
                fd_ = httpConnect(host_, port_);
                leftover_.clear();
                if (fd_ < 0)
                    continue;
            }
            if (httpSendAll(fd_, raw) &&
                httpReadResponse(fd_, leftover_, status, headers,
                                 body)) {
                return true;
            }
            ::close(fd_);
            fd_ = -1;
        }
        return false;
    }

    std::string host_;
    int port_;
    int fd_ = -1;
    std::string leftover_;
    Rng rng_;
};

std::string
postCompile(const std::string &qasm, const std::string &query = "")
{
    return "POST /compile" + query + " HTTP/1.1\r\n" +
           "Host: loadgen\r\n" +
           "Content-Length: " + std::to_string(qasm.size()) +
           "\r\n\r\n" + qasm;
}

std::string
get(const std::string &target)
{
    return "GET " + target + " HTTP/1.1\r\nHost: loadgen\r\n\r\n";
}

/** Copy of @p base with every rotation angle re-rolled: identical
 *  structure (template-tier near-miss), fresh parameters. */
Circuit
rerollAngles(const Circuit &base, Rng &rng)
{
    Circuit out(base.numQubits(), base.name());
    for (Gate g : base.gates()) {
        if (gateHasParam(g.type))
            g.param = rng.nextDouble(-3.14159, 3.14159);
        out.add(std::move(g));
    }
    return out;
}

/** Value of `"key": <number>` inside the named top-level section of a
 *  /metrics document (sections never nest, so a forward scan works). */
double
scrape(const std::string &doc, const std::string &section,
       const std::string &key)
{
    const auto s = doc.find("\"" + section + "\"");
    if (s == std::string::npos)
        return -1.0;
    const auto k = doc.find("\"" + key + "\":", s);
    if (k == std::string::npos)
        return -1.0;
    return std::atof(doc.c_str() + k + key.size() + 3);
}

/** Same, for string-valued keys ("tierState": "degraded"). */
std::string
scrapeString(const std::string &doc, const std::string &section,
             const std::string &key)
{
    const auto s = doc.find("\"" + section + "\"");
    if (s == std::string::npos)
        return "";
    const auto k = doc.find("\"" + key + "\": \"", s);
    if (k == std::string::npos)
        return "";
    const auto start = k + key.size() + 5;
    const auto end = doc.find('"', start);
    return end == std::string::npos ? "" : doc.substr(start, end - start);
}

struct Tally
{
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> c4xx{0};
    std::atomic<std::uint64_t> c5xx{0};
    std::atomic<std::uint64_t> transport{0};

    void
    count(bool sent, int status)
    {
        if (!sent)
            transport.fetch_add(1);
        else if (status >= 200 && status < 300)
            ok.fetch_add(1);
        else if (status >= 400 && status < 500)
            c4xx.fetch_add(1);
        else
            c5xx.fetch_add(1);
    }
};

int g_failures = 0;

void
check(bool ok, const char *what)
{
    if (ok) {
        std::printf("  CHECK ok: %s\n", what);
    } else {
        std::printf("  CHECK FAILED: %s\n", what);
        ++g_failures;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);

    const int conns =
        args.conns > 0 ? args.conns : (args.quick ? 2 : 4);
    const int zipf_requests = args.quick ? 120 : 800;
    const int sweep_requests = args.quick ? 60 : 300;
    const int bursts = args.quick ? 4 : 16;
    const int burst_size = args.quick ? 8 : 20;
    const int burst_gap_ms = args.quick ? 10 : 25;

    // Boot an in-process server unless pointed at an external one.
    std::unique_ptr<QompressServer> own;
    std::string host = args.host;
    int port = args.port;
    if (host.empty()) {
        ServerOptions opts;
        opts.port = 0;
        opts.workers = args.quick ? 2 : 4;
        opts.maxQueue = 128;
        own = std::make_unique<QompressServer>(opts);
        own->start();
        host = "127.0.0.1";
        port = own->port();
        std::printf("loadgen: in-process qompressd on 127.0.0.1:%d\n",
                    port);
    } else {
        std::printf("loadgen: driving external server %s:%d\n",
                    host.c_str(), port);
    }

    // ----------------------------------------------------------- catalog
    // Zipf-ranked payload catalog over registry families.
    const std::vector<std::pair<std::string, int>> kCatalog = {
        {"bv", 12}, {"qaoa_random", 10}, {"bv", 16},
        {"cuccaro", 8}, {"cnu", 8}, {"qram", 10},
    };
    std::vector<std::string> payloads;
    for (const auto &[family, size] : kCatalog)
        payloads.push_back(
            postCompile(benchmarkFamily(family).make(size).toQasm()));
    std::vector<double> zipfCdf;
    {
        double total = 0.0;
        for (std::size_t i = 0; i < payloads.size(); ++i)
            total += 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
        double acc = 0.0;
        for (std::size_t i = 0; i < payloads.size(); ++i) {
            acc += 1.0 / std::pow(static_cast<double>(i + 1), 1.1) /
                   total;
            zipfCdf.push_back(acc);
        }
    }
    const Circuit sweepBase =
        benchmarkFamily("qaoa_random").make(12);

    Tally tally;
    LatencyHistogram latency;

    // ----------------------------------------------------------- warmup
    // One cold compile per catalog entry + one sweep structure, plus
    // the family batch endpoint (submitBatch with n > 1).
    Client warm(host, port);
    int status = 0;
    std::string body;
    bool alive = warm.request(get("/healthz"), status, body);
    if (!alive || status != 200) {
        std::fprintf(stderr, "loadgen: server %s:%d not reachable\n",
                     host.c_str(), port);
        return 1;
    }
    const std::string before =
        (warm.request(get("/metrics"), status, body), body);
    const auto warm_t0 = Clock::now();
    for (const std::string &p : payloads) {
        warm.request(p, status, body);
        tally.count(true, status);
    }
    {
        Rng rng(args.seed);
        warm.request(postCompile(rerollAngles(sweepBase, rng).toQasm()),
                     status, body);
        tally.count(true, status);
        warm.request(get("/compile?family=bv&sizes=12,16"), status,
                     body);
        tally.count(true, status);
    }
    const double warmup_ms = msSince(warm_t0);

    // -------------------------------------------------------- zipf mix
    const auto zipf_t0 = Clock::now();
    {
        std::vector<std::thread> threads;
        for (int c = 0; c < conns; ++c) {
            threads.emplace_back([&, c] {
                Client client(host, port,
                              args.seed + 100 + static_cast<unsigned>(c));
                Rng rng(args.seed + 1000 + static_cast<unsigned>(c));
                const int mine = zipf_requests / conns +
                                 (c < zipf_requests % conns ? 1 : 0);
                for (int i = 0; i < mine; ++i) {
                    const double u = rng.nextDouble();
                    std::size_t pick = 0;
                    while (pick + 1 < zipfCdf.size() &&
                           u > zipfCdf[pick])
                        ++pick;
                    int st = 0;
                    std::string b;
                    const auto t0 = Clock::now();
                    const bool sent =
                        client.requestWithRetry(payloads[pick], st, b);
                    latency.record(msSince(t0) * 1000.0);
                    tally.count(sent, st);
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    const double zipf_ms = msSince(zipf_t0);

    // ------------------------------------------------------- sweep mix
    // Unique angles per request: exact-tier misses the template tier
    // must absorb as rebinds.
    const auto sweep_t0 = Clock::now();
    {
        std::vector<std::thread> threads;
        for (int c = 0; c < conns; ++c) {
            threads.emplace_back([&, c] {
                Client client(host, port,
                              args.seed + 200 + static_cast<unsigned>(c));
                Rng rng(args.seed + 2000 + static_cast<unsigned>(c));
                const int mine = sweep_requests / conns +
                                 (c < sweep_requests % conns ? 1 : 0);
                for (int i = 0; i < mine; ++i) {
                    const std::string p = postCompile(
                        rerollAngles(sweepBase, rng).toQasm());
                    int st = 0;
                    std::string b;
                    const auto t0 = Clock::now();
                    const bool sent = client.requestWithRetry(p, st, b);
                    latency.record(msSince(t0) * 1000.0);
                    tally.count(sent, st);
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    const double sweep_ms = msSince(sweep_t0);

    // ---------------------------------------------------- burst arrivals
    // Idle gap, then a volley: the arrival shape that exposes queueing
    // tails a closed loop hides.
    LatencyHistogram burstLatency;
    {
        std::vector<std::thread> threads;
        for (int c = 0; c < conns; ++c) {
            threads.emplace_back([&, c] {
                Client client(host, port,
                              args.seed + 300 + static_cast<unsigned>(c));
                Rng rng(args.seed + 3000 + static_cast<unsigned>(c));
                for (int b = 0; b < bursts; ++b) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(burst_gap_ms));
                    for (int i = 0; i < burst_size; ++i) {
                        const std::size_t pick =
                            rng.nextUint(payloads.size());
                        int st = 0;
                        std::string bd;
                        const auto t0 = Clock::now();
                        const bool sent = client.requestWithRetry(
                            payloads[pick], st, bd);
                        const double us = msSince(t0) * 1000.0;
                        latency.record(us);
                        burstLatency.record(us);
                        tally.count(sent, st);
                    }
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
    }

    // ---------------------------------------------------- malformed mix
    // Adversarial QASM: every case must be a structured 4xx naming the
    // problem, and the server must keep serving afterwards.
    const std::vector<std::string> kMalformed = {
        "OPENQASM 2.0; qreg q[2]; cx q[0],q[0];",          // dup operand
        "OPENQASM 2.0; qreg q[99999999999999]; x q[0];",   // int overflow
        "OPENQASM 2.0; qreg q[1]; rz(1.2.3) q[0];",        // bad number
        "OPENQASM 2.0; qreg q[2]; cx q[0],",               // truncated
        "OPENQASM 2.0; qreg q[2]; cx r[0],q[1];",          // unknown reg
        "OPENQASM 2.0; qreg q[1]; rz(" +
            std::string(300, '(') + "1" + std::string(300, ')') +
            ") q[0];",                                     // paren bomb
    };
    std::uint64_t malformed400 = 0;
    bool malformedStructured = true;
    {
        Client client(host, port);
        for (const std::string &bad : kMalformed) {
            int st = 0;
            std::string b;
            if (client.request(postCompile(bad), st, b) && st == 400)
                ++malformed400;
            if (b.find("\"error\"") == std::string::npos)
                malformedStructured = false;
        }
        // Unknown strategy on a valid circuit: also a structured 400.
        int st = 0;
        std::string b;
        if (client.request(postCompile("OPENQASM 2.0; qreg q[2]; "
                                       "cx q[0],q[1];",
                                       "?strategy=nope"),
                           st, b) &&
            st == 400 && b.find("\"error\"") != std::string::npos)
            ++malformed400;
        // Raw garbage at the HTTP layer: 400, connection dropped,
        // next request (auto-reconnect) must succeed.
        client.request("GARBAGE\r\n\r\n", st, b);
        const bool aliveAfter =
            client.request(get("/healthz"), st, b) && st == 200;
        if (!aliveAfter)
            malformedStructured = false;
    }

    // ------------------------------------------------- fault scenario
    // A dedicated store-backed server (always in-process, even under
    // --connect: the fault injector is process-global) is marched
    // through a disk-fault episode. Requests are full=1 with unique
    // angles so every one bypasses the template tier and must talk to
    // the disk tier -- the traffic shape that exercises the breaker.
    const int fault_phase = args.quick ? 24 : 60;
    std::uint64_t fault5xx = 0;
    std::uint64_t faultTransport = 0;
    double f_storeErrors = 0.0, f_degradedSkips = 0.0;
    double f_recoveries = 0.0, f_diskHits = 0.0, f_records = 0.0;
    bool faultDegraded = false, faultRecovered = false;
    bool faultHealthz = false, faultDrain = false;
    bool faultPartition = false, faultRestart = true;
    {
        const std::string storePath =
            format("/tmp/qompress_loadgen_fault_%d.qst",
                   static_cast<int>(::getpid()));
        ::unlink(storePath.c_str());
        ServerOptions fopts;
        fopts.port = 0;
        fopts.workers = 2;
        fopts.service.storePath = storePath;
        fopts.service.storeErrorThreshold = 3;
        fopts.service.storeCooldownMs = 50.0;
        auto fsrv = std::make_unique<QompressServer>(fopts);
        fsrv->start();
        Client fc("127.0.0.1", fsrv->port(), args.seed + 77);
        Rng rng(args.seed + 4000);

        auto drive = [&](int n, std::vector<std::string> *save) {
            for (int i = 0; i < n; ++i) {
                const std::string p = postCompile(
                    rerollAngles(sweepBase, rng).toQasm(), "?full=1");
                if (save)
                    save->push_back(p);
                int st = 0;
                std::string b;
                if (!fc.requestWithRetry(p, st, b))
                    ++faultTransport;
                else if (st >= 500)
                    ++fault5xx;
            }
        };

        // Phase A, healthy: unique full compiles write-behind into the
        // store. Their payloads are kept for the recovery phase.
        std::vector<std::string> phaseA;
        drive(fault_phase, &phaseA);

        // Phase B, faulted: every store read and write fails with EIO.
        // The breaker must open after 3 consecutive errors; requests
        // keep compiling from scratch and keep answering 200.
        {
            FaultInjector inj(args.seed + 5000);
            FaultSpec eio;
            eio.kind = FaultKind::Fail;
            eio.err = EIO;
            inj.arm("store.pwrite", eio);
            inj.arm("store.pread", eio);
            ScopedFaultInjection scoped(inj);
            drive(fault_phase, nullptr);
            int st = 0;
            std::string b;
            fc.request(get("/metrics"), st, b);
            faultDegraded =
                scrapeString(b, "service", "tierState") == "degraded";
            f_storeErrors = scrape(b, "service", "storeErrors");
            f_degradedSkips = scrape(b, "service", "degradedSkips");
            // Health stays 200 (memory tiers serve) but names the state.
            fc.request(get("/healthz"), st, b);
            faultHealthz =
                st == 200 && b.find("degraded") != std::string::npos;
        }

        // Phase C, recovered: faults gone, cooldown elapsed. Clearing
        // the memo cache turns the phase A repeats into disk reads, so
        // the first one carries the half-open probe that re-closes the
        // breaker and the rest are served as diskHits.
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
        fsrv->service().clearCache();
        for (const std::string &p : phaseA) {
            int st = 0;
            std::string b;
            if (!fc.requestWithRetry(p, st, b))
                ++faultTransport;
            else if (st >= 500)
                ++fault5xx;
        }
        {
            int st = 0;
            std::string b;
            fc.request(get("/metrics"), st, b);
            faultRecovered =
                scrapeString(b, "service", "tierState") == "ok";
            f_recoveries = scrape(b, "service", "recoveries");
            f_diskHits = scrape(b, "service", "diskHits");
            faultPartition =
                scrape(b, "service", "requests") ==
                scrape(b, "service", "hits") +
                    scrape(b, "service", "templateHits") +
                    scrape(b, "service", "diskHits") +
                    scrape(b, "service", "misses") +
                    scrape(b, "service", "coalesced");
            // Draining: /healthz flips to 503 + Retry-After before
            // stop(), the signal load balancers bleed traffic on.
            fsrv->beginDrain();
            fc.request(get("/healthz"), st, b);
            faultDrain =
                st == 503 && b.find("draining") != std::string::npos;
        }
        fsrv->stop();
        fsrv.reset();

        // Cold restart over the log the faults battered: every record
        // that survived must load and decode.
        try {
            ArtifactStore store(storePath);
            f_records = static_cast<double>(store.records());
            if (store.records() == 0)
                faultRestart = false;
            for (const ArtifactKey &key : store.keys()) {
                std::vector<std::uint8_t> blob;
                if (store.loadStatus(key, blob) != StoreStatus::Ok) {
                    faultRestart = false;
                    continue;
                }
                try {
                    (void)decodeCompileResult(blob);
                } catch (const FatalError &) {
                    faultRestart = false;
                }
            }
        } catch (const FatalError &) {
            faultRestart = false;
        }
        ::unlink(storePath.c_str());
        std::printf("loadgen: fault scenario: %d+%d+%zu requests, "
                    "%llu 5xx, storeErrors %.0f, recoveries %.0f, "
                    "diskHits %.0f, records %.0f\n",
                    fault_phase, fault_phase, phaseA.size(),
                    static_cast<unsigned long long>(fault5xx),
                    f_storeErrors, f_recoveries, f_diskHits, f_records);
    }

    // ------------------------------------------------------- metrics
    Client probe(host, port);
    probe.request(get("/metrics"), status, body);
    const std::string after = body;
    const double d_requests = scrape(after, "service", "requests") -
                              scrape(before, "service", "requests");
    const double d_hits = scrape(after, "service", "hits") -
                          scrape(before, "service", "hits");
    const double d_template = scrape(after, "service", "templateHits") -
                              scrape(before, "service", "templateHits");
    const double d_misses = scrape(after, "service", "misses") -
                            scrape(before, "service", "misses");
    const double d_coalesced = scrape(after, "service", "coalesced") -
                               scrape(before, "service", "coalesced");
    const double d_disk = scrape(after, "service", "diskHits") -
                          scrape(before, "service", "diskHits");
    const double server_5xx = scrape(after, "server", "serverErrors");
    const double server_shed = scrape(after, "server", "shed");
    const double server_p99 = scrape(after, "latency", "p99_us");

    const LatencyHistogram::Snapshot lat = latency.snapshot();
    const LatencyHistogram::Snapshot blat = burstLatency.snapshot();
    const std::uint64_t total =
        tally.ok.load() + tally.c4xx.load() + tally.c5xx.load();
    const double throughput =
        zipf_ms > 0.0 ? 1000.0 * zipf_requests / zipf_ms : 0.0;

    std::printf(
        "loadgen: %llu requests (%llu ok, %llu 4xx, %llu 5xx, "
        "%llu transport), zipf %.1f ms (%.0f req/s), sweep %.1f ms, "
        "p50 %.0f us, p99 %.0f us\n",
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(tally.ok.load()),
        static_cast<unsigned long long>(tally.c4xx.load()),
        static_cast<unsigned long long>(tally.c5xx.load()),
        static_cast<unsigned long long>(tally.transport.load()),
        zipf_ms, throughput, sweep_ms, lat.p50_us, lat.p99_us);

    if (args.check) {
        std::printf("check mode: asserting acceptance invariants\n");
        check(tally.c5xx.load() == 0, "zero 5xx responses observed");
        check(tally.transport.load() == 0, "zero transport errors");
        check(server_5xx == 0.0, "server counted zero 5xx");
        check(d_template > 0.0,
              "template tier served the sweep mix (templateHits > 0)");
        check(d_hits > 0.0, "memo tier served the zipf mix (hits > 0)");
        check(d_requests == d_hits + d_template + d_disk + d_misses +
                                d_coalesced,
              "ServiceStats partition: requests == hits + templateHits "
              "+ diskHits + misses + coalesced");
        check(malformed400 == kMalformed.size() + 1,
              "every malformed/unknown-input request answered 400");
        check(malformedStructured,
              "malformed requests got structured errors and the server "
              "kept serving");
        check(server_p99 > 0.0, "server-side p99 latency reported");
        check(lat.p99_us > 0.0, "client-side p99 latency reported");
        check(fault5xx == 0 && faultTransport == 0,
              "fault scenario: zero 5xx/transport errors under disk "
              "faults");
        check(f_storeErrors > 0.0,
              "fault scenario: /metrics surfaced storeErrors > 0");
        check(faultDegraded,
              "fault scenario: disk tier degraded under sustained "
              "faults");
        check(faultHealthz,
              "fault scenario: /healthz reported degraded (still 200)");
        check(faultRecovered && f_recoveries > 0.0,
              "fault scenario: tier recovered after faults cleared");
        check(f_diskHits > 0.0,
              "fault scenario: recovered tier served disk hits");
        check(faultPartition,
              "fault scenario: ServiceStats partition held through the "
              "episode");
        check(faultDrain,
              "fault scenario: /healthz answered 503 draining after "
              "beginDrain()");
        check(faultRestart,
              "fault scenario: cold restart recovered the log and every "
              "record decodes");
        if (g_failures > 0) {
            std::printf("check: %d FAILURE(S)\n", g_failures);
            return 1;
        }
        std::printf("check: all invariants hold\n");
    }

    // ------------------------------------------------------- JSON out
    const char *qt_env = std::getenv("QOMPRESS_THREADS");
#ifndef QOMPRESS_BUILD_TYPE
#define QOMPRESS_BUILD_TYPE "unknown"
#endif
    const std::string json = format(
        "{\n"
        "  \"bench\": \"loadgen\",\n"
        "  \"host\": {\n"
        "    \"nproc\": %u,\n"
        "    \"qompress_threads\": \"%s\",\n"
        "    \"build_type\": \"%s\"\n"
        "  },\n"
        "  \"metrics\": {\n"
        "    \"loadgen_zipf_warm_ms\": %.2f,\n"
        "    \"loadgen_sweep_warm_ms\": %.2f,\n"
        "    \"loadgen_warmup_cold_ms\": %.2f,\n"
        "    \"loadgen_throughput_rps\": %.1f,\n"
        "    \"loadgen_requests\": %llu,\n"
        "    \"loadgen_http_200\": %llu,\n"
        "    \"loadgen_http_4xx\": %llu,\n"
        "    \"loadgen_http_5xx\": %llu,\n"
        "    \"loadgen_transport_errors\": %llu,\n"
        "    \"loadgen_p50_us\": %.1f,\n"
        "    \"loadgen_p99_us\": %.1f,\n"
        "    \"loadgen_max_us\": %.1f,\n"
        "    \"loadgen_burst_p50_us\": %.1f,\n"
        "    \"loadgen_burst_p99_us\": %.1f,\n"
        "    \"loadgen_memo_hits\": %.0f,\n"
        "    \"loadgen_template_hits\": %.0f,\n"
        "    \"loadgen_misses\": %.0f,\n"
        "    \"loadgen_coalesced\": %.0f,\n"
        "    \"loadgen_shed\": %.0f,\n"
        "    \"loadgen_server_p99_us\": %.1f,\n"
        "    \"loadgen_fault_5xx\": %llu,\n"
        "    \"loadgen_fault_store_errors\": %.0f,\n"
        "    \"loadgen_fault_degraded_skips\": %.0f,\n"
        "    \"loadgen_fault_recoveries\": %.0f,\n"
        "    \"loadgen_fault_disk_hits\": %.0f,\n"
        "    \"loadgen_fault_store_records\": %.0f,\n"
        "    \"loadgen_conns\": %d\n"
        "  }\n"
        "}\n",
        std::thread::hardware_concurrency(),
        qt_env ? qt_env : "unset", QOMPRESS_BUILD_TYPE, zipf_ms,
        sweep_ms, warmup_ms, throughput,
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(tally.ok.load()),
        static_cast<unsigned long long>(tally.c4xx.load()),
        static_cast<unsigned long long>(tally.c5xx.load()),
        static_cast<unsigned long long>(tally.transport.load()),
        lat.p50_us, lat.p99_us, lat.max_us, blat.p50_us, blat.p99_us,
        d_hits, d_template, d_misses, d_coalesced, server_shed,
        server_p99, static_cast<unsigned long long>(fault5xx),
        f_storeErrors, f_degradedSkips, f_recoveries, f_diskHits,
        f_records, conns);

    if (!args.out.empty()) {
        std::FILE *f = std::fopen(args.out.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         args.out.c_str());
            return 1;
        }
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote %s\n", args.out.c_str());
    } else {
        std::fputs(json.c_str(), stdout);
    }

    if (own)
        own->stop();
    return 0;
}
