/**
 * @file
 * Extra experiment (not a paper figure): Monte-Carlo validation of
 * the section-6.1.1 EPS analytics. For a spread of benchmarks and
 * strategies, the trajectory sampler's empirical success rate must
 * match the closed-form gate x coherence product within statistical
 * error -- including the FQ baseline whose occupancy changes
 * mid-circuit.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "circuits/registry.hh"
#include "sim/noise.hh"
#include "strategies/strategy.hh"

using namespace qompress;
using namespace qompress::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("EPS model validation by trajectory sampling",
           "Empirical success fraction vs analytic total EPS; "
           "|z| <= ~3 indicates agreement.");

    const GateLibrary lib;
    NoiseSimOptions nopts;
    nopts.trials = args.quick ? 10000 : 50000;

    TablePrinter t({"benchmark", "strategy", "analytic", "empirical",
                    "stderr", "z"});
    for (const char *fam : {"cuccaro", "cnu", "qaoa_cylinder"}) {
        const Circuit c = benchmarkFamily(fam).make(args.quick ? 10 : 14);
        const Topology topo = Topology::grid(c.numQubits());
        for (const char *s : {"qubit_only", "fq", "eqm", "rb"}) {
            const auto res = makeStrategy(s)->compile(c, topo, lib);
            const auto sim = sampleEps(res.compiled, lib, nopts);
            const double z =
                (sim.empiricalEps - res.metrics.totalEps) /
                std::max(sim.standardError, 1e-9);
            t.addRow({fam, s, format("%.4f", res.metrics.totalEps),
                      format("%.4f", sim.empiricalEps),
                      format("%.4f", sim.standardError),
                      format("%+.2f", z)});
        }
    }
    emit(t, args);
    return 0;
}
