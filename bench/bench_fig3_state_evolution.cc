/**
 * @file
 * Reproduces paper Figure 3: state evolution during a standard CX2
 * (two bare qubits) versus a partial CX0q (encoded control, bare
 * target). A control pulse is first synthesized with GRAPE (loose
 * settings by default; pass --full for a tighter optimization), then
 * the Schrodinger evolution of the paper's initial states is sampled:
 * CX2 from |10> and CX0q from |3>|0> (= |11>|0>), both of which must
 * flip the target. The CX0q trace visits many more basis states,
 * illustrating the higher Hilbert-space complexity.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "pulse/evolution.hh"
#include "pulse/targets.hh"

using namespace qompress;
using namespace qompress::bench;

namespace {

void
trace(const std::string &gate, double duration_ns, double dt_ns,
      int start_logical, const std::vector<int> &watch,
      const std::vector<std::string> &watch_names, const BenchArgs &args)
{
    std::vector<int> dims;
    const CMatrix target = namedTarget(gate, dims);
    const TransmonSystem sys(dims, 1);
    const int segments =
        static_cast<int>(duration_ns / dt_ns + 0.5);

    GrapeOptions gopts;
    gopts.maxIterations = args.has("--full") ? 400 : (args.quick ? 15 : 60);
    gopts.targetFidelity = args.has("--full") ? 0.99 : 0.85;
    gopts.learningRate = 0.01;
    GrapeOptimizer grape(sys, target, duration_ns, segments, gopts);
    const GrapeResult res = grape.run();
    std::printf("--- %s: duration %.0f ns, pulse fidelity %.4f "
                "(%d iterations) ---\n",
                gate.c_str(), duration_ns, res.fidelity, res.iterations);

    std::vector<std::string> headers = {"t_ns"};
    for (const auto &n : watch_names)
        headers.push_back(n);
    headers.push_back("other");
    TablePrinter t(headers);

    for (const auto &sample :
         traceEvolution(sys, grape, res.controls, start_logical, watch)) {
        std::vector<std::string> row = {format("%.0f", sample.timeNs)};
        for (double p : sample.populations)
            row.push_back(format("%.3f", p));
        row.push_back(format("%.3f", sample.other));
        t.addRow(std::move(row));
    }
    emit(t, args);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Figure 3: CX2 vs CX0q state evolution",
           "CX2 acts on a 4-state logical space; CX0q on an 8-state "
           "one -- its populations spread over many more states before "
           "refocusing (harder pulse search, longer durations).");

    // CX2 from |10>: expect the target to flip to |11>.
    trace("CX2", 251.0, 1.0, /*start=*/2, {2, 3},
          {"P(10)", "P(11)"}, args);
    // CX0q from |3>|0> = |11>|0>: expect the bare target to flip.
    trace("CX0q", 560.0, args.quick ? 2.0 : 1.0, /*start=*/6, {6, 7},
          {"P(3,0)", "P(3,1)"}, args);
    return 0;
}
