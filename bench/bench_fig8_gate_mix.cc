/**
 * @file
 * Reproduces paper Figure 8: the distribution of physical gate types
 * for a 30-qubit torus QAOA circuit under each pairing strategy. The
 * paper's observation: EQM uses many more internal CX gates, while
 * AWE/PP lean on partial CX and SWAP operations.
 */

#include <cstdio>

#include "bench_util.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "strategies/strategy.hh"

using namespace qompress;
using namespace qompress::bench;

namespace {

int
sumClasses(const std::vector<int> &hist,
           std::initializer_list<PhysGateClass> classes)
{
    int total = 0;
    for (PhysGateClass c : classes)
        total += hist[static_cast<std::size_t>(c)];
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Figure 8: gate-type distribution, 30-qubit torus QAOA",
           "EQM should favour internal CX gates; AWE/PP should show "
           "more partial CX and SWAP traffic.");

    const Graph g = torusGraph(5, 6); // exactly 30 qubits
    const Circuit circuit = qaoaFromGraph(g, {}, "qaoa_torus_30");
    const Topology topo = Topology::grid(circuit.numQubits());
    const GateLibrary lib;

    TablePrinter t({"strategy", "total", "1q", "CX_internal", "CX2",
                    "CX_qb-qq", "CX_qq-qq", "SWAP2", "SWAP_qb-qq",
                    "SWAP_qq-qq", "SWAPin", "SWAP4", "ENC/DEC"});
    for (const char *name :
         {"qubit_only", "fq", "eqm", "rb", "awe", "pp"}) {
        const auto res = makeStrategy(name)->compile(circuit, topo, lib);
        const auto &h = res.metrics.classHistogram;
        t.addRow({
            name,
            format("%d", res.metrics.numGates),
            format("%d", sumClasses(h, {PhysGateClass::SqBare,
                                        PhysGateClass::SqEnc0,
                                        PhysGateClass::SqEnc1,
                                        PhysGateClass::SqEncBoth})),
            format("%d", sumClasses(h, {PhysGateClass::CxInternal0,
                                        PhysGateClass::CxInternal1})),
            format("%d", sumClasses(h, {PhysGateClass::CxBareBare})),
            format("%d", sumClasses(h, {PhysGateClass::CxEnc0Bare,
                                        PhysGateClass::CxEnc1Bare,
                                        PhysGateClass::CxBareEnc0,
                                        PhysGateClass::CxBareEnc1})),
            format("%d", sumClasses(h, {PhysGateClass::CxEnc00,
                                        PhysGateClass::CxEnc01,
                                        PhysGateClass::CxEnc10,
                                        PhysGateClass::CxEnc11})),
            format("%d", sumClasses(h, {PhysGateClass::SwapBareBare})),
            format("%d", sumClasses(h, {PhysGateClass::SwapBareEnc0,
                                        PhysGateClass::SwapBareEnc1})),
            format("%d", sumClasses(h, {PhysGateClass::SwapEnc00,
                                        PhysGateClass::SwapEnc01,
                                        PhysGateClass::SwapEnc11})),
            format("%d", sumClasses(h, {PhysGateClass::SwapInternal})),
            format("%d", sumClasses(h, {PhysGateClass::SwapFull})),
            format("%d", sumClasses(h, {PhysGateClass::Encode,
                                        PhysGateClass::Decode})),
        });
    }
    emit(t, args);
    return 0;
}
