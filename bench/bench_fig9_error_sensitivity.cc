/**
 * @file
 * Reproduces paper Figure 9: gate EPS as the qubit-only gate error
 * improves while ququart gate error stays fixed, for a Cuccaro adder
 * and a cylinder QAOA. The crossover (where qubit-only compilation
 * overtakes ququart compilation) is marked per strategy.
 */

#include <cstdio>

#include "bench_util.hh"
#include "circuits/arithmetic.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "strategies/strategy.hh"

using namespace qompress;
using namespace qompress::bench;

namespace {

void
runCircuit(const Circuit &circuit, const BenchArgs &args)
{
    const Topology topo = Topology::grid(circuit.numQubits());
    const std::vector<double> twoq_errors =
        args.quick ? std::vector<double>{1e-2, 2e-3, 1e-4}
                   : std::vector<double>{1e-2, 7e-3, 5e-3, 3e-3, 2e-3,
                                         1e-3, 5e-4, 2e-4, 1e-4};
    const std::vector<std::string> strategies = {"eqm", "rb", "awe",
                                                 "pp"};

    std::vector<std::string> headers = {"2q_error", "qubit_only"};
    for (const auto &s : strategies) {
        headers.push_back(s);
        headers.push_back(s + "/qo");
    }
    TablePrinter t(headers);

    std::vector<std::string> crossover(strategies.size(),
                                       "none in range");
    for (double err : twoq_errors) {
        GateLibrary lib; // ququart fidelities stay at defaults
        lib.setQubitGateError(err / 10.0, err);
        const double qo = makeStrategy("qubit_only")
                              ->compile(circuit, topo, lib)
                              .metrics.gateEps;
        std::vector<std::string> row = {format("%.0e", err),
                                        format("%.4f", qo)};
        for (std::size_t i = 0; i < strategies.size(); ++i) {
            const double eps = makeStrategy(strategies[i])
                                   ->compile(circuit, topo, lib)
                                   .metrics.gateEps;
            row.push_back(format("%.4f", eps));
            row.push_back(ratio(eps, qo));
            if (eps < qo && crossover[i] == "none in range")
                crossover[i] = format("%.0e", err);
        }
        t.addRow(std::move(row));
    }
    emit(t, args);
    for (std::size_t i = 0; i < strategies.size(); ++i) {
        std::printf("crossover (%s falls below qubit-only): %s\n",
                    strategies[i].c_str(), crossover[i].c_str());
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Figure 9: sensitivity to better qubit gate error",
           "Strategies keep their relative order with diminishing "
           "returns as qubit error improves; the black-line crossover "
           "appears once qubit gates are much cleaner than ququart "
           "gates.");

    const int n = args.quick ? 14 : 24;
    std::printf("--- Cuccaro adder (%d qubits) ---\n", n);
    runCircuit(cuccaroAdderForSize(n), args);

    std::printf("--- Cylinder QAOA (%d qubits) ---\n", n);
    runCircuit(qaoaFromGraph(cylinderGraphForSize(n), {},
                             "qaoa_cylinder"),
               args);
    return 0;
}
