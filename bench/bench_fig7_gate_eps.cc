/**
 * @file
 * Reproduces paper Figure 7: gate Expected Probability of Success for
 * every benchmark family, circuit sizes 5-40, every compression
 * strategy, on per-circuit-sized grid architectures. Values are also
 * reported relative to the qubit-only baseline (the paper's y-axis).
 *
 * Pass --ec to include the exhaustive strategy on sizes <= 14.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "circuits/registry.hh"
#include "strategies/strategy.hh"

using namespace qompress;
using namespace qompress::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Figure 7: gate EPS vs circuit size",
           "Expected: FQ below qubit-only everywhere; EQM/RB >= 1.5x "
           "on CNU and Cuccaro; modest (<~1.2x) and noisy gains on "
           "graph QAOA; EQM the most consistent.");

    const GateLibrary lib;
    const std::vector<std::string> strategies =
        {"qubit_only", "fq", "eqm", "rb", "awe", "pp"};
    const bool with_ec = args.has("--ec");

    for (const auto &family : benchmarkFamilies()) {
        std::vector<std::string> headers = {"size", "qubits"};
        for (const auto &s : strategies)
            headers.push_back(s);
        for (const auto &s : strategies) {
            if (s != "qubit_only")
                headers.push_back(s + "/qo");
        }
        if (with_ec)
            headers.push_back("ec");
        TablePrinter t(headers);

        for (int size : defaultSizes(args)) {
            if (size < family.minQubits)
                continue;
            const Circuit c = family.make(size);
            const Topology topo = Topology::grid(c.numQubits());
            std::map<std::string, double> eps;
            for (const auto &s : strategies) {
                eps[s] = makeStrategy(s)
                             ->compile(c, topo, lib)
                             .metrics.gateEps;
            }
            std::vector<std::string> row = {
                format("%d", size), format("%d", c.numQubits())};
            for (const auto &s : strategies)
                row.push_back(format("%.4f", eps[s]));
            for (const auto &s : strategies) {
                if (s != "qubit_only")
                    row.push_back(ratio(eps[s], eps["qubit_only"]));
            }
            if (with_ec) {
                row.push_back(
                    c.numQubits() <= 14
                        ? format("%.4f", makeStrategy("ec")
                                             ->compile(c, topo, lib)
                                             .metrics.gateEps)
                        : std::string("(skipped)"));
            }
            t.addRow(std::move(row));
        }
        std::printf("--- %s ---\n", family.name.c_str());
        emit(t, args);
    }
    return 0;
}
