/**
 * @file
 * google-benchmark microbenchmarks for compiler throughput: pipeline
 * stages and strategy pair selection across circuit sizes. These are
 * performance (not figure-reproduction) benches.
 */

#include <benchmark/benchmark.h>

#include "circuits/registry.hh"
#include "compiler/pipeline.hh"
#include "ir/passes.hh"
#include "service/compiler_service.hh"
#include "strategies/strategy.hh"

namespace {

using namespace qompress;

const GateLibrary kLib;

void
BM_InteractionModel(benchmark::State &state)
{
    const Circuit c = decomposeToNativeGates(
        benchmarkFamily("cuccaro").make(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        InteractionModel im(c);
        benchmark::DoNotOptimize(im.totalWeight(0));
    }
}
BENCHMARK(BM_InteractionModel)->Arg(10)->Arg(20)->Arg(40);

void
BM_Mapping(benchmark::State &state)
{
    const Circuit c = decomposeToNativeGates(
        benchmarkFamily("cuccaro").make(static_cast<int>(state.range(0))));
    const Topology topo = Topology::grid(c.numQubits());
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, kLib);
    const InteractionModel im(c);
    MapperOptions opts;
    opts.allowDynamicSlot1 = true;
    for (auto _ : state) {
        Layout layout = mapCircuit(c, im, cost, opts);
        benchmark::DoNotOptimize(layout.numMapped());
    }
}
BENCHMARK(BM_Mapping)->Arg(10)->Arg(20)->Arg(40);

void
BM_FullPipeline(benchmark::State &state)
{
    const Circuit c =
        benchmarkFamily("cuccaro").make(static_cast<int>(state.range(0)));
    const Topology topo = Topology::grid(c.numQubits());
    const auto strategy = makeStrategy("eqm");
    for (auto _ : state) {
        auto res = strategy->compile(c, topo, kLib);
        benchmark::DoNotOptimize(res.metrics.totalEps);
    }
}
BENCHMARK(BM_FullPipeline)->Arg(10)->Arg(20)->Arg(40);

/**
 * The same pipeline behind the CompilerService front end with the memo
 * cache defeated (cleared per iteration): measures the request/response
 * overhead plus the context-pool win over BM_FullPipeline's cold
 * contexts.
 */
void
BM_ServiceColdRequest(benchmark::State &state)
{
    const Circuit c =
        benchmarkFamily("cuccaro").make(static_cast<int>(state.range(0)));
    const Topology topo = Topology::grid(c.numQubits());
    CompilerService service;
    const CompileRequest req =
        CompileRequest::forCircuit(c, topo, "eqm", CompilerConfig{}, kLib);
    for (auto _ : state) {
        service.setCacheCapacity(0); // drop memo, keep pooled contexts
        service.setCacheCapacity(256);
        auto res = service.compileSync(req);
        benchmark::DoNotOptimize(res->metrics.totalEps);
    }
}
BENCHMARK(BM_ServiceColdRequest)->Arg(10)->Arg(20)->Arg(40);

/** Warm-path request throughput: every iteration is a memo-cache hit
 *  returning the shared artifact. */
void
BM_ServiceWarmRequest(benchmark::State &state)
{
    const Circuit c =
        benchmarkFamily("cuccaro").make(static_cast<int>(state.range(0)));
    const Topology topo = Topology::grid(c.numQubits());
    CompilerService service;
    const CompileRequest req =
        CompileRequest::forCircuit(c, topo, "eqm", CompilerConfig{}, kLib);
    service.compileSync(req); // populate
    for (auto _ : state) {
        auto res = service.compileSync(req);
        benchmark::DoNotOptimize(res->metrics.totalEps);
    }
}
BENCHMARK(BM_ServiceWarmRequest)->Arg(10)->Arg(20)->Arg(40);

void
BM_StrategyChoosePairs(benchmark::State &state)
{
    const std::vector<std::string> names = {"rb", "awe", "pp", "fq"};
    const std::string name = names[state.range(1)];
    const Circuit c = decomposeToNativeGates(
        benchmarkFamily("qaoa_random")
            .make(static_cast<int>(state.range(0))));
    const Topology topo = Topology::grid(c.numQubits());
    const auto strategy = makeStrategy(name);
    CompilerConfig cfg;
    for (auto _ : state) {
        auto pairs = strategy->choosePairs(c, topo, kLib, cfg);
        benchmark::DoNotOptimize(pairs.size());
    }
    state.SetLabel(name);
}
BENCHMARK(BM_StrategyChoosePairs)
    ->ArgsProduct({{20, 30}, {0, 1, 2, 3}});

void
BM_Validation(benchmark::State &state)
{
    const Circuit c =
        benchmarkFamily("cuccaro").make(static_cast<int>(state.range(0)));
    const Topology topo = Topology::grid(c.numQubits());
    const auto res = makeStrategy("eqm")->compile(c, topo, kLib);
    for (auto _ : state)
        validateCompiled(res.compiled, topo);
}
BENCHMARK(BM_Validation)->Arg(20);

} // namespace

BENCHMARK_MAIN();
