/**
 * @file
 * Reproduces paper Figure 11: coherence EPS for Cuccaro and torus
 * QAOA with 10x better T1 times for both qubits and ququarts. The
 * margin between qubit-only and ququart strategies narrows, but at
 * the worst-case 1:3 T1 ratio coherence still favours qubit-only.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "circuits/registry.hh"
#include "strategies/strategy.hh"

using namespace qompress;
using namespace qompress::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Figure 11: coherence EPS with 10x better T1",
           "T1 = 1.635 ms (qubit) / 0.545 ms (ququart).");

    GateLibrary lib;
    lib.setT1(10.0 * GateLibrary::kT1QubitNs,
              10.0 * GateLibrary::kT1QuquartNs);
    const std::vector<std::string> strategies =
        {"qubit_only", "fq", "eqm", "rb", "awe", "pp"};

    for (const char *fam : {"cuccaro", "qaoa_torus"}) {
        const auto &family = benchmarkFamily(fam);
        std::vector<std::string> headers = {"size", "qubits"};
        for (const auto &s : strategies)
            headers.push_back(s);
        for (const auto &s : strategies) {
            if (s != "qubit_only")
                headers.push_back(s + "/qo");
        }
        TablePrinter t(headers);
        for (int size : defaultSizes(args)) {
            if (size < family.minQubits)
                continue;
            const Circuit c = family.make(size);
            const Topology topo = Topology::grid(c.numQubits());
            std::map<std::string, double> eps;
            for (const auto &s : strategies) {
                eps[s] = makeStrategy(s)
                             ->compile(c, topo, lib)
                             .metrics.coherenceEps;
            }
            std::vector<std::string> row = {
                format("%d", size), format("%d", c.numQubits())};
            for (const auto &s : strategies)
                row.push_back(format("%.5f", eps[s]));
            for (const auto &s : strategies) {
                if (s != "qubit_only")
                    row.push_back(ratio(eps[s], eps["qubit_only"]));
            }
            t.addRow(std::move(row));
        }
        std::printf("--- %s ---\n", fam);
        emit(t, args);
    }
    return 0;
}
