/**
 * @file
 * Reproduces paper Figure 4: an exhaustive greedy compression walk on
 * a cylinder-graph QAOA circuit, comparing the critical-path-ordered
 * selection (b) against unordered selection over all pairs (c). Both
 * print the accepted pair and the metric trajectory per step.
 */

#include <cstdio>

#include "bench_util.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "ir/passes.hh"
#include "strategies/exhaustive.hh"
#include "strategies/strategy.hh"

using namespace qompress;
using namespace qompress::bench;

namespace {

void
runVariant(const Circuit &native, const Topology &topo,
           const GateLibrary &lib, bool ordered, const BenchArgs &args)
{
    const ExhaustiveStrategy strategy(ordered);
    std::vector<ExhaustiveStep> trace;
    CompilerConfig cfg;
    const auto pairs = strategy.choosePairsWithTrace(
        native, topo, lib, cfg, &trace);
    std::printf("--- %s selection: %zu compressions ---\n",
                ordered ? "critical-path ordered" : "unordered",
                pairs.size());
    TablePrinter t({"step", "pair", "group", "gate_eps", "coh_eps",
                    "total_eps"});
    const CompileResult base =
        compileWithPairs(native, topo, lib, {}, false, cfg);
    t.addRow({"0", "(none)", "-", format("%.4f", base.metrics.gateEps),
              format("%.4f", base.metrics.coherenceEps),
              format("%.4f", base.metrics.totalEps)});
    int step = 1;
    for (const auto &s : trace) {
        t.addRow({format("%d", step++),
                  format("(q%d, q%d)", s.pair.first, s.pair.second),
                  ordered ? format("%d", s.group) : std::string("-"),
                  format("%.4f", s.gateEps),
                  format("%.4f", s.coherenceEps),
                  format("%.4f", s.totalEps)});
    }
    emit(t, args);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Figure 4: exhaustive compression on a cylinder QAOA",
           "Both selection orders should reach similar success-rate "
           "gains through different compression sets.");

    const int n = args.quick ? 12 : 16;
    const Graph g = cylinderGraphForSize(n);
    QaoaOptions qopts;
    const Circuit circuit = decomposeToNativeGates(
        qaoaFromGraph(g, qopts, "cylinder_qaoa"));
    const Topology topo = Topology::grid(circuit.numQubits());
    const GateLibrary lib;

    std::printf("circuit: %d qubits, %d gates, interaction graph "
                "%d edges\n\n",
                circuit.numQubits(), circuit.numGates(), g.numEdges());

    runVariant(circuit, topo, lib, /*ordered=*/true, args);
    runVariant(circuit, topo, lib, /*ordered=*/false, args);
    return 0;
}
