/**
 * @file
 * Shared helpers for the figure/table reproduction benches: argument
 * parsing, size sweeps, and ratio formatting.
 *
 * Every bench prints the rows/series of one paper table or figure.
 * Common flags: --quick (smaller sweeps), --csv (machine-readable),
 * --sizes=a,b,c (override the size sweep).
 */

#ifndef QOMPRESS_BENCH_BENCH_UTIL_HH
#define QOMPRESS_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "sim/statevector.hh"

namespace qompress::bench {

/** Parsed command-line options shared by all benches. */
struct BenchArgs
{
    bool quick = false;
    bool csv = false;
    std::vector<int> sizes;
    std::vector<std::string> extra;

    bool
    has(const std::string &flag) const
    {
        for (const auto &e : extra) {
            if (e == flag)
                return true;
        }
        return false;
    }
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--quick") {
            args.quick = true;
        } else if (a == "--csv") {
            args.csv = true;
        } else if (a.rfind("--sizes=", 0) == 0) {
            for (const auto &tok : split(a.substr(8), ','))
                args.sizes.push_back(std::stoi(tok));
        } else {
            args.extra.push_back(a);
        }
    }
    return args;
}

/** The paper's size sweep (5 to 40); --quick halves it. */
inline std::vector<int>
defaultSizes(const BenchArgs &args)
{
    if (!args.sizes.empty())
        return args.sizes;
    if (args.quick)
        return {10, 20, 30};
    return {5, 10, 15, 20, 25, 30, 35, 40};
}

/** Render a value/baseline ratio like "1.43x". */
inline std::string
ratio(double value, double baseline)
{
    if (baseline <= 0.0)
        return "n/a";
    return format("%.3fx", value / baseline);
}

inline void
emit(const TablePrinter &table, const BenchArgs &args)
{
    if (args.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << '\n';
}

inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "=== " << title << " ===\n"
              << paper_ref << "\n\n";
}

/** @name Randomized mixed-radix fixtures shared by bench_hotpaths and
 *  the differential tests. @{ */

/** Haar-ish random k x k unitary via Gram-Schmidt of a Gaussian
 *  matrix -- enough structure to exercise dense kernels. */
inline GateMatrix
randomUnitary(std::size_t k, Rng &rng)
{
    GateMatrix m(k);
    for (std::size_t r = 0; r < k; ++r)
        for (std::size_t c = 0; c < k; ++c)
            m[r][c] = Cplx(rng.nextGaussian(), rng.nextGaussian());
    for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t prev = 0; prev < c; ++prev) {
            Cplx dot = 0.0;
            for (std::size_t r = 0; r < k; ++r)
                dot += std::conj(m[r][prev]) * m[r][c];
            for (std::size_t r = 0; r < k; ++r)
                m[r][c] -= dot * m[r][prev];
        }
        double norm = 0.0;
        for (std::size_t r = 0; r < k; ++r)
            norm += std::norm(m[r][c]);
        norm = std::sqrt(norm);
        for (std::size_t r = 0; r < k; ++r)
            m[r][c] /= norm;
    }
    return m;
}

/** Random normalized product state over the given dimensions. */
inline MixedRadixState
randomState(const std::vector<int> &dims, Rng &rng)
{
    std::vector<std::vector<Cplx>> unit_states;
    for (int d : dims) {
        std::vector<Cplx> s(static_cast<std::size_t>(d));
        double norm = 0.0;
        for (auto &amp : s) {
            amp = Cplx(rng.nextGaussian(), rng.nextGaussian());
            norm += std::norm(amp);
        }
        for (auto &amp : s)
            amp /= std::sqrt(norm);
        unit_states.push_back(std::move(s));
    }
    return MixedRadixState::product(unit_states);
}

/** Largest elementwise amplitude deviation between two states. */
inline double
maxAmpDiff(const MixedRadixState &a, const MixedRadixState &b)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a.amp(i) - b.amp(i)));
    return worst;
}

/** One gate of a random statevector workload. */
struct WorkloadGate
{
    std::vector<int> units;
    GateMatrix u;
};

/** Representative mixed-radix workload: one random single-qudit
 *  unitary per unit plus one random two-qudit unitary per adjacent
 *  pair (k = 4, 8, 16 depending on dims). */
inline std::vector<WorkloadGate>
mixedGateWorkload(const std::vector<int> &dims, Rng &rng)
{
    std::vector<WorkloadGate> gates;
    const int n = static_cast<int>(dims.size());
    for (int u = 0; u < n; ++u) {
        gates.push_back(
            {{u}, randomUnitary(static_cast<std::size_t>(dims[u]), rng)});
    }
    for (int u = 0; u + 1 < n; ++u) {
        const std::size_t k =
            static_cast<std::size_t>(dims[u]) * dims[u + 1];
        gates.push_back({{u, u + 1}, randomUnitary(k, rng)});
    }
    return gates;
}
/** @} */

} // namespace qompress::bench

#endif // QOMPRESS_BENCH_BENCH_UTIL_HH
