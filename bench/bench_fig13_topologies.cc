/**
 * @file
 * Reproduces paper Figure 13: ranges (min / median / max across
 * circuit sizes 5-40) of the gate-EPS improvement over qubit-only
 * for CNU and cylinder QAOA on three topologies: per-circuit grids,
 * the 65-unit heavy-hex lattice, and a 65-unit ring. The paper finds
 * no significant topology dependence.
 */

#include <algorithm>
#include <cstdio>

#include "arch/device.hh"
#include "bench_util.hh"
#include "circuits/registry.hh"
#include "strategies/strategy.hh"

using namespace qompress;
using namespace qompress::bench;

namespace {

struct Range
{
    double min, median, max;
};

Range
rangeOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return {v.front(), v[v.size() / 2], v.back()};
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Figure 13: gate-EPS improvement ranges across topologies",
           "Expected: similar improvement ranges on grid, heavy-hex, "
           "and ring (the router adapts to connectivity).");

    const GateLibrary lib;
    const std::vector<std::string> strategies = {"eqm", "rb"};

    // The fixed 65-unit lattices come from the device registry (the
    // shared topology zoo); "grid" stays per-circuit-sized, the one
    // shape the zoo's fixed devices cannot provide.
    DeviceRegistry registry;

    for (const char *fam : {"cnu", "qaoa_cylinder"}) {
        const auto &family = benchmarkFamily(fam);
        TablePrinter t({"topology", "strategy", "min", "median", "max",
                        "sizes"});
        for (const char *topo_name : {"grid", "heavyhex65", "ring65"}) {
            for (const auto &strat : strategies) {
                std::vector<double> improvements;
                int used = 0;
                for (int size : defaultSizes(args)) {
                    if (size < family.minQubits)
                        continue;
                    const Circuit c = family.make(size);
                    const Topology topo =
                        std::string(topo_name) == "grid"
                            ? Topology::grid(c.numQubits())
                            : registry.get(topo_name).topology;
                    if (c.numQubits() > topo.numUnits())
                        continue; // qubit-only baseline must fit
                    const double qo =
                        makeStrategy("qubit_only")
                            ->compile(c, topo, lib)
                            .metrics.gateEps;
                    const double eps = makeStrategy(strat)
                                           ->compile(c, topo, lib)
                                           .metrics.gateEps;
                    improvements.push_back(eps / qo);
                    ++used;
                }
                if (improvements.empty())
                    continue;
                const Range r = rangeOf(improvements);
                t.addRow({topo_name, strat, format("%.3fx", r.min),
                          format("%.3fx", r.median),
                          format("%.3fx", r.max), format("%d", used)});
            }
        }
        std::printf("--- %s ---\n", fam);
        emit(t, args);
    }
    return 0;
}
