/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *  (a) the through-ququart routing penalty (paper's second routing
 *      constraint),
 *  (b) charging an initial ENC per compressed pair,
 *  (c) the Ring-Based scoring terms (merged-degree penalty and
 *      simultaneity penalty).
 * Each table shows total/gate EPS across a few benchmarks as one knob
 * varies with everything else fixed.
 */

#include <cstdio>

#include "bench_util.hh"
#include "circuits/registry.hh"
#include "strategies/ring_based.hh"
#include "strategies/strategy.hh"

using namespace qompress;
using namespace qompress::bench;

namespace {

void
ablatePenalty(const BenchArgs &args)
{
    std::printf("--- (a) through-ququart routing penalty ---\n");
    const GateLibrary lib;
    TablePrinter t({"benchmark", "penalty", "swaps", "gate_eps",
                    "total_eps"});
    for (const char *fam : {"cuccaro", "qaoa_torus"}) {
        const Circuit c = benchmarkFamily(fam).make(20);
        const Topology topo = Topology::grid(c.numQubits());
        for (double p : {1.0, 1.25, 2.0, 4.0}) {
            CompilerConfig cfg;
            cfg.throughQuquartPenalty = p;
            const auto res =
                makeStrategy("eqm")->compile(c, topo, lib, cfg);
            t.addRow({fam, format("%.2f", p),
                      format("%d", res.metrics.numRoutingGates),
                      format("%.4f", res.metrics.gateEps),
                      format("%.3g", res.metrics.totalEps)});
        }
    }
    emit(t, args);
}

void
ablateInitialEnc(const BenchArgs &args)
{
    std::printf("--- (b) initial ENC charging ---\n");
    const GateLibrary lib;
    TablePrinter t({"benchmark", "charge_enc", "pairs", "gate_eps",
                    "total_eps"});
    for (const char *fam : {"cuccaro", "cnu"}) {
        const Circuit c = benchmarkFamily(fam).make(20);
        const Topology topo = Topology::grid(c.numQubits());
        for (bool charge : {true, false}) {
            CompilerConfig cfg;
            cfg.chargeInitialEnc = charge;
            const auto res =
                makeStrategy("eqm")->compile(c, topo, lib, cfg);
            t.addRow({fam, charge ? "yes" : "no",
                      format("%zu", res.compressions.size()),
                      format("%.4f", res.metrics.gateEps),
                      format("%.3g", res.metrics.totalEps)});
        }
    }
    emit(t, args);
}

void
ablateRingBased(const BenchArgs &args)
{
    std::printf("--- (c) Ring-Based scoring terms ---\n");
    const GateLibrary lib;
    const CompilerConfig cfg;
    TablePrinter t({"benchmark", "merged_deg_pen", "simul_pen", "pairs",
                    "swaps", "gate_eps/qo"});
    for (const char *fam : {"cnu", "cuccaro", "qaoa_cylinder"}) {
        const Circuit c = benchmarkFamily(fam).make(24);
        const Topology topo = Topology::grid(c.numQubits());
        const double qo = makeStrategy("qubit_only")
                              ->compile(c, topo, lib)
                              .metrics.gateEps;
        for (double deg_pen : {0.0, 2.0}) {
            for (double sim_pen : {0.0, 0.5}) {
                RingBasedOptions opts;
                opts.mergedDegreePenalty = deg_pen;
                opts.simultaneityPenalty = sim_pen;
                const RingBasedStrategy rb(opts);
                const auto res = rb.compile(c, topo, lib, cfg);
                t.addRow({fam, format("%.1f", deg_pen),
                          format("%.1f", sim_pen),
                          format("%zu", res.compressions.size()),
                          format("%d", res.metrics.numRoutingGates),
                          ratio(res.metrics.gateEps, qo)});
            }
        }
    }
    emit(t, args);
}

void
ablateLookahead(const BenchArgs &args)
{
    std::printf("--- (d) router lookahead weight ---\n");
    const GateLibrary lib;
    TablePrinter t({"benchmark", "lookahead", "swaps", "gate_eps",
                    "total_eps"});
    for (const char *fam : {"cuccaro", "qaoa_random"}) {
        const Circuit c = benchmarkFamily(fam).make(20);
        const Topology topo = Topology::ring(c.numQubits());
        for (double w : {0.0, 0.25, 0.5, 1.0}) {
            CompilerConfig cfg;
            cfg.lookaheadWeight = w;
            const auto res =
                makeStrategy("qubit_only")->compile(c, topo, lib, cfg);
            t.addRow({fam, format("%.2f", w),
                      format("%d", res.metrics.numRoutingGates),
                      format("%.4f", res.metrics.gateEps),
                      format("%.3g", res.metrics.totalEps)});
        }
    }
    emit(t, args);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Ablations: router penalty, ENC charging, RB scoring, "
           "lookahead",
           "Design-choice sensitivity (not a paper figure).");
    ablatePenalty(args);
    ablateInitialEnc(args);
    ablateRingBased(args);
    ablateLookahead(args);
    return 0;
}
