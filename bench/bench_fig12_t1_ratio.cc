/**
 * @file
 * Reproduces paper Figure 12: total EPS of ~25-qubit benchmarks (with
 * 10x better base T1) as the ququart-to-qubit T1 ratio sweeps from
 * the worst case 1/3 up to 1. For each benchmark the crossover ratio
 * -- where compression starts winning on *total* EPS -- is reported
 * (the dashed lines of the figure); the paper finds it lands before
 * the ratio reaches 1.
 */

#include <cstdio>

#include "bench_util.hh"
#include "circuits/registry.hh"
#include "strategies/strategy.hh"

using namespace qompress;
using namespace qompress::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Figure 12: total EPS vs ququart T1 ratio (25-qubit "
           "benchmarks, 10x T1)",
           "As T1_ququart/T1_qubit grows from 1/3 to 1, ququart "
           "compilation should overtake qubit-only before the ratio "
           "reaches 1.");

    const double t1_qubit = 10.0 * GateLibrary::kT1QubitNs;
    const std::vector<double> ratios =
        args.quick ? std::vector<double>{1.0 / 3.0, 0.6, 1.0}
                   : std::vector<double>{1.0 / 3.0, 0.4, 0.5, 0.6, 0.7,
                                         0.8, 0.9, 1.0};
    const int target_size = 25;

    for (const char *fam : {"cuccaro", "cnu", "qram", "qaoa_cylinder",
                            "qaoa_torus"}) {
        const Circuit c = benchmarkFamily(fam).make(target_size);
        const Topology topo = Topology::grid(c.numQubits());
        TablePrinter t({"t1_ratio", "qubit_only", "eqm", "eqm/qo"});
        std::string crossover = "none in range";
        for (double r : ratios) {
            GateLibrary lib;
            lib.setT1(t1_qubit, r * t1_qubit);
            const double qo = makeStrategy("qubit_only")
                                  ->compile(c, topo, lib)
                                  .metrics.totalEps;
            const double eqm = makeStrategy("eqm")
                                   ->compile(c, topo, lib)
                                   .metrics.totalEps;
            t.addRow({format("%.3f", r), format("%.4f", qo),
                      format("%.4f", eqm), ratio(eqm, qo)});
            if (eqm >= qo && crossover == "none in range")
                crossover = format("%.3f", r);
        }
        std::printf("--- %s (%d qubits) ---\n", fam, c.numQubits());
        emit(t, args);
        std::printf("crossover ratio (EQM total EPS >= qubit-only): "
                    "%s\n\n",
                    crossover.c_str());
    }
    return 0;
}
