/**
 * @file
 * Reproduces paper Figure 10: coherence Expected Probability of
 * Success (the exp(-t_qb/T1qb - t_qd/T1qd) product) for every
 * benchmark family, size, and strategy. The paper's observation: all
 * partial-gate strategies beat FQ on duration, EQM usually leads, and
 * the best gate EPS does not always give the best coherence EPS.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "circuits/registry.hh"
#include "strategies/strategy.hh"

using namespace qompress;
using namespace qompress::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Figure 10: coherence EPS vs circuit size",
           "Worst-case coherence model, T1 = 163.5 us (qubit) / "
           "54.5 us (ququart).");

    const GateLibrary lib;
    const std::vector<std::string> strategies =
        {"qubit_only", "fq", "eqm", "rb", "awe", "pp"};

    for (const auto &family : benchmarkFamilies()) {
        std::vector<std::string> headers = {"size", "qubits",
                                            "duration_qo_us"};
        for (const auto &s : strategies)
            headers.push_back(s);
        for (const auto &s : strategies) {
            if (s != "qubit_only")
                headers.push_back(s + "/qo");
        }
        TablePrinter t(headers);

        for (int size : defaultSizes(args)) {
            if (size < family.minQubits)
                continue;
            const Circuit c = family.make(size);
            const Topology topo = Topology::grid(c.numQubits());
            std::map<std::string, double> eps;
            double qo_duration = 0.0;
            for (const auto &s : strategies) {
                const auto res = makeStrategy(s)->compile(c, topo, lib);
                eps[s] = res.metrics.coherenceEps;
                if (s == "qubit_only")
                    qo_duration = res.metrics.durationNs / 1000.0;
            }
            std::vector<std::string> row = {
                format("%d", size), format("%d", c.numQubits()),
                format("%.1f", qo_duration)};
            for (const auto &s : strategies)
                row.push_back(format("%.4f", eps[s]));
            for (const auto &s : strategies) {
                if (s != "qubit_only")
                    row.push_back(ratio(eps[s], eps["qubit_only"]));
            }
            t.addRow(std::move(row));
        }
        std::printf("--- %s ---\n", family.name.c_str());
        emit(t, args);
    }
    return 0;
}
