/**
 * @file
 * Reproduces paper Table 1: shortest pulse durations for the
 * mixed-radix gate set.
 *
 * Two parts:
 *  (1) the paper-calibrated gate library shipped with the compiler
 *      (these exact numbers drive every other experiment), and
 *  (2) a live GRAPE duration search for the single-transmon gates
 *      (X, X0, X1, X0,1, CX0, CX1, SWAPin), demonstrating the
 *      Juqbox-replacement pipeline end to end. Pass --two-qudit to
 *      also optimize CX2 (slow), --no-optimize to skip part 2.
 */

#include <cstdio>

#include "arch/gate_library.hh"
#include "bench_util.hh"
#include "pulse/duration_search.hh"
#include "pulse/targets.hh"

using namespace qompress;
using namespace qompress::bench;

namespace {

struct Row
{
    const char *name;
    PhysGateClass cls;
};

void
printCalibratedTable(const BenchArgs &args)
{
    const GateLibrary lib;
    TablePrinter t({"group", "gate", "duration_ns", "fidelity"});
    const std::vector<std::pair<const char *, std::vector<Row>>> groups = {
        {"(a) qudit",
         {{"X", PhysGateClass::SqBare},
          {"X0", PhysGateClass::SqEnc0},
          {"X1", PhysGateClass::SqEnc1},
          {"X0,1", PhysGateClass::SqEncBoth},
          {"CX0", PhysGateClass::CxInternal0},
          {"CX1", PhysGateClass::CxInternal1},
          {"SWAPin", PhysGateClass::SwapInternal},
          {"ENC", PhysGateClass::Encode}}},
        {"(b) qubit-qubit",
         {{"CX2", PhysGateClass::CxBareBare},
          {"SWAP2", PhysGateClass::SwapBareBare}}},
        {"(c) qubit-ququart",
         {{"CX0q", PhysGateClass::CxEnc0Bare},
          {"CX1q", PhysGateClass::CxEnc1Bare},
          {"CXq0", PhysGateClass::CxBareEnc0},
          {"CXq1", PhysGateClass::CxBareEnc1},
          {"SWAPq0", PhysGateClass::SwapBareEnc0},
          {"SWAPq1", PhysGateClass::SwapBareEnc1}}},
        {"(d) ququart-ququart",
         {{"CX00", PhysGateClass::CxEnc00},
          {"CX01", PhysGateClass::CxEnc01},
          {"CX10", PhysGateClass::CxEnc10},
          {"CX11", PhysGateClass::CxEnc11},
          {"SWAP00", PhysGateClass::SwapEnc00},
          {"SWAP01", PhysGateClass::SwapEnc01},
          {"SWAP11", PhysGateClass::SwapEnc11},
          {"SWAP4", PhysGateClass::SwapFull}}},
    };
    for (const auto &[group, rows] : groups) {
        for (const auto &row : rows) {
            t.addRow({group, row.name,
                      format("%.0f", lib.duration(row.cls)),
                      format("%.3f", lib.fidelity(row.cls))});
        }
    }
    emit(t, args);
}

void
optimizeGate(const std::string &name, double paper_ns,
             const BenchArgs &args, TablePrinter &out)
{
    std::vector<int> dims;
    const CMatrix target = namedTarget(name, dims);
    const bool single = dims.size() == 1;
    const TransmonSystem sys(dims, 1);

    DurationSearchOptions opts;
    opts.initialDurationNs = 3.0 * paper_ns;
    opts.shrinkFactor = 0.8;
    opts.segmentNs = dims[0] > 2 || (dims.size() > 1 && dims[1] > 2)
        ? 0.5 : 1.0; // qudit transitions need sub-ns resolution
    opts.maxRounds = args.quick ? 3 : 7;
    opts.grape.maxIterations = args.quick ? 150 : 400;
    opts.grape.targetFidelity = single ? 0.999 : 0.99;
    opts.grape.learningRate = 0.01;

    const DurationSearchResult res = minimizeDuration(sys, target, opts);
    out.addRow({name, format("%.0f", paper_ns),
                res.bestDurationNs > 0.0
                    ? format("%.0f", res.bestDurationNs)
                    : std::string("(not reached)"),
                format("%.4f", res.bestFidelity),
                format("%d", static_cast<int>(res.rounds.size()))});
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    banner("Table 1: mixed-radix gate durations",
           "Paper section 3.4; calibrated values ship in GateLibrary "
           "and drive all other benches.");
    printCalibratedTable(args);

    if (args.has("--no-optimize"))
        return 0;

    std::printf("Live GRAPE duration search (rotating-frame transmon "
                "model, guard level, leakage penalty):\n\n");
    TablePrinter t({"gate", "paper_ns", "found_ns", "fidelity",
                    "rounds"});
    optimizeGate("X", 35, args, t);
    optimizeGate("X0", 87, args, t);
    optimizeGate("X1", 66, args, t);
    optimizeGate("X0,1", 86, args, t);
    optimizeGate("CX0", 83, args, t);
    optimizeGate("CX1", 84, args, t);
    optimizeGate("SWAPin", 78, args, t);
    if (args.has("--two-qudit")) {
        optimizeGate("CX2", 251, args, t);
        optimizeGate("SWAP2", 504, args, t);
    }
    emit(t, args);
    std::printf("Note: absolute durations depend on the control ansatz "
                "(the paper used Juqbox B-splines with carrier waves); "
                "the compiler consumes whatever table this produces.\n");
    return 0;
}
