#!/usr/bin/env python3
"""Compare two BENCH_*.json files and print per-metric speedup/regression.

Benches (e.g. bench_hotpaths) emit {"bench": <name>, "metrics": {...}}
with numeric values. Given a baseline and a candidate file, this prints
one row per shared metric with the ratio and a regression marker, and
exits nonzero when any *_ms timing regresses beyond the threshold.

Usage:
    tools/bench_diff.py baseline.json candidate.json [--threshold=1.10]
    tools/bench_diff.py baseline.json candidate.json --regress-threshold=10
    tools/bench_diff.py baseline.json candidate.json --sections=service_

Timings (metrics ending in "_ms") count as regressions when candidate
exceeds baseline * threshold; other metrics are informational. Metrics
present in only one file are reported as "added" (candidate only) or
"removed" (baseline only) and never gated or errored on -- a PR that
introduces a new bench section diffs cleanly against the old snapshot.
Each file's "host" metadata object (nproc, QOMPRESS_THREADS, build
type) is echoed so cross-host comparisons are interpretable.

--regress-threshold=N expresses the same gate as a percentage: exit
non-zero when any timed section slows down by more than N%. It is the
flag CI snapshots gate on (equivalent to --threshold=1+N/100).

--sections=PREFIX[,PREFIX...] restricts gating (and the table) to
metrics whose name starts with one of the prefixes; everything else is
ignored. Lets CI hold one section family to a tighter gate than the
cross-host default.
"""

import json
import math
import sys


def geomean_speedups(base, cand, shared):
    """Geometric-mean speedup (baseline/candidate, >1 = candidate is
    faster) of the shared *_ms metrics, grouped by section prefix (the
    leading token before the first underscore: service_warm_t1_ms and
    service_cold_t1_ms both fold into "service"). One line per section
    makes a whole family's win/regression readable at a glance in CI
    logs without scanning the per-metric table."""
    groups = {}
    for key in shared:
        if not key.endswith("_ms"):
            continue
        b, c = base[key], cand[key]
        if b <= 0 or c <= 0:
            continue
        groups.setdefault(key.split("_", 1)[0], []).append(b / c)
    return {
        section: (math.exp(sum(math.log(r) for r in ratios)
                           / len(ratios)), len(ratios))
        for section, ratios in sorted(groups.items())
    }


def load_doc(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        raise SystemExit(f"{path}: {e.strerror}")
    except json.JSONDecodeError as e:
        raise SystemExit(f"{path}: not valid JSON ({e})")


def metrics_of(doc, path):
    metrics = doc.get("metrics", doc)
    if not isinstance(metrics, dict):
        raise SystemExit(f"{path}: no metrics object")
    return {
        k: v for k, v in metrics.items() if isinstance(v, (int, float))
    }


def describe_host(doc):
    """One-line rendering of the bench's host metadata object, so a
    cross-host comparison (e.g. laptop vs the single-core container
    that produced a committed snapshot) is visible in the output."""
    host = doc.get("host")
    if not isinstance(host, dict):
        return "(no host metadata)"
    return " ".join(f"{k}={v}" for k, v in sorted(host.items()))


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 1.10
    prefixes = None
    for a in argv[1:]:
        if not a.startswith("--"):
            continue
        if a.startswith("--threshold="):
            try:
                threshold = float(a.split("=", 1)[1])
            except ValueError:
                print(f"bad threshold: {a}", file=sys.stderr)
                return 2
        elif a.startswith("--regress-threshold="):
            # Percent slowdown allowed per timed section, e.g.
            # --regress-threshold=10 fails on any >10% *_ms slowdown.
            try:
                pct = float(a.split("=", 1)[1])
            except ValueError:
                print(f"bad regress threshold: {a}", file=sys.stderr)
                return 2
            if pct < 0:
                print(f"regress threshold must be >= 0: {a}",
                      file=sys.stderr)
                return 2
            threshold = 1.0 + pct / 100.0
        elif a.startswith("--sections="):
            prefixes = [p for p in a.split("=", 1)[1].split(",") if p]
            if not prefixes:
                print(f"empty sections filter: {a}", file=sys.stderr)
                return 2
        else:
            print(f"unknown flag: {a}", file=sys.stderr)
            return 2
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    base_doc = load_doc(args[0])
    cand_doc = load_doc(args[1])
    base = metrics_of(base_doc, args[0])
    cand = metrics_of(cand_doc, args[1])
    if prefixes is not None:
        def keep(name):
            return any(name.startswith(p) for p in prefixes)
        base = {k: v for k, v in base.items() if keep(k)}
        cand = {k: v for k, v in cand.items() if keep(k)}
    shared = sorted(set(base) & set(cand))
    removed = sorted(set(base) - set(cand))
    added = sorted(set(cand) - set(base))
    if not shared and not added and not removed:
        print("no numeric metrics match the filter", file=sys.stderr)
        return 2

    print(f"baseline  host: {describe_host(base_doc)}")
    print(f"candidate host: {describe_host(cand_doc)}")
    if describe_host(base_doc) != describe_host(cand_doc):
        print("note: host metadata differs; timing ratios compare "
              "different machines/configurations")
    print()

    width = max(len(k) for k in shared + added + removed)
    regressions = []
    print(f"{'metric':<{width}}  {'baseline':>12}  {'candidate':>12}"
          f"  {'ratio':>8}  note")
    for key in shared:
        b, c = base[key], cand[key]
        ratio = c / b if b else float("inf") if c else 1.0
        note = ""
        if key.endswith("_ms"):
            if ratio > threshold:
                note = "REGRESSION"
                regressions.append(key)
            elif ratio < 1.0 / threshold:
                note = "improved"
        print(f"{key:<{width}}  {b:>12.4g}  {c:>12.4g}"
              f"  {ratio:>7.3f}x  {note}")

    # Sections present in only one file are informational, never gated:
    # a brand-new bench section must not require threshold gymnastics
    # to land, and a retired one must not block the retiring PR.
    for key in removed:
        print(f"{key:<{width}}  {base[key]:>12.4g}  {'--':>12}"
              f"  {'--':>8}  removed (baseline only)")
    for key in added:
        print(f"{key:<{width}}  {'--':>12}  {cand[key]:>12.4g}"
              f"  {'--':>8}  added (candidate only)")
    if added or removed:
        print(f"\n{len(added)} added, {len(removed)} removed "
              "(not gated)")

    speedups = geomean_speedups(base, cand, shared)
    if speedups:
        print("\ngeomean speedup per section "
              "(baseline/candidate, >1 = candidate faster):")
        for section, (speedup, n) in speedups.items():
            print(f"  {section}: {speedup:.3f}x "
                  f"({n} timing{'s' if n != 1 else ''})")

    if regressions:
        print(f"\n{len(regressions)} timing regression(s): "
              + ", ".join(regressions), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
