/**
 * @file
 * Command-line front end: compile an OpenQASM 2.0 circuit for a
 * mixed-radix ququart device and report the paper's success metrics.
 *
 *   qompress_cli circuit.qasm [options]
 *
 * Options:
 *   --strategy=NAME   qubit_only | fq | eqm | rb | awe | pp | ec |
 *                     ec_unordered | portfolio  (default: eqm)
 *   --all             compare every standard strategy
 *   --topology=KIND   grid | heavyhex | ring | line (default: grid)
 *   --device=FILE     custom coupling list ("u v" per line)
 *   --units=N         device size for ring/line/grid (default: fitted)
 *   --lookahead=W     router lookahead weight (default 0)
 *   --t1-scale=X      scale both T1 times by X
 *   --2q-error=E      qubit-only two-qubit gate error (Figure 9 knob)
 *   --optimize        run cancellation/rotation-merging passes first
 *   --verify          statevector equivalence check (small circuits)
 *   --dump            print the scheduled physical gate list
 *   --qasm            echo the parsed circuit back as QASM
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "ir/passes.hh"
#include "ir/qasm.hh"
#include "sim/equivalence.hh"
#include "strategies/strategy.hh"

using namespace qompress;

namespace {

struct CliOptions
{
    std::string file;
    std::string strategy = "eqm";
    std::string topology = "grid";
    std::string deviceFile;
    double lookahead = 0.0;
    int units = 0;
    double t1Scale = 1.0;
    double twoqError = 0.0;
    bool all = false;
    bool optimize = false;
    bool verify = false;
    bool dump = false;
    bool echoQasm = false;
};

void
usage()
{
    std::printf(
        "usage: qompress_cli circuit.qasm [--strategy=NAME] [--all]\n"
        "       [--topology=grid|heavyhex|ring|line] [--device=FILE]\n"
        "       [--units=N] [--lookahead=W] [--t1-scale=X]\n"
        "       [--2q-error=E] [--optimize] [--verify] [--dump]\n"
        "       [--qasm]\n");
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *prefix) {
            return a.substr(std::string(prefix).size());
        };
        if (a == "--all") {
            opts.all = true;
        } else if (a == "--optimize") {
            opts.optimize = true;
        } else if (a == "--verify") {
            opts.verify = true;
        } else if (a == "--dump") {
            opts.dump = true;
        } else if (a == "--qasm") {
            opts.echoQasm = true;
        } else if (a.rfind("--strategy=", 0) == 0) {
            opts.strategy = value("--strategy=");
        } else if (a.rfind("--topology=", 0) == 0) {
            opts.topology = value("--topology=");
        } else if (a.rfind("--device=", 0) == 0) {
            opts.deviceFile = value("--device=");
        } else if (a.rfind("--lookahead=", 0) == 0) {
            opts.lookahead = std::atof(value("--lookahead=").c_str());
        } else if (a.rfind("--units=", 0) == 0) {
            opts.units = std::atoi(value("--units=").c_str());
        } else if (a.rfind("--t1-scale=", 0) == 0) {
            opts.t1Scale = std::atof(value("--t1-scale=").c_str());
        } else if (a.rfind("--2q-error=", 0) == 0) {
            opts.twoqError = std::atof(value("--2q-error=").c_str());
        } else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (!a.empty() && a[0] == '-') {
            QFATAL("unknown option '", a, "'");
        } else {
            QFATAL_IF(!opts.file.empty(), "multiple input files");
            opts.file = a;
        }
    }
    QFATAL_IF(opts.file.empty(), "no input file (see --help)");
    return opts;
}

Topology
makeDevice(const CliOptions &opts, int qubits)
{
    if (!opts.deviceFile.empty())
        return Topology::fromFile(opts.deviceFile);
    const int fitted = opts.units > 0 ? opts.units : qubits;
    if (opts.topology == "grid")
        return Topology::grid(fitted);
    if (opts.topology == "heavyhex")
        return Topology::heavyHex65();
    if (opts.topology == "ring")
        return Topology::ring(std::max(3, fitted));
    if (opts.topology == "line")
        return Topology::line(fitted);
    QFATAL("unknown topology '", opts.topology, "'");
}

void
report(const std::string &name, const CompileResult &res,
       TablePrinter &table)
{
    table.addRow({name, format("%zu", res.compressions.size()),
                  format("%d", res.metrics.numGates),
                  format("%d", res.metrics.numRoutingGates),
                  format("%.2f", res.metrics.durationNs / 1000.0),
                  format("%.4g", res.metrics.gateEps),
                  format("%.4g", res.metrics.coherenceEps),
                  format("%.4g", res.metrics.totalEps)});
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const CliOptions opts = parse(argc, argv);
        Circuit circuit = parseQasmFile(opts.file);
        if (opts.optimize)
            circuit = optimizeCircuit(circuit);
        if (opts.echoQasm)
            std::fputs(circuit.toQasm().c_str(), stdout);

        CompilerConfig cfg;
        cfg.lookaheadWeight = opts.lookahead;
        GateLibrary lib;
        if (opts.t1Scale != 1.0)
            lib.setT1(lib.t1Qubit() * opts.t1Scale,
                      lib.t1Ququart() * opts.t1Scale);
        if (opts.twoqError > 0.0)
            lib.setQubitGateError(opts.twoqError / 10.0,
                                  opts.twoqError);

        const Topology device = makeDevice(opts, circuit.numQubits());
        std::printf("circuit '%s': %d qubits, %d gates; device %s "
                    "(%d units)\n\n",
                    circuit.name().c_str(), circuit.numQubits(),
                    circuit.numGates(), device.name().c_str(),
                    device.numUnits());

        TablePrinter table({"strategy", "pairs", "gates", "swaps",
                            "dur_us", "gate_eps", "coh_eps",
                            "total_eps"});
        CompileResult chosen;
        if (opts.all) {
            for (const auto &s : standardStrategies()) {
                try {
                    report(s->name(),
                           s->compile(circuit, device, lib, cfg), table);
                } catch (const FatalError &e) {
                    table.addRow({s->name(), "-", "-", "-", "-", "-",
                                  "-", "(does not fit)"});
                }
            }
            chosen = makeStrategy("portfolio")
                         ->compile(circuit, device, lib, cfg);
            report("portfolio", chosen, table);
        } else {
            chosen = makeStrategy(opts.strategy)
                         ->compile(circuit, device, lib, cfg);
            report(opts.strategy, chosen, table);
        }
        table.print(std::cout);

        if (opts.dump) {
            std::printf("\nscheduled physical gates:\n");
            for (const auto &g : chosen.compiled.gates())
                std::printf("  %8.0f ns  %s\n", g.start,
                            g.str().c_str());
        }
        if (opts.verify) {
            const auto rep = checkEquivalence(circuit, chosen.compiled);
            std::printf("\nequivalence: %s (max error %.2e)\n",
                        rep.ok ? "PASS" : rep.message.c_str(),
                        rep.maxError);
            if (!rep.ok)
                return 1;
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
