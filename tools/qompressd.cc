/**
 * @file
 * qompressd: the Qompress compile server (see src/server/server.hh).
 *
 *   qompressd [options]
 *
 * Options:
 *   --port=N            listen port (default 8080; 0 = ephemeral,
 *                       printed at startup)
 *   --bind=ADDR         bind address (default 127.0.0.1)
 *   --workers=N         connection workers = max concurrent compiles
 *                       (default: hardware concurrency, min 2)
 *   --queue=N           admission queue bound (default 64)
 *   --deadline-ms=X     default per-request deadline (0 = none)
 *   --idle-timeout-ms=N keep-alive/slow-client read timeout
 *   --cache=N           artifact memo LRU capacity
 *   --cache-bytes=N     memo LRU byte budget (0 = unlimited)
 *   --template-cache=N  template-tier LRU capacity
 *   --contexts=N        warm CompileContext pool capacity
 *   --store=PATH        artifact-store log backing the disk tier
 *                       (restarts with the same PATH boot warm)
 *   --fsync=POLICY      store durability: never (default) | interval |
 *                       always (acknowledged == durable)
 *   --fsync-interval-bytes=N
 *                       appended bytes between syncs under
 *                       --fsync=interval (default 1 MiB)
 *   --store-error-threshold=K
 *                       consecutive store failures before the disk
 *                       tier degrades (0 = breaker off; default 3)
 *   --store-cooldown-ms=X
 *                       how long a degraded tier waits before its
 *                       next recovery probe (default 1000)
 *   --drain-grace-ms=N  on SIGINT/SIGTERM, report "draining" (503) on
 *                       /healthz for N ms before stopping, so load
 *                       balancers bleed traffic away first (default 0)
 *   --max-units=N       largest topology a request may ask for
 *   --device=NAME=PATH  register a custom device NAME from a topology
 *                       file (see Topology::fromFile); repeatable
 *   --calibration=NAME=PATH
 *                       install a qcal calibration on device NAME at
 *                       boot (see arch/device.hh); repeatable, applied
 *                       after every --device
 *   --debug-endpoints   enable POST /debug/sleep and
 *                       POST /devices/<name>/calibration
 *
 * SIGINT/SIGTERM trigger a graceful shutdown: flip /healthz to
 * draining, wait the drain grace, stop accepting, answer queued
 * connections with 503, finish in-flight compiles, drain the service,
 * exit 0.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hh"
#include "server/server.hh"

using namespace qompress;

namespace {

volatile std::sig_atomic_t g_stop = 0;

/** --drain-grace-ms: how long /healthz says "draining" before stop(). */
int g_drainGraceMs = 0;

/** --device / --calibration: NAME=PATH pairs applied to the server's
 *  registry after construction, in command-line order. */
std::vector<std::pair<std::string, std::string>> g_devices;
std::vector<std::pair<std::string, std::string>> g_calibrations;

std::pair<std::string, std::string>
namePathPair(const std::string &spec, const char *flag)
{
    const auto eq = spec.find('=');
    QFATAL_IF(eq == std::string::npos || eq == 0 ||
              eq + 1 == spec.size(),
              flag, " expects NAME=PATH, got '", spec, "'");
    return {spec.substr(0, eq), spec.substr(eq + 1)};
}

void
onSignal(int)
{
    g_stop = 1;
}

void
usage()
{
    std::printf(
        "usage: qompressd [--port=N] [--bind=ADDR] [--workers=N]\n"
        "       [--queue=N] [--deadline-ms=X] [--idle-timeout-ms=N]\n"
        "       [--cache=N] [--cache-bytes=N] [--template-cache=N]\n"
        "       [--contexts=N] [--store=PATH] [--max-units=N]\n"
        "       [--fsync=never|interval|always]\n"
        "       [--fsync-interval-bytes=N] [--store-error-threshold=K]\n"
        "       [--store-cooldown-ms=X] [--drain-grace-ms=N]\n"
        "       [--device=NAME=PATH] [--calibration=NAME=PATH]\n"
        "       [--debug-endpoints]\n");
}

ServerOptions
parse(int argc, char **argv)
{
    ServerOptions opts;
    opts.port = 8080;
    const unsigned hw = std::thread::hardware_concurrency();
    opts.workers = hw > 2 ? static_cast<int>(hw) : 2;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *prefix) {
            return a.substr(std::string(prefix).size());
        };
        if (a.rfind("--port=", 0) == 0) {
            opts.port = std::atoi(value("--port=").c_str());
        } else if (a.rfind("--bind=", 0) == 0) {
            opts.bindAddress = value("--bind=");
        } else if (a.rfind("--workers=", 0) == 0) {
            opts.workers = std::atoi(value("--workers=").c_str());
        } else if (a.rfind("--queue=", 0) == 0) {
            opts.maxQueue = static_cast<std::size_t>(
                std::atol(value("--queue=").c_str()));
        } else if (a.rfind("--deadline-ms=", 0) == 0) {
            opts.defaultDeadlineMs =
                std::atof(value("--deadline-ms=").c_str());
        } else if (a.rfind("--idle-timeout-ms=", 0) == 0) {
            opts.idleTimeoutMs =
                std::atoi(value("--idle-timeout-ms=").c_str());
        } else if (a.rfind("--cache=", 0) == 0) {
            opts.service.cacheCapacity = static_cast<std::size_t>(
                std::atol(value("--cache=").c_str()));
        } else if (a.rfind("--cache-bytes=", 0) == 0) {
            opts.service.cacheBytesCapacity = static_cast<std::size_t>(
                std::atoll(value("--cache-bytes=").c_str()));
        } else if (a.rfind("--store=", 0) == 0) {
            opts.service.storePath = value("--store=");
        } else if (a.rfind("--fsync=", 0) == 0) {
            opts.service.storeFsync =
                fsyncPolicyFromString(value("--fsync="));
        } else if (a.rfind("--fsync-interval-bytes=", 0) == 0) {
            opts.service.storeFsyncIntervalBytes =
                static_cast<std::uint64_t>(std::atoll(
                    value("--fsync-interval-bytes=").c_str()));
        } else if (a.rfind("--store-error-threshold=", 0) == 0) {
            opts.service.storeErrorThreshold =
                static_cast<std::uint64_t>(std::atoll(
                    value("--store-error-threshold=").c_str()));
        } else if (a.rfind("--store-cooldown-ms=", 0) == 0) {
            opts.service.storeCooldownMs =
                std::atof(value("--store-cooldown-ms=").c_str());
        } else if (a.rfind("--drain-grace-ms=", 0) == 0) {
            g_drainGraceMs =
                std::atoi(value("--drain-grace-ms=").c_str());
        } else if (a.rfind("--template-cache=", 0) == 0) {
            opts.service.templateCacheCapacity =
                static_cast<std::size_t>(
                    std::atol(value("--template-cache=").c_str()));
        } else if (a.rfind("--contexts=", 0) == 0) {
            opts.service.contextPoolCapacity = static_cast<std::size_t>(
                std::atol(value("--contexts=").c_str()));
        } else if (a.rfind("--max-units=", 0) == 0) {
            opts.maxUnits = std::atoi(value("--max-units=").c_str());
        } else if (a.rfind("--device=", 0) == 0) {
            g_devices.push_back(
                namePathPair(value("--device="), "--device"));
        } else if (a.rfind("--calibration=", 0) == 0) {
            g_calibrations.push_back(
                namePathPair(value("--calibration="), "--calibration"));
        } else if (a == "--debug-endpoints") {
            opts.debugEndpoints = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            QFATAL("unknown option '", a, "' (see --help)");
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const ServerOptions opts = parse(argc, argv);
        QompressServer server(opts);
        // Customs first, then calibrations, so a boot calibration can
        // target a device registered on the same command line.
        for (const auto &[name, path] : g_devices)
            server.service().devices().addFromFile(name, path);
        for (const auto &[name, path] : g_calibrations) {
            server.service().devices().setCalibration(
                name, DeviceCalibration::fromFile(path));
        }
        server.start();
        std::printf("qompressd listening on %s:%d (workers=%d, "
                    "queue=%zu, cache=%zu, template-cache=%zu, "
                    "store=%s)\n",
                    opts.bindAddress.c_str(), server.port(),
                    opts.workers, opts.maxQueue,
                    opts.service.cacheCapacity,
                    opts.service.templateCacheCapacity,
                    opts.service.storePath.empty()
                        ? "off"
                        : opts.service.storePath.c_str());
        std::fflush(stdout);

        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        while (!g_stop)
            std::this_thread::sleep_for(std::chrono::milliseconds(200));

        std::printf("qompressd: draining and shutting down\n");
        std::fflush(stdout);
        if (g_drainGraceMs > 0) {
            // Advertise "draining" on /healthz while still serving, so
            // load balancers stop routing here before we stop.
            server.beginDrain();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(g_drainGraceMs));
        }
        server.stop();
        const ServerStats s = server.stats();
        std::printf("qompressd: served %llu requests (%llu ok, %llu "
                    "4xx, %llu 5xx, %llu shed)\n",
                    static_cast<unsigned long long>(s.requests),
                    static_cast<unsigned long long>(s.ok),
                    static_cast<unsigned long long>(s.clientErrors),
                    static_cast<unsigned long long>(s.serverErrors),
                    static_cast<unsigned long long>(s.shed));
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "qompressd: %s\n", e.what());
        return 2;
    }
}
