/**
 * @file
 * Domain example: QAOA over an interaction graph -- the paper's
 * graph-structured workload. Builds the four graph families from the
 * evaluation (random 30%, cylinder, torus, binary welded tree),
 * compiles each under qubit-only and EQM on grid / heavy-hex / ring
 * devices, and reports where compression pays off.
 */

#include <cstdio>
#include <iostream>

#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "strategies/strategy.hh"

using namespace qompress;

int
main()
{
    const GateLibrary calibration;
    struct Workload
    {
        const char *name;
        Graph graph;
    };
    const std::vector<Workload> workloads = {
        {"random_30pct", randomGraph(16, 0.3, 11)},
        {"cylinder", cylinderGraph(4, 4)},
        {"torus", torusGraph(4, 4)},
        {"welded_tree", binaryWeldedTree(2, 13)},
    };

    TablePrinter t({"graph", "qubits", "device", "qo_eps", "eqm_eps",
                    "gain", "internal_cx", "pairs"});
    for (const auto &w : workloads) {
        const Circuit circuit = qaoaFromGraph(w.graph, {}, w.name);
        const std::vector<Topology> devices = {
            Topology::grid(circuit.numQubits()),
            Topology::heavyHex65(),
            Topology::ring(65),
        };
        for (const auto &device : devices) {
            const auto qo = makeStrategy("qubit_only")
                                ->compile(circuit, device, calibration);
            const auto eqm = makeStrategy("eqm")->compile(
                circuit, device, calibration);
            const auto &hist = eqm.metrics.classHistogram;
            const int internal =
                hist[static_cast<int>(PhysGateClass::CxInternal0)] +
                hist[static_cast<int>(PhysGateClass::CxInternal1)];
            t.addRow({w.name, format("%d", circuit.numQubits()),
                      device.name(),
                      format("%.4f", qo.metrics.gateEps),
                      format("%.4f", eqm.metrics.gateEps),
                      format("%+.1f%%",
                             100.0 * (eqm.metrics.gateEps /
                                          qo.metrics.gateEps -
                                      1.0)),
                      format("%d", internal),
                      format("%zu", eqm.compressions.size())});
        }
    }
    t.print(std::cout);
    std::printf("\nGraph QAOA gains are modest and structure-dependent "
                "(paper section 7): uniform edge weights leave less "
                "locality for compression to exploit.\n");
    return 0;
}
