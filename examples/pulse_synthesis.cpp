/**
 * @file
 * Domain example: the quantum-optimal-control substrate. Synthesizes
 * a ququart SWAPin pulse on the paper's transmon model and walks the
 * duration-minimization loop (section 3.3 / ref. [39]), printing the
 * per-round trajectory and a glimpse of the final control envelope.
 */

#include <cstdio>
#include <iostream>

#include "common/strings.hh"
#include "common/table.hh"
#include "pulse/duration_search.hh"
#include "pulse/targets.hh"

using namespace qompress;

int
main()
{
    // A single transmon operated as a ququart (4 logical levels) with
    // one guard level, paper section 3.2 parameters.
    std::vector<int> dims;
    const CMatrix target = namedTarget("SWAPin", dims);
    const TransmonSystem system(dims, /*guard_levels=*/1);

    std::printf("target: SWAPin (exchange the two encoded qubits)\n");
    std::printf("system: %d-level transmon, drive bound %.1f MHz\n\n",
                system.levels(0),
                1000.0 * system.params().maxAmplitudeGhz);

    DurationSearchOptions opts;
    opts.initialDurationNs = 160.0;
    opts.shrinkFactor = 0.75;
    opts.segmentNs = 0.5; // resolve the anharmonicity detuning
    opts.maxRounds = 5;
    opts.grape.maxIterations = 400;
    opts.grape.targetFidelity = 0.99;
    opts.grape.learningRate = 0.01;

    const DurationSearchResult res =
        minimizeDuration(system, target, opts);

    TablePrinter t({"round", "duration_ns", "fidelity", "converged"});
    int round = 1;
    for (const auto &r : res.rounds) {
        t.addRow({format("%d", round++), format("%.1f", r.durationNs),
                  format("%.4f", r.fidelity),
                  r.converged ? "yes" : "no"});
    }
    t.print(std::cout);
    std::printf("\nshortest passing duration: %.1f ns "
                "(paper Table 1: 78 ns with B-spline carrier pulses)\n",
                res.bestDurationNs);

    if (!res.bestControls.empty()) {
        std::printf("\nfinal I-quadrature samples (MHz): ");
        const auto &row = res.bestControls[0];
        for (std::size_t j = 0; j < row.size();
             j += std::max<std::size_t>(1, row.size() / 10)) {
            std::printf("%.1f ",
                        row[j] / (2.0 * M_PI) * 1000.0);
        }
        std::printf("\n");
    }
    return res.bestDurationNs > 0.0 ? 0 : 1;
}
