/**
 * @file
 * Quickstart: build a circuit, compile it through the CompilerService
 * front end for a mixed-radix ququart device with the EQM strategy,
 * inspect the shared artifact, re-issue the request to see the memo
 * cache serve it, and verify the compiled program against the logical
 * circuit on the statevector simulator.
 */

#include <cstdio>

#include "service/compiler_service.hh"
#include "sim/equivalence.hh"

using namespace qompress;

int
main()
{
    // 1. A small program: a 6-qubit GHZ state.
    Circuit circuit(6, "ghz6");
    circuit.h(0);
    for (int q = 0; q + 1 < 6; ++q)
        circuit.cx(q, q + 1);

    // 2. A device: per-circuit-sized grid of ququart-capable
    //    transmons, with the paper's Table-1 gate calibration.
    const Topology device = Topology::grid(circuit.numQubits());
    const GateLibrary calibration;

    // 3. A compiler service: the request/response front end. One
    //    long-lived service memoizes compiled artifacts and keeps
    //    warmed compile contexts across requests.
    CompilerService service;

    // 4. Compile with Extended Qubit Mapping (compressions emerge from
    //    placement on the expanded qubit/ququart graph).
    const CompileRequest request = CompileRequest::forCircuit(
        circuit, device, "eqm", CompilerConfig{}, calibration);
    const CompileArtifact result = service.compileSync(request);

    std::printf("compiled '%s' onto %s\n", circuit.name().c_str(),
                device.name().c_str());
    std::printf("  physical gates : %d (%d routing)\n",
                result->metrics.numGates,
                result->metrics.numRoutingGates);
    std::printf("  compressions   : %zu\n", result->compressions.size());
    for (const auto &p : result->compressions)
        std::printf("    q%d + q%d share one ququart\n", p.first,
                    p.second);
    std::printf("  duration       : %.0f ns\n",
                result->metrics.durationNs);
    std::printf("  gate EPS       : %.4f\n", result->metrics.gateEps);
    std::printf("  coherence EPS  : %.4f\n",
                result->metrics.coherenceEps);
    std::printf("  total EPS      : %.4f\n", result->metrics.totalEps);

    std::printf("\nfirst physical gates:\n");
    for (int i = 0; i < result->compiled.numGates() && i < 8; ++i)
        std::printf("  %5.0f ns  %s\n",
                    result->compiled.gates()[i].start,
                    result->compiled.gates()[i].str().c_str());

    // 5. The same request again: served from the artifact cache (the
    //    same shared immutable result, no recompilation).
    const CompileArtifact again = service.compileSync(request);
    const ServiceStats stats = service.stats();
    std::printf("\nsecond request: %s (cache hits %llu / misses %llu)\n",
                again.get() == result.get() ? "memoized" : "recompiled",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));

    // 6. Verify the compiled program is functionally identical.
    const EquivalenceReport rep =
        checkEquivalence(circuit, result->compiled, /*trials=*/3);
    std::printf("\nequivalence check: %s (max amplitude error %.2e)\n",
                rep.ok ? "PASS" : rep.message.c_str(), rep.maxError);
    return rep.ok && again.get() == result.get() ? 0 : 1;
}
