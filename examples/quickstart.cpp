/**
 * @file
 * Quickstart: build a circuit, compile it for a mixed-radix ququart
 * device with the EQM strategy, inspect the result, and verify the
 * compiled program against the logical circuit on the statevector
 * simulator.
 */

#include <cstdio>

#include "sim/equivalence.hh"
#include "strategies/strategy.hh"

using namespace qompress;

int
main()
{
    // 1. A small program: a 6-qubit GHZ state.
    Circuit circuit(6, "ghz6");
    circuit.h(0);
    for (int q = 0; q + 1 < 6; ++q)
        circuit.cx(q, q + 1);

    // 2. A device: per-circuit-sized grid of ququart-capable
    //    transmons, with the paper's Table-1 gate calibration.
    const Topology device = Topology::grid(circuit.numQubits());
    const GateLibrary calibration;

    // 3. Compile with Extended Qubit Mapping (compressions emerge from
    //    placement on the expanded qubit/ququart graph).
    const auto strategy = makeStrategy("eqm");
    const CompileResult result =
        strategy->compile(circuit, device, calibration);

    std::printf("compiled '%s' onto %s\n", circuit.name().c_str(),
                device.name().c_str());
    std::printf("  physical gates : %d (%d routing)\n",
                result.metrics.numGates, result.metrics.numRoutingGates);
    std::printf("  compressions   : %zu\n", result.compressions.size());
    for (const auto &p : result.compressions)
        std::printf("    q%d + q%d share one ququart\n", p.first,
                    p.second);
    std::printf("  duration       : %.0f ns\n",
                result.metrics.durationNs);
    std::printf("  gate EPS       : %.4f\n", result.metrics.gateEps);
    std::printf("  coherence EPS  : %.4f\n",
                result.metrics.coherenceEps);
    std::printf("  total EPS      : %.4f\n", result.metrics.totalEps);

    std::printf("\nfirst physical gates:\n");
    for (int i = 0; i < result.compiled.numGates() && i < 8; ++i)
        std::printf("  %5.0f ns  %s\n", result.compiled.gates()[i].start,
                    result.compiled.gates()[i].str().c_str());

    // 4. Verify the compiled program is functionally identical.
    const EquivalenceReport rep =
        checkEquivalence(circuit, result.compiled, /*trials=*/3);
    std::printf("\nequivalence check: %s (max amplitude error %.2e)\n",
                rep.ok ? "PASS" : rep.message.c_str(), rep.maxError);
    return rep.ok ? 0 : 1;
}
