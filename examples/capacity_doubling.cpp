/**
 * @file
 * Domain example: the paper's capacity argument -- compression can
 * run circuits with up to 2x more logical qubits than the device has
 * physical units. A 16-qubit adder is compiled onto an 8-unit device
 * (qubit-only compilation provably cannot fit), and the compiled
 * program is verified gate-for-gate on the simulator at a smaller
 * size.
 */

#include <cstdio>

#include "circuits/arithmetic.hh"
#include "common/error.hh"
#include "sim/equivalence.hh"
#include "strategies/strategy.hh"

using namespace qompress;

int
main()
{
    const GateLibrary calibration;

    // 16 logical qubits, 8 physical units.
    const Circuit adder = cuccaroAdder(7); // 16 qubits
    const Topology small_device = Topology::grid(8);
    std::printf("circuit: %d logical qubits; device: %d units\n\n",
                adder.numQubits(), small_device.numUnits());

    // Qubit-only compilation cannot fit -- the library reports it.
    try {
        makeStrategy("qubit_only")->compile(adder, small_device,
                                            calibration);
        std::printf("unexpected: qubit-only compilation fit!\n");
        return 1;
    } catch (const FatalError &e) {
        std::printf("qubit-only: rejected as expected\n  (%s)\n\n",
                    e.what());
    }

    // EQM compresses everything into ququarts and fits.
    const auto res =
        makeStrategy("eqm")->compile(adder, small_device, calibration);
    std::printf("eqm: fits with %zu compressed pairs on %d encoded "
                "units\n",
                res.compressions.size(),
                res.metrics.numEncodedUnits);
    std::printf("  gates %d, duration %.1f us, total EPS %.4f\n\n",
                res.metrics.numGates, res.metrics.durationNs / 1000.0,
                res.metrics.totalEps);

    // Functional check at a simulable size: 8 qubits on 4 units.
    const Circuit small = cuccaroAdder(3); // 8 qubits
    const Topology tiny = Topology::grid(4);
    const auto small_res =
        makeStrategy("eqm")->compile(small, tiny, calibration);
    const EquivalenceReport rep = checkEquivalence(small,
                                                   small_res.compiled);
    std::printf("8-qubit adder on a 4-unit device: equivalence %s "
                "(max error %.2e)\n",
                rep.ok ? "PASS" : rep.message.c_str(), rep.maxError);
    return rep.ok ? 0 : 1;
}
