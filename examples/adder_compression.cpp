/**
 * @file
 * Domain example: compile a Cuccaro ripple-carry adder -- one of the
 * paper's locality-heavy workloads -- under every compression
 * strategy and compare the resulting success metrics, reproducing the
 * paper's core observation that EQM/RB recover large gate-EPS gains
 * on arithmetic circuits while FQ loses outright.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "circuits/arithmetic.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "strategies/strategy.hh"

using namespace qompress;

int
main(int argc, char **argv)
{
    const int bits = argc > 1 ? std::atoi(argv[1]) : 7;
    const Circuit adder = cuccaroAdder(bits);
    const Topology device = Topology::grid(adder.numQubits());
    const GateLibrary calibration;

    std::printf("Cuccaro adder: %d bits, %d qubits, %d gates "
                "(before decomposition)\n\n",
                bits, adder.numQubits(), adder.numGates());

    TablePrinter t({"strategy", "pairs", "gates", "swaps", "dur_us",
                    "gate_eps", "coh_eps", "total_eps"});
    double qubit_only_eps = 0.0;
    for (const auto &strategy : standardStrategies()) {
        const CompileResult res =
            strategy->compile(adder, device, calibration);
        if (strategy->name() == "qubit_only")
            qubit_only_eps = res.metrics.gateEps;
        t.addRow({strategy->name(),
                  format("%zu", res.compressions.size()),
                  format("%d", res.metrics.numGates),
                  format("%d", res.metrics.numRoutingGates),
                  format("%.2f", res.metrics.durationNs / 1000.0),
                  format("%.4f", res.metrics.gateEps),
                  format("%.4f", res.metrics.coherenceEps),
                  format("%.4f", res.metrics.totalEps)});
    }
    t.print(std::cout);

    const auto eqm =
        makeStrategy("eqm")->compile(adder, device, calibration);
    std::printf("\nEQM gate-EPS improvement over qubit-only: %.1f%%\n",
                100.0 * (eqm.metrics.gateEps / qubit_only_eps - 1.0));
    return 0;
}
