/**
 * @file
 * The paper's device model (Eq. 3): one or two weakly-coupled
 * anharmonic transmons in the rotating frame of the first transmon,
 * with I/Q drive quadratures per transmon and guard levels above the
 * logical subspace.
 */

#ifndef QOMPRESS_PULSE_HAMILTONIAN_HH
#define QOMPRESS_PULSE_HAMILTONIAN_HH

#include <vector>

#include "pulse/matrix.hh"

namespace qompress {

/** Physical parameters (paper section 3.2, from Sheldon et al.). */
struct TransmonParams
{
    /** 0-1 transition frequencies, GHz. */
    double freq1Ghz = 4.914;
    double freq2Ghz = 5.114;
    /** Anharmonicity, GHz (same for both transmons). */
    double anharmonicityGhz = -0.330;
    /** Effective coupling, GHz. */
    double couplingGhz = 0.0038;
    /** Maximum drive amplitude, GHz (45 MHz). */
    double maxAmplitudeGhz = 0.045;
};

/**
 * A one- or two-transmon control system.
 *
 * Each transmon models `logical + guard` levels; the drift Hamiltonian
 * is written in the rotating frame of transmon 1 so pulse segments can
 * be nanoseconds long. Energies are angular frequencies in rad/ns.
 */
class TransmonSystem
{
  public:
    /**
     * @param logical_levels logical levels per transmon (2 for qubit
     *        operands, 4 for ququart operands); one or two entries.
     * @param guard_levels   extra guard levels per transmon.
     */
    TransmonSystem(std::vector<int> logical_levels, int guard_levels,
                   TransmonParams params = {});

    int numTransmons() const
    {
        return static_cast<int>(logical_.size());
    }
    /** Total simulated levels of transmon @p k. */
    int levels(int k) const { return logical_[k] + guard_; }
    /** Logical levels of transmon @p k. */
    int logicalLevels(int k) const { return logical_[k]; }
    /** Full Hilbert dimension. */
    int dim() const;
    /** Logical subspace dimension. */
    int logicalDim() const;

    /** Drift Hamiltonian (rad/ns), rotating frame of transmon 1. */
    const CMatrix &drift() const { return drift_; }

    /** Control operators, two per transmon: (a + a^dag) and
     *  i(a^dag - a); amplitudes multiply these. */
    const std::vector<CMatrix> &controls() const { return controls_; }

    /** Max control amplitude in rad/ns (2 pi f_max). */
    double maxAmplitude() const;

    /** True iff full-space index @p idx lies in the logical subspace. */
    bool isLogicalIndex(int idx) const;

    /** Map a logical-subspace row/col to the full-space index. */
    int logicalToFull(int logical_idx) const;

    const TransmonParams &params() const { return params_; }

  private:
    std::vector<int> logical_;
    int guard_;
    TransmonParams params_;
    CMatrix drift_;
    std::vector<CMatrix> controls_;
};

} // namespace qompress

#endif // QOMPRESS_PULSE_HAMILTONIAN_HH
