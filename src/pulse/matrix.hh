/**
 * @file
 * Dense complex matrices sized for optimal-control workloads (tens of
 * rows), with the matrix exponential needed by Schrodinger propagation.
 */

#ifndef QOMPRESS_PULSE_MATRIX_HH
#define QOMPRESS_PULSE_MATRIX_HH

#include <complex>
#include <vector>

namespace qompress {

/** Dense row-major complex matrix. */
class CMatrix
{
  public:
    using Scalar = std::complex<double>;

    CMatrix() = default;

    /** Zero matrix of shape rows x cols. */
    CMatrix(int rows, int cols);

    static CMatrix identity(int n);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    Scalar &operator()(int r, int c) { return data_[idx(r, c)]; }
    const Scalar &operator()(int r, int c) const
    {
        return data_[idx(r, c)];
    }

    CMatrix operator+(const CMatrix &o) const;
    CMatrix operator-(const CMatrix &o) const;
    CMatrix operator*(const CMatrix &o) const;
    CMatrix operator*(Scalar s) const;
    CMatrix &operator+=(const CMatrix &o);
    CMatrix &operator*=(Scalar s);

    /** Conjugate transpose. */
    CMatrix dagger() const;

    Scalar trace() const;

    /** Frobenius norm. */
    double norm() const;

    /** Max absolute row sum (induced infinity norm). */
    double normInf() const;

    /** Kronecker product. */
    static CMatrix kron(const CMatrix &a, const CMatrix &b);

    /** True iff this is unitary within @p tol. */
    bool isUnitary(double tol = 1e-8) const;

    /** @name In-place plumbing for allocation-free hot loops.
     * None of these allocate once the matrix has reached its final
     * capacity (reshaping within capacity reuses the buffer). @{ */

    /** Reshape to rows x cols; existing contents are unspecified. */
    void resize(int rows, int cols);

    void setZero();

    /** Make this the n x n identity (keeps the current shape). */
    void setIdentity();

    /** this = o, reusing capacity. */
    void copyFrom(const CMatrix &o);

    void swap(CMatrix &o) noexcept;

    Scalar *data() { return data_.data(); }
    const Scalar *data() const { return data_.data(); }
    /** @} */

  private:
    std::size_t idx(int r, int c) const
    {
        return static_cast<std::size_t>(r) * cols_ + c;
    }

    int rows_ = 0;
    int cols_ = 0;
    std::vector<Scalar> data_;
};

/**
 * Matrix exponential by Padé-13 scaling-and-squaring (the same kernel
 * expmFamilyInto uses; see expmInto). Allocates its own workspace;
 * hot loops should hold an ExpmWorkspace and call expmInto instead.
 */
CMatrix expm(const CMatrix &a);

/** out = a * b. @p out must not alias either operand. */
void mulInto(CMatrix &out, const CMatrix &a, const CMatrix &b);

/** a += s * b. */
void addScaledInto(CMatrix &a, CMatrix::Scalar s, const CMatrix &b);

/** out = s * a. @p out may alias @p a. */
void scaleInto(CMatrix &out, CMatrix::Scalar s, const CMatrix &a);

/** out = a^dagger. @p out must not alias @p a. */
void daggerInto(CMatrix &out, const CMatrix &a);

/**
 * Dense LU factorization with partial pivoting, built for repeated
 * same-size solves: factor() reuses the factor storage and solve()
 * works in place on the right-hand side, so a warm factor/solve pair
 * performs no heap allocation.
 */
class LuSolver
{
  public:
    /** Factor @p a (square). QFATALs on a numerically singular pivot
     *  (cannot happen for the diagonally dominant Padé denominators
     *  this class exists for). */
    void factor(const CMatrix &a);

    /** b := a^{-1} b for the last factored a (any column count). */
    void solveInPlace(CMatrix &b) const;

  private:
    CMatrix lu_;            ///< packed L (unit diagonal) and U
    std::vector<int> piv_;  ///< row swapped with k at step k
};

/** Caller-owned scratch for expmFamilyInto / expmFamilyIntoTaylor.
 *  The Taylor members double as squaring/scratch space for the Padé
 *  path; one workspace serves either entry point. */
struct ExpmFamilyWorkspace
{
    CMatrix p;                ///< current Taylor term, diagonal block
    CMatrix sp;               ///< accumulated e^(scaled A)
    CMatrix tmp;
    CMatrix tmp2;
    std::vector<CMatrix> d;   ///< current Taylor terms, derivative blocks
    std::vector<CMatrix> sd;  ///< accumulated derivatives
    /** @name Padé-13 blocks @{ */
    CMatrix as;               ///< scaled A
    CMatrix a2, a4, a6;       ///< even powers of As
    CMatrix w1, w2, z1, z2;   ///< odd/even polynomial partial sums
    CMatrix w;                ///< A6*W1 + W2
    CMatrix u, v;             ///< odd part As*W, even part A6*Z1 + Z2
    CMatrix q;                ///< denominator V - U
    CMatrix bscaled;          ///< scaled direction
    CMatrix m2, m4, m6;       ///< direction derivatives of A^{2,4,6}
    LuSolver lu;
    /** @} */
};

/**
 * Shared-series Van Loan exponential: computes eA = expm(a) and, for
 * every direction bs[k], the exact directional derivative ds[k] of the
 * exponential at @p a along bs[k].
 *
 * Exploits the block-triangular structure of the augmented matrix
 * [[A, B], [0, A]]: every matrix function of it keeps the form
 * [[f(A), Lf], [0, f(A)]], so the recurrences run on n x n blocks and
 * the e^A work is shared across all directions instead of re-derived
 * inside one 2n x 2n exponential per direction.
 *
 * This entry point is the Padé-13 scaling-and-squaring form (Higham's
 * expm / the Al-Mohy-Higham Fréchet-derivative recurrences): the
 * [13/13] approximant needs only 6 multiplies and one LU solve for
 * e^A where the Taylor series needs ~13, and its scaling threshold
 * (|M| <= ~5.37 instead of 0.5) saves 3-4 squaring passes per call on
 * the GRAPE segment generators. The Taylor form is retained as
 * expmFamilyIntoTaylor (the differential-test and bench reference);
 * both agree to ~1e-13 on pulse workloads. All temporaries live in
 * @p ws (no allocation after warm-up).
 */
void expmFamilyInto(CMatrix &eA, std::vector<CMatrix> &ds,
                    const CMatrix &a, const std::vector<CMatrix> &bs,
                    ExpmFamilyWorkspace &ws);

/** The pre-Padé Taylor scaling-and-squaring form of expmFamilyInto,
 *  retained as the naive reference for differential tests and the
 *  bench_hotpaths Padé-vs-Taylor section. Identical contract. */
void expmFamilyIntoTaylor(CMatrix &eA, std::vector<CMatrix> &ds,
                          const CMatrix &a,
                          const std::vector<CMatrix> &bs,
                          ExpmFamilyWorkspace &ws);

/** Caller-owned scratch for expmInto / expmIntoTaylor. */
struct ExpmWorkspace
{
    /** Padé-13 blocks (the direction-free expmFamilyInto path). */
    ExpmFamilyWorkspace fam;
    std::vector<CMatrix> noDs; ///< stays empty: no derivative directions
    /** Taylor scratch (expmIntoTaylor). */
    CMatrix scaled;
    CMatrix term;
    CMatrix tmp;
};

/**
 * out = expm(a) with all temporaries in @p ws (no heap allocation
 * once warm).
 *
 * This is the Padé-13 scaling-and-squaring kernel — the
 * direction-free case of expmFamilyInto, so the naive reference paths
 * (GRAPE's Van Loan reference, propagators(), traceEvolution) ride
 * the same production exponential. The pre-Padé Taylor form is
 * retained as expmIntoTaylor for differential tests; both agree to
 * ~1e-13 on pulse workloads.
 */
void expmInto(CMatrix &out, const CMatrix &a, ExpmWorkspace &ws);

/** Taylor scaling-and-squaring reference form of expmInto (the
 *  pre-Padé implementation). Identical contract. */
void expmIntoTaylor(CMatrix &out, const CMatrix &a, ExpmWorkspace &ws);

} // namespace qompress

#endif // QOMPRESS_PULSE_MATRIX_HH
