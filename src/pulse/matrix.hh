/**
 * @file
 * Dense complex matrices sized for optimal-control workloads (tens of
 * rows), with the matrix exponential needed by Schrodinger propagation.
 */

#ifndef QOMPRESS_PULSE_MATRIX_HH
#define QOMPRESS_PULSE_MATRIX_HH

#include <complex>
#include <vector>

namespace qompress {

/** Dense row-major complex matrix. */
class CMatrix
{
  public:
    using Scalar = std::complex<double>;

    CMatrix() = default;

    /** Zero matrix of shape rows x cols. */
    CMatrix(int rows, int cols);

    static CMatrix identity(int n);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    Scalar &operator()(int r, int c) { return data_[idx(r, c)]; }
    const Scalar &operator()(int r, int c) const
    {
        return data_[idx(r, c)];
    }

    CMatrix operator+(const CMatrix &o) const;
    CMatrix operator-(const CMatrix &o) const;
    CMatrix operator*(const CMatrix &o) const;
    CMatrix operator*(Scalar s) const;
    CMatrix &operator+=(const CMatrix &o);
    CMatrix &operator*=(Scalar s);

    /** Conjugate transpose. */
    CMatrix dagger() const;

    Scalar trace() const;

    /** Frobenius norm. */
    double norm() const;

    /** Max absolute row sum (induced infinity norm). */
    double normInf() const;

    /** Kronecker product. */
    static CMatrix kron(const CMatrix &a, const CMatrix &b);

    /** True iff this is unitary within @p tol. */
    bool isUnitary(double tol = 1e-8) const;

  private:
    std::size_t idx(int r, int c) const
    {
        return static_cast<std::size_t>(r) * cols_ + c;
    }

    int rows_ = 0;
    int cols_ = 0;
    std::vector<Scalar> data_;
};

/**
 * Matrix exponential by scaling-and-squaring with a Taylor series
 * (ample accuracy for the small anti-Hermitian arguments produced by
 * Schrodinger propagation).
 */
CMatrix expm(const CMatrix &a);

} // namespace qompress

#endif // QOMPRESS_PULSE_MATRIX_HH
