/**
 * @file
 * Dense complex matrices sized for optimal-control workloads (tens of
 * rows), with the matrix exponential needed by Schrodinger propagation.
 */

#ifndef QOMPRESS_PULSE_MATRIX_HH
#define QOMPRESS_PULSE_MATRIX_HH

#include <complex>
#include <vector>

namespace qompress {

/** Dense row-major complex matrix. */
class CMatrix
{
  public:
    using Scalar = std::complex<double>;

    CMatrix() = default;

    /** Zero matrix of shape rows x cols. */
    CMatrix(int rows, int cols);

    static CMatrix identity(int n);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    Scalar &operator()(int r, int c) { return data_[idx(r, c)]; }
    const Scalar &operator()(int r, int c) const
    {
        return data_[idx(r, c)];
    }

    CMatrix operator+(const CMatrix &o) const;
    CMatrix operator-(const CMatrix &o) const;
    CMatrix operator*(const CMatrix &o) const;
    CMatrix operator*(Scalar s) const;
    CMatrix &operator+=(const CMatrix &o);
    CMatrix &operator*=(Scalar s);

    /** Conjugate transpose. */
    CMatrix dagger() const;

    Scalar trace() const;

    /** Frobenius norm. */
    double norm() const;

    /** Max absolute row sum (induced infinity norm). */
    double normInf() const;

    /** Kronecker product. */
    static CMatrix kron(const CMatrix &a, const CMatrix &b);

    /** True iff this is unitary within @p tol. */
    bool isUnitary(double tol = 1e-8) const;

    /** @name In-place plumbing for allocation-free hot loops.
     * None of these allocate once the matrix has reached its final
     * capacity (reshaping within capacity reuses the buffer). @{ */

    /** Reshape to rows x cols; existing contents are unspecified. */
    void resize(int rows, int cols);

    void setZero();

    /** Make this the n x n identity (keeps the current shape). */
    void setIdentity();

    /** this = o, reusing capacity. */
    void copyFrom(const CMatrix &o);

    void swap(CMatrix &o) noexcept;

    Scalar *data() { return data_.data(); }
    const Scalar *data() const { return data_.data(); }
    /** @} */

  private:
    std::size_t idx(int r, int c) const
    {
        return static_cast<std::size_t>(r) * cols_ + c;
    }

    int rows_ = 0;
    int cols_ = 0;
    std::vector<Scalar> data_;
};

/**
 * Matrix exponential by scaling-and-squaring with a Taylor series
 * (ample accuracy for the small anti-Hermitian arguments produced by
 * Schrodinger propagation).
 */
CMatrix expm(const CMatrix &a);

/** out = a * b. @p out must not alias either operand. */
void mulInto(CMatrix &out, const CMatrix &a, const CMatrix &b);

/** a += s * b. */
void addScaledInto(CMatrix &a, CMatrix::Scalar s, const CMatrix &b);

/** out = s * a. @p out may alias @p a. */
void scaleInto(CMatrix &out, CMatrix::Scalar s, const CMatrix &a);

/** out = a^dagger. @p out must not alias @p a. */
void daggerInto(CMatrix &out, const CMatrix &a);

/** Caller-owned scratch for expmInto. */
struct ExpmWorkspace
{
    CMatrix scaled;
    CMatrix term;
    CMatrix tmp;
};

/** out = expm(a); identical math to expm() but all temporaries live in
 *  @p ws, so repeated calls perform no heap allocation. */
void expmInto(CMatrix &out, const CMatrix &a, ExpmWorkspace &ws);

/** Caller-owned scratch for expmFamilyInto. */
struct ExpmFamilyWorkspace
{
    CMatrix p;                ///< current Taylor term, diagonal block
    CMatrix sp;               ///< accumulated e^(scaled A)
    CMatrix tmp;
    CMatrix tmp2;
    std::vector<CMatrix> d;   ///< current Taylor terms, derivative blocks
    std::vector<CMatrix> sd;  ///< accumulated derivatives
};

/**
 * Shared-series Van Loan exponential: computes eA = expm(a) and, for
 * every direction bs[k], the exact directional derivative ds[k] of the
 * exponential at @p a along bs[k].
 *
 * Exploits the block-triangular structure of the augmented matrix
 * [[A, B], [0, A]]: powers keep the form [[A^m, D_m], [0, A^m]], so
 * the Taylor and squaring recurrences run on n x n blocks -- the e^A
 * series is computed once and shared across all directions instead of
 * re-deriving it inside one 2n x 2n exponential per direction. All
 * temporaries live in @p ws (no allocation after warm-up).
 */
void expmFamilyInto(CMatrix &eA, std::vector<CMatrix> &ds,
                    const CMatrix &a, const std::vector<CMatrix> &bs,
                    ExpmFamilyWorkspace &ws);

} // namespace qompress

#endif // QOMPRESS_PULSE_MATRIX_HH
