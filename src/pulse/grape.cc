#include "pulse/grape.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"

namespace qompress {

namespace {

/**
 * Van Loan augmented exponential: for M = [[A, B], [0, A]],
 * expm(M) = [[e^A, D], [0, e^A]] where D is the exact directional
 * derivative of the exponential at A in direction B. Returns D.
 * (Reference path only; the optimized gradient uses expmFamilyInto.)
 */
CMatrix
expmDirectional(const CMatrix &a, const CMatrix &b)
{
    const int n = a.rows();
    CMatrix m(2 * n, 2 * n);
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            m(r, c) = a(r, c);
            m(n + r, n + c) = a(r, c);
            m(r, n + c) = b(r, c);
        }
    }
    const CMatrix e = expm(m);
    CMatrix d(n, n);
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            d(r, c) = e(r, n + c);
    return d;
}

/** Tr(x * y) without forming the product. */
CMatrix::Scalar
traceOfProduct(const CMatrix &x, const CMatrix &y)
{
    CMatrix::Scalar t = 0.0;
    for (int r = 0; r < x.rows(); ++r)
        for (int c = 0; c < x.cols(); ++c)
            t += x(r, c) * y(c, r);
    return t;
}

/** Resize-and-zero a [k][j] gradient buffer without reallocating once
 *  rows have reached their final capacity. */
void
zeroGrad(std::vector<std::vector<double>> &grad, std::size_t nk,
         int segments)
{
    if (grad.size() != nk)
        grad.resize(nk);
    for (auto &row : grad)
        row.assign(static_cast<std::size_t>(segments), 0.0);
}

} // namespace

GrapeOptimizer::GrapeOptimizer(const TransmonSystem &system, CMatrix target,
                               double duration_ns, int segments,
                               GrapeOptions opts)
    : system_(&system), duration_(duration_ns), segments_(segments),
      opts_(opts)
{
    QFATAL_IF(duration_ns <= 0.0, "duration must be positive");
    QFATAL_IF(segments < 1, "need at least one segment");
    QFATAL_IF(target.rows() != system.logicalDim() ||
              target.cols() != system.logicalDim(),
              "target must act on the logical subspace (dim ",
              system.logicalDim(), ")");
    dt_ = duration_ / segments_;

    // Embed the logical target into the full space (zero rows/columns
    // on guard levels): Tr(V_full^dag U) is then exactly the logical
    // subspace trace of Eq. (1).
    targetFull_ = CMatrix(system.dim(), system.dim());
    for (int r = 0; r < target.rows(); ++r)
        for (int c = 0; c < target.cols(); ++c)
            targetFull_(system.logicalToFull(r),
                        system.logicalToFull(c)) = target(r, c);
    daggerInto(targetDagger_, targetFull_);
}

std::vector<CMatrix>
GrapeOptimizer::propagators(
    const std::vector<std::vector<double>> &controls) const
{
    const auto &hc = system_->controls();
    QPANIC_IF(controls.size() != hc.size(), "control count mismatch");
    std::vector<CMatrix> props;
    props.reserve(segments_);
    for (int j = 0; j < segments_; ++j) {
        CMatrix h = system_->drift();
        for (std::size_t k = 0; k < hc.size(); ++k)
            h += hc[k] * CMatrix::Scalar(controls[k][j]);
        props.push_back(expm(h * CMatrix::Scalar(0.0, -dt_)));
    }
    return props;
}

CMatrix
GrapeOptimizer::totalUnitary(
    const std::vector<std::vector<double>> &controls) const
{
    CMatrix u = CMatrix::identity(system_->dim());
    for (const auto &p : propagators(controls))
        u = p * u;
    return u;
}

void
GrapeOptimizer::evaluate(const std::vector<std::vector<double>> &controls,
                         double &fidelity, double &leakage) const
{
    const CMatrix u = totalUnitary(controls);
    const double h = system_->logicalDim();
    const CMatrix::Scalar z = (targetFull_.dagger() * u).trace();
    fidelity = std::norm(z) / (h * h);
    leakage = 0.0;
    for (int c = 0; c < system_->dim(); ++c) {
        if (!system_->isLogicalIndex(c))
            continue;
        for (int r = 0; r < system_->dim(); ++r) {
            if (!system_->isLogicalIndex(r))
                leakage += std::norm(u(r, c));
        }
    }
    leakage /= h;
}

double
GrapeOptimizer::objectiveAndGradient(
    const std::vector<std::vector<double>> &controls,
    std::vector<std::vector<double>> &grad, double &fidelity,
    double &leakage, GrapeWorkspace &ws) const
{
    const int dim = system_->dim();
    const double h = system_->logicalDim();
    const auto &hc = system_->controls();
    QPANIC_IF(controls.size() != hc.size(), "control count mismatch");
    const std::size_t nk = hc.size();

    // Per-control generators -i dt Hc_k. Constant for one optimizer,
    // but refreshed every call (a cheap n^2 copy next to the n^3
    // matmuls) so a workspace reused across optimizers with different
    // dt or control Hamiltonians can never supply stale directions.
    if (ws.bgen.size() != nk)
        ws.bgen.resize(nk);
    for (std::size_t k = 0; k < nk; ++k)
        scaleInto(ws.bgen[k], CMatrix::Scalar(0.0, -dt_), hc[k]);

    if (ws.props.size() != static_cast<std::size_t>(segments_)) {
        ws.props.resize(segments_);
        ws.fwd.resize(segments_);
        ws.wback.resize(segments_);
        ws.yback.resize(segments_);
        ws.du.resize(segments_);
    }

    // Lane setup: segments are independent in both parallel phases
    // below, so they fan out across opts_.threads lanes with one
    // LaneScratch per lane (never shrunk, so a workspace reused at a
    // smaller lane count stays warm). Serial runs use lane 0 directly.
    ThreadPool *pool = ThreadPool::forRequest(opts_.threads, ws.ownPool);
    const std::size_t nlanes =
        pool ? static_cast<std::size_t>(pool->numThreads()) : 1;
    if (ws.lanes.size() < nlanes)
        ws.lanes.resize(nlanes);
    const bool probing = ws.allocProbe != nullptr;
    if (probing)
        ws.laneAllocs.assign(ws.lanes.size(), 0);

    // Deterministic lane warm-up: segments distribute dynamically, so
    // a lane's first-ever segment may otherwise land mid-iteration
    // many calls in (a single run through one dummy segment sizes all
    // of a lane's scratch). Doing it here, on the calling thread,
    // keeps the warm path allocation-free *per lane* from the first
    // pooled iteration onwards. props[0]/du[0] are scratch targets
    // only — phase 1 recomputes them with the real controls.
    if (ws.warmLaneCount < nlanes || ws.warmDim != dim) {
        for (std::size_t l = 0; l < nlanes; ++l) {
            GrapeWorkspace::LaneScratch &ls = ws.lanes[l];
            ls.hseg.copyFrom(system_->drift());
            scaleInto(ls.agen, CMatrix::Scalar(0.0, -dt_), ls.hseg);
            expmFamilyInto(ws.props[0], ws.du[0], ls.agen, ws.bgen,
                           ls.famWs);
            ls.pw.resize(dim, dim);
            ls.py.resize(dim, dim);
        }
        ws.warmLaneCount = nlanes;
        ws.warmDim = dim;
    }

    // Phase 1 (parallel over segments): one shared-series exponential
    // per segment yields the propagator and every control's
    // directional derivative together. Each segment writes only its
    // own props[j]/du[j] slot; the per-segment math is identical to
    // the serial loop, so results are bit-identical at any lane count.
    auto segment_exponential = [&](std::size_t j, int lane) {
        GrapeWorkspace::LaneScratch &ls =
            ws.lanes[static_cast<std::size_t>(lane)];
        const std::uint64_t before = probing ? ws.allocProbe() : 0;
        ls.hseg.copyFrom(system_->drift());
        for (std::size_t k = 0; k < nk; ++k)
            addScaledInto(ls.hseg, CMatrix::Scalar(controls[k][j]),
                          hc[k]);
        scaleInto(ls.agen, CMatrix::Scalar(0.0, -dt_), ls.hseg);
        expmFamilyInto(ws.props[j], ws.du[j], ls.agen, ws.bgen,
                       ls.famWs);
        if (probing)
            ws.laneAllocs[static_cast<std::size_t>(lane)] +=
                ws.allocProbe() - before;
    };
    if (pool) {
        pool->parallelFor(0, static_cast<std::size_t>(segments_),
                          segment_exponential);
    } else {
        for (int j = 0; j < segments_; ++j)
            segment_exponential(static_cast<std::size_t>(j), 0);
    }

    // Forward cumulative products A_j = U_j ... U_0.
    ws.fwd[0].copyFrom(ws.props[0]);
    for (int j = 1; j < segments_; ++j)
        mulInto(ws.fwd[j], ws.props[j], ws.fwd[j - 1]);
    const CMatrix &u = ws.fwd[segments_ - 1];

    CMatrix::Scalar z = 0.0;
    for (int r = 0; r < dim; ++r)
        for (int c = 0; c < dim; ++c)
            z += std::conj(targetFull_(r, c)) * u(r, c);
    fidelity = std::norm(z) / (h * h);

    // Leakage mask: guard-row, logical-column entries of U.
    ws.mask.resize(dim, dim);
    ws.mask.setZero();
    leakage = 0.0;
    for (int c = 0; c < dim; ++c) {
        if (!system_->isLogicalIndex(c))
            continue;
        for (int r = 0; r < dim; ++r) {
            if (!system_->isLogicalIndex(r)) {
                ws.mask(r, c) = u(r, c);
                leakage += std::norm(u(r, c));
            }
        }
    }
    leakage /= h;

    // Backward partials: W_j = V^dag S_j and Y_j = mask^dag S_j where
    // S_j = U_{N-1} ... U_{j+1}.
    ws.wback[segments_ - 1].copyFrom(targetDagger_);
    daggerInto(ws.yback[segments_ - 1], ws.mask);
    for (int j = segments_ - 1; j > 0; --j) {
        mulInto(ws.wback[j - 1], ws.wback[j], ws.props[j]);
        mulInto(ws.yback[j - 1], ws.yback[j], ws.props[j]);
    }

    // Phase 2 (parallel over segments): every gradient column [*][j]
    // depends only on the serially-computed fwd/wback/yback products
    // (read-only here) and the segment's own du[j], so segments fan
    // out with per-lane pw/py scratch; each invocation writes the
    // disjoint grad[k][j] entries of its own segment.
    zeroGrad(grad, nk, segments_);
    auto segment_gradient = [&](std::size_t j, int lane) {
        GrapeWorkspace::LaneScratch &ls =
            ws.lanes[static_cast<std::size_t>(lane)];
        const std::uint64_t before = probing ? ws.allocProbe() : 0;
        // Exact per-segment derivative: with U_total = S_j U_j A_{j-1},
        // dz/dc = Tr(V^dag S_j dU_j A_{j-1}) = Tr((A_{j-1} W_j) dU_j),
        // where dU_j is the Van Loan directional derivative of the
        // segment exponential.
        if (j > 0) {
            mulInto(ls.pw, ws.fwd[j - 1], ws.wback[j]);
            mulInto(ls.py, ws.fwd[j - 1], ws.yback[j]);
        } else {
            ls.pw.copyFrom(ws.wback[0]);
            ls.py.copyFrom(ws.yback[0]);
        }
        for (std::size_t k = 0; k < nk; ++k) {
            const CMatrix &du = ws.du[j][k];
            const CMatrix::Scalar dz = traceOfProduct(ls.pw, du);
            const CMatrix::Scalar dl_tr = traceOfProduct(ls.py, du);
            const double df =
                2.0 * std::real(std::conj(z) * dz) / (h * h);
            const double dl = 2.0 / h * std::real(dl_tr);
            grad[k][j] = -df + opts_.leakageWeight * dl;
        }
        if (probing)
            ws.laneAllocs[static_cast<std::size_t>(lane)] +=
                ws.allocProbe() - before;
    };
    if (pool) {
        pool->parallelFor(0, static_cast<std::size_t>(segments_),
                          segment_gradient);
    } else {
        for (int j = 0; j < segments_; ++j)
            segment_gradient(static_cast<std::size_t>(j), 0);
    }
    return (1.0 - fidelity) + opts_.leakageWeight * leakage;
}

double
GrapeOptimizer::objectiveAndGradientNaive(
    const std::vector<std::vector<double>> &controls,
    std::vector<std::vector<double>> &grad, double &fidelity,
    double &leakage) const
{
    const int dim = system_->dim();
    const double h = system_->logicalDim();
    const auto &hc = system_->controls();
    const auto props = propagators(controls);

    // Forward cumulative products A_j = U_j ... U_0.
    std::vector<CMatrix> fwd(segments_);
    fwd[0] = props[0];
    for (int j = 1; j < segments_; ++j)
        fwd[j] = props[j] * fwd[j - 1];
    const CMatrix &u = fwd[segments_ - 1];

    const CMatrix::Scalar z = (targetFull_.dagger() * u).trace();
    fidelity = std::norm(z) / (h * h);

    // Leakage mask: guard-row, logical-column entries of U.
    CMatrix mask(dim, dim);
    leakage = 0.0;
    for (int c = 0; c < dim; ++c) {
        if (!system_->isLogicalIndex(c))
            continue;
        for (int r = 0; r < dim; ++r) {
            if (!system_->isLogicalIndex(r)) {
                mask(r, c) = u(r, c);
                leakage += std::norm(u(r, c));
            }
        }
    }
    leakage /= h;

    // Backward partials: W_j = V^dag S_j and Y_j = mask^dag S_j where
    // S_j = U_{N-1} ... U_{j+1}.
    std::vector<CMatrix> wback(segments_), yback(segments_);
    wback[segments_ - 1] = targetFull_.dagger();
    yback[segments_ - 1] = mask.dagger();
    for (int j = segments_ - 1; j > 0; --j) {
        wback[j - 1] = wback[j] * props[j];
        yback[j - 1] = yback[j] * props[j];
    }

    grad.assign(hc.size(), std::vector<double>(segments_, 0.0));
    for (int j = 0; j < segments_; ++j) {
        const CMatrix prefix = j > 0 ? fwd[j - 1]
                                     : CMatrix::identity(dim);
        const CMatrix pw = prefix * wback[j];
        const CMatrix py = prefix * yback[j];
        // Segment generator -i dt (H0 + sum_k c_k Hc_k).
        CMatrix hseg = system_->drift();
        for (std::size_t k = 0; k < hc.size(); ++k)
            hseg += hc[k] * CMatrix::Scalar(controls[k][j]);
        const CMatrix a_gen = hseg * CMatrix::Scalar(0.0, -dt_);
        for (std::size_t k = 0; k < hc.size(); ++k) {
            const CMatrix du = expmDirectional(
                a_gen, hc[k] * CMatrix::Scalar(0.0, -dt_));
            CMatrix::Scalar dz = 0.0, dl_tr = 0.0;
            for (int r = 0; r < dim; ++r) {
                for (int c = 0; c < dim; ++c) {
                    dz += pw(r, c) * du(c, r);
                    dl_tr += py(r, c) * du(c, r);
                }
            }
            const double df =
                2.0 * std::real(std::conj(z) * dz) / (h * h);
            const double dl = 2.0 / h * std::real(dl_tr);
            grad[k][j] = -df + opts_.leakageWeight * dl;
        }
    }
    return (1.0 - fidelity) + opts_.leakageWeight * leakage;
}

GrapeResult
GrapeOptimizer::run() const
{
    Rng rng(opts_.seed);
    const double amp = opts_.initFraction * system_->maxAmplitude();
    std::vector<std::vector<double>> init(
        numControls(), std::vector<double>(segments_, 0.0));
    for (auto &row : init)
        for (auto &v : row)
            v = rng.nextDouble(-amp, amp);
    return runFrom(std::move(init));
}

GrapeResult
GrapeOptimizer::runFrom(std::vector<std::vector<double>> controls) const
{
    QFATAL_IF(static_cast<int>(controls.size()) != numControls(),
              "bad initial control count");
    for (auto &row : controls) {
        QFATAL_IF(static_cast<int>(row.size()) != segments_,
                  "bad initial segment count");
    }

    const double bound = system_->maxAmplitude();
    // Adam state.
    std::vector<std::vector<double>> m(
        controls.size(), std::vector<double>(segments_, 0.0));
    std::vector<std::vector<double>> v = m;
    const double beta1 = 0.9, beta2 = 0.999, eps = 1e-9;

    GrapeResult best;
    best.controls = controls;
    std::vector<std::vector<double>> grad;
    GrapeWorkspace ws; // shared across iterations: warm after iter 1
    for (int it = 1; it <= opts_.maxIterations; ++it) {
        double fid = 0.0, leak = 0.0;
        objectiveAndGradient(controls, grad, fid, leak, ws);
        if (fid > best.fidelity) {
            best.fidelity = fid;
            best.leakage = leak;
            best.controls = controls;
        }
        best.iterations = it;
        if (fid >= opts_.targetFidelity) {
            best.converged = true;
            break;
        }
        const double bc1 = 1.0 - std::pow(beta1, it);
        const double bc2 = 1.0 - std::pow(beta2, it);
        for (std::size_t k = 0; k < controls.size(); ++k) {
            for (int j = 0; j < segments_; ++j) {
                m[k][j] = beta1 * m[k][j] + (1 - beta1) * grad[k][j];
                v[k][j] = beta2 * v[k][j] +
                          (1 - beta2) * grad[k][j] * grad[k][j];
                const double step = opts_.learningRate *
                                    (m[k][j] / bc1) /
                                    (std::sqrt(v[k][j] / bc2) + eps);
                controls[k][j] = std::clamp(controls[k][j] - step,
                                            -bound, bound);
            }
        }
    }
    // Report the best point seen (Adam is not monotone).
    if (!best.converged) {
        double fid = 0.0, leak = 0.0;
        evaluate(best.controls, fid, leak);
        best.fidelity = fid;
        best.leakage = leak;
        best.converged = fid >= opts_.targetFidelity;
    }
    return best;
}

} // namespace qompress
