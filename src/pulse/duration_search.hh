/**
 * @file
 * Minimum-duration pulse search by iterative re-optimization with
 * pulse re-seeding (paper section 3.3, technique from ref. [39]).
 */

#ifndef QOMPRESS_PULSE_DURATION_SEARCH_HH
#define QOMPRESS_PULSE_DURATION_SEARCH_HH

#include "pulse/grape.hh"

namespace qompress {

/** Search policy. */
struct DurationSearchOptions
{
    /** Starting (generous) duration, ns. */
    double initialDurationNs = 200.0;
    /** Multiplicative shrink applied after each success. */
    double shrinkFactor = 0.8;
    /** Piecewise-constant segment length, ns. */
    double segmentNs = 2.5;
    /** Give up after this many shrink rounds. */
    int maxRounds = 10;
    GrapeOptions grape;
};

/** One attempted duration. */
struct DurationRound
{
    double durationNs;
    double fidelity;
    bool converged;
};

/** Search outcome. */
struct DurationSearchResult
{
    /** Shortest duration that met the fidelity target (0 if none). */
    double bestDurationNs = 0.0;
    double bestFidelity = 0.0;
    std::vector<std::vector<double>> bestControls;
    std::vector<DurationRound> rounds;
};

/**
 * Shrink the gate duration until GRAPE can no longer reach the target
 * fidelity, seeding each round with the previous round's controls
 * linearly resampled onto the new segment grid.
 */
DurationSearchResult minimizeDuration(const TransmonSystem &system,
                                      const CMatrix &target,
                                      const DurationSearchOptions &opts);

} // namespace qompress

#endif // QOMPRESS_PULSE_DURATION_SEARCH_HH
