#include "pulse/hamiltonian.hh"

#include <cmath>

#include "common/error.hh"

namespace qompress {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

/** Annihilation operator on @p n levels. */
CMatrix
lowering(int n)
{
    CMatrix a(n, n);
    for (int k = 1; k < n; ++k)
        a(k - 1, k) = std::sqrt(static_cast<double>(k));
    return a;
}

} // namespace

TransmonSystem::TransmonSystem(std::vector<int> logical_levels,
                               int guard_levels, TransmonParams params)
    : logical_(std::move(logical_levels)), guard_(guard_levels),
      params_(params)
{
    QFATAL_IF(logical_.empty() || logical_.size() > 2,
              "TransmonSystem supports 1 or 2 transmons");
    for (int l : logical_)
        QFATAL_IF(l < 2, "each transmon needs >= 2 logical levels");
    QFATAL_IF(guard_ < 0, "guard levels must be >= 0");

    const int nt = numTransmons();
    std::vector<CMatrix> a(nt), ident(nt);
    for (int k = 0; k < nt; ++k) {
        a[k] = lowering(levels(k));
        ident[k] = CMatrix::identity(levels(k));
    }
    auto embed = [&](const CMatrix &op, int k) {
        if (nt == 1)
            return op;
        return k == 0 ? CMatrix::kron(op, ident[1])
                      : CMatrix::kron(ident[0], op);
    };

    // Rotating frame of transmon 1: detunings 0 and w2 - w1.
    const double detuning[2] = {
        0.0, kTwoPi * (params_.freq2Ghz - params_.freq1Ghz)};
    const double xi = kTwoPi * params_.anharmonicityGhz;

    drift_ = CMatrix(dim(), dim());
    for (int k = 0; k < nt; ++k) {
        const CMatrix ak = a[k];
        const CMatrix num = ak.dagger() * ak;
        const CMatrix anh = ak.dagger() * ak.dagger() * ak * ak;
        drift_ += embed(num * CMatrix::Scalar(detuning[k]) +
                            anh * CMatrix::Scalar(xi / 2.0),
                        k);
    }
    if (nt == 2) {
        const double j = kTwoPi * params_.couplingGhz;
        const CMatrix hop = CMatrix::kron(a[0].dagger(), a[1]) +
                            CMatrix::kron(a[0], a[1].dagger());
        drift_ += hop * CMatrix::Scalar(j);
    }

    for (int k = 0; k < nt; ++k) {
        const CMatrix x = a[k] + a[k].dagger();
        CMatrix y(levels(k), levels(k));
        const CMatrix diff = a[k].dagger() - a[k];
        for (int r = 0; r < levels(k); ++r)
            for (int c = 0; c < levels(k); ++c)
                y(r, c) = CMatrix::Scalar(0.0, 1.0) * diff(r, c);
        controls_.push_back(embed(x, k));
        controls_.push_back(embed(y, k));
    }
}

int
TransmonSystem::dim() const
{
    int d = 1;
    for (int k = 0; k < numTransmons(); ++k)
        d *= levels(k);
    return d;
}

int
TransmonSystem::logicalDim() const
{
    int d = 1;
    for (int l : logical_)
        d *= l;
    return d;
}

double
TransmonSystem::maxAmplitude() const
{
    return kTwoPi * params_.maxAmplitudeGhz;
}

bool
TransmonSystem::isLogicalIndex(int idx) const
{
    if (numTransmons() == 1)
        return idx < logical_[0];
    const int l2 = levels(1);
    const int i0 = idx / l2;
    const int i1 = idx % l2;
    return i0 < logical_[0] && i1 < logical_[1];
}

int
TransmonSystem::logicalToFull(int logical_idx) const
{
    if (numTransmons() == 1)
        return logical_idx;
    const int i0 = logical_idx / logical_[1];
    const int i1 = logical_idx % logical_[1];
    return i0 * levels(1) + i1;
}

} // namespace qompress
