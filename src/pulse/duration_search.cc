#include "pulse/duration_search.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace qompress {

namespace {

/** Linear resampling of piecewise-constant controls onto a new grid. */
std::vector<std::vector<double>>
resample(const std::vector<std::vector<double>> &controls, int segments)
{
    std::vector<std::vector<double>> out(
        controls.size(), std::vector<double>(segments, 0.0));
    for (std::size_t k = 0; k < controls.size(); ++k) {
        const int old_n = static_cast<int>(controls[k].size());
        for (int j = 0; j < segments; ++j) {
            const double x = (j + 0.5) / segments * old_n - 0.5;
            const int lo = std::clamp(static_cast<int>(std::floor(x)),
                                      0, old_n - 1);
            const int hi = std::min(lo + 1, old_n - 1);
            const double frac = std::clamp(x - lo, 0.0, 1.0);
            out[k][j] = (1.0 - frac) * controls[k][lo] +
                        frac * controls[k][hi];
        }
    }
    return out;
}

} // namespace

DurationSearchResult
minimizeDuration(const TransmonSystem &system, const CMatrix &target,
                 const DurationSearchOptions &opts)
{
    QFATAL_IF(opts.shrinkFactor <= 0.0 || opts.shrinkFactor >= 1.0,
              "shrink factor must lie in (0, 1)");
    DurationSearchResult result;
    double duration = opts.initialDurationNs;
    std::vector<std::vector<double>> seed;

    for (int round = 0; round < opts.maxRounds; ++round) {
        const int segments = std::max(
            4, static_cast<int>(std::round(duration / opts.segmentNs)));
        GrapeOptimizer grape(system, target, duration, segments,
                             opts.grape);
        const GrapeResult res = seed.empty()
            ? grape.run()
            : grape.runFrom(resample(seed, segments));
        result.rounds.push_back({duration, res.fidelity, res.converged});
        if (!res.converged)
            break;
        result.bestDurationNs = duration;
        result.bestFidelity = res.fidelity;
        result.bestControls = res.controls;
        seed = res.controls;
        duration *= opts.shrinkFactor;
    }
    return result;
}

} // namespace qompress
