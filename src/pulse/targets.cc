#include "pulse/targets.hh"

#include "common/error.hh"

namespace qompress {

namespace {

int
extractBit(int digit, const OperandSpec &op)
{
    if (op.encoded)
        return op.pos == 0 ? (digit >> 1) : (digit & 1);
    return digit;
}

int
replaceBit(int digit, const OperandSpec &op, int bit)
{
    if (op.encoded) {
        if (op.pos == 0)
            return (bit << 1) | (digit & 1);
        return (digit & 2) | bit;
    }
    return bit;
}

int
digitOf(int idx, int transmon, const std::vector<int> &dims)
{
    if (dims.size() == 1)
        return idx;
    return transmon == 0 ? idx / dims[1] : idx % dims[1];
}

int
withDigit(int idx, int transmon, const std::vector<int> &dims, int digit)
{
    if (dims.size() == 1)
        return digit;
    const int d0 = idx / dims[1];
    const int d1 = idx % dims[1];
    return transmon == 0 ? digit * dims[1] + d1 : d0 * dims[1] + digit;
}

CMatrix
permutationMatrix(const std::vector<int> &image)
{
    const int n = static_cast<int>(image.size());
    CMatrix m(n, n);
    for (int col = 0; col < n; ++col)
        m(image[col], col) = 1.0;
    return m;
}

int
totalDim(const std::vector<int> &dims)
{
    int d = 1;
    for (int x : dims)
        d *= x;
    return d;
}

} // namespace

CMatrix
cxTarget(const std::vector<int> &logical_dims, OperandSpec ctl,
         OperandSpec tgt)
{
    const int dim = totalDim(logical_dims);
    std::vector<int> image(dim);
    for (int idx = 0; idx < dim; ++idx) {
        const int cd = digitOf(idx, ctl.transmon, logical_dims);
        const int c = extractBit(cd, ctl);
        int out = idx;
        if (c == 1) {
            const int td = digitOf(idx, tgt.transmon, logical_dims);
            const int t = extractBit(td, tgt);
            out = withDigit(idx, tgt.transmon, logical_dims,
                            replaceBit(td, tgt, t ^ 1));
        }
        image[idx] = out;
    }
    return permutationMatrix(image);
}

CMatrix
swapTarget(const std::vector<int> &logical_dims, OperandSpec a,
           OperandSpec b)
{
    const int dim = totalDim(logical_dims);
    std::vector<int> image(dim);
    for (int idx = 0; idx < dim; ++idx) {
        const int ad = digitOf(idx, a.transmon, logical_dims);
        const int bd = digitOf(idx, b.transmon, logical_dims);
        const int x = extractBit(ad, a);
        const int y = extractBit(bd, b);
        int out;
        if (a.transmon == b.transmon) {
            int nd = replaceBit(ad, a, y);
            nd = replaceBit(nd, b, x);
            out = withDigit(idx, a.transmon, logical_dims, nd);
        } else {
            out = withDigit(idx, a.transmon, logical_dims,
                            replaceBit(ad, a, y));
            out = withDigit(out, b.transmon, logical_dims,
                            replaceBit(bd, b, x));
        }
        image[idx] = out;
    }
    return permutationMatrix(image);
}

CMatrix
xTarget(const std::vector<int> &logical_dims, OperandSpec op)
{
    const int dim = totalDim(logical_dims);
    std::vector<int> image(dim);
    for (int idx = 0; idx < dim; ++idx) {
        const int d = digitOf(idx, op.transmon, logical_dims);
        const int bit = extractBit(d, op);
        image[idx] = withDigit(idx, op.transmon, logical_dims,
                               replaceBit(d, op, bit ^ 1));
    }
    return permutationMatrix(image);
}

CMatrix
swap4Target()
{
    std::vector<int> image(16);
    for (int a = 0; a < 4; ++a)
        for (int b = 0; b < 4; ++b)
            image[a * 4 + b] = b * 4 + a;
    return permutationMatrix(image);
}

CMatrix
encTarget()
{
    // (ququart, qubit): logical inputs a*2+b for a, b in {0,1} map to
    // (2a+b)*2 + 0; the remainder is completed in stable order.
    std::vector<int> image(8, -1);
    std::vector<bool> used(8, false);
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            image[a * 2 + b] = (2 * a + b) * 2;
            used[(2 * a + b) * 2] = true;
        }
    }
    int next = 0;
    for (int col = 0; col < 8; ++col) {
        if (image[col] != -1)
            continue;
        while (used[next])
            ++next;
        image[col] = next;
        used[next] = true;
    }
    return permutationMatrix(image);
}

CMatrix
namedTarget(const std::string &name, std::vector<int> &logical_dims)
{
    const OperandSpec q4p0{0, 0, true};   // ququart 0, position 0
    const OperandSpec q4p1{0, 1, true};
    const OperandSpec q4bp0{1, 0, true};  // ququart 1 (second transmon)
    const OperandSpec q4bp1{1, 1, true};
    const OperandSpec bare0{0, 0, false};
    const OperandSpec bare1{1, 0, false};

    if (name == "X") {
        logical_dims = {2};
        return xTarget(logical_dims, bare0);
    }
    if (name == "X0") {
        logical_dims = {4};
        return xTarget(logical_dims, q4p0);
    }
    if (name == "X1") {
        logical_dims = {4};
        return xTarget(logical_dims, q4p1);
    }
    if (name == "X0,1") {
        logical_dims = {4};
        return xTarget(logical_dims, q4p0) * xTarget(logical_dims, q4p1);
    }
    if (name == "CX0") {
        logical_dims = {4};
        return cxTarget(logical_dims, q4p0, q4p1);
    }
    if (name == "CX1") {
        logical_dims = {4};
        return cxTarget(logical_dims, q4p1, q4p0);
    }
    if (name == "SWAPin") {
        logical_dims = {4};
        return swapTarget(logical_dims, q4p0, q4p1);
    }
    if (name == "CX2") {
        logical_dims = {2, 2};
        return cxTarget(logical_dims, bare0, bare1);
    }
    if (name == "SWAP2") {
        logical_dims = {2, 2};
        return swapTarget(logical_dims, bare0, bare1);
    }
    if (name == "CX0q") {
        logical_dims = {4, 2};
        return cxTarget(logical_dims, q4p0, bare1);
    }
    if (name == "CX1q") {
        logical_dims = {4, 2};
        return cxTarget(logical_dims, q4p1, bare1);
    }
    if (name == "CXq0") {
        logical_dims = {4, 2};
        return cxTarget(logical_dims, bare1, q4p0);
    }
    if (name == "CXq1") {
        logical_dims = {4, 2};
        return cxTarget(logical_dims, bare1, q4p1);
    }
    if (name == "SWAPq0") {
        logical_dims = {4, 2};
        return swapTarget(logical_dims, q4p0, bare1);
    }
    if (name == "SWAPq1") {
        logical_dims = {4, 2};
        return swapTarget(logical_dims, q4p1, bare1);
    }
    if (name == "CX00") {
        logical_dims = {4, 4};
        return cxTarget(logical_dims, q4p0, q4bp0);
    }
    if (name == "CX01") {
        logical_dims = {4, 4};
        return cxTarget(logical_dims, q4p0, q4bp1);
    }
    if (name == "CX10") {
        logical_dims = {4, 4};
        return cxTarget(logical_dims, q4p1, q4bp0);
    }
    if (name == "CX11") {
        logical_dims = {4, 4};
        return cxTarget(logical_dims, q4p1, q4bp1);
    }
    if (name == "SWAP00") {
        logical_dims = {4, 4};
        return swapTarget(logical_dims, q4p0, q4bp0);
    }
    if (name == "SWAP01") {
        logical_dims = {4, 4};
        return swapTarget(logical_dims, q4p0, q4bp1);
    }
    if (name == "SWAP11") {
        logical_dims = {4, 4};
        return swapTarget(logical_dims, q4p1, q4bp1);
    }
    if (name == "SWAP4") {
        logical_dims = {4, 4};
        return swap4Target();
    }
    if (name == "ENC") {
        logical_dims = {4, 2};
        return encTarget();
    }
    QFATAL("unknown pulse target '", name, "'");
}

std::vector<std::string>
namedTargetList()
{
    return {"X",     "X0",    "X1",    "X0,1",  "CX0",    "CX1",
            "SWAPin", "CX2",  "SWAP2", "CX0q",  "CX1q",   "CXq0",
            "CXq1",  "SWAPq0", "SWAPq1", "CX00", "CX01",  "CX10",
            "CX11",  "SWAP00", "SWAP01", "SWAP11", "SWAP4", "ENC"};
}

} // namespace qompress
