/**
 * @file
 * State-evolution utilities on top of the GRAPE propagators: sampled
 * population traces (paper Figure 3) and pulse import/export.
 */

#ifndef QOMPRESS_PULSE_EVOLUTION_HH
#define QOMPRESS_PULSE_EVOLUTION_HH

#include <string>
#include <vector>

#include "pulse/grape.hh"

namespace qompress {

/** Populations of selected basis states at one sample time. */
struct EvolutionSample
{
    double timeNs;
    /** |amplitude|^2 per watched full-space index, in watch order. */
    std::vector<double> populations;
    /** Total probability outside the watched set. */
    double other;
};

/**
 * Propagate a basis state through a piecewise-constant pulse and
 * record watched-state populations roughly every @p samples segments.
 *
 * @param start_logical index in the system's logical subspace;
 * @param watch_logical logical-subspace indices whose populations are
 *        reported.
 */
std::vector<EvolutionSample>
traceEvolution(const TransmonSystem &system, const GrapeOptimizer &grape,
               const std::vector<std::vector<double>> &controls,
               int start_logical, const std::vector<int> &watch_logical,
               int samples = 14);

/**
 * Write controls as CSV: one row per segment, first column the
 * segment start time (ns), then one column per control (rad/ns).
 */
void saveControls(const std::string &path,
                  const std::vector<std::vector<double>> &controls,
                  double dt_ns);

/** Read controls written by saveControls. @returns dt via @p dt_ns. */
std::vector<std::vector<double>>
loadControls(const std::string &path, double &dt_ns);

} // namespace qompress

#endif // QOMPRESS_PULSE_EVOLUTION_HH
