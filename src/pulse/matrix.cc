#include "pulse/matrix.hh"

#include <cmath>

#include "common/error.hh"

namespace qompress {

CMatrix::CMatrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, Scalar(0.0))
{
    QFATAL_IF(rows < 0 || cols < 0, "negative matrix shape");
}

CMatrix
CMatrix::identity(int n)
{
    CMatrix m(n, n);
    for (int i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

CMatrix
CMatrix::operator+(const CMatrix &o) const
{
    QPANIC_IF(rows_ != o.rows_ || cols_ != o.cols_, "shape mismatch");
    CMatrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += o.data_[i];
    return out;
}

CMatrix
CMatrix::operator-(const CMatrix &o) const
{
    QPANIC_IF(rows_ != o.rows_ || cols_ != o.cols_, "shape mismatch");
    CMatrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= o.data_[i];
    return out;
}

CMatrix
CMatrix::operator*(const CMatrix &o) const
{
    QPANIC_IF(cols_ != o.rows_, "matmul shape mismatch");
    CMatrix out(rows_, o.cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int k = 0; k < cols_; ++k) {
            const Scalar a = (*this)(i, k);
            if (a == Scalar(0.0))
                continue;
            for (int j = 0; j < o.cols_; ++j)
                out(i, j) += a * o(k, j);
        }
    }
    return out;
}

CMatrix
CMatrix::operator*(Scalar s) const
{
    CMatrix out = *this;
    for (auto &v : out.data_)
        v *= s;
    return out;
}

CMatrix &
CMatrix::operator+=(const CMatrix &o)
{
    QPANIC_IF(rows_ != o.rows_ || cols_ != o.cols_, "shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += o.data_[i];
    return *this;
}

CMatrix &
CMatrix::operator*=(Scalar s)
{
    for (auto &v : data_)
        v *= s;
    return *this;
}

CMatrix
CMatrix::dagger() const
{
    CMatrix out(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out(j, i) = std::conj((*this)(i, j));
    return out;
}

CMatrix::Scalar
CMatrix::trace() const
{
    QPANIC_IF(rows_ != cols_, "trace of non-square matrix");
    Scalar t = 0.0;
    for (int i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
CMatrix::norm() const
{
    double n2 = 0.0;
    for (const auto &v : data_)
        n2 += std::norm(v);
    return std::sqrt(n2);
}

double
CMatrix::normInf() const
{
    double best = 0.0;
    for (int i = 0; i < rows_; ++i) {
        double row = 0.0;
        for (int j = 0; j < cols_; ++j)
            row += std::abs((*this)(i, j));
        best = std::max(best, row);
    }
    return best;
}

CMatrix
CMatrix::kron(const CMatrix &a, const CMatrix &b)
{
    CMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j)
            for (int k = 0; k < b.rows(); ++k)
                for (int l = 0; l < b.cols(); ++l)
                    out(i * b.rows() + k, j * b.cols() + l) =
                        a(i, j) * b(k, l);
    return out;
}

bool
CMatrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    const CMatrix prod = dagger() * (*this);
    const CMatrix diff = prod - identity(rows_);
    return diff.norm() <= tol * rows_;
}

void
CMatrix::resize(int rows, int cols)
{
    QFATAL_IF(rows < 0 || cols < 0, "negative matrix shape");
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows) * cols);
}

void
CMatrix::setZero()
{
    std::fill(data_.begin(), data_.end(), Scalar(0.0));
}

void
CMatrix::setIdentity()
{
    QPANIC_IF(rows_ != cols_, "setIdentity on non-square matrix");
    setZero();
    for (int i = 0; i < rows_; ++i)
        (*this)(i, i) = 1.0;
}

void
CMatrix::copyFrom(const CMatrix &o)
{
    rows_ = o.rows_;
    cols_ = o.cols_;
    data_.assign(o.data_.begin(), o.data_.end());
}

void
CMatrix::swap(CMatrix &o) noexcept
{
    std::swap(rows_, o.rows_);
    std::swap(cols_, o.cols_);
    data_.swap(o.data_);
}

void
mulInto(CMatrix &out, const CMatrix &a, const CMatrix &b)
{
    QPANIC_IF(a.cols() != b.rows(), "mulInto shape mismatch");
    QPANIC_IF(&out == &a || &out == &b, "mulInto: aliased output");
    out.resize(a.rows(), b.cols());
    out.setZero();
    const int n = a.rows(), m = a.cols(), p = b.cols();
    const CMatrix::Scalar *bd = b.data();
    CMatrix::Scalar *od = out.data();
    for (int i = 0; i < n; ++i) {
        for (int k = 0; k < m; ++k) {
            const CMatrix::Scalar av = a(i, k);
            if (av == CMatrix::Scalar(0.0))
                continue;
            const CMatrix::Scalar *brow = bd + static_cast<std::size_t>(k) * p;
            CMatrix::Scalar *orow = od + static_cast<std::size_t>(i) * p;
            for (int j = 0; j < p; ++j)
                orow[j] += av * brow[j];
        }
    }
}

void
addScaledInto(CMatrix &a, CMatrix::Scalar s, const CMatrix &b)
{
    QPANIC_IF(a.rows() != b.rows() || a.cols() != b.cols(),
              "addScaledInto shape mismatch");
    CMatrix::Scalar *ad = a.data();
    const CMatrix::Scalar *bd = b.data();
    const std::size_t n =
        static_cast<std::size_t>(a.rows()) * a.cols();
    for (std::size_t i = 0; i < n; ++i)
        ad[i] += s * bd[i];
}

void
scaleInto(CMatrix &out, CMatrix::Scalar s, const CMatrix &a)
{
    out.resize(a.rows(), a.cols());
    CMatrix::Scalar *od = out.data();
    const CMatrix::Scalar *ad = a.data();
    const std::size_t n =
        static_cast<std::size_t>(a.rows()) * a.cols();
    for (std::size_t i = 0; i < n; ++i)
        od[i] = s * ad[i];
}

void
daggerInto(CMatrix &out, const CMatrix &a)
{
    QPANIC_IF(&out == &a, "daggerInto: aliased output");
    out.resize(a.cols(), a.rows());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j)
            out(j, i) = std::conj(a(i, j));
}

void
expmInto(CMatrix &out, const CMatrix &a, ExpmWorkspace &ws)
{
    QPANIC_IF(a.rows() != a.cols(), "expm of non-square matrix");
    const int n = a.rows();
    // Scale so the Taylor series converges fast, then square back.
    const double norm = a.normInf();
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }
    scaleInto(ws.scaled, CMatrix::Scalar(scale), a);
    ws.term.resize(n, n);
    ws.term.setIdentity();
    out.resize(n, n);
    out.setIdentity();
    for (int k = 1; k <= 18; ++k) {
        mulInto(ws.tmp, ws.term, ws.scaled);
        ws.term.swap(ws.tmp);
        scaleInto(ws.term, CMatrix::Scalar(1.0 / k), ws.term);
        addScaledInto(out, CMatrix::Scalar(1.0), ws.term);
        if (ws.term.norm() < 1e-18)
            break;
    }
    for (int s = 0; s < squarings; ++s) {
        mulInto(ws.tmp, out, out);
        out.swap(ws.tmp);
    }
}

CMatrix
expm(const CMatrix &a)
{
    ExpmWorkspace ws;
    CMatrix out;
    expmInto(out, a, ws);
    return out;
}

void
expmFamilyInto(CMatrix &eA, std::vector<CMatrix> &ds, const CMatrix &a,
               const std::vector<CMatrix> &bs, ExpmFamilyWorkspace &ws)
{
    QPANIC_IF(a.rows() != a.cols(), "expmFamilyInto: non-square A");
    const int n = a.rows();
    const std::size_t nk = bs.size();
    for (const auto &b : bs) {
        QPANIC_IF(b.rows() != n || b.cols() != n,
                  "expmFamilyInto: direction shape mismatch");
    }

    // Scale by the norm of the augmented matrix [[A, B], [0, A]]
    // (bounded by |A| + max_k |B_k|) so every block series converges.
    double norm = a.normInf();
    double bnorm = 0.0;
    for (const auto &b : bs)
        bnorm = std::max(bnorm, b.normInf());
    norm += bnorm;
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }

    // Scaled blocks: ws.tmp2 holds As; directions are consumed scaled
    // on the fly (B appears linearly in every D term).
    scaleInto(ws.tmp2, CMatrix::Scalar(scale), a);
    const CMatrix &as = ws.tmp2;

    ws.d.resize(nk);
    ws.sd.resize(nk);
    ds.resize(nk);
    ws.p.resize(n, n);
    ws.p.setIdentity();
    ws.sp.resize(n, n);
    ws.sp.setIdentity();
    for (std::size_t k = 0; k < nk; ++k) {
        ws.d[k].resize(n, n);
        ws.d[k].setZero();
        ws.sd[k].resize(n, n);
        ws.sd[k].setZero();
    }

    // Taylor recurrence on the blocks of term_m = [[P_m, D_m], [0, P_m]]:
    //   P_{m+1}   = P_m As / (m+1)
    //   D_{m+1,k} = (P_m Bs_k + D_{m,k} As) / (m+1)
    for (int m = 1; m <= 18; ++m) {
        const CMatrix::Scalar inv(1.0 / m);
        double term_norm = 0.0;
        for (std::size_t k = 0; k < nk; ++k) {
            mulInto(ws.tmp, ws.p, bs[k]);
            scaleInto(ws.tmp, CMatrix::Scalar(scale), ws.tmp);
            mulInto(eA, ws.d[k], as); // eA free as scratch until the end
            addScaledInto(ws.tmp, CMatrix::Scalar(1.0), eA);
            scaleInto(ws.tmp, inv, ws.tmp);
            ws.d[k].swap(ws.tmp);
            addScaledInto(ws.sd[k], CMatrix::Scalar(1.0), ws.d[k]);
            term_norm = std::max(term_norm, ws.d[k].norm());
        }
        mulInto(ws.tmp, ws.p, as);
        scaleInto(ws.tmp, inv, ws.tmp);
        ws.p.swap(ws.tmp);
        addScaledInto(ws.sp, CMatrix::Scalar(1.0), ws.p);
        term_norm = std::max(term_norm, ws.p.norm());
        if (term_norm < 1e-18)
            break;
    }

    // Squaring: [[P, D], [0, P]]^2 = [[P^2, PD + DP], [0, P^2]].
    for (int s = 0; s < squarings; ++s) {
        for (std::size_t k = 0; k < nk; ++k) {
            mulInto(ws.tmp, ws.sp, ws.sd[k]);
            mulInto(eA, ws.sd[k], ws.sp);
            addScaledInto(ws.tmp, CMatrix::Scalar(1.0), eA);
            ws.sd[k].swap(ws.tmp);
        }
        mulInto(ws.tmp, ws.sp, ws.sp);
        ws.sp.swap(ws.tmp);
    }

    eA.copyFrom(ws.sp);
    for (std::size_t k = 0; k < nk; ++k)
        ds[k].copyFrom(ws.sd[k]);
}

} // namespace qompress
