#include "pulse/matrix.hh"

#include <cmath>

#include "common/error.hh"

namespace qompress {

CMatrix::CMatrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, Scalar(0.0))
{
    QFATAL_IF(rows < 0 || cols < 0, "negative matrix shape");
}

CMatrix
CMatrix::identity(int n)
{
    CMatrix m(n, n);
    for (int i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

CMatrix
CMatrix::operator+(const CMatrix &o) const
{
    QPANIC_IF(rows_ != o.rows_ || cols_ != o.cols_, "shape mismatch");
    CMatrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += o.data_[i];
    return out;
}

CMatrix
CMatrix::operator-(const CMatrix &o) const
{
    QPANIC_IF(rows_ != o.rows_ || cols_ != o.cols_, "shape mismatch");
    CMatrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= o.data_[i];
    return out;
}

CMatrix
CMatrix::operator*(const CMatrix &o) const
{
    QPANIC_IF(cols_ != o.rows_, "matmul shape mismatch");
    CMatrix out(rows_, o.cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int k = 0; k < cols_; ++k) {
            const Scalar a = (*this)(i, k);
            if (a == Scalar(0.0))
                continue;
            for (int j = 0; j < o.cols_; ++j)
                out(i, j) += a * o(k, j);
        }
    }
    return out;
}

CMatrix
CMatrix::operator*(Scalar s) const
{
    CMatrix out = *this;
    for (auto &v : out.data_)
        v *= s;
    return out;
}

CMatrix &
CMatrix::operator+=(const CMatrix &o)
{
    QPANIC_IF(rows_ != o.rows_ || cols_ != o.cols_, "shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += o.data_[i];
    return *this;
}

CMatrix &
CMatrix::operator*=(Scalar s)
{
    for (auto &v : data_)
        v *= s;
    return *this;
}

CMatrix
CMatrix::dagger() const
{
    CMatrix out(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out(j, i) = std::conj((*this)(i, j));
    return out;
}

CMatrix::Scalar
CMatrix::trace() const
{
    QPANIC_IF(rows_ != cols_, "trace of non-square matrix");
    Scalar t = 0.0;
    for (int i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
CMatrix::norm() const
{
    double n2 = 0.0;
    for (const auto &v : data_)
        n2 += std::norm(v);
    return std::sqrt(n2);
}

double
CMatrix::normInf() const
{
    double best = 0.0;
    for (int i = 0; i < rows_; ++i) {
        double row = 0.0;
        for (int j = 0; j < cols_; ++j)
            row += std::abs((*this)(i, j));
        best = std::max(best, row);
    }
    return best;
}

CMatrix
CMatrix::kron(const CMatrix &a, const CMatrix &b)
{
    CMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j)
            for (int k = 0; k < b.rows(); ++k)
                for (int l = 0; l < b.cols(); ++l)
                    out(i * b.rows() + k, j * b.cols() + l) =
                        a(i, j) * b(k, l);
    return out;
}

bool
CMatrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    const CMatrix prod = dagger() * (*this);
    const CMatrix diff = prod - identity(rows_);
    return diff.norm() <= tol * rows_;
}

CMatrix
expm(const CMatrix &a)
{
    QPANIC_IF(a.rows() != a.cols(), "expm of non-square matrix");
    // Scale so the Taylor series converges fast, then square back.
    const double norm = a.normInf();
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }
    const CMatrix as = a * CMatrix::Scalar(scale);
    CMatrix term = CMatrix::identity(a.rows());
    CMatrix sum = term;
    for (int k = 1; k <= 18; ++k) {
        term = term * as;
        term *= CMatrix::Scalar(1.0 / k);
        sum += term;
        if (term.norm() < 1e-18)
            break;
    }
    for (int s = 0; s < squarings; ++s)
        sum = sum * sum;
    return sum;
}

} // namespace qompress
