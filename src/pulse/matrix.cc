#include "pulse/matrix.hh"

#include <cmath>

#include "common/error.hh"

namespace qompress {

CMatrix::CMatrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, Scalar(0.0))
{
    QFATAL_IF(rows < 0 || cols < 0, "negative matrix shape");
}

CMatrix
CMatrix::identity(int n)
{
    CMatrix m(n, n);
    for (int i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

CMatrix
CMatrix::operator+(const CMatrix &o) const
{
    QPANIC_IF(rows_ != o.rows_ || cols_ != o.cols_, "shape mismatch");
    CMatrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += o.data_[i];
    return out;
}

CMatrix
CMatrix::operator-(const CMatrix &o) const
{
    QPANIC_IF(rows_ != o.rows_ || cols_ != o.cols_, "shape mismatch");
    CMatrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= o.data_[i];
    return out;
}

CMatrix
CMatrix::operator*(const CMatrix &o) const
{
    QPANIC_IF(cols_ != o.rows_, "matmul shape mismatch");
    CMatrix out(rows_, o.cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int k = 0; k < cols_; ++k) {
            const Scalar a = (*this)(i, k);
            if (a == Scalar(0.0))
                continue;
            for (int j = 0; j < o.cols_; ++j)
                out(i, j) += a * o(k, j);
        }
    }
    return out;
}

CMatrix
CMatrix::operator*(Scalar s) const
{
    CMatrix out = *this;
    for (auto &v : out.data_)
        v *= s;
    return out;
}

CMatrix &
CMatrix::operator+=(const CMatrix &o)
{
    QPANIC_IF(rows_ != o.rows_ || cols_ != o.cols_, "shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += o.data_[i];
    return *this;
}

CMatrix &
CMatrix::operator*=(Scalar s)
{
    for (auto &v : data_)
        v *= s;
    return *this;
}

CMatrix
CMatrix::dagger() const
{
    CMatrix out(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out(j, i) = std::conj((*this)(i, j));
    return out;
}

CMatrix::Scalar
CMatrix::trace() const
{
    QPANIC_IF(rows_ != cols_, "trace of non-square matrix");
    Scalar t = 0.0;
    for (int i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
CMatrix::norm() const
{
    double n2 = 0.0;
    for (const auto &v : data_)
        n2 += std::norm(v);
    return std::sqrt(n2);
}

double
CMatrix::normInf() const
{
    double best = 0.0;
    for (int i = 0; i < rows_; ++i) {
        double row = 0.0;
        for (int j = 0; j < cols_; ++j)
            row += std::abs((*this)(i, j));
        best = std::max(best, row);
    }
    return best;
}

CMatrix
CMatrix::kron(const CMatrix &a, const CMatrix &b)
{
    CMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j)
            for (int k = 0; k < b.rows(); ++k)
                for (int l = 0; l < b.cols(); ++l)
                    out(i * b.rows() + k, j * b.cols() + l) =
                        a(i, j) * b(k, l);
    return out;
}

bool
CMatrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    const CMatrix prod = dagger() * (*this);
    const CMatrix diff = prod - identity(rows_);
    return diff.norm() <= tol * rows_;
}

void
CMatrix::resize(int rows, int cols)
{
    QFATAL_IF(rows < 0 || cols < 0, "negative matrix shape");
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows) * cols);
}

void
CMatrix::setZero()
{
    std::fill(data_.begin(), data_.end(), Scalar(0.0));
}

void
CMatrix::setIdentity()
{
    QPANIC_IF(rows_ != cols_, "setIdentity on non-square matrix");
    setZero();
    for (int i = 0; i < rows_; ++i)
        (*this)(i, i) = 1.0;
}

void
CMatrix::copyFrom(const CMatrix &o)
{
    rows_ = o.rows_;
    cols_ = o.cols_;
    data_.assign(o.data_.begin(), o.data_.end());
}

void
CMatrix::swap(CMatrix &o) noexcept
{
    std::swap(rows_, o.rows_);
    std::swap(cols_, o.cols_);
    data_.swap(o.data_);
}

void
mulInto(CMatrix &out, const CMatrix &a, const CMatrix &b)
{
    QPANIC_IF(a.cols() != b.rows(), "mulInto shape mismatch");
    QPANIC_IF(&out == &a || &out == &b, "mulInto: aliased output");
    out.resize(a.rows(), b.cols());
    out.setZero();
    const int n = a.rows(), m = a.cols(), p = b.cols();
    const CMatrix::Scalar *bd = b.data();
    CMatrix::Scalar *od = out.data();
    for (int i = 0; i < n; ++i) {
        for (int k = 0; k < m; ++k) {
            const CMatrix::Scalar av = a(i, k);
            if (av == CMatrix::Scalar(0.0))
                continue;
            const CMatrix::Scalar *brow = bd + static_cast<std::size_t>(k) * p;
            CMatrix::Scalar *orow = od + static_cast<std::size_t>(i) * p;
            for (int j = 0; j < p; ++j)
                orow[j] += av * brow[j];
        }
    }
}

void
addScaledInto(CMatrix &a, CMatrix::Scalar s, const CMatrix &b)
{
    QPANIC_IF(a.rows() != b.rows() || a.cols() != b.cols(),
              "addScaledInto shape mismatch");
    CMatrix::Scalar *ad = a.data();
    const CMatrix::Scalar *bd = b.data();
    const std::size_t n =
        static_cast<std::size_t>(a.rows()) * a.cols();
    for (std::size_t i = 0; i < n; ++i)
        ad[i] += s * bd[i];
}

void
scaleInto(CMatrix &out, CMatrix::Scalar s, const CMatrix &a)
{
    out.resize(a.rows(), a.cols());
    CMatrix::Scalar *od = out.data();
    const CMatrix::Scalar *ad = a.data();
    const std::size_t n =
        static_cast<std::size_t>(a.rows()) * a.cols();
    for (std::size_t i = 0; i < n; ++i)
        od[i] = s * ad[i];
}

void
daggerInto(CMatrix &out, const CMatrix &a)
{
    QPANIC_IF(&out == &a, "daggerInto: aliased output");
    out.resize(a.cols(), a.rows());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j)
            out(j, i) = std::conj(a(i, j));
}

void
expmInto(CMatrix &out, const CMatrix &a, ExpmWorkspace &ws)
{
    // The direction-free case of the Padé-13 family exponential: with
    // no derivative directions the augmented-matrix machinery reduces
    // to Higham's plain expm, sharing its kernel and workspace.
    expmFamilyInto(out, ws.noDs, a, {}, ws.fam);
}

void
expmIntoTaylor(CMatrix &out, const CMatrix &a, ExpmWorkspace &ws)
{
    QPANIC_IF(a.rows() != a.cols(), "expm of non-square matrix");
    const int n = a.rows();
    // Scale so the Taylor series converges fast, then square back.
    const double norm = a.normInf();
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }
    scaleInto(ws.scaled, CMatrix::Scalar(scale), a);
    ws.term.resize(n, n);
    ws.term.setIdentity();
    out.resize(n, n);
    out.setIdentity();
    for (int k = 1; k <= 18; ++k) {
        mulInto(ws.tmp, ws.term, ws.scaled);
        ws.term.swap(ws.tmp);
        scaleInto(ws.term, CMatrix::Scalar(1.0 / k), ws.term);
        addScaledInto(out, CMatrix::Scalar(1.0), ws.term);
        if (ws.term.norm() < 1e-18)
            break;
    }
    for (int s = 0; s < squarings; ++s) {
        mulInto(ws.tmp, out, out);
        out.swap(ws.tmp);
    }
}

CMatrix
expm(const CMatrix &a)
{
    ExpmWorkspace ws;
    CMatrix out;
    expmInto(out, a, ws);
    return out;
}

void
LuSolver::factor(const CMatrix &a)
{
    QPANIC_IF(a.rows() != a.cols(), "LuSolver: non-square matrix");
    const int n = a.rows();
    lu_.copyFrom(a);
    piv_.resize(static_cast<std::size_t>(n));
    CMatrix::Scalar *d = lu_.data();
    for (int k = 0; k < n; ++k) {
        // Partial pivot: largest remaining magnitude in column k.
        int p = k;
        double best = std::abs(d[static_cast<std::size_t>(k) * n + k]);
        for (int i = k + 1; i < n; ++i) {
            const double v =
                std::abs(d[static_cast<std::size_t>(i) * n + k]);
            if (v > best) {
                best = v;
                p = i;
            }
        }
        QFATAL_IF(best == 0.0, "LuSolver: singular matrix");
        piv_[static_cast<std::size_t>(k)] = p;
        if (p != k) {
            for (int j = 0; j < n; ++j)
                std::swap(d[static_cast<std::size_t>(k) * n + j],
                          d[static_cast<std::size_t>(p) * n + j]);
        }
        const CMatrix::Scalar inv =
            CMatrix::Scalar(1.0) / d[static_cast<std::size_t>(k) * n + k];
        for (int i = k + 1; i < n; ++i) {
            CMatrix::Scalar &l = d[static_cast<std::size_t>(i) * n + k];
            l *= inv;
            if (l == CMatrix::Scalar(0.0))
                continue;
            const CMatrix::Scalar lik = l;
            const CMatrix::Scalar *krow =
                d + static_cast<std::size_t>(k) * n;
            CMatrix::Scalar *irow = d + static_cast<std::size_t>(i) * n;
            for (int j = k + 1; j < n; ++j)
                irow[j] -= lik * krow[j];
        }
    }
}

void
LuSolver::solveInPlace(CMatrix &b) const
{
    const int n = lu_.rows();
    QPANIC_IF(b.rows() != n, "LuSolver: rhs shape mismatch");
    const int m = b.cols();
    const CMatrix::Scalar *d = lu_.data();
    CMatrix::Scalar *x = b.data();
    // Apply the recorded row swaps, then unit-lower forward
    // substitution and upper back substitution, row-vectorized over
    // every right-hand-side column at once.
    for (int k = 0; k < n; ++k) {
        const int p = piv_[static_cast<std::size_t>(k)];
        if (p != k) {
            for (int j = 0; j < m; ++j)
                std::swap(x[static_cast<std::size_t>(k) * m + j],
                          x[static_cast<std::size_t>(p) * m + j]);
        }
    }
    for (int k = 0; k < n; ++k) {
        const CMatrix::Scalar *krow = x + static_cast<std::size_t>(k) * m;
        for (int i = k + 1; i < n; ++i) {
            const CMatrix::Scalar l = d[static_cast<std::size_t>(i) * n + k];
            if (l == CMatrix::Scalar(0.0))
                continue;
            CMatrix::Scalar *irow = x + static_cast<std::size_t>(i) * m;
            for (int j = 0; j < m; ++j)
                irow[j] -= l * krow[j];
        }
    }
    for (int k = n - 1; k >= 0; --k) {
        CMatrix::Scalar *krow = x + static_cast<std::size_t>(k) * m;
        const CMatrix::Scalar inv =
            CMatrix::Scalar(1.0) / d[static_cast<std::size_t>(k) * n + k];
        for (int j = 0; j < m; ++j)
            krow[j] *= inv;
        for (int i = 0; i < k; ++i) {
            const CMatrix::Scalar uik =
                d[static_cast<std::size_t>(i) * n + k];
            if (uik == CMatrix::Scalar(0.0))
                continue;
            CMatrix::Scalar *irow = x + static_cast<std::size_t>(i) * m;
            for (int j = 0; j < m; ++j)
                irow[j] -= uik * krow[j];
        }
    }
}

namespace {

/** Padé-13 numerator coefficients b_0..b_13 (Higham, "The Scaling and
 *  Squaring Method for the Matrix Exponential Revisited"); the
 *  denominator is the same polynomial at -A. */
constexpr double kPade13[] = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
    1187353796428800.0,  129060195264000.0,   10559470521600.0,
    670442572800.0,      33522128640.0,       1323241920.0,
    40840800.0,          960960.0,            16380.0,
    182.0,               1.0};

/** Largest scaled norm for which the [13/13] approximant is
 *  backward-stable to double precision (Higham's theta_13). */
constexpr double kPadeTheta13 = 5.371920351148152;

/** out = c6*p6 + c4*p4 + c2*p2 (the even-power partial sums every
 *  Padé block polynomial is built from). */
void
evenSumInto(CMatrix &out, double c6, const CMatrix &p6, double c4,
            const CMatrix &p4, double c2, const CMatrix &p2)
{
    scaleInto(out, CMatrix::Scalar(c6), p6);
    addScaledInto(out, CMatrix::Scalar(c4), p4);
    addScaledInto(out, CMatrix::Scalar(c2), p2);
}

void
addIdentityScaled(CMatrix &m, double c)
{
    for (int i = 0; i < m.rows(); ++i)
        m(i, i) += CMatrix::Scalar(c);
}

} // namespace

void
expmFamilyInto(CMatrix &eA, std::vector<CMatrix> &ds, const CMatrix &a,
               const std::vector<CMatrix> &bs, ExpmFamilyWorkspace &ws)
{
    QPANIC_IF(a.rows() != a.cols(), "expmFamilyInto: non-square A");
    const int n = a.rows();
    const std::size_t nk = bs.size();
    for (const auto &b : bs) {
        QPANIC_IF(b.rows() != n || b.cols() != n,
                  "expmFamilyInto: direction shape mismatch");
    }

    // Scale by the norm of the augmented matrix [[A, B], [0, A]]
    // (bounded by |A| + max_k |B_k|) so the [13/13] approximant is
    // accurate for the diagonal *and* derivative blocks; theta_13
    // instead of the Taylor path's 0.5 saves 3-4 squaring passes on
    // typical GRAPE segment generators.
    double norm = a.normInf();
    double bnorm = 0.0;
    for (const auto &b : bs)
        bnorm = std::max(bnorm, b.normInf());
    norm += bnorm;
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > kPadeTheta13) {
        scale *= 0.5;
        ++squarings;
    }

    const double *c = kPade13;
    scaleInto(ws.as, CMatrix::Scalar(scale), a);
    const CMatrix &as = ws.as;
    mulInto(ws.a2, as, as);
    mulInto(ws.a4, ws.a2, ws.a2);
    mulInto(ws.a6, ws.a2, ws.a4);

    // p_13 split into odd part U = As*W, W = A6*W1 + W2, and even part
    // V = A6*Z1 + Z2; the denominator is q_13(As) = p_13(-As) = V - U.
    evenSumInto(ws.w1, c[13], ws.a6, c[11], ws.a4, c[9], ws.a2);
    evenSumInto(ws.w2, c[7], ws.a6, c[5], ws.a4, c[3], ws.a2);
    addIdentityScaled(ws.w2, c[1]);
    evenSumInto(ws.z1, c[12], ws.a6, c[10], ws.a4, c[8], ws.a2);
    evenSumInto(ws.z2, c[6], ws.a6, c[4], ws.a4, c[2], ws.a2);
    addIdentityScaled(ws.z2, c[0]);
    mulInto(ws.w, ws.a6, ws.w1);
    addScaledInto(ws.w, CMatrix::Scalar(1.0), ws.w2);
    mulInto(ws.u, as, ws.w);
    mulInto(ws.v, ws.a6, ws.z1);
    addScaledInto(ws.v, CMatrix::Scalar(1.0), ws.z2);

    // One factorization of Q = V - U serves e^A and every direction.
    ws.q.copyFrom(ws.v);
    addScaledInto(ws.q, CMatrix::Scalar(-1.0), ws.u);
    ws.lu.factor(ws.q);
    eA.copyFrom(ws.v);
    addScaledInto(eA, CMatrix::Scalar(1.0), ws.u);
    ws.lu.solveInPlace(eA); // F = Q^{-1} (V + U)

    // Fréchet derivative of the approximant per direction (Al-Mohy &
    // Higham): with M_j the derivative of As^j along the scaled
    // direction E, L_u and L_v are the derivatives of U and V, and
    //   L = Q^{-1} (L_u + L_v + (L_u - L_v) F).
    // ws.p / ws.sp double as L_v / L_u scratch here (the Taylor entry
    // point owns them otherwise).
    ds.resize(nk);
    for (std::size_t k = 0; k < nk; ++k) {
        scaleInto(ws.bscaled, CMatrix::Scalar(scale), bs[k]);
        const CMatrix &e = ws.bscaled;
        // M2 = As E + E As; M4 = A2 M2 + M2 A2; M6 = A2 M4 + M2 A4.
        mulInto(ws.tmp, as, e);
        mulInto(ws.m2, e, as);
        addScaledInto(ws.m2, CMatrix::Scalar(1.0), ws.tmp);
        mulInto(ws.tmp, ws.m2, ws.a2);
        mulInto(ws.m4, ws.a2, ws.m2);
        addScaledInto(ws.m4, CMatrix::Scalar(1.0), ws.tmp);
        mulInto(ws.tmp, ws.m2, ws.a4);
        mulInto(ws.m6, ws.a2, ws.m4);
        addScaledInto(ws.m6, CMatrix::Scalar(1.0), ws.tmp);

        // L_w = M6 W1 + A6 dW1 + dW2, assembled in ws.p.
        evenSumInto(ws.tmp2, c[13], ws.m6, c[11], ws.m4, c[9], ws.m2);
        mulInto(ws.p, ws.a6, ws.tmp2);
        mulInto(ws.tmp, ws.m6, ws.w1);
        addScaledInto(ws.p, CMatrix::Scalar(1.0), ws.tmp);
        evenSumInto(ws.tmp2, c[7], ws.m6, c[5], ws.m4, c[3], ws.m2);
        addScaledInto(ws.p, CMatrix::Scalar(1.0), ws.tmp2);
        // L_u = E W + As L_w, assembled in ws.sp.
        mulInto(ws.tmp, e, ws.w);
        mulInto(ws.sp, as, ws.p);
        addScaledInto(ws.sp, CMatrix::Scalar(1.0), ws.tmp);
        // L_v = M6 Z1 + A6 dZ1 + dZ2, assembled in ws.p.
        evenSumInto(ws.tmp2, c[12], ws.m6, c[10], ws.m4, c[8], ws.m2);
        mulInto(ws.p, ws.a6, ws.tmp2);
        mulInto(ws.tmp, ws.m6, ws.z1);
        addScaledInto(ws.p, CMatrix::Scalar(1.0), ws.tmp);
        evenSumInto(ws.tmp2, c[6], ws.m6, c[4], ws.m4, c[2], ws.m2);
        addScaledInto(ws.p, CMatrix::Scalar(1.0), ws.tmp2);

        // ds[k] = Q^{-1} (L_u + L_v + (L_u - L_v) F), reusing the
        // factorization above.
        ws.tmp.copyFrom(ws.sp);
        addScaledInto(ws.tmp, CMatrix::Scalar(-1.0), ws.p);
        mulInto(ws.tmp2, ws.tmp, eA);
        addScaledInto(ws.tmp2, CMatrix::Scalar(1.0), ws.sp);
        addScaledInto(ws.tmp2, CMatrix::Scalar(1.0), ws.p);
        ds[k].copyFrom(ws.tmp2);
        ws.lu.solveInPlace(ds[k]);
    }

    // Squaring: [[F, L], [0, F]]^2 = [[F^2, FL + LF], [0, F^2]].
    for (int s = 0; s < squarings; ++s) {
        for (std::size_t k = 0; k < nk; ++k) {
            mulInto(ws.tmp, eA, ds[k]);
            mulInto(ws.tmp2, ds[k], eA);
            addScaledInto(ws.tmp, CMatrix::Scalar(1.0), ws.tmp2);
            ds[k].swap(ws.tmp);
        }
        mulInto(ws.tmp, eA, eA);
        eA.swap(ws.tmp);
    }
}

void
expmFamilyIntoTaylor(CMatrix &eA, std::vector<CMatrix> &ds,
                     const CMatrix &a, const std::vector<CMatrix> &bs,
                     ExpmFamilyWorkspace &ws)
{
    QPANIC_IF(a.rows() != a.cols(), "expmFamilyInto: non-square A");
    const int n = a.rows();
    const std::size_t nk = bs.size();
    for (const auto &b : bs) {
        QPANIC_IF(b.rows() != n || b.cols() != n,
                  "expmFamilyInto: direction shape mismatch");
    }

    // Scale by the norm of the augmented matrix [[A, B], [0, A]]
    // (bounded by |A| + max_k |B_k|) so every block series converges.
    double norm = a.normInf();
    double bnorm = 0.0;
    for (const auto &b : bs)
        bnorm = std::max(bnorm, b.normInf());
    norm += bnorm;
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }

    // Scaled blocks: ws.tmp2 holds As; directions are consumed scaled
    // on the fly (B appears linearly in every D term).
    scaleInto(ws.tmp2, CMatrix::Scalar(scale), a);
    const CMatrix &as = ws.tmp2;

    ws.d.resize(nk);
    ws.sd.resize(nk);
    ds.resize(nk);
    ws.p.resize(n, n);
    ws.p.setIdentity();
    ws.sp.resize(n, n);
    ws.sp.setIdentity();
    for (std::size_t k = 0; k < nk; ++k) {
        ws.d[k].resize(n, n);
        ws.d[k].setZero();
        ws.sd[k].resize(n, n);
        ws.sd[k].setZero();
    }

    // Taylor recurrence on the blocks of term_m = [[P_m, D_m], [0, P_m]]:
    //   P_{m+1}   = P_m As / (m+1)
    //   D_{m+1,k} = (P_m Bs_k + D_{m,k} As) / (m+1)
    for (int m = 1; m <= 18; ++m) {
        const CMatrix::Scalar inv(1.0 / m);
        double term_norm = 0.0;
        for (std::size_t k = 0; k < nk; ++k) {
            mulInto(ws.tmp, ws.p, bs[k]);
            scaleInto(ws.tmp, CMatrix::Scalar(scale), ws.tmp);
            mulInto(eA, ws.d[k], as); // eA free as scratch until the end
            addScaledInto(ws.tmp, CMatrix::Scalar(1.0), eA);
            scaleInto(ws.tmp, inv, ws.tmp);
            ws.d[k].swap(ws.tmp);
            addScaledInto(ws.sd[k], CMatrix::Scalar(1.0), ws.d[k]);
            term_norm = std::max(term_norm, ws.d[k].norm());
        }
        mulInto(ws.tmp, ws.p, as);
        scaleInto(ws.tmp, inv, ws.tmp);
        ws.p.swap(ws.tmp);
        addScaledInto(ws.sp, CMatrix::Scalar(1.0), ws.p);
        term_norm = std::max(term_norm, ws.p.norm());
        if (term_norm < 1e-18)
            break;
    }

    // Squaring: [[P, D], [0, P]]^2 = [[P^2, PD + DP], [0, P^2]].
    for (int s = 0; s < squarings; ++s) {
        for (std::size_t k = 0; k < nk; ++k) {
            mulInto(ws.tmp, ws.sp, ws.sd[k]);
            mulInto(eA, ws.sd[k], ws.sp);
            addScaledInto(ws.tmp, CMatrix::Scalar(1.0), eA);
            ws.sd[k].swap(ws.tmp);
        }
        mulInto(ws.tmp, ws.sp, ws.sp);
        ws.sp.swap(ws.tmp);
    }

    eA.copyFrom(ws.sp);
    for (std::size_t k = 0; k < nk; ++k)
        ds[k].copyFrom(ws.sd[k]);
}

} // namespace qompress
