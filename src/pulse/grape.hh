/**
 * @file
 * Piecewise-constant GRAPE pulse optimization with analytic gradients
 * and an Adam step, replacing the paper's Juqbox dependency
 * (section 2.3 / 3.3): minimize J = 1 - F + lambda * leakage subject
 * to the drive-amplitude bound.
 */

#ifndef QOMPRESS_PULSE_GRAPE_HH
#define QOMPRESS_PULSE_GRAPE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/thread_pool.hh"
#include "pulse/hamiltonian.hh"

namespace qompress {

/** Optimizer knobs. */
struct GrapeOptions
{
    int maxIterations = 400;
    /** Stop as soon as fidelity reaches this value. */
    double targetFidelity = 0.99;
    /** Weight of the guard-population (leakage) penalty. */
    double leakageWeight = 0.1;
    /** Adam learning rate in rad/ns. */
    double learningRate = 0.004;
    /** Random-init amplitude as a fraction of the drive bound. */
    double initFraction = 0.05;
    std::uint64_t seed = 7;
    /**
     * Lanes for the per-segment fan-out inside objectiveAndGradient
     * (segment exponentials and per-segment gradient rows are
     * independent): 0 = process default (QOMPRESS_THREADS /
     * hardware_concurrency), 1 = force serial, N = exactly N lanes.
     * Results are bit-identical at every setting — each segment runs
     * the identical kernel on the identical inputs; lanes only decide
     * which thread executes it.
     */
    int threads = 0;
};

/** Outcome of one GRAPE run. */
struct GrapeResult
{
    bool converged = false;
    double fidelity = 0.0;
    double leakage = 0.0;
    int iterations = 0;
    /** controls[k][j]: amplitude of control k in segment j (rad/ns). */
    std::vector<std::vector<double>> controls;
};

/**
 * Caller-owned scratch for objectiveAndGradient: propagators,
 * cumulative products, backward partials, per-segment directional
 * derivatives, and per-lane exponential/product scratch. Reusing one
 * workspace across iterations makes a gradient step allocation-free
 * after the first call sizes every buffer — with a pool, the property
 * holds *per lane*: once a lane's scratch is warm, no invocation run
 * on that lane touches the heap (assertable via allocProbe below).
 */
struct GrapeWorkspace
{
    std::vector<CMatrix> props;   ///< per-segment propagators U_j
    std::vector<CMatrix> fwd;     ///< forward products A_j = U_j..U_0
    std::vector<CMatrix> wback;   ///< V^dag S_j backward partials
    std::vector<CMatrix> yback;   ///< mask^dag S_j backward partials
    std::vector<std::vector<CMatrix>> du; ///< dU_j/dc_k per segment
    std::vector<CMatrix> bgen;    ///< constant generators -i dt Hc_k
    CMatrix mask;                 ///< leakage mask (guard rows of U)

    /** Scratch owned by one parallelFor lane (lane 0 doubles as the
     *  serial path's scratch): segment Hamiltonian/generator
     *  accumulators, the A_{j-1}-prefixed partial products, and the
     *  shared-series exponential workspace. */
    struct LaneScratch
    {
        CMatrix hseg;             ///< segment Hamiltonian accumulator
        CMatrix agen;             ///< segment generator -i dt H
        CMatrix pw;               ///< A_{j-1} W_j
        CMatrix py;               ///< A_{j-1} Y_j
        ExpmFamilyWorkspace famWs;
    };
    std::vector<LaneScratch> lanes;

    /** Private pool when GrapeOptions::threads asks for a lane count
     *  other than the process default; persists across iterations so
     *  warm gradient steps never spawn threads. */
    std::optional<ThreadPool> ownPool;

    /** Lanes (and system dimension) whose scratch has been eagerly
     *  warmed; see the lane warm-up in objectiveAndGradient. */
    std::size_t warmLaneCount = 0;
    int warmDim = -1;

    /**
     * Optional allocation probe for the per-lane zero-alloc
     * assertion: when set (e.g. to read bench_hotpaths' thread-local
     * operator-new counter), every parallel segment invocation adds
     * its probe delta to laneAllocs[lane]; a warm workspace must
     * leave every entry at zero. The probe must read state local to
     * the *calling thread* (a lane never migrates threads within one
     * parallelFor, and only one thread holds a lane at a time, so the
     * per-lane accumulation is race-free).
     */
    std::uint64_t (*allocProbe)() = nullptr;
    std::vector<std::uint64_t> laneAllocs;
};

/** Gradient-based pulse search for a fixed gate duration. */
class GrapeOptimizer
{
  public:
    /**
     * @param target logical-subspace unitary (dimension
     *        system.logicalDim()).
     * @param segments number of piecewise-constant segments.
     */
    GrapeOptimizer(const TransmonSystem &system, CMatrix target,
                   double duration_ns, int segments,
                   GrapeOptions opts = {});

    /** Optimize from a seeded random start. */
    GrapeResult run() const;

    /** Optimize from explicit initial controls (duration-search
     *  re-seeding, paper ref. [39]). */
    GrapeResult runFrom(std::vector<std::vector<double>> init) const;

    /** Fidelity/leakage of a given control set. */
    void evaluate(const std::vector<std::vector<double>> &controls,
                  double &fidelity, double &leakage) const;

    /** Per-segment propagators for a control set. */
    std::vector<CMatrix>
    propagators(const std::vector<std::vector<double>> &controls) const;

    /** Total unitary for a control set. */
    CMatrix
    totalUnitary(const std::vector<std::vector<double>> &controls) const;

    int segments() const { return segments_; }
    double dt() const { return dt_; }
    int numControls() const
    {
        return static_cast<int>(system_->controls().size());
    }

    /**
     * J = (1 - F) + lambda * leakage and dJ/dcontrols ([k][j]).
     *
     * The hot path of a GRAPE run: propagators and all directional
     * derivatives come from one shared-series Van Loan (Padé-13)
     * exponential per segment, and every temporary lives in @p ws --
     * zero heap allocations once the workspace is warm (per lane when
     * pooled; see GrapeWorkspace).
     *
     * The segment exponentials and the per-segment gradient rows fan
     * out across GrapeOptions::threads pool lanes with per-lane
     * scratch; the cumulative forward/backward products in between
     * stay serial (they are sequential by construction). Results are
     * bit-identical at every lane count. Calls already running on a
     * pool worker degrade to serial automatically.
     */
    double objectiveAndGradient(
        const std::vector<std::vector<double>> &controls,
        std::vector<std::vector<double>> &grad, double &fidelity,
        double &leakage, GrapeWorkspace &ws) const;

    /**
     * Reference gradient: fresh temporaries throughout and one
     * augmented 2n x 2n exponential per (segment, control), exactly
     * the pre-optimization implementation. Retained for differential
     * tests and the bench_hotpaths baseline.
     */
    double objectiveAndGradientNaive(
        const std::vector<std::vector<double>> &controls,
        std::vector<std::vector<double>> &grad, double &fidelity,
        double &leakage) const;

  private:
    const TransmonSystem *system_;
    CMatrix targetFull_;   // target embedded in the full space
    CMatrix targetDagger_; // precomputed V^dag
    double duration_;
    double dt_;
    int segments_;
    GrapeOptions opts_;
};

} // namespace qompress

#endif // QOMPRESS_PULSE_GRAPE_HH
