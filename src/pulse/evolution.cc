#include "pulse/evolution.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "common/strings.hh"

namespace qompress {

std::vector<EvolutionSample>
traceEvolution(const TransmonSystem &system, const GrapeOptimizer &grape,
               const std::vector<std::vector<double>> &controls,
               int start_logical, const std::vector<int> &watch_logical,
               int samples)
{
    QFATAL_IF(start_logical < 0 ||
              start_logical >= system.logicalDim(),
              "traceEvolution: bad start state ", start_logical);
    const auto props = grape.propagators(controls);
    const int dim = system.dim();
    std::vector<CMatrix::Scalar> state(dim, 0.0);
    state[system.logicalToFull(start_logical)] = 1.0;

    std::vector<int> watch_full;
    for (int w : watch_logical) {
        QFATAL_IF(w < 0 || w >= system.logicalDim(),
                  "traceEvolution: bad watch state ", w);
        watch_full.push_back(system.logicalToFull(w));
    }

    const int segments = grape.segments();
    const int stride = std::max(1, segments / std::max(1, samples));

    std::vector<EvolutionSample> trace;
    auto record = [&](int seg) {
        EvolutionSample s;
        s.timeNs = seg * grape.dt();
        double watched = 0.0;
        for (int w : watch_full) {
            const double p = std::norm(state[w]);
            s.populations.push_back(p);
            watched += p;
        }
        double total = 0.0;
        for (const auto &a : state)
            total += std::norm(a);
        s.other = total - watched;
        trace.push_back(std::move(s));
    };

    record(0);
    std::vector<CMatrix::Scalar> next(dim, 0.0); // reused across segments
    for (int j = 0; j < segments; ++j) {
        for (int r = 0; r < dim; ++r) {
            CMatrix::Scalar acc = 0.0;
            for (int c = 0; c < dim; ++c)
                acc += props[j](r, c) * state[c];
            next[r] = acc;
        }
        state.swap(next);
        if ((j + 1) % stride == 0 || j + 1 == segments)
            record(j + 1);
    }
    return trace;
}

void
saveControls(const std::string &path,
             const std::vector<std::vector<double>> &controls,
             double dt_ns)
{
    QFATAL_IF(controls.empty(), "saveControls: no controls");
    std::ofstream out(path);
    QFATAL_IF(!out, "cannot write pulse file '", path, "'");
    out << "# time_ns";
    for (std::size_t k = 0; k < controls.size(); ++k)
        out << ",c" << k;
    out << '\n';
    const std::size_t segments = controls[0].size();
    for (const auto &row : controls) {
        QFATAL_IF(row.size() != segments,
                  "saveControls: ragged control rows");
    }
    for (std::size_t j = 0; j < segments; ++j) {
        out << format("%.9g", j * dt_ns);
        for (const auto &row : controls)
            out << ',' << format("%.12g", row[j]);
        out << '\n';
    }
}

std::vector<std::vector<double>>
loadControls(const std::string &path, double &dt_ns)
{
    std::ifstream in(path);
    QFATAL_IF(!in, "cannot open pulse file '", path, "'");
    std::vector<std::vector<double>> controls;
    std::vector<double> times;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const auto cells = split(line, ',');
        QFATAL_IF(cells.size() < 2, "pulse file '", path,
                  "': need time plus at least one control column");
        if (controls.empty())
            controls.resize(cells.size() - 1);
        QFATAL_IF(cells.size() - 1 != controls.size(), "pulse file '",
                  path, "': inconsistent column count");
        try {
            times.push_back(std::stod(cells[0]));
            for (std::size_t k = 1; k < cells.size(); ++k)
                controls[k - 1].push_back(std::stod(cells[k]));
        } catch (const std::exception &) {
            QFATAL("pulse file '", path, "': bad number in line '",
                   line, "'");
        }
    }
    QFATAL_IF(times.size() < 2, "pulse file '", path,
              "': need at least two segments");
    dt_ns = times[1] - times[0];
    QFATAL_IF(dt_ns <= 0.0, "pulse file '", path,
              "': non-increasing time column");
    return controls;
}

} // namespace qompress
