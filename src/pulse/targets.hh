/**
 * @file
 * Target logical unitaries for the pulse optimizer, covering the
 * mixed-radix gate set of paper Table 1 under the ququart encoding
 * (digit d encodes the qubit pair (d >> 1, d & 1)).
 */

#ifndef QOMPRESS_PULSE_TARGETS_HH
#define QOMPRESS_PULSE_TARGETS_HH

#include <string>
#include <vector>

#include "pulse/matrix.hh"

namespace qompress {

/**
 * Where a logical qubit operand lives inside a (possibly mixed-radix)
 * transmon pair.
 */
struct OperandSpec
{
    int transmon;  ///< 0 or 1
    int pos;       ///< encode position 0/1 inside a ququart; ignored
                   ///< for bare transmons
    bool encoded;  ///< transmon holds two qubits
};

/** CX between two logical operands over the given logical dims. */
CMatrix cxTarget(const std::vector<int> &logical_dims, OperandSpec ctl,
                 OperandSpec tgt);

/** SWAP between two logical operands. */
CMatrix swapTarget(const std::vector<int> &logical_dims, OperandSpec a,
                   OperandSpec b);

/** Single-qubit X embedded at an operand. */
CMatrix xTarget(const std::vector<int> &logical_dims, OperandSpec op);

/** Full-ququart SWAP4 (logical dims must be {4, 4}). */
CMatrix swap4Target();

/** ENC on (ququart, qubit): |q0>|q1> -> |2 q0 + q1>|0>,
 *  completed arbitrarily outside the input subspace. */
CMatrix encTarget();

/**
 * Named Table-1 target on its natural system, e.g. "X", "X0", "CX2",
 * "CX0q", "SWAP00"... Returns the logical unitary and fills
 * @p logical_dims with the per-transmon logical level counts.
 */
CMatrix namedTarget(const std::string &name,
                    std::vector<int> &logical_dims);

/** All Table-1 gate names namedTarget understands. */
std::vector<std::string> namedTargetList();

} // namespace qompress

#endif // QOMPRESS_PULSE_TARGETS_HH
