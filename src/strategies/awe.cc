#include "strategies/awe.hh"

#include "ir/interaction.hh"

namespace qompress {

std::vector<Compression>
AweStrategy::choosePairs(const Circuit &native, const Topology &topo,
                         const GateLibrary &lib,
                         const CompilerConfig &cfg,
                         CompileContext &ctx) const
{
    // AWE scores pairs purely on the interaction graph; the shared
    // context is consumed downstream by mapping/routing.
    (void)topo;
    (void)lib;
    (void)cfg;
    (void)ctx;
    const InteractionModel im(native);
    Graph work = im.graph();
    const int n = native.numQubits();
    std::vector<bool> paired(n, false);

    std::vector<Compression> pairs;
    while (true) {
        const double total = work.totalWeight();
        const int edges = work.numEdges();
        if (edges == 0)
            break;
        const double current_avg = total / edges;

        // Contracting (i, j) removes their direct edge (if any) and
        // merges one edge per shared neighbor, so the new average can
        // be computed without mutating the graph.
        double best_avg = current_avg;
        Compression best{kInvalid, kInvalid};
        for (int i = 0; i < n; ++i) {
            if (paired[i])
                continue;
            for (int j = i + 1; j < n; ++j) {
                if (paired[j])
                    continue;
                const bool direct = work.hasEdge(i, j);
                const double w_ij = direct ? work.edgeWeight(i, j) : 0.0;
                int shared = 0;
                for (const auto &e : work.neighbors(i)) {
                    if (e.to != j && work.hasEdge(j, e.to))
                        ++shared;
                }
                const int new_edges = edges - shared - (direct ? 1 : 0);
                if (new_edges <= 0)
                    continue;
                const double new_avg = (total - w_ij) / new_edges;
                if (new_avg > best_avg) {
                    best_avg = new_avg;
                    best = {i, j};
                }
            }
        }
        if (best.first == kInvalid)
            break;
        pairs.push_back(best);
        paired[best.first] = true;
        paired[best.second] = true;
        work.contract(best.first, best.second);
    }
    return pairs;
}

} // namespace qompress
