/**
 * @file
 * The compression-strategy interface (paper section 5) and a registry
 * of the standard strategies used throughout the evaluation.
 */

#ifndef QOMPRESS_STRATEGIES_STRATEGY_HH
#define QOMPRESS_STRATEGIES_STRATEGY_HH

#include <memory>
#include <string>
#include <vector>

#include "compiler/pipeline.hh"

namespace qompress {

/**
 * A qubit-compression policy.
 *
 * Most strategies pick pairs up front (choosePairs) and defer to the
 * common pipeline; FQ overrides compile() outright because it routes
 * at the qudit level with encode/decode around external operations.
 *
 * Thread-safety: the standard strategies are stateless, so one
 * instance may serve concurrent compiles as long as each call uses
 * its own CompileContext (the portfolio strategy, which records its
 * last winner, is the exception). The exhaustive strategy
 * additionally parallelizes internally; see CompilerConfig::threads.
 */
class CompressionStrategy
{
  public:
    virtual ~CompressionStrategy() = default;

    /** Stable identifier ("eqm", "rb", ...). */
    virtual std::string name() const = 0;

    /**
     * Select compression pairs for a *native* circuit.
     *
     * Deterministic: the same inputs always yield the same pairs,
     * whatever the caching or threading configuration.
     *
     * @param ctx the compile-wide pricing context; strategies that
     *        price candidates against the device (pp, ec) draw
     *        distance fields from ctx.cache() instead of re-running
     *        Dijkstra ad hoc, and fields they warm survive into the
     *        subsequent mapping/routing of the same compile. The
     *        context is single-writer: it must not be shared with a
     *        concurrently running compile.
     */
    virtual std::vector<Compression>
    choosePairs(const Circuit &native, const Topology &topo,
                const GateLibrary &lib, const CompilerConfig &cfg,
                CompileContext &ctx) const;

    /** Convenience overload building a throwaway context. */
    std::vector<Compression>
    choosePairs(const Circuit &native, const Topology &topo,
                const GateLibrary &lib, const CompilerConfig &cfg) const;

    /** Whether the mapper may invent extra pairs (EQM). */
    virtual bool allowDynamicSlot1() const { return false; }

    /**
     * Full compilation; the default decomposes, picks pairs, and runs
     * the shared pipeline -- all against one CompileContext. Safe to
     * call concurrently on one strategy instance (each call builds
     * its own context).
     *
     * @param ctx optional caller-owned context built over the same
     *        topo/lib/cfg pricing; parallel sweeps (eval/sweep.cc)
     *        pass one per lane so the expanded graph, cost model, and
     *        warmed distance fields are reused across the lane's
     *        cells instead of being re-derived per compile. Single
     *        writer: never share one across concurrent compiles. The
     *        cache invariant (caching never changes what a compile
     *        emits) keeps results independent of whether and how a
     *        context is reused. When null, a compile-local context is
     *        built.
     */
    virtual CompileResult compile(const Circuit &circuit,
                                  const Topology &topo,
                                  const GateLibrary &lib,
                                  const CompilerConfig &cfg,
                                  CompileContext *ctx) const;

    /** Convenience overload: compile with a compile-local context. */
    CompileResult compile(const Circuit &circuit, const Topology &topo,
                          const GateLibrary &lib,
                          const CompilerConfig &cfg = {}) const
    {
        return compile(circuit, topo, lib, cfg, nullptr);
    }
};

/** Never compresses; the paper's qubit-only baseline. */
class QubitOnlyStrategy : public CompressionStrategy
{
  public:
    std::string name() const override { return "qubit_only"; }
};

/** Extended Qubit Mapping: compression emerges from greedy mapping
 *  over the expanded graph (paper section 5.2). */
class EqmStrategy : public CompressionStrategy
{
  public:
    std::string name() const override { return "eqm"; }
    bool allowDynamicSlot1() const override { return true; }
};

/**
 * The standard strategy set evaluated in the paper's figures:
 * qubit_only, fq, eqm, rb, awe, pp.
 */
std::vector<std::unique_ptr<CompressionStrategy>> standardStrategies();

/**
 * Every name makeStrategy accepts, in registry order (the standard
 * set plus "ec", "ec_unordered", and "portfolio"). The round-trip
 * makeStrategy(n)->name() == n holds for every listed name.
 */
const std::vector<std::string> &strategyNames();

/**
 * Build one strategy by name (any strategyNames() entry).
 *
 * @throws FatalError on an unknown name; the message lists every
 *         valid name so callers (CLI, service requests) can surface
 *         an actionable error.
 */
std::unique_ptr<CompressionStrategy>
makeStrategy(const std::string &name);

} // namespace qompress

#endif // QOMPRESS_STRATEGIES_STRATEGY_HH
