#include "strategies/strategy.hh"

#include <optional>

#include "common/error.hh"
#include "ir/passes.hh"
#include "strategies/awe.hh"
#include "strategies/exhaustive.hh"
#include "strategies/full_ququart.hh"
#include "strategies/portfolio.hh"
#include "strategies/progressive_pairing.hh"
#include "strategies/ring_based.hh"

namespace qompress {

std::vector<Compression>
CompressionStrategy::choosePairs(const Circuit &, const Topology &,
                                 const GateLibrary &,
                                 const CompilerConfig &,
                                 CompileContext &) const
{
    return {};
}

std::vector<Compression>
CompressionStrategy::choosePairs(const Circuit &native,
                                 const Topology &topo,
                                 const GateLibrary &lib,
                                 const CompilerConfig &cfg) const
{
    CompileContext ctx(topo, lib, cfg);
    return choosePairs(native, topo, lib, cfg, ctx);
}

CompileResult
CompressionStrategy::compile(const Circuit &circuit, const Topology &topo,
                             const GateLibrary &lib,
                             const CompilerConfig &cfg,
                             CompileContext *ctx) const
{
    const Circuit native = isNative(circuit)
        ? circuit : decomposeToNativeGates(circuit);
    // One context end to end: fields warmed while choosing pairs are
    // reused by the final mapping and routing (and, when the caller
    // supplied the context, by its subsequent compiles too).
    std::optional<CompileContext> local;
    if (!ctx) {
        local.emplace(topo, lib, cfg);
        ctx = &*local;
    }
    const auto pairs = choosePairs(native, topo, lib, cfg, *ctx);
    return compileWithPairs(native, topo, lib, pairs,
                            allowDynamicSlot1(), cfg, ctx);
}

std::vector<std::unique_ptr<CompressionStrategy>>
standardStrategies()
{
    std::vector<std::unique_ptr<CompressionStrategy>> out;
    out.push_back(std::make_unique<QubitOnlyStrategy>());
    out.push_back(std::make_unique<FullQuquartStrategy>());
    out.push_back(std::make_unique<EqmStrategy>());
    out.push_back(std::make_unique<RingBasedStrategy>());
    out.push_back(std::make_unique<AweStrategy>());
    out.push_back(std::make_unique<ProgressivePairingStrategy>());
    return out;
}

std::unique_ptr<CompressionStrategy>
makeStrategy(const std::string &name)
{
    if (name == "qubit_only")
        return std::make_unique<QubitOnlyStrategy>();
    if (name == "fq")
        return std::make_unique<FullQuquartStrategy>();
    if (name == "eqm")
        return std::make_unique<EqmStrategy>();
    if (name == "rb")
        return std::make_unique<RingBasedStrategy>();
    if (name == "awe")
        return std::make_unique<AweStrategy>();
    if (name == "pp")
        return std::make_unique<ProgressivePairingStrategy>();
    if (name == "ec")
        return std::make_unique<ExhaustiveStrategy>(true);
    if (name == "ec_unordered")
        return std::make_unique<ExhaustiveStrategy>(false);
    if (name == "portfolio")
        return std::make_unique<PortfolioStrategy>();
    QFATAL("unknown strategy '", name, "'");
}

} // namespace qompress
