#include "strategies/strategy.hh"

#include <optional>

#include "common/error.hh"
#include "ir/passes.hh"
#include "strategies/awe.hh"
#include "strategies/exhaustive.hh"
#include "strategies/full_ququart.hh"
#include "strategies/portfolio.hh"
#include "strategies/progressive_pairing.hh"
#include "strategies/ring_based.hh"

namespace qompress {

std::vector<Compression>
CompressionStrategy::choosePairs(const Circuit &, const Topology &,
                                 const GateLibrary &,
                                 const CompilerConfig &,
                                 CompileContext &) const
{
    return {};
}

std::vector<Compression>
CompressionStrategy::choosePairs(const Circuit &native,
                                 const Topology &topo,
                                 const GateLibrary &lib,
                                 const CompilerConfig &cfg) const
{
    CompileContext ctx(topo, lib, cfg);
    return choosePairs(native, topo, lib, cfg, ctx);
}

CompileResult
CompressionStrategy::compile(const Circuit &circuit, const Topology &topo,
                             const GateLibrary &lib,
                             const CompilerConfig &cfg,
                             CompileContext *ctx) const
{
    const Circuit native = isNative(circuit)
        ? circuit : decomposeToNativeGates(circuit);
    // One context end to end: fields warmed while choosing pairs are
    // reused by the final mapping and routing (and, when the caller
    // supplied the context, by its subsequent compiles too).
    std::optional<CompileContext> local;
    if (!ctx) {
        local.emplace(topo, lib, cfg);
        ctx = &*local;
    }
    const auto pairs = choosePairs(native, topo, lib, cfg, *ctx);
    return compileWithPairs(native, topo, lib, pairs,
                            allowDynamicSlot1(), cfg, ctx);
}

std::vector<std::unique_ptr<CompressionStrategy>>
standardStrategies()
{
    std::vector<std::unique_ptr<CompressionStrategy>> out;
    out.push_back(std::make_unique<QubitOnlyStrategy>());
    out.push_back(std::make_unique<FullQuquartStrategy>());
    out.push_back(std::make_unique<EqmStrategy>());
    out.push_back(std::make_unique<RingBasedStrategy>());
    out.push_back(std::make_unique<AweStrategy>());
    out.push_back(std::make_unique<ProgressivePairingStrategy>());
    return out;
}

namespace {

/** One table keeps the name list and the factories in lockstep, so
 *  strategyNames() can never drift from what makeStrategy accepts. */
struct StrategyEntry
{
    const char *name;
    std::unique_ptr<CompressionStrategy> (*make)();
};

const StrategyEntry kStrategyRegistry[] = {
    {"qubit_only",
     []() -> std::unique_ptr<CompressionStrategy> {
         return std::make_unique<QubitOnlyStrategy>();
     }},
    {"fq",
     []() -> std::unique_ptr<CompressionStrategy> {
         return std::make_unique<FullQuquartStrategy>();
     }},
    {"eqm",
     []() -> std::unique_ptr<CompressionStrategy> {
         return std::make_unique<EqmStrategy>();
     }},
    {"rb",
     []() -> std::unique_ptr<CompressionStrategy> {
         return std::make_unique<RingBasedStrategy>();
     }},
    {"awe",
     []() -> std::unique_ptr<CompressionStrategy> {
         return std::make_unique<AweStrategy>();
     }},
    {"pp",
     []() -> std::unique_ptr<CompressionStrategy> {
         return std::make_unique<ProgressivePairingStrategy>();
     }},
    {"ec",
     []() -> std::unique_ptr<CompressionStrategy> {
         return std::make_unique<ExhaustiveStrategy>(true);
     }},
    {"ec_unordered",
     []() -> std::unique_ptr<CompressionStrategy> {
         return std::make_unique<ExhaustiveStrategy>(false);
     }},
    {"portfolio",
     []() -> std::unique_ptr<CompressionStrategy> {
         return std::make_unique<PortfolioStrategy>();
     }},
};

} // namespace

const std::vector<std::string> &
strategyNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &e : kStrategyRegistry)
            out.emplace_back(e.name);
        return out;
    }();
    return names;
}

std::unique_ptr<CompressionStrategy>
makeStrategy(const std::string &name)
{
    for (const auto &e : kStrategyRegistry) {
        if (name == e.name)
            return e.make();
    }
    std::string valid;
    for (const auto &n : strategyNames()) {
        if (!valid.empty())
            valid += ", ";
        valid += n;
    }
    QFATAL("unknown strategy '", name, "'; valid strategies: ", valid);
}

} // namespace qompress
