/**
 * @file
 * Portfolio compilation: run several strategies and keep the best
 * result by total EPS. The paper evaluates strategies side by side;
 * a deployment would simply take the winner, which this class
 * packages behind the common interface.
 *
 * The member compiles are independent, so they fan out across the
 * thread pool (CompilerConfig::threads lanes) with the same
 * pre-sized-slots + serial-reduction pattern as the exhaustive
 * strategy: every member's result lands in its own slot, then the
 * winner is chosen in member order with the same strict comparison
 * the serial loop used — so the winner (and lastWinner()) is
 * identical at every lane count. Members that themselves want lanes
 * are safe: compiles running on a pool worker degrade their internal
 * fan-out to inline execution.
 */

#ifndef QOMPRESS_STRATEGIES_PORTFOLIO_HH
#define QOMPRESS_STRATEGIES_PORTFOLIO_HH

#include "strategies/strategy.hh"

namespace qompress {

/** See file comment. */
class PortfolioStrategy : public CompressionStrategy
{
  public:
    /** @param names member strategies; defaults to the paper's set
     *  minus the deliberately-bad FQ baseline. */
    explicit PortfolioStrategy(
        std::vector<std::string> names = {"qubit_only", "eqm", "rb",
                                          "awe", "pp"});

    std::string name() const override { return "portfolio"; }

    using CompressionStrategy::compile;
    CompileResult compile(const Circuit &circuit, const Topology &topo,
                          const GateLibrary &lib,
                          const CompilerConfig &cfg,
                          CompileContext *ctx) const override;

    /** Name of the member that won the last compile() call. Written
     *  once per compile by the calling thread (after the parallel
     *  members join), so it is race-free at any lane count; like the
     *  rest of the class it is not synchronized against *concurrent
     *  compile() calls on the same instance*. */
    const std::string &lastWinner() const { return lastWinner_; }

  private:
    std::vector<std::string> names_;
    mutable std::string lastWinner_;
};

} // namespace qompress

#endif // QOMPRESS_STRATEGIES_PORTFOLIO_HH
