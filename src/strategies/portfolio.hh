/**
 * @file
 * Portfolio compilation: run several strategies and keep the best
 * result by total EPS. The paper evaluates strategies side by side;
 * a deployment would simply take the winner, which this class
 * packages behind the common interface.
 */

#ifndef QOMPRESS_STRATEGIES_PORTFOLIO_HH
#define QOMPRESS_STRATEGIES_PORTFOLIO_HH

#include "strategies/strategy.hh"

namespace qompress {

/** See file comment. */
class PortfolioStrategy : public CompressionStrategy
{
  public:
    /** @param names member strategies; defaults to the paper's set
     *  minus the deliberately-bad FQ baseline. */
    explicit PortfolioStrategy(
        std::vector<std::string> names = {"qubit_only", "eqm", "rb",
                                          "awe", "pp"});

    std::string name() const override { return "portfolio"; }

    CompileResult compile(const Circuit &circuit, const Topology &topo,
                          const GateLibrary &lib,
                          const CompilerConfig &cfg = {}) const override;

    /** Name of the member that won the last compile() call. */
    const std::string &lastWinner() const { return lastWinner_; }

  private:
    std::vector<std::string> names_;
    mutable std::string lastWinner_;
};

} // namespace qompress

#endif // QOMPRESS_STRATEGIES_PORTFOLIO_HH
