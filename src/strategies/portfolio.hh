/**
 * @file
 * Portfolio compilation: run several strategies and keep the best
 * result by total EPS. The paper evaluates strategies side by side;
 * a deployment would simply take the winner, which this class
 * packages behind the common interface.
 *
 * The member compiles go through a private CompilerService: the
 * service fans the batch across the thread pool (cfg.threads lanes),
 * pools contexts so repeated compiles on one portfolio instance reuse
 * warmed distance fields, and memoizes member artifacts so recompiling
 * the same circuit (parameter studies, repeated queries) serves cached
 * results. The winner is still chosen by a serial reduction in member
 * order with the same strict comparison the serial loop used — so the
 * winner (and lastWinner()) is identical at every lane count and
 * cache configuration. Members that themselves want lanes are safe:
 * compiles running on a pool worker degrade their internal fan-out to
 * inline execution.
 */

#ifndef QOMPRESS_STRATEGIES_PORTFOLIO_HH
#define QOMPRESS_STRATEGIES_PORTFOLIO_HH

#include "service/compiler_service.hh"
#include "strategies/strategy.hh"

namespace qompress {

/** See file comment. */
class PortfolioStrategy : public CompressionStrategy
{
  public:
    /** @param names member strategies; defaults to the paper's set
     *  minus the deliberately-bad FQ baseline. */
    explicit PortfolioStrategy(
        std::vector<std::string> names = {"qubit_only", "eqm", "rb",
                                          "awe", "pp"});

    std::string name() const override { return "portfolio"; }

    using CompressionStrategy::compile;
    CompileResult compile(const Circuit &circuit, const Topology &topo,
                          const GateLibrary &lib,
                          const CompilerConfig &cfg,
                          CompileContext *ctx) const override;

    /** Name of the member that won the last compile() call. Written
     *  once per compile by the calling thread (after the parallel
     *  members join), so it is race-free at any lane count; like the
     *  rest of the class it is not synchronized against *concurrent
     *  compile() calls on the same instance*. */
    const std::string &lastWinner() const { return lastWinner_; }

    /** The member-compile service (cache counters for tests/benches). */
    const CompilerService &service() const { return service_; }

  private:
    std::vector<std::string> names_;
    mutable std::string lastWinner_;
    /** Member-compile front end; CompilerService is internally
     *  thread-safe, so concurrent compiles on one instance only
     *  contend on lastWinner_ (see above). */
    mutable CompilerService service_;
};

} // namespace qompress

#endif // QOMPRESS_STRATEGIES_PORTFOLIO_HH
