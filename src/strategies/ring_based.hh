/**
 * @file
 * Ring-Based compression (paper section 5.3): find small interaction
 * cycles and compress within them to flatten the interaction graph
 * toward a line.
 */

#ifndef QOMPRESS_STRATEGIES_RING_BASED_HH
#define QOMPRESS_STRATEGIES_RING_BASED_HH

#include "strategies/strategy.hh"

namespace qompress {

/** Tunable scoring weights for the ring-based pair selection. */
struct RingBasedOptions
{
    double interactionWeight = 10.0;  ///< reward internal interaction
    double sharedNeighborWeight = 1.0; ///< reward merged connectivity
    double cycleCountWeight = 1.0;    ///< reward pairs in many cycles
    double simultaneityPenalty = 0.5; ///< punish forced serialization
    /** Penalty per external edge of the contracted pair node: steers
     *  the search toward contractions that flatten the interaction
     *  graph into a line (the paper's Figure 5 intent). See
     *  bench_ablations for its sensitivity. */
    double mergedDegreePenalty = 1.0;
};

/**
 * Compress within minimum-length interaction cycles.
 *
 * Per round: find the shortest cycle through every still-compressible
 * qubit, bound the cycle size by the global minimum, pick the cycle
 * member with the fewest outside interactions, score its pairings with
 * every other member, and commit the best positive-scoring pair. The
 * pair is contracted in the working interaction graph and the search
 * repeats until no cycle yields a beneficial compression.
 */
class RingBasedStrategy : public CompressionStrategy
{
  public:
    using CompressionStrategy::choosePairs;

    explicit RingBasedStrategy(RingBasedOptions opts = {}) : opts_(opts) {}

    std::string name() const override { return "rb"; }

    std::vector<Compression>
    choosePairs(const Circuit &native, const Topology &topo,
                const GateLibrary &lib, const CompilerConfig &cfg,
                CompileContext &ctx) const override;

  private:
    RingBasedOptions opts_;
};

} // namespace qompress

#endif // QOMPRESS_STRATEGIES_RING_BASED_HH
