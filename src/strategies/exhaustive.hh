/**
 * @file
 * Exhaustive (greedy-iterative) compression search (paper section
 * 5.1): recompile with every candidate pair and keep the best, with
 * either critical-path-prioritized or unordered candidate selection
 * (the Figure 4 comparison).
 */

#ifndef QOMPRESS_STRATEGIES_EXHAUSTIVE_HH
#define QOMPRESS_STRATEGIES_EXHAUSTIVE_HH

#include "strategies/strategy.hh"

namespace qompress {

/** One accepted step of the exhaustive search (for Figure 4 traces). */
struct ExhaustiveStep
{
    Compression pair;
    double gateEps;
    double coherenceEps;
    double totalEps;
    int group; ///< priority group the pair came from (1-3; 0 unordered)
};

/** Which circuit-fidelity figure the greedy search maximizes. */
enum class ExhaustiveMetric
{
    GateEps,  ///< gate-fidelity product (the paper's Figure 7 target)
    TotalEps, ///< gate x coherence product (vetoes compressions at the
              ///< worst-case 1:3 T1 ratio; cf. Figure 12)
};

/** See file comment. */
class ExhaustiveStrategy : public CompressionStrategy
{
  public:
    using CompressionStrategy::choosePairs;

    /** @param ordered use the paper's critical-path priority groups. */
    explicit ExhaustiveStrategy(
        bool ordered = true,
        ExhaustiveMetric metric = ExhaustiveMetric::GateEps)
        : ordered_(ordered), metric_(metric)
    {
    }

    std::string name() const override
    {
        return ordered_ ? "ec" : "ec_unordered";
    }

    std::vector<Compression>
    choosePairs(const Circuit &native, const Topology &topo,
                const GateLibrary &lib, const CompilerConfig &cfg,
                CompileContext &ctx) const override;

    /** choosePairs plus the per-step metric trace. Candidate compiles
     *  fan out over cfg.threads lanes (see CompilerConfig::threads),
     *  one CompileContext per lane, so distance fields computed for
     *  one candidate layout revalidate for the next instead of being
     *  recomputed n^2 times; the serial reduction over candidate
     *  scores makes the chosen pairing bit-identical for every lane
     *  count. @p ctx, when given, serves lane 0 and the committed
     *  recompiles. */
    std::vector<Compression>
    choosePairsWithTrace(const Circuit &native, const Topology &topo,
                         const GateLibrary &lib, const CompilerConfig &cfg,
                         std::vector<ExhaustiveStep> *trace,
                         CompileContext *ctx = nullptr) const;

  private:
    bool ordered_;
    ExhaustiveMetric metric_;
};

} // namespace qompress

#endif // QOMPRESS_STRATEGIES_EXHAUSTIVE_HH
