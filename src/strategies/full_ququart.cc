#include "strategies/full_ququart.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "common/error.hh"
#include "graph/algorithms.hh"
#include "ir/interaction.hh"
#include "ir/passes.hh"

namespace qompress {

std::vector<Compression>
FullQuquartStrategy::choosePairs(const Circuit &native,
                                 const Topology &topo,
                                 const GateLibrary &lib,
                                 const CompilerConfig &cfg,
                                 CompileContext &ctx) const
{
    (void)topo;
    (void)lib;
    (void)cfg;
    (void)ctx;
    const InteractionModel im(native);
    const int n = native.numQubits();

    // All candidate pairs sorted by interaction weight (heaviest
    // first); greedily matched so strongly-interacting qubits share a
    // ququart and their gates become internal.
    struct Cand
    {
        double w;
        QubitId a, b;
    };
    std::vector<Cand> cands;
    for (QubitId a = 0; a < n; ++a)
        for (QubitId b = a + 1; b < n; ++b)
            cands.push_back({im.weight(a, b), a, b});
    std::sort(cands.begin(), cands.end(), [](const Cand &x, const Cand &y) {
        if (x.w != y.w)
            return x.w > y.w;
        return std::tie(x.a, x.b) < std::tie(y.a, y.b);
    });

    std::vector<bool> paired(n, false);
    std::vector<Compression> pairs;
    for (const auto &c : cands) {
        if (paired[c.a] || paired[c.b])
            continue;
        pairs.push_back({c.a, c.b});
        paired[c.a] = true;
        paired[c.b] = true;
    }
    return pairs;
}

namespace {

/** FQ-specific emission helpers sharing one mutable state. */
class FqRouter
{
  public:
    /** @param cache optional shared unit-level distance cache; SWAP4
     *  chains between two encoded (or two equally occupied) units
     *  leave every unit signature intact, so successive routing
     *  rounds revalidate instead of re-running Dijkstra. */
    FqRouter(const Topology &topo, const CostModel &cost, Layout &layout,
             CompiledCircuit &out, DistanceFieldCache *cache)
        : topo_(topo), cost_(cost), layout_(layout), out_(out),
          cache_(cache)
    {
    }

    void
    emitSwapFull(UnitId u, UnitId v, int source)
    {
        QPANIC_IF(!topo_.adjacent(u, v), "SWAP4 on uncoupled units");
        PhysGate g;
        g.cls = PhysGateClass::SwapFull;
        g.slots = {makeSlot(u, 0), makeSlot(v, 0)};
        g.logical = GateType::Swap;
        g.isRouting = true;
        g.sourceGate = source;
        out_.add(g);
        layout_.swapSlots(makeSlot(u, 0), makeSlot(v, 0));
        layout_.swapSlots(makeSlot(u, 1), makeSlot(v, 1));
    }

    /** Move the whole unit holding @p qa adjacent to @p qb's unit. */
    void
    routeUnitsAdjacent(QubitId qa, QubitId qb, int source)
    {
        int rounds = 0;
        while (true) {
            const UnitId ua = slotUnit(layout_.slotOf(qa));
            const UnitId ub = slotUnit(layout_.slotOf(qb));
            if (ua == ub || topo_.adjacent(ua, ub))
                return;
            QPANIC_IF(++rounds > 2 * topo_.numUnits(),
                      "FQ unit routing failed to converge");
            // Cheapest SWAP4 path from ua to a neighbour of ub.
            ShortestPaths holder;
            const ShortestPaths &field = cache_
                ? cache_->unit(ua, layout_)
                : (holder = cost_.unitDistances(ua, layout_));
            double best = ShortestPaths::kInf;
            UnitId target = kInvalid;
            for (const auto &e : topo_.graph().neighbors(ub)) {
                if (e.to != ua && field.dist[e.to] < best) {
                    best = field.dist[e.to];
                    target = e.to;
                }
            }
            QFATAL_IF(target == kInvalid, "FQ routing: no path");
            const auto path = field.pathTo(target);
            for (std::size_t h = 0; h + 1 < path.size(); ++h) {
                emitSwapFull(path[h], path[h + 1], source);
                const UnitId na = slotUnit(layout_.slotOf(qa));
                const UnitId nb = slotUnit(layout_.slotOf(qb));
                if (na == nb || topo_.adjacent(na, nb))
                    return;
            }
        }
    }

    /**
     * Bring an empty unit adjacent to @p u (never relocating units in
     * @p blocked) and return it. The empty unit shuffles toward u with
     * SWAP4 moves.
     */
    UnitId
    acquireAncilla(UnitId u, const std::vector<UnitId> &blocked,
                   int source)
    {
        // BFS from u over non-blocked units to the nearest empty one.
        const int nu = topo_.numUnits();
        std::vector<int> parent(nu, -2);
        std::vector<UnitId> queue{u};
        parent[u] = -1;
        UnitId empty = kInvalid;
        for (std::size_t qi = 0; qi < queue.size() && empty == kInvalid;
             ++qi) {
            for (const auto &e : topo_.graph().neighbors(queue[qi])) {
                if (parent[e.to] != -2)
                    continue;
                if (std::find(blocked.begin(), blocked.end(), e.to)
                    != blocked.end()) {
                    continue;
                }
                parent[e.to] = queue[qi];
                queue.push_back(e.to);
                if (layout_.unitOccupancy(e.to) == 0) {
                    empty = e.to;
                    break;
                }
            }
        }
        QFATAL_IF(empty == kInvalid,
                  "FQ: no reachable decode ancilla near unit ", u);
        // Walk the empty unit up the BFS tree until adjacent to u.
        UnitId cur = empty;
        while (parent[cur] != static_cast<int>(u) &&
               parent[cur] != -1) {
            emitSwapFull(cur, parent[cur], source);
            cur = parent[cur];
        }
        return cur;
    }

    /**
     * Decode the pair on unit @p u so that @p operand ends bare at
     * position 0; returns the ancilla unit now holding the partner.
     */
    UnitId
    decodeFor(QubitId operand, const std::vector<UnitId> &blocked,
              int source)
    {
        const SlotId s = layout_.slotOf(operand);
        const UnitId u = slotUnit(s);
        QPANIC_IF(!layout_.unitEncoded(u), "decodeFor on bare unit");
        if (slotPos(s) == 1) {
            PhysGate swap_in;
            swap_in.cls = PhysGateClass::SwapInternal;
            swap_in.slots = {makeSlot(u, 0), makeSlot(u, 1)};
            swap_in.logical = GateType::Swap;
            swap_in.isRouting = true;
            swap_in.sourceGate = source;
            out_.add(swap_in);
            layout_.swapSlots(makeSlot(u, 0), makeSlot(u, 1));
        }
        const UnitId anc = acquireAncilla(u, blocked, source);
        PhysGate dec;
        dec.cls = PhysGateClass::Decode;
        dec.slots = {makeSlot(u, 0), makeSlot(anc, 0)};
        dec.logical = GateType::Swap;
        dec.isRouting = true;
        dec.sourceGate = source;
        out_.add(dec);
        const QubitId partner = layout_.qubitAt(makeSlot(u, 1));
        layout_.remove(partner);
        layout_.place(partner, makeSlot(anc, 0));
        return anc;
    }

    /** Re-encode the partner on @p anc back into @p u. */
    void
    encodeBack(UnitId u, UnitId anc, int source)
    {
        PhysGate enc;
        enc.cls = PhysGateClass::Encode;
        enc.slots = {makeSlot(u, 0), makeSlot(anc, 0)};
        enc.logical = GateType::Swap;
        enc.isRouting = true;
        enc.sourceGate = source;
        out_.add(enc);
        const QubitId partner = layout_.qubitAt(makeSlot(anc, 0));
        QPANIC_IF(partner == kInvalid, "encodeBack from empty ancilla");
        layout_.remove(partner);
        layout_.place(partner, makeSlot(u, 1));
    }

  private:
    const Topology &topo_;
    const CostModel &cost_;
    Layout &layout_;
    CompiledCircuit &out_;
    DistanceFieldCache *cache_;
};

} // namespace

CompileResult
FullQuquartStrategy::compile(const Circuit &circuit, const Topology &topo,
                             const GateLibrary &lib,
                             const CompilerConfig &cfg,
                             CompileContext *ctx_in) const
{
    const Circuit native = isNative(circuit)
        ? circuit : decomposeToNativeGates(circuit);
    const InteractionModel im(native);
    std::optional<CompileContext> local;
    if (!ctx_in)
        local.emplace(topo, lib, cfg);
    CompileContext &ctx = ctx_in ? *ctx_in : *local;
    const auto pairs = choosePairs(native, topo, lib, cfg, ctx);
    const int n = native.numQubits();

    const int nodes = static_cast<int>(pairs.size()) + (n % 2);
    QFATAL_IF(nodes + 2 > topo.numUnits(),
              "FQ needs ", nodes + 2, " units (pairs + 2 ancillas), ",
              topo.name(), " has ", topo.numUnits());

    // --- Unit-level placement of pair nodes -------------------------
    const auto partner = partnerTable(n, pairs);
    // Node id per qubit: pairs share a node.
    std::vector<int> node_of(n, -1);
    std::vector<std::vector<QubitId>> node_members;
    for (const auto &p : pairs) {
        node_of[p.first] = static_cast<int>(node_members.size());
        node_of[p.second] = static_cast<int>(node_members.size());
        node_members.push_back({p.first, p.second});
    }
    for (QubitId q = 0; q < n; ++q) {
        if (node_of[q] == -1) {
            node_of[q] = static_cast<int>(node_members.size());
            node_members.push_back({q});
        }
    }
    const int num_nodes = static_cast<int>(node_members.size());
    // Inter-node interaction weights.
    std::vector<std::vector<double>> nw(
        num_nodes, std::vector<double>(num_nodes, 0.0));
    for (const auto &e : im.graph().edges()) {
        const int a = node_of[e.u];
        const int b = node_of[e.v];
        if (a != b) {
            nw[a][b] += e.w;
            nw[b][a] += e.w;
        }
    }

    std::vector<UnitId> node_unit(num_nodes, kInvalid);
    std::vector<bool> unit_used(topo.numUnits(), false);
    auto place_node = [&](int node, UnitId u) {
        node_unit[node] = u;
        unit_used[u] = true;
    };
    // Seed the heaviest node at the center.
    std::vector<int> order(num_nodes);
    for (int i = 0; i < num_nodes; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        double wa = 0, wb = 0;
        for (int k = 0; k < num_nodes; ++k) {
            wa += nw[a][k];
            wb += nw[b][k];
        }
        return wa > wb;
    });
    place_node(order[0], topo.centerUnit());
    for (int oi = 1; oi < num_nodes; ++oi) {
        // Most-connected-to-placed next.
        int best_node = -1;
        double best_w = -1.0;
        for (int node = 0; node < num_nodes; ++node) {
            if (node_unit[node] != kInvalid)
                continue;
            double w = 0.0;
            for (int k = 0; k < num_nodes; ++k) {
                if (node_unit[k] != kInvalid)
                    w += nw[node][k];
            }
            if (w > best_w) {
                best_w = w;
                best_node = node;
            }
        }
        // Weighted-BFS-distance placement with a preference for spots
        // that keep an empty neighbour as decode space.
        std::vector<std::pair<double, ShortestPaths>> fields;
        for (int k = 0; k < num_nodes; ++k) {
            if (node_unit[k] != kInvalid && nw[best_node][k] > 0.0)
                fields.emplace_back(nw[best_node][k],
                                    bfs(topo.graph(), node_unit[k]));
        }
        UnitId best_u = kInvalid;
        double best_score = ShortestPaths::kInf;
        for (UnitId u = 0; u < topo.numUnits(); ++u) {
            if (unit_used[u])
                continue;
            double score = 0.0;
            for (const auto &[w, field] : fields)
                score += w * field.dist[u];
            int free_neighbors = 0;
            for (const auto &e : topo.graph().neighbors(u)) {
                if (!unit_used[e.to])
                    ++free_neighbors;
            }
            // Light decode-space preference (tie-break scale).
            score += free_neighbors == 0 ? 0.5 : 0.0;
            if (score < best_score) {
                best_score = score;
                best_u = u;
            }
        }
        QPANIC_IF(best_u == kInvalid, "FQ mapping: no unit available");
        place_node(best_node, best_u);
    }

    Layout layout(n, topo.numUnits());
    for (int node = 0; node < num_nodes; ++node) {
        const auto &members = node_members[node];
        layout.place(members[0], makeSlot(node_unit[node], 0));
        if (members.size() == 2)
            layout.place(members[1], makeSlot(node_unit[node], 1));
    }

    CompileResult result;
    result.compressions = encodedPairsOf(layout);
    result.compiled = CompiledCircuit(layout, native.name());
    if (cfg.chargeInitialEnc) {
        for (UnitId u = 0; u < topo.numUnits(); ++u) {
            if (!layout.unitEncoded(u))
                continue;
            PhysGate enc;
            enc.cls = PhysGateClass::Encode;
            enc.slots = {makeSlot(u, 0), makeSlot(u, 1)};
            enc.logical = GateType::Swap;
            result.compiled.add(enc);
        }
    }

    // --- Qudit-level routing with encode/decode ---------------------
    FqRouter router(topo, ctx.cost(), layout, result.compiled,
                    ctx.cache());
    const auto &gates = native.gates();
    const auto layers = native.asapLayers();
    std::vector<int> idx_order(gates.size());
    for (std::size_t i = 0; i < gates.size(); ++i)
        idx_order[i] = static_cast<int>(i);
    std::stable_sort(idx_order.begin(), idx_order.end(),
                     [&](int a, int b) { return layers[a] < layers[b]; });

    for (int gi : idx_order) {
        const Gate &g = gates[gi];
        if (g.arity() == 1) {
            const SlotId s = layout.slotOf(g.qubits[0]);
            PhysGate pg;
            pg.cls = classifySq(slotPos(s),
                                layout.unitEncoded(slotUnit(s)));
            pg.slots = {s};
            pg.logical = g.type;
            pg.param = g.param;
            pg.sourceGate = gi;
            result.compiled.add(pg);
            continue;
        }
        const QubitId qa = g.qubits[0];
        const QubitId qb = g.qubits[1];
        if (ExpandedGraph::sameUnit(layout.slotOf(qa),
                                    layout.slotOf(qb))) {
            // Internal gates stay fast even in the FQ model.
            const SlotId a = layout.slotOf(qa);
            const SlotId b = layout.slotOf(qb);
            PhysGate pg;
            pg.slots = {a, b};
            pg.logical = g.type;
            pg.param = g.param;
            pg.sourceGate = gi;
            if (g.type == GateType::CX) {
                pg.cls = slotPos(a) == 0 ? PhysGateClass::CxInternal0
                                         : PhysGateClass::CxInternal1;
                result.compiled.add(pg);
            } else {
                // Program-level SWAP: the gate realizes the logical
                // exchange, so tracking stays put.
                pg.cls = PhysGateClass::SwapInternal;
                result.compiled.add(pg);
            }
            continue;
        }
        // External: route units together, decode, operate, re-encode.
        router.routeUnitsAdjacent(qa, qb, gi);
        const UnitId ua = slotUnit(layout.slotOf(qa));
        const UnitId ub = slotUnit(layout.slotOf(qb));
        std::vector<UnitId> blocked{ua, ub};
        UnitId anc_a = kInvalid, anc_b = kInvalid;
        if (layout.unitEncoded(ua)) {
            anc_a = router.decodeFor(qa, blocked, gi);
            blocked.push_back(anc_a);
        }
        if (layout.unitEncoded(ub)) {
            anc_b = router.decodeFor(qb, blocked, gi);
            blocked.push_back(anc_b);
        }
        const SlotId sa = layout.slotOf(qa);
        const SlotId sb = layout.slotOf(qb);
        PhysGate pg;
        pg.slots = {sa, sb};
        pg.logical = g.type;
        pg.param = g.param;
        pg.sourceGate = gi;
        if (g.type == GateType::CX) {
            pg.cls = PhysGateClass::CxBareBare;
        } else {
            // Program-level SWAP: no tracking update (see above).
            pg.cls = PhysGateClass::SwapBareBare;
        }
        result.compiled.add(pg);
        if (anc_a != kInvalid)
            router.encodeBack(ua, anc_a, gi);
        if (anc_b != kInvalid)
            router.encodeBack(ub, anc_b, gi);
    }

    result.compiled.setFinalLayout(layout);
    scheduleCompiled(result.compiled, lib);
    if (cfg.validate)
        validateCompiled(result.compiled, topo);
    result.metrics = computeMetrics(result.compiled, lib);
    return result;
}

} // namespace qompress
