/**
 * @file
 * EQM and QubitOnly live in strategy.hh; this header exists to give
 * the pair a stable include point alongside the other strategies.
 */

#ifndef QOMPRESS_STRATEGIES_EQM_HH
#define QOMPRESS_STRATEGIES_EQM_HH

#include "strategies/strategy.hh"

#endif // QOMPRESS_STRATEGIES_EQM_HH
