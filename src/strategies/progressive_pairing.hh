/**
 * @file
 * Progressive Pairing (paper section 5.5): start from a qubit-only
 * mapping, estimate each candidate compression's fidelity effect from
 * distance changes alone (no rerouting), commit the best, remap, and
 * repeat.
 */

#ifndef QOMPRESS_STRATEGIES_PROGRESSIVE_PAIRING_HH
#define QOMPRESS_STRATEGIES_PROGRESSIVE_PAIRING_HH

#include "strategies/strategy.hh"

namespace qompress {

/** See file comment. */
class ProgressivePairingStrategy : public CompressionStrategy
{
  public:
    using CompressionStrategy::choosePairs;

    std::string name() const override { return "pp"; }

    std::vector<Compression>
    choosePairs(const Circuit &native, const Topology &topo,
                const GateLibrary &lib, const CompilerConfig &cfg,
                CompileContext &ctx) const override;
};

} // namespace qompress

#endif // QOMPRESS_STRATEGIES_PROGRESSIVE_PAIRING_HH
