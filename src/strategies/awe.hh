/**
 * @file
 * Average-Weight-per-Edge compression (paper section 5.4): greedily
 * merge the qubit pair that maximizes the contracted interaction
 * graph's average edge weight.
 */

#ifndef QOMPRESS_STRATEGIES_AWE_HH
#define QOMPRESS_STRATEGIES_AWE_HH

#include "strategies/strategy.hh"

namespace qompress {

/** See file comment. */
class AweStrategy : public CompressionStrategy
{
  public:
    using CompressionStrategy::choosePairs;

    std::string name() const override { return "awe"; }

    std::vector<Compression>
    choosePairs(const Circuit &native, const Topology &topo,
                const GateLibrary &lib, const CompilerConfig &cfg,
                CompileContext &ctx) const override;
};

} // namespace qompress

#endif // QOMPRESS_STRATEGIES_AWE_HH
