#include "strategies/ring_based.hh"

#include <algorithm>

#include "graph/algorithms.hh"
#include "ir/interaction.hh"

namespace qompress {

std::vector<Compression>
RingBasedStrategy::choosePairs(const Circuit &native, const Topology &topo,
                               const GateLibrary &lib,
                               const CompilerConfig &cfg,
                               CompileContext &ctx) const
{
    // Cycle detection runs on the interaction graph alone; the shared
    // context is consumed downstream by mapping/routing.
    (void)topo;
    (void)lib;
    (void)cfg;
    (void)ctx;
    const InteractionModel im(native);
    Graph work = im.graph(); // contracted as pairs commit
    const int n = native.numQubits();
    const double depth = std::max(1, native.depth());
    std::vector<bool> paired(n, false);

    std::vector<Compression> pairs;
    while (true) {
        // Shortest cycle through every still-available vertex.
        std::vector<std::vector<int>> cycles;
        int min_len = 0;
        for (int v = 0; v < n; ++v) {
            if (paired[v] || work.degree(v) == 0)
                continue;
            auto cyc = shortestCycleThrough(work, v);
            if (cyc.empty())
                continue;
            const int len = static_cast<int>(cyc.size());
            if (min_len == 0 || len < min_len)
                min_len = len;
            cycles.push_back(std::move(cyc));
        }
        if (cycles.empty())
            break;

        // Bound the identifiable cycle size by the global minimum.
        cycles.erase(std::remove_if(cycles.begin(), cycles.end(),
                                    [min_len](const auto &c) {
                                        return static_cast<int>(c.size())
                                               > min_len;
                                    }),
                     cycles.end());

        // How many of the found cycles contain a given pair.
        auto cycle_pair_count = [&](int a, int b) {
            int count = 0;
            for (const auto &cyc : cycles) {
                const bool has_a = std::find(cyc.begin(), cyc.end(), a)
                                   != cyc.end();
                const bool has_b = std::find(cyc.begin(), cyc.end(), b)
                                   != cyc.end();
                if (has_a && has_b)
                    ++count;
            }
            return count;
        };

        // Interaction weights shrink as 1/s with circuit length, so
        // normalize them by the working graph's mean edge weight to
        // keep the score scale-invariant across circuit sizes.
        const double mean_w = work.numEdges() > 0
            ? work.totalWeight() / work.numEdges() : 1.0;

        double best_score = 0.0;
        Compression best{kInvalid, kInvalid};
        for (const auto &cyc : cycles) {
            // Anchor: the cycle member with the fewest interactions
            // outside the cycle.
            int anchor = kInvalid;
            int fewest_outside = 0;
            for (int v : cyc) {
                if (paired[v])
                    continue;
                int outside = 0;
                for (const auto &e : work.neighbors(v)) {
                    if (std::find(cyc.begin(), cyc.end(), e.to)
                        == cyc.end()) {
                        ++outside;
                    }
                }
                if (anchor == kInvalid || outside < fewest_outside) {
                    anchor = v;
                    fewest_outside = outside;
                }
            }
            if (anchor == kInvalid)
                continue;
            for (int u : cyc) {
                if (u == anchor || paired[u])
                    continue;
                // Degree of the contracted node in the working graph:
                // distinct external neighbours of anchor and u.
                int merged_degree = 0;
                for (const auto &e : work.neighbors(anchor)) {
                    if (e.to != u)
                        ++merged_degree;
                }
                for (const auto &e : work.neighbors(u)) {
                    if (e.to != anchor && !work.hasEdge(anchor, e.to))
                        ++merged_degree;
                }
                const double score =
                    opts_.interactionWeight *
                        (im.weight(anchor, u) / mean_w) +
                    opts_.sharedNeighborWeight *
                        im.sharedNeighbors(anchor, u) +
                    opts_.cycleCountWeight * cycle_pair_count(anchor, u) -
                    opts_.simultaneityPenalty *
                        (im.simultaneousUse(anchor, u) / depth) -
                    opts_.mergedDegreePenalty * merged_degree;
                if (score > best_score) {
                    best_score = score;
                    best = {anchor, u};
                }
            }
        }
        if (best.first == kInvalid)
            break;

        pairs.push_back(best);
        paired[best.first] = true;
        paired[best.second] = true;
        // Collapse the pair in the working graph so later rounds see
        // the merged connectivity.
        work.contract(best.first, best.second);
    }
    return pairs;
}

} // namespace qompress
