#include "strategies/progressive_pairing.hh"

#include <algorithm>

#include "common/error.hh"
#include "ir/interaction.hh"

namespace qompress {

std::vector<Compression>
ProgressivePairingStrategy::choosePairs(const Circuit &native,
                                        const Topology &topo,
                                        const GateLibrary &lib,
                                        const CompilerConfig &cfg,
                                        CompileContext &ctx) const
{
    (void)topo;
    (void)lib;
    (void)cfg;
    const InteractionModel im(native);
    const CostModel &cost = ctx.cost();
    DistanceFieldCache *cache = ctx.cache();
    const int n = native.numQubits();

    std::vector<Compression> pairs;
    std::vector<bool> paired(n, false);

    while (static_cast<int>(pairs.size()) < n / 2) {
        // Full picture: remap with the pairs committed so far (qubits
        // outside pairs strictly one per unit), then price every
        // candidate from distance changes only -- no rerouting, as the
        // paper prescribes. The shared cache survives the remap:
        // layouts of successive rounds mostly agree on encoded bits,
        // so signature revalidation turns repeat fields into hits.
        MapperOptions mopts;
        mopts.pairs = pairs;
        Layout layout = mapCircuit(native, im, cost, mopts, cache);

        // One swap-cost distance field per qubit's current slot.
        // Cached fields are referenced in place (the layout is not
        // mutated while they are alive); uncached ones are copied.
        std::vector<const ShortestPaths *> field(n);
        std::vector<ShortestPaths> holders;
        if (!cache)
            holders.resize(static_cast<std::size_t>(n));
        for (QubitId q = 0; q < n; ++q) {
            if (cache) {
                field[q] = &cache->mapping(layout.slotOf(q), layout);
            } else {
                holders[q] = cost.mappingDistances(layout.slotOf(q),
                                                   layout);
                field[q] = &holders[q];
            }
        }

        // Estimated -log-success of all interactions of q if q sits at
        // slot s (distances measured from the partners' sides).
        auto cost_at = [&](QubitId q, SlotId s, QubitId moved_partner,
                           SlotId moved_slot) {
            double total = 0.0;
            for (const auto &e : im.graph().neighbors(q)) {
                const int count = im.pairGateCount(q, e.to);
                SlotId ps = layout.slotOf(e.to);
                if (e.to == moved_partner)
                    ps = moved_slot;
                if (ExpandedGraph::sameUnit(s, ps)) {
                    // Internal gate: cheap fixed interaction.
                    total += count * cost.cxCost(s, ps, layout);
                } else {
                    total += count * field[e.to]->dist[s];
                }
            }
            return total;
        };

        double best_gain = 1e-9;
        Compression best{kInvalid, kInvalid};
        for (QubitId a = 0; a < n; ++a) {
            if (paired[a])
                continue;
            const SlotId sa = layout.slotOf(a);
            const SlotId s1 = makeSlot(slotUnit(sa), 1);
            if (layout.occupied(s1))
                continue;
            for (QubitId b = 0; b < n; ++b) {
                if (b == a || paired[b])
                    continue;
                // Order (a, b): b joins position 1 of a's unit; only
                // interactions touching a or b change cost.
                const double before =
                    cost_at(a, sa, kInvalid, kInvalid) +
                    cost_at(b, layout.slotOf(b), kInvalid, kInvalid);
                const double after = cost_at(a, sa, b, s1) +
                                     cost_at(b, s1, a, sa);
                const double gain = before - after;
                if (gain > best_gain) {
                    best_gain = gain;
                    best = {a, b};
                }
            }
        }
        if (best.first == kInvalid)
            break;
        pairs.push_back(best);
        paired[best.first] = true;
        paired[best.second] = true;
    }
    return pairs;
}

} // namespace qompress
