/**
 * @file
 * The Full-Ququart baseline (paper section 6.2): every qubit pair is
 * encoded, there are no partial operations, so every external two-qubit
 * gate routes whole ququarts together (SWAP4 only), decodes both pairs
 * into ancilla units, applies the plain qubit-qubit gate, and
 * re-encodes.
 */

#ifndef QOMPRESS_STRATEGIES_FULL_QUQUART_HH
#define QOMPRESS_STRATEGIES_FULL_QUQUART_HH

#include "strategies/strategy.hh"

namespace qompress {

/** See file comment. */
class FullQuquartStrategy : public CompressionStrategy
{
  public:
    using CompressionStrategy::choosePairs;

    std::string name() const override { return "fq"; }

    /** Greedy maximum-interaction-weight matching pairing *all* qubits
     *  (one left bare when the count is odd). */
    std::vector<Compression>
    choosePairs(const Circuit &native, const Topology &topo,
                const GateLibrary &lib, const CompilerConfig &cfg,
                CompileContext &ctx) const override;

    using CompressionStrategy::compile;
    CompileResult compile(const Circuit &circuit, const Topology &topo,
                          const GateLibrary &lib,
                          const CompilerConfig &cfg,
                          CompileContext *ctx) const override;
};

} // namespace qompress

#endif // QOMPRESS_STRATEGIES_FULL_QUQUART_HH
