#include "strategies/exhaustive.hh"

#include <algorithm>
#include <optional>
#include <set>

#include "common/error.hh"
#include "ir/passes.hh"

namespace qompress {

std::vector<Compression>
ExhaustiveStrategy::choosePairs(const Circuit &native,
                                const Topology &topo,
                                const GateLibrary &lib,
                                const CompilerConfig &cfg,
                                CompileContext &ctx) const
{
    return choosePairsWithTrace(native, topo, lib, cfg, nullptr, &ctx);
}

std::vector<Compression>
ExhaustiveStrategy::choosePairsWithTrace(
    const Circuit &native, const Topology &topo, const GateLibrary &lib,
    const CompilerConfig &cfg, std::vector<ExhaustiveStep> *trace,
    CompileContext *ctx) const
{
    CompilerConfig inner = cfg;
    inner.validate = false; // the final compile still validates

    std::optional<CompileContext> local;
    if (!ctx) {
        local.emplace(topo, lib, inner);
        ctx = &*local;
    }

    const int n = native.numQubits();
    std::vector<Compression> pairs;
    std::vector<bool> paired(n, false);

    auto value_of = [this](const CompileResult &res) {
        return metric_ == ExhaustiveMetric::GateEps
            ? res.metrics.gateEps : res.metrics.totalEps;
    };

    CompileResult best =
        compileWithPairs(native, topo, lib, pairs, false, inner, ctx);

    while (static_cast<int>(pairs.size()) < n / 2) {
        // Priority groups from the current best compilation's critical
        // path: (1) qubits in critical computation gates, (2) qubits
        // whose communication sits on the critical path, (3) the rest.
        std::set<QubitId> crit_compute;
        std::set<QubitId> crit_comm;
        if (ordered_) {
            const auto crit = criticalGates(best.compiled);
            const auto &pgates = best.compiled.gates();
            for (std::size_t i = 0; i < pgates.size(); ++i) {
                if (!crit[i] || pgates[i].sourceGate < 0)
                    continue;
                const auto &src = native.gates()[pgates[i].sourceGate];
                for (QubitId q : src.qubits) {
                    if (pgates[i].isRouting)
                        crit_comm.insert(q);
                    else
                        crit_compute.insert(q);
                }
            }
        }
        auto group_of = [&](QubitId a, QubitId b) {
            if (!ordered_)
                return 0;
            if (crit_compute.count(a) || crit_compute.count(b))
                return 1;
            if (crit_comm.count(a) || crit_comm.count(b))
                return 2;
            return 3;
        };

        bool committed = false;
        const int first_group = ordered_ ? 1 : 0;
        const int last_group = ordered_ ? 3 : 0;
        for (int group = first_group; group <= last_group && !committed;
             ++group) {
            double best_eps = value_of(best);
            Compression best_pair{kInvalid, kInvalid};
            CompileResult best_res;
            for (QubitId a = 0; a < n; ++a) {
                if (paired[a])
                    continue;
                for (QubitId b = a + 1; b < n; ++b) {
                    if (paired[b] || group_of(a, b) != group)
                        continue;
                    auto cand = pairs;
                    cand.push_back({a, b});
                    CompileResult res = compileWithPairs(
                        native, topo, lib, cand, false, inner, ctx);
                    if (value_of(res) > best_eps) {
                        best_eps = value_of(res);
                        best_pair = {a, b};
                        best_res = std::move(res);
                    }
                }
            }
            if (best_pair.first != kInvalid) {
                pairs.push_back(best_pair);
                paired[best_pair.first] = true;
                paired[best_pair.second] = true;
                best = std::move(best_res);
                if (trace) {
                    trace->push_back({best_pair,
                                      best.metrics.gateEps,
                                      best.metrics.coherenceEps,
                                      best.metrics.totalEps, group});
                }
                committed = true;
            }
        }
        if (!committed)
            break;
    }
    return pairs;
}

} // namespace qompress
