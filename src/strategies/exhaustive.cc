#include "strategies/exhaustive.hh"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>

#include "common/error.hh"
#include "common/thread_pool.hh"
#include "ir/passes.hh"

namespace qompress {

std::vector<Compression>
ExhaustiveStrategy::choosePairs(const Circuit &native,
                                const Topology &topo,
                                const GateLibrary &lib,
                                const CompilerConfig &cfg,
                                CompileContext &ctx) const
{
    return choosePairsWithTrace(native, topo, lib, cfg, nullptr, &ctx);
}

std::vector<Compression>
ExhaustiveStrategy::choosePairsWithTrace(
    const Circuit &native, const Topology &topo, const GateLibrary &lib,
    const CompilerConfig &cfg, std::vector<ExhaustiveStep> *trace,
    CompileContext *ctx) const
{
    CompilerConfig inner = cfg;
    inner.validate = false; // the final compile still validates

    std::optional<CompileContext> local;
    if (!ctx) {
        local.emplace(topo, lib, inner);
        ctx = &*local;
    }

    // Candidate fan-out: cfg.threads lanes (0 = the process default).
    // Lane 0 reuses the caller's context; other lanes lazily build
    // their own (the cache is single-writer state), created at most
    // once per choosePairs call and reused across all rounds. Calls
    // already running on a pool worker stay serial
    // (ThreadPool::forRequest returns nullptr there).
    std::optional<ThreadPool> own_pool;
    ThreadPool *pool = ThreadPool::forRequest(cfg.threads, own_pool);
    std::vector<std::unique_ptr<CompileContext>> lane_ctx(
        pool ? pool->numThreads() : 1);
    auto ctx_of_lane = [&](int lane) -> CompileContext * {
        if (lane == 0)
            return ctx;
        if (!lane_ctx[lane])
            lane_ctx[lane] =
                std::make_unique<CompileContext>(topo, lib, inner);
        return lane_ctx[lane].get();
    };

    const int n = native.numQubits();
    std::vector<Compression> pairs;
    std::vector<bool> paired(n, false);

    auto value_of = [this](const CompileResult &res) {
        return metric_ == ExhaustiveMetric::GateEps
            ? res.metrics.gateEps : res.metrics.totalEps;
    };

    CompileResult best =
        compileWithPairs(native, topo, lib, pairs, false, inner, ctx);

    while (static_cast<int>(pairs.size()) < n / 2) {
        // Priority groups from the current best compilation's critical
        // path: (1) qubits in critical computation gates, (2) qubits
        // whose communication sits on the critical path, (3) the rest.
        std::set<QubitId> crit_compute;
        std::set<QubitId> crit_comm;
        if (ordered_) {
            const auto crit = criticalGates(best.compiled);
            const auto &pgates = best.compiled.gates();
            for (std::size_t i = 0; i < pgates.size(); ++i) {
                if (!crit[i] || pgates[i].sourceGate < 0)
                    continue;
                const auto &src = native.gates()[pgates[i].sourceGate];
                for (QubitId q : src.qubits) {
                    if (pgates[i].isRouting)
                        crit_comm.insert(q);
                    else
                        crit_compute.insert(q);
                }
            }
        }
        auto group_of = [&](QubitId a, QubitId b) {
            if (!ordered_)
                return 0;
            if (crit_compute.count(a) || crit_compute.count(b))
                return 1;
            if (crit_comm.count(a) || crit_comm.count(b))
                return 2;
            return 3;
        };

        bool committed = false;
        const int first_group = ordered_ ? 1 : 0;
        const int last_group = ordered_ ? 3 : 0;
        for (int group = first_group; group <= last_group && !committed;
             ++group) {
            // Enumerate this group's candidates in ascending (a, b)
            // order, score every one independently (in parallel when a
            // pool is available), then reduce serially in that same
            // order with the strict ">" the serial search used. The
            // winner is therefore bit-identical regardless of lane
            // count: scores are pure functions of the candidate (the
            // cache never changes results) and ties keep the earliest
            // candidate either way.
            std::vector<Compression> cands;
            for (QubitId a = 0; a < n; ++a) {
                if (paired[a])
                    continue;
                for (QubitId b = a + 1; b < n; ++b) {
                    if (!paired[b] && group_of(a, b) == group)
                        cands.push_back({a, b});
                }
            }

            auto compile_cand = [&](std::size_t i, int lane) {
                auto cand = pairs;
                cand.push_back(cands[i]);
                return compileWithPairs(native, topo, lib, cand, false,
                                        inner, ctx_of_lane(lane));
            };

            double best_eps = value_of(best);
            std::size_t best_idx = cands.size();
            CompileResult best_res;
            if (pool) {
                std::vector<double> score(cands.size());
                pool->parallelFor(0, cands.size(),
                                  [&](std::size_t i, int lane) {
                                      score[i] =
                                          value_of(compile_cand(i, lane));
                                  });
                for (std::size_t i = 0; i < cands.size(); ++i) {
                    if (score[i] > best_eps) {
                        best_eps = score[i];
                        best_idx = i;
                    }
                }
                // Recompile the winner on the caller's context: one
                // extra compile per committed pair, deterministic
                // (identical to the lane's result by cache purity),
                // and it keeps `best` warm on the lane-0 cache for
                // the next round's critical-path analysis.
                if (best_idx < cands.size())
                    best_res = compile_cand(best_idx, 0);
            } else {
                // Serial: same candidate order and the same strict
                // ">", keeping the winning result as it appears — no
                // recompile needed.
                for (std::size_t i = 0; i < cands.size(); ++i) {
                    CompileResult res = compile_cand(i, 0);
                    if (value_of(res) > best_eps) {
                        best_eps = value_of(res);
                        best_idx = i;
                        best_res = std::move(res);
                    }
                }
            }

            if (best_idx < cands.size()) {
                const Compression best_pair = cands[best_idx];
                pairs.push_back(best_pair);
                paired[best_pair.first] = true;
                paired[best_pair.second] = true;
                best = std::move(best_res);
                if (trace) {
                    trace->push_back({best_pair,
                                      best.metrics.gateEps,
                                      best.metrics.coherenceEps,
                                      best.metrics.totalEps, group});
                }
                committed = true;
            }
        }
        if (!committed)
            break;
    }
    return pairs;
}

} // namespace qompress
