#include "strategies/portfolio.hh"

#include "common/error.hh"

namespace qompress {

PortfolioStrategy::PortfolioStrategy(std::vector<std::string> names)
    : names_(std::move(names))
{
    QFATAL_IF(names_.empty(), "portfolio needs at least one member");
}

CompileResult
PortfolioStrategy::compile(const Circuit &circuit, const Topology &topo,
                           const GateLibrary &lib,
                           const CompilerConfig &cfg) const
{
    CompileResult best;
    bool have = false;
    for (const auto &name : names_) {
        const auto member = makeStrategy(name);
        CompileResult res;
        try {
            res = member->compile(circuit, topo, lib, cfg);
        } catch (const FatalError &) {
            // A member may not fit (e.g. qubit-only over capacity);
            // the portfolio simply skips it.
            continue;
        }
        if (!have || res.metrics.totalEps > best.metrics.totalEps) {
            best = std::move(res);
            lastWinner_ = name;
            have = true;
        }
    }
    QFATAL_IF(!have, "no portfolio member could compile '",
              circuit.name(), "' on ", topo.name());
    return best;
}

} // namespace qompress
