#include "strategies/portfolio.hh"

#include <optional>

#include "common/error.hh"
#include "common/thread_pool.hh"

namespace qompress {

PortfolioStrategy::PortfolioStrategy(std::vector<std::string> names)
    : names_(std::move(names))
{
    QFATAL_IF(names_.empty(), "portfolio needs at least one member");
}

CompileResult
PortfolioStrategy::compile(const Circuit &circuit, const Topology &topo,
                           const GateLibrary &lib,
                           const CompilerConfig &cfg,
                           CompileContext *ctx) const
{
    // Members each build their own context: contexts are single-writer
    // and the members may run concurrently, so the caller's context
    // (if any) cannot be shared out to them.
    (void)ctx;

    const std::size_t n = names_.size();
    std::vector<std::optional<CompileResult>> results(n);
    auto compile_member = [&](std::size_t i, int) {
        try {
            results[i] =
                makeStrategy(names_[i])->compile(circuit, topo, lib, cfg);
        } catch (const FatalError &) {
            // A member may not fit (e.g. qubit-only over capacity);
            // the portfolio simply skips it (slot stays empty).
        }
    };

    std::optional<ThreadPool> own_pool;
    if (ThreadPool *pool = ThreadPool::forRequest(cfg.threads, own_pool)) {
        pool->parallelFor(0, n, compile_member);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            compile_member(i, 0);
    }

    // Deterministic serial reduction in member order with the strict
    // ">" the serial loop used: ties keep the earliest member, and
    // lastWinner_ is written exactly once, by this (the calling)
    // thread, after all lanes have joined.
    CompileResult best;
    const std::string *winner = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
        if (!results[i])
            continue;
        if (!winner ||
            results[i]->metrics.totalEps > best.metrics.totalEps) {
            best = std::move(*results[i]);
            winner = &names_[i];
        }
    }
    QFATAL_IF(!winner, "no portfolio member could compile '",
              circuit.name(), "' on ", topo.name());
    lastWinner_ = *winner;
    return best;
}

} // namespace qompress
