#include "strategies/portfolio.hh"

#include "common/error.hh"

namespace qompress {

namespace {

ServiceOptions
portfolioServiceOptions()
{
    ServiceOptions opts;
    // Enough memo room for every member of a handful of recent
    // distinct requests; the pool keeps one warm context per member's
    // pricing configuration (they usually share one).
    opts.cacheCapacity = 64;
    // Members inherit the template tier too: a portfolio driven down
    // an angle sweep full-compiles each member once, then every later
    // instance is a per-member rebind (winner selection reads metrics,
    // which rebind reproduces bit-identically, so the winning member
    // never changes from what full compiles would pick).
    opts.templateCacheCapacity = 64;
    opts.contextPoolCapacity = 8;
    opts.threads = 0; // overridden per compile by cfg.threads
    return opts;
}

} // namespace

PortfolioStrategy::PortfolioStrategy(std::vector<std::string> names)
    : names_(std::move(names)), service_(portfolioServiceOptions())
{
    QFATAL_IF(names_.empty(), "portfolio needs at least one member");
}

CompileResult
PortfolioStrategy::compile(const Circuit &circuit, const Topology &topo,
                           const GateLibrary &lib,
                           const CompilerConfig &cfg,
                           CompileContext *ctx) const
{
    // The caller's context cannot be shared out to members (contexts
    // are single-writer and members may run concurrently); members
    // draw pooled contexts from the service instead.
    (void)ctx;

    std::vector<CompileRequest> reqs;
    reqs.reserve(names_.size());
    for (const auto &member : names_)
        reqs.push_back(
            CompileRequest::forCircuit(circuit, topo, member, cfg, lib));
    auto handles = service_.submitBatch(std::move(reqs), cfg.threads);

    // Deterministic serial reduction in member order with the strict
    // ">" the serial loop used: ties keep the earliest member, and
    // lastWinner_ is written exactly once, by this (the calling)
    // thread, after all members have finished. Artifacts are shared
    // and immutable, so the scan only tracks the best one; the single
    // copy into the returned result happens after the loop.
    CompileArtifact best;
    const std::string *winner = nullptr;
    for (std::size_t i = 0; i < handles.size(); ++i) {
        CompileArtifact artifact;
        try {
            artifact = handles[i].get();
        } catch (const FatalError &) {
            // A member may not fit (e.g. qubit-only over capacity);
            // the portfolio simply skips it.
            continue;
        }
        if (!winner ||
            artifact->metrics.totalEps > best->metrics.totalEps) {
            best = std::move(artifact);
            winner = &names_[i];
        }
    }
    QFATAL_IF(!winner, "no portfolio member could compile '",
              circuit.name(), "' on ", topo.name());
    lastWinner_ = *winner;
    return *best;
}

} // namespace qompress
