#include "server/histogram.hh"

#include <cmath>

namespace qompress {

namespace {

// Geometric bucket growth: 128 buckets from 1 us spanning seven
// decades (1.134^127 ~= 8.6e6, i.e. ~8.6 s) at ~13% resolution.
constexpr double kGrowth = 1.134;

} // namespace

int
LatencyHistogram::bucketOf(double us)
{
    if (us <= 1.0)
        return 0;
    const int b = static_cast<int>(std::log(us) / std::log(kGrowth)) + 1;
    return b >= kBuckets ? kBuckets - 1 : b;
}

double
LatencyHistogram::bucketMidUs(int bucket)
{
    if (bucket <= 0)
        return 1.0;
    // Geometric midpoint of [growth^(b-1), growth^b).
    return std::pow(kGrowth, bucket - 0.5);
}

void
LatencyHistogram::record(double us)
{
    if (us < 0.0)
        us = 0.0;
    buckets_[bucketOf(us)].fetch_add(1, std::memory_order_relaxed);
    sumUs_.fetch_add(static_cast<std::uint64_t>(us),
                     std::memory_order_relaxed);
    std::uint64_t v = static_cast<std::uint64_t>(us);
    std::uint64_t cur = maxUs_.load(std::memory_order_relaxed);
    while (v > cur &&
           !maxUs_.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed)) {
    }
}

double
LatencyHistogram::Snapshot::quantileUs(double q) const
{
    if (count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-quantile sample, 1-based, then scan buckets.
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
    std::uint64_t seen = 0;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank)
            return LatencyHistogram::bucketMidUs(b);
    }
    return LatencyHistogram::bucketMidUs(LatencyHistogram::kBuckets - 1);
}

LatencyHistogram::Snapshot
LatencyHistogram::snapshot() const
{
    Snapshot s;
    // Count is the bucket sum, not count_, so quantile scans over the
    // captured buckets are self-consistent even when record() calls
    // race the snapshot.
    for (int b = 0; b < kBuckets; ++b) {
        s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
        s.count += s.buckets[b];
    }
    if (s.count > 0) {
        s.mean_us =
            static_cast<double>(sumUs_.load(std::memory_order_relaxed)) /
            static_cast<double>(s.count);
    }
    s.max_us =
        static_cast<double>(maxUs_.load(std::memory_order_relaxed));
    s.p50_us = s.quantileUs(0.50);
    s.p99_us = s.quantileUs(0.99);
    return s;
}

} // namespace qompress
