/**
 * @file
 * Lock-free log-bucketed latency histogram for the server hot path.
 *
 * record() is a single relaxed atomic increment into one of a fixed
 * set of geometrically spaced buckets (~12% width) covering 1 us to
 * ~10 s, so request threads never serialize on a shared mutex to
 * report a latency. snapshot() reads the buckets once and derives
 * count, mean, quantiles (p50/p99 by bucket midpoint — accurate to
 * the bucket width, which is all a tail-latency report needs), and an
 * exact max (maintained by CAS).
 *
 * Shared by the qompressd request loop and the bench_loadgen client
 * side, so server-observed and client-observed tails are computed the
 * same way.
 */

#ifndef QOMPRESS_SERVER_HISTOGRAM_HH
#define QOMPRESS_SERVER_HISTOGRAM_HH

#include <array>
#include <atomic>
#include <cstdint>

namespace qompress {

class LatencyHistogram
{
  public:
    /** One consistent read of the histogram. */
    struct Snapshot
    {
        std::uint64_t count = 0;
        double mean_us = 0.0;
        double p50_us = 0.0;
        double p99_us = 0.0;
        double max_us = 0.0;

        /** Arbitrary quantile in [0, 1] over the recorded samples. */
        double quantileUs(double q) const;

        std::array<std::uint64_t, 128> buckets{};
    };

    /** Record one latency sample (negative values clamp to 0). */
    void record(double us);

    Snapshot snapshot() const;

    /** Bucket count / value mapping, exposed for Snapshot::quantileUs. */
    static constexpr int kBuckets = 128;
    static int bucketOf(double us);
    static double bucketMidUs(int bucket);

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> sumUs_{0};
    std::atomic<std::uint64_t> maxUs_{0};
};

} // namespace qompress

#endif // QOMPRESS_SERVER_HISTOGRAM_HH
