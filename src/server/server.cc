#include "server/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "circuits/registry.hh"
#include "common/error.hh"
#include "common/strings.hh"
#include "ir/qasm.hh"

namespace qompress {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Largest registry instance a request may ask for; keeps family
 *  requests from sizing unbounded circuit builds. */
constexpr int kMaxFamilySize = 4096;

/** One routed reply before serialization/accounting. */
struct Reply
{
    int status = 200;
    std::string body;
    std::vector<std::pair<std::string, std::string>> headers;
};

std::string
errorBody(int status, const std::string &type, const std::string &message)
{
    return format("{\"error\": {\"status\": %d, \"type\": \"%s\", "
                  "\"message\": \"%s\"}}",
                  status, type.c_str(), jsonEscape(message).c_str());
}

Reply
errorReply(int status, const std::string &type, const std::string &message)
{
    Reply r;
    r.status = status;
    r.body = errorBody(status, type, message);
    if (status == 503)
        r.headers.emplace_back("Retry-After", "1");
    return r;
}

Topology
makeTopology(const std::string &kind, int units, int maxUnits)
{
    QFATAL_IF(units < 1 || units > maxUnits, "topology size ", units,
              " out of range [1, ", maxUnits, "]");
    if (kind == "grid")
        return Topology::grid(units);
    if (kind == "heavyhex")
        return Topology::heavyHex65();
    if (kind == "ring")
        return Topology::ring(units < 3 ? 3 : units);
    if (kind == "line")
        return Topology::line(units < 2 ? 2 : units);
    QFATAL("unknown topology '", kind,
           "' (expected grid|heavyhex|ring|line)");
}

/** Strict positive-integer query parameter. */
int
intParam(const std::string &value, const char *what)
{
    QFATAL_IF(value.empty() ||
              value.find_first_not_of("0123456789") != std::string::npos ||
              value.size() > 7,
              "malformed ", what, " '", value, "'");
    return std::atoi(value.c_str());
}

std::string
resultJson(const std::string &name, const std::string &strategy,
           const CompileResult &res)
{
    const Metrics &m = res.metrics;
    return format(
        "{\"name\": \"%s\", \"strategy\": \"%s\", "
        "\"compressions\": %zu, \"gates\": %d, \"routing_gates\": %d, "
        "\"two_unit_gates\": %d, \"encoded_units\": %d, "
        "\"duration_ns\": %.1f, \"gate_eps\": %.6g, "
        "\"coherence_eps\": %.6g, \"total_eps\": %.6g}",
        jsonEscape(name).c_str(), jsonEscape(strategy).c_str(),
        res.compressions.size(), m.numGates, m.numRoutingGates,
        m.numTwoUnitGates, m.numEncodedUnits, m.durationNs, m.gateEps,
        m.coherenceEps, m.totalEps);
}

} // namespace

QompressServer::QompressServer(ServerOptions opts)
    : opts_(std::move(opts)), service_(opts_.service)
{
    QFATAL_IF(opts_.workers < 1, "server needs at least one worker");
}

QompressServer::~QompressServer()
{
    stop();
}

void
QompressServer::start()
{
    QFATAL_IF(running_.load(), "server already started");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    QFATAL_IF(fd < 0, "socket(): ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(fd);
        QFATAL("bad bind address '", opts_.bindAddress, "'");
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, 128) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        QFATAL("cannot listen on ", opts_.bindAddress, ":", opts_.port,
               ": ", why);
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    listenFd_.store(fd);

    stopping_.store(false);
    draining_.store(false);
    running_.store(true);
    acceptor_ = std::thread([this] { acceptLoop(); });
    workers_.reserve(static_cast<std::size_t>(opts_.workers));
    for (int w = 0; w < opts_.workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

void
QompressServer::stop()
{
    if (!running_.load())
        return;
    // Draining first: any /healthz answered while workers wind down
    // already reports the truth.
    draining_.store(true);
    stopping_.store(true);
    // Closing the listen socket unblocks the acceptor's poll/accept.
    if (const int fd = listenFd_.exchange(-1); fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    if (acceptor_.joinable())
        acceptor_.join();
    qcv_.notify_all();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    // Workers stop popping once stopping_ is set; connections still
    // queued were accepted but never served — answer them instead of
    // silently dropping the socket.
    std::deque<int> leftover;
    {
        std::lock_guard<std::mutex> lk(qmu_);
        leftover.swap(queue_);
    }
    for (const int fd : leftover) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        httpSendAll(fd, httpResponse(503,
                                     errorBody(503, "shutdown",
                                               "server is shutting down"),
                                     "application/json", false,
                                     {{"Retry-After", "1"}}));
        ::close(fd);
    }
    service_.drain();
    running_.store(false);
}

void
QompressServer::acceptLoop()
{
    while (!stopping_.load()) {
        const int lfd = listenFd_.load();
        if (lfd < 0)
            break;
        pollfd pfd{lfd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 250);
        if (stopping_.load())
            break;
        if (pr <= 0)
            continue;
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0)
            continue;
        accepted_.fetch_add(1, std::memory_order_relaxed);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        bool admitted = false;
        {
            std::lock_guard<std::mutex> lk(qmu_);
            if (queue_.size() < opts_.maxQueue) {
                queue_.push_back(fd);
                admitted = true;
            }
        }
        if (admitted) {
            qcv_.notify_one();
        } else {
            // Shed at admission: a fast structured rejection beats an
            // unbounded queue under overload.
            shed_.fetch_add(1, std::memory_order_relaxed);
            httpSendAll(fd,
                        httpResponse(503,
                                     errorBody(503, "overload",
                                               "admission queue is full"),
                                     "application/json", false,
                                     {{"Retry-After", "1"}}));
            ::close(fd);
        }
    }
}

int
QompressServer::popConnection()
{
    std::unique_lock<std::mutex> lk(qmu_);
    qcv_.wait(lk, [this] {
        return stopping_.load() || !queue_.empty();
    });
    if (stopping_.load())
        return -1; // leftovers are answered by stop()
    const int fd = queue_.front();
    queue_.pop_front();
    return fd;
}

void
QompressServer::workerLoop()
{
    while (true) {
        const int fd = popConnection();
        if (fd < 0)
            return;
        handleConnection(fd);
    }
}

void
QompressServer::handleConnection(int fd)
{
    std::string buf;
    char chunk[16384];
    bool keep = true;
    while (keep && !stopping_.load()) {
        HttpRequest req;
        int errStatus = 400;
        std::string parseErr;
        HttpParseStatus st = tryParseHttpRequest(
            buf, req, errStatus, parseErr, opts_.maxBodyBytes);
        int waitedMs = 0;
        while (st == HttpParseStatus::Incomplete) {
            if (stopping_.load())
                goto done;
            pollfd pfd{fd, POLLIN, 0};
            const int slice = 250;
            const int pr = ::poll(&pfd, 1, slice);
            if (pr < 0)
                goto done;
            if (pr == 0) {
                waitedMs += slice;
                if (waitedMs < opts_.idleTimeoutMs)
                    continue;
                // Slow client holding a partial request: 408. A quiet
                // idle keep-alive connection just closes.
                if (!buf.empty()) {
                    httpSendAll(fd, httpResponse(
                                        408,
                                        errorBody(408, "timeout",
                                                  "request not completed "
                                                  "in time"),
                                        "application/json", false));
                }
                goto done;
            }
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0)
                goto done;
            buf.append(chunk, static_cast<std::size_t>(n));
            waitedMs = 0;
            st = tryParseHttpRequest(buf, req, errStatus, parseErr,
                                     opts_.maxBodyBytes);
        }
        if (st == HttpParseStatus::Error) {
            requests_.fetch_add(1, std::memory_order_relaxed);
            clientErrors_.fetch_add(1, std::memory_order_relaxed);
            // Framing is unreliable after a malformed request: close.
            httpSendAll(fd, httpResponse(errStatus,
                                         errorBody(errStatus, "http",
                                                   parseErr),
                                         "application/json", false));
            goto done;
        }

        requests_.fetch_add(1, std::memory_order_relaxed);
        const auto t0 = Clock::now();
        const std::string resp = handleRequest(req);
        latency_.record(elapsedMs(t0) * 1000.0);
        keep = req.keepAlive();
        if (!httpSendAll(fd, resp))
            break;
    }
done:
    ::close(fd);
}

std::string
QompressServer::handleRequest(const HttpRequest &req)
{
    Reply reply;
    try {
        if (req.path == "/healthz") {
            if (req.method != "GET" && req.method != "HEAD") {
                reply = errorReply(405, "method", "use GET /healthz");
            } else if (draining_.load()) {
                // 503 so load balancers eject the instance; requests
                // already here still complete (drain, then stop()).
                reply.status = 503;
                reply.body = "{\"status\": \"draining\"}";
                reply.headers.emplace_back("Retry-After", "1");
            } else {
                // Degraded (disk tier breaker open) stays 200: memory
                // tiers serve every request, only warm restarts and
                // cross-restart reuse are impaired. The body tells
                // operators which of the two healthy states this is.
                const DiskTierState tier = service_.stats().tierState;
                reply.body = tier == DiskTierState::Degraded
                                 ? "{\"status\": \"degraded\"}"
                                 : "{\"status\": \"ok\"}";
            }
        } else if (req.path == "/metrics") {
            if (req.method != "GET")
                reply = errorReply(405, "method", "use GET /metrics");
            else
                reply.body = metricsJson();
        } else if (req.path == "/compile") {
            if (req.method != "POST" && req.method != "GET")
                reply = errorReply(405, "method",
                                   "use POST /compile (inline QASM) or "
                                   "GET /compile (registry family)");
            else
                reply.body = handleCompile(req);
        } else if (req.path == "/devices") {
            if (req.method != "GET")
                reply = errorReply(405, "method", "use GET /devices");
            else
                reply.body = devicesJson();
        } else if (req.path.rfind("/devices/", 0) == 0 &&
                   req.path.size() > 21 &&
                   req.path.compare(req.path.size() - 12, 12,
                                    "/calibration") == 0 &&
                   opts_.debugEndpoints) {
            // /devices/<name>/calibration, gated exactly like /debug:
            // with debugEndpoints off the path falls through to 404 so
            // an untrusted deployment does not even reveal it exists.
            const std::string name =
                req.path.substr(9, req.path.size() - 21);
            if (req.method != "POST") {
                reply = errorReply(
                    405, "method",
                    "use POST /devices/<name>/calibration");
            } else {
                reply.body = handleCalibration(name, req);
            }
        } else if (req.path == "/debug/sleep" && opts_.debugEndpoints) {
            if (req.method != "POST") {
                reply = errorReply(405, "method", "use POST /debug/sleep");
            } else {
                int ms = intParam(req.queryParam("ms", "100"), "ms");
                if (ms > 60000)
                    ms = 60000;
                // Sleep in slices so shutdown is not held hostage.
                for (int slept = 0; slept < ms && !stopping_.load();
                     slept += 50) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(50));
                }
                reply.body = format("{\"slept_ms\": %d}", ms);
            }
        } else {
            reply = errorReply(404, "not_found",
                               "unknown path '" + req.path + "'");
        }
    } catch (const DeadlineExceeded &e) {
        deadlineMisses_.fetch_add(1, std::memory_order_relaxed);
        reply = errorReply(504, "deadline", e.what());
    } catch (const FatalError &e) {
        // Unusable input: the 4xx class qompressd promises for every
        // FatalError the library throws (bad QASM, unknown strategy,
        // circuit that cannot fit, ...).
        reply = errorReply(400, "fatal", e.what());
    } catch (const PanicError &e) {
        reply = errorReply(500, "panic", e.what());
    } catch (const std::exception &e) {
        reply = errorReply(500, "internal", e.what());
    }

    if (reply.status >= 200 && reply.status < 300)
        ok_.fetch_add(1, std::memory_order_relaxed);
    else if (reply.status >= 400 && reply.status < 500)
        clientErrors_.fetch_add(1, std::memory_order_relaxed);
    else if (reply.status >= 500)
        serverErrors_.fetch_add(1, std::memory_order_relaxed);
    return httpResponse(reply.status, reply.body, "application/json",
                        req.keepAlive(), reply.headers);
}

std::string
QompressServer::handleCompile(const HttpRequest &req)
{
    const auto t0 = Clock::now();

    // Deadline: query beats header beats the server default. A present
    // value of 0 expires immediately; negative disables.
    double deadlineMs = opts_.defaultDeadlineMs;
    std::string dl = req.queryParam("deadline_ms", "");
    if (dl.empty()) {
        if (const auto it = req.headers.find("x-deadline-ms");
            it != req.headers.end())
            dl = it->second;
    }
    if (!dl.empty()) {
        char *end = nullptr;
        deadlineMs = std::strtod(dl.c_str(), &end);
        QFATAL_IF(end == nullptr || *end != '\0',
                  "malformed deadline_ms '", dl, "'");
    }
    const bool hasDeadline = !dl.empty() ? deadlineMs >= 0.0
                                         : opts_.defaultDeadlineMs > 0.0;

    const std::string strategy = req.queryParam("strategy", "eqm");
    const std::string topoKind = req.queryParam("topology", "grid");
    const std::string device = req.queryParam("device", "");
    const bool fullCompile = req.queryParam("full", "0") == "1";

    // Assemble the batch: one inline-QASM circuit (POST) or one
    // registry circuit per requested size (GET family batch).
    std::vector<Circuit> circuits;
    if (req.method == "POST") {
        QFATAL_IF(req.body.empty(), "empty request body (expected "
                  "an OpenQASM 2.0 program)");
        circuits.push_back(parseQasm(req.body, "request"));
    } else if (req.method == "GET") {
        const std::string family = req.queryParam("family", "");
        QFATAL_IF(family.empty(),
                  "GET /compile requires family=<name> (or POST a QASM "
                  "body)");
        const BenchmarkFamily &fam = benchmarkFamily(family);
        std::string sizes = req.queryParam("sizes", "");
        if (sizes.empty())
            sizes = req.queryParam("size", "");
        QFATAL_IF(sizes.empty(), "family request needs size=N or "
                  "sizes=N,M,...");
        for (const std::string &tok : split(sizes, ',')) {
            const int size = intParam(tok, "size");
            QFATAL_IF(size < 1 || size > kMaxFamilySize,
                      "family size ", size, " out of range [1, ",
                      kMaxFamilySize, "]");
            circuits.push_back(fam.make(size));
        }
    } else {
        QFATAL("use POST /compile (inline QASM) or GET /compile "
               "(registry family)");
    }

    std::vector<CompileRequest> reqs;
    std::vector<std::string> names;
    reqs.reserve(circuits.size());
    names.reserve(circuits.size());
    for (Circuit &c : circuits) {
        names.push_back(req.method == "POST" ? "request" : c.name());
        CompileRequest r = [&] {
            if (!device.empty()) {
                // Registered device: topology and calibration resolve
                // inside the service against the live registry.
                return CompileRequest::forDevice(std::move(c), device,
                                                 strategy);
            }
            int units = c.numQubits();
            const std::string u = req.queryParam("units", "");
            if (!u.empty())
                units = intParam(u, "units");
            Topology topo =
                makeTopology(topoKind, units, opts_.maxUnits);
            return CompileRequest::forCircuit(std::move(c),
                                              std::move(topo), strategy);
        }();
        r.fullCompile = fullCompile;
        reqs.push_back(std::move(r));
    }
    const std::size_t n = reqs.size();

    // Inline lanes (threads = 1): compile concurrency is the worker
    // pool, so one network request never fans out under another.
    std::vector<CompileHandle> handles =
        service_.submitBatch(std::move(reqs), 1);

    std::vector<std::string> rows;
    rows.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const CompileArtifact art = handles[i].get(); // may rethrow
        rows.push_back(resultJson(names[i], strategy, *art));
    }

    if (hasDeadline && elapsedMs(t0) > deadlineMs) {
        throw DeadlineExceeded(
            format("deadline of %.1f ms exceeded after %.1f ms",
                   deadlineMs, elapsedMs(t0)));
    }

    if (n == 1 && req.method == "POST")
        return rows[0];
    return "{\"results\": [" + join(rows, ", ") + "]}";
}

std::string
QompressServer::devicesJson() const
{
    std::vector<std::string> rows;
    for (const DeviceInfo &d : service_.devices().info()) {
        rows.push_back(format(
            "{\"name\": \"%s\", \"units\": %d, \"edges\": %d, "
            "\"calibrated\": %s, \"calVersion\": %llu}",
            jsonEscape(d.name).c_str(), d.units, d.edges,
            d.calibrated ? "true" : "false",
            static_cast<unsigned long long>(d.calVersion)));
    }
    return "{\"devices\": [" + join(rows, ", ") + "]}";
}

std::string
QompressServer::handleCalibration(const std::string &name,
                                  const HttpRequest &req)
{
    QFATAL_IF(req.body.empty(), "empty request body (expected a qcal "
              "calibration record)");
    DeviceCalibration cal =
        DeviceCalibration::parse(req.body, "request body");
    const std::uint64_t version =
        service_.devices().setCalibration(name, std::move(cal));
    return format("{\"device\": \"%s\", \"calVersion\": %llu}",
                  jsonEscape(name).c_str(),
                  static_cast<unsigned long long>(version));
}

ServerStats
QompressServer::stats() const
{
    ServerStats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.ok = ok_.load(std::memory_order_relaxed);
    s.clientErrors = clientErrors_.load(std::memory_order_relaxed);
    s.serverErrors = serverErrors_.load(std::memory_order_relaxed);
    s.deadlineMisses = deadlineMisses_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(qmu_);
        s.queueDepth = queue_.size();
    }
    s.latency = latency_.snapshot();
    return s;
}

std::string
QompressServer::metricsJson() const
{
    const ServerStats sv = stats();
    const ServiceStats st = service_.stats();
    // Per-device rows (name -> units/calibrated/calVersion) so a
    // scraper can watch a calibration land without a second endpoint.
    std::vector<std::string> devrows;
    for (const DeviceInfo &d : service_.devices().info()) {
        devrows.push_back(format(
            "\"%s\": {\"units\": %d, \"calibrated\": %s, "
            "\"calVersion\": %llu}",
            jsonEscape(d.name).c_str(), d.units,
            d.calibrated ? "true" : "false",
            static_cast<unsigned long long>(d.calVersion)));
    }
    const std::string devices = join(devrows, ", ");
    // Service keys mirror the ServiceStats field names verbatim so
    // scrapers (bench_loadgen --check, dashboards) match the header.
    return format(
        "{\n"
        "  \"server\": {\"accepted\": %llu, \"shed\": %llu, "
        "\"requests\": %llu, \"ok\": %llu, \"clientErrors\": %llu, "
        "\"serverErrors\": %llu, \"deadlineMisses\": %llu, "
        "\"queueDepth\": %zu, \"workers\": %d, \"maxQueue\": %zu},\n"
        "  \"latency\": {\"count\": %llu, \"mean_us\": %.1f, "
        "\"p50_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f},\n"
        "  \"service\": {\"requests\": %llu, \"hits\": %llu, "
        "\"misses\": %llu, \"coalesced\": %llu, \"evictions\": %llu, "
        "\"cacheSize\": %zu, \"cacheCapacity\": %zu, "
        "\"templateHits\": %llu, \"templateMisses\": %llu, "
        "\"templateEvictions\": %llu, \"templateSize\": %zu, "
        "\"templateCapacity\": %zu, \"diskHits\": %llu, "
        "\"diskWrites\": %llu, \"sizeEvictions\": %llu, "
        "\"bytesInUse\": %zu, \"bytesCapacity\": %zu, "
        "\"storeRecords\": %zu, \"storeBytes\": %llu, "
        "\"storeErrors\": %llu, \"degradedSkips\": %llu, "
        "\"recoveries\": %llu, \"tierState\": \"%s\", "
        "\"contextsCreated\": %llu, "
        "\"contextsReused\": %llu, \"pooledContexts\": %zu},\n"
        "  \"devices\": {%s}\n"
        "}\n",
        static_cast<unsigned long long>(sv.accepted),
        static_cast<unsigned long long>(sv.shed),
        static_cast<unsigned long long>(sv.requests),
        static_cast<unsigned long long>(sv.ok),
        static_cast<unsigned long long>(sv.clientErrors),
        static_cast<unsigned long long>(sv.serverErrors),
        static_cast<unsigned long long>(sv.deadlineMisses),
        sv.queueDepth, opts_.workers, opts_.maxQueue,
        static_cast<unsigned long long>(sv.latency.count),
        sv.latency.mean_us, sv.latency.p50_us, sv.latency.p99_us,
        sv.latency.max_us,
        static_cast<unsigned long long>(st.requests),
        static_cast<unsigned long long>(st.hits),
        static_cast<unsigned long long>(st.misses),
        static_cast<unsigned long long>(st.coalesced),
        static_cast<unsigned long long>(st.evictions), st.cacheSize,
        st.cacheCapacity,
        static_cast<unsigned long long>(st.templateHits),
        static_cast<unsigned long long>(st.templateMisses),
        static_cast<unsigned long long>(st.templateEvictions),
        st.templateSize, st.templateCapacity,
        static_cast<unsigned long long>(st.diskHits),
        static_cast<unsigned long long>(st.diskWrites),
        static_cast<unsigned long long>(st.sizeEvictions),
        st.bytesInUse, st.bytesCapacity, st.storeRecords,
        static_cast<unsigned long long>(st.storeBytes),
        static_cast<unsigned long long>(st.storeErrors),
        static_cast<unsigned long long>(st.degradedSkips),
        static_cast<unsigned long long>(st.recoveries),
        diskTierStateName(st.tierState),
        static_cast<unsigned long long>(st.contextsCreated),
        static_cast<unsigned long long>(st.contextsReused),
        st.pooledContexts, devices.c_str());
}

} // namespace qompress
