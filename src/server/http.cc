#include "server/http.hh"

#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cctype>
#include <cstring>

#include "common/strings.hh"

namespace qompress {

namespace {

/** Headers must terminate within this many bytes (431 otherwise): an
 *  attacker must not be able to grow a connection buffer without
 *  bound by never sending the blank line. */
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** %XX-decode (also '+' -> space); invalid escapes pass through. */
std::string
percentDecode(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '+') {
            out += ' ';
        } else if (s[i] == '%' && i + 2 < s.size() &&
                   std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
                   std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
            const std::string hex = s.substr(i + 1, 2);
            out += static_cast<char>(std::stoi(hex, nullptr, 16));
            i += 2;
        } else {
            out += s[i];
        }
    }
    return out;
}

std::map<std::string, std::string>
parseQuery(const std::string &qs)
{
    std::map<std::string, std::string> out;
    for (const std::string &pair : split(qs, '&')) {
        if (pair.empty())
            continue;
        const auto eq = pair.find('=');
        if (eq == std::string::npos)
            out[lower(percentDecode(pair))] = "";
        else
            out[lower(percentDecode(pair.substr(0, eq)))] =
                percentDecode(pair.substr(eq + 1));
    }
    return out;
}

/** End of the header block: offset just past the blank line, or npos.
 *  Accepts CRLF and bare-LF line endings. */
std::size_t
findHeaderEnd(const std::string &buf, std::size_t &lineSep)
{
    const auto crlf = buf.find("\r\n\r\n");
    const auto lf = buf.find("\n\n");
    if (crlf != std::string::npos &&
        (lf == std::string::npos || crlf <= lf)) {
        lineSep = 2; // "\r\n"
        return crlf + 4;
    }
    if (lf != std::string::npos) {
        lineSep = 1; // "\n"
        return lf + 2;
    }
    return std::string::npos;
}

} // namespace

const std::string &
HttpRequest::queryParam(const std::string &key,
                        const std::string &fallback) const
{
    const auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
}

bool
HttpRequest::keepAlive() const
{
    const auto it = headers.find("connection");
    if (it == headers.end())
        return true; // HTTP/1.1 default
    return lower(it->second) != "close";
}

HttpParseStatus
tryParseHttpRequest(std::string &buffer, HttpRequest &out,
                    int &errorStatus, std::string &error,
                    std::size_t maxBody)
{
    std::size_t sep = 2;
    const std::size_t headerEnd = findHeaderEnd(buffer, sep);
    if (headerEnd == std::string::npos) {
        if (buffer.size() > kMaxHeaderBytes) {
            errorStatus = 431;
            error = "header block exceeds " +
                    std::to_string(kMaxHeaderBytes) + " bytes";
            return HttpParseStatus::Error;
        }
        return HttpParseStatus::Incomplete;
    }

    out = HttpRequest{};

    // Request line.
    const char *nl = sep == 2 ? "\r\n" : "\n";
    std::size_t lineEnd = buffer.find(nl);
    const std::string reqLine = buffer.substr(0, lineEnd);
    const auto sp1 = reqLine.find(' ');
    const auto sp2 =
        sp1 == std::string::npos ? sp1 : reqLine.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        sp1 == 0 || sp2 == sp1 + 1) {
        errorStatus = 400;
        error = "malformed request line";
        return HttpParseStatus::Error;
    }
    out.method = reqLine.substr(0, sp1);
    std::string target = reqLine.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = reqLine.substr(sp2 + 1);
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
        errorStatus = 505;
        error = "unsupported protocol version '" + version + "'";
        return HttpParseStatus::Error;
    }
    const auto qmark = target.find('?');
    if (qmark == std::string::npos) {
        out.path = percentDecode(target);
    } else {
        out.path = percentDecode(target.substr(0, qmark));
        out.query = parseQuery(target.substr(qmark + 1));
    }

    // Header fields.
    std::size_t pos = lineEnd + sep;
    while (pos + sep <= headerEnd) {
        lineEnd = buffer.find(nl, pos);
        if (lineEnd == pos)
            break; // blank line
        const std::string line = buffer.substr(pos, lineEnd - pos);
        pos = lineEnd + sep;
        if (std::isspace(static_cast<unsigned char>(line[0]))) {
            errorStatus = 400;
            error = "obsolete header folding is not accepted";
            return HttpParseStatus::Error;
        }
        const auto colon = line.find(':');
        if (colon == std::string::npos || colon == 0) {
            errorStatus = 400;
            error = "malformed header line";
            return HttpParseStatus::Error;
        }
        std::string value = line.substr(colon + 1);
        std::size_t b = 0, e = value.size();
        while (b < e && std::isspace(static_cast<unsigned char>(value[b])))
            ++b;
        while (e > b &&
               std::isspace(static_cast<unsigned char>(value[e - 1])))
            --e;
        out.headers[lower(line.substr(0, colon))] = value.substr(b, e - b);
    }

    if (out.headers.count("transfer-encoding")) {
        errorStatus = 501;
        error = "transfer-encoding is not supported (use Content-Length)";
        return HttpParseStatus::Error;
    }

    std::size_t bodyLen = 0;
    if (const auto it = out.headers.find("content-length");
        it != out.headers.end()) {
        const std::string &v = it->second;
        if (v.empty() ||
            v.find_first_not_of("0123456789") != std::string::npos ||
            v.size() > 9) {
            errorStatus = 400;
            error = "malformed Content-Length";
            return HttpParseStatus::Error;
        }
        bodyLen = static_cast<std::size_t>(std::stoul(v));
        if (bodyLen > maxBody) {
            errorStatus = 413;
            error = "body exceeds " + std::to_string(maxBody) + " bytes";
            return HttpParseStatus::Error;
        }
    }
    if (buffer.size() < headerEnd + bodyLen)
        return HttpParseStatus::Incomplete;

    out.body = buffer.substr(headerEnd, bodyLen);
    buffer.erase(0, headerEnd + bodyLen);
    return HttpParseStatus::Complete;
}

const char *
httpStatusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      case 504: return "Gateway Timeout";
      case 505: return "HTTP Version Not Supported";
      default:  return "Unknown";
    }
}

std::string
httpResponse(
    int status, const std::string &body, const std::string &contentType,
    bool keepAlive,
    const std::vector<std::pair<std::string, std::string>> &extraHeaders)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                      httpStatusReason(status) + "\r\n";
    out += "Content-Type: " + contentType + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += std::string("Connection: ") +
           (keepAlive ? "keep-alive" : "close") + "\r\n";
    for (const auto &[k, v] : extraHeaders)
        out += k + ": " + v + "\r\n";
    out += "\r\n";
    out += body;
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

// ------------------------------------------------------------------
// Client helpers
// ------------------------------------------------------------------

int
httpConnect(const std::string &host, int port)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    if (getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0 ||
        res == nullptr) {
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    return fd;
}

bool
httpSendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
httpReadResponse(int fd, std::string &leftover, int &status,
                 std::string &body, int timeoutMs)
{
    std::map<std::string, std::string> headers;
    return httpReadResponse(fd, leftover, status, headers, body,
                            timeoutMs);
}

bool
httpReadResponse(int fd, std::string &leftover, int &status,
                 std::map<std::string, std::string> &headers,
                 std::string &body, int timeoutMs)
{
    status = 0;
    headers.clear();
    body.clear();
    char chunk[8192];
    while (true) {
        // A complete response already buffered?
        std::size_t sep = 2;
        const std::size_t headerEnd = findHeaderEnd(leftover, sep);
        if (headerEnd != std::string::npos) {
            const std::string head = leftover.substr(0, headerEnd);
            if (head.size() < 12 || head.compare(0, 5, "HTTP/") != 0)
                return false;
            status = std::atoi(head.c_str() + 9);
            std::size_t bodyLen = 0;
            const std::string lhead = lower(head);
            if (const auto cl = lhead.find("content-length:");
                cl != std::string::npos) {
                bodyLen = static_cast<std::size_t>(
                    std::atol(head.c_str() + cl + 15));
            }
            // Header lines after the status line, lower-cased names,
            // surrounding whitespace trimmed from values.
            headers.clear();
            std::size_t ls = head.find('\n');
            while (ls != std::string::npos && ls + 1 < head.size()) {
                const std::size_t le = head.find('\n', ls + 1);
                std::string line = head.substr(
                    ls + 1,
                    (le == std::string::npos ? head.size() : le) - ls - 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                if (const auto colon = line.find(':');
                    colon != std::string::npos) {
                    std::size_t v = colon + 1;
                    while (v < line.size() &&
                           (line[v] == ' ' || line[v] == '\t'))
                        ++v;
                    std::size_t e = line.size();
                    while (e > v &&
                           (line[e - 1] == ' ' || line[e - 1] == '\t'))
                        --e;
                    headers[lower(line.substr(0, colon))] =
                        line.substr(v, e - v);
                }
                ls = le;
            }
            if (leftover.size() >= headerEnd + bodyLen) {
                body = leftover.substr(headerEnd, bodyLen);
                leftover.erase(0, headerEnd + bodyLen);
                return true;
            }
        }
        pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, timeoutMs);
        if (pr <= 0)
            return false;
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return false;
        leftover.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace qompress
