/**
 * @file
 * qompressd: the network edge in front of CompilerService.
 *
 * QompressServer owns a listening TCP socket, one acceptor thread,
 * and a fixed pool of connection workers. The acceptor performs
 * admission control: accepted connections go into a bounded queue and
 * are shed with an immediate 503 (plus Retry-After) when the queue is
 * full — overload degrades to fast rejections, never to unbounded
 * memory or latency. Workers speak the HTTP/1.1 subset in
 * server/http.hh (keep-alive, Content-Length framing) and run
 * compiles inline through CompilerService::submitBatch, so the memo
 * tier, template tier, and context pool carry all network traffic and
 * compile concurrency equals the worker count.
 *
 * Endpoints:
 *   POST /compile            body = OpenQASM 2.0; query: strategy,
 *                            topology (grid|heavyhex|ring|line) OR
 *                            device=<registered name> (registry
 *                            topology + current calibration),
 *                            units, full (1 = bypass template tier),
 *                            deadline_ms
 *   GET  /compile            query: family, size or sizes=csv (batch),
 *                            plus the same knobs as POST
 *   GET  /devices            the device registry: units/edges/
 *                            calibrated/calVersion per device
 *   POST /devices/<name>/calibration
 *                            body = qcal text (arch/device.hh); only
 *                            with ServerOptions::debugEndpoints (404
 *                            otherwise, exactly like /debug/sleep).
 *                            Bumps the device's calVersion and re-keys
 *                            every subsequent compile against it --
 *                            the cache-invalidation path the smoke
 *                            test drives over the wire
 *   GET  /metrics            server counters + latency histogram +
 *                            the full ServiceStats snapshot + the
 *                            device registry, as JSON
 *   GET  /healthz            health probe; body {"status": "..."} is
 *                            "ok" (fully healthy), "degraded" (disk
 *                            tier circuit breaker open, memory tiers
 *                            still serving; still 200) or "draining"
 *                            (503 + Retry-After: shutdown has begun,
 *                            stop sending traffic)
 *   POST /debug/sleep?ms=N   only with ServerOptions::debugEndpoints;
 *                            occupies a worker (overload testing)
 *
 * Error taxonomy -> status code (the contract tests pin this):
 *   FatalError (bad QASM, unknown strategy/family/topology,
 *   circuit does not fit)                          -> 400
 *   malformed HTTP                                 -> 400/413/431/505
 *   unknown path / wrong method                    -> 404 / 405
 *   admission queue full                           -> 503
 *   deadline exceeded (see below)                  -> 504
 *   PanicError / unexpected exception              -> 500
 * Every error body is structured JSON:
 *   {"error": {"status": N, "type": "...", "message": "..."}}.
 *
 * Deadlines: deadline_ms (query or X-Deadline-Ms header) bounds
 * parse+compile wall time. Compiles are not cancelled mid-flight; a
 * request whose work finishes past its deadline gets a 504 and the
 * artifact still warms the caches. deadline_ms=0 expires immediately
 * (a deterministic 504, used by tests); absent or negative = none.
 *
 * Shutdown: stop() closes the listen socket, answers every
 * still-queued connection with 503, lets in-flight requests finish
 * and deliver their responses, then drains the CompilerService. The
 * destructor calls stop().
 */

#ifndef QOMPRESS_SERVER_SERVER_HH
#define QOMPRESS_SERVER_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "server/histogram.hh"
#include "server/http.hh"
#include "service/compiler_service.hh"

namespace qompress {

/** A request whose work finished past its deadline (mapped to 504).
 *  Distinct from FatalError: the input was fine, the time budget was
 *  not, and the computed artifact still warmed the caches. */
class DeadlineExceeded : public std::runtime_error
{
  public:
    explicit DeadlineExceeded(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Construction knobs for the network edge. */
struct ServerOptions
{
    /** TCP port; 0 binds an ephemeral port (read it back via port()). */
    int port = 0;

    std::string bindAddress = "127.0.0.1";

    /** Connection workers == max concurrent compiles. */
    int workers = 4;

    /** Accepted-connection admission queue bound; a connection
     *  arriving while `maxQueue` others wait is shed with 503. */
    std::size_t maxQueue = 64;

    /** Request body cap (the QASM program), bytes. */
    std::size_t maxBodyBytes = 4 * 1024 * 1024;

    /** Per-connection idle / slow-client read timeout. */
    int idleTimeoutMs = 5000;

    /** Server-wide deadline applied when a request names none;
     *  <= 0 = unlimited. */
    double defaultDeadlineMs = 0.0;

    /** Largest topology the server will build for a request. */
    int maxUnits = 1024;

    /** Enable POST /debug/sleep and POST /devices/<name>/calibration
     *  (tests, load experiments, and trusted operators only). */
    bool debugEndpoints = false;

    /** Knobs for the owned CompilerService. */
    ServiceOptions service;
};

/** Monotonic server counters plus a latency snapshot. */
struct ServerStats
{
    std::uint64_t accepted = 0;    ///< connections taken off the socket
    std::uint64_t shed = 0;        ///< connections 503'd at admission
    std::uint64_t requests = 0;    ///< HTTP requests parsed
    std::uint64_t ok = 0;          ///< 2xx responses
    std::uint64_t clientErrors = 0; ///< 4xx responses
    std::uint64_t serverErrors = 0; ///< 5xx responses (excluding shed 503s)
    std::uint64_t deadlineMisses = 0; ///< 504s (also counted in serverErrors)
    std::size_t queueDepth = 0;    ///< connections waiting right now
    LatencyHistogram::Snapshot latency; ///< per-request service time
};

/** See the file comment. */
class QompressServer
{
  public:
    explicit QompressServer(ServerOptions opts = {});
    ~QompressServer();

    QompressServer(const QompressServer &) = delete;
    QompressServer &operator=(const QompressServer &) = delete;

    /** Bind, listen, and spawn the acceptor + workers. Throws
     *  FatalError when the address cannot be bound. */
    void start();

    /** Graceful shutdown (idempotent; see the file comment). Implies
     *  beginDrain(), so /healthz flips to draining the moment stop()
     *  starts, before any worker is joined. */
    void stop();

    /**
     * Flip /healthz to "draining" (503) without stopping anything:
     * load balancers see the signal and bleed traffic away while
     * in-flight and newly arriving requests still complete. Call it
     * a grace period before stop() for zero-error rolling restarts.
     */
    void beginDrain() { draining_.store(true); }

    bool draining() const { return draining_.load(); }

    /** The bound port (after start()). */
    int port() const { return port_; }

    bool running() const { return running_.load(); }

    ServerStats stats() const;

    /** The owned service (its stats feed /metrics). */
    CompilerService &service() { return service_; }

    /** One /metrics JSON document (also what GET /metrics returns). */
    std::string metricsJson() const;

  private:
    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);

    /** Route one parsed request; returns the serialized response. */
    std::string handleRequest(const HttpRequest &req);

    std::string handleCompile(const HttpRequest &req);

    /** GET /devices listing body. */
    std::string devicesJson() const;

    /** POST /devices/<name>/calibration: parse the qcal body, install
     *  it, return {"device", "calVersion"}. */
    std::string handleCalibration(const std::string &name,
                                  const HttpRequest &req);

    /** Pop the next queued connection; -1 when stopping. */
    int popConnection();

    ServerOptions opts_;
    CompilerService service_;

    /** Atomic: the acceptor polls it while stop() claims and closes
     *  it (exchange to -1), so the two never race on the fd value. */
    std::atomic<int> listenFd_{-1};
    int port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> draining_{false};

    std::thread acceptor_;
    std::vector<std::thread> workers_;

    mutable std::mutex qmu_;
    std::condition_variable qcv_;
    std::deque<int> queue_; ///< accepted fds awaiting a worker

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> ok_{0};
    std::atomic<std::uint64_t> clientErrors_{0};
    std::atomic<std::uint64_t> serverErrors_{0};
    std::atomic<std::uint64_t> deadlineMisses_{0};
    LatencyHistogram latency_;
};

} // namespace qompress

#endif // QOMPRESS_SERVER_SERVER_HH
