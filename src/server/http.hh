/**
 * @file
 * Dependency-free HTTP/1.1 plumbing for qompressd and its clients.
 *
 * Server side: an incremental request parser that consumes one
 * complete request (request line, headers, Content-Length body) from
 * the front of a receive buffer, plus a response serializer. The
 * parser is deliberately strict about what it accepts — it fronts
 * untrusted network input — and every rejection carries the HTTP
 * status the connection handler should answer with (400 malformed,
 * 413 oversized body, 505 wrong version).
 *
 * Client side: tiny blocking helpers (connect, send-all, read one
 * response) shared by bench_loadgen and tests/test_server.cc so both
 * speak the exact same dialect as the server.
 *
 * Supported subset: GET/POST, header folding rejected, no chunked
 * transfer encoding (Content-Length only), keep-alive per HTTP/1.1
 * defaults (persistent unless "Connection: close").
 */

#ifndef QOMPRESS_SERVER_HTTP_HH
#define QOMPRESS_SERVER_HTTP_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace qompress {

/** One parsed request. Header names and query keys are lower-cased;
 *  query values are percent-decoded. */
struct HttpRequest
{
    std::string method;
    std::string path; ///< target up to '?'
    std::map<std::string, std::string> query;
    std::map<std::string, std::string> headers;
    std::string body;

    /** Query parameter by (lower-case) key, or @p fallback. */
    const std::string &queryParam(const std::string &key,
                                  const std::string &fallback = "") const;

    /** True when the client allows response reuse of the connection. */
    bool keepAlive() const;
};

/** tryParseHttpRequest outcome. */
enum class HttpParseStatus
{
    Complete,   ///< one request consumed from the buffer into `out`
    Incomplete, ///< need more bytes; buffer untouched
    Error,      ///< malformed; answer `errorStatus` and close
};

/**
 * Consume one complete request from the front of @p buffer.
 *
 * On Complete the request's bytes are erased from @p buffer (pipelined
 * followers stay queued). On Error, @p errorStatus and @p error
 * describe the rejection. Bodies larger than @p maxBody are rejected
 * with 413 — before buffering the body, so an attacker cannot make
 * the server hold more than maxBody + header bytes per connection.
 */
HttpParseStatus tryParseHttpRequest(std::string &buffer, HttpRequest &out,
                                    int &errorStatus, std::string &error,
                                    std::size_t maxBody);

/** Serialize a response (Content-Length framing, JSON by default). */
std::string httpResponse(
    int status, const std::string &body,
    const std::string &contentType = "application/json",
    bool keepAlive = true,
    const std::vector<std::pair<std::string, std::string>> &extraHeaders =
        {});

/** Canonical reason phrase ("OK", "Bad Request", ...). */
const char *httpStatusReason(int status);

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string jsonEscape(const std::string &s);

/** @name Client helpers (blocking, IPv4) @{ */

/** Connect to host:port; returns the fd or -1 (errno left set). */
int httpConnect(const std::string &host, int port);

/** Write the whole buffer; false on error/EPIPE. */
bool httpSendAll(int fd, const std::string &data);

/**
 * Read one response off @p fd (status line + headers + Content-Length
 * body). Returns false on EOF/timeout/garbage. @p leftover carries
 * bytes of a following pipelined response between calls.
 */
bool httpReadResponse(int fd, std::string &leftover, int &status,
                      std::string &body, int timeoutMs = 30000);

/** Same, but also surfaces the response headers (names lower-cased)
 *  so clients can honor Retry-After and friends. */
bool httpReadResponse(int fd, std::string &leftover, int &status,
                      std::map<std::string, std::string> &headers,
                      std::string &body, int timeoutMs = 30000);
/** @} */

} // namespace qompress

#endif // QOMPRESS_SERVER_HTTP_HH
