#include "ir/fingerprint.hh"

#include <cstdio>
#include <cstdlib>

namespace qompress {

std::uint64_t
circuitFingerprint(const Circuit &c)
{
    Fingerprinter fp;
    fp.mixI32(c.numQubits());
    fp.mixString(c.name());
    fp.mixU64(static_cast<std::uint64_t>(c.numGates()));
    for (const Gate &g : c.gates()) {
        fp.mixI32(static_cast<std::int32_t>(g.type));
        fp.mixI32(g.arity());
        for (QubitId q : g.qubits)
            fp.mixI32(q);
        fp.mixDouble(g.param);
    }
    return fp.value();
}

StructuralFingerprint
structuralCircuitFingerprint(const Circuit &c)
{
    StructuralFingerprint out;
    Fingerprinter fp;
    fp.mixI32(c.numQubits());
    fp.mixU64(static_cast<std::uint64_t>(c.numGates()));
    int gi = 0;
    for (const Gate &g : c.gates()) {
        fp.mixI32(static_cast<std::int32_t>(g.type));
        fp.mixI32(g.arity());
        for (QubitId q : g.qubits)
            fp.mixI32(q);
        // Parameter VALUES are deliberately not mixed; whether a slot
        // exists at this position is structural, so mix that bit.
        const bool hasParam = gateHasParam(g.type);
        fp.mixI32(hasParam ? 1 : 0);
        if (hasParam)
            out.paramGates.push_back(gi);
        ++gi;
    }
    out.value = fp.value();
    return out;
}

double
canonicalQasmParam(double v)
{
    // Mirror Circuit::toQasm's parameter formatting (%.12g) exactly,
    // then reparse: the result is the double parseQasm will produce.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return std::strtod(buf, nullptr);
}

} // namespace qompress
