#include "ir/fingerprint.hh"

namespace qompress {

std::uint64_t
circuitFingerprint(const Circuit &c)
{
    Fingerprinter fp;
    fp.mixI32(c.numQubits());
    fp.mixString(c.name());
    fp.mixU64(static_cast<std::uint64_t>(c.numGates()));
    for (const Gate &g : c.gates()) {
        fp.mixI32(static_cast<std::int32_t>(g.type));
        fp.mixI32(g.arity());
        for (QubitId q : g.qubits)
            fp.mixI32(q);
        fp.mixDouble(g.param);
    }
    return fp.value();
}

} // namespace qompress
