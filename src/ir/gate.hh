/**
 * @file
 * Logical gate vocabulary for input (qubit-level) circuits.
 *
 * The compiler front end accepts the gate set the paper's benchmarks use:
 * common 1-qubit gates, CX/CZ/SWAP, and the Toffoli (CCX) which is
 * lowered by decomposeToNativeGates() before mapping.
 */

#ifndef QOMPRESS_IR_GATE_HH
#define QOMPRESS_IR_GATE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace qompress {

/** Logical gate kinds. */
enum class GateType
{
    X, Y, Z, H, S, Sdg, T, Tdg,   // fixed 1-qubit
    RX, RY, RZ,                   // parameterized 1-qubit
    CX, CZ, Swap,                 // 2-qubit
    CCX,                          // 3-qubit (decomposed before compile)
};

/** Number of operands for a gate type. */
int gateArity(GateType t);

/** True for the parameterized rotations RX/RY/RZ. */
bool gateHasParam(GateType t);

/** Lower-case mnemonic ("cx", "rz", ...). */
const std::string &gateName(GateType t);

/** A logical gate application: type, operand qubits, optional angle. */
struct Gate
{
    GateType type;
    std::vector<QubitId> qubits;
    double param = 0.0;

    /** Operand count convenience. */
    int arity() const { return static_cast<int>(qubits.size()); }

    /** True iff the gate touches @p q. */
    bool actsOn(QubitId q) const;

    /** "cx q3, q7" style rendering. */
    std::string str() const;
};

} // namespace qompress

#endif // QOMPRESS_IR_GATE_HH
