/**
 * @file
 * Circuit-to-circuit lowering passes run before mapping.
 */

#ifndef QOMPRESS_IR_PASSES_HH
#define QOMPRESS_IR_PASSES_HH

#include "ir/circuit.hh"

namespace qompress {

/**
 * Lower every gate to the compiler's native set: 1-qubit gates plus
 * CX and SWAP.
 *
 * CCX uses the standard 6-CX Clifford+T decomposition; CZ becomes
 * H-CX-H on the target. Other gates pass through unchanged.
 */
Circuit decomposeToNativeGates(const Circuit &in);

/** True iff the circuit contains only 1-qubit gates, CX, and SWAP. */
bool isNative(const Circuit &in);

/**
 * Drop trivially cancelling adjacent self-inverse pairs (X-X, H-H,
 * CX-CX on identical operands with no interposed gate on either qubit).
 * A light cleanup pass used by tests and examples.
 */
Circuit cancelAdjacentPairs(const Circuit &in);

/**
 * Merge adjacent same-axis rotations (RZ a; RZ b -> RZ a+b, same for
 * RX/RY) and drop rotations that reduce to identity modulo 2 pi.
 */
Circuit mergeRotations(const Circuit &in);

/** Replace every SWAP with the canonical three-CX expansion. */
Circuit decomposeSwaps(const Circuit &in);

/**
 * Fixpoint cleanup: cancelAdjacentPairs + mergeRotations until the
 * gate count stops shrinking.
 */
Circuit optimizeCircuit(const Circuit &in);

} // namespace qompress

#endif // QOMPRESS_IR_PASSES_HH
