/**
 * @file
 * Circuit-to-circuit lowering passes run before mapping.
 */

#ifndef QOMPRESS_IR_PASSES_HH
#define QOMPRESS_IR_PASSES_HH

#include "ir/circuit.hh"

namespace qompress {

/**
 * Lower every gate to the compiler's native set: 1-qubit gates plus
 * CX and SWAP.
 *
 * CCX uses the standard 6-CX Clifford+T decomposition; CZ becomes
 * H-CX-H on the target. Other gates pass through unchanged.
 */
Circuit decomposeToNativeGates(const Circuit &in);

/** True iff the circuit contains only 1-qubit gates, CX, and SWAP. */
bool isNative(const Circuit &in);

/**
 * Drop trivially cancelling adjacent self-inverse pairs (X-X, H-H,
 * CX-CX on identical operands with no interposed gate on either qubit).
 * A light cleanup pass used by tests and examples.
 */
Circuit cancelAdjacentPairs(const Circuit &in);

/**
 * Merge adjacent same-axis rotations (RZ a; RZ b -> RZ a+b, same for
 * RX/RY) and drop rotations that reduce to identity modulo 2 pi.
 */
Circuit mergeRotations(const Circuit &in);

/** Replace every SWAP with the canonical three-CX expansion. */
Circuit decomposeSwaps(const Circuit &in);

/**
 * Rebind the circuit's rotation angles positionally: the k-th
 * parameterized gate (program order) gets values[k % values.size()],
 * cycling when the circuit exposes more slots than values. Structure,
 * operands, and name are untouched, so the result shares the input's
 * structural fingerprint -- this is how parameterized sweeps
 * materialize instances that hit the service's template tier. Panics
 * on an empty values vector.
 */
Circuit bindParams(const Circuit &in, const std::vector<double> &values);

/**
 * Fixpoint cleanup: cancelAdjacentPairs + mergeRotations until the
 * gate count stops shrinking.
 */
Circuit optimizeCircuit(const Circuit &in);

} // namespace qompress

#endif // QOMPRESS_IR_PASSES_HH
