/**
 * @file
 * Logical circuit container plus dependency analysis (ASAP layering),
 * the paper's timestep function s(o), and a QASM-style dump.
 */

#ifndef QOMPRESS_IR_CIRCUIT_HH
#define QOMPRESS_IR_CIRCUIT_HH

#include <string>
#include <vector>

#include "ir/gate.hh"

namespace qompress {

/**
 * An ordered list of logical gates over n qubits.
 *
 * Order is program order; dependency structure (two gates conflict iff
 * they share an operand) is derived on demand.
 */
class Circuit
{
  public:
    /** An empty circuit over @p num_qubits qubits. */
    explicit Circuit(int num_qubits = 0, std::string name = "circuit");

    int numQubits() const { return numQubits_; }
    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    const std::vector<Gate> &gates() const { return gates_; }
    int numGates() const { return static_cast<int>(gates_.size()); }

    /** Append a validated gate. */
    void add(Gate g);

    /** @name Gate builders
     *  Convenience factories mirroring common circuit APIs. @{ */
    void x(QubitId q)  { add({GateType::X, {q}}); }
    void y(QubitId q)  { add({GateType::Y, {q}}); }
    void z(QubitId q)  { add({GateType::Z, {q}}); }
    void h(QubitId q)  { add({GateType::H, {q}}); }
    void s(QubitId q)  { add({GateType::S, {q}}); }
    void sdg(QubitId q) { add({GateType::Sdg, {q}}); }
    void t(QubitId q)  { add({GateType::T, {q}}); }
    void tdg(QubitId q) { add({GateType::Tdg, {q}}); }
    void rx(double a, QubitId q) { add({GateType::RX, {q}, a}); }
    void ry(double a, QubitId q) { add({GateType::RY, {q}, a}); }
    void rz(double a, QubitId q) { add({GateType::RZ, {q}, a}); }
    void cx(QubitId c, QubitId t) { add({GateType::CX, {c, t}}); }
    void cz(QubitId a, QubitId b) { add({GateType::CZ, {a, b}}); }
    void swap(QubitId a, QubitId b) { add({GateType::Swap, {a, b}}); }
    void ccx(QubitId a, QubitId b, QubitId t)
    {
        add({GateType::CCX, {a, b, t}});
    }
    /** @} */

    /** Append all gates of @p other (qubit counts must match). */
    void append(const Circuit &other);

    /** Count gates with a given operand count. */
    int countGatesWithArity(int arity) const;

    /** Number of two-qubit gates. */
    int numTwoQubitGates() const { return countGatesWithArity(2); }

    /**
     * ASAP layer per gate, 1-based.
     *
     * This is the paper's timestep function s(o): the earliest dependency
     * level of each gate when every gate takes one step. Used by the
     * interaction weight w(i,j) = sum over gates 1/s(o).
     */
    std::vector<int> asapLayers() const;

    /** Number of ASAP layers (logical depth). */
    int depth() const;

    /** Greatest operand id used plus one (<= numQubits()). */
    int highestUsedQubit() const;

    /** OpenQASM 2.0-flavoured text dump. */
    std::string toQasm() const;

  private:
    int numQubits_;
    std::string name_;
    std::vector<Gate> gates_;
};

} // namespace qompress

#endif // QOMPRESS_IR_CIRCUIT_HH
