#include "ir/passes.hh"

#include <cmath>
#include <optional>

#include "common/error.hh"

namespace qompress {

namespace {

void
emitCcx(Circuit &out, QubitId a, QubitId b, QubitId t)
{
    // Standard Clifford+T construction (Nielsen & Chuang fig. 4.9).
    out.h(t);
    out.cx(b, t);
    out.tdg(t);
    out.cx(a, t);
    out.t(t);
    out.cx(b, t);
    out.tdg(t);
    out.cx(a, t);
    out.t(b);
    out.t(t);
    out.h(t);
    out.cx(a, b);
    out.t(a);
    out.tdg(b);
    out.cx(a, b);
}

} // namespace

Circuit
decomposeToNativeGates(const Circuit &in)
{
    Circuit out(in.numQubits(), in.name());
    for (const auto &g : in.gates()) {
        switch (g.type) {
          case GateType::CCX:
            emitCcx(out, g.qubits[0], g.qubits[1], g.qubits[2]);
            break;
          case GateType::CZ:
            out.h(g.qubits[1]);
            out.cx(g.qubits[0], g.qubits[1]);
            out.h(g.qubits[1]);
            break;
          default:
            out.add(g);
            break;
        }
    }
    return out;
}

bool
isNative(const Circuit &in)
{
    for (const auto &g : in.gates()) {
        if (g.arity() == 1)
            continue;
        if (g.type == GateType::CX || g.type == GateType::Swap)
            continue;
        return false;
    }
    return true;
}

Circuit
cancelAdjacentPairs(const Circuit &in)
{
    auto self_inverse = [](GateType t) {
        switch (t) {
          case GateType::X:
          case GateType::Y:
          case GateType::Z:
          case GateType::H:
          case GateType::CX:
          case GateType::CZ:
          case GateType::Swap:
            return true;
          default:
            return false;
        }
    };

    const auto &gates = in.gates();
    std::vector<bool> removed(gates.size(), false);
    // lastGate[q]: index of the most recent surviving gate touching q.
    std::vector<std::optional<std::size_t>> last(in.numQubits());
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        std::optional<std::size_t> prev;
        bool same_prev = true;
        for (QubitId q : g.qubits) {
            if (!last[q]) {
                same_prev = false;
                break;
            }
            if (!prev) {
                prev = last[q];
            } else if (*prev != *last[q]) {
                same_prev = false;
                break;
            }
        }
        if (same_prev && prev && self_inverse(g.type) &&
            gates[*prev].type == g.type &&
            gates[*prev].qubits == g.qubits) {
            removed[i] = true;
            removed[*prev] = true;
            // Re-expose whatever preceded the cancelled pair: simplest
            // sound choice is to clear tracking for the touched qubits.
            for (QubitId q : g.qubits)
                last[q].reset();
            continue;
        }
        for (QubitId q : g.qubits)
            last[q] = i;
    }

    Circuit out(in.numQubits(), in.name());
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (!removed[i])
            out.add(gates[i]);
    }
    return out;
}

Circuit
mergeRotations(const Circuit &in)
{
    auto is_rotation = [](GateType t) {
        return t == GateType::RX || t == GateType::RY ||
               t == GateType::RZ;
    };
    constexpr double kTwoPi = 2.0 * M_PI;
    constexpr double kEps = 1e-12;

    Circuit out(in.numQubits(), in.name());
    // Pending rotation per qubit, flushed when anything else touches
    // the qubit.
    std::vector<std::optional<Gate>> pending(in.numQubits());
    auto flush = [&](QubitId q) {
        if (!pending[q])
            return;
        double angle = std::fmod(pending[q]->param, kTwoPi);
        if (std::abs(angle) > kEps &&
            std::abs(std::abs(angle) - kTwoPi) > kEps) {
            Gate g = *pending[q];
            g.param = angle;
            out.add(std::move(g));
        }
        pending[q].reset();
    };

    for (const auto &g : in.gates()) {
        if (g.arity() == 1 && is_rotation(g.type)) {
            const QubitId q = g.qubits[0];
            if (pending[q] && pending[q]->type == g.type) {
                pending[q]->param += g.param;
            } else {
                flush(q);
                pending[q] = g;
            }
            continue;
        }
        for (QubitId q : g.qubits)
            flush(q);
        out.add(g);
    }
    for (QubitId q = 0; q < in.numQubits(); ++q)
        flush(q);
    return out;
}

Circuit
decomposeSwaps(const Circuit &in)
{
    Circuit out(in.numQubits(), in.name());
    for (const auto &g : in.gates()) {
        if (g.type == GateType::Swap) {
            out.cx(g.qubits[0], g.qubits[1]);
            out.cx(g.qubits[1], g.qubits[0]);
            out.cx(g.qubits[0], g.qubits[1]);
        } else {
            out.add(g);
        }
    }
    return out;
}

Circuit
bindParams(const Circuit &in, const std::vector<double> &values)
{
    QPANIC_IF(values.empty(), "bindParams: empty value vector");
    Circuit out(in.numQubits(), in.name());
    std::size_t k = 0;
    for (const auto &g : in.gates()) {
        Gate ng = g;
        if (gateHasParam(g.type))
            ng.param = values[k++ % values.size()];
        out.add(ng);
    }
    return out;
}

Circuit
optimizeCircuit(const Circuit &in)
{
    Circuit cur = in;
    while (true) {
        Circuit next = mergeRotations(cancelAdjacentPairs(cur));
        if (next.numGates() >= cur.numGates())
            return cur;
        cur = std::move(next);
    }
}

} // namespace qompress
