#include "ir/interaction.hh"

#include <algorithm>
#include <map>

#include "common/error.hh"

namespace qompress {

InteractionModel::InteractionModel(const Circuit &c)
    : n_(c.numQubits()), graph_(c.numQubits()),
      pairCount_(c.numQubits(), std::vector<int>(c.numQubits(), 0)),
      simulUse_(c.numQubits(), std::vector<int>(c.numQubits(), 0))
{
    const auto layers = c.asapLayers();
    // layerGate[q] per layer: which gate index occupies qubit q.
    std::map<int, std::vector<std::pair<QubitId, int>>> layer_use;

    const auto &gates = c.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        for (QubitId q : g.qubits)
            layer_use[layers[i]].push_back({q, static_cast<int>(i)});
        if (g.arity() < 2)
            continue;
        const double contrib = 1.0 / static_cast<double>(layers[i]);
        for (int a = 0; a < g.arity(); ++a) {
            for (int b = a + 1; b < g.arity(); ++b) {
                const QubitId i0 = g.qubits[a];
                const QubitId j0 = g.qubits[b];
                graph_.bumpEdgeWeight(i0, j0, contrib);
                ++pairCount_[i0][j0];
                ++pairCount_[j0][i0];
            }
        }
    }

    // Simultaneity: pairs of qubits busy in the same layer but in
    // different gates.
    for (const auto &[layer, uses] : layer_use) {
        (void)layer;
        for (std::size_t a = 0; a < uses.size(); ++a) {
            for (std::size_t b = a + 1; b < uses.size(); ++b) {
                if (uses[a].second == uses[b].second)
                    continue;
                const QubitId qa = uses[a].first;
                const QubitId qb = uses[b].first;
                ++simulUse_[qa][qb];
                ++simulUse_[qb][qa];
            }
        }
    }
}

double
InteractionModel::weight(QubitId i, QubitId j) const
{
    return graph_.hasEdge(i, j) ? graph_.edgeWeight(i, j) : 0.0;
}

double
InteractionModel::totalWeight(QubitId i) const
{
    double sum = 0.0;
    for (const auto &e : graph_.neighbors(i))
        sum += e.weight;
    return sum;
}

int
InteractionModel::pairGateCount(QubitId i, QubitId j) const
{
    QPANIC_IF(i < 0 || i >= n_ || j < 0 || j >= n_,
              "pairGateCount: bad qubits ", i, ", ", j);
    return pairCount_[i][j];
}

int
InteractionModel::simultaneousUse(QubitId i, QubitId j) const
{
    QPANIC_IF(i < 0 || i >= n_ || j < 0 || j >= n_,
              "simultaneousUse: bad qubits ", i, ", ", j);
    return simulUse_[i][j];
}

int
InteractionModel::sharedNeighbors(QubitId i, QubitId j) const
{
    int shared = 0;
    for (const auto &e : graph_.neighbors(i)) {
        if (e.to != j && graph_.hasEdge(j, e.to))
            ++shared;
    }
    return shared;
}

} // namespace qompress
