/**
 * @file
 * Circuit interaction analysis used by mapping and compression
 * strategies (paper sections 4.2 and 5).
 */

#ifndef QOMPRESS_IR_INTERACTION_HH
#define QOMPRESS_IR_INTERACTION_HH

#include <vector>

#include "graph/graph.hh"
#include "ir/circuit.hh"

namespace qompress {

/**
 * Interaction statistics of a logical circuit.
 *
 * Vertices of graph() are logical qubits; edge weights are the paper's
 * w(i,j) = sum over 2-qubit gates touching {i,j} of 1/s(o) where s(o) is
 * the 1-based ASAP timestep.
 */
class InteractionModel
{
  public:
    /** Analyze @p c (only multi-qubit gates contribute edges). */
    explicit InteractionModel(const Circuit &c);

    /** Weighted interaction graph over logical qubits. */
    const Graph &graph() const { return graph_; }

    /** w(i, j); 0 when the qubits never interact. */
    double weight(QubitId i, QubitId j) const;

    /** W(i) = sum_j w(i, j), the paper's placement seed score. */
    double totalWeight(QubitId i) const;

    /** Raw count of 2-qubit gates between i and j. */
    int pairGateCount(QubitId i, QubitId j) const;

    /**
     * Number of ASAP layers in which both i and j are busy but in
     * *different* gates — compressing such a pair forces serialization
     * (used by the Ring-Based strategy's simultaneity penalty).
     */
    int simultaneousUse(QubitId i, QubitId j) const;

    /** Number of common interaction partners of i and j. */
    int sharedNeighbors(QubitId i, QubitId j) const;

  private:
    int n_;
    Graph graph_;
    std::vector<std::vector<int>> pairCount_;
    std::vector<std::vector<int>> simulUse_;
};

} // namespace qompress

#endif // QOMPRESS_IR_INTERACTION_HH
