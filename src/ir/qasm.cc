#include "ir/qasm.hh"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hh"

namespace qompress {

namespace {

/** Hard ceilings on untrusted numeric input. The parser is the front
 *  door for network traffic (qompressd feeds request bodies straight
 *  into parseQasm), so integer literals and register sizes are bounded
 *  long before they can overflow an int or size an allocation. */
constexpr long long kMaxIntLiteral = 1'000'000'000;
constexpr int kMaxQregSize = 100'000;

/** Expression-nesting ceiling: the recursive-descent evaluator must
 *  turn a pathological `((((...))))` bomb into a FatalError before it
 *  can exhaust the stack (a crash the server cannot map to a 4xx). */
constexpr int kMaxExprDepth = 64;

/** Cursor over the source with line tracking for error messages. */
class Lexer
{
  public:
    explicit Lexer(const std::string &text) : text_(text) {}

    int line() const { return line_; }
    bool atEnd() { skipWhitespace(); return pos_ >= text_.size(); }

    char
    peek()
    {
        skipWhitespace();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    char
    get()
    {
        skipWhitespace();
        QFATAL_IF(pos_ >= text_.size(), "qasm line ", line_,
                  ": unexpected end of input");
        return advance();
    }

    void
    expect(char c)
    {
        const char got = get();
        QFATAL_IF(got != c, "qasm line ", line_, ": expected '", c,
                  "', got '", got, "'");
    }

    /** [A-Za-z_][A-Za-z0-9_]* */
    std::string
    identifier()
    {
        skipWhitespace();
        QFATAL_IF(pos_ >= text_.size() ||
                  (!std::isalpha(static_cast<unsigned char>(
                       text_[pos_])) && text_[pos_] != '_'),
                  "qasm line ", line_, ": expected identifier");
        std::string out;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
            out += advance();
        }
        return out;
    }

    int
    integer()
    {
        skipWhitespace();
        QFATAL_IF(pos_ >= text_.size() ||
                  !std::isdigit(static_cast<unsigned char>(text_[pos_])),
                  "qasm line ", line_, ": expected integer");
        // Accumulate wide and bound every step: `qreg q[99999999999999]`
        // must be a FatalError, not signed-int-overflow UB.
        long long v = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            v = v * 10 + (advance() - '0');
            QFATAL_IF(v > kMaxIntLiteral, "qasm line ", line_,
                      ": integer literal exceeds ", kMaxIntLiteral);
        }
        return static_cast<int>(v);
    }

    double
    number()
    {
        skipWhitespace();
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E' ||
                ((text_[end] == '+' || text_[end] == '-') && end > pos_ &&
                 (text_[end - 1] == 'e' || text_[end - 1] == 'E')))) {
            ++end;
        }
        QFATAL_IF(end == pos_, "qasm line ", line_, ": expected number");
        const std::string tok = text_.substr(pos_, end - pos_);
        while (pos_ < end)
            advance();
        // stod() happily parses a prefix ("1.2.3" -> 1.2) or throws a
        // context-free exception ("1e"); demand full-token consumption
        // so malformed literals fail loudly with the line number.
        try {
            std::size_t consumed = 0;
            const double v = std::stod(tok, &consumed);
            QFATAL_IF(consumed != tok.size(), "qasm line ", line_,
                      ": bad number '", tok, "'");
            return v;
        } catch (const FatalError &) {
            throw;
        } catch (const std::exception &) {
            QFATAL("qasm line ", line_, ": bad number '", tok, "'");
        }
    }

    /** Skip to just past the next ';'. */
    void
    skipStatement()
    {
        while (pos_ < text_.size() && text_[pos_] != ';')
            advance();
        if (pos_ < text_.size())
            advance();
    }

  private:
    char
    advance()
    {
        const char c = text_[pos_++];
        if (c == '\n')
            ++line_;
        return c;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isspace(static_cast<unsigned char>(c))) {
                advance();
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    advance();
            } else {
                break;
            }
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

/** Recursive-descent constant-expression evaluator: numbers, pi,
 *  unary minus, + - * /, parentheses. */
class ExprParser
{
  public:
    explicit ExprParser(Lexer &lex) : lex_(lex) {}

    double
    parse()
    {
        return sum();
    }

  private:
    double
    sum()
    {
        double v = product();
        while (lex_.peek() == '+' || lex_.peek() == '-') {
            const char op = lex_.get();
            const double rhs = product();
            v = op == '+' ? v + rhs : v - rhs;
        }
        return v;
    }

    double
    product()
    {
        double v = unary();
        while (lex_.peek() == '*' || lex_.peek() == '/') {
            const char op = lex_.get();
            const double rhs = unary();
            if (op == '/') {
                QFATAL_IF(rhs == 0.0, "qasm line ", lex_.line(),
                          ": division by zero in parameter");
                v /= rhs;
            } else {
                v *= rhs;
            }
        }
        return v;
    }

    double
    unary()
    {
        QFATAL_IF(++depth_ > kMaxExprDepth, "qasm line ", lex_.line(),
                  ": parameter expression nested deeper than ",
                  kMaxExprDepth);
        struct Unwind
        {
            int &d;
            ~Unwind() { --d; }
        } unwind{depth_};
        if (lex_.peek() == '-') {
            lex_.get();
            return -unary();
        }
        if (lex_.peek() == '+') {
            lex_.get();
            return unary();
        }
        if (lex_.peek() == '(') {
            lex_.get();
            const double v = sum();
            lex_.expect(')');
            return v;
        }
        if (std::isalpha(static_cast<unsigned char>(lex_.peek()))) {
            const std::string id = lex_.identifier();
            QFATAL_IF(id != "pi", "qasm line ", lex_.line(),
                      ": unknown constant '", id, "'");
            return M_PI;
        }
        return lex_.number();
    }

    Lexer &lex_;
    int depth_ = 0;
};

const std::map<std::string, GateType> &
gateTable()
{
    static const std::map<std::string, GateType> table = {
        {"x", GateType::X},     {"y", GateType::Y},
        {"z", GateType::Z},     {"h", GateType::H},
        {"s", GateType::S},     {"sdg", GateType::Sdg},
        {"t", GateType::T},     {"tdg", GateType::Tdg},
        {"rx", GateType::RX},   {"ry", GateType::RY},
        {"rz", GateType::RZ},   {"cx", GateType::CX},
        {"CX", GateType::CX},   {"cz", GateType::CZ},
        {"swap", GateType::Swap}, {"ccx", GateType::CCX},
        {"toffoli", GateType::CCX},
    };
    return table;
}

} // namespace

Circuit
parseQasm(const std::string &text, const std::string &name)
{
    Lexer lex(text);

    // Header: OPENQASM 2.0; (optional) include "...";
    std::string first = lex.identifier();
    QFATAL_IF(first != "OPENQASM", "qasm line ", lex.line(),
              ": expected OPENQASM header, got '", first, "'");
    const double version = lex.number();
    QFATAL_IF(version != 2.0, "qasm line ", lex.line(),
              ": unsupported OPENQASM version (only 2.0)");
    lex.expect(';');

    std::string qreg_name;
    int num_qubits = -1;
    std::vector<Gate> gates;

    while (!lex.atEnd()) {
        const std::string word = lex.identifier();
        if (word == "include" || word == "creg" || word == "barrier" ||
            word == "measure" || word == "reset") {
            lex.skipStatement();
            continue;
        }
        if (word == "qreg") {
            QFATAL_IF(num_qubits != -1, "qasm line ", lex.line(),
                      ": multiple qreg declarations are not supported");
            qreg_name = lex.identifier();
            lex.expect('[');
            num_qubits = lex.integer();
            lex.expect(']');
            lex.expect(';');
            QFATAL_IF(num_qubits < 1, "qasm line ", lex.line(),
                      ": empty qreg");
            QFATAL_IF(num_qubits > kMaxQregSize, "qasm line ",
                      lex.line(), ": qreg size ", num_qubits,
                      " exceeds the supported maximum ", kMaxQregSize);
            continue;
        }

        // Gate application.
        const auto it = gateTable().find(word);
        QFATAL_IF(it == gateTable().end(), "qasm line ", lex.line(),
                  ": unsupported statement or gate '", word, "'");
        QFATAL_IF(num_qubits == -1, "qasm line ", lex.line(),
                  ": gate before qreg declaration");
        Gate g;
        g.type = it->second;
        if (lex.peek() == '(') {
            QFATAL_IF(!gateHasParam(g.type), "qasm line ", lex.line(),
                      ": gate '", word, "' takes no parameter");
            lex.expect('(');
            ExprParser expr(lex);
            g.param = expr.parse();
            lex.expect(')');
        } else {
            QFATAL_IF(gateHasParam(g.type), "qasm line ", lex.line(),
                      ": gate '", word, "' requires a parameter");
        }
        for (int i = 0; i < gateArity(g.type); ++i) {
            if (i > 0)
                lex.expect(',');
            const std::string reg = lex.identifier();
            QFATAL_IF(reg != qreg_name, "qasm line ", lex.line(),
                      ": unknown register '", reg, "'");
            lex.expect('[');
            const int q = lex.integer();
            lex.expect(']');
            QFATAL_IF(q >= num_qubits, "qasm line ", lex.line(),
                      ": qubit index ", q, " out of range");
            // A gate may not name the same qubit twice (`cx q[0],q[0]`
            // is not unitary over distinct wires); catching it here
            // keeps invalid gates out of every downstream pass.
            for (const QubitId prev : g.qubits) {
                QFATAL_IF(prev == q, "qasm line ", lex.line(),
                          ": duplicate qubit operand q[", q, "] in '",
                          word, "'");
            }
            g.qubits.push_back(q);
        }
        lex.expect(';');
        gates.push_back(std::move(g));
    }

    QFATAL_IF(num_qubits == -1, "qasm: no qreg declaration found");
    Circuit circuit(num_qubits, name);
    for (auto &g : gates)
        circuit.add(std::move(g));
    return circuit;
}

Circuit
parseQasmFile(const std::string &path)
{
    std::ifstream in(path);
    QFATAL_IF(!in, "cannot open qasm file '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    // Derive a circuit name from the file stem.
    std::string name = path;
    if (const auto slash = name.find_last_of('/');
        slash != std::string::npos) {
        name = name.substr(slash + 1);
    }
    if (const auto dot = name.find_last_of('.');
        dot != std::string::npos) {
        name = name.substr(0, dot);
    }
    return parseQasm(ss.str(), name);
}

} // namespace qompress
