/**
 * @file
 * Versioned binary serialization for compiled artifacts.
 *
 * The persistence contract behind the service's disk tier: a
 * CompileResult encodes to one self-describing record --
 *
 *   [u32 magic "QCR1"] [u32 format version] [u64 payload length]
 *   [u32 CRC-32 of payload] [payload]
 *
 * -- and decodes back bit-identically. Doubles travel as raw IEEE-754
 * bits (the sign of zero, denormals, and NaN payloads all round-trip;
 * the same lesson circuitFingerprint already encodes), integers as
 * fixed-width little-endian, variable-length runs behind a length
 * prefix that is validated against the bytes actually present before
 * anything is allocated.
 *
 * Decoding fronts untrusted bytes (a store file another process or a
 * crash may have mangled), so every failure -- truncation, bad magic,
 * unsupported version, checksum mismatch, out-of-range enum, oversized
 * declared length, trailing garbage -- is a structured FatalError.
 * decodeCompileResult never throws PanicError, never crashes, and
 * never allocates more than the input buffer justifies.
 *
 * Versioning contract: kArtifactFormatVersion names the record layout.
 * Any change to the payload encoding (field added, reordered, widened)
 * MUST bump it; decoders reject other versions outright rather than
 * guessing, and the artifact store treats a version mismatch as "start
 * cold" (artifacts are caches of deterministic compiles, so dropping
 * them is always safe).
 *
 * ArtifactKey lives here too: the on-disk identity of a record is the
 * same four component content fingerprints + strategy name the
 * service's memo tier keys on (see compiler_service.hh), so the two
 * tiers can never disagree about what a stored artifact is for.
 */

#ifndef QOMPRESS_IR_SERIALIZE_HH
#define QOMPRESS_IR_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "compiler/pipeline.hh"

namespace qompress {

/** Record magic: "QCR1" as little-endian bytes. */
constexpr std::uint32_t kArtifactMagic = 0x31524351u;

/** Bump on ANY payload layout change (see the file comment).
 *  v2: Metrics grew readoutEps (device calibration pricing). */
constexpr std::uint32_t kArtifactFormatVersion = 2;

/** Fixed prefix of every record (magic + version + length + CRC). */
constexpr std::size_t kArtifactHeaderBytes = 20;

/** CRC-32 (IEEE 802.3 polynomial, reflected) of @p n bytes. */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

/**
 * Little-endian byte-buffer writer for record payloads. Strings and
 * byte runs are length-prefixed (u64); doubles are raw bit images.
 */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

    /** Raw IEEE-754 bits: -0.0, denormals and NaNs all round-trip. */
    void f64(double v);

    void bytes(const void *data, std::size_t n);

    void str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    std::size_t size() const { return buf_.size(); }
    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked reader over an untrusted byte buffer. Every overrun
 * (including a declared length larger than the bytes remaining) is a
 * FatalError carrying @p what from the constructor, so store-level and
 * record-level failures are distinguishable in error messages.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t n,
               const char *what = "artifact record")
        : p_(data), n_(n), what_(what)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    double f64();
    std::string str();

    /** A declared element count for elements of at least
     *  @p min_bytes each; throws FatalError when the buffer cannot
     *  possibly hold that many (the no-OOM guard). */
    std::uint64_t count(std::size_t min_bytes);

    std::size_t remaining() const { return n_ - off_; }
    bool atEnd() const { return off_ == n_; }
    const char *what() const { return what_; }

  private:
    void need(std::size_t n);

    const std::uint8_t *p_;
    std::size_t n_;
    std::size_t off_ = 0;
    const char *what_;
};

/**
 * The identity of a stored artifact: the memo tier's request key --
 * one 64-bit content fingerprint per compile input component plus the
 * verbatim strategy name (see compiler_service.hh for the collision
 * trade this accepts).
 */
struct ArtifactKey
{
    std::uint64_t circuit = 0;
    std::uint64_t topo = 0;
    std::uint64_t lib = 0;
    std::uint64_t cfg = 0;
    std::string strategy;

    bool operator==(const ArtifactKey &o) const
    {
        return circuit == o.circuit && topo == o.topo && lib == o.lib &&
               cfg == o.cfg && strategy == o.strategy;
    }
};

struct ArtifactKeyHash
{
    std::size_t operator()(const ArtifactKey &k) const;
};

/** Append @p key to @p w (fixed fields + length-prefixed strategy). */
void encodeArtifactKey(ByteWriter &w, const ArtifactKey &key);

/** Inverse of encodeArtifactKey; throws FatalError on truncation. */
ArtifactKey decodeArtifactKey(ByteReader &r);

/** Encode @p res as one framed, checksummed record. */
std::vector<std::uint8_t> encodeCompileResult(const CompileResult &res);

/**
 * Decode one record produced by encodeCompileResult. Bit-exact
 * inverse; throws FatalError on any corruption (see the file comment).
 */
CompileResult decodeCompileResult(const std::uint8_t *data,
                                  std::size_t n);

inline CompileResult
decodeCompileResult(const std::vector<std::uint8_t> &buf)
{
    return decodeCompileResult(buf.data(), buf.size());
}

} // namespace qompress

#endif // QOMPRESS_IR_SERIALIZE_HH
