/**
 * @file
 * Canonical content fingerprints for circuits (and the byte-hasher the
 * other layers build their own fingerprints from).
 *
 * The fingerprint is the identity the service layer memoizes compiled
 * artifacts under: two Circuit objects with the same fingerprint are
 * guaranteed to compile to bit-identical CompileResults (for equal
 * topology/library/config/strategy), because the fingerprint covers
 * every input the pipeline reads -- qubit count, name (the compiled
 * artifact embeds it), and the exact gate sequence with operand ids
 * and raw parameter bits.
 */

#ifndef QOMPRESS_IR_FINGERPRINT_HH
#define QOMPRESS_IR_FINGERPRINT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ir/circuit.hh"

namespace qompress {

/**
 * Incremental FNV-1a 64-bit hasher.
 *
 * Deliberately simple and dependency-free. Note the service's memo
 * cache uses these 64-bit values AS the identity of each request
 * component (circuit, topology, library, config) — a cross-component
 * key is four independent 64-bit fingerprints plus the verbatim
 * strategy name, so serving a wrong artifact requires two distinct
 * values of ONE component to collide at 64 bits: vanishingly unlikely
 * for the non-adversarial inputs this toolchain compiles, and
 * sanity-swept by the registry collision test, but not a
 * cryptographic guarantee. Field order is significant (mix a length
 * before variable-length runs).
 */
class Fingerprinter
{
  public:
    void mixBytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ull;
        }
    }

    void mixU64(std::uint64_t v) { mixBytes(&v, sizeof v); }
    void mixI32(std::int32_t v) { mixBytes(&v, sizeof v); }

    /** Raw IEEE-754 bits: any representational change (including the
     *  sign of zero) changes the fingerprint. */
    void mixDouble(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        mixU64(bits);
    }

    void mixString(const std::string &s)
    {
        mixU64(s.size());
        mixBytes(s.data(), s.size());
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull; // FNV-1a offset basis
};

/**
 * Canonical fingerprint of a circuit's compile-relevant content.
 *
 * Covers numQubits, the name, and every gate's (type, operands, raw
 * param bits) in program order. Stable across rebuilds and re-parses
 * that reproduce the same content (note: Circuit::toQasm prints
 * parameters at %.12g, so a dump/parse round trip is only
 * fingerprint-stable for parameters that survive that precision);
 * sensitive to any gate, operand, parameter, name, or width change.
 */
std::uint64_t circuitFingerprint(const Circuit &c);

/**
 * Structural identity of a circuit: everything circuitFingerprint
 * covers EXCEPT parameter values and the name.
 *
 * Two circuits with equal structural fingerprints have the same width
 * and the same gate sequence (types and operands) and differ at most
 * in rotation angles (and name). Because no stage of the compile
 * pipeline branches on parameter values -- gates are priced by
 * physical class, mapping/routing read only types and operands --
 * such circuits compile to CompileResults that differ only in the
 * parameters carried on the physical gates. That property is what
 * makes the service's template tier sound: a CompiledTemplate built
 * from one member of the structural class can be rebound to any other
 * member (see compiler/rebind.hh).
 *
 * paramGates lists, in program order, the indices of the gates that
 * carry a parameter (gateHasParam(type)). Its length is the number of
 * parameter slots a template for this structure exposes; slot k binds
 * the parameter of gate paramGates[k]. Note the slot order is defined
 * over the INPUT circuit's program order; the rebind pass relies on
 * decomposeToNativeGates preserving the relative order of
 * parameterized gates (it introduces none and reorders nothing).
 */
struct StructuralFingerprint
{
    std::uint64_t value = 0;

    /** Input-gate indices carrying a parameter, in program order. */
    std::vector<int> paramGates;
};

StructuralFingerprint structuralCircuitFingerprint(const Circuit &c);

/**
 * Snap a parameter to the value that survives a QASM dump/parse round
 * trip (Circuit::toQasm prints parameters at %.12g).
 *
 * circuitFingerprint hashes raw IEEE-754 bits, so a circuit built with
 * an angle that does NOT survive %.12g fingerprints differently after
 * parseQasm(c.toQasm()) -- the memo cache treats the reparse as a new
 * circuit. Building circuits with canonicalQasmParam'd angles makes
 * dump/parse round trips fingerprint-stable. (The compile pipeline
 * itself is indifferent: parameters are carried through, never read.)
 */
double canonicalQasmParam(double v);

} // namespace qompress

#endif // QOMPRESS_IR_FINGERPRINT_HH
