/**
 * @file
 * Canonical content fingerprints for circuits (and the byte-hasher the
 * other layers build their own fingerprints from).
 *
 * The fingerprint is the identity the service layer memoizes compiled
 * artifacts under: two Circuit objects with the same fingerprint are
 * guaranteed to compile to bit-identical CompileResults (for equal
 * topology/library/config/strategy), because the fingerprint covers
 * every input the pipeline reads -- qubit count, name (the compiled
 * artifact embeds it), and the exact gate sequence with operand ids
 * and raw parameter bits.
 */

#ifndef QOMPRESS_IR_FINGERPRINT_HH
#define QOMPRESS_IR_FINGERPRINT_HH

#include <cstdint>
#include <cstring>
#include <string>

#include "ir/circuit.hh"

namespace qompress {

/**
 * Incremental FNV-1a 64-bit hasher.
 *
 * Deliberately simple and dependency-free. Note the service's memo
 * cache uses these 64-bit values AS the identity of each request
 * component (circuit, topology, library, config) — a cross-component
 * key is four independent 64-bit fingerprints plus the verbatim
 * strategy name, so serving a wrong artifact requires two distinct
 * values of ONE component to collide at 64 bits: vanishingly unlikely
 * for the non-adversarial inputs this toolchain compiles, and
 * sanity-swept by the registry collision test, but not a
 * cryptographic guarantee. Field order is significant (mix a length
 * before variable-length runs).
 */
class Fingerprinter
{
  public:
    void mixBytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ull;
        }
    }

    void mixU64(std::uint64_t v) { mixBytes(&v, sizeof v); }
    void mixI32(std::int32_t v) { mixBytes(&v, sizeof v); }

    /** Raw IEEE-754 bits: any representational change (including the
     *  sign of zero) changes the fingerprint. */
    void mixDouble(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        mixU64(bits);
    }

    void mixString(const std::string &s)
    {
        mixU64(s.size());
        mixBytes(s.data(), s.size());
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull; // FNV-1a offset basis
};

/**
 * Canonical fingerprint of a circuit's compile-relevant content.
 *
 * Covers numQubits, the name, and every gate's (type, operands, raw
 * param bits) in program order. Stable across rebuilds and re-parses
 * that reproduce the same content (note: Circuit::toQasm prints
 * parameters at %.12g, so a dump/parse round trip is only
 * fingerprint-stable for parameters that survive that precision);
 * sensitive to any gate, operand, parameter, name, or width change.
 */
std::uint64_t circuitFingerprint(const Circuit &c);

} // namespace qompress

#endif // QOMPRESS_IR_FINGERPRINT_HH
