#include "ir/circuit.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/strings.hh"

namespace qompress {

Circuit::Circuit(int num_qubits, std::string name)
    : numQubits_(num_qubits), name_(std::move(name))
{
    QFATAL_IF(num_qubits < 0, "circuit qubit count must be >= 0");
}

void
Circuit::add(Gate g)
{
    QPANIC_IF(g.arity() != gateArity(g.type),
              "gate ", gateName(g.type), " expects ",
              gateArity(g.type), " operands, got ", g.arity());
    for (std::size_t i = 0; i < g.qubits.size(); ++i) {
        const QubitId q = g.qubits[i];
        QPANIC_IF(q < 0 || q >= numQubits_,
                  "gate ", gateName(g.type), ": qubit ", q,
                  " outside circuit of ", numQubits_, " qubits");
        for (std::size_t j = i + 1; j < g.qubits.size(); ++j) {
            QPANIC_IF(q == g.qubits[j],
                      "gate ", gateName(g.type),
                      ": duplicate operand q", q);
        }
    }
    gates_.push_back(std::move(g));
}

void
Circuit::append(const Circuit &other)
{
    QPANIC_IF(other.numQubits_ > numQubits_,
              "append: circuit of ", other.numQubits_,
              " qubits into circuit of ", numQubits_);
    for (const auto &g : other.gates_)
        add(g);
}

int
Circuit::countGatesWithArity(int arity) const
{
    return static_cast<int>(std::count_if(
        gates_.begin(), gates_.end(),
        [arity](const Gate &g) { return g.arity() == arity; }));
}

std::vector<int>
Circuit::asapLayers() const
{
    std::vector<int> layers(gates_.size(), 1);
    std::vector<int> qubit_level(numQubits_, 0);
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        int lvl = 0;
        for (QubitId q : gates_[i].qubits)
            lvl = std::max(lvl, qubit_level[q]);
        layers[i] = lvl + 1;
        for (QubitId q : gates_[i].qubits)
            qubit_level[q] = lvl + 1;
    }
    return layers;
}

int
Circuit::depth() const
{
    const auto layers = asapLayers();
    return layers.empty()
        ? 0
        : *std::max_element(layers.begin(), layers.end());
}

int
Circuit::highestUsedQubit() const
{
    int hi = 0;
    for (const auto &g : gates_)
        for (QubitId q : g.qubits)
            hi = std::max(hi, q + 1);
    return hi;
}

std::string
Circuit::toQasm() const
{
    std::string out = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
    out += format("qreg q[%d];\n", numQubits_);
    for (const auto &g : gates_) {
        out += gateName(g.type);
        if (gateHasParam(g.type))
            out += format("(%.12g)", g.param);
        out += ' ';
        for (std::size_t i = 0; i < g.qubits.size(); ++i) {
            if (i)
                out += ", ";
            out += format("q[%d]", g.qubits[i]);
        }
        out += ";\n";
    }
    return out;
}

} // namespace qompress
