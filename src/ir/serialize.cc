#include "ir/serialize.hh"

#include <cstring>

#include "common/error.hh"
#include "ir/fingerprint.hh"

namespace qompress {

namespace {

/** Decode-side sanity bounds. Far above anything the compiler emits
 *  (the server caps topologies at ~1k units) yet small enough that a
 *  hostile length field cannot make the decoder allocate more than a
 *  few megabytes before a bounds check trips. */
constexpr std::int32_t kMaxLayoutQubits = 1 << 17;
constexpr std::int32_t kMaxLayoutUnits = 1 << 16;
constexpr std::uint8_t kMaxGateSlots = 4;

/** Smallest possible encoded PhysGate (5 u8s, no slots, 5 doubles,
 *  2 i32s); used to bound a declared gate count by the bytes present. */
constexpr std::size_t kMinGateBytes = 5 + 5 * 8 + 2 * 4;

const std::uint32_t *
crcTable()
{
    static const auto table = [] {
        static std::uint32_t t[256];
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed)
{
    const std::uint32_t *table = crcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// ------------------------------------------------------------------
// ByteWriter / ByteReader
// ------------------------------------------------------------------

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
ByteWriter::bytes(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + n);
}

void
ByteReader::need(std::size_t n)
{
    QFATAL_IF(n > remaining(), what_, " truncated: need ", n,
              " byte(s), have ", remaining());
}

std::uint8_t
ByteReader::u8()
{
    need(1);
    return p_[off_++];
}

std::uint32_t
ByteReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p_[off_ + i]) << (8 * i);
    off_ += 4;
    return v;
}

std::uint64_t
ByteReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p_[off_ + i]) << (8 * i);
    off_ += 8;
    return v;
}

double
ByteReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
ByteReader::str()
{
    const std::uint64_t len = u64();
    need(len); // also rejects len > remaining before any allocation
    std::string s(reinterpret_cast<const char *>(p_ + off_),
                  static_cast<std::size_t>(len));
    off_ += static_cast<std::size_t>(len);
    return s;
}

std::uint64_t
ByteReader::count(std::size_t min_bytes)
{
    const std::uint64_t n = u64();
    QFATAL_IF(min_bytes > 0 && n > remaining() / min_bytes, what_,
              " corrupt: declared count ", n,
              " exceeds what the remaining ", remaining(),
              " byte(s) can hold");
    return n;
}

// ------------------------------------------------------------------
// ArtifactKey
// ------------------------------------------------------------------

std::size_t
ArtifactKeyHash::operator()(const ArtifactKey &k) const
{
    Fingerprinter f;
    f.mixU64(k.circuit);
    f.mixU64(k.topo);
    f.mixU64(k.lib);
    f.mixU64(k.cfg);
    f.mixString(k.strategy);
    return static_cast<std::size_t>(f.value());
}

void
encodeArtifactKey(ByteWriter &w, const ArtifactKey &key)
{
    w.u64(key.circuit);
    w.u64(key.topo);
    w.u64(key.lib);
    w.u64(key.cfg);
    w.str(key.strategy);
}

ArtifactKey
decodeArtifactKey(ByteReader &r)
{
    ArtifactKey key;
    key.circuit = r.u64();
    key.topo = r.u64();
    key.lib = r.u64();
    key.cfg = r.u64();
    key.strategy = r.str();
    return key;
}

// ------------------------------------------------------------------
// CompileResult payload
// ------------------------------------------------------------------

namespace {

void
encodeLayout(ByteWriter &w, const Layout &l)
{
    w.i32(l.numQubits());
    w.i32(l.numUnits());
    for (QubitId q = 0; q < l.numQubits(); ++q)
        w.i32(l.slotOf(q));
}

/**
 * Rebuild a Layout from (numQubits, numUnits, per-qubit slot). The
 * rebuilt instance has fresh epochs/instance id -- by design those
 * never survive a copy either -- and identical slotOf/qubitAt maps,
 * which is all any consumer of a finished artifact reads. Slots are
 * validated (range + no double occupancy) BEFORE place() so hostile
 * bytes surface as FatalError, never as a precondition panic.
 */
Layout
decodeLayout(ByteReader &r)
{
    const std::int32_t nq = r.i32();
    const std::int32_t nu = r.i32();
    QFATAL_IF(nq < 0 || nq > kMaxLayoutQubits, r.what(),
              " corrupt: layout qubit count ", nq, " out of range");
    QFATAL_IF(nu < 0 || nu > kMaxLayoutUnits, r.what(),
              " corrupt: layout unit count ", nu, " out of range");
    QFATAL_IF(static_cast<std::size_t>(nq) * 4 > r.remaining(), r.what(),
              " truncated: layout slot table");
    Layout l(nq, nu);
    std::vector<char> seen(static_cast<std::size_t>(nu) * 2, 0);
    for (QubitId q = 0; q < nq; ++q) {
        const std::int32_t slot = r.i32();
        if (slot == kInvalid)
            continue; // unmapped qubit
        QFATAL_IF(slot < 0 || slot >= nu * 2, r.what(),
                  " corrupt: layout slot ", slot, " out of range");
        QFATAL_IF(seen[static_cast<std::size_t>(slot)], r.what(),
                  " corrupt: layout slot ", slot, " occupied twice");
        seen[static_cast<std::size_t>(slot)] = 1;
        l.place(q, slot);
    }
    return l;
}

void
encodeGate(ByteWriter &w, const PhysGate &g)
{
    w.u8(static_cast<std::uint8_t>(g.cls));
    w.u8(static_cast<std::uint8_t>(g.logical));
    w.u8(static_cast<std::uint8_t>(g.logical2));
    w.u8(g.isRouting ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(g.slots.size()));
    for (const SlotId s : g.slots)
        w.i32(s);
    w.f64(g.param);
    w.f64(g.param2);
    w.i32(g.sourceGate);
    w.i32(g.sourceGate2);
    w.f64(g.start);
    w.f64(g.duration);
    w.f64(g.fidelity);
}

GateType
decodeGateType(ByteReader &r)
{
    const std::uint8_t v = r.u8();
    QFATAL_IF(v > static_cast<std::uint8_t>(GateType::CCX), r.what(),
              " corrupt: logical gate type ", int(v), " out of range");
    return static_cast<GateType>(v);
}

PhysGate
decodeGate(ByteReader &r)
{
    PhysGate g;
    const std::uint8_t cls = r.u8();
    QFATAL_IF(cls >=
                  static_cast<std::uint8_t>(PhysGateClass::NumClasses),
              r.what(), " corrupt: gate class ", int(cls),
              " out of range");
    g.cls = static_cast<PhysGateClass>(cls);
    g.logical = decodeGateType(r);
    g.logical2 = decodeGateType(r);
    const std::uint8_t routing = r.u8();
    QFATAL_IF(routing > 1, r.what(), " corrupt: routing flag ",
              int(routing));
    g.isRouting = routing == 1;
    const std::uint8_t nslots = r.u8();
    QFATAL_IF(nslots > kMaxGateSlots, r.what(),
              " corrupt: gate names ", int(nslots), " slots");
    g.slots.reserve(nslots);
    for (std::uint8_t i = 0; i < nslots; ++i)
        g.slots.push_back(r.i32());
    g.param = r.f64();
    g.param2 = r.f64();
    g.sourceGate = r.i32();
    g.sourceGate2 = r.i32();
    g.start = r.f64();
    g.duration = r.f64();
    g.fidelity = r.f64();
    return g;
}

void
encodePayload(ByteWriter &w, const CompileResult &res)
{
    const CompiledCircuit &cc = res.compiled;
    w.str(cc.name());
    encodeLayout(w, cc.initialLayout());
    encodeLayout(w, cc.finalLayout());
    w.u64(cc.gates().size());
    for (const PhysGate &g : cc.gates())
        encodeGate(w, g);

    const Metrics &m = res.metrics;
    w.f64(m.gateEps);
    w.f64(m.coherenceEps);
    w.f64(m.readoutEps);
    w.f64(m.totalEps);
    w.f64(m.durationNs);
    w.i32(m.numGates);
    w.i32(m.numRoutingGates);
    w.i32(m.numTwoUnitGates);
    w.i32(m.numEncodedUnits);
    w.u64(m.classHistogram.size());
    for (const int c : m.classHistogram)
        w.i32(c);
    w.f64(m.qubitTimeNs);
    w.f64(m.ququartTimeNs);

    w.u64(res.compressions.size());
    for (const Compression &c : res.compressions) {
        w.i32(c.first);
        w.i32(c.second);
    }
}

CompileResult
decodePayload(ByteReader &r)
{
    CompileResult res;
    const std::string name = r.str();
    Layout initial = decodeLayout(r);
    Layout final_ = decodeLayout(r);
    CompiledCircuit cc(std::move(initial), name);
    cc.setFinalLayout(std::move(final_));
    const std::uint64_t ngates = r.count(kMinGateBytes);
    for (std::uint64_t i = 0; i < ngates; ++i)
        cc.add(decodeGate(r));
    res.compiled = std::move(cc);

    Metrics &m = res.metrics;
    m.gateEps = r.f64();
    m.coherenceEps = r.f64();
    m.readoutEps = r.f64();
    m.totalEps = r.f64();
    m.durationNs = r.f64();
    m.numGates = r.i32();
    m.numRoutingGates = r.i32();
    m.numTwoUnitGates = r.i32();
    m.numEncodedUnits = r.i32();
    const std::uint64_t nhist = r.count(4);
    m.classHistogram.reserve(static_cast<std::size_t>(nhist));
    for (std::uint64_t i = 0; i < nhist; ++i)
        m.classHistogram.push_back(r.i32());
    m.qubitTimeNs = r.f64();
    m.ququartTimeNs = r.f64();

    const std::uint64_t ncomp = r.count(8);
    res.compressions.reserve(static_cast<std::size_t>(ncomp));
    for (std::uint64_t i = 0; i < ncomp; ++i) {
        Compression c;
        c.first = r.i32();
        c.second = r.i32();
        res.compressions.push_back(c);
    }
    return res;
}

} // namespace

std::vector<std::uint8_t>
encodeCompileResult(const CompileResult &res)
{
    ByteWriter payload;
    encodePayload(payload, res);

    ByteWriter record;
    record.u32(kArtifactMagic);
    record.u32(kArtifactFormatVersion);
    record.u64(payload.size());
    record.u32(crc32(payload.data().data(), payload.size()));
    record.bytes(payload.data().data(), payload.size());
    return record.take();
}

CompileResult
decodeCompileResult(const std::uint8_t *data, std::size_t n)
{
    ByteReader header(data, n, "artifact record");
    QFATAL_IF(n < kArtifactHeaderBytes,
              "artifact record truncated: ", n,
              " byte(s) is smaller than the ", kArtifactHeaderBytes,
              "-byte header");
    const std::uint32_t magic = header.u32();
    QFATAL_IF(magic != kArtifactMagic,
              "artifact record has wrong magic ", magic);
    const std::uint32_t version = header.u32();
    QFATAL_IF(version != kArtifactFormatVersion,
              "artifact record has unsupported format version ",
              version, " (this build reads version ",
              kArtifactFormatVersion, ")");
    const std::uint64_t payload_len = header.u64();
    const std::uint32_t declared_crc = header.u32();
    QFATAL_IF(payload_len != n - kArtifactHeaderBytes,
              "artifact record corrupt: declared payload of ",
              payload_len, " byte(s), found ",
              n - kArtifactHeaderBytes);
    const std::uint8_t *payload = data + kArtifactHeaderBytes;
    const std::uint32_t actual_crc =
        crc32(payload, static_cast<std::size_t>(payload_len));
    QFATAL_IF(actual_crc != declared_crc,
              "artifact record corrupt: checksum mismatch (stored ",
              declared_crc, ", computed ", actual_crc, ")");

    ByteReader r(payload, static_cast<std::size_t>(payload_len),
                 "artifact record");
    CompileResult res = decodePayload(r);
    QFATAL_IF(!r.atEnd(), "artifact record corrupt: ", r.remaining(),
              " trailing byte(s) after payload");
    return res;
}

} // namespace qompress
