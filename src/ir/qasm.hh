/**
 * @file
 * OpenQASM 2.0 front end for the subset the Qompress benchmarks use:
 * one quantum register, the standard 1q/2q/3q gates (x, y, z, h, s,
 * sdg, t, tdg, rx, ry, rz, cx, cz, swap, ccx), constant-expression
 * parameters (numbers, pi, + - * / and parentheses), comments,
 * `creg`/`barrier`/`measure` statements (accepted and ignored).
 */

#ifndef QOMPRESS_IR_QASM_HH
#define QOMPRESS_IR_QASM_HH

#include <string>

#include "ir/circuit.hh"

namespace qompress {

/**
 * Parse OpenQASM 2.0 source text into a Circuit.
 *
 * @throws FatalError with a line number on malformed input or
 *         constructs outside the supported subset.
 */
Circuit parseQasm(const std::string &text,
                  const std::string &name = "qasm");

/** Parse a .qasm file (FatalError if unreadable). */
Circuit parseQasmFile(const std::string &path);

} // namespace qompress

#endif // QOMPRESS_IR_QASM_HH
