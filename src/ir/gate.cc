#include "ir/gate.hh"

#include <algorithm>
#include <array>

#include "common/error.hh"
#include "common/strings.hh"

namespace qompress {

namespace {

struct GateMeta
{
    const char *name;
    int arity;
    bool hasParam;
};

const std::array<GateMeta, 15> kMeta = {{
    {"x", 1, false},   {"y", 1, false},   {"z", 1, false},
    {"h", 1, false},   {"s", 1, false},   {"sdg", 1, false},
    {"t", 1, false},   {"tdg", 1, false}, {"rx", 1, true},
    {"ry", 1, true},   {"rz", 1, true},   {"cx", 2, false},
    {"cz", 2, false},  {"swap", 2, false}, {"ccx", 3, false},
}};

const GateMeta &
meta(GateType t)
{
    const auto idx = static_cast<std::size_t>(t);
    QPANIC_IF(idx >= kMeta.size(), "unknown gate type ", idx);
    return kMeta[idx];
}

} // namespace

int
gateArity(GateType t)
{
    return meta(t).arity;
}

bool
gateHasParam(GateType t)
{
    return meta(t).hasParam;
}

const std::string &
gateName(GateType t)
{
    static std::array<std::string, 15> names = [] {
        std::array<std::string, 15> out;
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = kMeta[i].name;
        return out;
    }();
    return names[static_cast<std::size_t>(t)];
}

bool
Gate::actsOn(QubitId q) const
{
    return std::find(qubits.begin(), qubits.end(), q) != qubits.end();
}

std::string
Gate::str() const
{
    std::string out = gateName(type);
    if (gateHasParam(type))
        out += format("(%g)", param);
    out += ' ';
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (i)
            out += ", ";
        out += format("q%d", qubits[i]);
    }
    return out;
}

} // namespace qompress
