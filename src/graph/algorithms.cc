#include "graph/algorithms.hh"

#include <algorithm>
#include <queue>

#include "common/error.hh"

namespace qompress {

std::vector<int>
ShortestPaths::pathTo(int v) const
{
    if (v < 0 || v >= static_cast<int>(dist.size()) ||
        dist[v] == kInf) {
        return {};
    }
    std::vector<int> path;
    for (int cur = v; cur != -1; cur = parent[cur])
        path.push_back(cur);
    std::reverse(path.begin(), path.end());
    return path;
}

ShortestPaths
bfs(const Graph &g, int source)
{
    const int n = g.numVertices();
    QPANIC_IF(source < 0 || source >= n, "bfs: bad source ", source);
    ShortestPaths sp;
    sp.dist.assign(n, ShortestPaths::kInf);
    sp.parent.assign(n, -1);
    std::queue<int> q;
    sp.dist[source] = 0.0;
    q.push(source);
    while (!q.empty()) {
        const int u = q.front();
        q.pop();
        for (const auto &e : g.neighbors(u)) {
            if (sp.dist[e.to] == ShortestPaths::kInf) {
                sp.dist[e.to] = sp.dist[u] + 1.0;
                sp.parent[e.to] = u;
                q.push(e.to);
            }
        }
    }
    return sp;
}

ShortestPaths
dijkstra(const Graph &g, int source,
         const std::function<double(int, int, double)> &weight_override)
{
    const int n = g.numVertices();
    QPANIC_IF(source < 0 || source >= n, "dijkstra: bad source ", source);
    ShortestPaths sp;
    sp.dist.assign(n, ShortestPaths::kInf);
    sp.parent.assign(n, -1);
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    sp.dist[source] = 0.0;
    pq.emplace(0.0, source);
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d > sp.dist[u])
            continue;
        for (const auto &e : g.neighbors(u)) {
            const double w = weight_override
                ? weight_override(u, e.to, e.weight)
                : e.weight;
            QPANIC_IF(w < 0.0, "dijkstra: negative weight on (",
                      u, ", ", e.to, ")");
            const double nd = d + w;
            if (nd < sp.dist[e.to]) {
                sp.dist[e.to] = nd;
                sp.parent[e.to] = u;
                pq.emplace(nd, e.to);
            }
        }
    }
    return sp;
}

std::vector<int>
connectedComponents(const Graph &g)
{
    const int n = g.numVertices();
    std::vector<int> comp(n, -1);
    int next = 0;
    for (int s = 0; s < n; ++s) {
        if (comp[s] != -1)
            continue;
        std::queue<int> q;
        q.push(s);
        comp[s] = next;
        while (!q.empty()) {
            const int u = q.front();
            q.pop();
            for (const auto &e : g.neighbors(u)) {
                if (comp[e.to] == -1) {
                    comp[e.to] = next;
                    q.push(e.to);
                }
            }
        }
        ++next;
    }
    return comp;
}

std::vector<int>
shortestCycleThrough(const Graph &g, int v)
{
    const int n = g.numVertices();
    QPANIC_IF(v < 0 || v >= n, "shortestCycleThrough: bad vertex ", v);

    // BFS from v, recording for each vertex which child branch of v it
    // descends from. A non-tree edge joining two distinct branches closes
    // the shortest cycle through v (paths to different branches share
    // only v).
    auto sp = bfs(g, v);
    std::vector<int> branch(n, -1);
    // Assign branches by walking up parents; memoized.
    std::function<int(int)> branchOf = [&](int x) -> int {
        if (x == v)
            return -1;
        if (branch[x] != -1)
            return branch[x];
        if (sp.parent[x] == v)
            return branch[x] = x;
        return branch[x] = branchOf(sp.parent[x]);
    };

    double best = ShortestPaths::kInf;
    int bestX = -1, bestY = -1;
    for (const auto &e : g.edges()) {
        const int x = e.u, y = e.v;
        if (sp.dist[x] == ShortestPaths::kInf ||
            sp.dist[y] == ShortestPaths::kInf) {
            continue;
        }
        if (x == v || y == v)
            continue; // tree or trivial edges at the root
        if (sp.parent[x] == y || sp.parent[y] == x)
            continue; // BFS tree edge
        if (branchOf(x) == branchOf(y))
            continue; // cycle does not pass through v
        const double len = sp.dist[x] + sp.dist[y] + 1.0;
        if (len < best) {
            best = len;
            bestX = x;
            bestY = y;
        }
    }
    if (bestX == -1)
        return {};

    // Path v..bestX, then bestY..v (excluding the duplicate v).
    std::vector<int> cycle = sp.pathTo(bestX);
    std::vector<int> back = sp.pathTo(bestY);
    for (auto it = back.rbegin(); it != back.rend(); ++it) {
        if (*it == v)
            break;
        cycle.push_back(*it);
    }
    return cycle;
}

std::vector<int>
cycleLengthPerVertex(const Graph &g)
{
    std::vector<int> out(g.numVertices(), 0);
    for (int v = 0; v < g.numVertices(); ++v) {
        const auto cyc = shortestCycleThrough(g, v);
        out[v] = static_cast<int>(cyc.size());
    }
    return out;
}

} // namespace qompress
