/**
 * @file
 * A small undirected weighted graph used for device topologies and
 * circuit interaction structure.
 */

#ifndef QOMPRESS_GRAPH_GRAPH_HH
#define QOMPRESS_GRAPH_GRAPH_HH

#include <cstddef>
#include <vector>

namespace qompress {

/** One directed half of an undirected edge. */
struct GraphEdge
{
    int to;         ///< neighbour vertex
    double weight;  ///< edge weight (semantics chosen by the user)
};

/**
 * Undirected weighted multigraph-free graph with O(deg) edge lookup.
 *
 * Vertices are dense integers [0, numVertices()). Parallel edges are
 * rejected; weights can be updated in place.
 */
class Graph
{
  public:
    /** Create a graph with @p n isolated vertices. */
    explicit Graph(int n = 0);

    /** Number of vertices. */
    int numVertices() const { return static_cast<int>(adj_.size()); }

    /** Number of undirected edges. */
    int numEdges() const { return numEdges_; }

    /** Append a vertex and return its id. */
    int addVertex();

    /**
     * Insert undirected edge (u, v) with @p weight.
     * @return false if the edge already existed (weight left unchanged).
     */
    bool addEdge(int u, int v, double weight = 1.0);

    /** True iff (u, v) is an edge. */
    bool hasEdge(int u, int v) const;

    /** Weight of edge (u, v). @pre hasEdge(u, v). */
    double edgeWeight(int u, int v) const;

    /** Set the weight of an existing edge. @pre hasEdge(u, v). */
    void setEdgeWeight(int u, int v, double weight);

    /** Add @p delta to edge (u, v), inserting it at weight 0 if absent. */
    void bumpEdgeWeight(int u, int v, double delta);

    /** Remove edge (u, v) if present; returns whether it existed. */
    bool removeEdge(int u, int v);

    /** Neighbour list of @p u. */
    const std::vector<GraphEdge> &neighbors(int u) const;

    /** Degree of @p u. */
    int degree(int u) const;

    /** All undirected edges as (u, v, w) with u < v. */
    struct EdgeRef { int u; int v; double w; };
    std::vector<EdgeRef> edges() const;

    /** Sum of all edge weights. */
    double totalWeight() const;

    /**
     * Contract vertex @p v into vertex @p u.
     *
     * All of v's edges are re-attached to u (weights of duplicate edges
     * add); v becomes isolated. Vertex ids are preserved (v stays a valid
     * but disconnected vertex) so callers can keep external id maps.
     */
    void contract(int u, int v);

  private:
    void checkVertex(int u) const;

    std::vector<std::vector<GraphEdge>> adj_;
    int numEdges_ = 0;
};

} // namespace qompress

#endif // QOMPRESS_GRAPH_GRAPH_HH
