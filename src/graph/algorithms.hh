/**
 * @file
 * Graph algorithms used by mapping, routing, and compression strategies:
 * BFS/Dijkstra shortest paths, shortest cycle through a vertex, and
 * connected components.
 */

#ifndef QOMPRESS_GRAPH_ALGORITHMS_HH
#define QOMPRESS_GRAPH_ALGORITHMS_HH

#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.hh"

namespace qompress {

/** Result of a single-source shortest-path computation. */
struct ShortestPaths
{
    /** dist[v] is the distance from the source; infinity if unreachable. */
    std::vector<double> dist;
    /** parent[v] on a shortest path tree; -1 for source/unreachable. */
    std::vector<int> parent;

    /** Convenience: the path source -> v (empty if unreachable). */
    std::vector<int> pathTo(int v) const;

    static constexpr double kInf = std::numeric_limits<double>::infinity();
};

/** Unweighted BFS distances (edge count). */
ShortestPaths bfs(const Graph &g, int source);

/**
 * Dijkstra with non-negative edge weights.
 *
 * @param weight_override optional callable (u, v, default_w) -> cost;
 *        lets the mapper price edges dynamically (encoded vs bare) while
 *        reusing one topology graph. Must be symmetric.
 */
ShortestPaths dijkstra(
    const Graph &g, int source,
    const std::function<double(int, int, double)> &weight_override = {});

/** Connected component id per vertex (ids are dense, start at 0). */
std::vector<int> connectedComponents(const Graph &g);

/**
 * Shortest cycle passing through @p v, as an ordered vertex list
 * (v first, no repeated endpoint). Empty if v lies on no cycle.
 *
 * Used by the Ring-Based strategy (paper section 5.3) which compresses
 * qubits within small interaction cycles. Runs one BFS from v and closes
 * the cycle at the first non-tree edge joining two different root
 * branches.
 */
std::vector<int> shortestCycleThrough(const Graph &g, int v);

/** Girth-style helper: length of shortest cycle through each vertex
 *  (0 if the vertex is on no cycle). */
std::vector<int> cycleLengthPerVertex(const Graph &g);

} // namespace qompress

#endif // QOMPRESS_GRAPH_ALGORITHMS_HH
