#include "graph/graph.hh"

#include <algorithm>

#include "common/error.hh"

namespace qompress {

Graph::Graph(int n)
{
    QFATAL_IF(n < 0, "graph size must be non-negative, got ", n);
    adj_.resize(n);
}

int
Graph::addVertex()
{
    adj_.emplace_back();
    return numVertices() - 1;
}

void
Graph::checkVertex(int u) const
{
    QPANIC_IF(u < 0 || u >= numVertices(),
              "vertex ", u, " out of range [0, ", numVertices(), ")");
}

bool
Graph::addEdge(int u, int v, double weight)
{
    checkVertex(u);
    checkVertex(v);
    QPANIC_IF(u == v, "self loop on vertex ", u);
    if (hasEdge(u, v))
        return false;
    adj_[u].push_back({v, weight});
    adj_[v].push_back({u, weight});
    ++numEdges_;
    return true;
}

bool
Graph::hasEdge(int u, int v) const
{
    checkVertex(u);
    checkVertex(v);
    const auto &a = adj_[u];
    return std::any_of(a.begin(), a.end(),
                       [v](const GraphEdge &e) { return e.to == v; });
}

double
Graph::edgeWeight(int u, int v) const
{
    checkVertex(u);
    checkVertex(v);
    for (const auto &e : adj_[u]) {
        if (e.to == v)
            return e.weight;
    }
    QPANIC("edgeWeight: no edge (", u, ", ", v, ")");
}

void
Graph::setEdgeWeight(int u, int v, double weight)
{
    checkVertex(u);
    checkVertex(v);
    bool found = false;
    for (auto &e : adj_[u]) {
        if (e.to == v) {
            e.weight = weight;
            found = true;
        }
    }
    for (auto &e : adj_[v]) {
        if (e.to == u)
            e.weight = weight;
    }
    QPANIC_IF(!found, "setEdgeWeight: no edge (", u, ", ", v, ")");
}

void
Graph::bumpEdgeWeight(int u, int v, double delta)
{
    if (!hasEdge(u, v))
        addEdge(u, v, 0.0);
    setEdgeWeight(u, v, edgeWeight(u, v) + delta);
}

bool
Graph::removeEdge(int u, int v)
{
    checkVertex(u);
    checkVertex(v);
    if (!hasEdge(u, v))
        return false;
    auto erase = [](std::vector<GraphEdge> &a, int t) {
        a.erase(std::remove_if(a.begin(), a.end(),
                               [t](const GraphEdge &e) {
                                   return e.to == t;
                               }),
                a.end());
    };
    erase(adj_[u], v);
    erase(adj_[v], u);
    --numEdges_;
    return true;
}

const std::vector<GraphEdge> &
Graph::neighbors(int u) const
{
    checkVertex(u);
    return adj_[u];
}

int
Graph::degree(int u) const
{
    checkVertex(u);
    return static_cast<int>(adj_[u].size());
}

std::vector<Graph::EdgeRef>
Graph::edges() const
{
    std::vector<EdgeRef> out;
    out.reserve(numEdges_);
    for (int u = 0; u < numVertices(); ++u) {
        for (const auto &e : adj_[u]) {
            if (u < e.to)
                out.push_back({u, e.to, e.weight});
        }
    }
    return out;
}

double
Graph::totalWeight() const
{
    double sum = 0.0;
    for (const auto &e : edges())
        sum += e.w;
    return sum;
}

void
Graph::contract(int u, int v)
{
    checkVertex(u);
    checkVertex(v);
    QPANIC_IF(u == v, "contract: identical vertices");
    // Collect v's neighbours first: removing edges mutates adj_[v].
    const std::vector<GraphEdge> vedges = adj_[v];
    for (const auto &e : vedges) {
        removeEdge(v, e.to);
        if (e.to == u)
            continue;
        bumpEdgeWeight(u, e.to, e.weight);
    }
}

} // namespace qompress
