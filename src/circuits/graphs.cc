#include "circuits/graphs.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/rng.hh"
#include "graph/algorithms.hh"

namespace qompress {

Graph
randomGraph(int n, double density, std::uint64_t seed)
{
    QFATAL_IF(n < 2, "random graph needs >= 2 vertices, got ", n);
    Rng rng(seed);
    Graph g(n);
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            if (rng.nextBool(density))
                g.addEdge(u, v);
        }
    }
    // Stitch components together so the QAOA circuit is one program.
    auto comp = connectedComponents(g);
    const int num_comp = *std::max_element(comp.begin(), comp.end()) + 1;
    if (num_comp > 1) {
        std::vector<int> rep(num_comp, -1);
        for (int v = 0; v < n; ++v) {
            if (rep[comp[v]] == -1)
                rep[comp[v]] = v;
        }
        for (int ci = 1; ci < num_comp; ++ci)
            g.addEdge(rep[ci - 1], rep[ci]);
    }
    return g;
}

Graph
cylinderGraph(int rings, int ring_size)
{
    QFATAL_IF(rings < 2 || ring_size < 3,
              "cylinder needs rings >= 2 and ring_size >= 3, got ",
              rings, "x", ring_size);
    Graph g(rings * ring_size);
    auto id = [ring_size](int r, int k) { return r * ring_size + k; };
    for (int r = 0; r < rings; ++r) {
        for (int k = 0; k < ring_size; ++k) {
            g.addEdge(id(r, k), id(r, (k + 1) % ring_size));
            if (r + 1 < rings)
                g.addEdge(id(r, k), id(r + 1, k));
        }
    }
    return g;
}

Graph
cylinderGraphForSize(int n)
{
    QFATAL_IF(n < 8, "cylinder needs >= 8 vertices, got ", n);
    const int ring_size = 4;
    return cylinderGraph(std::max(2, n / ring_size), ring_size);
}

Graph
torusGraph(int rows, int cols)
{
    QFATAL_IF(rows < 3 || cols < 3,
              "torus needs rows, cols >= 3, got ", rows, "x", cols);
    Graph g(rows * cols);
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            g.addEdge(id(r, c), id(r, (c + 1) % cols));
            g.addEdge(id(r, c), id((r + 1) % rows, c));
        }
    }
    return g;
}

Graph
torusGraphForSize(int n)
{
    QFATAL_IF(n < 12, "torus needs >= 12 vertices, got ", n);
    const int cols = 4;
    return torusGraph(std::max(3, n / cols), cols);
}

Graph
binaryWeldedTree(int depth, std::uint64_t seed)
{
    QFATAL_IF(depth < 1, "BWT needs depth >= 1, got ", depth);
    const int per_tree = (1 << (depth + 1)) - 1;
    const int leaves = 1 << depth;
    Graph g(2 * per_tree);
    // Heap-ordered trees: tree A at [0, per_tree), tree B offset.
    for (int t = 0; t < 2; ++t) {
        const int base = t * per_tree;
        for (int v = 0; v < per_tree; ++v) {
            const int left = 2 * v + 1;
            const int right = 2 * v + 2;
            if (left < per_tree)
                g.addEdge(base + v, base + left);
            if (right < per_tree)
                g.addEdge(base + v, base + right);
        }
    }
    // Weld: a random alternating cycle through all 2*leaves leaf nodes,
    // giving every leaf degree 2 across the weld (the classic welded
    // tree construction).
    const int first_leaf = leaves - 1;
    std::vector<int> la(leaves), lb(leaves);
    for (int i = 0; i < leaves; ++i) {
        la[i] = first_leaf + i;
        lb[i] = per_tree + first_leaf + i;
    }
    Rng rng(seed);
    rng.shuffle(la);
    rng.shuffle(lb);
    for (int i = 0; i < leaves; ++i) {
        g.addEdge(la[i], lb[i]);
        g.addEdge(lb[i], la[(i + 1) % leaves]);
    }
    return g;
}

Graph
binaryWeldedTreeForSize(int n, std::uint64_t seed)
{
    QFATAL_IF(n < 6, "BWT needs >= 6 vertices, got ", n);
    int depth = 1;
    while (2 * ((1 << (depth + 2)) - 1) <= n)
        ++depth;
    return binaryWeldedTree(depth, seed);
}

} // namespace qompress
