/**
 * @file
 * QAOA circuit construction from an interaction graph (paper
 * section 6.3, ref. [16]).
 */

#ifndef QOMPRESS_CIRCUITS_QAOA_HH
#define QOMPRESS_CIRCUITS_QAOA_HH

#include <cstdint>
#include <string>

#include "graph/graph.hh"
#include "ir/circuit.hh"

namespace qompress {

/** Options for qaoaFromGraph(). */
struct QaoaOptions
{
    /** ZZ phase angle per edge. */
    double gamma = 0.4;
    /** Randomize edge application order (the paper does). */
    std::uint64_t order_seed = 17;
    /** Prepend a Hadamard layer (|+>^n initial state). */
    bool initial_h_layer = true;
    /** Number of cost layers. */
    int layers = 1;
};

/**
 * Build the paper's QAOA-style circuit: for each graph edge, in a
 * seeded random order, emit CX - RZ - CX realizing exp(-i gamma ZZ).
 */
Circuit qaoaFromGraph(const Graph &g, const QaoaOptions &opts = {},
                      const std::string &name = "qaoa");

/**
 * The deep heavy-hex workload: @p rounds-round QAOA whose problem
 * graph is the IBM 65-qubit heavy-hex lattice itself (hardware-native
 * QAOA, the cycle-heavy regime where routing-cache reuse compounds).
 * For @p n < 65 the problem graph is the connected BFS-induced
 * subgraph of the first @p n lattice sites reached from the lattice
 * center.
 */
Circuit qaoaHeavyHex(int n, int rounds = 2);

} // namespace qompress

#endif // QOMPRESS_CIRCUITS_QAOA_HH
