#include "circuits/registry.hh"

#include <algorithm>

#include "circuits/arithmetic.hh"
#include "circuits/bv.hh"
#include "circuits/cnu.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "circuits/qram.hh"
#include "common/error.hh"
#include "common/strings.hh"

namespace qompress {

namespace {

Circuit
makeQaoa(Graph g, const char *base, int size)
{
    QaoaOptions opts;
    opts.order_seed = 17 + static_cast<std::uint64_t>(size);
    return qaoaFromGraph(g, opts, format("%s_%d", base, g.numVertices()));
}

} // namespace

const std::vector<BenchmarkFamily> &
benchmarkFamilies()
{
    static const std::vector<BenchmarkFamily> families = {
        {"cuccaro", 4,
         [](int n) { return cuccaroAdderForSize(n); }},
        {"cnu", 3,
         [](int n) { return generalizedToffoliForSize(n); }},
        {"qram", 6,
         [](int n) { return qramForSize(n); }},
        {"bv", 2,
         [](int n) { return bernsteinVazirani(n); }},
        {"qaoa_random", 5,
         [](int n) {
             return makeQaoa(randomGraph(n, 0.3, 11 + n), "qaoa_random",
                             n);
         }},
        {"qaoa_cylinder", 8,
         [](int n) {
             return makeQaoa(cylinderGraphForSize(n), "qaoa_cylinder", n);
         }},
        {"qaoa_torus", 12,
         [](int n) {
             return makeQaoa(torusGraphForSize(n), "qaoa_torus", n);
         }},
        {"qaoa_bwt", 6,
         [](int n) {
             return makeQaoa(binaryWeldedTreeForSize(n), "qaoa_bwt", n);
         }},
        // The deep communication workload: hardware-native QAOA on the
        // heavy-hex lattice (2 cost rounds; bench_hotpaths sweeps the
        // round count separately).
        {"qaoa_heavyhex", 8,
         [](int n) { return qaoaHeavyHex(std::min(n, 65)); }},
    };
    return families;
}

const BenchmarkFamily &
benchmarkFamily(const std::string &name)
{
    for (const auto &f : benchmarkFamilies()) {
        if (f.name == name)
            return f;
    }
    QFATAL("unknown benchmark family '", name, "'");
}

} // namespace qompress
