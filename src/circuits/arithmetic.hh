/**
 * @file
 * Cuccaro ripple-carry adder benchmark (paper ref. [15]).
 */

#ifndef QOMPRESS_CIRCUITS_ARITHMETIC_HH
#define QOMPRESS_CIRCUITS_ARITHMETIC_HH

#include "ir/circuit.hh"

namespace qompress {

/**
 * The CDKM/Cuccaro ripple-carry adder on two @p bits -bit registers.
 *
 * Layout: qubit 0 is the incoming-carry ancilla, then interleaved
 * b0 a0 b1 a1 ..., and the final qubit is the carry-out z. Total
 * qubit count is 2*bits + 2. The MAJ/UMA ladder produces the chained
 * triangle interaction structure shown in the paper's Figure 5(d).
 */
Circuit cuccaroAdder(int bits);

/** Largest Cuccaro adder fitting in @p max_qubits (>= 4). */
Circuit cuccaroAdderForSize(int max_qubits);

} // namespace qompress

#endif // QOMPRESS_CIRCUITS_ARITHMETIC_HH
