#include "circuits/qram.hh"

#include "common/error.hh"
#include "common/strings.hh"

namespace qompress {

namespace {

/** CSWAP(c; a, b) decomposed as CX(b,a) CCX(c,a,b) CX(b,a). */
void
cswap(Circuit &c, QubitId ctl, QubitId a, QubitId b)
{
    c.cx(b, a);
    c.ccx(ctl, a, b);
    c.cx(b, a);
}

} // namespace

Circuit
qram(int depth)
{
    QFATAL_IF(depth < 2, "qram needs depth >= 2, got ", depth);
    const int routers = (1 << depth) - 1;
    const int n = depth + routers + 1;
    Circuit c(n, format("qram_%d", depth));

    auto addr = [](int i) { return i; };
    // Routers in heap order: router(0) is the root.
    auto router = [depth](int i) { return depth + i; };
    const QubitId bus = n - 1;

    // Route each address bit down to its tree level: the address bit is
    // deposited at the root, then conditionally swapped down through the
    // already-programmed router levels.
    for (int level = 0; level < depth; ++level) {
        c.cx(addr(level), router(0));
        int node = 0;
        for (int hop = 0; hop < level; ++hop) {
            const int left = 2 * node + 1;
            const int right = 2 * node + 2;
            // Route the in-flight bit left or right depending on the
            // router state at this node.
            cswap(c, router(node), router(left), router(right));
            c.cx(router(node), router(left));
            node = left;
        }
    }

    // Bus interaction: the addressed leaf toggles the bus. Each leaf
    // router controls a CX onto the bus gated by its parent chain.
    const int first_leaf = (1 << (depth - 1)) - 1;
    for (int leaf = first_leaf; leaf < routers; ++leaf) {
        const int parent = (leaf - 1) / 2;
        c.ccx(router(parent), router(leaf), bus);
    }

    // Unroute (reverse of routing) to restore the routers.
    for (int level = depth - 1; level >= 0; --level) {
        int node = 0;
        std::vector<std::pair<int, int>> hops;
        for (int hop = 0; hop < level; ++hop) {
            const int left = 2 * node + 1;
            hops.push_back({node, left});
            node = left;
        }
        for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
            const int nd = it->first;
            const int left = it->second;
            const int right = 2 * nd + 2;
            c.cx(router(nd), router(left));
            cswap(c, router(nd), router(left), router(right));
        }
        c.cx(addr(level), router(0));
    }
    return c;
}

Circuit
qramForSize(int max_qubits)
{
    QFATAL_IF(max_qubits < 6, "qram needs >= 6 qubits, got ", max_qubits);
    int depth = 2;
    while (depth + (1 << (depth + 1)) <= max_qubits)
        ++depth;
    return qram(depth);
}

} // namespace qompress
