/**
 * @file
 * Bernstein-Vazirani benchmark (paper ref. [7]).
 */

#ifndef QOMPRESS_CIRCUITS_BV_HH
#define QOMPRESS_CIRCUITS_BV_HH

#include <cstdint>

#include "ir/circuit.hh"

namespace qompress {

/**
 * Bernstein-Vazirani over @p num_qubits total qubits (the last is the
 * phase-kickback target).
 *
 * @param secret_seed seeds the hidden bitstring; every data qubit has
 *        probability 1/2 of appearing in the oracle. The interaction
 *        graph is a star around the target (no cycles, as the paper
 *        notes when explaining why Ring-Based finds nothing for BV).
 */
Circuit bernsteinVazirani(int num_qubits, std::uint64_t secret_seed = 7);

} // namespace qompress

#endif // QOMPRESS_CIRCUITS_BV_HH
