/**
 * @file
 * Generalized Toffoli (n-controlled NOT, "CNU") benchmark
 * (paper ref. [6], Barenco et al.).
 */

#ifndef QOMPRESS_CIRCUITS_CNU_HH
#define QOMPRESS_CIRCUITS_CNU_HH

#include "ir/circuit.hh"

namespace qompress {

/**
 * V-chain generalized Toffoli with @p controls controls.
 *
 * Uses controls-2 clean ancillas and one target: 2*controls - 1 qubits
 * total (controls >= 2). Consecutive Toffolis share an ancilla, giving
 * the chained-triangle interaction graph of the paper's Figure 5(b).
 */
Circuit generalizedToffoli(int controls);

/** Largest CNU fitting in @p max_qubits (>= 3). */
Circuit generalizedToffoliForSize(int max_qubits);

} // namespace qompress

#endif // QOMPRESS_CIRCUITS_CNU_HH
