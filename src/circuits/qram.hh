/**
 * @file
 * Bucket-brigade-style QRAM benchmark (paper ref. [21]).
 */

#ifndef QOMPRESS_CIRCUITS_QRAM_HH
#define QOMPRESS_CIRCUITS_QRAM_HH

#include "ir/circuit.hh"

namespace qompress {

/**
 * Bucket-brigade QRAM of address depth @p depth.
 *
 * Qubits: depth address bits, 2^depth - 1 router qubits arranged as a
 * binary tree, and one bus qubit; total depth + 2^depth. Address bits
 * are fanned out level by level with controlled routing (CSWAP
 * decomposed into CX+CCX), producing the mostly-serial structure with
 * many edge-sharing interaction cycles the paper describes for QRAM.
 */
Circuit qram(int depth);

/** Largest QRAM fitting in @p max_qubits (>= 6). */
Circuit qramForSize(int max_qubits);

} // namespace qompress

#endif // QOMPRESS_CIRCUITS_QRAM_HH
