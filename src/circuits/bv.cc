#include "circuits/bv.hh"

#include "common/error.hh"
#include "common/rng.hh"
#include "common/strings.hh"

namespace qompress {

Circuit
bernsteinVazirani(int num_qubits, std::uint64_t secret_seed)
{
    QFATAL_IF(num_qubits < 2, "BV needs >= 2 qubits, got ", num_qubits);
    const int data = num_qubits - 1;
    const QubitId target = num_qubits - 1;
    Circuit c(num_qubits, format("bv_%d", num_qubits));

    Rng rng(secret_seed);
    // |-> on the target, |+> on the data register.
    c.x(target);
    for (int q = 0; q < num_qubits; ++q)
        c.h(q);
    // Oracle: CX from every secret bit into the target. Guarantee at
    // least one bit so the circuit is never empty.
    bool any = false;
    for (int q = 0; q < data; ++q) {
        if (rng.nextBool(0.5)) {
            c.cx(q, target);
            any = true;
        }
    }
    if (!any)
        c.cx(0, target);
    // Final Hadamards reveal the secret on the data register.
    for (int q = 0; q < data; ++q)
        c.h(q);
    return c;
}

} // namespace qompress
