/**
 * @file
 * Interaction-graph generators for the QAOA benchmarks (paper
 * section 6.3, Figure 6): random 30%-density, cylinder, torus, and
 * binary welded tree.
 */

#ifndef QOMPRESS_CIRCUITS_GRAPHS_HH
#define QOMPRESS_CIRCUITS_GRAPHS_HH

#include <cstdint>

#include "graph/graph.hh"

namespace qompress {

/** Erdos-Renyi graph on @p n vertices with edge probability @p density
 *  (paper uses 0.3). Guaranteed connected by chaining components. */
Graph randomGraph(int n, double density = 0.3, std::uint64_t seed = 11);

/**
 * Cylinder: @p rings rings of @p ring_size vertices; edges around each
 * ring and between adjacent rings (Figure 6a).
 */
Graph cylinderGraph(int rings, int ring_size);

/** Cylinder with ~n vertices (ring size 4, n rounded down, min 8). */
Graph cylinderGraphForSize(int n);

/** Torus: @p rows x @p cols grid with both dimensions cyclic (Fig. 6b). */
Graph torusGraph(int rows, int cols);

/** Torus with ~n vertices (4 columns, n rounded down, min 12). */
Graph torusGraphForSize(int n);

/**
 * Binary welded tree (Figure 6c): two complete binary trees of depth
 * @p depth whose leaves are welded by a seeded random cycle (each leaf
 * gets degree 2 across the weld). 2*(2^(depth+1) - 1) vertices.
 */
Graph binaryWeldedTree(int depth, std::uint64_t seed = 13);

/** BWT with at most @p n vertices (depth rounded down, min depth 1). */
Graph binaryWeldedTreeForSize(int n, std::uint64_t seed = 13);

} // namespace qompress

#endif // QOMPRESS_CIRCUITS_GRAPHS_HH
