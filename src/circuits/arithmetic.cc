#include "circuits/arithmetic.hh"

#include "common/error.hh"
#include "common/strings.hh"

namespace qompress {

namespace {

void
maj(Circuit &c, QubitId carry, QubitId b, QubitId a)
{
    c.cx(a, b);
    c.cx(a, carry);
    c.ccx(carry, b, a);
}

void
uma(Circuit &c, QubitId carry, QubitId b, QubitId a)
{
    c.ccx(carry, b, a);
    c.cx(a, carry);
    c.cx(carry, b);
}

} // namespace

Circuit
cuccaroAdder(int bits)
{
    QFATAL_IF(bits < 1, "cuccaro adder needs at least 1 bit, got ", bits);
    const int n = 2 * bits + 2;
    Circuit c(n, format("cuccaro_%d", bits));

    auto b_q = [](int i) { return 1 + 2 * i; };
    auto a_q = [](int i) { return 2 + 2 * i; };
    const QubitId c0 = 0;
    const QubitId z = n - 1;

    maj(c, c0, b_q(0), a_q(0));
    for (int i = 1; i < bits; ++i)
        maj(c, a_q(i - 1), b_q(i), a_q(i));
    c.cx(a_q(bits - 1), z);
    for (int i = bits - 1; i >= 1; --i)
        uma(c, a_q(i - 1), b_q(i), a_q(i));
    uma(c, c0, b_q(0), a_q(0));
    return c;
}

Circuit
cuccaroAdderForSize(int max_qubits)
{
    QFATAL_IF(max_qubits < 4,
              "cuccaro needs >= 4 qubits, got ", max_qubits);
    return cuccaroAdder((max_qubits - 2) / 2);
}

} // namespace qompress
