#include "circuits/qaoa.hh"

#include <vector>

#include "arch/topology.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "common/strings.hh"

namespace qompress {

Circuit
qaoaFromGraph(const Graph &g, const QaoaOptions &opts,
              const std::string &name)
{
    QFATAL_IF(g.numVertices() < 2, "QAOA graph needs >= 2 vertices");
    QFATAL_IF(opts.layers < 1, "QAOA needs >= 1 layer");
    Circuit c(g.numVertices(), name);
    if (opts.initial_h_layer) {
        for (int q = 0; q < g.numVertices(); ++q)
            c.h(q);
    }
    Rng rng(opts.order_seed);
    auto edges = g.edges();
    for (int layer = 0; layer < opts.layers; ++layer) {
        rng.shuffle(edges);
        for (const auto &e : edges) {
            c.cx(e.u, e.v);
            c.rz(2.0 * opts.gamma, e.v);
            c.cx(e.u, e.v);
        }
    }
    return c;
}

Circuit
qaoaHeavyHex(int n, int rounds)
{
    QFATAL_IF(n < 2, "qaoaHeavyHex needs >= 2 vertices, got ", n);
    QFATAL_IF(rounds < 1, "qaoaHeavyHex needs >= 1 round, got ", rounds);
    const Topology hh = Topology::heavyHex65();
    QFATAL_IF(n > hh.numUnits(), "qaoaHeavyHex capped at ",
              hh.numUnits(), " vertices, got ", n);
    const Graph &lattice = hh.graph();

    // BFS order from the lattice center keeps any prefix connected.
    std::vector<int> keep;
    std::vector<bool> seen(lattice.numVertices(), false);
    std::vector<int> queue{hh.centerUnit()};
    seen[hh.centerUnit()] = true;
    for (std::size_t qi = 0;
         qi < queue.size() && static_cast<int>(keep.size()) < n; ++qi) {
        keep.push_back(queue[qi]);
        for (const auto &e : lattice.neighbors(queue[qi])) {
            if (!seen[e.to]) {
                seen[e.to] = true;
                queue.push_back(e.to);
            }
        }
    }
    QFATAL_IF(static_cast<int>(keep.size()) < n,
              "heavy-hex lattice exhausted at ", keep.size(),
              " vertices");

    std::vector<int> dense(lattice.numVertices(), -1);
    for (int i = 0; i < n; ++i)
        dense[keep[i]] = i;
    Graph sub(n);
    for (const auto &e : lattice.edges()) {
        if (dense[e.u] != -1 && dense[e.v] != -1)
            sub.addEdge(dense[e.u], dense[e.v]);
    }

    QaoaOptions opts;
    opts.layers = rounds;
    opts.order_seed = 29 + static_cast<std::uint64_t>(n);
    return qaoaFromGraph(sub, opts,
                         format("qaoa_heavyhex_%d_p%d", n, rounds));
}

} // namespace qompress
