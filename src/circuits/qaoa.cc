#include "circuits/qaoa.hh"

#include "common/error.hh"
#include "common/rng.hh"

namespace qompress {

Circuit
qaoaFromGraph(const Graph &g, const QaoaOptions &opts,
              const std::string &name)
{
    QFATAL_IF(g.numVertices() < 2, "QAOA graph needs >= 2 vertices");
    QFATAL_IF(opts.layers < 1, "QAOA needs >= 1 layer");
    Circuit c(g.numVertices(), name);
    if (opts.initial_h_layer) {
        for (int q = 0; q < g.numVertices(); ++q)
            c.h(q);
    }
    Rng rng(opts.order_seed);
    auto edges = g.edges();
    for (int layer = 0; layer < opts.layers; ++layer) {
        rng.shuffle(edges);
        for (const auto &e : edges) {
            c.cx(e.u, e.v);
            c.rz(2.0 * opts.gamma, e.v);
            c.cx(e.u, e.v);
        }
    }
    return c;
}

} // namespace qompress
