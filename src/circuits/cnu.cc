#include "circuits/cnu.hh"

#include "common/error.hh"
#include "common/strings.hh"

namespace qompress {

Circuit
generalizedToffoli(int controls)
{
    QFATAL_IF(controls < 2, "CNU needs >= 2 controls, got ", controls);
    const int k = controls;
    const int ancillas = k - 2;
    const int n = k + ancillas + 1;
    Circuit c(n, format("cnu_%d", k));

    auto ctl = [](int i) { return i; };
    auto anc = [k](int i) { return k + i; };
    const QubitId target = n - 1;

    if (k == 2) {
        c.ccx(ctl(0), ctl(1), target);
        return c;
    }

    // Compute the AND cascade into the ancilla chain.
    c.ccx(ctl(0), ctl(1), anc(0));
    for (int i = 1; i < ancillas; ++i)
        c.ccx(ctl(i + 1), anc(i - 1), anc(i));
    // Apply to target, then uncompute to restore ancillas.
    c.ccx(ctl(k - 1), anc(ancillas - 1), target);
    for (int i = ancillas - 1; i >= 1; --i)
        c.ccx(ctl(i + 1), anc(i - 1), anc(i));
    c.ccx(ctl(0), ctl(1), anc(0));
    return c;
}

Circuit
generalizedToffoliForSize(int max_qubits)
{
    QFATAL_IF(max_qubits < 3, "CNU needs >= 3 qubits, got ", max_qubits);
    return generalizedToffoli((max_qubits + 1) / 2);
}

} // namespace qompress
