/**
 * @file
 * Named benchmark registry so benches and tests can sweep the paper's
 * eight workloads uniformly by (name, approximate size).
 */

#ifndef QOMPRESS_CIRCUITS_REGISTRY_HH
#define QOMPRESS_CIRCUITS_REGISTRY_HH

#include <string>
#include <vector>

#include "ir/circuit.hh"

namespace qompress {

/** One benchmark family. */
struct BenchmarkFamily
{
    std::string name;    ///< "cuccaro", "cnu", "qram", "bv",
                         ///< "qaoa_random", "qaoa_cylinder",
                         ///< "qaoa_torus", "qaoa_bwt",
                         ///< "qaoa_heavyhex"
    int minQubits;       ///< smallest sensible instance

    /**
     * Build an instance with at most @p size qubits (families snap to
     * their nearest valid size below; the circuit reports its true
     * qubit count).
     */
    Circuit (*make)(int size);
};

/** The paper's eight evaluation families (section 6.3) plus the
 *  deep hardware-native heavy-hex QAOA workload. */
const std::vector<BenchmarkFamily> &benchmarkFamilies();

/** Look up a family by name; throws FatalError when unknown. */
const BenchmarkFamily &benchmarkFamily(const std::string &name);

} // namespace qompress

#endif // QOMPRESS_CIRCUITS_REGISTRY_HH
