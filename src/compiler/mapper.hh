/**
 * @file
 * Initial placement of logical qubits onto expanded-graph slots
 * (paper section 4.2), honouring compression pairs chosen by a
 * strategy (section 5).
 */

#ifndef QOMPRESS_COMPILER_MAPPER_HH
#define QOMPRESS_COMPILER_MAPPER_HH

#include <vector>

#include "compiler/cost_model.hh"
#include "compiler/layout.hh"
#include "ir/interaction.hh"

namespace qompress {

/**
 * One compression decision: encode @p first at position 0 and
 * @p second at position 1 of the same physical unit.
 */
struct Compression
{
    QubitId first;
    QubitId second;

    bool operator==(const Compression &o) const
    {
        return first == o.first && second == o.second;
    }
};

/** Placement policy knobs. */
struct MapperOptions
{
    /**
     * Allow the mapper to use position-1 slots for qubits outside any
     * committed pair (the EQM strategy). When false, compressions
     * happen only through explicit pairs.
     */
    bool allowDynamicSlot1 = false;

    /** Committed ordered pairs; must be disjoint. */
    std::vector<Compression> pairs;
};

/**
 * Greedy weighted placement.
 *
 * Seeds the highest-total-weight qubit at the device's center unit and
 * then repeatedly places the unmapped qubit with the strongest ties to
 * the already-placed set at the slot minimizing the weighted sum of
 * mapping distances (paper's scoring). Position-1 slots open up only
 * after position 0 of the same unit is taken; the second element of a
 * committed pair is forced into its partner's unit.
 *
 * @param cache optional shared distance-field cache. Mapping edge
 *        costs depend only on encoded bits, so the placement loop's
 *        fields stay valid across every placement that does not
 *        complete a pair -- with partial invalidation the cache pays
 *        off here even though the layout mutates between queries.
 *        Placement is identical with and without it.
 * @throws FatalError when the device cannot hold the circuit.
 */
Layout mapCircuit(const Circuit &circuit, const InteractionModel &im,
                  const CostModel &cost, const MapperOptions &opts,
                  DistanceFieldCache *cache = nullptr);

/** Partner lookup table from a pair list (kInvalid when unpaired). */
std::vector<QubitId> partnerTable(int num_qubits,
                                  const std::vector<Compression> &pairs);

} // namespace qompress

#endif // QOMPRESS_COMPILER_MAPPER_HH
