#include "compiler/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "arch/device.hh"
#include "common/error.hh"

namespace qompress {

void
scheduleCompiled(CompiledCircuit &compiled, const GateLibrary &lib,
                 const DeviceCalibration *cal)
{
    const int num_units = compiled.initialLayout().numUnits();
    std::vector<double> unit_free(num_units, 0.0);
    for (auto &g : compiled.mutableGates()) {
        g.duration = lib.duration(g.cls);
        g.fidelity = lib.fidelity(g.cls);
        if (cal && g.twoUnit()) {
            const auto us = g.units();
            if (us.size() == 2) {
                if (const auto *e = cal->edge(us[0], us[1])) {
                    g.fidelity *= e->fidelityScale;
                    g.duration *= e->durationScale;
                }
            }
        }
        double t = 0.0;
        for (UnitId u : g.units()) {
            QPANIC_IF(u < 0 || u >= num_units, "gate on unknown unit ", u);
            t = std::max(t, unit_free[u]);
        }
        g.start = t;
        for (UnitId u : g.units())
            unit_free[u] = t + g.duration;
    }
}

std::vector<bool>
criticalGates(const CompiledCircuit &compiled)
{
    const auto &gates = compiled.gates();
    const int n = static_cast<int>(gates.size());
    const int num_units = compiled.initialLayout().numUnits();
    const double total = compiled.totalDuration();

    // Longest remaining path per gate via per-unit successor chains.
    std::vector<double> rem(n, 0.0);
    std::vector<int> next_on_unit(num_units, -1);
    std::vector<bool> critical(n, false);
    for (int i = n - 1; i >= 0; --i) {
        double succ = 0.0;
        for (UnitId u : gates[i].units()) {
            const int nx = next_on_unit[u];
            if (nx != -1)
                succ = std::max(succ, rem[nx]);
        }
        rem[i] = gates[i].duration + succ;
        for (UnitId u : gates[i].units())
            next_on_unit[u] = i;
    }
    constexpr double kEps = 1e-6;
    for (int i = 0; i < n; ++i)
        critical[i] = gates[i].start + rem[i] >= total - kEps;
    return critical;
}

} // namespace qompress
