/**
 * @file
 * The end-to-end Qompress pipeline: decompose, map (with a set of
 * compressions), route, schedule, evaluate.
 */

#ifndef QOMPRESS_COMPILER_PIPELINE_HH
#define QOMPRESS_COMPILER_PIPELINE_HH

#include <vector>

#include "arch/topology.hh"
#include "compiler/mapper.hh"
#include "compiler/metrics.hh"
#include "compiler/router.hh"
#include "compiler/scheduler.hh"

namespace qompress {

/** Pipeline-wide knobs. */
struct CompilerConfig
{
    /** Charge one ENC gate per compressed pair at t = 0. */
    bool chargeInitialEnc = true;

    /** Multiplier discouraging SWAP paths that displace qubits of
     *  foreign ququarts (paper's second routing constraint). */
    double throughQuquartPenalty = 1.25;

    /** Router lookahead weight (0 = off); see RouterOptions. */
    double lookaheadWeight = 0.0;

    /** Reuse routing distance fields across rounds; see
     *  RouterOptions::useDistanceCache. */
    bool useDistanceCache = true;

    /** Run the structural validator on every compile (cheap; the
     *  exhaustive strategy turns it off in its inner loop). */
    bool validate = true;
};

/** Everything a compile produces. */
struct CompileResult
{
    CompiledCircuit compiled;
    Metrics metrics;
    /** Pairs actually encoded (explicit or arising from EQM mapping). */
    std::vector<Compression> compressions;
};

/**
 * Compile @p circuit onto @p topo with the given committed pairs.
 *
 * @param allow_dynamic_slot1 let the mapper form additional pairs on
 *        its own (the EQM behaviour).
 */
CompileResult compileWithPairs(const Circuit &circuit,
                               const Topology &topo,
                               const GateLibrary &lib,
                               const std::vector<Compression> &pairs,
                               bool allow_dynamic_slot1,
                               const CompilerConfig &cfg = {});

/** The pairs sharing a unit in @p layout (first = position 0). */
std::vector<Compression> encodedPairsOf(const Layout &layout);

} // namespace qompress

#endif // QOMPRESS_COMPILER_PIPELINE_HH
