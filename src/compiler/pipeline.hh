/**
 * @file
 * The end-to-end Qompress pipeline: decompose, map (with a set of
 * compressions), route, schedule, evaluate.
 */

#ifndef QOMPRESS_COMPILER_PIPELINE_HH
#define QOMPRESS_COMPILER_PIPELINE_HH

#include <memory>
#include <vector>

#include "arch/device.hh"
#include "arch/topology.hh"
#include "compiler/mapper.hh"
#include "compiler/metrics.hh"
#include "compiler/router.hh"
#include "compiler/scheduler.hh"

namespace qompress {

/** Pipeline-wide knobs. */
struct CompilerConfig
{
    /** Charge one ENC gate per compressed pair at t = 0. */
    bool chargeInitialEnc = true;

    /** Multiplier discouraging SWAP paths that displace qubits of
     *  foreign ququarts (paper's second routing constraint). */
    double throughQuquartPenalty = 1.25;

    /** Router lookahead weight (0 = off); see RouterOptions. */
    double lookaheadWeight = 0.0;

    /** Reuse routing distance fields across rounds; see
     *  RouterOptions::useDistanceCache. */
    bool useDistanceCache = true;

    /** Run the structural validator on every compile (cheap; the
     *  exhaustive strategy turns it off in its inner loop). */
    bool validate = true;

    /**
     * Device calibration pricing the compile (see arch/device.hh):
     * per-unit T1/readout replace the GateLibrary constants and
     * per-edge scales adjust cross-unit gates. Null (the default)
     * compiles the uncalibrated device, bit-identical to a config
     * without the field. Shared immutable so configs stay cheap to
     * copy; the unit count must match the topology compiled against.
     */
    std::shared_ptr<const DeviceCalibration> calibration;

    /**
     * Lanes for compile-level fan-out — the exhaustive strategy's
     * parallel pair sweep and the portfolio strategy's parallel
     * member compiles (eval sweeps inherit it via SweepSpec::threads):
     * 0 = ThreadPool::defaultThreadCount() (the QOMPRESS_THREADS env
     * override, else hardware_concurrency); 1 = force serial;
     * N > 1 = exactly N lanes. Results (pairings, winners, records)
     * are bit-identical across all settings; only wall-clock changes.
     */
    int threads = 0;
};

/** Everything a compile produces. */
struct CompileResult
{
    CompiledCircuit compiled;
    Metrics metrics;
    /** Pairs actually encoded (explicit or arising from EQM mapping). */
    std::vector<Compression> compressions;
};

/**
 * Shared pricing state for one compile: the expanded graph, the cost
 * model over it, and one mutation-aware distance-field cache that
 * mapping, routing, and the compression strategies all draw from.
 *
 * Before this existed every strategy re-derived its own graph/cost
 * pair and re-ran Dijkstra ad hoc; sharing one context lets fields
 * computed while choosing pairs survive into mapping and routing
 * (partial invalidation keeps them sound across layout mutations and
 * even across distinct Layout instances).
 *
 * Non-copyable: the cost model and cache hold references into the
 * context's own expanded graph.
 *
 * Thread-safety: a CompileContext is single-writer state — the cache
 * mutates on every lookup — so it must never be shared across
 * concurrently running compiles. Parallel callers (the exhaustive
 * strategy's fan-out) build one context per lane; contexts over the
 * same topo/lib/cfg are interchangeable result-wise because caching
 * never changes what a compile emits, only how fast it prices paths.
 */
class CompileContext
{
  public:
    CompileContext(const Topology &topo, const GateLibrary &lib,
                   const CompilerConfig &cfg);

    CompileContext(const CompileContext &) = delete;
    CompileContext &operator=(const CompileContext &) = delete;

    const ExpandedGraph &expanded() const { return xg_; }
    const CostModel &cost() const { return cost_; }

    /** The shared cache, or nullptr when cfg.useDistanceCache was off
     *  (callers then fall back to direct Dijkstra). */
    DistanceFieldCache *cache()
    {
        return use_cache_ ? &cache_ : nullptr;
    }

    /** Counter access regardless of enablement (for benches/tests). */
    const DistanceFieldCache &cacheStats() const { return cache_; }

  private:
    ExpandedGraph xg_;
    /** Owned so pricing never dangles if the caller's cfg dies first;
     *  declared before cost_, which captures the raw pointer. */
    std::shared_ptr<const DeviceCalibration> cal_;
    CostModel cost_;
    DistanceFieldCache cache_;
    bool use_cache_;
};

/**
 * Compile @p circuit onto @p topo with the given committed pairs.
 *
 * @param allow_dynamic_slot1 let the mapper form additional pairs on
 *        its own (the EQM behaviour).
 * @param ctx optional shared context (must have been built over the
 *        same topo/lib/cfg pricing; its construction cfg is the single
 *        authority on whether caching is enabled). The exhaustive
 *        strategy passes one across its hundreds of candidate compiles
 *        so distance fields are reused between them. When null a
 *        compile-local context is used.
 *
 * Reentrant: safe to call from multiple threads at once provided each
 * call gets its own @p ctx (or null); all other inputs are read-only.
 */
CompileResult compileWithPairs(const Circuit &circuit,
                               const Topology &topo,
                               const GateLibrary &lib,
                               const std::vector<Compression> &pairs,
                               bool allow_dynamic_slot1,
                               const CompilerConfig &cfg = {},
                               CompileContext *ctx = nullptr);

/** The pairs sharing a unit in @p layout (first = position 0). */
std::vector<Compression> encodedPairsOf(const Layout &layout);

} // namespace qompress

#endif // QOMPRESS_COMPILER_PIPELINE_HH
