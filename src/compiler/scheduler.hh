/**
 * @file
 * Resource-constrained ASAP scheduling of compiled circuits: each
 * physical unit executes one gate at a time, which realizes the
 * ququart serialization the paper describes, and start times feed the
 * coherence-error model.
 */

#ifndef QOMPRESS_COMPILER_SCHEDULER_HH
#define QOMPRESS_COMPILER_SCHEDULER_HH

#include <vector>

#include "compiler/compiled_circuit.hh"

namespace qompress {

struct DeviceCalibration;

/**
 * Assign start/duration/fidelity to every gate, in list order, with
 * per-unit earliest-availability (gates on disjoint units overlap
 * freely; gates sharing a unit serialize).
 *
 * With a calibration, cross-unit gates pick up their coupling's
 * fidelity/duration scales on top of the library class constants; a
 * null @p cal reproduces the uncalibrated schedule bit-identically.
 */
void scheduleCompiled(CompiledCircuit &compiled, const GateLibrary &lib,
                      const DeviceCalibration *cal = nullptr);

/**
 * After scheduling: flags gates lying on a longest (critical) path.
 * Used by the Exhaustive Compression strategy's priority classes.
 */
std::vector<bool> criticalGates(const CompiledCircuit &compiled);

} // namespace qompress

#endif // QOMPRESS_COMPILER_SCHEDULER_HH
