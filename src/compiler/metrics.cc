#include "compiler/metrics.hh"

#include <algorithm>
#include <cmath>

#include "arch/device.hh"
#include "common/error.hh"

namespace qompress {

Metrics
computeMetrics(const CompiledCircuit &compiled, const GateLibrary &lib,
               const DeviceCalibration *cal)
{
    Metrics m;
    m.numGates = compiled.numGates();
    m.numRoutingGates = compiled.numRoutingGates();
    m.classHistogram = compiled.classHistogram();
    m.durationNs = compiled.totalDuration();
    m.numEncodedUnits = compiled.initialLayout().numEncodedUnits();

    for (const auto &g : compiled.gates()) {
        m.gateEps *= g.fidelity;
        if (g.twoUnit())
            ++m.numTwoUnitGates;
    }

    // Coherence: sweep occupancy-change events in time order. Between
    // events, each unit holding k qubits contributes k*dt/T1(state)
    // where the state is ququart iff k == 2.
    const Layout &init = compiled.initialLayout();
    const int num_units = init.numUnits();
    std::vector<int> occ(num_units, 0);
    for (UnitId u = 0; u < num_units; ++u)
        occ[u] = init.unitOccupancy(u);

    struct Event
    {
        double time;
        UnitId unit;
        int newOcc;
    };
    std::vector<Event> events;
    for (const auto &g : compiled.gates()) {
        if (g.cls == PhysGateClass::Encode &&
            !ExpandedGraph::sameUnit(g.slots[0], g.slots[1])) {
            // Worst case: the pair counts as a ququart from ENC start.
            events.push_back({g.start, slotUnit(g.slots[0]), 2});
            events.push_back({g.start, slotUnit(g.slots[1]), 0});
        } else if (g.cls == PhysGateClass::Decode) {
            // Worst case: still a ququart until DEC completes.
            events.push_back({g.end(), slotUnit(g.slots[0]), 1});
            events.push_back({g.end(), slotUnit(g.slots[1]), 1});
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.time < b.time;
              });

    auto rate_of = [&](UnitId u, int k) {
        if (k == 0)
            return 0.0;
        if (cal) {
            return k == 2 ? 2.0 / cal->t1QuquartNs[u]
                          : 1.0 / cal->t1QubitNs[u];
        }
        return k == 2 ? 2.0 / lib.t1Ququart() : 1.0 / lib.t1Qubit();
    };
    double rate = 0.0;
    double qb_rate = 0.0; // qubits currently in qubit state
    double qd_rate = 0.0; // qubits currently in ququart state
    for (UnitId u = 0; u < num_units; ++u) {
        rate += rate_of(u, occ[u]);
        if (occ[u] == 1)
            qb_rate += 1.0;
        else if (occ[u] == 2)
            qd_rate += 2.0;
    }

    double integral = 0.0;
    double now = 0.0;
    const double total = m.durationNs;
    for (const auto &ev : events) {
        const double t = std::min(ev.time, total);
        if (t > now) {
            integral += rate * (t - now);
            m.qubitTimeNs += qb_rate * (t - now);
            m.ququartTimeNs += qd_rate * (t - now);
            now = t;
        }
        rate -= rate_of(ev.unit, occ[ev.unit]);
        if (occ[ev.unit] == 1)
            qb_rate -= 1.0;
        else if (occ[ev.unit] == 2)
            qd_rate -= 2.0;
        occ[ev.unit] = ev.newOcc;
        rate += rate_of(ev.unit, occ[ev.unit]);
        if (occ[ev.unit] == 1)
            qb_rate += 1.0;
        else if (occ[ev.unit] == 2)
            qd_rate += 2.0;
    }
    if (total > now) {
        integral += rate * (total - now);
        m.qubitTimeNs += qb_rate * (total - now);
        m.ququartTimeNs += qd_rate * (total - now);
    }

    m.coherenceEps = std::exp(-integral);
    if (cal) {
        // Readout: every logical qubit is measured where it ends up;
        // a unit holding k qubits contributes (1 - ro)^k.
        const Layout &fin = compiled.finalLayout();
        const int fin_units =
            std::min(fin.numUnits(), cal->numUnits());
        for (UnitId u = 0; u < fin_units; ++u) {
            for (int k = 0; k < fin.unitOccupancy(u); ++k)
                m.readoutEps *= 1.0 - cal->readoutError[u];
        }
        m.totalEps = m.gateEps * m.coherenceEps * m.readoutEps;
    } else {
        m.totalEps = m.gateEps * m.coherenceEps;
    }
    return m;
}

} // namespace qompress
