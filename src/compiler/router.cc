#include "compiler/router.hh"

#include <algorithm>
#include <functional>
#include <map>

#include "common/error.hh"
#include "ir/passes.hh"

namespace qompress {

namespace {

bool
adjacentOrSameUnit(const ExpandedGraph &xg, SlotId a, SlotId b)
{
    return ExpandedGraph::sameUnit(a, b) || xg.adjacent(a, b);
}

/** Remaining critical-path length (in layers) per gate. */
std::vector<int>
remainingPath(const Circuit &c)
{
    const auto &gates = c.gates();
    std::vector<int> rem(gates.size(), 1);
    std::vector<int> next_rem(c.numQubits(), 0);
    for (int i = static_cast<int>(gates.size()) - 1; i >= 0; --i) {
        int succ = 0;
        for (QubitId q : gates[i].qubits)
            succ = std::max(succ, next_rem[q]);
        rem[i] = 1 + succ;
        for (QubitId q : gates[i].qubits)
            next_rem[q] = rem[i];
    }
    return rem;
}

/** Emit one classified SWAP that exchanges the occupants of a and b. */
void
emitSwap(CompiledCircuit &out, Layout &layout, SlotId a, SlotId b,
         bool is_routing, int source_gate)
{
    const PhysGateClass cls = classifySwap(
        slotPos(a), layout.unitEncoded(slotUnit(a)),
        slotPos(b), layout.unitEncoded(slotUnit(b)),
        ExpandedGraph::sameUnit(a, b));
    PhysGate g;
    g.cls = cls;
    g.slots = {a, b};
    g.logical = GateType::Swap;
    g.isRouting = is_routing;
    g.sourceGate = source_gate;
    out.add(g);
    layout.swapSlots(a, b);
}

/** Route one two-operand gate until its operands can interact.
 *  @param next_partner slot of each qubit's next interaction partner
 *         after this gate (kInvalid when none); used by lookahead. */
void
routeTwoQubitGate(const Gate &g, int gate_idx, Layout &layout,
                  const CostModel &cost, DistanceFieldCache &cache,
                  CompiledCircuit &out, const RouterOptions &ropts,
                  const std::function<QubitId(QubitId)> &next_partner)
{
    const ExpandedGraph &xg = cost.expanded();
    const QubitId q0 = g.qubits[0];
    const QubitId q1 = g.qubits[1];
    const bool is_cx = g.type == GateType::CX;

    // -log success of the final interaction with q0's qubit at x and
    // q1's at y.
    auto final_cost = [&](SlotId x, SlotId y) {
        return is_cx ? cost.cxCost(x, y, layout)
                     : cost.swapCost(x, y, layout);
    };

    int rounds = 0;
    while (!adjacentOrSameUnit(xg, layout.slotOf(q0), layout.slotOf(q1))) {
        QPANIC_IF(++rounds > layout.numSlots() + 4,
                  "router failed to converge for gate ", g.str());
        const SlotId a = layout.slotOf(q0);
        const SlotId b = layout.slotOf(q1);

        // Plan moving q0 toward q1 and vice versa; take the cheaper.
        struct Plan
        {
            double total = ShortestPaths::kInf;
            std::vector<int> path; // slots from source to meeting slot
        };
        // Fetch a distance field either from the cache (hot path) or
        // freshly (the differential baseline). `holder` keeps the
        // uncached copy alive.
        auto get_field = [&](SlotId source,
                             ShortestPaths &holder) -> const ShortestPaths & {
            if (ropts.useDistanceCache)
                return cache.routing(source, layout);
            holder = cost.routingDistances(source, layout);
            return holder;
        };
        auto plan_move = [&](SlotId from, SlotId toward,
                             bool moving_ctl) {
            Plan plan;
            ShortestPaths field_holder;
            const ShortestPaths &field = get_field(from, field_holder);
            // Lookahead: keep the moved qubit close to whoever it
            // interacts with next.
            const QubitId mover = layout.qubitAt(from);
            ShortestPaths ahead_holder;
            const ShortestPaths *ahead_field = nullptr;
            if (ropts.lookaheadWeight > 0.0 && next_partner) {
                const QubitId p = next_partner(mover);
                if (p != kInvalid && layout.isMapped(p)) {
                    ahead_field =
                        &get_field(layout.slotOf(p), ahead_holder);
                }
            }
            for (SlotId x = 0; x < layout.numSlots(); ++x) {
                if (x == toward || field.dist[x] == ShortestPaths::kInf)
                    continue;
                if (!adjacentOrSameUnit(xg, x, toward))
                    continue;
                const double fc = moving_ctl ? final_cost(x, toward)
                                             : final_cost(toward, x);
                double total = field.dist[x] + fc;
                if (ahead_field &&
                    ahead_field->dist[x] != ShortestPaths::kInf) {
                    total += ropts.lookaheadWeight *
                             ahead_field->dist[x];
                }
                if (total < plan.total) {
                    plan.total = total;
                    plan.path = field.pathTo(x);
                }
            }
            return plan;
        };
        const Plan plan_a = plan_move(a, b, true);
        const Plan plan_b = plan_move(b, a, false);
        QFATAL_IF(plan_a.total == ShortestPaths::kInf &&
                  plan_b.total == ShortestPaths::kInf,
                  "no routing path for gate ", g.str(),
                  " (disconnected occupied region)");
        const Plan &plan = plan_a.total <= plan_b.total ? plan_a : plan_b;

        // Execute the SWAP chain, re-checking adjacency after each hop
        // (the path may displace the other operand).
        for (std::size_t h = 0; h + 1 < plan.path.size(); ++h) {
            emitSwap(out, layout, plan.path[h], plan.path[h + 1],
                     /*is_routing=*/true, gate_idx);
            if (adjacentOrSameUnit(xg, layout.slotOf(q0),
                                   layout.slotOf(q1))) {
                break;
            }
        }
    }

    // Emit the gate itself at the final positions.
    const SlotId a = layout.slotOf(q0);
    const SlotId b = layout.slotOf(q1);
    PhysGate pg;
    pg.slots = {a, b};
    pg.logical = g.type;
    pg.param = g.param;
    pg.sourceGate = gate_idx;
    if (is_cx) {
        pg.cls = classifyCx(slotPos(a),
                            layout.unitEncoded(slotUnit(a)),
                            slotPos(b),
                            layout.unitEncoded(slotUnit(b)),
                            ExpandedGraph::sameUnit(a, b));
    } else {
        // A program-level SWAP performs the logical exchange itself,
        // so qubit tracking must NOT follow it (a routing SWAP moves
        // data transparently and does update the layout; doing both
        // would compose to the identity).
        pg.cls = classifySwap(slotPos(a),
                              layout.unitEncoded(slotUnit(a)),
                              slotPos(b),
                              layout.unitEncoded(slotUnit(b)),
                              ExpandedGraph::sameUnit(a, b));
    }
    out.add(pg);
}

} // namespace

void
routeCircuit(const Circuit &native, Layout &layout, const CostModel &cost,
             CompiledCircuit &out, const RouterOptions &opts,
             DistanceFieldCache *cache)
{
    QFATAL_IF(!isNative(native),
              "routeCircuit requires a native (1q/CX/SWAP) circuit; run "
              "decomposeToNativeGates first");
    const auto layers = native.asapLayers();
    const auto rem = remainingPath(native);
    const auto &gates = native.gates();

    // Distance-field cache for the pass: routing SWAPs never change
    // slot occupancy, so cached Dijkstra fields stay valid across
    // rounds (and across gates). A caller-provided cache (shared with
    // mapping via CompileContext) is reused; otherwise a pass-local
    // one suffices.
    DistanceFieldCache local_cache(cost);
    if (!cache)
        cache = &local_cache;

    // For lookahead: the partner of each qubit's next 2q gate after a
    // given gate index. Built lazily per routed gate from a per-qubit
    // ordered gate list.
    std::vector<std::vector<int>> gates_of(native.numQubits());
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (gates[i].arity() == 2) {
            for (QubitId q : gates[i].qubits)
                gates_of[q].push_back(static_cast<int>(i));
        }
    }
    auto next_partner_after = [&](QubitId q, int gate_idx) -> QubitId {
        for (int gi : gates_of[q]) {
            if (gi > gate_idx) {
                const auto &ng = gates[gi];
                return ng.qubits[0] == q ? ng.qubits[1] : ng.qubits[0];
            }
        }
        return kInvalid;
    };

    // Bucket gate indices by ASAP layer.
    std::map<int, std::vector<int>> by_layer;
    for (std::size_t i = 0; i < gates.size(); ++i)
        by_layer[layers[i]].push_back(static_cast<int>(i));

    for (auto &[layer, idxs] : by_layer) {
        (void)layer;
        // 1-qubit gates first (they commute with this layer's routing):
        // fuse pairs landing on one encoded unit into a ququart gate.
        std::map<UnitId, std::vector<int>> sq_by_unit;
        std::vector<int> twoq;
        for (int i : idxs) {
            if (gates[i].arity() == 1) {
                sq_by_unit[slotUnit(layout.slotOf(gates[i].qubits[0]))]
                    .push_back(i);
            } else {
                twoq.push_back(i);
            }
        }
        for (const auto &[unit, sqs] : sq_by_unit) {
            QPANIC_IF(sqs.size() > 2, "more than two 1q gates on unit ",
                      unit, " in one layer");
            if (sqs.size() == 2) {
                // Order by encode position for deterministic semantics.
                int g0 = sqs[0], g1 = sqs[1];
                if (slotPos(layout.slotOf(gates[g0].qubits[0])) == 1)
                    std::swap(g0, g1);
                PhysGate pg;
                pg.cls = PhysGateClass::SqEncBoth;
                pg.slots = {makeSlot(unit, 0), makeSlot(unit, 1)};
                pg.logical = gates[g0].type;
                pg.param = gates[g0].param;
                pg.logical2 = gates[g1].type;
                pg.param2 = gates[g1].param;
                pg.sourceGate = g0;
                pg.sourceGate2 = g1;
                out.add(pg);
                continue;
            }
            const int i = sqs.front();
            const SlotId s = layout.slotOf(gates[i].qubits[0]);
            PhysGate pg;
            pg.cls = classifySq(slotPos(s),
                                layout.unitEncoded(slotUnit(s)));
            pg.slots = {s};
            pg.logical = gates[i].type;
            pg.param = gates[i].param;
            pg.sourceGate = i;
            out.add(pg);
        }

        // Two-operand gates: longest remaining path first (the paper's
        // serialization tie-break when compressions force ordering).
        std::sort(twoq.begin(), twoq.end(), [&](int a, int b) {
            if (rem[a] != rem[b])
                return rem[a] > rem[b];
            return a < b;
        });
        for (int i : twoq) {
            routeTwoQubitGate(
                gates[i], i, layout, cost, *cache, out, opts,
                [&, i](QubitId q) { return next_partner_after(q, i); });
        }
    }
    out.setFinalLayout(layout);
}

Layout
replayFinalLayout(const CompiledCircuit &compiled)
{
    Layout layout = compiled.initialLayout();
    for (const auto &g : compiled.gates())
        advanceLayout(layout, g);
    return layout;
}

void
advanceLayout(Layout &layout, const PhysGate &g)
{
    switch (g.cls) {
      case PhysGateClass::SwapInternal:
      case PhysGateClass::SwapBareBare:
      case PhysGateClass::SwapBareEnc0:
      case PhysGateClass::SwapBareEnc1:
      case PhysGateClass::SwapEnc00:
      case PhysGateClass::SwapEnc01:
      case PhysGateClass::SwapEnc11:
        // Only transparent routing SWAPs move tracking; a
        // program-level SWAP realizes the logical exchange and
        // leaves the qubit labels on their slots.
        if (g.isRouting)
            layout.swapSlots(g.slots[0], g.slots[1]);
        break;
      case PhysGateClass::SwapFull: {
        const UnitId u = slotUnit(g.slots[0]);
        const UnitId v = slotUnit(g.slots[1]);
        layout.swapSlots(makeSlot(u, 0), makeSlot(v, 0));
        layout.swapSlots(makeSlot(u, 1), makeSlot(v, 1));
        break;
      }
      case PhysGateClass::Encode: {
        if (ExpandedGraph::sameUnit(g.slots[0], g.slots[1]))
            break; // initial encode: layout already encoded
        const UnitId dst = slotUnit(g.slots[0]);
        const QubitId moving = layout.qubitAt(g.slots[1]);
        QPANIC_IF(moving == kInvalid, "ENC from empty slot");
        layout.remove(moving);
        layout.place(moving, makeSlot(dst, 1));
        break;
      }
      case PhysGateClass::Decode: {
        const UnitId src = slotUnit(g.slots[0]);
        const QubitId moving = layout.qubitAt(makeSlot(src, 1));
        QPANIC_IF(moving == kInvalid, "DEC from non-encoded unit");
        layout.remove(moving);
        layout.place(moving, g.slots[1]);
        break;
      }
      default:
        break; // non-moving gates
    }
}

void
validateCompiled(const CompiledCircuit &compiled, const Topology &topo)
{
    Layout layout = compiled.initialLayout();
    const ExpandedGraph xg(topo);

    for (const auto &g : compiled.gates()) {
        // Structural checks.
        QPANIC_IF(g.slots.empty() || g.slots.size() > 2,
                  "gate with ", g.slots.size(), " slots");
        for (SlotId s : g.slots) {
            QPANIC_IF(s < 0 || s >= layout.numSlots(),
                      "slot ", s, " out of range in ", g.str());
        }
        const bool same =
            g.slots.size() == 2 &&
            ExpandedGraph::sameUnit(g.slots[0], g.slots[1]);
        if (g.slots.size() == 2 && !same) {
            QPANIC_IF(!topo.adjacent(slotUnit(g.slots[0]),
                                     slotUnit(g.slots[1])),
                      "two-unit gate on uncoupled units: ", g.str());
        }

        // Classification consistency against the replayed state.
        const SlotId a = g.slots[0];
        const SlotId b = g.slots.size() == 2 ? g.slots[1] : kInvalid;
        auto enc = [&](SlotId s) {
            return layout.unitEncoded(slotUnit(s));
        };
        switch (g.cls) {
          case PhysGateClass::SqBare:
          case PhysGateClass::SqEnc0:
          case PhysGateClass::SqEnc1:
            QPANIC_IF(!layout.occupied(a), "1q gate on empty slot");
            QPANIC_IF(classifySq(slotPos(a), enc(a)) != g.cls,
                      "misclassified 1q gate: ", g.str());
            break;
          case PhysGateClass::SqEncBoth:
            QPANIC_IF(b == kInvalid || !same,
                      "fused 1q pair must span one unit");
            QPANIC_IF(!enc(a), "fused 1q pair on non-encoded unit");
            break;
          case PhysGateClass::CxInternal0:
          case PhysGateClass::CxInternal1:
          case PhysGateClass::CxBareBare:
          case PhysGateClass::CxEnc0Bare:
          case PhysGateClass::CxEnc1Bare:
          case PhysGateClass::CxBareEnc0:
          case PhysGateClass::CxBareEnc1:
          case PhysGateClass::CxEnc00:
          case PhysGateClass::CxEnc01:
          case PhysGateClass::CxEnc10:
          case PhysGateClass::CxEnc11:
            QPANIC_IF(b == kInvalid, "CX with one operand");
            QPANIC_IF(!layout.occupied(a) || !layout.occupied(b),
                      "CX on empty slot: ", g.str());
            QPANIC_IF(classifyCx(slotPos(a), enc(a), slotPos(b), enc(b),
                                 same) != g.cls,
                      "misclassified CX: ", g.str());
            break;
          case PhysGateClass::SwapInternal:
          case PhysGateClass::SwapBareBare:
          case PhysGateClass::SwapBareEnc0:
          case PhysGateClass::SwapBareEnc1:
          case PhysGateClass::SwapEnc00:
          case PhysGateClass::SwapEnc01:
          case PhysGateClass::SwapEnc11:
            QPANIC_IF(b == kInvalid, "SWAP with one operand");
            QPANIC_IF(!layout.occupied(a) && !layout.occupied(b),
                      "SWAP between two empty slots: ", g.str());
            QPANIC_IF(classifySwap(slotPos(a), enc(a), slotPos(b),
                                   enc(b), same) != g.cls,
                      "misclassified SWAP: ", g.str());
            break;
          case PhysGateClass::SwapFull:
            QPANIC_IF(b == kInvalid || same, "bad SWAP4 operands");
            break;
          case PhysGateClass::Encode:
            if (!same) {
                QPANIC_IF(!layout.occupied(makeSlot(slotUnit(a), 0)),
                          "ENC into unit with empty position 0");
                QPANIC_IF(layout.occupied(makeSlot(slotUnit(a), 1)),
                          "ENC into already-encoded unit");
                QPANIC_IF(!layout.occupied(g.slots[1]),
                          "ENC from empty source");
            } else {
                QPANIC_IF(!enc(a), "initial ENC on non-encoded unit");
            }
            break;
          case PhysGateClass::Decode:
            QPANIC_IF(!layout.unitEncoded(slotUnit(a)),
                      "DEC on non-encoded unit");
            QPANIC_IF(layout.occupied(g.slots[1]),
                      "DEC into occupied slot");
            break;
          default:
            QPANIC("unknown gate class in validate");
        }

        // Advance the replay.
        advanceLayout(layout, g);
    }

    // Final layout agreement.
    const Layout &expect = compiled.finalLayout();
    for (QubitId q = 0; q < layout.numQubits(); ++q) {
        QPANIC_IF(layout.slotOf(q) != expect.slotOf(q),
                  "final layout mismatch for qubit ", q);
    }
}

} // namespace qompress
