#include "compiler/compiled_circuit.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/strings.hh"

namespace qompress {

std::vector<UnitId>
PhysGate::units() const
{
    std::vector<UnitId> out;
    for (SlotId s : slots) {
        const UnitId u = slotUnit(s);
        if (std::find(out.begin(), out.end(), u) == out.end())
            out.push_back(u);
    }
    return out;
}

std::string
PhysGate::str() const
{
    std::string out = physGateClassName(cls);
    for (SlotId s : slots)
        out += format(" u%d:%d", slotUnit(s), slotPos(s));
    if (isRouting)
        out += " [routing]";
    return out;
}

CompiledCircuit::CompiledCircuit(Layout initial, std::string name)
    : initial_(initial), final_(std::move(initial)),
      name_(std::move(name))
{
}

double
CompiledCircuit::totalDuration() const
{
    double t = 0.0;
    for (const auto &g : gates_)
        t = std::max(t, g.end());
    return t;
}

int
CompiledCircuit::numRoutingGates() const
{
    return static_cast<int>(std::count_if(
        gates_.begin(), gates_.end(),
        [](const PhysGate &g) { return g.isRouting; }));
}

std::vector<int>
CompiledCircuit::classHistogram() const
{
    std::vector<int> hist(
        static_cast<std::size_t>(PhysGateClass::NumClasses), 0);
    for (const auto &g : gates_)
        ++hist[static_cast<std::size_t>(g.cls)];
    return hist;
}

} // namespace qompress
