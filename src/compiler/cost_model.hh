/**
 * @file
 * Success-probability pricing of physical operations (paper Eq. 4 and
 * section 6.1.1): S(i,j,g) = F(g) * exp(-T(g)/T1_i) * exp(-T(g)/T1_j),
 * with -log S as the additive path cost used by mapping and routing.
 */

#ifndef QOMPRESS_COMPILER_COST_MODEL_HH
#define QOMPRESS_COMPILER_COST_MODEL_HH

#include <cstdint>
#include <unordered_map>

#include "arch/expanded_graph.hh"
#include "arch/gate_library.hh"
#include "compiler/layout.hh"
#include "graph/algorithms.hh"

namespace qompress {

/**
 * Prices gates and swap paths against a layout's current encoding
 * state. The model holds references only; callers own the pieces.
 */
class CostModel
{
  public:
    CostModel(const ExpandedGraph &xg, const GateLibrary &lib,
              double through_ququart_penalty = 1.25);

    /** Success probability of one gate of class @p c on the units of
     *  @p a (and @p b if two-unit), given the current layout. */
    double gateSuccess(PhysGateClass c, SlotId a, SlotId b,
                       const Layout &layout) const;

    /** -log success of a SWAP across expanded-graph edge (a, b). */
    double swapCost(SlotId a, SlotId b, const Layout &layout) const;

    /**
     * Routing edge cost: swapCost with the avoid-through-ququarts
     * penalty applied when the hop displaces a qubit of an encoded
     * unit (paper section 4.2's second routing constraint). @p into is
     * the slot whose occupant gets displaced. Infinite when @p into is
     * unoccupied (routing never creates encodings).
     */
    double routingHopCost(SlotId from, SlotId into,
                          const Layout &layout) const;

    /** -log success of a CX with control slot @p ctl, target @p tgt. */
    double cxCost(SlotId ctl, SlotId tgt, const Layout &layout) const;

    /**
     * Mapping distance field from @p source: Dijkstra over the
     * expanded graph with swap-cost edges priced by the current
     * encoding state (empty slots traversable at bare-qubit prices --
     * the optimistic assumption used during placement).
     */
    ShortestPaths mappingDistances(SlotId source,
                                   const Layout &layout) const;

    /**
     * Routing distance field from @p source: like mappingDistances but
     * restricted to occupied slots and with the through-ququart
     * penalty (used to pick SWAP paths).
     */
    ShortestPaths routingDistances(SlotId source,
                                   const Layout &layout) const;

    const ExpandedGraph &expanded() const { return *xg_; }
    const GateLibrary &library() const { return *lib_; }
    double throughQuquartPenalty() const { return penalty_; }

  private:
    double unitDecay(UnitId u, double duration,
                     const Layout &layout) const;

    const ExpandedGraph *xg_;
    const GateLibrary *lib_;
    double penalty_;
};

/**
 * Memoized Dijkstra distance fields keyed on (source slot, layout cost
 * version).
 *
 * Edge costs depend on the layout only through slot occupancy, which
 * routing SWAPs (occupied <-> occupied exchanges) never change -- so
 * during a routing round every plan field and lookahead field hits the
 * cache instead of re-running Dijkstra from scratch. A field is
 * recomputed exactly when the layout's costVersion() moved past the
 * version it was cached at (i.e. a place/remove/ENC-style mutation
 * actually perturbed the costs).
 *
 * The cache must not outlive mutations of the underlying GateLibrary's
 * durations/fidelities (sensitivity sweeps): those change edge costs
 * without bumping any layout version. Scope one cache per routing (or
 * mapping) pass, as routeCircuit does.
 */
class DistanceFieldCache
{
  public:
    explicit DistanceFieldCache(const CostModel &cost) : cost_(&cost) {}

    /** Cached CostModel::routingDistances. The reference stays valid
     *  until the entry for @p source is invalidated or clear(). */
    const ShortestPaths &routing(SlotId source, const Layout &layout);

    /** Cached CostModel::mappingDistances. */
    const ShortestPaths &mapping(SlotId source, const Layout &layout);

    void clear();

    /** @name Effectiveness counters (reported by bench_hotpaths). @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** @} */

  private:
    struct Entry
    {
        std::uint64_t version = 0;
        ShortestPaths field;
    };

    const CostModel *cost_;
    std::unordered_map<SlotId, Entry> routing_;
    std::unordered_map<SlotId, Entry> mapping_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace qompress

#endif // QOMPRESS_COMPILER_COST_MODEL_HH
