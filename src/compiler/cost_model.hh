/**
 * @file
 * Success-probability pricing of physical operations (paper Eq. 4 and
 * section 6.1.1): S(i,j,g) = F(g) * exp(-T(g)/T1_i) * exp(-T(g)/T1_j),
 * with -log S as the additive path cost used by mapping and routing.
 */

#ifndef QOMPRESS_COMPILER_COST_MODEL_HH
#define QOMPRESS_COMPILER_COST_MODEL_HH

#include <cstdint>
#include <unordered_map>

#include "arch/expanded_graph.hh"
#include "arch/gate_library.hh"
#include "compiler/layout.hh"
#include "graph/algorithms.hh"

namespace qompress {

struct DeviceCalibration;

/**
 * Prices gates and swap paths against a layout's current encoding
 * state. The model holds references only; callers own the pieces.
 *
 * With a DeviceCalibration the per-unit T1 arrays replace the two
 * GateLibrary constants in every decay term, and cross-unit gates pick
 * up the coupling's fidelity/duration scales. A null calibration is
 * the uncalibrated device and prices bit-identically to the
 * calibration-free model (differentially pinned by tests/test_device).
 */
class CostModel
{
  public:
    CostModel(const ExpandedGraph &xg, const GateLibrary &lib,
              double through_ququart_penalty = 1.25,
              const DeviceCalibration *cal = nullptr);

    /** Success probability of one gate of class @p c on the units of
     *  @p a (and @p b if two-unit), given the current layout. */
    double gateSuccess(PhysGateClass c, SlotId a, SlotId b,
                       const Layout &layout) const;

    /** -log success of a SWAP across expanded-graph edge (a, b). */
    double swapCost(SlotId a, SlotId b, const Layout &layout) const;

    /**
     * Routing edge cost: swapCost with the avoid-through-ququarts
     * penalty applied when the hop displaces a qubit of an encoded
     * unit (paper section 4.2's second routing constraint). @p into is
     * the slot whose occupant gets displaced. Infinite when @p into is
     * unoccupied (routing never creates encodings).
     */
    double routingHopCost(SlotId from, SlotId into,
                          const Layout &layout) const;

    /** -log success of a CX with control slot @p ctl, target @p tgt. */
    double cxCost(SlotId ctl, SlotId tgt, const Layout &layout) const;

    /**
     * Mapping distance field from @p source: Dijkstra over the
     * expanded graph with swap-cost edges priced by the current
     * encoding state (empty slots traversable at bare-qubit prices --
     * the optimistic assumption used during placement).
     */
    ShortestPaths mappingDistances(SlotId source,
                                   const Layout &layout) const;

    /**
     * Routing distance field from @p source: like mappingDistances but
     * restricted to occupied slots and with the through-ququart
     * penalty (used to pick SWAP paths).
     */
    ShortestPaths routingDistances(SlotId source,
                                   const Layout &layout) const;

    /** -log success of a SWAP4 exchanging the full contents of
     *  coupled units @p u and @p v (the FQ baseline's only routing
     *  move). Depends on the layout only through the encoded state of
     *  the two endpoint units. */
    double swap4Cost(UnitId u, UnitId v, const Layout &layout) const;

    /**
     * Unit-level distance field from @p source over the topology
     * coupling graph with SWAP4 edge costs (the FQ baseline's routing
     * metric; every qubit-level strategy uses the slot-level fields
     * above instead).
     */
    ShortestPaths unitDistances(UnitId source, const Layout &layout) const;

    const ExpandedGraph &expanded() const { return *xg_; }
    const GateLibrary &library() const { return *lib_; }
    double throughQuquartPenalty() const { return penalty_; }

    /** The active calibration, or nullptr when uncalibrated. */
    const DeviceCalibration *calibration() const { return cal_; }

  private:
    double unitDecay(UnitId u, double duration,
                     const Layout &layout) const;

    const ExpandedGraph *xg_;
    const GateLibrary *lib_;
    double penalty_;
    const DeviceCalibration *cal_;
};

/**
 * Memoized Dijkstra distance fields with partial invalidation.
 *
 * Every mapping/routing edge cost is a pure function of per-unit
 * occupancy signatures (Layout::unitSignature): routing costs read the
 * full signature (which slot of a unit is occupied gates traversal),
 * while mapping and unit-level SWAP4 costs read only the encoded bit
 * (signature == 3). Each cached field is stamped with the layout's
 * (instanceId, costVersion) and a snapshot of all unit signatures.
 *
 * Lookup is a three-tier check:
 *  1. identical (id, version) stamp -- O(1) hit (the common case
 *     inside routing, where occupied<->occupied SWAPs never bump the
 *     version);
 *  2. stamp moved -- revalidate by scanning units, skipping any whose
 *     Layout::unitEpoch() has not advanced past the stamp (the
 *     per-node dirty epoch) and comparing only the signature bits the
 *     field's family depends on for the rest. A placement that does
 *     not flip a unit's encoded bit therefore leaves every mapping
 *     field valid -- the case that made whole-cache version keying
 *     thrash inside mapCircuit and progressive pairing;
 *  3. a depended-on bit actually changed -- recompute (a miss).
 *
 * Because revalidation compares semantic signatures, one cache can be
 * shared across distinct Layout instances (progressive pairing remaps
 * from scratch each round; the exhaustive strategy compiles hundreds
 * of candidate layouts) and still never serves a stale field.
 *
 * The cache must not outlive mutations of the underlying GateLibrary's
 * durations/fidelities (sensitivity sweeps): those change edge costs
 * without bumping any layout version. Layout::recordMutation() can
 * force invalidation in that case; otherwise scope one cache per
 * compile, as CompileContext does.
 */
class DistanceFieldCache
{
  public:
    explicit DistanceFieldCache(const CostModel &cost) : cost_(&cost) {}

    /** Cached CostModel::routingDistances. The reference stays valid
     *  until the entry for @p source is recomputed or clear(). */
    const ShortestPaths &routing(SlotId source, const Layout &layout);

    /** Cached CostModel::mappingDistances. */
    const ShortestPaths &mapping(SlotId source, const Layout &layout);

    /** Cached CostModel::unitDistances (FQ's SWAP4 routing metric). */
    const ShortestPaths &unit(UnitId source, const Layout &layout);

    void clear();

    /** @name Effectiveness counters (reported by bench_hotpaths and
     *  asserted by the invalidation stress tests). A lookup is exactly
     *  one of: hit (valid stamp), revalidation (stamp moved but no
     *  depended-on signature bit changed; also counted as a hit), or
     *  miss (recompute). @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t revalidations() const { return revalidations_; }
    /** @} */

  private:
    /** Which signature bits a field family's edge costs consume. */
    enum class Relevance
    {
        Occupancy, ///< full per-slot occupancy (routing fields)
        Encoding,  ///< encoded bit only (mapping and SWAP4 fields)
    };

    struct Entry
    {
        std::uint64_t layoutId = 0;
        std::uint64_t version = 0;
        /** Per-unit (perturb-nonce << 8) | occupancy-signature at the
         *  stamp; the nonce part makes recordMutation() perturbations
         *  (invisible to occupancy bits) fail revalidation. */
        std::vector<std::uint32_t> snap;
        ShortestPaths field;
    };

    template <typename Compute>
    const ShortestPaths &lookup(std::unordered_map<int, Entry> &entries,
                                int source, const Layout &layout,
                                Relevance rel, const Compute &compute);

    bool entryStillValid(const Entry &e, const Layout &layout,
                         Relevance rel) const;
    static void stamp(Entry &e, const Layout &layout);

    const CostModel *cost_;
    std::unordered_map<int, Entry> routing_;
    std::unordered_map<int, Entry> mapping_;
    std::unordered_map<int, Entry> unit_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t revalidations_ = 0;
};

} // namespace qompress

#endif // QOMPRESS_COMPILER_COST_MODEL_HH
