#include "compiler/pipeline.hh"

#include <optional>

#include "common/error.hh"
#include "ir/passes.hh"

namespace qompress {

CompileContext::CompileContext(const Topology &topo, const GateLibrary &lib,
                               const CompilerConfig &cfg)
    : xg_(topo), cal_(cfg.calibration),
      cost_(xg_, lib, cfg.throughQuquartPenalty, cal_.get()),
      cache_(cost_), use_cache_(cfg.useDistanceCache)
{
}

std::vector<Compression>
encodedPairsOf(const Layout &layout)
{
    std::vector<Compression> pairs;
    for (UnitId u = 0; u < layout.numUnits(); ++u) {
        if (layout.unitEncoded(u)) {
            pairs.push_back({layout.qubitAt(makeSlot(u, 0)),
                             layout.qubitAt(makeSlot(u, 1))});
        }
    }
    return pairs;
}

CompileResult
compileWithPairs(const Circuit &circuit, const Topology &topo,
                 const GateLibrary &lib,
                 const std::vector<Compression> &pairs,
                 bool allow_dynamic_slot1, const CompilerConfig &cfg,
                 CompileContext *ctx)
{
    const Circuit native = isNative(circuit)
        ? circuit : decomposeToNativeGates(circuit);

    const InteractionModel im(native);
    std::optional<CompileContext> local;
    if (!ctx) {
        local.emplace(topo, lib, cfg);
        ctx = &*local;
    }
    const CostModel &cost = ctx->cost();
    DistanceFieldCache *cache = ctx->cache(); // null when caching is off

    MapperOptions mopts;
    mopts.allowDynamicSlot1 = allow_dynamic_slot1;
    mopts.pairs = pairs;
    Layout layout = mapCircuit(native, im, cost, mopts, cache);

    CompileResult result;
    result.compressions = encodedPairsOf(layout);
    result.compiled = CompiledCircuit(layout, native.name());

    if (cfg.chargeInitialEnc) {
        for (UnitId u = 0; u < layout.numUnits(); ++u) {
            if (!layout.unitEncoded(u))
                continue;
            PhysGate enc;
            enc.cls = PhysGateClass::Encode;
            enc.slots = {makeSlot(u, 0), makeSlot(u, 1)};
            enc.logical = GateType::Swap; // no logical counterpart
            enc.isRouting = false;
            result.compiled.add(enc);
        }
    }

    RouterOptions ropts;
    ropts.lookaheadWeight = cfg.lookaheadWeight;
    // The context's construction cfg is the single authority on cache
    // enablement; keep the router flag in lockstep with it so mapping
    // and routing can never end up half-cached.
    ropts.useDistanceCache = cache != nullptr;
    routeCircuit(native, layout, cost, result.compiled, ropts, cache);
    scheduleCompiled(result.compiled, lib, cfg.calibration.get());
    if (cfg.validate)
        validateCompiled(result.compiled, topo);
    result.metrics =
        computeMetrics(result.compiled, lib, cfg.calibration.get());
    return result;
}

} // namespace qompress
