#include "compiler/pipeline.hh"

#include "common/error.hh"
#include "ir/passes.hh"

namespace qompress {

std::vector<Compression>
encodedPairsOf(const Layout &layout)
{
    std::vector<Compression> pairs;
    for (UnitId u = 0; u < layout.numUnits(); ++u) {
        if (layout.unitEncoded(u)) {
            pairs.push_back({layout.qubitAt(makeSlot(u, 0)),
                             layout.qubitAt(makeSlot(u, 1))});
        }
    }
    return pairs;
}

CompileResult
compileWithPairs(const Circuit &circuit, const Topology &topo,
                 const GateLibrary &lib,
                 const std::vector<Compression> &pairs,
                 bool allow_dynamic_slot1, const CompilerConfig &cfg)
{
    const Circuit native = isNative(circuit)
        ? circuit : decomposeToNativeGates(circuit);

    const InteractionModel im(native);
    const ExpandedGraph xg(topo);
    const CostModel cost(xg, lib, cfg.throughQuquartPenalty);

    MapperOptions mopts;
    mopts.allowDynamicSlot1 = allow_dynamic_slot1;
    mopts.pairs = pairs;
    Layout layout = mapCircuit(native, im, cost, mopts);

    CompileResult result;
    result.compressions = encodedPairsOf(layout);
    result.compiled = CompiledCircuit(layout, native.name());

    if (cfg.chargeInitialEnc) {
        for (UnitId u = 0; u < layout.numUnits(); ++u) {
            if (!layout.unitEncoded(u))
                continue;
            PhysGate enc;
            enc.cls = PhysGateClass::Encode;
            enc.slots = {makeSlot(u, 0), makeSlot(u, 1)};
            enc.logical = GateType::Swap; // no logical counterpart
            enc.isRouting = false;
            result.compiled.add(enc);
        }
    }

    RouterOptions ropts;
    ropts.lookaheadWeight = cfg.lookaheadWeight;
    ropts.useDistanceCache = cfg.useDistanceCache;
    routeCircuit(native, layout, cost, result.compiled, ropts);
    scheduleCompiled(result.compiled, lib);
    if (cfg.validate)
        validateCompiled(result.compiled, topo);
    result.metrics = computeMetrics(result.compiled, lib);
    return result;
}

} // namespace qompress
