#include "compiler/mapper.hh"

#include <algorithm>

#include "common/error.hh"

namespace qompress {

std::vector<QubitId>
partnerTable(int num_qubits, const std::vector<Compression> &pairs)
{
    std::vector<QubitId> partner(num_qubits, kInvalid);
    for (const auto &p : pairs) {
        QFATAL_IF(p.first < 0 || p.first >= num_qubits ||
                  p.second < 0 || p.second >= num_qubits,
                  "compression pair (", p.first, ", ", p.second,
                  ") out of range");
        QFATAL_IF(p.first == p.second,
                  "compression pair with identical qubits ", p.first);
        QFATAL_IF(partner[p.first] != kInvalid ||
                  partner[p.second] != kInvalid,
                  "qubit appears in two compression pairs");
        partner[p.first] = p.second;
        partner[p.second] = p.first;
    }
    return partner;
}

namespace {

/** Is @p q the position-1 (second) element of its pair? */
bool
isPairSecond(QubitId q, const std::vector<Compression> &pairs)
{
    return std::any_of(pairs.begin(), pairs.end(),
                       [q](const Compression &p) {
                           return p.second == q;
                       });
}

} // namespace

Layout
mapCircuit(const Circuit &circuit, const InteractionModel &im,
           const CostModel &cost, const MapperOptions &opts,
           DistanceFieldCache *cache)
{
    const int n = circuit.numQubits();
    const ExpandedGraph &xg = cost.expanded();
    const Topology &topo = xg.topology();
    Layout layout(n, topo.numUnits());

    const auto partner = partnerTable(n, opts.pairs);

    // Capacity check: pairs use one unit, everything else needs its own
    // position-0 slot unless dynamic slot-1 use is on.
    const int paired = static_cast<int>(opts.pairs.size());
    const int capacity = opts.allowDynamicSlot1 ? 2 * topo.numUnits()
                                                : topo.numUnits() + paired;
    QFATAL_IF(n > capacity, "circuit of ", n, " qubits exceeds device ",
              topo.name(), " capacity of ", capacity);

    // Candidate slots for a specific qubit under the current layout.
    auto candidates = [&](QubitId q) {
        std::vector<SlotId> out;
        const QubitId mate = partner[q];
        if (mate != kInvalid && layout.isMapped(mate)) {
            // Forced into the partner's unit.
            const UnitId u = slotUnit(layout.slotOf(mate));
            const SlotId free = layout.occupied(makeSlot(u, 0))
                ? makeSlot(u, 1) : makeSlot(u, 0);
            if (!layout.occupied(free))
                out.push_back(free);
            return out;
        }
        for (UnitId u = 0; u < topo.numUnits(); ++u) {
            const SlotId s0 = makeSlot(u, 0);
            const SlotId s1 = makeSlot(u, 1);
            if (!layout.occupied(s0)) {
                // First element of a pair must leave room for its mate;
                // any unpaired qubit can take an empty unit too.
                out.push_back(s0);
            } else if (!layout.occupied(s1)) {
                // Position 1 only opens once position 0 is taken; it is
                // reserved for the occupant's mate when one exists, and
                // otherwise available only under dynamic (EQM) pairing
                // for qubits that are themselves unpaired.
                const QubitId host = layout.qubitAt(s0);
                if (partner[host] != kInvalid)
                    continue;
                if (opts.allowDynamicSlot1 && mate == kInvalid)
                    out.push_back(s1);
            }
        }
        return out;
    };

    // Seed: the qubit with the greatest total interaction weight goes to
    // the center unit (paper section 4.2). Prefer pair-firsts so the
    // committed ordering (first -> position 0) is respected.
    std::vector<QubitId> order(n);
    for (int i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](QubitId a, QubitId b) {
        return im.totalWeight(a) > im.totalWeight(b);
    });
    QubitId seed = order.front();
    if (isPairSecond(seed, opts.pairs))
        seed = partner[seed];
    layout.place(seed, makeSlot(topo.centerUnit(), 0));

    while (layout.numMapped() < n) {
        // Pick the unmapped qubit with the strongest ties to the placed
        // set; defer pair-seconds whose mate is still unmapped so the
        // committed position order holds.
        QubitId best_q = kInvalid;
        double best_w = -1.0;
        QubitId fallback = kInvalid;
        for (QubitId q : order) {
            if (layout.isMapped(q))
                continue;
            if (isPairSecond(q, opts.pairs) && !layout.isMapped(partner[q])) {
                if (fallback == kInvalid)
                    fallback = partner[q];
                continue;
            }
            if (fallback == kInvalid)
                fallback = q;
            double w = 0.0;
            for (const auto &e : im.graph().neighbors(q)) {
                if (layout.isMapped(e.to))
                    w += e.weight;
            }
            if (w > best_w) {
                best_w = w;
                best_q = q;
            }
        }
        if (best_q == kInvalid || best_w <= 0.0) {
            // Nothing interacts with the placed set yet; take the
            // highest-weight remaining qubit instead.
            best_q = fallback;
        }
        QPANIC_IF(best_q == kInvalid, "mapper: no qubit to place");

        const auto cands = candidates(best_q);
        QFATAL_IF(cands.empty(), "no placement available for qubit ",
                  best_q, " on ", topo.name());

        // Score candidates by weighted mapping distance to the placed
        // interaction partners (smaller is better).
        SlotId best_s = cands.front();
        if (cands.size() > 1) {
            // One distance field per placed partner of best_q. Cached
            // fields are referenced in place (unordered_map elements
            // are address-stable and no mutation happens between the
            // fetches below); uncached ones live in `holders`.
            std::vector<std::pair<double, const ShortestPaths *>> fields;
            std::vector<ShortestPaths> holders;
            if (!cache)
                holders.reserve(im.graph().degree(best_q) + 1);
            auto fetch = [&](SlotId source) -> const ShortestPaths * {
                if (cache)
                    return &cache->mapping(source, layout);
                holders.push_back(cost.mappingDistances(source, layout));
                return &holders.back();
            };
            for (const auto &e : im.graph().neighbors(best_q)) {
                if (!layout.isMapped(e.to))
                    continue;
                fields.emplace_back(e.weight,
                                    fetch(layout.slotOf(e.to)));
            }
            if (fields.empty()) {
                // Untied qubit: prefer staying near the center.
                fields.emplace_back(
                    1.0, fetch(makeSlot(topo.centerUnit(), 0)));
            }
            double best_score = ShortestPaths::kInf;
            for (SlotId s : cands) {
                double score = 0.0;
                for (const auto &[w, field] : fields)
                    score += w * field->dist[s];
                if (score < best_score) {
                    best_score = score;
                    best_s = s;
                }
            }
        }
        layout.place(best_q, best_s);
    }
    return layout;
}

} // namespace qompress
