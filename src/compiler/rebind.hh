/**
 * @file
 * Template compilation: reuse one full compile's structure across a
 * whole family of circuits that differ only in rotation angles.
 *
 * No stage of the compile pipeline branches on parameter values --
 * mapping and routing read gate types and operands, the scheduler and
 * the metrics price by physical gate class -- so two circuits with
 * equal structural fingerprints (ir/fingerprint.hh) compile, for the
 * same topology/library/config/strategy, to CompileResults that differ
 * ONLY in the parameters carried on the physical gates (and the
 * embedded circuit name). A CompiledTemplate captures everything else
 * once; rebindTemplate() then produces the full-compile result for any
 * other member of the structural class by substituting its angles and
 * re-pricing metrics -- O(gates) instead of O(compile).
 *
 * Bit-identity of rebind vs. a from-scratch compile is differentially
 * tested (tests/test_template.cc) and asserted by bench_hotpaths
 * --check for every standard strategy.
 */

#ifndef QOMPRESS_COMPILER_REBIND_HH
#define QOMPRESS_COMPILER_REBIND_HH

#include <memory>
#include <vector>

#include "compiler/pipeline.hh"

namespace qompress {

/**
 * One parameter substitution site in a compiled program.
 *
 * Slot numbering is positional over the INPUT circuit: slot k is the
 * k-th parameterized gate in program order (the order
 * StructuralFingerprint::paramGates lists). This is well-defined
 * across decomposition because decomposeToNativeGates passes
 * parameterized gates through verbatim, in order, and introduces none
 * (CCX lowers to Clifford+T, CZ to H-CX-H).
 */
struct ParamBinding
{
    int physGate = -1; ///< index into CompiledCircuit::gates()
    int slot = -1;     ///< which parameter slot feeds this site
    bool second = false; ///< patch param2 (fused SqEncBoth) not param
};

/**
 * A reusable compiled structure: the full compile of one exemplar
 * instance plus the table mapping parameter slots to the physical
 * gates (and fused halves) that carry them.
 */
struct CompiledTemplate
{
    /** The exemplar's complete compile (immutable, shared). */
    std::shared_ptr<const CompileResult> base;

    /** Every parameterized site in base->compiled, in gate order. */
    std::vector<ParamBinding> bindings;

    /** Parameter-slot count of the structural class; rebind targets
     *  must expose exactly this many parameterized gates. */
    std::size_t numParamSlots = 0;
};

/**
 * Extract the binding table from a finished compile.
 *
 * @param base     the compile's result (kept alive by the template)
 * @param exemplar the INPUT circuit that was compiled (pre-decompose)
 *
 * Panics if the compiled gates' parameters disagree with the exemplar
 * (which would mean the pipeline transformed a parameter -- the
 * invariant the whole scheme rests on).
 */
CompiledTemplate makeTemplate(std::shared_ptr<const CompileResult> base,
                              const Circuit &exemplar);

/**
 * Produce the CompileResult for @p instance from a template built on a
 * structurally identical exemplar: copy the base result, substitute
 * @p instance's angles through the binding table, stamp its name, and
 * re-price Metrics. The caller is responsible for structural equality
 * (same structuralCircuitFingerprint value); rebind re-checks only the
 * slot count. Bit-identical to compiling @p instance from scratch.
 * @p cal must be the calibration the exemplar was compiled under (the
 * service guarantees this: templates are keyed by the config
 * fingerprint, which covers the calibration).
 */
CompileResult rebindTemplate(const CompiledTemplate &tpl,
                             const Circuit &instance,
                             const GateLibrary &lib,
                             const DeviceCalibration *cal = nullptr);

} // namespace qompress

#endif // QOMPRESS_COMPILER_REBIND_HH
