#include "compiler/rebind.hh"

#include <algorithm>

#include "common/error.hh"
#include "ir/passes.hh"

namespace qompress {

namespace {

/** slot number of each native-gate index (-1 for unparameterized):
 *  slot k = k-th parameterized gate in program order. */
std::vector<int>
slotOfNativeGate(const Circuit &native)
{
    std::vector<int> slot(native.numGates(), -1);
    int next = 0;
    for (int i = 0; i < native.numGates(); ++i) {
        if (gateHasParam(native.gates()[i].type))
            slot[i] = next++;
    }
    return slot;
}

/** The angles of @p c's parameterized gates, in program order. */
std::vector<double>
paramValues(const Circuit &c)
{
    std::vector<double> vals;
    for (const Gate &g : c.gates()) {
        if (gateHasParam(g.type))
            vals.push_back(g.param);
    }
    return vals;
}

} // namespace

CompiledTemplate
makeTemplate(std::shared_ptr<const CompileResult> base,
             const Circuit &exemplar)
{
    QPANIC_IF(!base, "makeTemplate: null base result");
    const Circuit native = isNative(exemplar)
        ? exemplar : decomposeToNativeGates(exemplar);
    const std::vector<int> slot = slotOfNativeGate(native);

    CompiledTemplate tpl;
    tpl.base = std::move(base);
    tpl.numParamSlots = static_cast<std::size_t>(
        std::count_if(slot.begin(), slot.end(),
                      [](int s) { return s >= 0; }));

    const auto &pgates = tpl.base->compiled.gates();
    for (int pi = 0; pi < static_cast<int>(pgates.size()); ++pi) {
        const PhysGate &pg = pgates[pi];
        if (pg.sourceGate >= 0 && gateHasParam(pg.logical)) {
            QPANIC_IF(pg.sourceGate >= native.numGates() ||
                          slot[pg.sourceGate] < 0,
                      "template binding: sourceGate ", pg.sourceGate,
                      " is not a parameterized native gate");
            QPANIC_IF(pg.param != native.gates()[pg.sourceGate].param,
                      "template binding: compiled param diverged from "
                      "its source gate");
            tpl.bindings.push_back({pi, slot[pg.sourceGate], false});
        }
        if (pg.sourceGate2 >= 0 && gateHasParam(pg.logical2)) {
            QPANIC_IF(pg.sourceGate2 >= native.numGates() ||
                          slot[pg.sourceGate2] < 0,
                      "template binding: sourceGate2 ", pg.sourceGate2,
                      " is not a parameterized native gate");
            QPANIC_IF(pg.param2 != native.gates()[pg.sourceGate2].param,
                      "template binding: compiled param2 diverged from "
                      "its source gate");
            tpl.bindings.push_back({pi, slot[pg.sourceGate2], true});
        }
    }
    return tpl;
}

CompileResult
rebindTemplate(const CompiledTemplate &tpl, const Circuit &instance,
               const GateLibrary &lib, const DeviceCalibration *cal)
{
    QPANIC_IF(!tpl.base, "rebindTemplate: empty template");
    const std::vector<double> vals = paramValues(instance);
    QPANIC_IF(vals.size() != tpl.numParamSlots,
              "rebindTemplate: instance exposes ", vals.size(),
              " parameter slots, template has ", tpl.numParamSlots);

    CompileResult out = *tpl.base; // deep copy of the exemplar compile
    out.compiled.setName(instance.name());
    auto &gates = out.compiled.mutableGates();
    for (const ParamBinding &b : tpl.bindings) {
        if (b.second)
            gates[b.physGate].param2 = vals[b.slot];
        else
            gates[b.physGate].param = vals[b.slot];
    }
    // Re-price. Gates are priced by physical class and the schedule is
    // untouched, so this reproduces (not merely approximates) what a
    // from-scratch compile would report; running it keeps the artifact
    // honest if pricing ever grows a parameter term.
    out.metrics = computeMetrics(out.compiled, lib, cal);
    return out;
}

} // namespace qompress
