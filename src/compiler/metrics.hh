/**
 * @file
 * Expected-Probability-of-Success metrics (paper section 6.1.1):
 * gate-fidelity product, worst-case coherence factor, and their
 * product, plus gate-mix accounting for the Figure 8 analysis.
 */

#ifndef QOMPRESS_COMPILER_METRICS_HH
#define QOMPRESS_COMPILER_METRICS_HH

#include <vector>

#include "compiler/compiled_circuit.hh"

namespace qompress {

/** Evaluation results for one compiled circuit. */
struct Metrics
{
    /** Product of per-gate success probabilities. */
    double gateEps = 1.0;
    /** Product over logical qubits of exp(-t_qb/T1qb - t_qd/T1qd). */
    double coherenceEps = 1.0;
    /** Product over measured logical qubits of (1 - readout error).
     *  Exactly 1.0 without a calibration (the GateLibrary has no
     *  readout term), so uncalibrated totals are unchanged. */
    double readoutEps = 1.0;
    /** gateEps * coherenceEps (* readoutEps when calibrated). */
    double totalEps = 1.0;

    /** Scheduled circuit duration, ns. */
    double durationNs = 0.0;

    int numGates = 0;
    int numRoutingGates = 0;
    int numTwoUnitGates = 0;
    int numEncodedUnits = 0;

    /** Gate count per PhysGateClass. */
    std::vector<int> classHistogram;

    /** Aggregate qubit-state and ququart-state dwell time (ns) summed
     *  over logical qubits (the exponents' numerators). */
    double qubitTimeNs = 0.0;
    double ququartTimeNs = 0.0;
};

struct DeviceCalibration;

/**
 * Evaluate a scheduled circuit.
 *
 * The coherence factor uses the paper's worst-case accounting: every
 * logical qubit is live for the whole circuit; a qubit is in ququart
 * state whenever its unit holds two logical qubits, with occupancy
 * transitions at ENC starts and DEC ends (the pessimistic edges).
 *
 * With a calibration the decay exponents use the per-unit T1 arrays
 * and readoutEps folds the per-unit readout error of every occupied
 * final-layout unit into totalEps; a null @p cal reproduces today's
 * numbers bit-identically.
 */
Metrics computeMetrics(const CompiledCircuit &compiled,
                       const GateLibrary &lib,
                       const DeviceCalibration *cal = nullptr);

} // namespace qompress

#endif // QOMPRESS_COMPILER_METRICS_HH
