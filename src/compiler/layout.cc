#include "compiler/layout.hh"

#include <atomic>

#include "common/error.hh"

namespace qompress {

namespace {

std::uint64_t
nextLayoutId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

Layout::Layout() : id_(nextLayoutId()) {}

Layout::Layout(int num_qubits, int num_units)
    : qubitToSlot_(num_qubits, kInvalid),
      slotToQubit_(2 * num_units, kInvalid),
      unitEpoch_(num_units, 0),
      unitNonce_(num_units, 0),
      id_(nextLayoutId())
{
    QFATAL_IF(num_qubits < 0 || num_units < 0, "negative layout size");
}

Layout::Layout(const Layout &other)
    : qubitToSlot_(other.qubitToSlot_),
      slotToQubit_(other.slotToQubit_),
      unitEpoch_(other.unitEpoch_),
      unitNonce_(other.unitNonce_),
      costVersion_(other.costVersion_),
      id_(nextLayoutId())
{
}

Layout &
Layout::operator=(const Layout &other)
{
    if (this != &other) {
        qubitToSlot_ = other.qubitToSlot_;
        slotToQubit_ = other.slotToQubit_;
        unitEpoch_ = other.unitEpoch_;
        unitNonce_ = other.unitNonce_;
        costVersion_ = other.costVersion_;
        id_ = nextLayoutId();
    }
    return *this;
}

SlotId
Layout::slotOf(QubitId q) const
{
    QPANIC_IF(q < 0 || q >= numQubits(), "slotOf: bad qubit ", q);
    return qubitToSlot_[q];
}

QubitId
Layout::qubitAt(SlotId slot) const
{
    QPANIC_IF(slot < 0 || slot >= numSlots(), "qubitAt: bad slot ", slot);
    return slotToQubit_[slot];
}

int
Layout::numMapped() const
{
    int count = 0;
    for (SlotId s : qubitToSlot_) {
        if (s != kInvalid)
            ++count;
    }
    return count;
}

std::uint64_t
Layout::unitEpoch(UnitId u) const
{
    QPANIC_IF(u < 0 || u >= numUnits(), "unitEpoch: bad unit ", u);
    return unitEpoch_[u];
}

std::uint8_t
Layout::unitSignature(UnitId u) const
{
    QPANIC_IF(u < 0 || u >= numUnits(), "unitSignature: bad unit ", u);
    return static_cast<std::uint8_t>(
        (slotToQubit_[makeSlot(u, 0)] != kInvalid ? 1 : 0) |
        (slotToQubit_[makeSlot(u, 1)] != kInvalid ? 2 : 0));
}

std::uint32_t
Layout::unitPerturbNonce(UnitId u) const
{
    QPANIC_IF(u < 0 || u >= numUnits(), "unitPerturbNonce: bad unit ", u);
    return unitNonce_[u];
}

void
Layout::noteOccupancyChange(SlotId slot)
{
    ++costVersion_;
    unitEpoch_[slotUnit(slot)] = costVersion_;
}

void
Layout::recordMutation(SlotId slot)
{
    QPANIC_IF(slot < 0 || slot >= numSlots(),
              "recordMutation: bad slot ", slot);
    noteOccupancyChange(slot);
    // Occupancy signatures cannot see an external cost change; the
    // nonce makes cached fields that touched this unit fail
    // revalidation and recompute.
    ++unitNonce_[slotUnit(slot)];
}

void
Layout::place(QubitId q, SlotId slot)
{
    QPANIC_IF(slotOf(q) != kInvalid, "place: qubit ", q, " already mapped");
    QPANIC_IF(qubitAt(slot) != kInvalid, "place: slot ", slot, " occupied");
    qubitToSlot_[q] = slot;
    slotToQubit_[slot] = q;
    noteOccupancyChange(slot);
}

void
Layout::remove(QubitId q)
{
    const SlotId s = slotOf(q);
    QPANIC_IF(s == kInvalid, "remove: qubit ", q, " not mapped");
    qubitToSlot_[q] = kInvalid;
    slotToQubit_[s] = kInvalid;
    noteOccupancyChange(s);
}

void
Layout::swapSlots(SlotId a, SlotId b)
{
    QPANIC_IF(a < 0 || a >= numSlots() || b < 0 || b >= numSlots(),
              "swapSlots: bad slots ", a, ", ", b);
    const QubitId qa = slotToQubit_[a];
    const QubitId qb = slotToQubit_[b];
    slotToQubit_[a] = qb;
    slotToQubit_[b] = qa;
    if (qa != kInvalid)
        qubitToSlot_[qa] = b;
    if (qb != kInvalid)
        qubitToSlot_[qb] = a;
    // Occupancy (hence every encoding state and edge cost) changes
    // only when exactly one side was occupied. Both endpoint units
    // mutate under one version bump.
    if ((qa == kInvalid) != (qb == kInvalid)) {
        ++costVersion_;
        unitEpoch_[slotUnit(a)] = costVersion_;
        unitEpoch_[slotUnit(b)] = costVersion_;
    }
}

bool
Layout::unitEncoded(UnitId u) const
{
    return unitOccupancy(u) == 2;
}

int
Layout::unitOccupancy(UnitId u) const
{
    QPANIC_IF(u < 0 || u >= numUnits(), "unitOccupancy: bad unit ", u);
    return (qubitAt(makeSlot(u, 0)) != kInvalid ? 1 : 0) +
           (qubitAt(makeSlot(u, 1)) != kInvalid ? 1 : 0);
}

int
Layout::numEncodedUnits() const
{
    int count = 0;
    for (UnitId u = 0; u < numUnits(); ++u) {
        if (unitEncoded(u))
            ++count;
    }
    return count;
}

} // namespace qompress
