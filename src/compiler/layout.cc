#include "compiler/layout.hh"

#include "common/error.hh"

namespace qompress {

Layout::Layout(int num_qubits, int num_units)
    : qubitToSlot_(num_qubits, kInvalid),
      slotToQubit_(2 * num_units, kInvalid)
{
    QFATAL_IF(num_qubits < 0 || num_units < 0, "negative layout size");
}

SlotId
Layout::slotOf(QubitId q) const
{
    QPANIC_IF(q < 0 || q >= numQubits(), "slotOf: bad qubit ", q);
    return qubitToSlot_[q];
}

QubitId
Layout::qubitAt(SlotId slot) const
{
    QPANIC_IF(slot < 0 || slot >= numSlots(), "qubitAt: bad slot ", slot);
    return slotToQubit_[slot];
}

int
Layout::numMapped() const
{
    int count = 0;
    for (SlotId s : qubitToSlot_) {
        if (s != kInvalid)
            ++count;
    }
    return count;
}

void
Layout::place(QubitId q, SlotId slot)
{
    QPANIC_IF(slotOf(q) != kInvalid, "place: qubit ", q, " already mapped");
    QPANIC_IF(qubitAt(slot) != kInvalid, "place: slot ", slot, " occupied");
    qubitToSlot_[q] = slot;
    slotToQubit_[slot] = q;
    ++costVersion_;
}

void
Layout::remove(QubitId q)
{
    const SlotId s = slotOf(q);
    QPANIC_IF(s == kInvalid, "remove: qubit ", q, " not mapped");
    qubitToSlot_[q] = kInvalid;
    slotToQubit_[s] = kInvalid;
    ++costVersion_;
}

void
Layout::swapSlots(SlotId a, SlotId b)
{
    QPANIC_IF(a < 0 || a >= numSlots() || b < 0 || b >= numSlots(),
              "swapSlots: bad slots ", a, ", ", b);
    const QubitId qa = slotToQubit_[a];
    const QubitId qb = slotToQubit_[b];
    slotToQubit_[a] = qb;
    slotToQubit_[b] = qa;
    if (qa != kInvalid)
        qubitToSlot_[qa] = b;
    if (qb != kInvalid)
        qubitToSlot_[qb] = a;
    // Occupancy (hence every encoding state and edge cost) changes
    // only when exactly one side was occupied.
    if ((qa == kInvalid) != (qb == kInvalid))
        ++costVersion_;
}

bool
Layout::unitEncoded(UnitId u) const
{
    return unitOccupancy(u) == 2;
}

int
Layout::unitOccupancy(UnitId u) const
{
    QPANIC_IF(u < 0 || u >= numUnits(), "unitOccupancy: bad unit ", u);
    return (qubitAt(makeSlot(u, 0)) != kInvalid ? 1 : 0) +
           (qubitAt(makeSlot(u, 1)) != kInvalid ? 1 : 0);
}

int
Layout::numEncodedUnits() const
{
    int count = 0;
    for (UnitId u = 0; u < numUnits(); ++u) {
        if (unitEncoded(u))
            ++count;
    }
    return count;
}

} // namespace qompress
