#include "compiler/cost_model.hh"

#include <cmath>

#include "common/error.hh"

namespace qompress {

CostModel::CostModel(const ExpandedGraph &xg, const GateLibrary &lib,
                     double through_ququart_penalty)
    : xg_(&xg), lib_(&lib), penalty_(through_ququart_penalty)
{
    QFATAL_IF(penalty_ < 1.0, "through-ququart penalty must be >= 1");
}

double
CostModel::unitDecay(UnitId u, double duration, const Layout &layout) const
{
    const double t1 = layout.unitEncoded(u) ? lib_->t1Ququart()
                                            : lib_->t1Qubit();
    return std::exp(-duration / t1);
}

double
CostModel::gateSuccess(PhysGateClass c, SlotId a, SlotId b,
                       const Layout &layout) const
{
    const double dur = lib_->duration(c);
    double s = lib_->fidelity(c) * unitDecay(slotUnit(a), dur, layout);
    if (b != kInvalid && slotUnit(b) != slotUnit(a))
        s *= unitDecay(slotUnit(b), dur, layout);
    return s;
}

double
CostModel::swapCost(SlotId a, SlotId b, const Layout &layout) const
{
    const bool same = ExpandedGraph::sameUnit(a, b);
    const PhysGateClass c = classifySwap(
        slotPos(a), layout.unitEncoded(slotUnit(a)),
        slotPos(b), layout.unitEncoded(slotUnit(b)), same);
    return -std::log(gateSuccess(c, a, b, layout));
}

double
CostModel::routingHopCost(SlotId from, SlotId into,
                          const Layout &layout) const
{
    if (!layout.occupied(into))
        return ShortestPaths::kInf;
    double cost = swapCost(from, into, layout);
    if (!ExpandedGraph::sameUnit(from, into) &&
        layout.unitEncoded(slotUnit(into))) {
        cost *= penalty_;
    }
    return cost;
}

double
CostModel::cxCost(SlotId ctl, SlotId tgt, const Layout &layout) const
{
    const bool same = ExpandedGraph::sameUnit(ctl, tgt);
    const PhysGateClass c = classifyCx(
        slotPos(ctl), layout.unitEncoded(slotUnit(ctl)),
        slotPos(tgt), layout.unitEncoded(slotUnit(tgt)), same);
    return -std::log(gateSuccess(c, ctl, tgt, layout));
}

ShortestPaths
CostModel::mappingDistances(SlotId source, const Layout &layout) const
{
    return dijkstra(
        xg_->graph(), source,
        [this, &layout](int u, int v, double) {
            return swapCost(u, v, layout);
        });
}

ShortestPaths
CostModel::routingDistances(SlotId source, const Layout &layout) const
{
    return dijkstra(
        xg_->graph(), source,
        [this, &layout](int u, int v, double) {
            return routingHopCost(u, v, layout);
        });
}

const ShortestPaths &
DistanceFieldCache::routing(SlotId source, const Layout &layout)
{
    Entry &e = routing_[source];
    if (e.field.dist.empty() || e.version != layout.costVersion()) {
        e.field = cost_->routingDistances(source, layout);
        e.version = layout.costVersion();
        ++misses_;
    } else {
        ++hits_;
    }
    return e.field;
}

const ShortestPaths &
DistanceFieldCache::mapping(SlotId source, const Layout &layout)
{
    Entry &e = mapping_[source];
    if (e.field.dist.empty() || e.version != layout.costVersion()) {
        e.field = cost_->mappingDistances(source, layout);
        e.version = layout.costVersion();
        ++misses_;
    } else {
        ++hits_;
    }
    return e.field;
}

void
DistanceFieldCache::clear()
{
    routing_.clear();
    mapping_.clear();
}

} // namespace qompress
