#include "compiler/cost_model.hh"

#include <cmath>

#include "arch/device.hh"
#include "common/error.hh"

namespace qompress {

CostModel::CostModel(const ExpandedGraph &xg, const GateLibrary &lib,
                     double through_ququart_penalty,
                     const DeviceCalibration *cal)
    : xg_(&xg), lib_(&lib), penalty_(through_ququart_penalty), cal_(cal)
{
    QFATAL_IF(penalty_ < 1.0, "through-ququart penalty must be >= 1");
    QFATAL_IF(cal_ && cal_->numUnits() != xg.topology().numUnits(),
              "calibration '", cal_ ? cal_->device : "", "' covers ",
              cal_ ? cal_->numUnits() : 0, " units but topology '",
              xg.topology().name(), "' has ", xg.topology().numUnits());
}

double
CostModel::unitDecay(UnitId u, double duration, const Layout &layout) const
{
    const double t1 =
        cal_ ? (layout.unitEncoded(u) ? cal_->t1QuquartNs[u]
                                      : cal_->t1QubitNs[u])
             : (layout.unitEncoded(u) ? lib_->t1Ququart()
                                      : lib_->t1Qubit());
    return std::exp(-duration / t1);
}

double
CostModel::gateSuccess(PhysGateClass c, SlotId a, SlotId b,
                       const Layout &layout) const
{
    double dur = lib_->duration(c);
    double fid = lib_->fidelity(c);
    if (cal_ && b != kInvalid && slotUnit(b) != slotUnit(a)) {
        if (const auto *e = cal_->edge(slotUnit(a), slotUnit(b))) {
            fid *= e->fidelityScale;
            dur *= e->durationScale;
        }
    }
    double s = fid * unitDecay(slotUnit(a), dur, layout);
    if (b != kInvalid && slotUnit(b) != slotUnit(a))
        s *= unitDecay(slotUnit(b), dur, layout);
    return s;
}

double
CostModel::swapCost(SlotId a, SlotId b, const Layout &layout) const
{
    const bool same = ExpandedGraph::sameUnit(a, b);
    const PhysGateClass c = classifySwap(
        slotPos(a), layout.unitEncoded(slotUnit(a)),
        slotPos(b), layout.unitEncoded(slotUnit(b)), same);
    return -std::log(gateSuccess(c, a, b, layout));
}

double
CostModel::routingHopCost(SlotId from, SlotId into,
                          const Layout &layout) const
{
    if (!layout.occupied(into))
        return ShortestPaths::kInf;
    double cost = swapCost(from, into, layout);
    if (!ExpandedGraph::sameUnit(from, into) &&
        layout.unitEncoded(slotUnit(into))) {
        cost *= penalty_;
    }
    return cost;
}

double
CostModel::cxCost(SlotId ctl, SlotId tgt, const Layout &layout) const
{
    const bool same = ExpandedGraph::sameUnit(ctl, tgt);
    const PhysGateClass c = classifyCx(
        slotPos(ctl), layout.unitEncoded(slotUnit(ctl)),
        slotPos(tgt), layout.unitEncoded(slotUnit(tgt)), same);
    return -std::log(gateSuccess(c, ctl, tgt, layout));
}

ShortestPaths
CostModel::mappingDistances(SlotId source, const Layout &layout) const
{
    return dijkstra(
        xg_->graph(), source,
        [this, &layout](int u, int v, double) {
            return swapCost(u, v, layout);
        });
}

ShortestPaths
CostModel::routingDistances(SlotId source, const Layout &layout) const
{
    return dijkstra(
        xg_->graph(), source,
        [this, &layout](int u, int v, double) {
            return routingHopCost(u, v, layout);
        });
}

double
CostModel::swap4Cost(UnitId u, UnitId v, const Layout &layout) const
{
    double dur = lib_->duration(PhysGateClass::SwapFull);
    double fid = lib_->fidelity(PhysGateClass::SwapFull);
    if (cal_) {
        if (const auto *e = cal_->edge(u, v)) {
            fid *= e->fidelityScale;
            dur *= e->durationScale;
        }
    }
    auto decay = [&](UnitId w) {
        const double t1 =
            cal_ ? (layout.unitEncoded(w) ? cal_->t1QuquartNs[w]
                                          : cal_->t1QubitNs[w])
                 : (layout.unitEncoded(w) ? lib_->t1Ququart()
                                          : lib_->t1Qubit());
        return std::exp(-dur / t1);
    };
    return -std::log(fid * decay(u) * decay(v));
}

ShortestPaths
CostModel::unitDistances(UnitId source, const Layout &layout) const
{
    return dijkstra(
        xg_->topology().graph(), source,
        [this, &layout](int u, int v, double) {
            return swap4Cost(u, v, layout);
        });
}

void
DistanceFieldCache::stamp(Entry &e, const Layout &layout)
{
    e.layoutId = layout.instanceId();
    e.version = layout.costVersion();
    const int nu = layout.numUnits();
    e.snap.resize(static_cast<std::size_t>(nu));
    for (UnitId u = 0; u < nu; ++u) {
        e.snap[u] = (layout.unitPerturbNonce(u) << 8) |
                    layout.unitSignature(u);
    }
}

bool
DistanceFieldCache::entryStillValid(const Entry &e, const Layout &layout,
                                    Relevance rel) const
{
    const int nu = layout.numUnits();
    if (static_cast<int>(e.snap.size()) != nu)
        return false;
    // Same instance: units whose epoch has not moved past the stamp
    // still carry the snapshotted state and can be skipped. A
    // different instance has an incomparable epoch clock, so every
    // unit is checked.
    const bool same_layout = e.layoutId == layout.instanceId();
    for (UnitId u = 0; u < nu; ++u) {
        if (same_layout && layout.unitEpoch(u) <= e.version)
            continue;
        const std::uint32_t cur =
            (layout.unitPerturbNonce(u) << 8) | layout.unitSignature(u);
        // An external perturbation (nonce change) always invalidates.
        if ((cur >> 8) != (e.snap[u] >> 8))
            return false;
        if (rel == Relevance::Occupancy) {
            if ((cur & 0xff) != (e.snap[u] & 0xff))
                return false;
        } else {
            if (((cur & 0xff) == 3) != ((e.snap[u] & 0xff) == 3))
                return false;
        }
    }
    return true;
}

template <typename Compute>
const ShortestPaths &
DistanceFieldCache::lookup(std::unordered_map<int, Entry> &entries,
                           int source, const Layout &layout, Relevance rel,
                           const Compute &compute)
{
    Entry &e = entries[source];
    if (!e.field.dist.empty()) {
        if (e.layoutId == layout.instanceId() &&
            e.version == layout.costVersion()) {
            ++hits_;
            return e.field;
        }
        if (entryStillValid(e, layout, rel)) {
            // No depended-on bit changed: adopt the new stamp so the
            // next lookup takes the O(1) path.
            stamp(e, layout);
            ++hits_;
            ++revalidations_;
            return e.field;
        }
    }
    e.field = compute(source, layout);
    stamp(e, layout);
    ++misses_;
    return e.field;
}

const ShortestPaths &
DistanceFieldCache::routing(SlotId source, const Layout &layout)
{
    return lookup(routing_, source, layout, Relevance::Occupancy,
                  [this](SlotId s, const Layout &l) {
                      return cost_->routingDistances(s, l);
                  });
}

const ShortestPaths &
DistanceFieldCache::mapping(SlotId source, const Layout &layout)
{
    return lookup(mapping_, source, layout, Relevance::Encoding,
                  [this](SlotId s, const Layout &l) {
                      return cost_->mappingDistances(s, l);
                  });
}

const ShortestPaths &
DistanceFieldCache::unit(UnitId source, const Layout &layout)
{
    return lookup(unit_, source, layout, Relevance::Encoding,
                  [this](UnitId u, const Layout &l) {
                      return cost_->unitDistances(u, l);
                  });
}

void
DistanceFieldCache::clear()
{
    routing_.clear();
    mapping_.clear();
    unit_.clear();
}

} // namespace qompress
