/**
 * @file
 * The physical-gate program produced by the Qompress pipeline.
 */

#ifndef QOMPRESS_COMPILER_COMPILED_CIRCUIT_HH
#define QOMPRESS_COMPILER_COMPILED_CIRCUIT_HH

#include <string>
#include <vector>

#include "arch/expanded_graph.hh"
#include "arch/gate_library.hh"
#include "compiler/layout.hh"
#include "ir/gate.hh"

namespace qompress {

/**
 * One scheduled physical gate.
 *
 * For two-operand classes, slots[0] / slots[1] are (control, target)
 * respectively for CX-like gates and unordered for SWAPs. SwapFull
 * exchanges whole units: slots hold position-0 slots of the two units.
 * Encode moves the qubit at slots[1] (a bare unit) into position 1 of
 * slots[0]'s unit; Decode reverses it.
 */
struct PhysGate
{
    PhysGateClass cls;
    std::vector<SlotId> slots;

    /** Underlying logical operation (X/H/CX/Swap/...); the second
     *  entry is used by fused SqEncBoth gates. */
    GateType logical = GateType::X;
    GateType logical2 = GateType::X;
    double param = 0.0;
    double param2 = 0.0;

    /** True for SWAPs (and ENC/DEC shuffling) inserted by the router
     *  rather than demanded by the program. */
    bool isRouting = false;

    /** Index of the originating logical gate; -1 for routing ops. */
    int sourceGate = -1;

    /** For fused SqEncBoth gates: index of the logical gate behind
     *  logical2/param2; -1 everywhere else. */
    int sourceGate2 = -1;

    /** Filled by the scheduler. */
    double start = 0.0;
    double duration = 0.0;
    double fidelity = 1.0;

    double end() const { return start + duration; }
    bool twoUnit() const { return !isSingleUnitClass(cls); }

    /** Units this gate occupies (1 or 2 entries). */
    std::vector<UnitId> units() const;

    /** Debug rendering, e.g. "CX0q u3:0 -> u5". */
    std::string str() const;
};

/**
 * A compiled program: physical gate list plus the layouts bracketing it.
 */
class CompiledCircuit
{
  public:
    CompiledCircuit() = default;
    CompiledCircuit(Layout initial, std::string name);

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    const Layout &initialLayout() const { return initial_; }
    const Layout &finalLayout() const { return final_; }
    void setFinalLayout(Layout l) { final_ = std::move(l); }

    const std::vector<PhysGate> &gates() const { return gates_; }
    std::vector<PhysGate> &mutableGates() { return gates_; }
    void add(PhysGate g) { gates_.push_back(std::move(g)); }
    int numGates() const { return static_cast<int>(gates_.size()); }

    /** Total scheduled duration (max end time), ns. */
    double totalDuration() const;

    /** Number of router-inserted gates. */
    int numRoutingGates() const;

    /** Per-class gate counts. */
    std::vector<int> classHistogram() const;

  private:
    Layout initial_;
    Layout final_;
    std::string name_;
    std::vector<PhysGate> gates_;
};

} // namespace qompress

#endif // QOMPRESS_COMPILER_COMPILED_CIRCUIT_HH
