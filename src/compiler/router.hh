/**
 * @file
 * Qubit-level routing of a native circuit over a mapped mixed-radix
 * device (paper section 4.2), plus an independent replay validator.
 */

#ifndef QOMPRESS_COMPILER_ROUTER_HH
#define QOMPRESS_COMPILER_ROUTER_HH

#include "compiler/compiled_circuit.hh"
#include "compiler/cost_model.hh"
#include "ir/circuit.hh"

namespace qompress {

/** Router tuning knobs. */
struct RouterOptions
{
    /**
     * Weight of the lookahead term: when > 0, candidate SWAP plans
     * are additionally scored by the moved qubit's distance to its
     * *next* interaction partner (the classic lookahead heuristic the
     * paper cites as directly translatable to ququart routing). 0
     * disables lookahead.
     */
    double lookaheadWeight = 0.0;

    /**
     * Reuse Dijkstra distance fields across routing rounds via
     * DistanceFieldCache (routing SWAPs never perturb edge costs, so
     * fields stay valid for the whole pass). Off recomputes every
     * field from scratch; routed output is identical either way --
     * the differential tests assert it.
     */
    bool useDistanceCache = true;
};

/**
 * Route @p native (1q/CX/SWAP gates only) starting from @p layout,
 * appending physical gates to @p out and advancing the layout to the
 * final placement.
 *
 * Gates are processed in ASAP-layer order; within a layer, two-operand
 * gates run longest-remaining-path first (the paper's serialization
 * tie-break) and pairs of 1-qubit gates landing on one encoded ququart
 * fuse into a single-ququart gate. Non-adjacent operands are brought
 * together with SWAP chains along minimum Eq.-4-cost paths over
 * *occupied* slots only (no encodings are created), with paths through
 * foreign ququarts penalized.
 *
 * @param cache optional shared distance-field cache (normally the
 *        CompileContext one, already warm from mapping). When null and
 *        opts.useDistanceCache is set, a pass-local cache is used as
 *        before; when opts.useDistanceCache is off every field is
 *        recomputed directly. Routed output is identical in all three
 *        modes.
 */
void routeCircuit(const Circuit &native, Layout &layout,
                  const CostModel &cost, CompiledCircuit &out,
                  const RouterOptions &opts = {},
                  DistanceFieldCache *cache = nullptr);

/**
 * Replay a compiled circuit from its initial layout, checking every
 * structural invariant: operand adjacency, classification consistency
 * against the replayed encoding state, occupancy rules for ENC/DEC,
 * and agreement with the recorded final layout.
 *
 * @throws PanicError on the first violation.
 */
void validateCompiled(const CompiledCircuit &compiled,
                      const Topology &topo);

/** The layout reached by replaying all gates from the initial layout. */
Layout replayFinalLayout(const CompiledCircuit &compiled);

/**
 * Advance @p layout across one physical gate (the single-step kernel
 * of replayFinalLayout). Used by replay-heavy loops -- equivalence
 * checking, validation -- to avoid building a one-gate CompiledCircuit
 * per step.
 */
void advanceLayout(Layout &layout, const PhysGate &g);

} // namespace qompress

#endif // QOMPRESS_COMPILER_ROUTER_HH
