/**
 * @file
 * The logical-qubit-to-slot assignment tracked through mapping and
 * routing.
 */

#ifndef QOMPRESS_COMPILER_LAYOUT_HH
#define QOMPRESS_COMPILER_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace qompress {

/**
 * Bidirectional map between logical qubits and expanded-graph slots.
 *
 * A unit is *encoded* (ququart) iff both of its slots are occupied.
 * Routing only ever swaps occupants, so occupancy -- and therefore the
 * encoded state of every unit -- is invariant during routing; ENC/DEC
 * (used by the FQ baseline) are the only operations that change it.
 */
class Layout
{
  public:
    Layout() = default;

    /** Empty layout over @p num_qubits logical and @p num_units units. */
    Layout(int num_qubits, int num_units);

    int numQubits() const { return static_cast<int>(qubitToSlot_.size()); }
    int numUnits() const
    {
        return static_cast<int>(slotToQubit_.size()) / 2;
    }
    int numSlots() const { return static_cast<int>(slotToQubit_.size()); }

    /** Slot of logical qubit @p q; kInvalid if unmapped. */
    SlotId slotOf(QubitId q) const;

    /** Logical qubit at @p slot; kInvalid if empty. */
    QubitId qubitAt(SlotId slot) const;

    bool isMapped(QubitId q) const { return slotOf(q) != kInvalid; }
    bool occupied(SlotId slot) const { return qubitAt(slot) != kInvalid; }

    /** Number of logical qubits currently placed. */
    int numMapped() const;

    /** Place @p q at @p slot. @pre q unmapped and slot empty. */
    void place(QubitId q, SlotId slot);

    /** Remove @p q from the layout. @pre mapped. */
    void remove(QubitId q);

    /** Exchange the occupants of two slots (either may be empty). */
    void swapSlots(SlotId a, SlotId b);

    /** True iff both slots of @p u are occupied. */
    bool unitEncoded(UnitId u) const;

    /** Number of logical qubits on unit @p u (0, 1 or 2). */
    int unitOccupancy(UnitId u) const;

    /** Number of encoded (two-qubit) units. */
    int numEncodedUnits() const;

    /**
     * Monotonic counter of mutations that can change routing/mapping
     * edge costs. Costs depend on the layout only through slot
     * occupancy (and the derived encoded state), so it bumps on
     * place/remove and on swapSlots between an occupied and an empty
     * slot -- but NOT on the occupied-occupied exchanges routing
     * performs, which leave every edge cost intact. DistanceFieldCache
     * keys its Dijkstra fields on this version.
     */
    std::uint64_t costVersion() const { return costVersion_; }

  private:
    std::vector<SlotId> qubitToSlot_;
    std::vector<QubitId> slotToQubit_;
    std::uint64_t costVersion_ = 0;
};

} // namespace qompress

#endif // QOMPRESS_COMPILER_LAYOUT_HH
