/**
 * @file
 * The logical-qubit-to-slot assignment tracked through mapping and
 * routing.
 */

#ifndef QOMPRESS_COMPILER_LAYOUT_HH
#define QOMPRESS_COMPILER_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace qompress {

/**
 * Bidirectional map between logical qubits and expanded-graph slots.
 *
 * A unit is *encoded* (ququart) iff both of its slots are occupied.
 * Routing only ever swaps occupants, so occupancy -- and therefore the
 * encoded state of every unit -- is invariant during routing; ENC/DEC
 * (used by the FQ baseline) are the only operations that change it.
 */
class Layout
{
  public:
    Layout();

    /** Empty layout over @p num_qubits logical and @p num_units units. */
    Layout(int num_qubits, int num_units);

    /**
     * Copies get a fresh instance id: DistanceFieldCache stamps cached
     * fields with (id, costVersion), and two diverging copies share a
     * version trajectory, so an inherited id would let one copy serve
     * stale fields computed against the other.
     */
    Layout(const Layout &other);
    Layout &operator=(const Layout &other);
    Layout(Layout &&) = default;
    Layout &operator=(Layout &&) = default;

    int numQubits() const { return static_cast<int>(qubitToSlot_.size()); }
    int numUnits() const
    {
        return static_cast<int>(slotToQubit_.size()) / 2;
    }
    int numSlots() const { return static_cast<int>(slotToQubit_.size()); }

    /** Slot of logical qubit @p q; kInvalid if unmapped. */
    SlotId slotOf(QubitId q) const;

    /** Logical qubit at @p slot; kInvalid if empty. */
    QubitId qubitAt(SlotId slot) const;

    bool isMapped(QubitId q) const { return slotOf(q) != kInvalid; }
    bool occupied(SlotId slot) const { return qubitAt(slot) != kInvalid; }

    /** Number of logical qubits currently placed. */
    int numMapped() const;

    /** Place @p q at @p slot. @pre q unmapped and slot empty. */
    void place(QubitId q, SlotId slot);

    /** Remove @p q from the layout. @pre mapped. */
    void remove(QubitId q);

    /** Exchange the occupants of two slots (either may be empty). */
    void swapSlots(SlotId a, SlotId b);

    /** True iff both slots of @p u are occupied. */
    bool unitEncoded(UnitId u) const;

    /** Number of logical qubits on unit @p u (0, 1 or 2). */
    int unitOccupancy(UnitId u) const;

    /** Number of encoded (two-qubit) units. */
    int numEncodedUnits() const;

    /**
     * Monotonic counter of mutations that can change routing/mapping
     * edge costs. Costs depend on the layout only through slot
     * occupancy (and the derived encoded state), so it bumps on
     * place/remove and on swapSlots between an occupied and an empty
     * slot -- but NOT on the occupied-occupied exchanges routing
     * performs, which leave every edge cost intact. DistanceFieldCache
     * uses it as the fast-path validity check for cached fields.
     */
    std::uint64_t costVersion() const { return costVersion_; }

    /**
     * The costVersion() value at which unit @p u last changed
     * occupancy (0 if never). Never decreases, and never exceeds
     * costVersion(). DistanceFieldCache compares it against a field's
     * stamp to skip units that cannot have perturbed the field --
     * the per-node dirty epoch behind partial invalidation.
     */
    std::uint64_t unitEpoch(UnitId u) const;

    /**
     * Occupancy signature of unit @p u: bit 0 = position-0 slot
     * occupied, bit 1 = position-1 slot occupied (so 3 == encoded).
     * Every mapping/routing edge cost is a pure function of these
     * signatures; DistanceFieldCache snapshots them per cached field
     * and revalidates by comparing only the bits a field depends on.
     */
    std::uint8_t unitSignature(UnitId u) const;

    /**
     * Identifies this Layout instance for cache stamping; fresh per
     * construction and per copy (see the copy constructor), preserved
     * by moves.
     */
    std::uint64_t instanceId() const { return id_; }

    /**
     * Record an externally caused cost perturbation at @p slot (e.g. a
     * per-unit calibration change that moves edge costs without moving
     * a qubit): bumps costVersion(), the owning unit's epoch, AND the
     * unit's perturbation nonce, so cached distance fields that
     * touched the unit are *recomputed* -- occupancy signatures alone
     * cannot see an external change, which is why the nonce exists.
     * Scoped to this instance (and its copies); a cache shared with an
     * unrelated Layout built after the perturbation does not see it.
     */
    void recordMutation(SlotId slot);

    /** Count of recordMutation() calls against unit @p u; snapshotted
     *  by DistanceFieldCache alongside the occupancy signature. */
    std::uint32_t unitPerturbNonce(UnitId u) const;

  private:
    void noteOccupancyChange(SlotId slot);

    std::vector<SlotId> qubitToSlot_;
    std::vector<QubitId> slotToQubit_;
    std::vector<std::uint64_t> unitEpoch_;
    std::vector<std::uint32_t> unitNonce_;
    std::uint64_t costVersion_ = 0;
    std::uint64_t id_ = 0;
};

} // namespace qompress

#endif // QOMPRESS_COMPILER_LAYOUT_HH
