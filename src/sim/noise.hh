/**
 * @file
 * Monte-Carlo validation of the analytic EPS model (paper section
 * 6.1.1): sample per-gate failures and per-qubit decoherence as
 * independent stochastic events and estimate the circuit success
 * probability empirically. Implemented independently of
 * computeMetrics() so the two can cross-check each other, including
 * the mid-circuit ENC/DEC occupancy changes of the FQ baseline.
 */

#ifndef QOMPRESS_SIM_NOISE_HH
#define QOMPRESS_SIM_NOISE_HH

#include <cstdint>

#include "compiler/compiled_circuit.hh"

namespace qompress {

/** Sampling options. */
struct NoiseSimOptions
{
    int trials = 20000;
    std::uint64_t seed = 99;
};

/** Estimator output. */
struct NoiseSimResult
{
    /** Fraction of trials in which no gate failed and no qubit
     *  decohered. */
    double empiricalEps = 0.0;
    /** Binomial standard error of the estimate. */
    double standardError = 0.0;
    int trials = 0;
};

/**
 * Estimate the total EPS of a *scheduled* compiled circuit by
 * trajectory sampling. The expectation equals
 * computeMetrics().totalEps; agreement within a few standard errors
 * validates the duration/occupancy bookkeeping.
 */
NoiseSimResult sampleEps(const CompiledCircuit &compiled,
                         const GateLibrary &lib,
                         const NoiseSimOptions &opts = {});

} // namespace qompress

#endif // QOMPRESS_SIM_NOISE_HH
