#include "sim/gate_unitaries.hh"

#include <cmath>

#include "common/error.hh"

namespace qompress {

namespace {

GateMatrix
identity(std::size_t n)
{
    return GateMatrix::identity(n);
}

GateMatrix
kron(const GateMatrix &a, const GateMatrix &b)
{
    const std::size_t na = a.size(), nb = b.size();
    GateMatrix m(na * nb);
    for (std::size_t i = 0; i < na; ++i)
        for (std::size_t j = 0; j < na; ++j)
            for (std::size_t k = 0; k < nb; ++k)
                for (std::size_t l = 0; l < nb; ++l)
                    m[i * nb + k][j * nb + l] = a[i][j] * b[k][l];
    return m;
}

/**
 * Embed a 1-qubit unitary on one unit: tensor position for encoded
 * units, block-diagonal (levels 0/1) for bare units of dimension 4.
 */
GateMatrix
embedSq(int dim, bool enc, int pos, const GateMatrix &u)
{
    if (enc) {
        QPANIC_IF(dim != 4, "encoded unit must have dim 4");
        return pos == 0 ? kron(u, identity(2)) : kron(identity(2), u);
    }
    if (dim == 2)
        return u;
    GateMatrix m = identity(dim);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            m[i][j] = u[i][j];
    return m;
}

/** Logical bit of unit digit @p d; -1 when outside the subspace. */
int
extractBit(int d, bool enc, int pos)
{
    if (enc)
        return pos == 0 ? (d >> 1) : (d & 1);
    return d < 2 ? d : -1;
}

/** Digit with the logical bit replaced. @pre extractBit(d) != -1. */
int
replaceBit(int d, bool enc, int pos, int bit)
{
    if (enc) {
        if (pos == 0)
            return (bit << 1) | (d & 1);
        return (d & 2) | bit;
    }
    return bit;
}

/** Permutation matrix from an index map. */
GateMatrix
permutation(const std::vector<std::size_t> &image)
{
    const std::size_t n = image.size();
    GateMatrix m(n);
    std::vector<bool> hit(n, false);
    for (std::size_t col = 0; col < n; ++col) {
        QPANIC_IF(hit[image[col]], "permutation image collision");
        hit[image[col]] = true;
        m[image[col]][col] = 1.0;
    }
    return m;
}

/** Cross-unit ENC permutation over dims (dA, dB): the logical pair
 *  (a, b) with a, b in {0,1} becomes (2a + b, 0); everything else is
 *  completed to the remaining outputs in stable order. */
std::vector<std::size_t>
encodeImage(int da, int db)
{
    const std::size_t k = static_cast<std::size_t>(da * db);
    std::vector<std::size_t> image(k, k);
    std::vector<bool> used(k, false);
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            const std::size_t col =
                static_cast<std::size_t>(a * db + b);
            const std::size_t row =
                static_cast<std::size_t>((2 * a + b) * db + 0);
            image[col] = row;
            used[row] = true;
        }
    }
    std::size_t next = 0;
    for (std::size_t col = 0; col < k; ++col) {
        if (image[col] != k)
            continue;
        while (used[next])
            ++next;
        image[col] = next;
        used[next] = true;
    }
    return image;
}

} // namespace

GateMatrix
gate1q(GateType t, double param)
{
    const Cplx i(0.0, 1.0);
    const double s = 1.0 / std::sqrt(2.0);
    switch (t) {
      case GateType::X:
        return {{0, 1}, {1, 0}};
      case GateType::Y:
        return {{0, -i}, {i, 0}};
      case GateType::Z:
        return {{1, 0}, {0, -1}};
      case GateType::H:
        return {{s, s}, {s, -s}};
      case GateType::S:
        return {{1, 0}, {0, i}};
      case GateType::Sdg:
        return {{1, 0}, {0, -i}};
      case GateType::T:
        return {{1, 0}, {0, std::exp(i * (M_PI / 4))}};
      case GateType::Tdg:
        return {{1, 0}, {0, std::exp(-i * (M_PI / 4))}};
      case GateType::RX: {
        const double h = param / 2;
        return {{std::cos(h), -i * std::sin(h)},
                {-i * std::sin(h), std::cos(h)}};
      }
      case GateType::RY: {
        const double h = param / 2;
        return {{Cplx(std::cos(h)), Cplx(-std::sin(h))},
                {Cplx(std::sin(h)), Cplx(std::cos(h))}};
      }
      case GateType::RZ: {
        const double h = param / 2;
        return {{std::exp(-i * h), 0}, {0, std::exp(i * h)}};
      }
      default:
        QPANIC("gate1q: not a 1-qubit gate: ", gateName(t));
    }
}

GateMatrix
logicalGateUnitary(const Gate &g)
{
    switch (g.type) {
      case GateType::CX: {
        GateMatrix m = identity(4);
        m.swapRows(2, 3);
        return m;
      }
      case GateType::CZ: {
        GateMatrix m = identity(4);
        m[3][3] = -1.0;
        return m;
      }
      case GateType::Swap: {
        GateMatrix m = identity(4);
        m.swapRows(1, 2);
        return m;
      }
      case GateType::CCX: {
        GateMatrix m = identity(8);
        m.swapRows(6, 7);
        return m;
      }
      default:
        return gate1q(g.type, g.param);
    }
}

GateMatrix
physGateUnitary(const PhysGate &g, const std::vector<int> &dims,
                const std::vector<bool> &enc)
{
    const auto units = g.units();
    QPANIC_IF(dims.size() != units.size() || enc.size() != units.size(),
              "physGateUnitary: dims/enc mismatch");

    switch (g.cls) {
      case PhysGateClass::SqBare:
      case PhysGateClass::SqEnc0:
      case PhysGateClass::SqEnc1:
        return embedSq(dims[0], enc[0], slotPos(g.slots[0]),
                       gate1q(g.logical, g.param));

      case PhysGateClass::SqEncBoth:
        QPANIC_IF(dims[0] != 4, "fused 1q pair needs dim 4");
        return kron(gate1q(g.logical, g.param),
                    gate1q(g.logical2, g.param2));

      case PhysGateClass::CxInternal0:
      case PhysGateClass::CxInternal1: {
        // Control at slots[0]'s position, target at slots[1]'s.
        const int cpos = slotPos(g.slots[0]);
        const int tpos = slotPos(g.slots[1]);
        std::vector<std::size_t> image(4);
        for (int d = 0; d < 4; ++d) {
            const int c = extractBit(d, true, cpos);
            int nd = d;
            if (c == 1) {
                const int t = extractBit(d, true, tpos);
                nd = replaceBit(d, true, tpos, t ^ 1);
            }
            image[d] = static_cast<std::size_t>(nd);
        }
        return permutation(image);
      }

      case PhysGateClass::SwapInternal:
        return permutation({0, 2, 1, 3});

      case PhysGateClass::CxBareBare:
      case PhysGateClass::CxEnc0Bare:
      case PhysGateClass::CxEnc1Bare:
      case PhysGateClass::CxBareEnc0:
      case PhysGateClass::CxBareEnc1:
      case PhysGateClass::CxEnc00:
      case PhysGateClass::CxEnc01:
      case PhysGateClass::CxEnc10:
      case PhysGateClass::CxEnc11: {
        const int da = dims[0], db = dims[1];
        const int cpos = slotPos(g.slots[0]);
        const int tpos = slotPos(g.slots[1]);
        std::vector<std::size_t> image(
            static_cast<std::size_t>(da * db));
        for (int a = 0; a < da; ++a) {
            for (int b = 0; b < db; ++b) {
                const std::size_t col =
                    static_cast<std::size_t>(a * db + b);
                const int c = extractBit(a, enc[0], cpos);
                const int t = extractBit(b, enc[1], tpos);
                int nb = b;
                if (c == 1 && t != -1)
                    nb = replaceBit(b, enc[1], tpos, t ^ 1);
                image[col] = static_cast<std::size_t>(a * db + nb);
            }
        }
        return permutation(image);
      }

      case PhysGateClass::SwapBareBare:
      case PhysGateClass::SwapBareEnc0:
      case PhysGateClass::SwapBareEnc1:
      case PhysGateClass::SwapEnc00:
      case PhysGateClass::SwapEnc01:
      case PhysGateClass::SwapEnc11: {
        const int da = dims[0], db = dims[1];
        const int apos = slotPos(g.slots[0]);
        const int bpos = slotPos(g.slots[1]);
        std::vector<std::size_t> image(
            static_cast<std::size_t>(da * db));
        for (int a = 0; a < da; ++a) {
            for (int b = 0; b < db; ++b) {
                const std::size_t col =
                    static_cast<std::size_t>(a * db + b);
                const int x = extractBit(a, enc[0], apos);
                const int y = extractBit(b, enc[1], bpos);
                std::size_t row = col;
                if (x != -1 && y != -1) {
                    const int na = replaceBit(a, enc[0], apos, y);
                    const int nb = replaceBit(b, enc[1], bpos, x);
                    row = static_cast<std::size_t>(na * db + nb);
                }
                image[col] = row;
            }
        }
        return permutation(image);
      }

      case PhysGateClass::SwapFull: {
        const int da = dims[0], db = dims[1];
        QPANIC_IF(da != db, "SWAP4 needs equal dims");
        std::vector<std::size_t> image(
            static_cast<std::size_t>(da * db));
        for (int a = 0; a < da; ++a)
            for (int b = 0; b < db; ++b)
                image[static_cast<std::size_t>(a * db + b)] =
                    static_cast<std::size_t>(b * da + a);
        return permutation(image);
      }

      case PhysGateClass::Encode: {
        if (units.size() == 1)
            return identity(static_cast<std::size_t>(dims[0]));
        QPANIC_IF(dims[0] != 4, "ENC destination needs dim 4");
        return permutation(encodeImage(dims[0], dims[1]));
      }

      case PhysGateClass::Decode: {
        QPANIC_IF(units.size() != 2 || dims[0] != 4,
                  "DEC needs two units, source dim 4");
        // Inverse of the encode permutation.
        const auto enc_image = encodeImage(dims[0], dims[1]);
        std::vector<std::size_t> image(enc_image.size());
        for (std::size_t col = 0; col < enc_image.size(); ++col)
            image[enc_image[col]] = col;
        return permutation(image);
      }

      default:
        QPANIC("physGateUnitary: unhandled class");
    }
}

} // namespace qompress
