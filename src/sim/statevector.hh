/**
 * @file
 * A mixed-radix statevector simulator: each physical unit is a qudit
 * of dimension 2 or 4, and arbitrary k-unit unitaries can be applied.
 * Used to verify that compiled circuits implement their logical input.
 */

#ifndef QOMPRESS_SIM_STATEVECTOR_HH
#define QOMPRESS_SIM_STATEVECTOR_HH

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace qompress {

class ThreadPool;

using Cplx = std::complex<double>;

/**
 * Flat row-major dense complex matrix used for small gate unitaries.
 *
 * Rows are addressed as contiguous Cplx spans (`m[r][c]`), so gate
 * application kernels walk memory linearly instead of chasing one heap
 * block per row as the old vector-of-vectors representation did.
 */
class GateMatrix
{
  public:
    GateMatrix() = default;

    /** Zero matrix of shape n x n. */
    explicit GateMatrix(std::size_t n) : n_(n), data_(n * n, Cplx(0.0)) {}

    /** Dense construction from nested braces (rows must be square). */
    GateMatrix(std::initializer_list<std::initializer_list<Cplx>> rows);

    /** The n x n identity. */
    static GateMatrix identity(std::size_t n);

    /** Matrix dimension (rows == cols). */
    std::size_t size() const { return n_; }

    /** Row @p r as a contiguous span of size() entries. */
    Cplx *operator[](std::size_t r) { return data_.data() + r * n_; }
    const Cplx *operator[](std::size_t r) const
    {
        return data_.data() + r * n_;
    }

    /** Exchange two rows (used to build permutation-like gates). */
    void swapRows(std::size_t r1, std::size_t r2);

    /** The flat row-major backing store (size() * size() entries). */
    const std::vector<Cplx> &data() const { return data_; }

  private:
    std::size_t n_ = 0;
    std::vector<Cplx> data_;
};

/** True iff @p u is unitary within @p tol (used by tests). */
bool isUnitary(const GateMatrix &u, double tol = 1e-9);

/**
 * Statevector over an ordered list of qudits with per-qudit dimension.
 *
 * Unit 0 is the most significant digit of the basis index (matching
 * the |q0 q1 ...> reading order used throughout).
 *
 * Thread-safety: distinct states are independent; one state must not
 * be mutated from two threads (applyUnitary parallelizes internally,
 * see below). The shard knobs are process-wide setup-time switches.
 */
class MixedRadixState
{
  public:
    /** |0...0> over the given dimensions. */
    explicit MixedRadixState(std::vector<int> dims);

    /** Product state: one normalized amplitude vector per unit. */
    static MixedRadixState product(
        const std::vector<std::vector<Cplx>> &unit_states);

    /** Number of qudits. */
    int numUnits() const { return static_cast<int>(dims_.size()); }
    /** Dimension (2 or 4) of @p unit. */
    int dim(int unit) const { return dims_[unit]; }
    /** Total amplitude count (product of all unit dims). */
    std::size_t size() const { return amps_.size(); }

    /** The full amplitude vector, basis-ordered. */
    const std::vector<Cplx> &amplitudes() const { return amps_; }
    /** Amplitude of basis state @p idx. */
    Cplx amp(std::size_t idx) const { return amps_[idx]; }

    /** The basis digit of @p unit within global index @p idx. */
    int digit(std::size_t idx, int unit) const;

    /** Compose a global index from per-unit digits. */
    std::size_t indexOf(const std::vector<int> &digits) const;

    /** 2-norm of the state. */
    double norm() const;

    /**
     * Apply @p u (dimension = product of the targets' dims, target 0
     * most significant) to the listed units.
     *
     * The hot path: gather indices are tabulated once per call and the
     * untouched subspace is enumerated by incremental stride bumps, so
     * the per-amplitude inner loop performs no division or modulo.
     * Single-qudit gates (k = 2 and k = 4) use unrolled kernels;
     * larger gates run a sparsity-aware gather/scatter.
     *
     * States of at least shardThreshold() amplitudes shard the
     * complement-block loop across the shard pool (each block touches
     * a disjoint amplitude set, and every block performs the same
     * arithmetic in the same order as the serial kernel, so the result
     * is bit-identical regardless of lane count); smaller states, a
     * one-lane pool, and calls arriving on a pool worker all take the
     * serial kernels. Not safe to call concurrently on one state.
     */
    void applyUnitary(const std::vector<int> &units, const GateMatrix &u);

    /**
     * Reference implementation of applyUnitary: recomputes every
     * gather index with explicit div/mod arithmetic. Retained for
     * differential tests and the bench_hotpaths baseline; do not use
     * in production paths.
     */
    void applyUnitaryNaive(const std::vector<int> &units,
                           const GateMatrix &u);

    /** Fidelity |<a|b>|^2 between two same-shape states. */
    static double overlap(const MixedRadixState &a,
                          const MixedRadixState &b);

    /**
     * Minimum state size (in amplitudes) at which applyUnitary shards
     * across the pool; default 2^18. Process-wide, not synchronized:
     * set it during single-threaded setup (tests, main).
     */
    static void setShardThreshold(std::size_t amps);
    static std::size_t shardThreshold();

    /** Pool used for sharding; nullptr (the default) means
     *  ThreadPool::global(). Same setup-time caveat as the threshold. */
    static void setShardPool(ThreadPool *pool);

  private:
    /** Shared operand validation; returns the target-space dim k. */
    std::size_t checkTargets(const std::vector<int> &units,
                             const GateMatrix &u) const;

    std::vector<int> dims_;
    std::vector<std::size_t> strides_;
    std::vector<Cplx> amps_;
};

} // namespace qompress

#endif // QOMPRESS_SIM_STATEVECTOR_HH
