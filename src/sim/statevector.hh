/**
 * @file
 * A mixed-radix statevector simulator: each physical unit is a qudit
 * of dimension 2 or 4, and arbitrary k-unit unitaries can be applied.
 * Used to verify that compiled circuits implement their logical input.
 */

#ifndef QOMPRESS_SIM_STATEVECTOR_HH
#define QOMPRESS_SIM_STATEVECTOR_HH

#include <complex>
#include <cstddef>
#include <vector>

namespace qompress {

using Cplx = std::complex<double>;

/** Row-major dense complex matrix used for small gate unitaries. */
using SmallMatrix = std::vector<std::vector<Cplx>>;

/** True iff @p u is unitary within @p tol (used by tests). */
bool isUnitary(const SmallMatrix &u, double tol = 1e-9);

/**
 * Statevector over an ordered list of qudits with per-qudit dimension.
 *
 * Unit 0 is the most significant digit of the basis index (matching
 * the |q0 q1 ...> reading order used throughout).
 */
class MixedRadixState
{
  public:
    /** |0...0> over the given dimensions. */
    explicit MixedRadixState(std::vector<int> dims);

    /** Product state: one normalized amplitude vector per unit. */
    static MixedRadixState product(
        const std::vector<std::vector<Cplx>> &unit_states);

    int numUnits() const { return static_cast<int>(dims_.size()); }
    int dim(int unit) const { return dims_[unit]; }
    std::size_t size() const { return amps_.size(); }

    const std::vector<Cplx> &amplitudes() const { return amps_; }
    Cplx amp(std::size_t idx) const { return amps_[idx]; }

    /** The basis digit of @p unit within global index @p idx. */
    int digit(std::size_t idx, int unit) const;

    /** Compose a global index from per-unit digits. */
    std::size_t indexOf(const std::vector<int> &digits) const;

    /** 2-norm of the state. */
    double norm() const;

    /**
     * Apply @p u (dimension = product of the targets' dims, target 0
     * most significant) to the listed units.
     */
    void applyUnitary(const std::vector<int> &units, const SmallMatrix &u);

    /** Fidelity |<a|b>|^2 between two same-shape states. */
    static double overlap(const MixedRadixState &a,
                          const MixedRadixState &b);

  private:
    std::vector<int> dims_;
    std::vector<std::size_t> strides_;
    std::vector<Cplx> amps_;
};

} // namespace qompress

#endif // QOMPRESS_SIM_STATEVECTOR_HH
