#include "sim/equivalence.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "compiler/router.hh"
#include "sim/gate_unitaries.hh"

namespace qompress {

namespace {

/** Units the simulation must model: initially occupied or gate-touched. */
std::vector<UnitId>
activeUnits(const CompiledCircuit &compiled)
{
    std::vector<bool> active(compiled.initialLayout().numUnits(), false);
    const Layout &init = compiled.initialLayout();
    for (UnitId u = 0; u < init.numUnits(); ++u) {
        if (init.unitOccupancy(u) > 0)
            active[u] = true;
    }
    for (const auto &g : compiled.gates())
        for (UnitId u : g.units())
            active[u] = true;
    std::vector<UnitId> out;
    for (UnitId u = 0; u < init.numUnits(); ++u) {
        if (active[u])
            out.push_back(u);
    }
    return out;
}

/** Per-active-unit simulated dimension: 4 wherever ququart states can
 *  appear (determined by a layout replay). */
std::map<UnitId, int>
unitDims(const CompiledCircuit &compiled,
         const std::vector<UnitId> &active)
{
    std::map<UnitId, int> dims;
    for (UnitId u : active)
        dims[u] = 2;
    Layout layout = compiled.initialLayout();
    for (UnitId u : active) {
        if (layout.unitEncoded(u))
            dims[u] = 4;
    }
    for (const auto &g : compiled.gates()) {
        for (UnitId u : g.units()) {
            if (layout.unitEncoded(u))
                dims[u] = 4;
        }
        if (g.cls == PhysGateClass::SwapFull) {
            // Whole-ququart exchanges carry 4-level states both ways.
            for (UnitId u : g.units())
                dims[u] = 4;
        }
        if (g.cls == PhysGateClass::Encode)
            dims[slotUnit(g.slots[0])] = 4;
        // Advance occupancy.
        advanceLayout(layout, g);
    }
    return dims;
}

} // namespace

EquivalenceReport
checkEquivalence(const Circuit &logical, const CompiledCircuit &compiled,
                 int trials, std::uint64_t seed, double tol)
{
    EquivalenceReport report;
    const int n = logical.numQubits();
    const auto active = activeUnits(compiled);
    const auto dims_by_unit = unitDims(compiled, active);

    // Simulator index per active unit.
    std::map<UnitId, int> sim_index;
    std::vector<int> phys_dims;
    for (UnitId u : active) {
        sim_index[u] = static_cast<int>(phys_dims.size());
        phys_dims.push_back(dims_by_unit.at(u));
    }

    // Guard against oversized simulations.
    std::size_t total = 1;
    for (int d : phys_dims) {
        total *= static_cast<std::size_t>(d);
        if (total > (1ULL << 24)) {
            report.message = "physical state too large to simulate";
            return report;
        }
    }

    Rng rng(seed);
    for (int trial = 0; trial <= trials; ++trial) {
        // Trial 0: |0...0>; afterwards random product states.
        std::vector<std::vector<Cplx>> qubit_state(n);
        for (int q = 0; q < n; ++q) {
            if (trial == 0) {
                qubit_state[q] = {1.0, 0.0};
            } else {
                const double theta = rng.nextDouble(0.0, M_PI);
                const double phi = rng.nextDouble(0.0, 2.0 * M_PI);
                qubit_state[q] = {
                    std::cos(theta / 2),
                    std::exp(Cplx(0, 1) * phi) * std::sin(theta / 2)};
            }
        }

        // Reference: simulate the logical circuit directly.
        MixedRadixState ref = MixedRadixState::product(qubit_state);
        for (const auto &g : logical.gates()) {
            std::vector<int> targets(g.qubits.begin(), g.qubits.end());
            ref.applyUnitary(targets, logicalGateUnitary(g));
        }

        // Physical initial state from the initial layout.
        const Layout &init = compiled.initialLayout();
        std::vector<std::vector<Cplx>> unit_state(phys_dims.size());
        for (UnitId u : active) {
            const int d = dims_by_unit.at(u);
            std::vector<Cplx> s(static_cast<std::size_t>(d), 0.0);
            const QubitId q0 = init.qubitAt(makeSlot(u, 0));
            const QubitId q1 = init.qubitAt(makeSlot(u, 1));
            if (q0 != kInvalid && q1 != kInvalid) {
                for (int a = 0; a < 2; ++a)
                    for (int b = 0; b < 2; ++b)
                        s[static_cast<std::size_t>(2 * a + b)] =
                            qubit_state[q0][a] * qubit_state[q1][b];
            } else if (q0 != kInvalid) {
                s[0] = qubit_state[q0][0];
                s[1] = qubit_state[q0][1];
            } else if (q1 != kInvalid) {
                report.message = "initial layout uses position 1 of a "
                                 "non-encoded unit";
                return report;
            } else {
                s[0] = 1.0;
            }
            unit_state[sim_index.at(u)] = std::move(s);
        }
        MixedRadixState phys = MixedRadixState::product(unit_state);

        // Replay the compiled gates, tracking encoding via the layout.
        Layout layout = init;
        for (const auto &g : compiled.gates()) {
            const auto units = g.units();
            std::vector<int> targets;
            std::vector<int> tdims;
            std::vector<bool> tenc;
            for (UnitId u : units) {
                targets.push_back(sim_index.at(u));
                tdims.push_back(dims_by_unit.at(u));
                tenc.push_back(layout.unitEncoded(u));
            }
            phys.applyUnitary(targets, physGateUnitary(g, tdims, tenc));
            advanceLayout(layout, g);
        }

        // Decode the final physical state against the final layout.
        const Layout &fin = compiled.finalLayout();
        for (std::size_t idx = 0; idx < phys.size(); ++idx) {
            std::vector<int> bits(n, 0);
            bool in_subspace = true;
            for (UnitId u : active) {
                const int d = phys.digit(idx, sim_index.at(u));
                const QubitId q0 = fin.qubitAt(makeSlot(u, 0));
                const QubitId q1 = fin.qubitAt(makeSlot(u, 1));
                if (q0 != kInvalid && q1 != kInvalid) {
                    bits[q0] = d >> 1;
                    bits[q1] = d & 1;
                } else if (q0 != kInvalid) {
                    if (d >= 2) {
                        in_subspace = false;
                        break;
                    }
                    bits[q0] = d;
                } else {
                    if (d != 0) {
                        in_subspace = false;
                        break;
                    }
                }
            }
            const Cplx actual = phys.amp(idx);
            const Cplx expect = in_subspace
                ? ref.amp(ref.indexOf(bits)) : Cplx(0.0);
            // Multiple physical indices can decode to one logical
            // index only when empty/bare units hold non-logical
            // levels, which in_subspace already excludes.
            const double err = std::abs(actual - expect);
            report.maxError = std::max(report.maxError, err);
            if (err > tol) {
                report.message = format(
                    "trial %d: amplitude mismatch %.3e at physical "
                    "index %zu", trial, err, idx);
                return report;
            }
        }
    }
    report.ok = true;
    return report;
}

} // namespace qompress
