#include "sim/statevector.hh"

#include <cmath>

#include "common/error.hh"

namespace qompress {

bool
isUnitary(const SmallMatrix &u, double tol)
{
    const std::size_t n = u.size();
    for (const auto &row : u) {
        if (row.size() != n)
            return false;
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            Cplx dot = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                dot += std::conj(u[k][i]) * u[k][j];
            const Cplx expect = i == j ? 1.0 : 0.0;
            if (std::abs(dot - expect) > tol)
                return false;
        }
    }
    return true;
}

MixedRadixState::MixedRadixState(std::vector<int> dims)
    : dims_(std::move(dims))
{
    QFATAL_IF(dims_.empty(), "state needs at least one unit");
    std::size_t total = 1;
    strides_.resize(dims_.size());
    for (int u = static_cast<int>(dims_.size()) - 1; u >= 0; --u) {
        QFATAL_IF(dims_[u] < 2, "unit dimension must be >= 2");
        strides_[u] = total;
        total *= static_cast<std::size_t>(dims_[u]);
        QFATAL_IF(total > (1ULL << 26),
                  "state too large to simulate (", total, " amplitudes)");
    }
    amps_.assign(total, Cplx(0.0));
    amps_[0] = 1.0;
}

MixedRadixState
MixedRadixState::product(const std::vector<std::vector<Cplx>> &unit_states)
{
    std::vector<int> dims;
    dims.reserve(unit_states.size());
    for (const auto &s : unit_states)
        dims.push_back(static_cast<int>(s.size()));
    MixedRadixState state(std::move(dims));
    for (std::size_t idx = 0; idx < state.size(); ++idx) {
        Cplx a = 1.0;
        for (int u = 0; u < state.numUnits(); ++u)
            a *= unit_states[u][state.digit(idx, u)];
        state.amps_[idx] = a;
    }
    return state;
}

int
MixedRadixState::digit(std::size_t idx, int unit) const
{
    return static_cast<int>(idx / strides_[unit]) % dims_[unit];
}

std::size_t
MixedRadixState::indexOf(const std::vector<int> &digits) const
{
    QPANIC_IF(digits.size() != dims_.size(), "indexOf: digit count");
    std::size_t idx = 0;
    for (std::size_t u = 0; u < digits.size(); ++u) {
        QPANIC_IF(digits[u] < 0 || digits[u] >= dims_[u],
                  "indexOf: digit out of range");
        idx += static_cast<std::size_t>(digits[u]) * strides_[u];
    }
    return idx;
}

double
MixedRadixState::norm() const
{
    double n2 = 0.0;
    for (const auto &a : amps_)
        n2 += std::norm(a);
    return std::sqrt(n2);
}

void
MixedRadixState::applyUnitary(const std::vector<int> &units,
                              const SmallMatrix &u)
{
    QPANIC_IF(units.empty(), "applyUnitary: no targets");
    std::size_t k = 1;
    std::vector<std::size_t> local_stride(units.size());
    for (int t = static_cast<int>(units.size()) - 1; t >= 0; --t) {
        const int unit = units[t];
        QPANIC_IF(unit < 0 || unit >= numUnits(),
                  "applyUnitary: bad unit ", unit);
        local_stride[t] = k;
        k *= static_cast<std::size_t>(dims_[unit]);
    }
    QPANIC_IF(u.size() != k, "applyUnitary: matrix dim ", u.size(),
              " != target space ", k);

    // Complement units enumerate the untouched subspace.
    std::vector<int> rest;
    for (int w = 0; w < numUnits(); ++w) {
        bool used = false;
        for (int unit : units)
            used |= (unit == w);
        if (!used)
            rest.push_back(w);
    }

    std::vector<Cplx> in(k), out(k);
    std::vector<int> rest_digit(rest.size(), 0);
    while (true) {
        std::size_t base = 0;
        for (std::size_t r = 0; r < rest.size(); ++r)
            base += static_cast<std::size_t>(rest_digit[r]) *
                    strides_[rest[r]];

        // Gather, multiply, scatter.
        for (std::size_t li = 0; li < k; ++li) {
            std::size_t idx = base;
            std::size_t tmp = li;
            for (std::size_t t = 0; t < units.size(); ++t) {
                const std::size_t digit = tmp / local_stride[t];
                tmp %= local_stride[t];
                idx += digit * strides_[units[t]];
            }
            in[li] = amps_[idx];
        }
        for (std::size_t row = 0; row < k; ++row) {
            Cplx acc = 0.0;
            for (std::size_t col = 0; col < k; ++col) {
                if (u[row][col] != Cplx(0.0))
                    acc += u[row][col] * in[col];
            }
            out[row] = acc;
        }
        for (std::size_t li = 0; li < k; ++li) {
            std::size_t idx = base;
            std::size_t tmp = li;
            for (std::size_t t = 0; t < units.size(); ++t) {
                const std::size_t digit = tmp / local_stride[t];
                tmp %= local_stride[t];
                idx += digit * strides_[units[t]];
            }
            amps_[idx] = out[li];
        }

        // Advance the complement counter.
        int r = static_cast<int>(rest.size()) - 1;
        while (r >= 0) {
            if (++rest_digit[r] < dims_[rest[r]])
                break;
            rest_digit[r] = 0;
            --r;
        }
        if (r < 0)
            break;
        if (rest.empty())
            break;
    }
}

double
MixedRadixState::overlap(const MixedRadixState &a, const MixedRadixState &b)
{
    QPANIC_IF(a.size() != b.size(), "overlap: shape mismatch");
    Cplx dot = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        dot += std::conj(a.amps_[i]) * b.amps_[i];
    return std::norm(dot);
}

} // namespace qompress
