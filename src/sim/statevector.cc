#include "sim/statevector.hh"

#include <cmath>

#include "common/error.hh"
#include "common/thread_pool.hh"

namespace qompress {

GateMatrix::GateMatrix(
    std::initializer_list<std::initializer_list<Cplx>> rows)
    : n_(rows.size())
{
    data_.reserve(n_ * n_);
    for (const auto &row : rows) {
        QPANIC_IF(row.size() != n_, "GateMatrix: ragged initializer");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

GateMatrix
GateMatrix::identity(std::size_t n)
{
    GateMatrix m(n);
    for (std::size_t i = 0; i < n; ++i)
        m[i][i] = 1.0;
    return m;
}

void
GateMatrix::swapRows(std::size_t r1, std::size_t r2)
{
    QPANIC_IF(r1 >= n_ || r2 >= n_, "swapRows: row out of range");
    Cplx *a = (*this)[r1];
    Cplx *b = (*this)[r2];
    for (std::size_t c = 0; c < n_; ++c)
        std::swap(a[c], b[c]);
}

bool
isUnitary(const GateMatrix &u, double tol)
{
    const std::size_t n = u.size();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            Cplx dot = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                dot += std::conj(u[k][i]) * u[k][j];
            const Cplx expect = i == j ? 1.0 : 0.0;
            if (std::abs(dot - expect) > tol)
                return false;
        }
    }
    return true;
}

MixedRadixState::MixedRadixState(std::vector<int> dims)
    : dims_(std::move(dims))
{
    QFATAL_IF(dims_.empty(), "state needs at least one unit");
    std::size_t total = 1;
    strides_.resize(dims_.size());
    for (int u = static_cast<int>(dims_.size()) - 1; u >= 0; --u) {
        QFATAL_IF(dims_[u] < 2, "unit dimension must be >= 2");
        strides_[u] = total;
        total *= static_cast<std::size_t>(dims_[u]);
        QFATAL_IF(total > (1ULL << 26),
                  "state too large to simulate (", total, " amplitudes)");
    }
    amps_.assign(total, Cplx(0.0));
    amps_[0] = 1.0;
}

MixedRadixState
MixedRadixState::product(const std::vector<std::vector<Cplx>> &unit_states)
{
    std::vector<int> dims;
    dims.reserve(unit_states.size());
    for (const auto &s : unit_states)
        dims.push_back(static_cast<int>(s.size()));
    MixedRadixState state(std::move(dims));
    for (std::size_t idx = 0; idx < state.size(); ++idx) {
        Cplx a = 1.0;
        for (int u = 0; u < state.numUnits(); ++u)
            a *= unit_states[u][state.digit(idx, u)];
        state.amps_[idx] = a;
    }
    return state;
}

int
MixedRadixState::digit(std::size_t idx, int unit) const
{
    return static_cast<int>(idx / strides_[unit]) % dims_[unit];
}

std::size_t
MixedRadixState::indexOf(const std::vector<int> &digits) const
{
    QPANIC_IF(digits.size() != dims_.size(), "indexOf: digit count");
    std::size_t idx = 0;
    for (std::size_t u = 0; u < digits.size(); ++u) {
        QPANIC_IF(digits[u] < 0 || digits[u] >= dims_[u],
                  "indexOf: digit out of range");
        idx += static_cast<std::size_t>(digits[u]) * strides_[u];
    }
    return idx;
}

double
MixedRadixState::norm() const
{
    double n2 = 0.0;
    for (const auto &a : amps_)
        n2 += std::norm(a);
    return std::sqrt(n2);
}

std::size_t
MixedRadixState::checkTargets(const std::vector<int> &units,
                              const GateMatrix &u) const
{
    QPANIC_IF(units.empty(), "applyUnitary: no targets");
    std::size_t k = 1;
    for (int t = static_cast<int>(units.size()) - 1; t >= 0; --t) {
        const int unit = units[t];
        QPANIC_IF(unit < 0 || unit >= numUnits(),
                  "applyUnitary: bad unit ", unit);
        k *= static_cast<std::size_t>(dims_[unit]);
    }
    QPANIC_IF(u.size() != k, "applyUnitary: matrix dim ", u.size(),
              " != target space ", k);
    return k;
}

namespace {

/**
 * Odometer over the listed units: bumps @p base by one step of the
 * rightmost digit, carrying with stride subtraction instead of
 * recomputing the base index. @p digit must have one counter per unit.
 */
inline void
bumpOdometer(std::size_t &base, std::vector<int> &digit,
             const std::vector<int> &dims,
             const std::vector<std::size_t> &strides)
{
    for (int t = static_cast<int>(digit.size()) - 1; t >= 0; --t) {
        base += strides[t];
        if (++digit[t] < dims[t])
            return;
        base -= strides[t] * static_cast<std::size_t>(dims[t]);
        digit[t] = 0;
    }
}

std::size_t g_shard_threshold = std::size_t(1) << 18;
ThreadPool *g_shard_pool = nullptr; // null = ThreadPool::global()

/** The 2^26-amplitude cap bounds a state at 26 dim->=2 units, so
 *  odometer digit/dim/stride sets always fit on the stack. */
constexpr int kMaxUnits = 32;

/** Raw-pointer odometer state over the complement units: a stack copy
 *  of the dims/strides the range kernels iterate with, so the hot
 *  loops see provably loop-invariant locals instead of vector loads
 *  the optimizer must assume the amplitude stores could alias. */
struct Odometer
{
    int n = 0;
    int digit[kMaxUnits];
    int dims[kMaxUnits];
    std::size_t strides[kMaxUnits];

    Odometer(const std::vector<int> &d, const std::vector<std::size_t> &s)
        : n(static_cast<int>(d.size()))
    {
        QPANIC_IF(n > kMaxUnits,
                  "Odometer: ", n, " units exceeds stack capacity");
        for (int t = 0; t < n; ++t) {
            digit[t] = 0;
            dims[t] = d[t];
            strides[t] = s[t];
        }
    }

    /** Position at block @p blk (mixed-radix decompose, rightmost
     *  digit least significant — the order bump() advances in) and
     *  return its base index. Called once per shard; div/mod cost is
     *  irrelevant. */
    std::size_t
    seek(std::size_t blk)
    {
        std::size_t base = 0;
        for (int t = n - 1; t >= 0; --t) {
            const int d =
                static_cast<int>(blk % static_cast<std::size_t>(dims[t]));
            blk /= static_cast<std::size_t>(dims[t]);
            digit[t] = d;
            base += static_cast<std::size_t>(d) * strides[t];
        }
        return base;
    }

    /** Advance @p base by one block with stride carries (no div/mod). */
    inline void
    bump(std::size_t &base)
    {
        for (int t = n - 1; t >= 0; --t) {
            base += strides[t];
            if (++digit[t] < dims[t])
                return;
            base -= strides[t] * static_cast<std::size_t>(dims[t]);
            digit[t] = 0;
        }
    }
};

// The three gate kernels, each over a complement-block range
// [lo, hi). Free functions rather than local lambdas so the serial
// call site stays a direct (inlinable) call with no closure escaping
// into std::function — that escape measurably deoptimized the hot
// loops when the kernels were first shared with the sharded path.

void
runK2(Cplx *amps, Cplx m00, Cplx m01, Cplx m10, Cplx m11, std::size_t s1,
      std::size_t lo, std::size_t hi, const std::vector<int> &rest_dims,
      const std::vector<std::size_t> &rest_str)
{
    Odometer odo(rest_dims, rest_str);
    std::size_t base = odo.seek(lo);
    for (std::size_t blk = lo; blk < hi; ++blk) {
        const Cplx a0 = amps[base];
        const Cplx a1 = amps[base + s1];
        amps[base] = m00 * a0 + m01 * a1;
        amps[base + s1] = m10 * a0 + m11 * a1;
        odo.bump(base);
    }
}

void
runK4(Cplx *amps, const Cplx m[16], std::size_t s1, std::size_t s2,
      std::size_t s3, std::size_t lo, std::size_t hi,
      const std::vector<int> &rest_dims,
      const std::vector<std::size_t> &rest_str)
{
    // Local copy: the caller's matrix lives behind a pointer the
    // amplitude stores could alias; registers/stack slots cannot.
    Cplx lm[16];
    for (int i = 0; i < 16; ++i)
        lm[i] = m[i];
    Odometer odo(rest_dims, rest_str);
    std::size_t base = odo.seek(lo);
    for (std::size_t blk = lo; blk < hi; ++blk) {
        const Cplx a0 = amps[base];
        const Cplx a1 = amps[base + s1];
        const Cplx a2 = amps[base + s2];
        const Cplx a3 = amps[base + s3];
        amps[base] = lm[0] * a0 + lm[1] * a1 + lm[2] * a2 + lm[3] * a3;
        amps[base + s1] =
            lm[4] * a0 + lm[5] * a1 + lm[6] * a2 + lm[7] * a3;
        amps[base + s2] =
            lm[8] * a0 + lm[9] * a1 + lm[10] * a2 + lm[11] * a3;
        amps[base + s3] =
            lm[12] * a0 + lm[13] * a1 + lm[14] * a2 + lm[15] * a3;
        odo.bump(base);
    }
}

void
runGeneral(Cplx *amps, std::size_t k, const std::vector<std::size_t> &offset,
           const std::vector<std::size_t> &row_begin,
           const std::vector<std::size_t> &nz_col,
           const std::vector<Cplx> &nz_val, std::size_t lo, std::size_t hi,
           const std::vector<int> &rest_dims,
           const std::vector<std::size_t> &rest_str)
{
    std::vector<Cplx> in(k);
    // Fresh local copy of the nonzero values: the caller's vector is a
    // Cplx array the amplitude stores could alias, which would force a
    // reload of every coefficient per block; a freshly allocated copy
    // is provably disjoint.
    const std::vector<Cplx> vals(nz_val);
    Odometer odo(rest_dims, rest_str);
    std::size_t base = odo.seek(lo);
    for (std::size_t blk = lo; blk < hi; ++blk) {
        for (std::size_t li = 0; li < k; ++li)
            in[li] = amps[base + offset[li]];
        for (std::size_t row = 0; row < k; ++row) {
            Cplx acc = 0.0;
            for (std::size_t p = row_begin[row]; p < row_begin[row + 1];
                 ++p) {
                acc += vals[p] * in[nz_col[p]];
            }
            amps[base + offset[row]] = acc;
        }
        odo.bump(base);
    }
}

} // namespace

void
MixedRadixState::setShardThreshold(std::size_t amps)
{
    g_shard_threshold = amps;
}

std::size_t
MixedRadixState::shardThreshold()
{
    return g_shard_threshold;
}

void
MixedRadixState::setShardPool(ThreadPool *pool)
{
    g_shard_pool = pool;
}

void
MixedRadixState::applyUnitary(const std::vector<int> &units,
                              const GateMatrix &u)
{
    const std::size_t k = checkTargets(units, u);

    // Tabulate the gather offset of every local index once: the inner
    // loops then index amps_ directly with no div/mod arithmetic.
    std::vector<std::size_t> offset(k);
    {
        std::vector<int> tdims(units.size()), tdigit(units.size(), 0);
        std::vector<std::size_t> tstr(units.size());
        for (std::size_t t = 0; t < units.size(); ++t) {
            tdims[t] = dims_[units[t]];
            tstr[t] = strides_[units[t]];
        }
        std::size_t off = 0;
        for (std::size_t li = 0; li < k; ++li) {
            offset[li] = off;
            bumpOdometer(off, tdigit, tdims, tstr);
        }
    }

    // Complement units enumerate the untouched subspace.
    std::vector<int> rest_dims;
    std::vector<std::size_t> rest_str;
    {
        std::vector<bool> used(dims_.size(), false);
        for (int unit : units)
            used[unit] = true;
        for (std::size_t w = 0; w < dims_.size(); ++w) {
            if (!used[w]) {
                rest_dims.push_back(dims_[w]);
                rest_str.push_back(strides_[w]);
            }
        }
    }
    const std::size_t blocks = size() / k;
    Cplx *amps = amps_.data();

    // Sharding decision: every complement block touches a disjoint set
    // of amplitudes, so block ranges can run on different lanes with
    // no synchronization; each lane seeks the odometer to its first
    // block and then runs the identical serial kernel, keeping the
    // result bit-identical to the single-lane path. Calls already on a
    // pool worker stay serial (no nested fan-out).
    int lanes = 1;
    ThreadPool *pool = nullptr;
    if (amps_.size() >= g_shard_threshold && !ThreadPool::onWorkerThread()) {
        pool = g_shard_pool ? g_shard_pool : &ThreadPool::global();
        lanes = pool->numThreads();
        if (lanes <= 1 ||
            blocks < static_cast<std::size_t>(lanes) * 4) {
            lanes = 1;
            pool = nullptr;
        }
    }

    // One contiguous chunk per lane; chunk c covers
    // [blocks*c/lanes, blocks*(c+1)/lanes).
    auto shard = [&](const std::function<void(std::size_t, std::size_t)>
                         &kernel) {
        const std::size_t nchunks = static_cast<std::size_t>(lanes);
        pool->parallelFor(0, nchunks, [&](std::size_t c, int) {
            const std::size_t lo = blocks * c / nchunks;
            const std::size_t hi = blocks * (c + 1) / nchunks;
            if (lo < hi)
                kernel(lo, hi);
        });
    };

    if (k == 2) {
        const Cplx m00 = u[0][0], m01 = u[0][1];
        const Cplx m10 = u[1][0], m11 = u[1][1];
        const std::size_t s1 = offset[1];
        if (!pool) {
            runK2(amps, m00, m01, m10, m11, s1, 0, blocks, rest_dims,
                  rest_str);
        } else {
            shard([&](std::size_t lo, std::size_t hi) {
                runK2(amps, m00, m01, m10, m11, s1, lo, hi, rest_dims,
                      rest_str);
            });
        }
        return;
    }

    if (k == 4) {
        Cplx m[16];
        for (std::size_t r = 0; r < 4; ++r)
            for (std::size_t c = 0; c < 4; ++c)
                m[4 * r + c] = u[r][c];
        const std::size_t s1 = offset[1], s2 = offset[2], s3 = offset[3];
        if (!pool) {
            runK4(amps, m, s1, s2, s3, 0, blocks, rest_dims, rest_str);
        } else {
            shard([&](std::size_t lo, std::size_t hi) {
                runK4(amps, m, s1, s2, s3, lo, hi, rest_dims, rest_str);
            });
        }
        return;
    }

    // General kernel: compress the unitary's nonzero structure once
    // (most physical gate classes are permutations, so row work is
    // O(1) rather than O(k)), then gather / multiply / scatter.
    std::vector<std::size_t> row_begin(k + 1, 0);
    std::vector<std::size_t> nz_col;
    std::vector<Cplx> nz_val;
    nz_col.reserve(k * 2);
    nz_val.reserve(k * 2);
    for (std::size_t row = 0; row < k; ++row) {
        const Cplx *urow = u[row];
        for (std::size_t col = 0; col < k; ++col) {
            if (urow[col] != Cplx(0.0)) {
                nz_col.push_back(col);
                nz_val.push_back(urow[col]);
            }
        }
        row_begin[row + 1] = nz_col.size();
    }

    if (!pool) {
        runGeneral(amps, k, offset, row_begin, nz_col, nz_val, 0, blocks,
                   rest_dims, rest_str);
    } else {
        shard([&](std::size_t lo, std::size_t hi) {
            runGeneral(amps, k, offset, row_begin, nz_col, nz_val, lo, hi,
                       rest_dims, rest_str);
        });
    }
}

void
MixedRadixState::applyUnitaryNaive(const std::vector<int> &units,
                                   const GateMatrix &u)
{
    const std::size_t k = checkTargets(units, u);
    std::vector<std::size_t> local_stride(units.size());
    {
        std::size_t acc = 1;
        for (int t = static_cast<int>(units.size()) - 1; t >= 0; --t) {
            local_stride[t] = acc;
            acc *= static_cast<std::size_t>(dims_[units[t]]);
        }
    }

    std::vector<int> rest;
    for (int w = 0; w < numUnits(); ++w) {
        bool used = false;
        for (int unit : units)
            used |= (unit == w);
        if (!used)
            rest.push_back(w);
    }

    std::vector<Cplx> in(k), out(k);
    std::vector<int> rest_digit(rest.size(), 0);
    bool more = true;
    while (more) {
        std::size_t base = 0;
        for (std::size_t r = 0; r < rest.size(); ++r)
            base += static_cast<std::size_t>(rest_digit[r]) *
                    strides_[rest[r]];

        // Gather, multiply, scatter -- recomputing each gather index
        // from scratch with div/mod (the pre-optimization behaviour).
        for (std::size_t li = 0; li < k; ++li) {
            std::size_t idx = base;
            std::size_t tmp = li;
            for (std::size_t t = 0; t < units.size(); ++t) {
                const std::size_t digit = tmp / local_stride[t];
                tmp %= local_stride[t];
                idx += digit * strides_[units[t]];
            }
            in[li] = amps_[idx];
        }
        for (std::size_t row = 0; row < k; ++row) {
            Cplx acc = 0.0;
            for (std::size_t col = 0; col < k; ++col) {
                if (u[row][col] != Cplx(0.0))
                    acc += u[row][col] * in[col];
            }
            out[row] = acc;
        }
        for (std::size_t li = 0; li < k; ++li) {
            std::size_t idx = base;
            std::size_t tmp = li;
            for (std::size_t t = 0; t < units.size(); ++t) {
                const std::size_t digit = tmp / local_stride[t];
                tmp %= local_stride[t];
                idx += digit * strides_[units[t]];
            }
            amps_[idx] = out[li];
        }

        // Advance the complement counter; an empty complement means a
        // single block, so the loop simply terminates.
        more = false;
        for (int r = static_cast<int>(rest.size()) - 1; r >= 0; --r) {
            if (++rest_digit[r] < dims_[rest[r]]) {
                more = true;
                break;
            }
            rest_digit[r] = 0;
        }
    }
}

double
MixedRadixState::overlap(const MixedRadixState &a, const MixedRadixState &b)
{
    QPANIC_IF(a.size() != b.size(), "overlap: shape mismatch");
    Cplx dot = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        dot += std::conj(a.amps_[i]) * b.amps_[i];
    return std::norm(dot);
}

} // namespace qompress
