#include "sim/statevector.hh"

#include <cmath>

#include "common/error.hh"

namespace qompress {

GateMatrix::GateMatrix(
    std::initializer_list<std::initializer_list<Cplx>> rows)
    : n_(rows.size())
{
    data_.reserve(n_ * n_);
    for (const auto &row : rows) {
        QPANIC_IF(row.size() != n_, "GateMatrix: ragged initializer");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

GateMatrix
GateMatrix::identity(std::size_t n)
{
    GateMatrix m(n);
    for (std::size_t i = 0; i < n; ++i)
        m[i][i] = 1.0;
    return m;
}

void
GateMatrix::swapRows(std::size_t r1, std::size_t r2)
{
    QPANIC_IF(r1 >= n_ || r2 >= n_, "swapRows: row out of range");
    Cplx *a = (*this)[r1];
    Cplx *b = (*this)[r2];
    for (std::size_t c = 0; c < n_; ++c)
        std::swap(a[c], b[c]);
}

bool
isUnitary(const GateMatrix &u, double tol)
{
    const std::size_t n = u.size();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            Cplx dot = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                dot += std::conj(u[k][i]) * u[k][j];
            const Cplx expect = i == j ? 1.0 : 0.0;
            if (std::abs(dot - expect) > tol)
                return false;
        }
    }
    return true;
}

MixedRadixState::MixedRadixState(std::vector<int> dims)
    : dims_(std::move(dims))
{
    QFATAL_IF(dims_.empty(), "state needs at least one unit");
    std::size_t total = 1;
    strides_.resize(dims_.size());
    for (int u = static_cast<int>(dims_.size()) - 1; u >= 0; --u) {
        QFATAL_IF(dims_[u] < 2, "unit dimension must be >= 2");
        strides_[u] = total;
        total *= static_cast<std::size_t>(dims_[u]);
        QFATAL_IF(total > (1ULL << 26),
                  "state too large to simulate (", total, " amplitudes)");
    }
    amps_.assign(total, Cplx(0.0));
    amps_[0] = 1.0;
}

MixedRadixState
MixedRadixState::product(const std::vector<std::vector<Cplx>> &unit_states)
{
    std::vector<int> dims;
    dims.reserve(unit_states.size());
    for (const auto &s : unit_states)
        dims.push_back(static_cast<int>(s.size()));
    MixedRadixState state(std::move(dims));
    for (std::size_t idx = 0; idx < state.size(); ++idx) {
        Cplx a = 1.0;
        for (int u = 0; u < state.numUnits(); ++u)
            a *= unit_states[u][state.digit(idx, u)];
        state.amps_[idx] = a;
    }
    return state;
}

int
MixedRadixState::digit(std::size_t idx, int unit) const
{
    return static_cast<int>(idx / strides_[unit]) % dims_[unit];
}

std::size_t
MixedRadixState::indexOf(const std::vector<int> &digits) const
{
    QPANIC_IF(digits.size() != dims_.size(), "indexOf: digit count");
    std::size_t idx = 0;
    for (std::size_t u = 0; u < digits.size(); ++u) {
        QPANIC_IF(digits[u] < 0 || digits[u] >= dims_[u],
                  "indexOf: digit out of range");
        idx += static_cast<std::size_t>(digits[u]) * strides_[u];
    }
    return idx;
}

double
MixedRadixState::norm() const
{
    double n2 = 0.0;
    for (const auto &a : amps_)
        n2 += std::norm(a);
    return std::sqrt(n2);
}

std::size_t
MixedRadixState::checkTargets(const std::vector<int> &units,
                              const GateMatrix &u) const
{
    QPANIC_IF(units.empty(), "applyUnitary: no targets");
    std::size_t k = 1;
    for (int t = static_cast<int>(units.size()) - 1; t >= 0; --t) {
        const int unit = units[t];
        QPANIC_IF(unit < 0 || unit >= numUnits(),
                  "applyUnitary: bad unit ", unit);
        k *= static_cast<std::size_t>(dims_[unit]);
    }
    QPANIC_IF(u.size() != k, "applyUnitary: matrix dim ", u.size(),
              " != target space ", k);
    return k;
}

namespace {

/**
 * Odometer over the listed units: bumps @p base by one step of the
 * rightmost digit, carrying with stride subtraction instead of
 * recomputing the base index. @p digit must have one counter per unit.
 */
inline void
bumpOdometer(std::size_t &base, std::vector<int> &digit,
             const std::vector<int> &dims,
             const std::vector<std::size_t> &strides)
{
    for (int t = static_cast<int>(digit.size()) - 1; t >= 0; --t) {
        base += strides[t];
        if (++digit[t] < dims[t])
            return;
        base -= strides[t] * static_cast<std::size_t>(dims[t]);
        digit[t] = 0;
    }
}

} // namespace

void
MixedRadixState::applyUnitary(const std::vector<int> &units,
                              const GateMatrix &u)
{
    const std::size_t k = checkTargets(units, u);

    // Tabulate the gather offset of every local index once: the inner
    // loops then index amps_ directly with no div/mod arithmetic.
    std::vector<std::size_t> offset(k);
    {
        std::vector<int> tdims(units.size()), tdigit(units.size(), 0);
        std::vector<std::size_t> tstr(units.size());
        for (std::size_t t = 0; t < units.size(); ++t) {
            tdims[t] = dims_[units[t]];
            tstr[t] = strides_[units[t]];
        }
        std::size_t off = 0;
        for (std::size_t li = 0; li < k; ++li) {
            offset[li] = off;
            bumpOdometer(off, tdigit, tdims, tstr);
        }
    }

    // Complement units enumerate the untouched subspace.
    std::vector<int> rest_dims;
    std::vector<std::size_t> rest_str;
    {
        std::vector<bool> used(dims_.size(), false);
        for (int unit : units)
            used[unit] = true;
        for (std::size_t w = 0; w < dims_.size(); ++w) {
            if (!used[w]) {
                rest_dims.push_back(dims_[w]);
                rest_str.push_back(strides_[w]);
            }
        }
    }
    const std::size_t blocks = size() / k;
    std::vector<int> rdigit(rest_dims.size(), 0);
    Cplx *amps = amps_.data();

    if (k == 2) {
        const Cplx m00 = u[0][0], m01 = u[0][1];
        const Cplx m10 = u[1][0], m11 = u[1][1];
        const std::size_t s1 = offset[1];
        std::size_t base = 0;
        for (std::size_t blk = 0; blk < blocks; ++blk) {
            const Cplx a0 = amps[base];
            const Cplx a1 = amps[base + s1];
            amps[base] = m00 * a0 + m01 * a1;
            amps[base + s1] = m10 * a0 + m11 * a1;
            bumpOdometer(base, rdigit, rest_dims, rest_str);
        }
        return;
    }

    if (k == 4) {
        Cplx m[16];
        for (std::size_t r = 0; r < 4; ++r)
            for (std::size_t c = 0; c < 4; ++c)
                m[4 * r + c] = u[r][c];
        const std::size_t s1 = offset[1], s2 = offset[2], s3 = offset[3];
        std::size_t base = 0;
        for (std::size_t blk = 0; blk < blocks; ++blk) {
            const Cplx a0 = amps[base];
            const Cplx a1 = amps[base + s1];
            const Cplx a2 = amps[base + s2];
            const Cplx a3 = amps[base + s3];
            amps[base] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
            amps[base + s1] =
                m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
            amps[base + s2] =
                m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
            amps[base + s3] =
                m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
            bumpOdometer(base, rdigit, rest_dims, rest_str);
        }
        return;
    }

    // General kernel: compress the unitary's nonzero structure once
    // (most physical gate classes are permutations, so row work is
    // O(1) rather than O(k)), then gather / multiply / scatter.
    std::vector<std::size_t> row_begin(k + 1, 0);
    std::vector<std::size_t> nz_col;
    std::vector<Cplx> nz_val;
    nz_col.reserve(k * 2);
    nz_val.reserve(k * 2);
    for (std::size_t row = 0; row < k; ++row) {
        const Cplx *urow = u[row];
        for (std::size_t col = 0; col < k; ++col) {
            if (urow[col] != Cplx(0.0)) {
                nz_col.push_back(col);
                nz_val.push_back(urow[col]);
            }
        }
        row_begin[row + 1] = nz_col.size();
    }

    std::vector<Cplx> in(k);
    std::size_t base = 0;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
        for (std::size_t li = 0; li < k; ++li)
            in[li] = amps[base + offset[li]];
        for (std::size_t row = 0; row < k; ++row) {
            Cplx acc = 0.0;
            for (std::size_t p = row_begin[row]; p < row_begin[row + 1];
                 ++p) {
                acc += nz_val[p] * in[nz_col[p]];
            }
            amps[base + offset[row]] = acc;
        }
        bumpOdometer(base, rdigit, rest_dims, rest_str);
    }
}

void
MixedRadixState::applyUnitaryNaive(const std::vector<int> &units,
                                   const GateMatrix &u)
{
    const std::size_t k = checkTargets(units, u);
    std::vector<std::size_t> local_stride(units.size());
    {
        std::size_t acc = 1;
        for (int t = static_cast<int>(units.size()) - 1; t >= 0; --t) {
            local_stride[t] = acc;
            acc *= static_cast<std::size_t>(dims_[units[t]]);
        }
    }

    std::vector<int> rest;
    for (int w = 0; w < numUnits(); ++w) {
        bool used = false;
        for (int unit : units)
            used |= (unit == w);
        if (!used)
            rest.push_back(w);
    }

    std::vector<Cplx> in(k), out(k);
    std::vector<int> rest_digit(rest.size(), 0);
    bool more = true;
    while (more) {
        std::size_t base = 0;
        for (std::size_t r = 0; r < rest.size(); ++r)
            base += static_cast<std::size_t>(rest_digit[r]) *
                    strides_[rest[r]];

        // Gather, multiply, scatter -- recomputing each gather index
        // from scratch with div/mod (the pre-optimization behaviour).
        for (std::size_t li = 0; li < k; ++li) {
            std::size_t idx = base;
            std::size_t tmp = li;
            for (std::size_t t = 0; t < units.size(); ++t) {
                const std::size_t digit = tmp / local_stride[t];
                tmp %= local_stride[t];
                idx += digit * strides_[units[t]];
            }
            in[li] = amps_[idx];
        }
        for (std::size_t row = 0; row < k; ++row) {
            Cplx acc = 0.0;
            for (std::size_t col = 0; col < k; ++col) {
                if (u[row][col] != Cplx(0.0))
                    acc += u[row][col] * in[col];
            }
            out[row] = acc;
        }
        for (std::size_t li = 0; li < k; ++li) {
            std::size_t idx = base;
            std::size_t tmp = li;
            for (std::size_t t = 0; t < units.size(); ++t) {
                const std::size_t digit = tmp / local_stride[t];
                tmp %= local_stride[t];
                idx += digit * strides_[units[t]];
            }
            amps_[idx] = out[li];
        }

        // Advance the complement counter; an empty complement means a
        // single block, so the loop simply terminates.
        more = false;
        for (int r = static_cast<int>(rest.size()) - 1; r >= 0; --r) {
            if (++rest_digit[r] < dims_[rest[r]]) {
                more = true;
                break;
            }
            rest_digit[r] = 0;
        }
    }
}

double
MixedRadixState::overlap(const MixedRadixState &a, const MixedRadixState &b)
{
    QPANIC_IF(a.size() != b.size(), "overlap: shape mismatch");
    Cplx dot = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        dot += std::conj(a.amps_[i]) * b.amps_[i];
    return std::norm(dot);
}

} // namespace qompress
