/**
 * @file
 * Functional verification: replay a compiled mixed-radix circuit on
 * the statevector simulator and compare against the logical circuit.
 */

#ifndef QOMPRESS_SIM_EQUIVALENCE_HH
#define QOMPRESS_SIM_EQUIVALENCE_HH

#include <cstdint>
#include <string>

#include "compiler/compiled_circuit.hh"
#include "ir/circuit.hh"

namespace qompress {

/** Outcome of an equivalence check. */
struct EquivalenceReport
{
    bool ok = false;
    /** Largest amplitude deviation observed across all trials. */
    double maxError = 0.0;
    /** Human-readable failure description (empty on success). */
    std::string message;
};

/**
 * Check that @p compiled implements @p logical.
 *
 * Runs @p trials random product-state inputs (plus the all-zeros basis
 * state) through both the logical circuit (qubit statevector) and the
 * compiled circuit (mixed-radix statevector with the paper's ququart
 * encoding), decoding the final state through the compiled circuit's
 * final layout. Amplitudes must agree within @p tol.
 *
 * Simulation cost is exponential in the number of active units; keep
 * logical circuits at or below ~10 qubits.
 */
EquivalenceReport checkEquivalence(const Circuit &logical,
                                   const CompiledCircuit &compiled,
                                   int trials = 2,
                                   std::uint64_t seed = 42,
                                   double tol = 1e-9);

} // namespace qompress

#endif // QOMPRESS_SIM_EQUIVALENCE_HH
