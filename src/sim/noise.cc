#include "sim/noise.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"

namespace qompress {

namespace {

/** One decoherence hazard: @p count qubits exposed for @p dt at the
 *  coherence time @p t1. */
struct Hazard
{
    int count;
    double survival; // per-qubit survival probability for this window
};

/**
 * Per-unit occupancy timeline -> hazard windows. Kept deliberately
 * separate from metrics.cc (different decomposition of the same
 * physics) so the Monte Carlo cross-checks the analytic path.
 */
std::vector<Hazard>
collectHazards(const CompiledCircuit &compiled, const GateLibrary &lib)
{
    struct Change
    {
        double time;
        UnitId unit;
        int occ;
    };
    const Layout &init = compiled.initialLayout();
    const int num_units = init.numUnits();
    std::vector<std::vector<Change>> per_unit(num_units);
    for (UnitId u = 0; u < num_units; ++u)
        per_unit[u].push_back({0.0, u, init.unitOccupancy(u)});
    for (const auto &g : compiled.gates()) {
        if (g.cls == PhysGateClass::Encode &&
            !ExpandedGraph::sameUnit(g.slots[0], g.slots[1])) {
            per_unit[slotUnit(g.slots[0])].push_back(
                {g.start, slotUnit(g.slots[0]), 2});
            per_unit[slotUnit(g.slots[1])].push_back(
                {g.start, slotUnit(g.slots[1]), 0});
        } else if (g.cls == PhysGateClass::Decode) {
            per_unit[slotUnit(g.slots[0])].push_back(
                {g.end(), slotUnit(g.slots[0]), 1});
            per_unit[slotUnit(g.slots[1])].push_back(
                {g.end(), slotUnit(g.slots[1]), 1});
        }
    }

    const double total = compiled.totalDuration();
    std::vector<Hazard> hazards;
    for (UnitId u = 0; u < num_units; ++u) {
        auto &changes = per_unit[u];
        std::sort(changes.begin(), changes.end(),
                  [](const Change &a, const Change &b) {
                      return a.time < b.time;
                  });
        for (std::size_t i = 0; i < changes.size(); ++i) {
            const double t0 = std::min(changes[i].time, total);
            const double t1 = i + 1 < changes.size()
                ? std::min(changes[i + 1].time, total) : total;
            if (t1 <= t0 || changes[i].occ == 0)
                continue;
            const double coherence = changes[i].occ == 2
                ? lib.t1Ququart() : lib.t1Qubit();
            hazards.push_back(
                {changes[i].occ, std::exp(-(t1 - t0) / coherence)});
        }
    }
    return hazards;
}

} // namespace

NoiseSimResult
sampleEps(const CompiledCircuit &compiled, const GateLibrary &lib,
          const NoiseSimOptions &opts)
{
    QFATAL_IF(opts.trials < 1, "need at least one trial");
    // Gate fidelities must have been filled in by the scheduler.
    for (const auto &g : compiled.gates()) {
        QFATAL_IF(g.fidelity <= 0.0 || g.duration <= 0.0,
                  "sampleEps requires a scheduled circuit");
    }
    const auto hazards = collectHazards(compiled, lib);

    Rng rng(opts.seed);
    int successes = 0;
    for (int trial = 0; trial < opts.trials; ++trial) {
        bool ok = true;
        for (const auto &g : compiled.gates()) {
            if (rng.nextDouble() >= g.fidelity) {
                ok = false;
                break;
            }
        }
        if (ok) {
            for (const auto &h : hazards) {
                for (int k = 0; k < h.count && ok; ++k)
                    ok = rng.nextDouble() < h.survival;
                if (!ok)
                    break;
            }
        }
        successes += ok ? 1 : 0;
    }

    NoiseSimResult res;
    res.trials = opts.trials;
    res.empiricalEps =
        static_cast<double>(successes) / opts.trials;
    res.standardError = std::sqrt(
        std::max(res.empiricalEps * (1.0 - res.empiricalEps),
                 1.0 / opts.trials) /
        opts.trials);
    return res;
}

} // namespace qompress
