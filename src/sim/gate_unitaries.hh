/**
 * @file
 * Unitary matrices for logical gates and for every physical gate class
 * in the Qompress gate set, under the paper's encoding (ququart digit
 * d encodes the qubit pair (d >> 1, d & 1); bare qubits live in levels
 * 0 and 1).
 */

#ifndef QOMPRESS_SIM_GATE_UNITARIES_HH
#define QOMPRESS_SIM_GATE_UNITARIES_HH

#include <vector>

#include "compiler/compiled_circuit.hh"
#include "ir/gate.hh"
#include "sim/statevector.hh"

namespace qompress {

/** 2x2 unitary of a 1-qubit logical gate. */
GateMatrix gate1q(GateType t, double param = 0.0);

/** Unitary of a logical gate over its operands' qubit spaces
 *  (2^arity); supports every GateType including CCX and CZ. */
GateMatrix logicalGateUnitary(const Gate &g);

/**
 * Unitary of a physical gate over the product space of its units.
 *
 * @param dims simulated dimension (2 or 4) of each unit, in
 *        PhysGate::units() order;
 * @param enc  whether each unit holds two logical qubits *before* the
 *        gate executes (from a layout replay).
 *
 * Levels outside the logical subspace (level >= 2 of a bare unit) act
 * as identity, completing every operator to a true unitary. Initial
 * same-unit Encode gates are identity (the encoding is reflected in
 * state preparation).
 */
GateMatrix physGateUnitary(const PhysGate &g, const std::vector<int> &dims,
                            const std::vector<bool> &enc);

} // namespace qompress

#endif // QOMPRESS_SIM_GATE_UNITARIES_HH
