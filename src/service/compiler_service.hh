/**
 * @file
 * The request/response front end of the toolchain.
 *
 * Everything below this layer is a library of free functions and
 * per-strategy calls that each caller wires up by hand; CompilerService
 * packages them behind one stable, session-oriented API a high-traffic
 * deployment can sit behind:
 *
 *  - CompileRequest: circuit (explicit or by registry family name) +
 *    topology + strategy name + CompilerConfig + GateLibrary, all by
 *    value so requests are self-contained and content-addressable.
 *  - compileSync() / submit() / submitBatch(): synchronous and
 *    future-based asynchronous entry points over the shared ThreadPool.
 *  - An artifact memo cache: an LRU keyed by canonical content
 *    fingerprints (circuit x topology x library x config x strategy)
 *    returning shared immutable CompileResults, with hit/miss/eviction
 *    counters and a capacity knob. Identical requests -- the dominant
 *    pattern in evaluation grids, which re-compile the same
 *    circuit x topology x strategy cells over and over -- are served
 *    without recompiling.
 *  - A template tier next to it: a second LRU keyed by the STRUCTURAL
 *    circuit fingerprint (parameter values canonicalized out; see
 *    ir/fingerprint.hh) holding CompiledTemplates (compiler/rebind.hh).
 *    A request that misses the exact tier but matches a template --
 *    same structure, different rotation angles, the shape of every
 *    parameterized sweep -- is served by the O(gates) rebind pass
 *    instead of a full compile, with its own hit/miss/eviction
 *    counters. CompileRequest::fullCompile opts a request out.
 *  - A disk tier (ServiceOptions::storePath, off by default): an
 *    ArtifactStore append-only log holding serialized CompileResults
 *    under the same content keys. Misses that both in-memory tiers
 *    fall through read the disk before compiling; freshly produced
 *    artifacts are written behind. Because compiles are deterministic,
 *    a restarted (or neighboring) service pointed at the same store
 *    starts warm: tier lookup order is memo -> template -> disk ->
 *    compile.
 *  - A circuit breaker in front of the disk tier: after
 *    storeErrorThreshold CONSECUTIVE store I/O failures the tier goes
 *    `degraded` -- disk probes and write-behind appends are skipped
 *    (counted as degradedSkips) while the memory tiers and the
 *    compiler keep serving every request. After storeCooldownMs one
 *    request half-opens the breaker with a cheap header probe;
 *    success closes it again (counted as a recovery), failure re-arms
 *    the cooldown. A failing disk therefore costs at most
 *    threshold + one-probe-per-cooldown syscalls, never an error
 *    surfaced to callers: the store is a cache, losing it degrades
 *    latency, not correctness.
 *  - A context pool: reusable CompileContexts keyed by the
 *    topology/library/config fingerprint, so distance fields warmed by
 *    one request survive into the next (across requests, not just
 *    within one compile as before).
 *
 * Invariant: a service compile is bit-identical to a direct
 * CompressionStrategy::compile of the same inputs, at every thread
 * count and cache configuration. This follows from two properties the
 * lower layers already pin: compiles are deterministic functions of
 * their inputs (so a memoized artifact equals a fresh compile), and
 * distance-field caching never changes what a compile emits (so a
 * pooled, pre-warmed context equals a cold one). tests/test_service.cc
 * asserts the composition.
 *
 * Thread-safety: all public methods are safe to call concurrently.
 * Compiles run outside the service lock; each gets a private
 * CompileContext from the pool (contexts are single-writer).
 */

#ifndef QOMPRESS_SERVICE_COMPILER_SERVICE_HH
#define QOMPRESS_SERVICE_COMPILER_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include <chrono>

#include "arch/device.hh"
#include "common/thread_pool.hh"
#include "compiler/pipeline.hh"
#include "compiler/rebind.hh"
#include "ir/serialize.hh"
#include "service/artifact_store.hh"
#include "strategies/strategy.hh"

namespace qompress {

/** Health of the service's disk tier (the breaker's public face). */
enum class DiskTierState
{
    Off,      ///< no store configured
    Ok,       ///< breaker closed; disk probes and writes flow
    Degraded, ///< breaker open; disk skipped until a probe succeeds
};

/** "off" | "ok" | "degraded" (for /metrics and /healthz). */
const char *diskTierStateName(DiskTierState state);

/** @name Component fingerprints
 * Content hashes of the non-circuit compile inputs (the circuit hash
 * is ir/fingerprint.hh's circuitFingerprint). Two values are equal
 * exactly when the components are compile-equivalent. @{ */

/** Name, unit count, and the sorted weighted edge list. */
std::uint64_t topologyFingerprint(const Topology &topo);

/** Every per-class duration and fidelity plus both T1 times. */
std::uint64_t libraryFingerprint(const GateLibrary &lib);

/**
 * Every CompilerConfig field EXCEPT threads: compile results are
 * lane-count invariant (pinned by test_threads and bench_hotpaths
 * --check), so requests differing only in lane count share artifacts
 * and contexts.
 */
std::uint64_t configFingerprint(const CompilerConfig &cfg);
/** @} */

/**
 * One self-contained compile request.
 *
 * The circuit is either explicit (@ref circuit) or named by registry
 * family + size (resolved via circuits/registry.hh). Topology and
 * library travel by value: the service keys its caches on content, so
 * callers need not keep request inputs alive, and mutating a
 * GateLibrary between requests can never poison a cached artifact.
 */
struct CompileRequest
{
    Topology topology;
    std::string strategy = "eqm";
    GateLibrary library;
    CompilerConfig config;

    /** Explicit program; when unset, family/size pick a registry
     *  circuit. */
    std::optional<Circuit> circuit;
    std::string family; ///< registry family name (see circuits/registry.hh)
    int size = 0;       ///< registry qubit budget

    /** Compile against a REGISTERED device instead of the request's
     *  own topology/calibration: when non-empty, the service swaps in
     *  the named device's topology and current calibration (FatalError
     *  for an unknown name) and ignores @ref topology. The artifact
     *  key is derived from the resolved content, so requests by name
     *  and by equal explicit content share cache entries. */
    std::string device;

    /** Bypass the template tier for this request: neither serve a
     *  rebind nor extract a template from the result. The exact
     *  memo tier still applies. (Rebinds are bit-identical to full
     *  compiles, so this is a measurement/debugging knob, not a
     *  correctness one.) */
    bool fullCompile = false;

    /** Request for an explicit circuit. */
    static CompileRequest forCircuit(Circuit c, Topology topo,
                                     std::string strategy,
                                     CompilerConfig cfg = {},
                                     GateLibrary lib = {});

    /** Request for a registry circuit ("bv", "qaoa_random", ...). */
    static CompileRequest forFamily(std::string family, int size,
                                    Topology topo, std::string strategy,
                                    CompilerConfig cfg = {},
                                    GateLibrary lib = {});

    /** Request against a registered device by name (topology and
     *  calibration resolve at compile time; see @ref device). */
    static CompileRequest forDevice(Circuit c, std::string device,
                                    std::string strategy,
                                    CompilerConfig cfg = {},
                                    GateLibrary lib = {});

    /** The circuit this request compiles (registry lookup may throw
     *  FatalError on an unknown family). */
    Circuit resolveCircuit() const;
};

/** Shared immutable compiled artifact. */
using CompileArtifact = std::shared_ptr<const CompileResult>;

/**
 * Future-based handle to one submitted request.
 *
 * Copyable (shared future). get() blocks until the compile finishes
 * and either returns the artifact or rethrows the compile's exception
 * (FatalError for circuits a strategy cannot fit, unknown strategy or
 * family names, ...). Handles become ready no later than the owning
 * service's destruction.
 */
class CompileHandle
{
  public:
    CompileHandle() = default;

    /** Blocks; the artifact or the compile's exception. */
    CompileArtifact get() const;

    bool valid() const { return fut_.valid(); }

  private:
    friend class CompilerService;
    explicit CompileHandle(std::shared_future<CompileArtifact> fut)
        : fut_(std::move(fut))
    {
    }

    std::shared_future<CompileArtifact> fut_;
};

/** Service construction knobs. */
struct ServiceOptions
{
    /** Artifact memo LRU capacity in entries; 0 disables memoization
     *  (every request compiles). */
    std::size_t cacheCapacity = 256;

    /** Template-tier LRU capacity in entries; 0 disables the tier
     *  (no rebinds, no template extraction). Independent of
     *  cacheCapacity: templates cover exact-tier NEAR-misses. */
    std::size_t templateCacheCapacity = 128;

    /** Max idle CompileContexts kept warm across requests; 0 disables
     *  pooling (every compile builds a cold context). */
    std::size_t contextPoolCapacity = 8;

    /**
     * Memo LRU budget in *serialized* bytes; 0 means unlimited (the
     * entry cap alone governs). When set, every resident artifact is
     * charged its encodeCompileResult size and the LRU additionally
     * evicts -- counted separately as sizeEvictions -- until under
     * budget. An artifact larger than the whole budget is simply not
     * retained.
     */
    std::size_t cacheBytesCapacity = 0;

    /** Path of the artifact-store log backing the disk tier; empty
     *  (the default) leaves the tier off and behavior byte-identical
     *  to a storeless service. */
    std::string storePath;

    /** Durability policy for the store's appends (and the interval
     *  knob Interval syncs on); see artifact_store.hh. */
    FsyncPolicy storeFsync = FsyncPolicy::Never;
    std::uint64_t storeFsyncIntervalBytes = 1 << 20;

    /** Consecutive store I/O failures that open the disk-tier
     *  breaker (degraded mode). 0 disables the breaker: every error
     *  is counted but the disk keeps being probed. */
    std::uint64_t storeErrorThreshold = 3;

    /** How long a degraded disk tier rests before one request
     *  half-opens the breaker with a health probe. */
    double storeCooldownMs = 1000.0;

    /**
     * Default lanes for submit()/submitBatch() request fan-out, in the
     * CompilerConfig::threads convention (0 = process default, 1 =
     * serial/inline, N = exactly N lanes). Results are identical at
     * every setting; only latency changes.
     */
    int threads = 0;
};

/** Observable service state (one consistent snapshot). */
struct ServiceStats
{
    std::uint64_t requests = 0;    ///< total requests processed
    std::uint64_t hits = 0;        ///< artifacts served from the memo cache
    std::uint64_t misses = 0;      ///< requests that ran a full compile
    std::uint64_t coalesced = 0;   ///< waited on an identical in-flight compile
    std::uint64_t evictions = 0;   ///< LRU entries dropped over capacity
    std::size_t cacheSize = 0;     ///< resident memo entries
    std::size_t cacheCapacity = 0; ///< current capacity knob

    /** @name Template tier
     * Requests partition as requests == hits + templateHits + diskHits
     * + misses + coalesced: a template hit is an exact-tier miss
     * served by rebind instead of a compile. templateMisses counts
     * eligible requests (parameterized circuit, tier enabled, not
     * fullCompile) that found no template and fell through to the disk
     * tier or a full compile -- a subset of diskHits + misses, kept
     * separate so sweep warm-up cost is visible. @{ */
    std::uint64_t templateHits = 0;      ///< served by parameter rebind
    std::uint64_t templateMisses = 0;    ///< eligible but no template yet
    std::uint64_t templateEvictions = 0; ///< template LRU drops
    std::size_t templateSize = 0;        ///< resident templates
    std::size_t templateCapacity = 0;    ///< current tier capacity
    /** @} */

    /** @name Byte-size accounting (cacheBytesCapacity)
     * bytesInUse is the serialized size of every resident memo entry.
     * Charging requires encoding, so it is lazy: with the byte budget
     * unset AND the disk tier off, entries are charged 0 and bytesInUse
     * stays 0 -- the hot path never pays an encode it does not need. @{ */
    std::uint64_t sizeEvictions = 0; ///< LRU drops under byte pressure
    std::size_t bytesInUse = 0;      ///< charged bytes currently resident
    std::size_t bytesCapacity = 0;   ///< current byte-budget knob
    /** @} */

    /** @name Disk tier (storePath)
     * diskHits joins the request partition above; diskWrites counts
     * write-behind appends. storeRecords/storeBytes mirror the
     * ArtifactStore (0 when the tier is off). @{ */
    std::uint64_t diskHits = 0;     ///< served by decode from the store
    std::uint64_t diskWrites = 0;   ///< artifacts appended to the store
    std::size_t storeRecords = 0;   ///< live records in the log
    std::uint64_t storeBytes = 0;   ///< log size on disk (incl. dead)
    /** @} */

    /** @name Disk-tier circuit breaker
     * storeErrors counts every store I/O failure (loads, writes, and
     * half-open probes). The breaker opens after storeErrorThreshold
     * CONSECUTIVE errors: tierState reads Degraded, disk work is
     * skipped (degradedSkips), and after the cooldown a header probe
     * decides between recovery (recoveries, tierState back to Ok) and
     * another cooldown. Requests themselves never fail on a store
     * error -- they fall through to the compile path. @{ */
    std::uint64_t storeErrors = 0;   ///< store I/O failures observed
    std::uint64_t degradedSkips = 0; ///< disk probes/writes skipped
    std::uint64_t recoveries = 0;    ///< degraded -> ok transitions
    DiskTierState tierState = DiskTierState::Off;
    /** @} */
    std::uint64_t contextsCreated = 0; ///< cold CompileContext builds
    std::uint64_t contextsReused = 0;  ///< warm contexts served from the pool
    std::size_t pooledContexts = 0;    ///< idle contexts currently pooled
};

/** See the file comment. */
class CompilerService
{
  public:
    explicit CompilerService(ServiceOptions opts = {});
    ~CompilerService();

    CompilerService(const CompilerService &) = delete;
    CompilerService &operator=(const CompilerService &) = delete;

    /**
     * Compile now, on the calling thread. Returns the shared artifact
     * (possibly memoized). Throws what the compile throws.
     */
    CompileArtifact compileSync(const CompileRequest &req);

    /**
     * Enqueue one request on the service's lanes; returns immediately
     * (when lanes exist) with a handle. Requests submitted from a pool
     * worker, or when the service is serial, run inline and return a
     * ready handle.
     */
    CompileHandle submit(CompileRequest req);

    /**
     * Submit a batch; handles are returned in request order.
     *
     * @param threads per-batch lane override: -1 (default) inherits
     *        ServiceOptions::threads, otherwise the
     *        CompilerConfig::threads convention. Handle results are
     *        bit-identical at every setting.
     */
    std::vector<CompileHandle> submitBatch(std::vector<CompileRequest> reqs,
                                           int threads = -1);

    ServiceStats stats() const;

    /**
     * Block until every submitted-but-unfinished request has run
     * (successfully or not). Submissions arriving during the wait
     * extend it; callers that want a terminal drain (the qompressd
     * shutdown path) must stop submitting first. The destructor calls
     * this, so drain() is the reusable half of the "handles are ready
     * by destruction" guarantee.
     */
    void drain();

    /** Drop all memoized artifacts and pooled contexts (counters are
     *  retained; the disk store, if any, is deliberately untouched --
     *  it is the tier that exists to survive exactly this). */
    void clearCache();

    /** Change the memo capacity; shrinking evicts LRU entries now. */
    void setCacheCapacity(std::size_t capacity);

    /** @name The device registry (see arch/device.hh)
     * Shared mutable state with its own lock: registering devices and
     * installing calibrations is safe concurrently with compiles.
     * Invalidation needs no cache surgery -- a new calibration changes
     * the config fingerprint of subsequent by-name requests, so stale
     * artifacts simply stop being addressable (and age out by LRU). @{ */
    DeviceRegistry &devices() { return devices_; }
    const DeviceRegistry &devices() const { return devices_; }
    /** @} */

  private:
    /** Memo-cache key: one 64-bit content fingerprint per component
     *  plus the verbatim strategy name. Equality compares the
     *  fingerprints, not the underlying content — a wrong-artifact
     *  serve therefore requires a single-component 64-bit collision
     *  (see the Fingerprinter doc for why that trade is accepted).
     *  The same key is the on-disk record identity (ir/serialize.hh),
     *  so the memo and disk tiers can never disagree. */
    using RequestKey = ArtifactKey;
    using RequestKeyHash = ArtifactKeyHash;

    /**
     * One pooled compile context. Owns copies of the inputs the
     * CompileContext references (CostModel and ExpandedGraph hold
     * pointers into them), so a pooled context is self-contained and
     * can outlive every request that used it.
     */
    struct PooledContext
    {
        std::uint64_t fp; ///< topo ^ lib ^ cfg pricing fingerprint
        Topology topo;
        GateLibrary lib;
        CompilerConfig cfg;
        std::optional<CompileContext> ctx;

        PooledContext(std::uint64_t fp_, const Topology &t,
                      const GateLibrary &l, const CompilerConfig &c)
            : fp(fp_), topo(t), lib(l), cfg(c)
        {
            ctx.emplace(topo, lib, cfg);
        }
    };

    /** Memo entry. @ref bytes is the serialized-size charge (0 when
     *  charging is off; see ServiceStats::bytesInUse). */
    struct LruEntry
    {
        RequestKey key;
        CompileArtifact artifact;
        std::size_t bytes = 0;
    };

    /** Template-tier entry. The key reuses RequestKey with the
     *  `circuit` field holding the STRUCTURAL fingerprint instead of
     *  the exact one -- same non-circuit components, same hash. */
    using TemplatePtr = std::shared_ptr<const CompiledTemplate>;
    using TemplateEntry = std::pair<RequestKey, TemplatePtr>;

    CompileArtifact compileImpl(const CompileRequest &req);
    CompileArtifact compileUncached(const CompileRequest &req,
                                    const Circuit &circuit,
                                    std::uint64_t ctx_fp);

    /** @name Disk-tier circuit breaker (state under mu_)
     * admitDiskRead() gates the miss path's store probe: true when the
     * breaker is closed, or when a cooldown-expired half-open probe
     * (run outside mu_, single-flight via probeInFlight_) just
     * succeeded. admitDiskWrite() gates write-behind: degraded skips,
     * recovery is the read path's job. note*() feed the error/success
     * edges. @{ */
    bool admitDiskRead();
    bool admitDiskWrite();
    void noteStoreErrorLocked();
    void noteStoreSuccessLocked();
    /** @} */
    CompileHandle submitOn(ThreadPool *pool, CompileRequest req);
    std::unique_ptr<PooledContext> acquireContext(const CompileRequest &req,
                                                  std::uint64_t ctx_fp);
    void releaseContext(std::unique_ptr<PooledContext> pc);
    void evictOverCapacityLocked();

    /** Lanes -> pool: nullptr means run inline. Pools are created on
     *  demand, owned by the service, and joined at destruction (which
     *  is what guarantees every handle is ready by then). */
    ThreadPool *poolFor(int threads);

    ServiceOptions opts_;

    /** Named backends; internally locked, never touched under mu_. */
    DeviceRegistry devices_;

    mutable std::mutex mu_; ///< guards cache, context pool, counters
    std::list<LruEntry> lru_; ///< front = most recently used
    std::unordered_map<RequestKey, std::list<LruEntry>::iterator,
                       RequestKeyHash>
        index_;
    std::unordered_map<RequestKey, std::shared_future<CompileArtifact>,
                       RequestKeyHash>
        inflight_;
    std::vector<std::unique_ptr<PooledContext>> idle_;

    std::list<TemplateEntry> templateLru_; ///< front = most recently used
    std::unordered_map<RequestKey, std::list<TemplateEntry>::iterator,
                       RequestKeyHash>
        templateIndex_;

    /** The disk tier; null when ServiceOptions::storePath is empty.
     *  The store has its own internal mutex and is only ever called
     *  outside mu_ (loads/puts) or strictly after acquiring mu_
     *  (stats), so the lock order is always mu_ -> store. */
    std::unique_ptr<ArtifactStore> store_;

    std::uint64_t requests_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t templateHits_ = 0;
    std::uint64_t templateMisses_ = 0;
    std::uint64_t templateEvictions_ = 0;
    std::uint64_t diskHits_ = 0;
    std::uint64_t diskWrites_ = 0;
    std::uint64_t storeErrors_ = 0;
    std::uint64_t degradedSkips_ = 0;
    std::uint64_t recoveries_ = 0;
    std::uint64_t consecutiveStoreErrors_ = 0;
    bool tierDegraded_ = false;
    bool probeInFlight_ = false; ///< one half-open probe at a time
    std::chrono::steady_clock::time_point degradedSince_{};
    std::uint64_t sizeEvictions_ = 0;
    std::size_t bytesInUse_ = 0;
    std::uint64_t contextsCreated_ = 0;
    std::uint64_t contextsReused_ = 0;

    std::mutex poolMu_; ///< guards pools_ (never held with mu_)
    std::map<int, std::unique_ptr<ThreadPool>> pools_;

    /** Enqueued-but-unfinished submits. Tasks may run on the process
     *  global pool (which the service does not own), so the
     *  destructor blocks until this drains — that is what makes the
     *  "handles are ready by destruction" guarantee hold for every
     *  pool a task can land on. */
    std::mutex pendingMu_;
    std::condition_variable pendingCv_;
    std::size_t pending_ = 0;
};

} // namespace qompress

#endif // QOMPRESS_SERVICE_COMPILER_SERVICE_HH
