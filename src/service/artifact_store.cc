#include "service/artifact_store.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hh"

namespace qompress {

namespace {

/** "QST1": identifies a file as an artifact log. */
constexpr std::uint32_t kStoreMagic = 0x31545351u;

/** "QREC": leads every frame; a cheap resync sentinel for recovery. */
constexpr std::uint32_t kFrameMagic = 0x43455251u;

/** Frame prefix: magic + body length + body CRC. */
constexpr std::uint64_t kFrameHeaderBytes = 16;

/** Store prefix: magic + artifact format version. */
constexpr std::uint64_t kStoreHeaderBytes = 8;

bool
preadExact(int fd, void *buf, std::size_t n, std::uint64_t off)
{
    auto *p = static_cast<std::uint8_t *>(buf);
    while (n > 0) {
        const ssize_t got = ::pread(fd, p, n, static_cast<off_t>(off));
        if (got <= 0)
            return false;
        p += got;
        off += static_cast<std::uint64_t>(got);
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

bool
pwriteExact(int fd, const void *buf, std::size_t n, std::uint64_t off)
{
    const auto *p = static_cast<const std::uint8_t *>(buf);
    while (n > 0) {
        const ssize_t put = ::pwrite(fd, p, n, static_cast<off_t>(off));
        if (put <= 0)
            return false;
        p += put;
        off += static_cast<std::uint64_t>(put);
        n -= static_cast<std::size_t>(put);
    }
    return true;
}

std::vector<std::uint8_t>
frameFor(const ArtifactKey &key, const std::vector<std::uint8_t> &blob)
{
    ByteWriter body;
    encodeArtifactKey(body, key);
    body.bytes(blob.data(), blob.size());

    ByteWriter frame;
    frame.u32(kFrameMagic);
    frame.u64(body.size());
    frame.u32(crc32(body.data().data(), body.size()));
    frame.bytes(body.data().data(), body.size());
    return frame.take();
}

} // namespace

ArtifactStore::ArtifactStore(std::string path) : path_(std::move(path))
{
    std::lock_guard<std::mutex> lk(mu_);
    openAndRecoverLocked();
}

ArtifactStore::~ArtifactStore()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ArtifactStore::openAndRecoverLocked()
{
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    QFATAL_IF(fd_ < 0, "cannot open artifact store '", path_,
              "': ", std::strerror(errno));

    struct stat st;
    QFATAL_IF(::fstat(fd_, &st) != 0, "cannot stat artifact store '",
              path_, "': ", std::strerror(errno));
    const auto file_size = static_cast<std::uint64_t>(st.st_size);

    // Header check. Anything but (our magic, our format version) means
    // the file is foreign or written by a different build: start cold.
    bool fresh = true;
    if (file_size >= kStoreHeaderBytes) {
        std::uint8_t hdr[kStoreHeaderBytes];
        if (preadExact(fd_, hdr, sizeof hdr, 0)) {
            ByteReader r(hdr, sizeof hdr, "artifact store header");
            fresh = r.u32() != kStoreMagic ||
                    r.u32() != kArtifactFormatVersion;
        }
    }
    if (fresh) {
        ByteWriter hdr;
        hdr.u32(kStoreMagic);
        hdr.u32(kArtifactFormatVersion);
        QFATAL_IF(::ftruncate(fd_, 0) != 0 ||
                      !pwriteExact(fd_, hdr.data().data(), hdr.size(), 0),
                  "cannot initialize artifact store '", path_,
                  "': ", std::strerror(errno));
        end_ = kStoreHeaderBytes;
        return;
    }

    // Scan frames until the end of the file or the first bad frame.
    // Every check failure below is "torn tail": keep what came before.
    std::uint64_t off = kStoreHeaderBytes;
    while (off + kFrameHeaderBytes <= file_size) {
        std::uint8_t fh[kFrameHeaderBytes];
        if (!preadExact(fd_, fh, sizeof fh, off))
            break;
        ByteReader r(fh, sizeof fh, "artifact store frame");
        if (r.u32() != kFrameMagic)
            break;
        const std::uint64_t body_len = r.u64();
        const std::uint32_t declared_crc = r.u32();
        if (body_len > file_size - off - kFrameHeaderBytes)
            break;
        std::vector<std::uint8_t> body(body_len);
        if (!preadExact(fd_, body.data(), body.size(),
                        off + kFrameHeaderBytes))
            break;
        if (crc32(body.data(), body.size()) != declared_crc)
            break;

        ArtifactKey key;
        try {
            ByteReader br(body.data(), body.size(),
                          "artifact store frame body");
            key = decodeArtifactKey(br);
            Slot slot;
            slot.offset = off + kFrameHeaderBytes +
                          (body.size() - br.remaining());
            slot.size = br.remaining();
            if (!index_.emplace(key, slot).second) {
                index_[key] = slot; // later frame wins
                ++dead_;
            }
        } catch (const FatalError &) {
            break; // CRC passed but the body is still malformed
        }
        off += kFrameHeaderBytes + body_len;
    }

    end_ = off;
    if (end_ < file_size) {
        // Drop the torn tail so future appends start on a clean
        // frame boundary. Failure here is not fatal: the scan already
        // ignores everything past end_, appends just go further out.
        if (::ftruncate(fd_, static_cast<off_t>(end_)) != 0)
            end_ = file_size;
    }
}

bool
ArtifactStore::put(const ArtifactKey &key,
                   const std::vector<std::uint8_t> &blob)
{
    const std::vector<std::uint8_t> frame = frameFor(key, blob);
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0)
        return false;
    if (!pwriteExact(fd_, frame.data(), frame.size(), end_)) {
        // A partial append leaves a torn tail; recovery handles it,
        // but trim now so this process's next put starts clean.
        (void)::ftruncate(fd_, static_cast<off_t>(end_));
        return false;
    }
    Slot slot;
    slot.size = blob.size();
    slot.offset = end_ + frame.size() - blob.size();
    if (!index_.emplace(key, slot).second) {
        index_[key] = slot;
        ++dead_;
    }
    end_ += frame.size();
    return true;
}

bool
ArtifactStore::readBlobLocked(const Slot &slot,
                              std::vector<std::uint8_t> &out)
{
    out.resize(slot.size);
    return preadExact(fd_, out.data(), out.size(), slot.offset);
}

bool
ArtifactStore::load(const ArtifactKey &key, std::vector<std::uint8_t> &out)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0)
        return false;
    const auto it = index_.find(key);
    if (it == index_.end())
        return false;
    return readBlobLocked(it->second, out);
}

bool
ArtifactStore::contains(const ArtifactKey &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    return index_.count(key) > 0;
}

std::size_t
ArtifactStore::records()
{
    std::lock_guard<std::mutex> lk(mu_);
    return index_.size();
}

std::size_t
ArtifactStore::deadRecords()
{
    std::lock_guard<std::mutex> lk(mu_);
    return dead_;
}

std::uint64_t
ArtifactStore::bytesOnDisk()
{
    std::lock_guard<std::mutex> lk(mu_);
    return end_;
}

void
ArtifactStore::compact()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0 || dead_ == 0)
        return;

    const std::string tmp_path = path_ + ".compact.tmp";
    const int tmp =
        ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
    QFATAL_IF(tmp < 0, "cannot create '", tmp_path,
              "' for compaction: ", std::strerror(errno));

    ByteWriter hdr;
    hdr.u32(kStoreMagic);
    hdr.u32(kArtifactFormatVersion);
    std::uint64_t out_off = 0;
    bool ok = pwriteExact(tmp, hdr.data().data(), hdr.size(), out_off);
    out_off += hdr.size();

    std::unordered_map<ArtifactKey, Slot, ArtifactKeyHash> new_index;
    std::vector<std::uint8_t> blob;
    for (const auto &entry : index_) {
        if (!ok)
            break;
        ok = readBlobLocked(entry.second, blob);
        if (!ok)
            break;
        const std::vector<std::uint8_t> frame = frameFor(entry.first, blob);
        ok = pwriteExact(tmp, frame.data(), frame.size(), out_off);
        Slot slot;
        slot.size = blob.size();
        slot.offset = out_off + frame.size() - blob.size();
        new_index.emplace(entry.first, slot);
        out_off += frame.size();
    }

    if (!ok) {
        ::close(tmp);
        ::unlink(tmp_path.c_str());
        QFATAL("compaction of artifact store '", path_,
               "' failed: ", std::strerror(errno));
    }
    if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
        ::close(tmp);
        ::unlink(tmp_path.c_str());
        QFATAL("cannot rename '", tmp_path, "' over '", path_,
               "': ", std::strerror(errno));
    }
    ::close(fd_);
    fd_ = tmp;
    end_ = out_off;
    dead_ = 0;
    index_ = std::move(new_index);
}

} // namespace qompress
