#include "service/artifact_store.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hh"
#include "common/faultpoint.hh"

namespace qompress {

namespace {

/** "QST1": identifies a file as an artifact log. */
constexpr std::uint32_t kStoreMagic = 0x31545351u;

/** "QREC": leads every frame; a cheap resync sentinel for recovery. */
constexpr std::uint32_t kFrameMagic = 0x43455251u;

/** Frame prefix: magic + body length + body CRC. */
constexpr std::uint64_t kFrameHeaderBytes = 16;

/** Store prefix: magic + artifact format version. */
constexpr std::uint64_t kStoreHeaderBytes = 8;

// Every syscall below consults its named fault point first, so the
// fault-matrix tests can fail any call at any index. A fired Eintr is
// delivered as -1/EINTR (the retry loops absorb it); a fired ShortIo
// on a transfer clips the byte count (still a successful syscall); a
// fired ShortIo on a non-transfer call degrades to a plain failure.

int
xopen(const char *path, int flags, mode_t mode)
{
    for (;;) {
        const FaultFire f = QFAULT_POINT("store.open");
        if (f.fired && f.kind == FaultKind::Eintr)
            continue;
        if (f.fired) {
            errno = f.err;
            return -1;
        }
        const int fd = ::open(path, flags, mode);
        if (fd < 0 && errno == EINTR)
            continue;
        return fd;
    }
}

int
xfstat(int fd, struct stat *st)
{
    const FaultFire f = QFAULT_POINT("store.fstat");
    if (f.fired) {
        errno = f.err;
        return -1;
    }
    return ::fstat(fd, st);
}

ssize_t
xpread(int fd, void *buf, std::size_t n, std::uint64_t off)
{
    const FaultFire f = QFAULT_POINT("store.pread");
    if (f.fired) {
        if (f.kind != FaultKind::ShortIo) {
            errno = f.err;
            return -1;
        }
        n = static_cast<std::size_t>(
            std::min<std::uint64_t>(n, f.bytes));
    }
    return ::pread(fd, buf, n, static_cast<off_t>(off));
}

ssize_t
xpwrite(int fd, const void *buf, std::size_t n, std::uint64_t off)
{
    const FaultFire f = QFAULT_POINT("store.pwrite");
    if (f.fired) {
        if (f.kind != FaultKind::ShortIo) {
            errno = f.err;
            return -1;
        }
        n = static_cast<std::size_t>(
            std::min<std::uint64_t>(n, f.bytes));
    }
    return ::pwrite(fd, buf, n, static_cast<off_t>(off));
}

int
xfsync(int fd)
{
    for (;;) {
        const FaultFire f = QFAULT_POINT("store.fsync");
        if (f.fired && f.kind == FaultKind::Eintr)
            continue;
        if (f.fired) {
            errno = f.err;
            return -1;
        }
        const int rc = ::fsync(fd);
        if (rc != 0 && errno == EINTR)
            continue;
        return rc;
    }
}

int
xftruncate(int fd, std::uint64_t len)
{
    const FaultFire f = QFAULT_POINT("store.ftruncate");
    if (f.fired) {
        errno = f.err;
        return -1;
    }
    return ::ftruncate(fd, static_cast<off_t>(len));
}

int
xrename(const char *from, const char *to)
{
    const FaultFire f = QFAULT_POINT("store.rename");
    if (f.fired) {
        errno = f.err;
        return -1;
    }
    return ::rename(from, to);
}

int
xunlink(const char *path)
{
    const FaultFire f = QFAULT_POINT("store.unlink");
    if (f.fired) {
        errno = f.err;
        return -1;
    }
    return ::unlink(path);
}

int
xclose(int fd)
{
    const FaultFire f = QFAULT_POINT("store.close");
    if (f.fired) {
        errno = f.err;
        return -1;
    }
    return ::close(fd);
}

bool
preadExact(int fd, void *buf, std::size_t n, std::uint64_t off)
{
    auto *p = static_cast<std::uint8_t *>(buf);
    while (n > 0) {
        const ssize_t got = xpread(fd, p, n, off);
        if (got < 0 && errno == EINTR)
            continue; // interrupted, not failed: retry the same range
        if (got <= 0)
            return false;
        p += got;
        off += static_cast<std::uint64_t>(got);
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

bool
pwriteExact(int fd, const void *buf, std::size_t n, std::uint64_t off)
{
    const auto *p = static_cast<const std::uint8_t *>(buf);
    while (n > 0) {
        const ssize_t put = xpwrite(fd, p, n, off);
        if (put < 0 && errno == EINTR)
            continue; // interrupted, not failed: retry the same range
        if (put <= 0)
            return false;
        p += put;
        off += static_cast<std::uint64_t>(put);
        n -= static_cast<std::size_t>(put);
    }
    return true;
}

std::vector<std::uint8_t>
frameFor(const ArtifactKey &key, const std::vector<std::uint8_t> &blob)
{
    ByteWriter body;
    encodeArtifactKey(body, key);
    body.bytes(blob.data(), blob.size());

    ByteWriter frame;
    frame.u32(kFrameMagic);
    frame.u64(body.size());
    frame.u32(crc32(body.data().data(), body.size()));
    frame.bytes(body.data().data(), body.size());
    return frame.take();
}

/** Directory holding @p path ("." for a bare filename). */
std::string
dirOf(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    return slash == 0 ? "/" : path.substr(0, slash);
}

} // namespace

FsyncPolicy
fsyncPolicyFromString(const std::string &name)
{
    if (name == "never")
        return FsyncPolicy::Never;
    if (name == "interval")
        return FsyncPolicy::Interval;
    if (name == "always")
        return FsyncPolicy::Always;
    QFATAL("unknown fsync policy '", name,
           "' (expected never|interval|always)");
}

const char *
fsyncPolicyName(FsyncPolicy policy)
{
    switch (policy) {
    case FsyncPolicy::Never:
        return "never";
    case FsyncPolicy::Interval:
        return "interval";
    case FsyncPolicy::Always:
        return "always";
    }
    return "?";
}

ArtifactStore::ArtifactStore(std::string path, StoreOptions opts)
    : path_(std::move(path)), opts_(opts)
{
    std::lock_guard<std::mutex> lk(mu_);
    openAndRecoverLocked();
}

ArtifactStore::~ArtifactStore()
{
    if (fd_ >= 0)
        (void)xclose(fd_); // nothing sane to do with a close failure
}

void
ArtifactStore::openAndRecoverLocked()
{
    // A crashed prior compaction may have left its temp file behind;
    // it is garbage by definition (rename never happened), so clear it
    // before it can shadow a future compact(). ENOENT is the norm.
    (void)xunlink((path_ + ".compact.tmp").c_str());

    fd_ = xopen(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    QFATAL_IF(fd_ < 0, "cannot open artifact store '", path_,
              "': ", std::strerror(errno));

    struct stat st;
    QFATAL_IF(xfstat(fd_, &st) != 0, "cannot stat artifact store '",
              path_, "': ", std::strerror(errno));
    const auto file_size = static_cast<std::uint64_t>(st.st_size);

    // Header check. Anything but (our magic, our format version) means
    // the file is foreign or written by a different build: start cold.
    bool fresh = true;
    if (file_size >= kStoreHeaderBytes) {
        std::uint8_t hdr[kStoreHeaderBytes];
        if (preadExact(fd_, hdr, sizeof hdr, 0)) {
            ByteReader r(hdr, sizeof hdr, "artifact store header");
            fresh = r.u32() != kStoreMagic ||
                    r.u32() != kArtifactFormatVersion;
        }
    }
    if (fresh) {
        ByteWriter hdr;
        hdr.u32(kStoreMagic);
        hdr.u32(kArtifactFormatVersion);
        QFATAL_IF(xftruncate(fd_, 0) != 0 ||
                      !pwriteExact(fd_, hdr.data().data(), hdr.size(), 0),
                  "cannot initialize artifact store '", path_,
                  "': ", std::strerror(errno));
        end_ = kStoreHeaderBytes;
        return;
    }

    // Scan frames until the end of the file or the first bad frame.
    // Every check failure below is "torn tail": keep what came before.
    std::uint64_t off = kStoreHeaderBytes;
    while (off + kFrameHeaderBytes <= file_size) {
        std::uint8_t fh[kFrameHeaderBytes];
        if (!preadExact(fd_, fh, sizeof fh, off))
            break;
        ByteReader r(fh, sizeof fh, "artifact store frame");
        if (r.u32() != kFrameMagic)
            break;
        const std::uint64_t body_len = r.u64();
        const std::uint32_t declared_crc = r.u32();
        if (body_len > file_size - off - kFrameHeaderBytes)
            break;
        std::vector<std::uint8_t> body(body_len);
        if (!preadExact(fd_, body.data(), body.size(),
                        off + kFrameHeaderBytes))
            break;
        if (crc32(body.data(), body.size()) != declared_crc)
            break;

        ArtifactKey key;
        try {
            ByteReader br(body.data(), body.size(),
                          "artifact store frame body");
            key = decodeArtifactKey(br);
            Slot slot;
            slot.offset = off + kFrameHeaderBytes +
                          (body.size() - br.remaining());
            slot.size = br.remaining();
            if (!index_.emplace(key, slot).second) {
                index_[key] = slot; // later frame wins
                ++dead_;
            }
        } catch (const FatalError &) {
            break; // CRC passed but the body is still malformed
        }
        off += kFrameHeaderBytes + body_len;
    }

    end_ = off;
    if (end_ < file_size) {
        // Drop the torn tail so future appends start on a clean
        // frame boundary. Failure here is not fatal: the scan already
        // ignores everything past end_, appends just go further out.
        if (xftruncate(fd_, end_) != 0)
            end_ = file_size;
    }
}

bool
ArtifactStore::syncAppendLocked(std::uint64_t appended)
{
    if (opts_.fsync == FsyncPolicy::Never)
        return true;
    unsynced_ += appended;
    if (opts_.fsync == FsyncPolicy::Interval &&
        unsynced_ < opts_.fsyncIntervalBytes)
        return true;
    ++fsyncs_;
    if (xfsync(fd_) != 0)
        return false;
    unsynced_ = 0;
    return true;
}

bool
ArtifactStore::put(const ArtifactKey &key,
                   const std::vector<std::uint8_t> &blob)
{
    const std::vector<std::uint8_t> frame = frameFor(key, blob);
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0)
        return false;
    if (!pwriteExact(fd_, frame.data(), frame.size(), end_)) {
        // A partial append leaves a torn tail; recovery handles it,
        // but trim now so this process's next put starts clean.
        ++ioErrors_;
        (void)xftruncate(fd_, end_);
        return false;
    }
    if (!syncAppendLocked(frame.size())) {
        // The bytes are written but not durable; report failure (the
        // caller acknowledged nothing) and drop the frame so a false
        // put never leaves a record this process would serve.
        ++ioErrors_;
        (void)xftruncate(fd_, end_);
        return false;
    }
    Slot slot;
    slot.size = blob.size();
    slot.offset = end_ + frame.size() - blob.size();
    if (!index_.emplace(key, slot).second) {
        index_[key] = slot;
        ++dead_;
    }
    end_ += frame.size();
    return true;
}

bool
ArtifactStore::readBlobLocked(const Slot &slot,
                              std::vector<std::uint8_t> &out)
{
    out.resize(slot.size);
    return preadExact(fd_, out.data(), out.size(), slot.offset);
}

StoreStatus
ArtifactStore::loadStatus(const ArtifactKey &key,
                          std::vector<std::uint8_t> &out)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0)
        return StoreStatus::Error;
    const auto it = index_.find(key);
    if (it == index_.end())
        return StoreStatus::Miss;
    if (!readBlobLocked(it->second, out)) {
        ++ioErrors_;
        return StoreStatus::Error;
    }
    return StoreStatus::Ok;
}

bool
ArtifactStore::contains(const ArtifactKey &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    return index_.count(key) > 0;
}

bool
ArtifactStore::probe()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0)
        return false;
    std::uint8_t hdr[kStoreHeaderBytes];
    if (!preadExact(fd_, hdr, sizeof hdr, 0)) {
        ++ioErrors_;
        return false;
    }
    ByteReader r(hdr, sizeof hdr, "artifact store header");
    if (r.u32() != kStoreMagic || r.u32() != kArtifactFormatVersion) {
        ++ioErrors_;
        return false;
    }
    return true;
}

std::size_t
ArtifactStore::records()
{
    std::lock_guard<std::mutex> lk(mu_);
    return index_.size();
}

std::vector<ArtifactKey>
ArtifactStore::keys()
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<ArtifactKey> out;
    out.reserve(index_.size());
    for (const auto &entry : index_)
        out.push_back(entry.first);
    return out;
}

std::size_t
ArtifactStore::deadRecords()
{
    std::lock_guard<std::mutex> lk(mu_);
    return dead_;
}

std::uint64_t
ArtifactStore::bytesOnDisk()
{
    std::lock_guard<std::mutex> lk(mu_);
    return end_;
}

std::uint64_t
ArtifactStore::ioErrors()
{
    std::lock_guard<std::mutex> lk(mu_);
    return ioErrors_;
}

std::uint64_t
ArtifactStore::fsyncs()
{
    std::lock_guard<std::mutex> lk(mu_);
    return fsyncs_;
}

void
ArtifactStore::compact()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0 || dead_ == 0)
        return;

    const std::string tmp_path = path_ + ".compact.tmp";
    const int tmp = xopen(tmp_path.c_str(),
                          O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    QFATAL_IF(tmp < 0, "cannot create '", tmp_path,
              "' for compaction: ", std::strerror(errno));

    ByteWriter hdr;
    hdr.u32(kStoreMagic);
    hdr.u32(kArtifactFormatVersion);
    std::uint64_t out_off = 0;
    bool ok = pwriteExact(tmp, hdr.data().data(), hdr.size(), out_off);
    out_off += hdr.size();

    std::unordered_map<ArtifactKey, Slot, ArtifactKeyHash> new_index;
    std::vector<std::uint8_t> blob;
    for (const auto &entry : index_) {
        if (!ok)
            break;
        ok = readBlobLocked(entry.second, blob);
        if (!ok)
            break;
        const std::vector<std::uint8_t> frame = frameFor(entry.first, blob);
        ok = pwriteExact(tmp, frame.data(), frame.size(), out_off);
        Slot slot;
        slot.size = blob.size();
        slot.offset = out_off + frame.size() - blob.size();
        new_index.emplace(entry.first, slot);
        out_off += frame.size();
    }

    // The rewritten log must be on disk BEFORE the rename: otherwise
    // a crash between rename and writeback could leave the store's
    // only name pointing at an empty (or partial) file.
    if (ok) {
        ++fsyncs_;
        ok = xfsync(tmp) == 0;
    }

    if (!ok) {
        ++ioErrors_;
        (void)xclose(tmp);
        (void)xunlink(tmp_path.c_str());
        QFATAL("compaction of artifact store '", path_,
               "' failed: ", std::strerror(errno));
    }
    if (xrename(tmp_path.c_str(), path_.c_str()) != 0) {
        ++ioErrors_;
        const std::string why = std::strerror(errno);
        (void)xclose(tmp);
        (void)xunlink(tmp_path.c_str());
        QFATAL("cannot rename '", tmp_path, "' over '", path_,
               "': ", why);
    }
    // Make the swap itself durable: the rename lives in the directory,
    // so sync that too. Best-effort -- both the old and the new log
    // are valid stores, so a lost rename only costs the compaction.
    const int dirfd = xopen(dirOf(path_).c_str(),
                            O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
    if (dirfd >= 0) {
        ++fsyncs_;
        if (xfsync(dirfd) != 0)
            ++ioErrors_;
        (void)xclose(dirfd);
    } else {
        ++ioErrors_;
    }
    (void)xclose(fd_);
    fd_ = tmp;
    end_ = out_off;
    unsynced_ = 0;
    dead_ = 0;
    index_ = std::move(new_index);
}

} // namespace qompress
