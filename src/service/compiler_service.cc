#include "service/compiler_service.hh"

#include <algorithm>

#include "circuits/registry.hh"
#include "common/error.hh"
#include "ir/fingerprint.hh"
#include "service/artifact_store.hh"

namespace qompress {

const char *
diskTierStateName(DiskTierState state)
{
    switch (state) {
    case DiskTierState::Off:
        return "off";
    case DiskTierState::Ok:
        return "ok";
    case DiskTierState::Degraded:
        return "degraded";
    }
    return "?";
}

// ------------------------------------------------------------------
// Component fingerprints
// ------------------------------------------------------------------

std::uint64_t
topologyFingerprint(const Topology &topo)
{
    Fingerprinter f;
    f.mixString(topo.name());
    f.mixI32(topo.numUnits());
    // Canonical edge order: the same coupling graph built by a
    // different insertion order must fingerprint identically.
    auto edges = topo.graph().edges();
    std::sort(edges.begin(), edges.end(),
              [](const Graph::EdgeRef &a, const Graph::EdgeRef &b) {
                  return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
    f.mixU64(edges.size());
    for (const auto &e : edges) {
        f.mixI32(e.u);
        f.mixI32(e.v);
        f.mixDouble(e.w);
    }
    return f.value();
}

std::uint64_t
libraryFingerprint(const GateLibrary &lib)
{
    Fingerprinter f;
    const int n = static_cast<int>(PhysGateClass::NumClasses);
    f.mixI32(n);
    for (int c = 0; c < n; ++c) {
        const auto cls = static_cast<PhysGateClass>(c);
        f.mixDouble(lib.duration(cls));
        f.mixDouble(lib.fidelity(cls));
    }
    f.mixDouble(lib.t1Qubit());
    f.mixDouble(lib.t1Ququart());
    return f.value();
}

std::uint64_t
configFingerprint(const CompilerConfig &cfg)
{
    Fingerprinter f;
    f.mixI32(cfg.chargeInitialEnc ? 1 : 0);
    f.mixDouble(cfg.throughQuquartPenalty);
    f.mixDouble(cfg.lookaheadWeight);
    f.mixI32(cfg.useDistanceCache ? 1 : 0);
    f.mixI32(cfg.validate ? 1 : 0);
    // The calibration is priced into every compile, so its content
    // fingerprint is part of the config identity: installing a new
    // calibration changes this value and with it every memo/template/
    // disk key priced against the old record -- the partial-
    // invalidation contract, extended to devices. Null (uncalibrated)
    // mixes a fixed 0 so pre-device keys are preserved.
    f.mixU64(cfg.calibration ? cfg.calibration->fingerprint() : 0);
    // cfg.threads deliberately excluded: results are lane-invariant,
    // so requests differing only in lane count share one artifact.
    return f.value();
}

// ------------------------------------------------------------------
// CompileRequest
// ------------------------------------------------------------------

CompileRequest
CompileRequest::forCircuit(Circuit c, Topology topo, std::string strategy,
                           CompilerConfig cfg, GateLibrary lib)
{
    CompileRequest req{std::move(topo), std::move(strategy),
                       std::move(lib), cfg, std::move(c), "", 0};
    return req;
}

CompileRequest
CompileRequest::forFamily(std::string family, int size, Topology topo,
                          std::string strategy, CompilerConfig cfg,
                          GateLibrary lib)
{
    CompileRequest req{std::move(topo), std::move(strategy),
                       std::move(lib), cfg, std::nullopt,
                       std::move(family), size};
    return req;
}

CompileRequest
CompileRequest::forDevice(Circuit c, std::string device,
                          std::string strategy, CompilerConfig cfg,
                          GateLibrary lib)
{
    // The topology is a placeholder: compileImpl swaps in the
    // registered device's topology (and calibration) before anything
    // reads it. CompileRequest has no unset-topology state because
    // Topology is not default-constructible.
    CompileRequest req{Topology::line(1), std::move(strategy),
                       std::move(lib), cfg, std::move(c), "", 0};
    req.device = std::move(device);
    return req;
}

Circuit
CompileRequest::resolveCircuit() const
{
    if (circuit)
        return *circuit;
    QFATAL_IF(family.empty(),
              "compile request names neither a circuit nor a registry "
              "family");
    return benchmarkFamily(family).make(size);
}

// ------------------------------------------------------------------
// CompileHandle
// ------------------------------------------------------------------

CompileArtifact
CompileHandle::get() const
{
    QPANIC_IF(!fut_.valid(), "get() on an empty CompileHandle");
    return fut_.get();
}

// ------------------------------------------------------------------
// CompilerService
// ------------------------------------------------------------------

CompilerService::CompilerService(ServiceOptions opts)
    : opts_(std::move(opts))
{
    if (!opts_.storePath.empty()) {
        StoreOptions sopts;
        sopts.fsync = opts_.storeFsync;
        sopts.fsyncIntervalBytes = opts_.storeFsyncIntervalBytes;
        store_ = std::make_unique<ArtifactStore>(opts_.storePath, sopts);
    }
}

CompilerService::~CompilerService()
{
    // Submitted tasks capture `this` and may be queued on the process
    // global pool, which outlives the service; block until every one
    // has run before members are torn down. (Service-owned pools_
    // would drain their tasks on join anyway; the global pool is the
    // case this wait exists for.)
    drain();
}

void
CompilerService::drain()
{
    std::unique_lock<std::mutex> lk(pendingMu_);
    pendingCv_.wait(lk, [this] { return pending_ == 0; });
}

CompileArtifact
CompilerService::compileSync(const CompileRequest &req)
{
    return compileImpl(req);
}

CompileHandle
CompilerService::submit(CompileRequest req)
{
    return submitOn(poolFor(-1), std::move(req));
}

std::vector<CompileHandle>
CompilerService::submitBatch(std::vector<CompileRequest> reqs, int threads)
{
    ThreadPool *pool = poolFor(threads);
    std::vector<CompileHandle> handles;
    handles.reserve(reqs.size());
    for (auto &req : reqs)
        handles.push_back(submitOn(pool, std::move(req)));
    return handles;
}

CompileHandle
CompilerService::submitOn(ThreadPool *pool, CompileRequest req)
{
    if (!pool) {
        // Serial (or worker-nested) submission: run now, but still
        // deliver failure through the handle so sync and async callers
        // observe exceptions the same way.
        std::promise<CompileArtifact> prom;
        try {
            prom.set_value(compileImpl(req));
        } catch (...) {
            prom.set_exception(std::current_exception());
        }
        return CompileHandle(prom.get_future().share());
    }
    {
        std::lock_guard<std::mutex> lk(pendingMu_);
        ++pending_;
    }
    auto task = [this, r = std::move(req)]() -> CompileArtifact {
        // Count down whether the compile returns or throws, so the
        // destructor's drain-wait can never hang.
        struct Done
        {
            CompilerService *svc;
            ~Done()
            {
                std::lock_guard<std::mutex> lk(svc->pendingMu_);
                --svc->pending_;
                svc->pendingCv_.notify_all();
            }
        } done{this};
        return compileImpl(r);
    };
    return CompileHandle(pool->submit(std::move(task)).share());
}

ThreadPool *
CompilerService::poolFor(int threads)
{
    int want = threads >= 0 ? threads : opts_.threads;
    if (want <= 0)
        want = ThreadPool::defaultThreadCount();
    // Nested submission (a compile that itself talks to the service)
    // degrades to inline execution, mirroring ThreadPool::forRequest:
    // a worker blocking on the queue it drains would deadlock.
    if (want <= 1 || ThreadPool::onWorkerThread())
        return nullptr;
    if (want == ThreadPool::defaultThreadCount())
        return &ThreadPool::global();
    std::lock_guard<std::mutex> lk(poolMu_);
    auto &slot = pools_[want];
    if (!slot)
        slot = std::make_unique<ThreadPool>(want);
    return slot.get();
}

CompileArtifact
CompilerService::compileImpl(const CompileRequest &req)
{
    // A by-name request resolves against the registry first: the
    // device's topology and CURRENT calibration replace the request's
    // own, then the request proceeds as an ordinary content-addressed
    // compile. Because the calibration is part of configFingerprint,
    // a calibration update naturally re-keys every subsequent request
    // for that device (and only that device). The recursion happens
    // before any counter is touched, so the request still counts once.
    if (!req.device.empty()) {
        Device dev = devices_.get(req.device);
        CompileRequest resolved = req;
        resolved.device.clear();
        resolved.topology = std::move(dev.topology);
        resolved.config.calibration = std::move(dev.calibration);
        return compileImpl(resolved);
    }

    // Resolve the circuit first: the memo key hashes its content.
    std::optional<Circuit> resolved;
    const Circuit *circuit = nullptr;
    if (req.circuit) {
        circuit = &*req.circuit;
    } else {
        resolved.emplace(req.resolveCircuit());
        circuit = &*resolved;
    }

    RequestKey key;
    key.circuit = circuitFingerprint(*circuit);
    key.topo = topologyFingerprint(req.topology);
    key.lib = libraryFingerprint(req.library);
    key.cfg = configFingerprint(req.config);
    key.strategy = req.strategy;
    Fingerprinter cf;
    cf.mixU64(key.topo);
    cf.mixU64(key.lib);
    cf.mixU64(key.cfg);
    const std::uint64_t ctx_fp = cf.value();

    // Template eligibility and the structural key are resolved lazily,
    // on the exact-miss path only: an exact hit (the dominant warm
    // case) must not pay the O(gates) structural walk.
    const bool tier_on =
        opts_.templateCacheCapacity > 0 && !req.fullCompile;
    bool tmpl_eligible = false;
    RequestKey tkey;

    std::promise<CompileArtifact> prom;
    std::shared_future<CompileArtifact> wait_on;
    bool memo = false;
    TemplatePtr tmpl;
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++requests_;
        memo = opts_.cacheCapacity > 0;
        if (memo) {
            auto it = index_.find(key);
            if (it != index_.end()) {
                ++hits_;
                lru_.splice(lru_.begin(), lru_, it->second);
                return it->second->artifact;
            }
            auto jt = inflight_.find(key);
            if (jt != inflight_.end()) {
                // An identical compile is already running; wait for it
                // (outside the lock) instead of compiling twice.
                ++coalesced_;
                wait_on = jt->second;
            }
        }
        if (!wait_on.valid()) {
            // This request will produce the artifact itself -- by
            // rebinding a cached template when one matches the
            // circuit's structure, else by a full compile. Only
            // parameterized circuits enter the tier (for a fixed
            // circuit -- BV, QFT-like structures -- the exact tier
            // already covers every repeat, so the structural walk is
            // skipped entirely).
            tmpl_eligible =
                tier_on &&
                std::any_of(
                    circuit->gates().begin(), circuit->gates().end(),
                    [](const Gate &g) { return gateHasParam(g.type); });
            if (tmpl_eligible) {
                tkey = key;
                tkey.circuit =
                    structuralCircuitFingerprint(*circuit).value;
                auto tt = templateIndex_.find(tkey);
                if (tt != templateIndex_.end()) {
                    ++templateHits_;
                    templateLru_.splice(templateLru_.begin(),
                                        templateLru_, tt->second);
                    tmpl = tt->second->second;
                } else {
                    // Eligible but no template; whether this request
                    // lands as a diskHit or a miss is only knowable
                    // after the disk probe below.
                    ++templateMisses_;
                }
            }
            if (memo)
                inflight_.emplace(key, prom.get_future().share());
        }
    }
    if (wait_on.valid())
        return wait_on.get(); // rethrows the owner's exception

    // Disk tier: probed only after both in-memory tiers miss, and only
    // when the circuit breaker admits it (a degraded store is skipped
    // outright). The loaded blob doubles as the byte-budget charge
    // below (its size IS the serialized size). A corrupt record
    // decodes to FatalError and falls through to a fresh compile --
    // the store is a cache, never an authority. An I/O error does the
    // same, and additionally feeds the breaker.
    CompileArtifact artifact;
    std::vector<std::uint8_t> blob;
    bool from_disk = false;
    if (!tmpl && store_ && admitDiskRead()) {
        const StoreStatus rc = store_->loadStatus(key, blob);
        if (rc != StoreStatus::Miss) {
            // A Miss is an index lookup -- it proves nothing about the
            // disk, so only real reads feed the breaker.
            std::lock_guard<std::mutex> lk(mu_);
            if (rc == StoreStatus::Ok)
                noteStoreSuccessLocked();
            else
                noteStoreErrorLocked();
        }
        if (rc == StoreStatus::Ok) {
            try {
                artifact = std::make_shared<const CompileResult>(
                    decodeCompileResult(blob));
                from_disk = true;
            } catch (const FatalError &) {
                blob.clear();
            }
        } else {
            blob.clear(); // a failed read may have left partial bytes
        }
    }

    try {
        if (from_disk) {
            // Nothing to run; the decode above already produced it.
        } else if (tmpl) {
            // O(gates) path: substitute this instance's angles into
            // the template's compiled structure and re-price. The
            // template key covers the config fingerprint, so the
            // template was built under this same calibration.
            artifact = std::make_shared<const CompileResult>(
                rebindTemplate(*tmpl, *circuit, req.library,
                               req.config.calibration.get()));
        } else {
            artifact = compileUncached(req, *circuit, ctx_fp);
        }
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        // Keep the request partition exact for failures too: a throw
        // out of rebind stays under its templateHit; anything else
        // counts as the miss it (unsuccessfully) compiled for.
        if (!tmpl)
            ++misses_;
        if (memo) {
            prom.set_exception(std::current_exception());
            inflight_.erase(key);
        }
        throw;
    }

    // Serialize once, outside the lock, and only when somebody needs
    // the bytes: the store (write-behind) or the byte budget (charge).
    // With both features off the encode is skipped so the memo-only
    // hot path stays exactly as cheap as before this tier existed.
    const bool charge = opts_.cacheBytesCapacity > 0;
    if (!from_disk && (store_ || charge))
        blob = encodeCompileResult(*artifact);
    bool wrote = false;
    if (store_ && !from_disk && !store_->contains(key) && admitDiskWrite()) {
        wrote = store_->put(key, blob);
        std::lock_guard<std::mutex> lk(mu_);
        if (wrote)
            noteStoreSuccessLocked();
        else
            noteStoreErrorLocked();
    }
    const std::size_t bytes = blob.size();

    // Extract a template from a successful full compile OR disk load
    // of an eligible request (outside the lock: the binding walk is
    // O(gates)). Disk-loaded artifacts planting templates is what lets
    // a restarted service serve parameter sweeps by rebind again.
    TemplatePtr fresh;
    if (tmpl_eligible && !tmpl)
        fresh = std::make_shared<const CompiledTemplate>(
            makeTemplate(artifact, *circuit));

    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!tmpl) {
            if (from_disk)
                ++diskHits_;
            else
                ++misses_;
        }
        if (wrote)
            ++diskWrites_;
        if (fresh && !templateIndex_.count(tkey)) {
            // Keep-first on a racing extraction: templates of the same
            // structure are interchangeable, so the loser is dropped.
            templateLru_.emplace_front(tkey, std::move(fresh));
            templateIndex_[tkey] = templateLru_.begin();
            while (templateLru_.size() > opts_.templateCacheCapacity) {
                templateIndex_.erase(templateLru_.back().first);
                templateLru_.pop_back();
                ++templateEvictions_;
            }
        }
        if (memo) {
            lru_.push_front(LruEntry{key, artifact, bytes});
            bytesInUse_ += bytes;
            index_[key] = lru_.begin();
            evictOverCapacityLocked();
            prom.set_value(artifact);
            inflight_.erase(key);
        }
    }
    return artifact;
}

CompileArtifact
CompilerService::compileUncached(const CompileRequest &req,
                                 const Circuit &circuit,
                                 std::uint64_t ctx_fp)
{
    // makeStrategy first: an unknown name must fail before a context
    // is built for it.
    const auto strategy = makeStrategy(req.strategy);
    auto pc = acquireContext(req, ctx_fp);
    // The compile runs against the pooled copies (the context holds
    // pointers into them) but the *caller's* config, so per-request
    // knobs the context does not price (threads) are honored. The two
    // configs agree on every pricing field by construction of ctx_fp.
    CompileResult res = strategy->compile(circuit, pc->topo, pc->lib,
                                          req.config, &*pc->ctx);
    // Pool the context (with its warmed distance fields) only on
    // success; a compile that threw may leave it mid-mutation.
    releaseContext(std::move(pc));
    return std::make_shared<const CompileResult>(std::move(res));
}

std::unique_ptr<CompilerService::PooledContext>
CompilerService::acquireContext(const CompileRequest &req,
                                std::uint64_t ctx_fp)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (auto it = idle_.rbegin(); it != idle_.rend(); ++it) {
            // Matching is by the 64-bit pricing fingerprint; the
            // structural conjuncts below catch the topology-shape
            // slice of a collision cheaply but do NOT cover library
            // or config content — those rest on the fingerprint alone
            // (see the Fingerprinter doc for the accepted trade).
            if ((*it)->fp == ctx_fp &&
                (*it)->topo.numUnits() == req.topology.numUnits() &&
                (*it)->topo.name() == req.topology.name()) {
                auto pc = std::move(*it);
                idle_.erase(std::next(it).base());
                ++contextsReused_;
                return pc;
            }
        }
        ++contextsCreated_;
    }
    // Build outside the lock: graph expansion is the expensive part.
    return std::make_unique<PooledContext>(ctx_fp, req.topology,
                                           req.library, req.config);
}

void
CompilerService::releaseContext(std::unique_ptr<PooledContext> pc)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (opts_.contextPoolCapacity == 0)
        return; // pooling disabled: drop (context dies here)
    idle_.push_back(std::move(pc));
    while (idle_.size() > opts_.contextPoolCapacity)
        idle_.erase(idle_.begin()); // oldest idle context retires
}

void
CompilerService::evictOverCapacityLocked()
{
    while (lru_.size() > opts_.cacheCapacity) {
        bytesInUse_ -= lru_.back().bytes;
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
    }
    if (opts_.cacheBytesCapacity == 0)
        return;
    // Byte pressure evicts in the same LRU order but under its own
    // counter. The !empty() guard makes an artifact larger than the
    // whole budget simply not resident, rather than an infinite loop.
    while (bytesInUse_ > opts_.cacheBytesCapacity && !lru_.empty()) {
        bytesInUse_ -= lru_.back().bytes;
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++sizeEvictions_;
    }
}

bool
CompilerService::admitDiskRead()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!tierDegraded_)
            return true;
        const double down_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - degradedSince_)
                .count();
        if (down_ms < opts_.storeCooldownMs || probeInFlight_) {
            ++degradedSkips_;
            return false;
        }
        // Cooldown elapsed: this request becomes the single half-open
        // probe. Everyone else keeps skipping until it resolves.
        probeInFlight_ = true;
    }
    const bool ok = store_->probe();
    std::lock_guard<std::mutex> lk(mu_);
    probeInFlight_ = false;
    if (ok) {
        noteStoreSuccessLocked(); // re-closes the breaker
        return true;
    }
    noteStoreErrorLocked(); // refreshes degradedSince_
    ++degradedSkips_;
    return false;
}

bool
CompilerService::admitDiskWrite()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!tierDegraded_)
        return true;
    // Writes never probe: write-behind is optional, so recovery is the
    // read path's job and a broken disk costs misses one syscall, not
    // one syscall per would-be persist.
    ++degradedSkips_;
    return false;
}

void
CompilerService::noteStoreErrorLocked()
{
    ++storeErrors_;
    ++consecutiveStoreErrors_;
    if (opts_.storeErrorThreshold == 0)
        return; // breaker disabled: count errors but never degrade
    if (consecutiveStoreErrors_ >= opts_.storeErrorThreshold) {
        // Entering degraded, or refreshing the cooldown clock after a
        // failed half-open probe -- either way the tier stays dark for
        // another full cooldown from *now*.
        tierDegraded_ = true;
        degradedSince_ = std::chrono::steady_clock::now();
    }
}

void
CompilerService::noteStoreSuccessLocked()
{
    consecutiveStoreErrors_ = 0;
    if (tierDegraded_) {
        tierDegraded_ = false;
        ++recoveries_;
    }
}

ServiceStats
CompilerService::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServiceStats s;
    s.requests = requests_;
    s.hits = hits_;
    s.misses = misses_;
    s.coalesced = coalesced_;
    s.evictions = evictions_;
    s.cacheSize = lru_.size();
    s.cacheCapacity = opts_.cacheCapacity;
    s.contextsCreated = contextsCreated_;
    s.contextsReused = contextsReused_;
    s.pooledContexts = idle_.size();
    s.templateHits = templateHits_;
    s.templateMisses = templateMisses_;
    s.templateEvictions = templateEvictions_;
    s.templateSize = templateLru_.size();
    s.templateCapacity = opts_.templateCacheCapacity;
    s.sizeEvictions = sizeEvictions_;
    s.bytesInUse = bytesInUse_;
    s.bytesCapacity = opts_.cacheBytesCapacity;
    s.diskHits = diskHits_;
    s.diskWrites = diskWrites_;
    s.storeErrors = storeErrors_;
    s.degradedSkips = degradedSkips_;
    s.recoveries = recoveries_;
    s.tierState = !store_ ? DiskTierState::Off
                          : (tierDegraded_ ? DiskTierState::Degraded
                                           : DiskTierState::Ok);
    if (store_) {
        s.storeRecords = store_->records();
        s.storeBytes = store_->bytesOnDisk();
    }
    return s;
}

void
CompilerService::clearCache()
{
    std::lock_guard<std::mutex> lk(mu_);
    lru_.clear();
    index_.clear();
    idle_.clear();
    templateLru_.clear();
    templateIndex_.clear();
    bytesInUse_ = 0;
    // store_ deliberately untouched: the disk tier exists to survive
    // in-memory cache drops and process restarts.
    // In-flight compiles keep their local promises; entries left in
    // inflight_ are owned by running compiles and expire when they
    // finish. Artifacts already handed out stay alive through their
    // shared_ptrs.
}

void
CompilerService::setCacheCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lk(mu_);
    opts_.cacheCapacity = capacity;
    evictOverCapacityLocked();
}

} // namespace qompress
