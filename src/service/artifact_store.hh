/**
 * @file
 * Disk tier for compiled artifacts: an append-only log + in-memory
 * index.
 *
 * File layout:
 *
 *   [u32 store magic "QST1"] [u32 artifact format version]
 *   [frame] [frame] ...
 *
 * where each frame is
 *
 *   [u32 frame magic "QREC"] [u64 body length] [u32 CRC-32 of body]
 *   [body = encoded ArtifactKey + encoded CompileResult record]
 *
 * Appends are write-behind from the service's miss path, so the log is
 * allowed to end in a torn frame (a crash mid-append). open() scans
 * from the front, indexes every intact frame, stops at the first bad
 * one (short, wrong magic, oversized length, checksum mismatch) and
 * truncates the file back to the intact prefix so subsequent appends
 * stay clean. A store-header version mismatch truncates the whole
 * file: artifacts are caches of deterministic compiles, so starting
 * cold is always safe, and guessing at a foreign layout never is.
 *
 * Re-putting a key appends a new frame and repoints the index (last
 * frame wins on recovery too); the superseded frame stays on disk as a
 * dead record until compact() rewrites the log with only live frames.
 *
 * All methods are thread-safe behind one mutex; reads use pread so
 * concurrent loads never race on a shared file position.
 */

#ifndef QOMPRESS_SERVICE_ARTIFACT_STORE_HH
#define QOMPRESS_SERVICE_ARTIFACT_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/serialize.hh"

namespace qompress {

class ArtifactStore
{
  public:
    /**
     * Open (creating if absent) the log at @p path and index its
     * intact prefix. Throws FatalError if the file cannot be opened
     * or created -- that is user configuration, not corruption.
     */
    explicit ArtifactStore(std::string path);
    ~ArtifactStore();

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * Append @p blob (an encodeCompileResult record) under @p key.
     * Returns false -- without throwing -- if the disk write fails;
     * persistence is best-effort and must never take the service down.
     */
    bool put(const ArtifactKey &key, const std::vector<std::uint8_t> &blob);

    /**
     * Fetch the blob stored under @p key into @p out. Returns false if
     * the key is absent or the read fails.
     */
    bool load(const ArtifactKey &key, std::vector<std::uint8_t> &out);

    bool contains(const ArtifactKey &key);

    /** Live (indexed) records. */
    std::size_t records();

    /** Superseded frames still occupying disk until compact(). */
    std::size_t deadRecords();

    /** Current log size in bytes (header + all frames, dead included). */
    std::uint64_t bytesOnDisk();

    /**
     * Rewrite the log with only live frames (temp file + rename, so a
     * crash mid-compact leaves either the old or the new log, never a
     * mix). Throws FatalError if the rewrite fails.
     */
    void compact();

    const std::string &path() const { return path_; }

  private:
    struct Slot
    {
        std::uint64_t offset; ///< of the blob within the file
        std::uint64_t size;   ///< blob byte count
    };

    void openAndRecoverLocked();
    bool readBlobLocked(const Slot &slot, std::vector<std::uint8_t> &out);

    std::string path_;
    std::mutex mu_;
    int fd_ = -1;
    std::uint64_t end_ = 0; ///< append offset == intact byte count
    std::size_t dead_ = 0;
    std::unordered_map<ArtifactKey, Slot, ArtifactKeyHash> index_;
};

} // namespace qompress

#endif // QOMPRESS_SERVICE_ARTIFACT_STORE_HH
