/**
 * @file
 * Disk tier for compiled artifacts: an append-only log + in-memory
 * index.
 *
 * File layout:
 *
 *   [u32 store magic "QST1"] [u32 artifact format version]
 *   [frame] [frame] ...
 *
 * where each frame is
 *
 *   [u32 frame magic "QREC"] [u64 body length] [u32 CRC-32 of body]
 *   [body = encoded ArtifactKey + encoded CompileResult record]
 *
 * Appends are write-behind from the service's miss path, so the log is
 * allowed to end in a torn frame (a crash mid-append). open() scans
 * from the front, indexes every intact frame, stops at the first bad
 * one (short, wrong magic, oversized length, checksum mismatch) and
 * truncates the file back to the intact prefix so subsequent appends
 * stay clean. A store-header version mismatch truncates the whole
 * file: artifacts are caches of deterministic compiles, so starting
 * cold is always safe, and guessing at a foreign layout never is.
 *
 * Re-putting a key appends a new frame and repoints the index (last
 * frame wins on recovery too); the superseded frame stays on disk as a
 * dead record until compact() rewrites the log with only live frames.
 *
 * Failure seams: every syscall the store makes (open, fstat, pread,
 * pwrite, fsync, ftruncate, rename, unlink, close) goes through a
 * named fault point (common/faultpoint.hh, "store.<syscall>"), so the
 * fault-matrix tests can fail any call at any index and prove the
 * outcome is always a false return or a FatalError -- never a
 * PanicError, a crash, or a corrupted log. EINTR from pread/pwrite/
 * open/fsync is retried transparently; it is an interruption, not a
 * failure. put() and load() report failures by return value and also
 * bump ioErrors() -- the signal the service's disk-tier circuit
 * breaker trips on.
 *
 * Durability: by default (FsyncPolicy::Never) appends are not synced
 * -- the log is a cache and the torn-tail recovery above bounds the
 * loss to un-synced frames. FsyncPolicy::Always fsyncs after every
 * append; Interval fsyncs once at least fsyncIntervalBytes have been
 * appended since the last sync. compact() always fsyncs the rewritten
 * temp file before rename and the directory after it, so the swap
 * itself cannot be lost to a crash, and open() removes a stale temp
 * file a crashed prior compaction may have left behind.
 *
 * All methods are thread-safe behind one mutex; reads use pread so
 * concurrent loads never race on a shared file position.
 */

#ifndef QOMPRESS_SERVICE_ARTIFACT_STORE_HH
#define QOMPRESS_SERVICE_ARTIFACT_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/serialize.hh"

namespace qompress {

/** When the store fsyncs its log (see the file comment). */
enum class FsyncPolicy
{
    Never,    ///< never sync appends (recovery bounds the loss)
    Interval, ///< sync once per fsyncIntervalBytes of appends
    Always,   ///< sync after every append (acknowledged == durable)
};

/** Parse "never" | "interval" | "always"; throws FatalError else. */
FsyncPolicy fsyncPolicyFromString(const std::string &name);

/** The inverse (for logs and /metrics). */
const char *fsyncPolicyName(FsyncPolicy policy);

/** Store construction knobs. */
struct StoreOptions
{
    FsyncPolicy fsync = FsyncPolicy::Never;

    /** Appended bytes between syncs under FsyncPolicy::Interval. */
    std::uint64_t fsyncIntervalBytes = 1 << 20;
};

/** Tri-state load outcome: a Miss proves nothing about disk health,
 *  an Error does -- the circuit breaker needs the distinction. */
enum class StoreStatus
{
    Ok,    ///< key present, blob read
    Miss,  ///< key absent (no I/O performed)
    Error, ///< key present but the read failed (disk trouble)
};

class ArtifactStore
{
  public:
    /**
     * Open (creating if absent) the log at @p path and index its
     * intact prefix. Throws FatalError if the file cannot be opened
     * or created -- that is user configuration, not corruption.
     */
    explicit ArtifactStore(std::string path, StoreOptions opts = {});
    ~ArtifactStore();

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * Append @p blob (an encodeCompileResult record) under @p key.
     * Returns false -- without throwing -- if the disk write (or a
     * required fsync) fails; persistence is best-effort and must
     * never take the service down.
     */
    bool put(const ArtifactKey &key, const std::vector<std::uint8_t> &blob);

    /**
     * Fetch the blob stored under @p key into @p out, reporting
     * whether a false outcome was an absence or an I/O failure.
     */
    StoreStatus loadStatus(const ArtifactKey &key,
                           std::vector<std::uint8_t> &out);

    /** loadStatus collapsed to a bool (absence == failure). */
    bool load(const ArtifactKey &key, std::vector<std::uint8_t> &out)
    {
        return loadStatus(key, out) == StoreStatus::Ok;
    }

    bool contains(const ArtifactKey &key);

    /**
     * Cheap health probe: re-read the 8-byte store header and verify
     * the magic. True means the disk answered correctly just now --
     * the signal a degraded tier re-closes its breaker on.
     */
    bool probe();

    /** Live (indexed) records. */
    std::size_t records();

    /** Every live key (unspecified order); lets integrity sweeps load
     *  and decode the whole store without private index access. */
    std::vector<ArtifactKey> keys();

    /** Superseded frames still occupying disk until compact(). */
    std::size_t deadRecords();

    /** Current log size in bytes (header + all frames, dead included). */
    std::uint64_t bytesOnDisk();

    /** Syscall-level failures observed by put/load/probe (the breaker
     *  input; monotonic). */
    std::uint64_t ioErrors();

    /** fsync calls issued so far (policy + compact barriers). */
    std::uint64_t fsyncs();

    /**
     * Rewrite the log with only live frames (temp file + fsync +
     * rename + directory fsync, so a crash mid-compact leaves either
     * the old or the new log, never a mix, and the swap is durable).
     * Throws FatalError if the rewrite fails.
     */
    void compact();

    const std::string &path() const { return path_; }

  private:
    struct Slot
    {
        std::uint64_t offset; ///< of the blob within the file
        std::uint64_t size;   ///< blob byte count
    };

    void openAndRecoverLocked();
    bool readBlobLocked(const Slot &slot, std::vector<std::uint8_t> &out);
    bool syncAppendLocked(std::uint64_t appended);

    std::string path_;
    StoreOptions opts_;
    std::mutex mu_;
    int fd_ = -1;
    std::uint64_t end_ = 0; ///< append offset == intact byte count
    std::uint64_t unsynced_ = 0; ///< appended since the last fsync
    std::size_t dead_ = 0;
    std::uint64_t ioErrors_ = 0;
    std::uint64_t fsyncs_ = 0;
    std::unordered_map<ArtifactKey, Slot, ArtifactKeyHash> index_;
};

} // namespace qompress

#endif // QOMPRESS_SERVICE_ARTIFACT_STORE_HH
