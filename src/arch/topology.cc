#include "arch/topology.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/error.hh"
#include "common/strings.hh"
#include "graph/algorithms.hh"

namespace qompress {

namespace {

/** Caps for untrusted coupling-list input (fromText/named). */
constexpr int kMaxTopologyUnits = 16384;
constexpr std::size_t kMaxTopologyEdges = 262144;

/** Strict digit-only unit index with the cap applied. */
UnitId
topoUnit(const std::string &tok, const std::string &what, int lineno)
{
    QFATAL_IF(tok.empty() || tok.size() > 6 ||
                  tok.find_first_not_of("0123456789") != std::string::npos,
              "topology ", what, " line ", lineno,
              ": malformed unit index '", tok, "'");
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    QFATAL_IF(v >= kMaxTopologyUnits, "topology ", what, " line ", lineno,
              ": unit ", v, " exceeds the cap of ", kMaxTopologyUnits - 1);
    return static_cast<UnitId>(v);
}

/** Strict digit-only generator parameter ("ring:N", "grid:RxC"...). */
int
namedParam(const std::string &tok, const std::string &name)
{
    QFATAL_IF(tok.empty() || tok.size() > 6 ||
                  tok.find_first_not_of("0123456789") != std::string::npos,
              "malformed parameter '", tok, "' in topology name '", name,
              "'");
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    QFATAL_IF(v < 1 || v > kMaxTopologyUnits, "parameter ", v,
              " in topology name '", name, "' out of range [1, ",
              kMaxTopologyUnits, "]");
    return static_cast<int>(v);
}

} // namespace

Topology::Topology(Graph coupling, std::string name)
    : coupling_(std::move(coupling)), name_(std::move(name))
{
    QFATAL_IF(coupling_.numVertices() < 1, "topology needs >= 1 unit");
}

UnitId
Topology::centerUnit() const
{
    const int n = numUnits();
    UnitId best = 0;
    double best_ecc = ShortestPaths::kInf;
    for (UnitId u = 0; u < n; ++u) {
        const auto sp = bfs(coupling_, u);
        double ecc = 0.0;
        for (double d : sp.dist) {
            if (d != ShortestPaths::kInf)
                ecc = std::max(ecc, d);
        }
        if (ecc < best_ecc) {
            best_ecc = ecc;
            best = u;
        }
    }
    return best;
}

Topology
Topology::grid(int min_units)
{
    QFATAL_IF(min_units < 1, "grid needs >= 1 unit");
    const int cols = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(min_units))));
    const int rows = (min_units + cols - 1) / cols;
    Topology t = gridExplicit(std::max(rows, 1), cols);
    return t;
}

Topology
Topology::gridExplicit(int rows, int cols)
{
    QFATAL_IF(rows < 1 || cols < 1, "grid dims must be positive, got ",
              rows, "x", cols);
    Graph g(rows * cols);
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                g.addEdge(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                g.addEdge(id(r, c), id(r + 1, c));
        }
    }
    return Topology(std::move(g), format("grid_%dx%d", rows, cols));
}

Topology
Topology::heavyHex65()
{
    Graph g(65);
    // Qubit rows (inclusive ranges) as on the IBM 65-qubit devices.
    const std::vector<std::pair<int, int>> rows = {
        {0, 9}, {13, 23}, {27, 37}, {41, 51}, {55, 64},
    };
    for (const auto &[lo, hi] : rows) {
        for (int q = lo; q < hi; ++q)
            g.addEdge(q, q + 1);
    }
    // Bridge qubits: {bridge, upper-row qubit, lower-row qubit}.
    const std::vector<std::array<int, 3>> bridges = {
        {10, 0, 13},  {11, 4, 17},  {12, 8, 21},
        {24, 15, 29}, {25, 19, 33}, {26, 23, 37},
        {38, 27, 41}, {39, 31, 45}, {40, 35, 49},
        {52, 43, 56}, {53, 47, 60}, {54, 51, 64},
    };
    for (const auto &[b, up, down] : bridges) {
        g.addEdge(b, up);
        g.addEdge(b, down);
    }
    return Topology(std::move(g), "heavyhex_65");
}

Topology
Topology::heavyHex(int rows, int row_len)
{
    QFATAL_IF(rows < 3 || rows % 2 == 0,
              "heavyHex needs an odd row count >= 3, got ", rows);
    QFATAL_IF(row_len < 7 || row_len % 4 != 3,
              "heavyHex needs a row length >= 7 with row_len % 4 == 3, "
              "got ", row_len);

    // Numbering interleaves each qubit row with the bridge units below
    // it: row 0, bridges(0,1), row 1, bridges(1,2), ... -- the IBM
    // heavy-hex numbering heavyHex65() hardcodes. The first and last
    // rows are one unit shorter: the first omits the final column, the
    // last omits column 0.
    const auto row_units = [&](int r) {
        return (r == 0 || r == rows - 1) ? row_len - 1 : row_len;
    };
    // Bridge columns of the row pair (r, r+1): every 4th column,
    // offset 0 for even pairs and 2 for odd pairs.
    const auto bridge_cols = [&](int r) {
        std::vector<int> cols;
        for (int c = (r % 2 == 0) ? 0 : 2; c < row_len; c += 4)
            cols.push_back(c);
        return cols;
    };

    std::vector<int> row_start(static_cast<std::size_t>(rows), 0);
    std::vector<int> bridge_start(static_cast<std::size_t>(rows), 0);
    int next = 0;
    for (int r = 0; r < rows; ++r) {
        row_start[static_cast<std::size_t>(r)] = next;
        next += row_units(r);
        if (r + 1 < rows) {
            bridge_start[static_cast<std::size_t>(r)] = next;
            next += static_cast<int>(bridge_cols(r).size());
        }
    }
    const int total = next;
    QFATAL_IF(total > kMaxTopologyUnits, "heavyHex(", rows, ", ",
              row_len, ") would have ", total,
              " units, exceeding the cap of ", kMaxTopologyUnits);

    // Unit at (row r, column c); the short first/last rows shift.
    const auto unit_at = [&](int r, int c) {
        if (r == rows - 1)
            return row_start[static_cast<std::size_t>(r)] + c - 1;
        return row_start[static_cast<std::size_t>(r)] + c;
    };

    Graph g(total);
    // Row chains first, then bridges, matching heavyHex65()'s
    // insertion order exactly (adjacency-list order feeds tie-breaks
    // in Dijkstra, so heavyHex(5, 11) must BUILD the same graph, not
    // just an isomorphic one).
    for (int r = 0; r < rows; ++r) {
        const int lo = row_start[static_cast<std::size_t>(r)];
        for (int q = lo; q + 1 < lo + row_units(r); ++q)
            g.addEdge(q, q + 1);
    }
    for (int r = 0; r + 1 < rows; ++r) {
        const std::vector<int> cols = bridge_cols(r);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            const int b =
                bridge_start[static_cast<std::size_t>(r)] +
                static_cast<int>(k);
            g.addEdge(b, unit_at(r, cols[k]));
            g.addEdge(b, unit_at(r + 1, cols[k]));
        }
    }
    return Topology(std::move(g), format("heavyhex_%d", total));
}

Topology
Topology::falcon27()
{
    // The IBM 27-qubit Falcon coupling map (ibmq_mumbai/montreal/...):
    // a 3-row heavy-hex fragment, 27 units, 28 edges.
    static const std::pair<UnitId, UnitId> kEdges[] = {
        {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},
        {5, 8},   {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12},
        {11, 14}, {12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18},
        {16, 19}, {17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23},
        {22, 25}, {23, 24}, {24, 25}, {25, 26},
    };
    Graph g(27);
    for (const auto &[u, v] : kEdges)
        g.addEdge(u, v);
    return Topology(std::move(g), "falcon_27");
}

Topology
Topology::named(const std::string &name)
{
    if (name == "falcon27")
        return falcon27();
    if (name == "heavyhex23")
        return heavyHex(3, 7);
    if (name == "heavyhex65")
        return heavyHex65();
    if (name == "heavyhex127")
        return heavyHex(7, 15);

    const auto colon = name.find(':');
    if (colon != std::string::npos && colon > 0 &&
        colon + 1 < name.size()) {
        const std::string kind = name.substr(0, colon);
        const std::string arg = name.substr(colon + 1);
        if (kind == "ring")
            return ring(namedParam(arg, name));
        if (kind == "line")
            return line(namedParam(arg, name));
        if (kind == "complete") {
            const int n = namedParam(arg, name);
            QFATAL_IF(n > 512, "complete:", n,
                      " is too dense; the cap is complete:512");
            return complete(n);
        }
        if (kind == "grid" || kind == "heavyhex") {
            const auto x = arg.find('x');
            QFATAL_IF(x == std::string::npos || x == 0 ||
                          x + 1 >= arg.size(),
                      "topology name '", name, "' needs the form ", kind,
                      ":<rows>x<cols>");
            const int a = namedParam(arg.substr(0, x), name);
            const int b = namedParam(arg.substr(x + 1), name);
            if (kind == "heavyhex")
                return heavyHex(a, b);
            QFATAL_IF(a > kMaxTopologyUnits / b, "grid ", a, "x", b,
                      " exceeds the cap of ", kMaxTopologyUnits,
                      " units");
            return gridExplicit(a, b);
        }
    }
    QFATAL("unknown topology '", name,
           "'; valid names: falcon27, heavyhex23, heavyhex65, "
           "heavyhex127, ring:<n>, line:<n>, grid:<rows>x<cols>, "
           "complete:<n>, heavyhex:<rows>x<row_len>");
}

Topology
Topology::ring(int n)
{
    QFATAL_IF(n < 3, "ring needs >= 3 units, got ", n);
    Graph g(n);
    for (int i = 0; i < n; ++i)
        g.addEdge(i, (i + 1) % n);
    return Topology(std::move(g), format("ring_%d", n));
}

Topology
Topology::line(int n)
{
    QFATAL_IF(n < 1, "line needs >= 1 unit, got ", n);
    Graph g(n);
    for (int i = 0; i + 1 < n; ++i)
        g.addEdge(i, i + 1);
    return Topology(std::move(g), format("line_%d", n));
}

Topology
Topology::complete(int n)
{
    QFATAL_IF(n < 1, "complete needs >= 1 unit, got ", n);
    Graph g(n);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            g.addEdge(i, j);
    return Topology(std::move(g), format("complete_%d", n));
}

Topology
Topology::fromEdgeList(
    const std::vector<std::pair<UnitId, UnitId>> &edges,
    std::string name, int min_units)
{
    int n = min_units;
    for (const auto &[u, v] : edges) {
        QFATAL_IF(u < 0 || v < 0, "negative unit index in edge list");
        n = std::max({n, u + 1, v + 1});
    }
    QFATAL_IF(n < 1, "custom topology needs at least one unit");
    Graph g(n);
    for (const auto &[u, v] : edges) {
        QFATAL_IF(u == v, "self-coupling on unit ", u);
        g.addEdge(u, v); // duplicates are tolerated
    }
    return Topology(std::move(g), std::move(name));
}

Topology
Topology::fromText(const std::string &text, const std::string &what)
{
    std::vector<std::pair<UnitId, UnitId>> edges;
    std::unordered_set<std::uint64_t> seen;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        std::vector<std::string> tok;
        for (std::string t; ls >> t;)
            tok.push_back(std::move(t));
        if (tok.empty())
            continue; // blank or comment-only line
        QFATAL_IF(tok.size() != 2, "topology ", what, " line ", lineno,
                  ": expected exactly 'u v', got ", tok.size(),
                  " tokens");
        const UnitId u = topoUnit(tok[0], what, lineno);
        const UnitId v = topoUnit(tok[1], what, lineno);
        QFATAL_IF(u == v, "topology ", what, " line ", lineno,
                  ": self-coupling on unit ", u);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(std::min(u, v)) << 32) |
            static_cast<std::uint64_t>(std::max(u, v));
        QFATAL_IF(!seen.insert(key).second, "topology ", what, " line ",
                  lineno, ": duplicate coupling (", u, ", ", v, ")");
        QFATAL_IF(edges.size() >= kMaxTopologyEdges, "topology ", what,
                  " line ", lineno, ": too many couplings (cap ",
                  kMaxTopologyEdges, ")");
        edges.push_back({u, v});
    }
    QFATAL_IF(edges.empty(), "topology ", what, " has no couplings");
    return fromEdgeList(edges, what);
}

Topology
Topology::fromFile(const std::string &path)
{
    std::ifstream in(path);
    QFATAL_IF(!in, "cannot open topology file '", path, "'");
    std::ostringstream body;
    body << in.rdbuf();
    const Topology parsed = fromText(body.str(), path);
    std::string name = path;
    if (const auto slash = name.find_last_of('/');
        slash != std::string::npos) {
        name = name.substr(slash + 1);
    }
    return Topology(parsed.graph(), std::move(name));
}

} // namespace qompress
