#include "arch/topology.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "common/strings.hh"
#include "graph/algorithms.hh"

namespace qompress {

Topology::Topology(Graph coupling, std::string name)
    : coupling_(std::move(coupling)), name_(std::move(name))
{
    QFATAL_IF(coupling_.numVertices() < 1, "topology needs >= 1 unit");
}

UnitId
Topology::centerUnit() const
{
    const int n = numUnits();
    UnitId best = 0;
    double best_ecc = ShortestPaths::kInf;
    for (UnitId u = 0; u < n; ++u) {
        const auto sp = bfs(coupling_, u);
        double ecc = 0.0;
        for (double d : sp.dist) {
            if (d != ShortestPaths::kInf)
                ecc = std::max(ecc, d);
        }
        if (ecc < best_ecc) {
            best_ecc = ecc;
            best = u;
        }
    }
    return best;
}

Topology
Topology::grid(int min_units)
{
    QFATAL_IF(min_units < 1, "grid needs >= 1 unit");
    const int cols = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(min_units))));
    const int rows = (min_units + cols - 1) / cols;
    Topology t = gridExplicit(std::max(rows, 1), cols);
    return t;
}

Topology
Topology::gridExplicit(int rows, int cols)
{
    QFATAL_IF(rows < 1 || cols < 1, "grid dims must be positive, got ",
              rows, "x", cols);
    Graph g(rows * cols);
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                g.addEdge(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                g.addEdge(id(r, c), id(r + 1, c));
        }
    }
    return Topology(std::move(g), format("grid_%dx%d", rows, cols));
}

Topology
Topology::heavyHex65()
{
    Graph g(65);
    // Qubit rows (inclusive ranges) as on the IBM 65-qubit devices.
    const std::vector<std::pair<int, int>> rows = {
        {0, 9}, {13, 23}, {27, 37}, {41, 51}, {55, 64},
    };
    for (const auto &[lo, hi] : rows) {
        for (int q = lo; q < hi; ++q)
            g.addEdge(q, q + 1);
    }
    // Bridge qubits: {bridge, upper-row qubit, lower-row qubit}.
    const std::vector<std::array<int, 3>> bridges = {
        {10, 0, 13},  {11, 4, 17},  {12, 8, 21},
        {24, 15, 29}, {25, 19, 33}, {26, 23, 37},
        {38, 27, 41}, {39, 31, 45}, {40, 35, 49},
        {52, 43, 56}, {53, 47, 60}, {54, 51, 64},
    };
    for (const auto &[b, up, down] : bridges) {
        g.addEdge(b, up);
        g.addEdge(b, down);
    }
    return Topology(std::move(g), "heavyhex_65");
}

Topology
Topology::ring(int n)
{
    QFATAL_IF(n < 3, "ring needs >= 3 units, got ", n);
    Graph g(n);
    for (int i = 0; i < n; ++i)
        g.addEdge(i, (i + 1) % n);
    return Topology(std::move(g), format("ring_%d", n));
}

Topology
Topology::line(int n)
{
    QFATAL_IF(n < 1, "line needs >= 1 unit, got ", n);
    Graph g(n);
    for (int i = 0; i + 1 < n; ++i)
        g.addEdge(i, i + 1);
    return Topology(std::move(g), format("line_%d", n));
}

Topology
Topology::complete(int n)
{
    QFATAL_IF(n < 1, "complete needs >= 1 unit, got ", n);
    Graph g(n);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            g.addEdge(i, j);
    return Topology(std::move(g), format("complete_%d", n));
}

Topology
Topology::fromEdgeList(
    const std::vector<std::pair<UnitId, UnitId>> &edges,
    std::string name, int min_units)
{
    int n = min_units;
    for (const auto &[u, v] : edges) {
        QFATAL_IF(u < 0 || v < 0, "negative unit index in edge list");
        n = std::max({n, u + 1, v + 1});
    }
    QFATAL_IF(n < 1, "custom topology needs at least one unit");
    Graph g(n);
    for (const auto &[u, v] : edges) {
        QFATAL_IF(u == v, "self-coupling on unit ", u);
        g.addEdge(u, v); // duplicates are tolerated
    }
    return Topology(std::move(g), std::move(name));
}

Topology
Topology::fromFile(const std::string &path)
{
    std::ifstream in(path);
    QFATAL_IF(!in, "cannot open topology file '", path, "'");
    std::vector<std::pair<UnitId, UnitId>> edges;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ss(line);
        UnitId u, v;
        if (!(ss >> u))
            continue; // blank or comment-only line
        QFATAL_IF(!(ss >> v), "topology file ", path, " line ", lineno,
                  ": expected 'u v'");
        edges.push_back({u, v});
    }
    QFATAL_IF(edges.empty(), "topology file ", path, " has no edges");
    std::string name = path;
    if (const auto slash = name.find_last_of('/');
        slash != std::string::npos) {
        name = name.substr(slash + 1);
    }
    return fromEdgeList(edges, name);
}

} // namespace qompress
