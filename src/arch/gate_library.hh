/**
 * @file
 * The mixed-radix physical gate set: classification, durations
 * (paper Table 1), fidelities, and the coherence (T1) model
 * (paper sections 3.4 and 6.1.1).
 */

#ifndef QOMPRESS_ARCH_GATE_LIBRARY_HH
#define QOMPRESS_ARCH_GATE_LIBRARY_HH

#include <array>
#include <string>

namespace qompress {

/**
 * Every physically distinct gate class in the Qompress gate set.
 *
 * "Enc0"/"Enc1" refer to encode positions inside a ququart; "Bare" is a
 * unit holding a single qubit. Internal gates act within one ququart and
 * count as single-qudit operations.
 */
enum class PhysGateClass
{
    // --- single-unit (single-qudit fidelity tier) ---
    SqBare,        ///< 1q gate on a bare unit (X: 35 ns)
    SqEnc0,        ///< 1q gate on encode position 0 (X0: 87 ns)
    SqEnc1,        ///< 1q gate on encode position 1 (X1: 66 ns)
    SqEncBoth,     ///< fused pair of 1q gates (X0,1: 86 ns)
    CxInternal0,   ///< CX control pos0 -> target pos1 (83 ns)
    CxInternal1,   ///< CX control pos1 -> target pos0 (84 ns)
    SwapInternal,  ///< SWAP of the two encoded qubits (78 ns)

    // --- two-unit, qubit-qubit ---
    CxBareBare,    ///< CX2 (251 ns)
    SwapBareBare,  ///< SWAP2 (504 ns)

    // --- two-unit, qubit-ququart partials ---
    CxEnc0Bare,    ///< CX0q: encoded pos0 controls bare target (560 ns)
    CxEnc1Bare,    ///< CX1q (632 ns)
    CxBareEnc0,    ///< CXq0: bare controls encoded pos0 target (880 ns)
    CxBareEnc1,    ///< CXq1 (812 ns)
    SwapBareEnc0,  ///< SWAPq0 (680 ns)
    SwapBareEnc1,  ///< SWAPq1 (792 ns)

    // --- two-unit, ququart-ququart partials ---
    CxEnc00,       ///< CX00 (544 ns)
    CxEnc01,       ///< CX01 (544 ns)
    CxEnc10,       ///< CX10 (700 ns; via SWAPin + CX00 + SWAPin)
    CxEnc11,       ///< CX11 (700 ns)
    SwapEnc00,     ///< SWAP00 (916 ns)
    SwapEnc01,     ///< SWAP01 == SWAP10 (892 ns)
    SwapEnc11,     ///< SWAP11 (964 ns)
    SwapFull,      ///< SWAP4, exchanges whole ququarts (1184 ns)

    // --- encode/decode ---
    Encode,        ///< ENC (608 ns)
    Decode,        ///< ENC^-1 (608 ns)

    NumClasses,
};

/** Human-readable name matching the paper's notation (CX0q, SWAP00...). */
const std::string &physGateClassName(PhysGateClass c);

/** True for classes acting on a single physical unit. */
bool isSingleUnitClass(PhysGateClass c);

/** Classify a CX between slot positions with given encoded states.
 *  @param ctl_pos / tgt_pos encode position (0/1) of control/target;
 *  @param ctl_enc / tgt_enc whether that unit currently holds 2 qubits;
 *  @param same_unit both operands inside one ququart. */
PhysGateClass classifyCx(int ctl_pos, bool ctl_enc, int tgt_pos,
                         bool tgt_enc, bool same_unit);

/** Classify a SWAP (symmetric; see classifyCx for parameters). */
PhysGateClass classifySwap(int a_pos, bool a_enc, int b_pos, bool b_enc,
                           bool same_unit);

/** Classify a 1-qubit gate on a slot. */
PhysGateClass classifySq(int pos, bool enc);

/**
 * Durations, fidelities and T1 times for every gate class.
 *
 * Defaults reproduce Table 1 and section 6.1.1: single-qudit success
 * 99.9%, two-qudit 99%, T1 = 163.5 us (qubit) / 54.5 us (ququart).
 * Everything is mutable so the sensitivity studies (Figures 9, 11, 12)
 * can sweep error rates and coherence ratios.
 */
class GateLibrary
{
  public:
    /** Paper-calibrated defaults. */
    GateLibrary();

    /** Duration in nanoseconds. */
    double duration(PhysGateClass c) const;
    void setDuration(PhysGateClass c, double ns);

    /** Success probability of one application. */
    double fidelity(PhysGateClass c) const;
    void setFidelity(PhysGateClass c, double f);

    /** T1 of a unit in the qubit (bare) state, ns. */
    double t1Qubit() const { return t1Qubit_; }
    /** T1 of a unit in the ququart (encoded) state, ns. */
    double t1Ququart() const { return t1Ququart_; }
    void setT1(double qubit_ns, double ququart_ns);

    /**
     * Set the error rate (1 - fidelity) of every *qubit-only* gate
     * class (SqBare, CxBareBare, SwapBareBare), leaving ququart gates
     * untouched -- the Figure 9 sweep.
     */
    void setQubitGateError(double sq_error, double twoq_error);

    /** Default single-qudit / two-qudit fidelity constants. */
    static constexpr double kSingleQuditFidelity = 0.999;
    static constexpr double kTwoQuditFidelity = 0.99;
    /** Default T1 values (ns): 163.5 us and 163.5/3 us. */
    static constexpr double kT1QubitNs = 163'500.0;
    static constexpr double kT1QuquartNs = 54'500.0;

  private:
    std::array<double, static_cast<std::size_t>(PhysGateClass::NumClasses)>
        duration_;
    std::array<double, static_cast<std::size_t>(PhysGateClass::NumClasses)>
        fidelity_;
    double t1Qubit_;
    double t1Ququart_;
};

} // namespace qompress

#endif // QOMPRESS_ARCH_GATE_LIBRARY_HH
