/**
 * @file
 * Physical device topologies (paper section 6.1): square grid sized to
 * the circuit, the IBM 65-qubit heavy-hex lattice, and a ring.
 */

#ifndef QOMPRESS_ARCH_TOPOLOGY_HH
#define QOMPRESS_ARCH_TOPOLOGY_HH

#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "graph/graph.hh"

namespace qompress {

/**
 * A device coupling graph over ququart-capable physical units.
 *
 * Every unit can hold one logical qubit (bare) or two (encoded as a
 * ququart); the topology itself is radix-agnostic.
 */
class Topology
{
  public:
    /** Wrap an explicit coupling graph. */
    Topology(Graph coupling, std::string name);

    /** Number of physical units. */
    int numUnits() const { return coupling_.numVertices(); }

    /** Number of couplings. */
    int numEdges() const { return coupling_.numEdges(); }

    const std::string &name() const { return name_; }

    /** The unit-level coupling graph. */
    const Graph &graph() const { return coupling_; }

    /** True iff units u and v are coupled. */
    bool adjacent(UnitId u, UnitId v) const
    {
        return coupling_.hasEdge(u, v);
    }

    /** Unit with minimum eccentricity (BFS); mapping seeds here. */
    UnitId centerUnit() const;

    /** @name Generators @{ */

    /**
     * Rectangular mesh with ceil(sqrt(n)) columns and enough rows for
     * at least @p min_units units (paper's per-circuit sizing).
     */
    static Topology grid(int min_units);

    /** Explicit rows x cols mesh. */
    static Topology gridExplicit(int rows, int cols);

    /**
     * The IBM 65-qubit heavy-hex lattice (ibmq_manhattan/brooklyn
     * generation, the paper's "Ithaca" stand-in): five qubit rows of
     * 10/11/11/11/10 joined by 12 bridge qubits; 65 units, 72 edges.
     */
    static Topology heavyHex65();

    /**
     * The general heavy-hex family: @p rows qubit rows (first and last
     * one unit shorter) of length @p row_len joined by bridge units.
     * Valid parameters are rows odd >= 3 and row_len >= 7 with
     * row_len % 4 == 3 (the hexagonal tiling constraint); anything
     * else is a FatalError. heavyHex(5, 11) reproduces heavyHex65()
     * exactly (same units, numbering, and edges); heavyHex(7, 15) is
     * the 127-unit IBM Eagle shape; heavyHex(3, 7) a 23-unit Falcon-
     * class lattice.
     */
    static Topology heavyHex(int rows, int row_len);

    /** The IBM 27-qubit Falcon coupling map (ibmq_mumbai/montreal
     *  generation): 27 units, 28 edges. */
    static Topology falcon27();

    /**
     * Generator lookup by name: fixed shapes ("falcon27",
     * "heavyhex23", "heavyhex65", "heavyhex127") and parametric forms
     * ("ring:N", "line:N", "grid:RxC", "complete:N", "heavyhex:RxL").
     * @throws FatalError for an unknown name, listing the valid ones
     * (mirrors makeStrategy).
     */
    static Topology named(const std::string &name);

    /** Cycle of @p n units. */
    static Topology ring(int n);

    /** Path of @p n units. */
    static Topology line(int n);

    /** Fully connected device (useful in tests). */
    static Topology complete(int n);

    /** Custom device from an explicit coupling list (unit count is
     *  max index + 1 unless @p min_units is larger). */
    static Topology fromEdgeList(
        const std::vector<std::pair<UnitId, UnitId>> &edges,
        std::string name = "custom", int min_units = 0);

    /**
     * Custom device from untrusted coupling-list text: '#' comments
     * and exactly one "u v" coupling per line. Hardened like the QASM
     * parser: checked digit-only integer parsing, unit/edge caps,
     * trailing-token, self-loop, and duplicate-edge rejection, all
     * with line numbers. @p what names the source in errors.
     * @throws FatalError on malformed input.
     */
    static Topology fromText(const std::string &text,
                             const std::string &what);

    /** fromText() over a file's contents, named by its basename.
     *  @throws FatalError on malformed input. */
    static Topology fromFile(const std::string &path);
    /** @} */

  private:
    Graph coupling_;
    std::string name_;
};

} // namespace qompress

#endif // QOMPRESS_ARCH_TOPOLOGY_HH
