#include "arch/gate_library.hh"

#include "common/error.hh"

namespace qompress {

namespace {

constexpr std::size_t kNum =
    static_cast<std::size_t>(PhysGateClass::NumClasses);

constexpr std::size_t
idx(PhysGateClass c)
{
    return static_cast<std::size_t>(c);
}

struct ClassMeta
{
    const char *name;
    double duration_ns;  // Table 1
    bool single_unit;
};

constexpr std::array<ClassMeta, kNum> kMeta = {{
    {"X", 35.0, true},
    {"X0", 87.0, true},
    {"X1", 66.0, true},
    {"X0,1", 86.0, true},
    {"CX0", 83.0, true},
    {"CX1", 84.0, true},
    {"SWAPin", 78.0, true},
    {"CX2", 251.0, false},
    {"SWAP2", 504.0, false},
    {"CX0q", 560.0, false},
    {"CX1q", 632.0, false},
    {"CXq0", 880.0, false},
    {"CXq1", 812.0, false},
    {"SWAPq0", 680.0, false},
    {"SWAPq1", 792.0, false},
    {"CX00", 544.0, false},
    {"CX01", 544.0, false},
    {"CX10", 700.0, false},
    {"CX11", 700.0, false},
    {"SWAP00", 916.0, false},
    {"SWAP01", 892.0, false},
    {"SWAP11", 964.0, false},
    {"SWAP4", 1184.0, false},
    {"ENC", 608.0, false},
    {"DEC", 608.0, false},
}};

} // namespace

const std::string &
physGateClassName(PhysGateClass c)
{
    static const std::array<std::string, kNum> names = [] {
        std::array<std::string, kNum> out;
        for (std::size_t i = 0; i < kNum; ++i)
            out[i] = kMeta[i].name;
        return out;
    }();
    QPANIC_IF(idx(c) >= kNum, "bad gate class ", idx(c));
    return names[idx(c)];
}

bool
isSingleUnitClass(PhysGateClass c)
{
    QPANIC_IF(idx(c) >= kNum, "bad gate class ", idx(c));
    return kMeta[idx(c)].single_unit;
}

PhysGateClass
classifyCx(int ctl_pos, bool ctl_enc, int tgt_pos, bool tgt_enc,
           bool same_unit)
{
    if (same_unit) {
        QPANIC_IF(ctl_pos == tgt_pos, "internal CX with equal positions");
        return ctl_pos == 0 ? PhysGateClass::CxInternal0
                            : PhysGateClass::CxInternal1;
    }
    if (ctl_enc && tgt_enc) {
        if (ctl_pos == 0)
            return tgt_pos == 0 ? PhysGateClass::CxEnc00
                                : PhysGateClass::CxEnc01;
        return tgt_pos == 0 ? PhysGateClass::CxEnc10
                            : PhysGateClass::CxEnc11;
    }
    if (ctl_enc && !tgt_enc) {
        return ctl_pos == 0 ? PhysGateClass::CxEnc0Bare
                            : PhysGateClass::CxEnc1Bare;
    }
    if (!ctl_enc && tgt_enc) {
        return tgt_pos == 0 ? PhysGateClass::CxBareEnc0
                            : PhysGateClass::CxBareEnc1;
    }
    return PhysGateClass::CxBareBare;
}

PhysGateClass
classifySwap(int a_pos, bool a_enc, int b_pos, bool b_enc, bool same_unit)
{
    if (same_unit) {
        QPANIC_IF(a_pos == b_pos, "internal SWAP with equal positions");
        return PhysGateClass::SwapInternal;
    }
    if (a_enc && b_enc) {
        if (a_pos == b_pos) {
            return a_pos == 0 ? PhysGateClass::SwapEnc00
                              : PhysGateClass::SwapEnc11;
        }
        return PhysGateClass::SwapEnc01;
    }
    if (a_enc != b_enc) {
        const int enc_pos = a_enc ? a_pos : b_pos;
        return enc_pos == 0 ? PhysGateClass::SwapBareEnc0
                            : PhysGateClass::SwapBareEnc1;
    }
    return PhysGateClass::SwapBareBare;
}

PhysGateClass
classifySq(int pos, bool enc)
{
    if (!enc)
        return PhysGateClass::SqBare;
    return pos == 0 ? PhysGateClass::SqEnc0 : PhysGateClass::SqEnc1;
}

GateLibrary::GateLibrary()
    : t1Qubit_(kT1QubitNs), t1Ququart_(kT1QuquartNs)
{
    for (std::size_t i = 0; i < kNum; ++i) {
        duration_[i] = kMeta[i].duration_ns;
        fidelity_[i] = kMeta[i].single_unit ? kSingleQuditFidelity
                                            : kTwoQuditFidelity;
    }
}

double
GateLibrary::duration(PhysGateClass c) const
{
    QPANIC_IF(idx(c) >= kNum, "bad gate class ", idx(c));
    return duration_[idx(c)];
}

void
GateLibrary::setDuration(PhysGateClass c, double ns)
{
    QPANIC_IF(idx(c) >= kNum, "bad gate class ", idx(c));
    QFATAL_IF(ns <= 0.0, "duration must be positive");
    duration_[idx(c)] = ns;
}

double
GateLibrary::fidelity(PhysGateClass c) const
{
    QPANIC_IF(idx(c) >= kNum, "bad gate class ", idx(c));
    return fidelity_[idx(c)];
}

void
GateLibrary::setFidelity(PhysGateClass c, double f)
{
    QPANIC_IF(idx(c) >= kNum, "bad gate class ", idx(c));
    QFATAL_IF(f <= 0.0 || f > 1.0, "fidelity must be in (0, 1], got ", f);
    fidelity_[idx(c)] = f;
}

void
GateLibrary::setT1(double qubit_ns, double ququart_ns)
{
    QFATAL_IF(qubit_ns <= 0.0 || ququart_ns <= 0.0,
              "T1 times must be positive");
    t1Qubit_ = qubit_ns;
    t1Ququart_ = ququart_ns;
}

void
GateLibrary::setQubitGateError(double sq_error, double twoq_error)
{
    setFidelity(PhysGateClass::SqBare, 1.0 - sq_error);
    setFidelity(PhysGateClass::CxBareBare, 1.0 - twoq_error);
    setFidelity(PhysGateClass::SwapBareBare, 1.0 - twoq_error);
}

} // namespace qompress
