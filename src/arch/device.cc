#include "arch/device.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "common/strings.hh"
#include "ir/fingerprint.hh"

namespace qompress {

namespace {

/** Largest device a calibration may describe; matches the topology
 *  parser's cap so the two untrusted-input paths agree. */
constexpr int kMaxCalibrationUnits = 16384;
constexpr int kMaxCalibrationVersion = 1'000'000'000;

/** Strict non-negative integer token: digits only, bounded width. */
int
calInt(const std::string &tok, const char *field, const std::string &what,
       int lineno, int max_value)
{
    QFATAL_IF(tok.empty() || tok.size() > 10 ||
                  tok.find_first_not_of("0123456789") != std::string::npos,
              "calibration ", what, " line ", lineno, ": malformed ",
              field, " '", tok, "'");
    errno = 0;
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    QFATAL_IF(errno != 0 || v > max_value, "calibration ", what, " line ",
              lineno, ": ", field, " ", tok, " out of range [0, ",
              max_value, "]");
    return static_cast<int>(v);
}

/** Strict finite double token (full-token parse; NaN/inf rejected). */
double
calDouble(const std::string &tok, const char *field,
          const std::string &what, int lineno)
{
    QFATAL_IF(tok.empty() || tok.size() > 48, "calibration ", what,
              " line ", lineno, ": malformed ", field, " '", tok, "'");
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(tok.c_str(), &end);
    QFATAL_IF(end != tok.c_str() + tok.size() || errno == ERANGE,
              "calibration ", what, " line ", lineno, ": malformed ",
              field, " '", tok, "'");
    QFATAL_IF(!std::isfinite(v), "calibration ", what, " line ", lineno,
              ": non-finite ", field, " '", tok, "'");
    return v;
}

/** A T1 time must be a positive, physically plausible nanosecond
 *  count; zero or negative would divide-by-zero the decay model. */
double
calT1(const std::string &tok, const char *field, const std::string &what,
      int lineno)
{
    const double v = calDouble(tok, field, what, lineno);
    QFATAL_IF(v <= 0.0 || v > 1e15, "calibration ", what, " line ",
              lineno, ": ", field, " must be in (0, 1e15] ns, got ", v);
    return v;
}

/** The literal field-name token each value must be introduced by. */
void
calExpect(const std::string &tok, const char *field,
          const std::string &what, int lineno)
{
    QFATAL_IF(tok != field, "calibration ", what, " line ", lineno,
              ": expected '", field, "', got '", tok, "'");
}

} // namespace

std::uint64_t
DeviceCalibration::edgeKey(UnitId u, UnitId v)
{
    const std::uint64_t lo = static_cast<std::uint64_t>(std::min(u, v));
    const std::uint64_t hi = static_cast<std::uint64_t>(std::max(u, v));
    return (lo << 32) | hi;
}

const DeviceCalibration::Edge *
DeviceCalibration::edge(UnitId u, UnitId v) const
{
    const auto it = edges.find(edgeKey(u, v));
    return it == edges.end() ? nullptr : &it->second;
}

void
DeviceCalibration::setEdge(UnitId u, UnitId v, double fidelity_scale,
                           double duration_scale)
{
    edges[edgeKey(u, v)] = Edge{fidelity_scale, duration_scale};
}

DeviceCalibration
DeviceCalibration::uniform(std::string device, int units,
                           double t1_qubit_ns, double t1_ququart_ns,
                           double readout_error)
{
    QFATAL_IF(units < 1 || units > kMaxCalibrationUnits,
              "calibration unit count ", units, " out of range [1, ",
              kMaxCalibrationUnits, "]");
    DeviceCalibration cal;
    cal.device = std::move(device);
    cal.t1QubitNs.assign(static_cast<std::size_t>(units), t1_qubit_ns);
    cal.t1QuquartNs.assign(static_cast<std::size_t>(units),
                           t1_ququart_ns);
    cal.readoutError.assign(static_cast<std::size_t>(units),
                            readout_error);
    return cal;
}

DeviceCalibration
DeviceCalibration::parse(const std::string &text, const std::string &what)
{
    DeviceCalibration cal;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    bool saw_header = false;
    bool saw_device = false;
    bool saw_version = false;
    int units = -1; // -1 until the `units` directive
    std::vector<bool> seen_unit;

    while (std::getline(in, line)) {
        ++lineno;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        std::vector<std::string> tok;
        for (std::string t; ls >> t;)
            tok.push_back(std::move(t));
        if (tok.empty())
            continue;

        if (!saw_header) {
            QFATAL_IF(tok.size() != 2 || tok[0] != "qcal" ||
                          tok[1] != "1",
                      "calibration ", what, " line ", lineno,
                      ": expected header 'qcal 1'");
            saw_header = true;
            continue;
        }
        if (tok[0] == "device") {
            QFATAL_IF(saw_device, "calibration ", what, " line ", lineno,
                      ": duplicate 'device' directive");
            QFATAL_IF(tok.size() != 2, "calibration ", what, " line ",
                      lineno, ": expected 'device <name>'");
            cal.device = tok[1];
            saw_device = true;
            continue;
        }
        if (tok[0] == "version") {
            QFATAL_IF(saw_version, "calibration ", what, " line ", lineno,
                      ": duplicate 'version' directive");
            QFATAL_IF(tok.size() != 2, "calibration ", what, " line ",
                      lineno, ": expected 'version <n>'");
            cal.version = calInt(tok[1], "version", what, lineno,
                                 kMaxCalibrationVersion);
            QFATAL_IF(cal.version < 1, "calibration ", what, " line ",
                      lineno, ": version must be >= 1");
            saw_version = true;
            continue;
        }
        if (tok[0] == "units") {
            QFATAL_IF(units >= 0, "calibration ", what, " line ", lineno,
                      ": duplicate 'units' directive");
            QFATAL_IF(tok.size() != 2, "calibration ", what, " line ",
                      lineno, ": expected 'units <n>'");
            units = calInt(tok[1], "units", what, lineno,
                           kMaxCalibrationUnits);
            QFATAL_IF(units < 1, "calibration ", what, " line ", lineno,
                      ": need >= 1 unit");
            cal.t1QubitNs.assign(static_cast<std::size_t>(units), 0.0);
            cal.t1QuquartNs.assign(static_cast<std::size_t>(units), 0.0);
            cal.readoutError.assign(static_cast<std::size_t>(units), 0.0);
            seen_unit.assign(static_cast<std::size_t>(units), false);
            continue;
        }
        if (tok[0] == "unit") {
            QFATAL_IF(units < 0, "calibration ", what, " line ", lineno,
                      ": 'unit' before 'units <n>'");
            QFATAL_IF(tok.size() != 8, "calibration ", what, " line ",
                      lineno,
                      ": expected 'unit <id> t1q <ns> t1qq <ns> ro <e>'");
            const int u = calInt(tok[1], "unit id", what, lineno,
                                 kMaxCalibrationUnits);
            QFATAL_IF(u >= units, "calibration ", what, " line ", lineno,
                      ": unit ", u, " out of range [0, ", units, ")");
            QFATAL_IF(seen_unit[static_cast<std::size_t>(u)],
                      "calibration ", what, " line ", lineno,
                      ": duplicate calibration for unit ", u);
            calExpect(tok[2], "t1q", what, lineno);
            cal.t1QubitNs[static_cast<std::size_t>(u)] =
                calT1(tok[3], "t1q", what, lineno);
            calExpect(tok[4], "t1qq", what, lineno);
            cal.t1QuquartNs[static_cast<std::size_t>(u)] =
                calT1(tok[5], "t1qq", what, lineno);
            calExpect(tok[6], "ro", what, lineno);
            const double ro = calDouble(tok[7], "ro", what, lineno);
            QFATAL_IF(ro < 0.0 || ro >= 1.0, "calibration ", what,
                      " line ", lineno,
                      ": readout error must be in [0, 1), got ", ro);
            cal.readoutError[static_cast<std::size_t>(u)] = ro;
            seen_unit[static_cast<std::size_t>(u)] = true;
            continue;
        }
        if (tok[0] == "edge") {
            QFATAL_IF(units < 0, "calibration ", what, " line ", lineno,
                      ": 'edge' before 'units <n>'");
            QFATAL_IF(tok.size() != 7, "calibration ", what, " line ",
                      lineno,
                      ": expected 'edge <u> <v> fid <f> dur <d>'");
            const int u = calInt(tok[1], "edge unit", what, lineno,
                                 kMaxCalibrationUnits);
            const int v = calInt(tok[2], "edge unit", what, lineno,
                                 kMaxCalibrationUnits);
            QFATAL_IF(u >= units || v >= units, "calibration ", what,
                      " line ", lineno, ": edge (", u, ", ", v,
                      ") names a unit out of range [0, ", units, ")");
            QFATAL_IF(u == v, "calibration ", what, " line ", lineno,
                      ": self-edge on unit ", u);
            QFATAL_IF(cal.edges.count(edgeKey(u, v)) != 0, "calibration ",
                      what, " line ", lineno, ": duplicate edge (", u,
                      ", ", v, ")");
            calExpect(tok[3], "fid", what, lineno);
            const double fid = calDouble(tok[4], "fid", what, lineno);
            QFATAL_IF(fid <= 0.0 || fid > 1.0, "calibration ", what,
                      " line ", lineno,
                      ": fid scale must be in (0, 1], got ", fid);
            calExpect(tok[5], "dur", what, lineno);
            const double dur = calDouble(tok[6], "dur", what, lineno);
            QFATAL_IF(dur <= 0.0 || dur > 1000.0, "calibration ", what,
                      " line ", lineno,
                      ": dur scale must be in (0, 1000], got ", dur);
            cal.setEdge(u, v, fid, dur);
            continue;
        }
        QFATAL("calibration ", what, " line ", lineno,
               ": unknown directive '", tok[0], "'");
    }

    QFATAL_IF(!saw_header, "calibration ", what,
              ": empty input (expected 'qcal 1' header)");
    QFATAL_IF(!saw_device, "calibration ", what,
              ": missing 'device <name>' directive");
    QFATAL_IF(units < 0, "calibration ", what,
              ": missing 'units <n>' directive");
    for (int u = 0; u < units; ++u) {
        QFATAL_IF(!seen_unit[static_cast<std::size_t>(u)], "calibration ",
                  what, ": truncated record -- unit ", u,
                  " was never calibrated");
    }
    return cal;
}

DeviceCalibration
DeviceCalibration::fromFile(const std::string &path)
{
    std::ifstream in(path);
    QFATAL_IF(!in, "cannot open calibration file '", path, "'");
    std::ostringstream body;
    body << in.rdbuf();
    return parse(body.str(), path);
}

std::string
DeviceCalibration::toText() const
{
    std::string out = "qcal 1\n";
    out += format("device %s\n", device.c_str());
    out += format("version %d\n", version);
    out += format("units %d\n", numUnits());
    for (int u = 0; u < numUnits(); ++u) {
        out += format("unit %d t1q %.17g t1qq %.17g ro %.17g\n", u,
                      t1QubitNs[static_cast<std::size_t>(u)],
                      t1QuquartNs[static_cast<std::size_t>(u)],
                      readoutError[static_cast<std::size_t>(u)]);
    }
    std::vector<std::uint64_t> keys;
    keys.reserve(edges.size());
    for (const auto &[k, e] : edges) {
        (void)e;
        keys.push_back(k);
    }
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t k : keys) {
        const Edge &e = edges.at(k);
        out += format("edge %d %d fid %.17g dur %.17g\n",
                      static_cast<int>(k >> 32),
                      static_cast<int>(k & 0xffffffffu), e.fidelityScale,
                      e.durationScale);
    }
    return out;
}

std::uint64_t
DeviceCalibration::fingerprint() const
{
    Fingerprinter f;
    f.mixString("qcal");
    f.mixString(device);
    f.mixI32(version);
    f.mixI32(numUnits());
    for (const double v : t1QubitNs)
        f.mixDouble(v);
    for (const double v : t1QuquartNs)
        f.mixDouble(v);
    for (const double v : readoutError)
        f.mixDouble(v);
    std::vector<std::uint64_t> keys;
    keys.reserve(edges.size());
    for (const auto &[k, e] : edges) {
        (void)e;
        keys.push_back(k);
    }
    std::sort(keys.begin(), keys.end());
    f.mixU64(keys.size());
    for (const std::uint64_t k : keys) {
        const Edge &e = edges.at(k);
        f.mixU64(k);
        f.mixDouble(e.fidelityScale);
        f.mixDouble(e.durationScale);
    }
    return f.value();
}

bool
DeviceCalibration::operator==(const DeviceCalibration &o) const
{
    return device == o.device && version == o.version &&
           t1QubitNs == o.t1QubitNs && t1QuquartNs == o.t1QuquartNs &&
           readoutError == o.readoutError && edges == o.edges;
}

// ------------------------------------------------------------------
// DeviceRegistry
// ------------------------------------------------------------------

DeviceRegistry::DeviceRegistry()
{
    add("falcon27", Topology::falcon27());
    add("heavyhex23", Topology::heavyHex(3, 7));
    add("heavyhex65", Topology::heavyHex65());
    add("heavyhex127", Topology::heavyHex(7, 15));
    add("ring65", Topology::ring(65));
    add("grid64", Topology::gridExplicit(8, 8));
}

std::vector<std::string>
DeviceRegistry::names() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> out;
    out.reserve(devices_.size());
    for (const auto &[name, dev] : devices_) {
        (void)dev;
        out.push_back(name);
    }
    return out;
}

std::vector<DeviceInfo>
DeviceRegistry::info() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<DeviceInfo> out;
    out.reserve(devices_.size());
    for (const auto &[name, dev] : devices_) {
        out.push_back({name, dev.topology.numUnits(),
                       dev.topology.numEdges(),
                       dev.calibration != nullptr, dev.calVersion});
    }
    return out;
}

bool
DeviceRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return devices_.count(name) != 0;
}

Device
DeviceRegistry::get(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = devices_.find(name);
    if (it == devices_.end()) {
        std::vector<std::string> valid;
        valid.reserve(devices_.size());
        for (const auto &[n, dev] : devices_) {
            (void)dev;
            valid.push_back(n);
        }
        QFATAL("unknown device '", name, "'; registered devices: ",
               join(valid, ", "));
    }
    return it->second;
}

void
DeviceRegistry::add(const std::string &name, Topology topo)
{
    QFATAL_IF(name.empty(), "device name must not be empty");
    std::lock_guard<std::mutex> lk(mu_);
    QFATAL_IF(devices_.count(name) != 0, "device '", name,
              "' is already registered");
    devices_.emplace(name,
                     Device{name, std::move(topo), nullptr, 0});
}

void
DeviceRegistry::addFromFile(const std::string &name,
                            const std::string &path)
{
    // Re-wrap under the device's name so two devices loaded from the
    // same file (or renamed files with the same coupling) are still
    // distinguishable by topology fingerprint only through content.
    const Topology loaded = Topology::fromFile(path);
    add(name, Topology(loaded.graph(), name));
}

std::uint64_t
DeviceRegistry::setCalibration(const std::string &name,
                               DeviceCalibration cal)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = devices_.find(name);
    if (it == devices_.end()) {
        std::vector<std::string> valid;
        valid.reserve(devices_.size());
        for (const auto &[n, dev] : devices_) {
            (void)dev;
            valid.push_back(n);
        }
        QFATAL("unknown device '", name, "'; registered devices: ",
               join(valid, ", "));
    }
    Device &dev = it->second;
    QFATAL_IF(!cal.device.empty() && cal.device != name, "calibration is "
              "for device '", cal.device, "', not '", name, "'");
    QFATAL_IF(cal.numUnits() != dev.topology.numUnits(), "calibration "
              "covers ", cal.numUnits(), " units but device '", name,
              "' has ", dev.topology.numUnits());
    for (const auto &[key, e] : cal.edges) {
        (void)e;
        const UnitId u = static_cast<UnitId>(key >> 32);
        const UnitId v = static_cast<UnitId>(key & 0xffffffffu);
        QFATAL_IF(!dev.topology.adjacent(u, v), "calibration edge (", u,
                  ", ", v, ") is not a coupling of device '", name, "'");
    }
    dev.calibration =
        std::make_shared<const DeviceCalibration>(std::move(cal));
    return ++dev.calVersion;
}

} // namespace qompress
