#include "arch/expanded_graph.hh"

namespace qompress {

ExpandedGraph::ExpandedGraph(const Topology &topo)
    : topo_(&topo), graph_(2 * topo.numUnits())
{
    for (UnitId u = 0; u < topo.numUnits(); ++u)
        graph_.addEdge(makeSlot(u, 0), makeSlot(u, 1));
    for (const auto &e : topo.graph().edges()) {
        for (int pa = 0; pa < 2; ++pa) {
            for (int pb = 0; pb < 2; ++pb) {
                graph_.addEdge(makeSlot(e.u, pa), makeSlot(e.v, pb));
            }
        }
    }
}

} // namespace qompress
