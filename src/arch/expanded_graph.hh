/**
 * @file
 * The expanded (slot-level) interaction graph of a mixed-radix device
 * (paper section 4.1): every physical unit contributes two logical
 * slots, yielding 2V nodes and 4E + V edges.
 */

#ifndef QOMPRESS_ARCH_EXPANDED_GRAPH_HH
#define QOMPRESS_ARCH_EXPANDED_GRAPH_HH

#include "arch/topology.hh"
#include "common/types.hh"
#include "graph/graph.hh"

namespace qompress {

/**
 * Slot-level view of a Topology.
 *
 * Slot ids follow common/types.hh: unit u owns slots 2u (encode
 * position 0) and 2u+1 (position 1). Two slots are adjacent iff they
 * share a unit (internal edge) or their units are coupled (the four
 * cross edges per coupling).
 */
class ExpandedGraph
{
  public:
    explicit ExpandedGraph(const Topology &topo);

    /** Number of slots (2V). */
    int numSlots() const { return graph_.numVertices(); }

    /** Underlying slot graph (2V nodes, 4E + V edges). */
    const Graph &graph() const { return graph_; }

    /** The topology this expansion was built from. */
    const Topology &topology() const { return *topo_; }

    /** True iff two slots may host a 2-operand gate directly. */
    bool adjacent(SlotId a, SlotId b) const
    {
        return graph_.hasEdge(a, b);
    }

    /** True iff the slots belong to one physical unit. */
    static bool sameUnit(SlotId a, SlotId b)
    {
        return slotUnit(a) == slotUnit(b);
    }

  private:
    const Topology *topo_;
    Graph graph_;
};

} // namespace qompress

#endif // QOMPRESS_ARCH_EXPANDED_GRAPH_HH
