/**
 * @file
 * The device layer: per-device calibration records and a named
 * registry of backends (topology + calibration) the service compiles
 * against.
 *
 * A DeviceCalibration carries what a real backend's daily calibration
 * publishes and the single GateLibrary constants cannot express:
 * per-unit T1 times (qubit and ququart state), per-unit readout error,
 * and per-edge two-unit gate quality (fidelity/duration scale factors
 * on the library's class constants). CostModel, the scheduler, and the
 * metrics pass consume it through CompilerConfig::calibration; a null
 * calibration is the uncalibrated device and prices bit-identically to
 * the pre-calibration code (tests/test_device.cc pins this
 * differentially).
 *
 * The text codec ("qcal") follows the hardened-parser contract the
 * QASM front end established: untrusted input either parses completely
 * or raises FatalError with a line number -- never PanicError, never a
 * partial record. Layout:
 *
 *   qcal 1                      # format header, exactly this
 *   device falcon27             # which backend this calibrates
 *   version 3                   # optional calibration generation (>= 1)
 *   units 27                    # unit count; then one line per unit:
 *   unit 0 t1q 163500 t1qq 54500 ro 0.01
 *   ...
 *   edge 0 1 fid 0.98 dur 1.1   # optional per-coupling scales
 *
 * '#' starts a comment; every unit in [0, units) must be calibrated
 * exactly once; edges are optional, undirected, deduplicated, and must
 * join distinct valid units. fid scales the library fidelity of
 * cross-unit gates on that coupling (in (0, 1]); dur scales their
 * duration (in (0, 1000]).
 *
 * DeviceRegistry maps device names to {topology, calibration,
 * calVersion}. The default zoo covers the paper's evaluation backends
 * plus real-machine shapes: falcon27 (IBM Falcon r5.11 coupling),
 * heavyhex23/65/127 (the heavy-hex family; 65 is the paper's
 * "Ithaca"), ring65, and grid64. Uploading a calibration bumps the
 * device's calVersion and -- because the calibration fingerprint is
 * mixed into the request's config fingerprint -- invalidates exactly
 * the memo/template/disk artifacts priced against the old record.
 */

#ifndef QOMPRESS_ARCH_DEVICE_HH
#define QOMPRESS_ARCH_DEVICE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/topology.hh"
#include "common/types.hh"

namespace qompress {

/** Per-device calibration record; see the file comment for the codec. */
struct DeviceCalibration
{
    /** Multiplicative quality scales for one coupling, applied on top
     *  of the GateLibrary class constants for cross-unit gates. */
    struct Edge
    {
        double fidelityScale = 1.0;
        double durationScale = 1.0;

        bool operator==(const Edge &o) const
        {
            return fidelityScale == o.fidelityScale &&
                   durationScale == o.durationScale;
        }
    };

    /** Backend this record calibrates (matched by the registry). */
    std::string device;

    /** Calibration generation, >= 1 (backends republish daily). */
    int version = 1;

    /** @name Per-unit arrays, all sized numUnits(). @{ */
    std::vector<double> t1QubitNs;   ///< T1 in the bare (qubit) state
    std::vector<double> t1QuquartNs; ///< T1 in the encoded state
    std::vector<double> readoutError; ///< per-qubit readout error in [0, 1)
    /** @} */

    /** Per-coupling scales keyed by edgeKey(); absent = 1.0/1.0. */
    std::unordered_map<std::uint64_t, Edge> edges;

    int numUnits() const { return static_cast<int>(t1QubitNs.size()); }

    /** Canonical undirected key: (min << 32) | max. */
    static std::uint64_t edgeKey(UnitId u, UnitId v);

    /** The scales for coupling (u, v), or nullptr when uncalibrated. */
    const Edge *edge(UnitId u, UnitId v) const;

    void setEdge(UnitId u, UnitId v, double fidelity_scale,
                 double duration_scale);

    /**
     * A calibration assigning every unit the same values -- with the
     * GateLibrary defaults and ro = 0 this is the NEUTRAL record that
     * prices bit-identically to no calibration at all (pinned by
     * tests/test_device.cc).
     */
    static DeviceCalibration uniform(std::string device, int units,
                                     double t1_qubit_ns,
                                     double t1_ququart_ns,
                                     double readout_error = 0.0);

    /** Parse qcal text; @p what names the source in errors (a path,
     *  "request body", ...). @throws FatalError on malformed input. */
    static DeviceCalibration parse(const std::string &text,
                                   const std::string &what);

    /** parse() over a file's contents. @throws FatalError. */
    static DeviceCalibration fromFile(const std::string &path);

    /** Canonical qcal rendering; parse(toText()) round-trips exactly
     *  (doubles are printed with full precision, edges sorted). */
    std::string toText() const;

    /** Content fingerprint: equal exactly when every priced field is
     *  equal. Mixed into the service's config fingerprint, this is
     *  what makes a calibration update a cache-key change. */
    std::uint64_t fingerprint() const;

    bool operator==(const DeviceCalibration &o) const;
};

/** One registered backend: a topology plus its current calibration. */
struct Device
{
    std::string name;
    Topology topology;
    /** Null = uncalibrated (library-constant pricing). */
    std::shared_ptr<const DeviceCalibration> calibration;
    /** Bumped on every setCalibration; 0 = never calibrated. */
    std::uint64_t calVersion = 0;
};

/** Cheap listing row (no topology copy); feeds /devices and /metrics. */
struct DeviceInfo
{
    std::string name;
    int units = 0;
    int edges = 0;
    bool calibrated = false;
    std::uint64_t calVersion = 0;
};

/**
 * Thread-safe name -> Device map. Default-constructed with the zoo
 * described in the file comment; customs join via add()/addFromFile().
 */
class DeviceRegistry
{
  public:
    /** Registers the default zoo. */
    DeviceRegistry();

    /** Sorted device names. */
    std::vector<std::string> names() const;

    /** Listing rows, sorted by name. */
    std::vector<DeviceInfo> info() const;

    bool has(const std::string &name) const;

    /** A snapshot of the device (topology and calibration are copies /
     *  shared immutables -- safe to use without the registry lock).
     *  @throws FatalError for an unknown name, listing valid ones. */
    Device get(const std::string &name) const;

    /** Register a custom backend. @throws FatalError on a duplicate
     *  name or an empty one. */
    void add(const std::string &name, Topology topo);

    /** Register a custom backend from a topology file (see
     *  Topology::fromFile); the device is named @p name regardless of
     *  the file's basename. @throws FatalError. */
    void addFromFile(const std::string &name, const std::string &path);

    /**
     * Install a calibration on a registered device and return its new
     * calVersion. @throws FatalError when the device is unknown, the
     * record's unit count does not match the topology, or the record
     * names a different device.
     */
    std::uint64_t setCalibration(const std::string &name,
                                 DeviceCalibration cal);

  private:
    mutable std::mutex mu_;
    std::map<std::string, Device> devices_;
};

} // namespace qompress

#endif // QOMPRESS_ARCH_DEVICE_HH
