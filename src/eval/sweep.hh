/**
 * @file
 * Reusable evaluation harness: compile (family x size x strategy)
 * grids and return structured records. Shared by the figure benches
 * and by test_paper_claims.cc, which turns the paper's qualitative
 * claims into executable assertions.
 */

#ifndef QOMPRESS_EVAL_SWEEP_HH
#define QOMPRESS_EVAL_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "arch/topology.hh"
#include "compiler/pipeline.hh"
#include "service/compiler_service.hh"

namespace qompress {

/** One compiled data point of a sweep. */
struct SweepRecord
{
    std::string family;
    std::string strategy;
    int requestedSize = 0;
    int qubits = 0;
    Metrics metrics;
    int numCompressions = 0;
    /** Index into SweepSpec::paramGrid; -1 when no grid was given. */
    int paramRow = -1;
};

/** Sweep configuration. */
struct SweepSpec
{
    std::vector<std::string> families;   ///< registry names
    std::vector<int> sizes;              ///< requested qubit budgets
    std::vector<std::string> strategies; ///< strategy registry names
    GateLibrary library;                 ///< calibration to use
    CompilerConfig config;               ///< pipeline knobs
    /** Device factory per circuit (defaults to a fitted grid). */
    std::function<Topology(const Circuit &)> device;
    /**
     * Lanes for the cell fan-out (one compile per family x size x
     * strategy cell): < 0 (the default) inherits config.threads;
     * otherwise the CompilerConfig::threads convention (0 = process
     * default, 1 = serial, N = exactly N lanes). Records are
     * bit-identical at every lane count.
     */
    int threads = -1;

    /**
     * Optional parameter grid: when non-empty, every (family, size)
     * instance is expanded into one variant per row, rebinding the
     * circuit's rotation angles positionally (bindParams semantics:
     * slot k takes row[k % row.size()]). All variants of an instance
     * share one structural fingerprint, so rows after the first are
     * served by the service's template tier (an O(gates) rebind) --
     * this is the angle-sweep fast path. Rows with differing values
     * produce distinct records tagged with SweepRecord::paramRow.
     */
    std::vector<std::vector<double>> paramGrid;

    /** When set, receives a snapshot of the sweep-local service's
     *  counters after the batch drains (template/exact hit rates --
     *  how much of the grid was served without a full compile). */
    ServiceStats *serviceStats = nullptr;
};

/**
 * Run the sweep; instances whose snapped qubit count repeats within a
 * family are deduplicated, and strategies that cannot fit a circuit
 * are skipped (recorded with qubits = 0).
 *
 * The cell grid is submitted as one CompilerService batch over
 * spec.threads lanes; the service's context pool reuses warmed
 * distance fields across cells with the same device/library/config
 * pricing, and handles come back in request order — output ordering
 * and contents are identical at every lane count. Compiles running
 * inside the sweep are on pool workers, so a strategy's own fan-out
 * (ec, portfolio) degrades to inline execution rather than
 * oversubscribing the pool. runSweep is therefore a thin shim over
 * CompilerService; callers wanting cross-sweep artifact memoization
 * should drive a longer-lived service directly.
 */
std::vector<SweepRecord> runSweep(const SweepSpec &spec);

/** Records for one (family, strategy), ordered by size. */
std::vector<SweepRecord>
filterSweep(const std::vector<SweepRecord> &records,
            const std::string &family, const std::string &strategy);

/**
 * Per-size metric ratio of @p strategy over @p baseline for one
 * family (only sizes where both compiled).
 */
std::vector<double>
sweepRatios(const std::vector<SweepRecord> &records,
            const std::string &family, const std::string &strategy,
            const std::string &baseline,
            const std::function<double(const Metrics &)> &metric);

} // namespace qompress

#endif // QOMPRESS_EVAL_SWEEP_HH
