#include "eval/sweep.hh"

#include <optional>
#include <set>

#include "circuits/registry.hh"
#include "common/error.hh"
#include "common/thread_pool.hh"
#include "strategies/strategy.hh"

namespace qompress {

namespace {

/** One materialized (family, size) circuit instance of a sweep. */
struct SweepInstance
{
    const std::string *family;
    int requestedSize;
    Circuit circuit;
    Topology device;
};

/** One (instance, strategy) cell, indexing its output record slot. */
struct SweepCell
{
    const SweepInstance *inst;
    const std::string *strategy;
};

} // namespace

std::vector<SweepRecord>
runSweep(const SweepSpec &spec)
{
    QFATAL_IF(spec.families.empty() || spec.sizes.empty() ||
              spec.strategies.empty(),
              "sweep needs families, sizes, and strategies");
    auto make_device = spec.device
        ? spec.device
        : [](const Circuit &c) { return Topology::grid(c.numQubits()); };

    // Phase 1 (serial): materialize every circuit instance in the
    // original family-major, size-ascending order, applying the
    // min-size and snapped-size-dedup rules. Circuit generation is
    // cheap next to the compiles; doing it up front yields a flat,
    // stable cell list the pool can fan out over.
    std::vector<SweepInstance> instances;
    for (const auto &family_name : spec.families) {
        const auto &family = benchmarkFamily(family_name);
        std::set<int> seen_sizes; // families snap sizes downward
        for (int size : spec.sizes) {
            if (size < family.minQubits)
                continue;
            Circuit circuit = family.make(size);
            if (!seen_sizes.insert(circuit.numQubits()).second)
                continue;
            Topology device = make_device(circuit);
            instances.push_back({&family_name, size, std::move(circuit),
                                 std::move(device)});
        }
    }

    // Phase 2: flatten to (instance x strategy) cells — the same
    // iteration order the serial loop used — and compile each cell
    // into its pre-sized record slot, so the output ordering is
    // identical at every lane count.
    std::vector<SweepCell> cells;
    cells.reserve(instances.size() * spec.strategies.size());
    for (const auto &inst : instances)
        for (const auto &strategy_name : spec.strategies)
            cells.push_back({&inst, &strategy_name});

    std::vector<SweepRecord> records(cells.size());

    // Per-lane state: one CompileContext per lane, rebuilt only when
    // the lane moves to a cell with a different device (the expanded
    // graph and cost model are per-topology). The cache invariant —
    // caching never changes what a compile emits — keeps records
    // independent of how cells partition across lanes.
    struct LaneState
    {
        const Topology *device = nullptr;
        std::optional<CompileContext> ctx;
    };
    const int want =
        spec.threads >= 0 ? spec.threads : spec.config.threads;
    std::optional<ThreadPool> own_pool;
    ThreadPool *pool = ThreadPool::forRequest(want, own_pool);
    std::vector<LaneState> lanes(pool ? pool->numThreads() : 1);

    auto compile_cell = [&](std::size_t i, int lane) {
        const SweepCell &cell = cells[i];
        LaneState &ls = lanes[static_cast<std::size_t>(lane)];
        if (ls.device != &cell.inst->device) {
            ls.ctx.emplace(cell.inst->device, spec.library, spec.config);
            ls.device = &cell.inst->device;
        }
        SweepRecord rec;
        rec.family = *cell.inst->family;
        rec.strategy = *cell.strategy;
        rec.requestedSize = cell.inst->requestedSize;
        try {
            const auto res =
                makeStrategy(*cell.strategy)
                    ->compile(cell.inst->circuit, cell.inst->device,
                              spec.library, spec.config, &*ls.ctx);
            rec.qubits = cell.inst->circuit.numQubits();
            rec.metrics = res.metrics;
            rec.numCompressions =
                static_cast<int>(res.compressions.size());
        } catch (const FatalError &) {
            rec.qubits = 0; // did not fit
        }
        records[i] = std::move(rec);
    };

    if (pool) {
        pool->parallelFor(0, cells.size(), compile_cell);
    } else {
        for (std::size_t i = 0; i < cells.size(); ++i)
            compile_cell(i, 0);
    }
    return records;
}

std::vector<SweepRecord>
filterSweep(const std::vector<SweepRecord> &records,
            const std::string &family, const std::string &strategy)
{
    std::vector<SweepRecord> out;
    for (const auto &r : records) {
        if (r.family == family && r.strategy == strategy &&
            r.qubits > 0) {
            out.push_back(r);
        }
    }
    return out;
}

std::vector<double>
sweepRatios(const std::vector<SweepRecord> &records,
            const std::string &family, const std::string &strategy,
            const std::string &baseline,
            const std::function<double(const Metrics &)> &metric)
{
    const auto xs = filterSweep(records, family, strategy);
    const auto bs = filterSweep(records, family, baseline);
    std::vector<double> out;
    for (const auto &x : xs) {
        for (const auto &b : bs) {
            if (b.requestedSize == x.requestedSize) {
                const double denom = metric(b.metrics);
                if (denom > 0.0)
                    out.push_back(metric(x.metrics) / denom);
                break;
            }
        }
    }
    return out;
}

} // namespace qompress
