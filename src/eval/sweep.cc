#include "eval/sweep.hh"

#include <set>

#include "circuits/registry.hh"
#include "common/error.hh"
#include "ir/passes.hh"
#include "service/compiler_service.hh"

namespace qompress {

namespace {

/** One materialized (family, size) circuit instance of a sweep. */
struct SweepInstance
{
    const std::string *family;
    int requestedSize;
    int paramRow; ///< -1 when the sweep has no parameter grid
    Circuit circuit;
    Topology device;
};

} // namespace

std::vector<SweepRecord>
runSweep(const SweepSpec &spec)
{
    QFATAL_IF(spec.families.empty() || spec.sizes.empty() ||
              spec.strategies.empty(),
              "sweep needs families, sizes, and strategies");
    for (const auto &row : spec.paramGrid)
        QFATAL_IF(row.empty(), "sweep parameter grid has an empty row");
    auto make_device = spec.device
        ? spec.device
        : [](const Circuit &c) { return Topology::grid(c.numQubits()); };

    // Phase 1 (serial): materialize every circuit instance in the
    // original family-major, size-ascending order, applying the
    // min-size and snapped-size-dedup rules. Circuit generation is
    // cheap next to the compiles; doing it up front yields a flat,
    // stable cell list the service can fan out over.
    std::vector<SweepInstance> instances;
    for (const auto &family_name : spec.families) {
        const auto &family = benchmarkFamily(family_name);
        std::set<int> seen_sizes; // families snap sizes downward
        for (int size : spec.sizes) {
            if (size < family.minQubits)
                continue;
            Circuit circuit = family.make(size);
            if (!seen_sizes.insert(circuit.numQubits()).second)
                continue;
            Topology device = make_device(circuit);
            if (spec.paramGrid.empty()) {
                instances.push_back({&family_name, size, -1,
                                     std::move(circuit),
                                     std::move(device)});
                continue;
            }
            // Parameter grid: one variant per row, rebinding the base
            // instance's angles positionally. Variants share the base
            // circuit's structure, so every row past the one that
            // compiles first is a template-tier rebind, not a compile.
            for (std::size_t row = 0; row < spec.paramGrid.size();
                 ++row) {
                instances.push_back({&family_name, size,
                                     static_cast<int>(row),
                                     bindParams(circuit,
                                                spec.paramGrid[row]),
                                     device});
            }
        }
    }

    // Phase 2: flatten to (instance x strategy) cells in the same
    // iteration order the serial loop used, and push the whole grid
    // through a sweep-local CompilerService batch. The service's
    // context pool plays the old per-lane-context role, but keyed by
    // content instead of lane: any cell over the same device/library/
    // config pricing reuses warmed distance fields, whichever lane
    // compiles it. Handles come back in request order, so records are
    // bit-identical at every lane count (and, by the cache invariant,
    // at every cache configuration).
    std::vector<CompileRequest> reqs;
    struct CellRef
    {
        const SweepInstance *inst;
        const std::string *strategy;
    };
    std::vector<CellRef> cells;
    reqs.reserve(instances.size() * spec.strategies.size());
    cells.reserve(reqs.capacity());
    for (const auto &inst : instances) {
        for (const auto &strategy_name : spec.strategies) {
            reqs.push_back(CompileRequest::forCircuit(
                inst.circuit, inst.device, strategy_name, spec.config,
                spec.library));
            cells.push_back({&inst, &strategy_name});
        }
    }

    ServiceOptions sopts;
    // A figure sweep has no duplicate cells, so cap the memo at the
    // grid size (duplicate specs across repeated runSweep calls are
    // the caller's to memoize with a longer-lived service). Templates
    // sized likewise so an angle grid never thrashes its own tier.
    sopts.cacheCapacity = reqs.size();
    sopts.templateCacheCapacity = reqs.size();
    const int want =
        spec.threads >= 0 ? spec.threads : spec.config.threads;
    CompilerService service(sopts);
    auto handles = service.submitBatch(std::move(reqs), want);

    std::vector<SweepRecord> records(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SweepRecord rec;
        rec.family = *cells[i].inst->family;
        rec.strategy = *cells[i].strategy;
        rec.requestedSize = cells[i].inst->requestedSize;
        rec.paramRow = cells[i].inst->paramRow;
        try {
            const CompileArtifact res = handles[i].get();
            rec.qubits = cells[i].inst->circuit.numQubits();
            rec.metrics = res->metrics;
            rec.numCompressions =
                static_cast<int>(res->compressions.size());
        } catch (const FatalError &) {
            rec.qubits = 0; // did not fit
        }
        records[i] = std::move(rec);
    }
    if (spec.serviceStats)
        *spec.serviceStats = service.stats();
    return records;
}

std::vector<SweepRecord>
filterSweep(const std::vector<SweepRecord> &records,
            const std::string &family, const std::string &strategy)
{
    std::vector<SweepRecord> out;
    for (const auto &r : records) {
        if (r.family == family && r.strategy == strategy &&
            r.qubits > 0) {
            out.push_back(r);
        }
    }
    return out;
}

std::vector<double>
sweepRatios(const std::vector<SweepRecord> &records,
            const std::string &family, const std::string &strategy,
            const std::string &baseline,
            const std::function<double(const Metrics &)> &metric)
{
    const auto xs = filterSweep(records, family, strategy);
    const auto bs = filterSweep(records, family, baseline);
    std::vector<double> out;
    for (const auto &x : xs) {
        for (const auto &b : bs) {
            if (b.requestedSize == x.requestedSize) {
                const double denom = metric(b.metrics);
                if (denom > 0.0)
                    out.push_back(metric(x.metrics) / denom);
                break;
            }
        }
    }
    return out;
}

} // namespace qompress
