#include "eval/sweep.hh"

#include <set>

#include "circuits/registry.hh"
#include "common/error.hh"
#include "strategies/strategy.hh"

namespace qompress {

std::vector<SweepRecord>
runSweep(const SweepSpec &spec)
{
    QFATAL_IF(spec.families.empty() || spec.sizes.empty() ||
              spec.strategies.empty(),
              "sweep needs families, sizes, and strategies");
    auto make_device = spec.device
        ? spec.device
        : [](const Circuit &c) { return Topology::grid(c.numQubits()); };

    std::vector<SweepRecord> records;
    for (const auto &family_name : spec.families) {
        const auto &family = benchmarkFamily(family_name);
        std::set<int> seen_sizes; // families snap sizes downward
        for (int size : spec.sizes) {
            if (size < family.minQubits)
                continue;
            const Circuit circuit = family.make(size);
            if (!seen_sizes.insert(circuit.numQubits()).second)
                continue;
            const Topology device = make_device(circuit);
            for (const auto &strategy_name : spec.strategies) {
                SweepRecord rec;
                rec.family = family_name;
                rec.strategy = strategy_name;
                rec.requestedSize = size;
                try {
                    const auto res =
                        makeStrategy(strategy_name)
                            ->compile(circuit, device, spec.library,
                                      spec.config);
                    rec.qubits = circuit.numQubits();
                    rec.metrics = res.metrics;
                    rec.numCompressions =
                        static_cast<int>(res.compressions.size());
                } catch (const FatalError &) {
                    rec.qubits = 0; // did not fit
                }
                records.push_back(std::move(rec));
            }
        }
    }
    return records;
}

std::vector<SweepRecord>
filterSweep(const std::vector<SweepRecord> &records,
            const std::string &family, const std::string &strategy)
{
    std::vector<SweepRecord> out;
    for (const auto &r : records) {
        if (r.family == family && r.strategy == strategy &&
            r.qubits > 0) {
            out.push_back(r);
        }
    }
    return out;
}

std::vector<double>
sweepRatios(const std::vector<SweepRecord> &records,
            const std::string &family, const std::string &strategy,
            const std::string &baseline,
            const std::function<double(const Metrics &)> &metric)
{
    const auto xs = filterSweep(records, family, strategy);
    const auto bs = filterSweep(records, family, baseline);
    std::vector<double> out;
    for (const auto &x : xs) {
        for (const auto &b : bs) {
            if (b.requestedSize == x.requestedSize) {
                const double denom = metric(b.metrics);
                if (denom > 0.0)
                    out.push_back(metric(x.metrics) / denom);
                break;
            }
        }
    }
    return out;
}

} // namespace qompress
