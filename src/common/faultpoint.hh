/**
 * @file
 * Deterministic fault injection for syscall-shaped failure seams.
 *
 * A *fault point* is a named site in library code where an I/O call
 * can be made to fail on purpose:
 *
 *     const FaultFire f = QFAULT_POINT("store.pwrite");
 *     if (f.fired) { errno = f.err; return -1; }
 *     return ::pwrite(...);
 *
 * When no injector is installed the check is a single relaxed atomic
 * load and one predictable branch -- no allocation, no lock, no
 * string work -- so fault points are safe to leave in production hot
 * paths (the persist_* bench gates hold them to that).
 *
 * When a test installs a FaultInjector, every check routes through it:
 * the injector counts calls per point name (so tests can discover how
 * many syscalls an operation performs before deciding where to cut)
 * and fires the specs armed for that point. A spec can fire on the
 * Nth call, with seeded probability p, or on every call, optionally
 * capped by a total fire limit; what it injects is an errno-style
 * failure (EIO, ENOSPC, ...), an EINTR, or a short read/write.
 * Multiple specs per point compose, so "short write, then hard
 * failure" -- the classic torn-append shape -- is one arm() sequence.
 *
 * Determinism: the probability path draws from the injector's own
 * seeded Rng under its lock, so a (seed, traffic) pair replays the
 * same fault schedule every run. There is at most one installed
 * injector process-wide; tests hold it in a ScopedFaultInjection so
 * an assertion failure cannot leak an armed injector into later
 * tests.
 *
 * Registry of points currently wired (all in service/artifact_store):
 *   store.open store.fstat store.pread store.pwrite store.fsync
 *   store.ftruncate store.rename store.unlink store.close
 * docs/ARCHITECTURE.md ("Failure domains & degradation") keeps the
 * authoritative table.
 */

#ifndef QOMPRESS_COMMON_FAULTPOINT_HH
#define QOMPRESS_COMMON_FAULTPOINT_HH

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"

namespace qompress {

/** What an armed fault injects at the call site. */
enum class FaultKind : std::uint8_t
{
    Fail,    ///< the call fails with FaultSpec::err set as errno
    Eintr,   ///< the call fails with EINTR (callers should retry)
    ShortIo, ///< a read/write transfers only FaultSpec::bytes bytes
};

/** One armed fault: what to inject and when to fire. */
struct FaultSpec
{
    FaultKind kind = FaultKind::Fail;

    /** errno delivered by Fail (EIO, ENOSPC, EBADF, ...). */
    int err = EIO;

    /** Bytes a ShortIo transfer is clipped to (>= 1 keeps the call
     *  "successful but short", exercising the caller's retry loop). */
    std::uint64_t bytes = 1;

    /** Fire only on the @p nth call to the point (1-based) since the
     *  injector was installed/reset; 0 = every call, gated by
     *  @ref probability instead. */
    std::uint64_t nth = 0;

    /** With nth == 0, fire with this probability per call (seeded,
     *  deterministic). 1.0 = always. */
    double probability = 1.0;

    /** Total fires allowed for this spec; 0 = unlimited. Lets "EINTR
     *  every call" arms terminate against retry loops. */
    std::uint64_t limit = 0;
};

/** Result of one fault-point check. Default state = nothing fired. */
struct FaultFire
{
    bool fired = false;
    FaultKind kind = FaultKind::Fail;
    int err = 0;
    std::uint64_t bytes = 0;
};

/** See the file comment. All methods are thread-safe. */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed = 0x5eed) : rng_(seed) {}

    /** Add @p spec to the point's armed list (specs compose; the
     *  first matching spec per call wins, in arm order). */
    void arm(const std::string &point, FaultSpec spec);

    /** Drop every spec armed on @p point (counters survive). */
    void disarm(const std::string &point);

    /** Drop all specs and zero every per-point counter. */
    void reset();

    /** Calls observed at @p point while this injector was installed
     *  (counted whether or not anything fired -- the discovery knob
     *  the fault-matrix tests size their sweeps with). */
    std::uint64_t calls(const std::string &point) const;

    /** Faults actually delivered at @p point. */
    std::uint64_t fires(const std::string &point) const;

    /** Every point name observed so far (sorted). */
    std::vector<std::string> touchedPoints() const;

    /** Make this the process-wide injector / remove it again. At most
     *  one may be installed; prefer ScopedFaultInjection in tests. */
    void install();
    static void uninstall();

    /** The armed-path check behind QFAULT_POINT; call via the macro. */
    FaultFire check(const char *point);

  private:
    struct PointState
    {
        std::vector<FaultSpec> specs;
        std::vector<std::uint64_t> specFires; ///< parallel to specs
        std::uint64_t calls = 0;
        std::uint64_t fires = 0;
    };

    mutable std::mutex mu_;
    Rng rng_;
    std::unordered_map<std::string, PointState> points_;
};

namespace detail {
/** nullptr = disarmed (the common case). Release/acquire so an
 *  installed injector's armed specs are visible to every thread that
 *  observes the pointer. */
extern std::atomic<FaultInjector *> g_faultInjector;
} // namespace detail

/**
 * The hot-path check: one atomic load and one branch when disarmed.
 * @p point must be a string literal (it is only read on the armed
 * slow path).
 */
inline FaultFire
faultPointCheck(const char *point)
{
    FaultInjector *inj =
        detail::g_faultInjector.load(std::memory_order_acquire);
    if (!inj)
        return FaultFire{};
    return inj->check(point);
}

/** RAII install/uninstall so a throwing test cannot leak an armed
 *  injector into the rest of the process. */
class ScopedFaultInjection
{
  public:
    explicit ScopedFaultInjection(FaultInjector &inj) { inj.install(); }
    ~ScopedFaultInjection() { FaultInjector::uninstall(); }

    ScopedFaultInjection(const ScopedFaultInjection &) = delete;
    ScopedFaultInjection &operator=(const ScopedFaultInjection &) = delete;
};

} // namespace qompress

/** Named fault point; evaluates to a qompress::FaultFire. */
#define QFAULT_POINT(point) ::qompress::faultPointCheck(point)

#endif // QOMPRESS_COMMON_FAULTPOINT_HH
