/**
 * @file
 * Error-reporting helpers in the spirit of gem5's panic()/fatal().
 *
 * panicIf() flags internal invariant violations (compiler bugs);
 * fatalIf() flags unusable user input (bad configuration, impossible
 * requests). Both throw typed exceptions so tests can assert on them.
 */

#ifndef QOMPRESS_COMMON_ERROR_HH
#define QOMPRESS_COMMON_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace qompress {

/** Thrown when an internal invariant is violated (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown when the user asked for something impossible. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

template <typename Exc, typename... Args>
[[noreturn]] inline void
raise(const char *kind, const char *file, int line, Args &&...args)
{
    std::ostringstream os;
    os << kind << " (" << file << ":" << line << "): ";
    (os << ... << std::forward<Args>(args));
    throw Exc(os.str());
}

} // namespace detail

} // namespace qompress

/** Abort with a PanicError; use for "should never happen" conditions. */
#define QPANIC(...) \
    ::qompress::detail::raise<::qompress::PanicError>( \
        "panic", __FILE__, __LINE__, __VA_ARGS__)

/** Abort with a FatalError; use for invalid user requests. */
#define QFATAL(...) \
    ::qompress::detail::raise<::qompress::FatalError>( \
        "fatal", __FILE__, __LINE__, __VA_ARGS__)

/** Panic when @p cond holds. */
#define QPANIC_IF(cond, ...) \
    do { if (cond) { QPANIC(__VA_ARGS__); } } while (0)

/** Fatal error when @p cond holds. */
#define QFATAL_IF(cond, ...) \
    do { if (cond) { QFATAL(__VA_ARGS__); } } while (0)

#endif // QOMPRESS_COMMON_ERROR_HH
