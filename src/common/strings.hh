/**
 * @file
 * Small string formatting helpers shared by reports and dumps.
 */

#ifndef QOMPRESS_COMMON_STRINGS_HH
#define QOMPRESS_COMMON_STRINGS_HH

#include <string>
#include <vector>

namespace qompress {

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Join the elements of @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Split @p s on character @p sep (empty fields preserved). */
std::vector<std::string> split(const std::string &s, char sep);

/** Render a double with @p digits significant digits, trimming zeros. */
std::string formatSig(double v, int digits = 4);

} // namespace qompress

#endif // QOMPRESS_COMMON_STRINGS_HH
