#include "common/faultpoint.hh"

#include <algorithm>

#include "common/error.hh"

namespace qompress {

namespace detail {
std::atomic<FaultInjector *> g_faultInjector{nullptr};
} // namespace detail

void
FaultInjector::arm(const std::string &point, FaultSpec spec)
{
    QFATAL_IF(spec.kind == FaultKind::ShortIo && spec.bytes == 0,
              "ShortIo faults must transfer at least one byte (bytes=0 "
              "would turn retry loops into spins); use Fail instead");
    std::lock_guard<std::mutex> lk(mu_);
    PointState &st = points_[point];
    st.specs.push_back(spec);
    st.specFires.push_back(0);
}

void
FaultInjector::disarm(const std::string &point)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = points_.find(point);
    if (it == points_.end())
        return;
    it->second.specs.clear();
    it->second.specFires.clear();
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    points_.clear();
}

std::uint64_t
FaultInjector::calls(const std::string &point) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = points_.find(point);
    return it == points_.end() ? 0 : it->second.calls;
}

std::uint64_t
FaultInjector::fires(const std::string &point) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = points_.find(point);
    return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string>
FaultInjector::touchedPoints() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> names;
    names.reserve(points_.size());
    for (const auto &entry : points_)
        names.push_back(entry.first);
    std::sort(names.begin(), names.end());
    return names;
}

void
FaultInjector::install()
{
    FaultInjector *expected = nullptr;
    QPANIC_IF(!detail::g_faultInjector.compare_exchange_strong(
                  expected, this, std::memory_order_release,
                  std::memory_order_relaxed),
              "a FaultInjector is already installed");
}

void
FaultInjector::uninstall()
{
    detail::g_faultInjector.store(nullptr, std::memory_order_release);
}

FaultFire
FaultInjector::check(const char *point)
{
    std::lock_guard<std::mutex> lk(mu_);
    PointState &st = points_[point];
    ++st.calls;
    for (std::size_t i = 0; i < st.specs.size(); ++i) {
        const FaultSpec &spec = st.specs[i];
        if (spec.limit != 0 && st.specFires[i] >= spec.limit)
            continue;
        if (spec.nth != 0) {
            if (st.calls != spec.nth)
                continue;
        } else if (spec.probability < 1.0 &&
                   rng_.nextDouble() >= spec.probability) {
            continue;
        }
        ++st.specFires[i];
        ++st.fires;
        FaultFire fire;
        fire.fired = true;
        fire.kind = spec.kind;
        fire.err = spec.kind == FaultKind::Eintr ? EINTR : spec.err;
        fire.bytes = spec.bytes;
        return fire;
    }
    return FaultFire{};
}

} // namespace qompress
