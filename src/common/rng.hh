/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small xoshiro256** implementation so every experiment in the repo is
 * reproducible across platforms and standard-library versions (std::
 * distributions are not bit-stable across implementations).
 */

#ifndef QOMPRESS_COMMON_RNG_HH
#define QOMPRESS_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace qompress {

/**
 * xoshiro256** PRNG with convenience helpers.
 *
 * Satisfies UniformRandomBitGenerator so it can also feed std::shuffle.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (splitmix64-expanded). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextUint(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int nextInt(int lo, int hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal variate (Box-Muller). */
    double nextGaussian();

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p = 0.5);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextUint(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** A random k-subset of {0, ..., n-1} (order unspecified). */
    std::vector<int> sample(int n, int k);

  private:
    std::uint64_t s_[4];
    bool haveGauss_ = false;
    double gauss_ = 0.0;
};

} // namespace qompress

#endif // QOMPRESS_COMMON_RNG_HH
