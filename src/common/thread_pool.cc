#include "common/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/error.hh"

namespace qompress {

namespace {

/** Set while a thread is draining parallelFor work — for workers the
 *  whole loop, for the calling thread its lane-0 drain. Read by
 *  onWorkerThread() so nested parallelFor calls degrade to inline
 *  execution: from a worker to avoid deadlocking its own pool, from
 *  the caller so a nested sweep can never run concurrently with the
 *  outer sweep's lanes (which would break per-lane scratch
 *  exclusivity). */
thread_local bool t_on_worker = false;

} // namespace

ThreadPool::ThreadPool(int threads)
    : threads_(threads < 1 ? 1 : threads)
{
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        QPANIC_IF(stopping_, "ThreadPool: submit after shutdown");
        queue_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    t_on_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task(); // packaged_task-style wrappers capture their own errors
    }
}

void
ThreadPool::parallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t i, int lane)> &fn)
{
    if (begin >= end)
        return;

    // Inline paths: trivial range, no workers, or already on a worker
    // (nested fan-out would block a lane on work only that lane can
    // run; running inline is always correct because lanes only gate
    // scratch-state aliasing, not results).
    if (end - begin == 1 || workers_.empty() || t_on_worker) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i, 0);
        return;
    }

    struct Shared
    {
        std::atomic<std::size_t> next;
        std::mutex err_mu;
        std::exception_ptr first_error;
    };
    auto shared = std::make_shared<Shared>();
    shared->next.store(begin, std::memory_order_relaxed);

    auto drain = [shared, end, &fn](int lane) {
        for (;;) {
            // Stop grabbing work once any lane failed: remaining
            // indices are abandoned, matching "first exception wins".
            {
                std::lock_guard<std::mutex> lock(shared->err_mu);
                if (shared->first_error)
                    return;
            }
            const std::size_t i =
                shared->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= end)
                return;
            try {
                fn(i, lane);
            } catch (...) {
                std::lock_guard<std::mutex> lock(shared->err_mu);
                if (!shared->first_error)
                    shared->first_error = std::current_exception();
                return;
            }
        }
    };

    // One drainer per worker lane; the caller drains as lane 0 with
    // the worker flag raised so its fn bodies count as "on a worker"
    // (nested sweeps inline). The futures double as the join barrier.
    // If submit() itself throws (task allocation failure), flag
    // first_error so already-running drainers stop grabbing work, then
    // fall through to the join below — fn and the caller's scratch
    // must outlive every enqueued drainer before we rethrow.
    const int lanes = threads_;
    std::vector<std::future<void>> joins;
    joins.reserve(static_cast<std::size_t>(lanes - 1));
    std::exception_ptr submit_error;
    try {
        for (int lane = 1; lane < lanes; ++lane)
            joins.push_back(submit([drain, lane] { drain(lane); }));
    } catch (...) {
        submit_error = std::current_exception();
        std::lock_guard<std::mutex> lock(shared->err_mu);
        if (!shared->first_error)
            shared->first_error = submit_error;
    }
    if (!submit_error) {
        t_on_worker = true;
        drain(0); // never throws; errors land in first_error
        t_on_worker = false;
    }
    for (auto &f : joins)
        f.get();

    if (submit_error)
        std::rethrow_exception(submit_error);
    if (shared->first_error)
        std::rethrow_exception(shared->first_error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

int
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("QOMPRESS_THREADS")) {
        try {
            const int n = std::stoi(env);
            if (n >= 1)
                return n;
        } catch (...) {
            // fall through to hardware_concurrency
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

bool
ThreadPool::onWorkerThread()
{
    return t_on_worker;
}

ThreadPool *
ThreadPool::forRequest(int threads, std::optional<ThreadPool> &own)
{
    const int want = threads > 0 ? threads : defaultThreadCount();
    if (want <= 1 || onWorkerThread()) {
        own.reset(); // don't keep a stale private pool's threads alive
        return nullptr;
    }
    if (want == defaultThreadCount()) {
        own.reset();
        return &global();
    }
    if (!own || own->numThreads() != want)
        own.emplace(want);
    return &*own;
}

} // namespace qompress
