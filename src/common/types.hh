/**
 * @file
 * Shared integral identifier types used across the library.
 */

#ifndef QOMPRESS_COMMON_TYPES_HH
#define QOMPRESS_COMMON_TYPES_HH

#include <cstdint>

namespace qompress {

/** Index of a logical (program) qubit in the input circuit. */
using QubitId = int;

/** Index of a physical computational unit (transmon) on the device. */
using UnitId = int;

/**
 * Index of a logical slot in the expanded interaction graph.
 *
 * Unit u contributes slots 2u (encode position 0) and 2u+1 (position 1);
 * see ExpandedGraph.
 */
using SlotId = int;

/** Marker for "no qubit / no slot". */
constexpr int kInvalid = -1;

/** Which encode position inside a unit a slot refers to. */
inline constexpr int slotPos(SlotId s) { return s & 1; }

/** The physical unit owning a slot. */
inline constexpr UnitId slotUnit(SlotId s) { return s >> 1; }

/** The slot id for @p unit at encode position @p pos (0 or 1). */
inline constexpr SlotId makeSlot(UnitId unit, int pos)
{
    return (unit << 1) | pos;
}

} // namespace qompress

#endif // QOMPRESS_COMMON_TYPES_HH
