#include "common/rng.hh"

#include <cmath>

#include "common/error.hh"

namespace qompress {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextUint(std::uint64_t bound)
{
    QPANIC_IF(bound == 0, "nextUint bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return v % bound;
}

int
Rng::nextInt(int lo, int hi)
{
    QPANIC_IF(lo > hi, "nextInt empty range");
    return lo + static_cast<int>(nextUint(
        static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (haveGauss_) {
        haveGauss_ = false;
        return gauss_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    gauss_ = r * std::sin(theta);
    haveGauss_ = true;
    return r * std::cos(theta);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::vector<int>
Rng::sample(int n, int k)
{
    QPANIC_IF(k > n || k < 0, "sample: invalid k=", k, " n=", n);
    std::vector<int> pool(n);
    for (int i = 0; i < n; ++i)
        pool[i] = i;
    shuffle(pool);
    pool.resize(k);
    return pool;
}

} // namespace qompress
