/**
 * @file
 * Aligned-column text tables and CSV emission for bench harnesses.
 *
 * Every bench binary reproduces a paper table or figure by printing rows;
 * TablePrinter keeps that output readable on a terminal and optionally
 * mirrors it to CSV for plotting.
 */

#ifndef QOMPRESS_COMMON_TABLE_HH
#define QOMPRESS_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace qompress {

/** Collects rows of strings and renders them with aligned columns. */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with padded columns to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV (no padding, comma separated, quoted as needed). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace qompress

#endif // QOMPRESS_COMMON_TABLE_HH
