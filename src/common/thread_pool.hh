/**
 * @file
 * A fixed-size, work-stealing-free thread pool shared across the
 * toolchain: the exhaustive strategy fans candidate compiles over it
 * and the statevector shards its complement-block loop on it.
 *
 * Design: one mutex-protected FIFO task queue, N-1 detachable worker
 * threads plus the calling thread (which always participates in
 * parallelFor), and first-exception propagation back to the caller.
 * There is deliberately no work stealing: tasks are coarse (whole
 * candidate compiles, whole block ranges), so a single queue keeps the
 * implementation small and the scheduling deterministic enough to
 * reason about.
 *
 * Thread-safety: submit() and parallelFor() may be called from any
 * thread that is not itself a pool worker; parallelFor() called *from*
 * a worker runs the range inline (no nested fan-out, no deadlock).
 */

#ifndef QOMPRESS_COMMON_THREAD_POOL_HH
#define QOMPRESS_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

namespace qompress {

class ThreadPool
{
  public:
    /**
     * Create a pool with @p threads total lanes of parallelism.
     *
     * Lane 0 is the calling thread (it participates in parallelFor),
     * so only threads-1 OS threads are spawned; threads <= 1 spawns
     * none and every operation runs inline.
     */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending submitted tasks are still drained. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (worker threads + the participating caller). */
    int numThreads() const { return threads_; }

    /**
     * Enqueue @p fn for execution on a worker; the returned future
     * delivers its result or rethrows its exception. With no workers
     * (numThreads() <= 1) the task runs inline before returning.
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<decltype(fn())>
    {
        using R = decltype(fn());
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return fut;
        }
        enqueue([task] { (*task)(); });
        return fut;
    }

    /**
     * Run fn(i, lane) for every i in [begin, end), spread across the
     * workers and the calling thread.
     *
     * @p lane is a stable slot in [0, numThreads()): *within one
     * parallelFor invocation* at most one thread runs with a given
     * lane at a time, so callers may index per-lane scratch state
     * owned by that invocation (e.g. one CompileContext per lane)
     * without locking. The guarantee does not span concurrent
     * parallelFor calls from different threads on the same pool —
     * scratch shared across invocations needs its own synchronization.
     * Iteration order within a lane is ascending but
     * interleaving across lanes is unspecified; the function must not
     * rely on cross-index ordering. The first exception thrown by any
     * invocation is rethrown on the calling thread after all lanes
     * drain. Calls from inside a pool worker run the range inline on
     * lane 0 (nested parallelism is not expanded).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t i, int lane)> &fn);

    /** The process-wide pool, sized by defaultThreadCount() on first
     *  use (thread-safe construction, never destroyed before exit). */
    static ThreadPool &global();

    /**
     * Lanes the global pool is built with: the QOMPRESS_THREADS
     * environment variable when set to a positive integer, else
     * std::thread::hardware_concurrency() (minimum 1).
     */
    static int defaultThreadCount();

    /** True when the current thread is a worker of *any* ThreadPool
     *  (used to keep nested parallelFor calls inline). */
    static bool onWorkerThread();

    /**
     * Resolve a lane-count request (the CompilerConfig::threads /
     * GrapeOptions::threads convention: 0 = process default, 1 =
     * serial, N = exactly N lanes) to a pool, or nullptr when the
     * caller should run serially.
     *
     * Returns nullptr when the request resolves to one lane or the
     * calling thread is already a pool worker (nested fan-out
     * degrades to inline execution); the global pool when the request
     * matches defaultThreadCount() (never force-sizes the global pool
     * to a mismatching request); otherwise a private pool constructed
     * into @p own. A still-live pool already in @p own is reused when
     * its lane count matches, so callers holding the optional across
     * hot iterations (e.g. GrapeWorkspace) spawn threads once; on any
     * other outcome @p own is reset so a stale private pool's idle
     * threads are not kept alive.
     */
    static ThreadPool *forRequest(int threads,
                                  std::optional<ThreadPool> &own);

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    int threads_;
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> queue_;
    bool stopping_ = false;
};

} // namespace qompress

#endif // QOMPRESS_COMMON_THREAD_POOL_HH
