#include "common/table.hh"

#include <algorithm>

#include "common/error.hh"

namespace qompress {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    QPANIC_IF(cells.size() != headers_.size(),
              "row has ", cells.size(), " cells, expected ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c]
               << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char c : s) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << quote(row[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace qompress
