#include "common/strings.hh"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace qompress {

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

std::string
formatSig(double v, int digits)
{
    std::ostringstream os;
    os.precision(digits);
    os << v;
    return os.str();
}

} // namespace qompress
