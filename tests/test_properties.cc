/**
 * @file
 * Property-based sweeps: for random circuits across strategies and
 * topologies, every compiled program must satisfy the structural
 * invariants (validator), produce sane metrics, and preserve the
 * occupancy story of its strategy. Also: failure injection proving
 * the validator and the equivalence checker actually reject broken
 * programs.
 */

#include <gtest/gtest.h>

#include "circuits/registry.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "compiler/pipeline.hh"
#include "sim/equivalence.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

const GateLibrary kLib;

Circuit
randomNative(int n, int gates, std::uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n, "rand");
    for (int i = 0; i < gates; ++i) {
        const int a = rng.nextInt(0, n - 1);
        int b = rng.nextInt(0, n - 2);
        if (b >= a)
            ++b;
        switch (rng.nextInt(0, 3)) {
          case 0:
            c.h(a);
            break;
          case 1:
            c.rz(rng.nextDouble(0.0, 3.0), a);
            break;
          default:
            c.cx(a, b);
            break;
        }
    }
    return c;
}

struct PropParam
{
    std::string strategy;
    std::string topology;
    std::uint64_t seed;
};

Topology
makeTopology(const std::string &name, int qubits)
{
    if (name == "grid")
        return Topology::grid(qubits);
    if (name == "ring")
        return Topology::ring(std::max(3, qubits));
    if (name == "line")
        return Topology::line(qubits);
    return Topology::heavyHex65();
}

class CompileProperties : public ::testing::TestWithParam<PropParam>
{
};

TEST_P(CompileProperties, InvariantsHold)
{
    const auto &[strategy_name, topo_name, seed] = GetParam();
    const int n = 10;
    const Circuit c = randomNative(n, 40, seed);
    const Topology topo = makeTopology(topo_name, n);
    const auto strategy = makeStrategy(strategy_name);
    const CompileResult res = strategy->compile(c, topo, kLib);

    // Structural validation (adjacency, classification, replay).
    validateCompiled(res.compiled, topo);

    // Metric sanity.
    EXPECT_GT(res.metrics.gateEps, 0.0);
    EXPECT_LE(res.metrics.gateEps, 1.0);
    EXPECT_GT(res.metrics.coherenceEps, 0.0);
    EXPECT_LE(res.metrics.coherenceEps, 1.0);
    EXPECT_NEAR(res.metrics.totalEps,
                res.metrics.gateEps * res.metrics.coherenceEps, 1e-12);
    EXPECT_GT(res.metrics.durationNs, 0.0);

    // Histogram accounts for every gate.
    int total = 0;
    for (int v : res.metrics.classHistogram)
        total += v;
    EXPECT_EQ(total, res.metrics.numGates);

    // Scheduled gates never overlap on a unit.
    const auto &gates = res.compiled.gates();
    std::vector<double> unit_busy_until(topo.numUnits(), 0.0);
    for (const auto &g : gates) {
        for (UnitId u : g.units()) {
            EXPECT_GE(g.start + 1e-9, unit_busy_until[u]) << g.str();
            unit_busy_until[u] = g.end();
        }
    }

    // All logical qubits alive in the final layout.
    const Layout &fin = res.compiled.finalLayout();
    for (QubitId q = 0; q < n; ++q)
        EXPECT_NE(fin.slotOf(q), kInvalid);

    // Non-FQ strategies keep occupancy static: encoded-unit count in
    // the final layout matches the initial one.
    if (strategy_name != "fq") {
        EXPECT_EQ(fin.numEncodedUnits(),
                  res.compiled.initialLayout().numEncodedUnits());
    }
}

std::vector<PropParam>
propParams()
{
    std::vector<PropParam> out;
    for (const char *s : {"qubit_only", "eqm", "rb", "awe", "pp"})
        for (const char *t : {"grid", "ring", "heavyhex"})
            for (std::uint64_t seed : {10ULL, 20ULL})
                out.push_back({s, t, seed});
    // FQ needs spare units; run it on the roomy topologies only.
    for (std::uint64_t seed : {10ULL, 20ULL}) {
        out.push_back({"fq", "grid", seed});
        out.push_back({"fq", "heavyhex", seed});
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompileProperties, ::testing::ValuesIn(propParams()),
    [](const ::testing::TestParamInfo<PropParam> &info) {
        return info.param.strategy + "_" + info.param.topology +
               "_s" + std::to_string(info.param.seed);
    });

TEST(CompileProperties, AllBenchmarkFamiliesValidateOnHeavyHex)
{
    for (const auto &family : benchmarkFamilies()) {
        const Circuit c = family.make(std::max(family.minQubits, 12));
        const Topology topo = Topology::heavyHex65();
        const auto res = makeStrategy("eqm")->compile(c, topo, kLib);
        validateCompiled(res.compiled, topo);
        EXPECT_GT(res.metrics.totalEps, 0.0) << family.name;
    }
}

TEST(CompileProperties, PenaltyKnobKeepsValidity)
{
    const Circuit c = randomNative(8, 30, 5);
    const Topology topo = Topology::grid(8);
    for (double penalty : {1.0, 1.5, 4.0}) {
        CompilerConfig cfg;
        cfg.throughQuquartPenalty = penalty;
        const auto res = makeStrategy("eqm")->compile(c, topo, kLib, cfg);
        validateCompiled(res.compiled, topo);
    }
}

// ---------------------------------------------------------------------
// Failure injection: the verification tooling must reject broken
// programs, otherwise green tests mean nothing.
// ---------------------------------------------------------------------

CompileResult
compileSmall()
{
    Circuit c(4, "inj");
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    c.cx(0, 3);
    return makeStrategy("eqm")->compile(c, Topology::line(4), kLib);
}

TEST(FailureInjection, ValidatorCatchesMisclassifiedGate)
{
    CompileResult res = compileSmall();
    bool corrupted = false;
    for (auto &g : res.compiled.mutableGates()) {
        if (g.logical == GateType::CX && g.slots.size() == 2 &&
            !ExpandedGraph::sameUnit(g.slots[0], g.slots[1])) {
            // Lie about the encoding state of the operands.
            g.cls = g.cls == PhysGateClass::CxBareBare
                ? PhysGateClass::CxEnc00 : PhysGateClass::CxBareBare;
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    EXPECT_THROW(validateCompiled(res.compiled, Topology::line(4)),
                 PanicError);
}

TEST(FailureInjection, ValidatorCatchesNonAdjacentGate)
{
    CompileResult res = compileSmall();
    for (auto &g : res.compiled.mutableGates()) {
        if (g.slots.size() == 2 &&
            !ExpandedGraph::sameUnit(g.slots[0], g.slots[1])) {
            // Retarget the second operand to a distant unit.
            g.slots[1] = makeSlot(3, slotPos(g.slots[1]));
            if (slotUnit(g.slots[0]) == 3)
                g.slots[1] = makeSlot(0, 0);
            break;
        }
    }
    EXPECT_THROW(validateCompiled(res.compiled, Topology::line(4)),
                 PanicError);
}

TEST(FailureInjection, EquivalenceCatchesDroppedGate)
{
    Circuit c(3, "dropped");
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    CompileResult res =
        makeStrategy("qubit_only")->compile(c, Topology::line(3), kLib);
    auto &gates = res.compiled.mutableGates();
    // Drop the last CX (keeps the program structurally valid).
    ASSERT_FALSE(gates.empty());
    gates.pop_back();
    const auto rep = checkEquivalence(c, res.compiled);
    EXPECT_FALSE(rep.ok);
}

TEST(FailureInjection, EquivalenceCatchesFlippedCxDirection)
{
    Circuit c(2, "flipped");
    c.h(0);
    c.cx(0, 1);
    CompileResult res =
        makeStrategy("qubit_only")->compile(c, Topology::line(2), kLib);
    for (auto &g : res.compiled.mutableGates()) {
        if (g.logical == GateType::CX)
            std::swap(g.slots[0], g.slots[1]);
    }
    const auto rep = checkEquivalence(c, res.compiled);
    EXPECT_FALSE(rep.ok);
}

TEST(FailureInjection, EquivalenceCatchesWrongRotationAngle)
{
    Circuit c(2, "angle");
    c.h(0);
    c.rz(0.7, 0);
    c.cx(0, 1);
    CompileResult res =
        makeStrategy("qubit_only")->compile(c, Topology::line(2), kLib);
    for (auto &g : res.compiled.mutableGates()) {
        if (g.logical == GateType::RZ)
            g.param = 0.9;
    }
    const auto rep = checkEquivalence(c, res.compiled);
    EXPECT_FALSE(rep.ok);
}

// ---------------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------------

TEST(EdgeCases, SingleQubitCircuit)
{
    Circuit c(1, "single");
    c.h(0);
    c.t(0);
    const auto res =
        makeStrategy("qubit_only")->compile(c, Topology::line(1), kLib);
    EXPECT_EQ(res.compiled.numGates(), 2);
    EXPECT_TRUE(checkEquivalence(c, res.compiled).ok);
}

TEST(EdgeCases, EmptyCircuit)
{
    Circuit c(3, "empty");
    const auto res =
        makeStrategy("qubit_only")->compile(c, Topology::grid(3), kLib);
    EXPECT_EQ(res.metrics.numRoutingGates, 0);
    EXPECT_DOUBLE_EQ(res.metrics.gateEps, 1.0);
    EXPECT_DOUBLE_EQ(res.metrics.durationNs, 0.0);
}

TEST(EdgeCases, OnlySingleQubitGates)
{
    Circuit c(4, "sq_only");
    for (int q = 0; q < 4; ++q) {
        c.h(q);
        c.t(q);
    }
    const auto res =
        makeStrategy("qubit_only")->compile(c, Topology::grid(4), kLib);
    EXPECT_EQ(res.metrics.numRoutingGates, 0);
    EXPECT_TRUE(checkEquivalence(c, res.compiled).ok);
}

TEST(EdgeCases, FullCapacityEqm)
{
    // 8 qubits on 4 units: every unit encoded.
    Circuit c(8, "full");
    for (int q = 0; q + 1 < 8; ++q)
        c.cx(q, q + 1);
    const auto res =
        makeStrategy("eqm")->compile(c, Topology::grid(4), kLib);
    EXPECT_EQ(res.metrics.numEncodedUnits, 4);
    EXPECT_TRUE(checkEquivalence(c, res.compiled).ok);
}

TEST(EdgeCases, FqRejectsWhenNoAncillaSpace)
{
    Circuit c(8, "tight");
    for (int q = 0; q + 1 < 8; ++q)
        c.cx(q, q + 1);
    // 4 units: FQ needs pairs + 2 ancillas = 6.
    EXPECT_THROW(
        makeStrategy("fq")->compile(c, Topology::grid(4), kLib),
        FatalError);
}

} // namespace
} // namespace qompress
