/**
 * @file
 * Tests for the extension features: router lookahead, custom
 * topologies (edge lists and files), heavy-hex equivalence, and
 * FQ router internals.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "circuits/arithmetic.hh"
#include "common/error.hh"
#include "sim/equivalence.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

const GateLibrary kLib;

TEST(Lookahead, CompiledCircuitsStayValidAndEquivalent)
{
    Circuit c(6, "look");
    c.h(0);
    c.cx(0, 3);
    c.cx(3, 5);
    c.cx(0, 5);
    c.cx(1, 4);
    c.cx(2, 5);
    c.cx(0, 4);
    const Topology topo = Topology::line(6);
    for (double w : {0.0, 0.25, 1.0}) {
        CompilerConfig cfg;
        cfg.lookaheadWeight = w;
        const auto res =
            makeStrategy("qubit_only")->compile(c, topo, kLib, cfg);
        validateCompiled(res.compiled, topo);
        EXPECT_TRUE(checkEquivalence(c, res.compiled).ok)
            << "lookahead " << w;
    }
}

TEST(Lookahead, CanReduceSwapCount)
{
    // A circuit where greedy routing without lookahead is suboptimal:
    // qubit 0 interacts with the far end twice in a row.
    const Circuit adder = cuccaroAdder(6); // 14 qubits
    const Topology topo = Topology::ring(14);
    CompilerConfig off;
    off.lookaheadWeight = 0.0;
    CompilerConfig on;
    on.lookaheadWeight = 0.5;
    const auto base =
        makeStrategy("qubit_only")->compile(adder, topo, kLib, off);
    const auto look =
        makeStrategy("qubit_only")->compile(adder, topo, kLib, on);
    // Lookahead must not be dramatically worse; usually it helps.
    EXPECT_LE(look.metrics.numRoutingGates,
              base.metrics.numRoutingGates + 5);
}

TEST(CustomTopology, FromEdgeList)
{
    const Topology t = Topology::fromEdgeList(
        {{0, 1}, {1, 2}, {2, 0}, {2, 3}}, "kite");
    EXPECT_EQ(t.numUnits(), 4);
    EXPECT_EQ(t.numEdges(), 4);
    EXPECT_EQ(t.name(), "kite");
    EXPECT_TRUE(t.adjacent(2, 3));
    EXPECT_FALSE(t.adjacent(0, 3));
}

TEST(CustomTopology, MinUnitsPadsIsolatedUnits)
{
    const Topology t =
        Topology::fromEdgeList({{0, 1}}, "padded", 5);
    EXPECT_EQ(t.numUnits(), 5);
}

TEST(CustomTopology, RejectsSelfCoupling)
{
    EXPECT_THROW(Topology::fromEdgeList({{1, 1}}, "bad"), FatalError);
}

TEST(CustomTopology, FromFileWithComments)
{
    const std::string path = "/tmp/qompress_topo_test.txt";
    {
        std::ofstream out(path);
        out << "# a T-shaped device\n";
        out << "0 1\n1 2 # inline comment\n";
        out << "\n";
        out << "1 3\n";
    }
    const Topology t = Topology::fromFile(path);
    EXPECT_EQ(t.numUnits(), 4);
    EXPECT_EQ(t.numEdges(), 3);
    EXPECT_TRUE(t.adjacent(1, 3));
    std::remove(path.c_str());
}

TEST(CustomTopology, FromFileErrors)
{
    EXPECT_THROW(Topology::fromFile("/nonexistent.topo"), FatalError);
    const std::string path = "/tmp/qompress_topo_bad.txt";
    {
        std::ofstream out(path);
        out << "0\n";
    }
    EXPECT_THROW(Topology::fromFile(path), FatalError);
    std::remove(path.c_str());
}

TEST(CustomTopology, CompilesOnCustomDevice)
{
    // A 5-unit star: everything routes through the hub.
    const Topology star = Topology::fromEdgeList(
        {{0, 1}, {0, 2}, {0, 3}, {0, 4}}, "star5");
    Circuit c(5, "star_circ");
    c.h(0);
    c.cx(1, 2);
    c.cx(3, 4);
    c.cx(1, 4);
    const auto res = makeStrategy("eqm")->compile(c, star, kLib);
    validateCompiled(res.compiled, star);
    EXPECT_TRUE(checkEquivalence(c, res.compiled).ok);
}

TEST(HeavyHex, EquivalenceOnRealTopology)
{
    // Functional check on the 65-unit heavy-hex device: the active
    // subset stays small enough to simulate.
    const Circuit adder = cuccaroAdder(3); // 8 qubits
    const Topology topo = Topology::heavyHex65();
    for (const char *s : {"qubit_only", "eqm", "rb"}) {
        const auto res = makeStrategy(s)->compile(adder, topo, kLib);
        const auto rep = checkEquivalence(adder, res.compiled);
        EXPECT_TRUE(rep.ok) << s << ": " << rep.message;
    }
}

TEST(FqInternals, OperandAtPositionOneGetsInternalSwapBeforeDecode)
{
    // Pair (0, 1): qubit 1 sits at position 1. A gate on qubit 1 with
    // an outside qubit forces SWAPin before DEC.
    Circuit c(6, "fq_pos1");
    c.cx(0, 1);  // makes (0,1) the heaviest pair
    c.cx(0, 1);
    c.cx(2, 3);
    c.cx(2, 3);
    c.cx(4, 5);
    c.cx(4, 5);
    c.cx(1, 4);  // external op with q1 (encoded at position 1)
    const auto res =
        makeStrategy("fq")->compile(c, Topology::grid(9), kLib);
    const auto hist = res.compiled.classHistogram();
    EXPECT_GT(hist[static_cast<int>(PhysGateClass::SwapInternal)], 0);
    EXPECT_GT(hist[static_cast<int>(PhysGateClass::Decode)], 0);
    EXPECT_TRUE(checkEquivalence(c, res.compiled).ok);
}

TEST(FqInternals, RoutingOnRingRequiresSwap4Chains)
{
    Circuit c(6, "fq_ring");
    c.cx(0, 1);
    c.cx(2, 3);
    c.cx(4, 5);
    c.cx(0, 4); // pairs are spread around the ring
    const Topology topo = Topology::ring(8);
    const auto res = makeStrategy("fq")->compile(c, topo, kLib);
    validateCompiled(res.compiled, topo);
    EXPECT_TRUE(checkEquivalence(c, res.compiled).ok);
}

} // namespace
} // namespace qompress
