/**
 * @file
 * Device-subsystem tests: the qcal calibration codec (round-trip and
 * the malformed-input suite -- always FatalError, never a panic), the
 * topology zoo generators (heavy-hex family, falcon27, named lookup,
 * hardened fromText/fromFile), the DeviceRegistry, calibration-driven
 * pricing, and the service-level invalidation contract.
 *
 * The load-bearing suites are the two differentials:
 *  - uncalibrated == today: a null calibration and a NEUTRAL uniform
 *    calibration (library-default T1s, zero readout, no edges) both
 *    compile bit-identically to the pre-device pipeline, for every
 *    standard strategy on ring/grid/heavyHex65;
 *  - a calibration update invalidates exactly the artifacts priced
 *    against it: the stale device misses, unrelated warm entries keep
 *    hitting, and the request-partition invariant holds throughout.
 *
 * Runs under the TSan CI job (labels: threads;service).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "arch/device.hh"
#include "arch/gate_library.hh"
#include "arch/topology.hh"
#include "circuits/bv.hh"
#include "circuits/qaoa.hh"
#include "common/error.hh"
#include "graph/algorithms.hh"
#include "service/compiler_service.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

// ------------------------------------------------------------------
// Helpers (self-contained copies of the test_service comparators)
// ------------------------------------------------------------------

bool
samePhysGates(const CompiledCircuit &a, const CompiledCircuit &b)
{
    if (a.numGates() != b.numGates())
        return false;
    for (int i = 0; i < a.numGates(); ++i) {
        const PhysGate &x = a.gates()[i];
        const PhysGate &y = b.gates()[i];
        if (x.cls != y.cls || x.slots != y.slots ||
            x.logical != y.logical || x.logical2 != y.logical2 ||
            x.param != y.param || x.param2 != y.param2 ||
            x.isRouting != y.isRouting || x.sourceGate != y.sourceGate ||
            x.sourceGate2 != y.sourceGate2 ||
            x.start != y.start || x.duration != y.duration ||
            x.fidelity != y.fidelity)
            return false;
    }
    return true;
}

::testing::AssertionResult
sameResult(const CompileResult &a, const CompileResult &b)
{
    if (!samePhysGates(a.compiled, b.compiled))
        return ::testing::AssertionFailure() << "physical gates differ";
    if (a.compressions != b.compressions)
        return ::testing::AssertionFailure() << "compressions differ";
    if (a.metrics.gateEps != b.metrics.gateEps ||
        a.metrics.coherenceEps != b.metrics.coherenceEps ||
        a.metrics.readoutEps != b.metrics.readoutEps ||
        a.metrics.totalEps != b.metrics.totalEps ||
        a.metrics.durationNs != b.metrics.durationNs ||
        a.metrics.numGates != b.metrics.numGates ||
        a.metrics.classHistogram != b.metrics.classHistogram ||
        a.metrics.qubitTimeNs != b.metrics.qubitTimeNs ||
        a.metrics.ququartTimeNs != b.metrics.ququartTimeNs)
        return ::testing::AssertionFailure() << "metrics differ";
    return ::testing::AssertionSuccess();
}

/** Sorted canonical (min, max) edge list of a topology. */
std::vector<std::pair<int, int>>
edgeSet(const Topology &t)
{
    std::vector<std::pair<int, int>> out;
    for (const auto &e : t.graph().edges())
        out.push_back({std::min(e.u, e.v), std::max(e.u, e.v)});
    std::sort(out.begin(), out.end());
    return out;
}

/** A small syntactically complete qcal record for a 3-unit device. */
std::string
validQcal()
{
    return "qcal 1\n"
           "device line3   # which backend\n"
           "version 4\n"
           "units 3\n"
           "unit 0 t1q 163500 t1qq 54500 ro 0.01\n"
           "unit 1 t1q 150000 t1qq 50000 ro 0.02\n"
           "unit 2 t1q 170000 t1qq 60000 ro 0.0\n"
           "edge 0 1 fid 0.98 dur 1.1\n";
}

// ------------------------------------------------------------------
// qcal codec
// ------------------------------------------------------------------

TEST(Qcal, ParsesCompleteRecord)
{
    const DeviceCalibration cal =
        DeviceCalibration::parse(validQcal(), "test");
    EXPECT_EQ(cal.device, "line3");
    EXPECT_EQ(cal.version, 4);
    EXPECT_EQ(cal.numUnits(), 3);
    EXPECT_DOUBLE_EQ(cal.t1QubitNs[1], 150000.0);
    EXPECT_DOUBLE_EQ(cal.t1QuquartNs[2], 60000.0);
    EXPECT_DOUBLE_EQ(cal.readoutError[0], 0.01);
    ASSERT_NE(cal.edge(0, 1), nullptr);
    EXPECT_DOUBLE_EQ(cal.edge(0, 1)->fidelityScale, 0.98);
    EXPECT_DOUBLE_EQ(cal.edge(0, 1)->durationScale, 1.1);
    // Undirected: the reversed lookup sees the same record.
    EXPECT_EQ(cal.edge(1, 0), cal.edge(0, 1));
    EXPECT_EQ(cal.edge(1, 2), nullptr);
}

TEST(Qcal, RoundTripsExactly)
{
    const DeviceCalibration cal =
        DeviceCalibration::parse(validQcal(), "test");
    const DeviceCalibration again =
        DeviceCalibration::parse(cal.toText(), "round-trip");
    EXPECT_TRUE(cal == again);
    EXPECT_EQ(cal.fingerprint(), again.fingerprint());
}

TEST(Qcal, FingerprintSeesEveryPricedField)
{
    const DeviceCalibration base =
        DeviceCalibration::parse(validQcal(), "test");
    auto fp = [](DeviceCalibration c) { return c.fingerprint(); };

    DeviceCalibration t1 = base;
    t1.t1QubitNs[0] *= 2.0;
    EXPECT_NE(fp(t1), base.fingerprint());

    DeviceCalibration ro = base;
    ro.readoutError[2] = 0.5;
    EXPECT_NE(fp(ro), base.fingerprint());

    DeviceCalibration ver = base;
    ver.version = 5;
    EXPECT_NE(fp(ver), base.fingerprint());

    DeviceCalibration edge = base;
    edge.setEdge(1, 2, 0.9, 1.0);
    EXPECT_NE(fp(edge), base.fingerprint());
}

TEST(Qcal, MalformedInputIsAlwaysFatalError)
{
    auto reject = [](const std::string &text) {
        EXPECT_THROW(DeviceCalibration::parse(text, "test"), FatalError)
            << "accepted: " << text;
    };
    // Header problems.
    reject("");
    reject("qcal 2\ndevice d\nunits 1\nunit 0 t1q 1 t1qq 1 ro 0\n");
    reject("device d\nunits 1\nunit 0 t1q 1 t1qq 1 ro 0\n");
    // Missing / duplicate directives.
    reject("qcal 1\nunits 1\nunit 0 t1q 1 t1qq 1 ro 0\n"); // no device
    reject("qcal 1\ndevice d\ndevice e\nunits 1\n"
           "unit 0 t1q 1 t1qq 1 ro 0\n");
    reject("qcal 1\ndevice d\nunit 0 t1q 1 t1qq 1 ro 0\n"); // no units
    // Truncation: unit 1 never calibrated.
    reject("qcal 1\ndevice d\nunits 2\nunit 0 t1q 1 t1qq 1 ro 0\n");
    // Unknown unit ids and duplicates.
    reject("qcal 1\ndevice d\nunits 1\nunit 1 t1q 1 t1qq 1 ro 0\n");
    reject("qcal 1\ndevice d\nunits 1\nunit 0 t1q 1 t1qq 1 ro 0\n"
           "unit 0 t1q 1 t1qq 1 ro 0\n");
    // NaN / inf / negative / zero T1, readout out of range.
    reject("qcal 1\ndevice d\nunits 1\nunit 0 t1q nan t1qq 1 ro 0\n");
    reject("qcal 1\ndevice d\nunits 1\nunit 0 t1q inf t1qq 1 ro 0\n");
    reject("qcal 1\ndevice d\nunits 1\nunit 0 t1q -5 t1qq 1 ro 0\n");
    reject("qcal 1\ndevice d\nunits 1\nunit 0 t1q 0 t1qq 1 ro 0\n");
    reject("qcal 1\ndevice d\nunits 1\nunit 0 t1q 1 t1qq nan ro 0\n");
    reject("qcal 1\ndevice d\nunits 1\nunit 0 t1q 1 t1qq 1 ro 1\n");
    reject("qcal 1\ndevice d\nunits 1\nunit 0 t1q 1 t1qq 1 ro -0.1\n");
    // Edge problems: unknown units, self-loop, duplicate, bad scales.
    const std::string two = "qcal 1\ndevice d\nunits 2\n"
                            "unit 0 t1q 1 t1qq 1 ro 0\n"
                            "unit 1 t1q 1 t1qq 1 ro 0\n";
    reject(two + "edge 0 2 fid 0.9 dur 1\n");
    reject(two + "edge 0 0 fid 0.9 dur 1\n");
    reject(two + "edge 0 1 fid 0.9 dur 1\nedge 1 0 fid 0.9 dur 1\n");
    reject(two + "edge 0 1 fid 0 dur 1\n");
    reject(two + "edge 0 1 fid 1.5 dur 1\n");
    reject(two + "edge 0 1 fid 0.9 dur 0\n");
    reject(two + "edge 0 1 fid 0.9 dur 1001\n");
    reject(two + "edge 0 1 fid nan dur 1\n");
    // Structure: wrong token counts, unknown directives, bad ints.
    reject("qcal 1\ndevice d\nunits 1\nunit 0 t1q 1 t1qq 1\n");
    reject("qcal 1\ndevice d\nunits 1\nunit 0 t1x 1 t1qq 1 ro 0\n");
    reject("qcal 1\ndevice d\nunits 1\nbogus 3\n"
           "unit 0 t1q 1 t1qq 1 ro 0\n");
    reject("qcal 1\ndevice d\nunits -1\n");
    reject("qcal 1\ndevice d\nunits 99999999\n");
    reject("qcal 1\ndevice d\nversion 0\nunits 1\n"
           "unit 0 t1q 1 t1qq 1 ro 0\n");
}

TEST(Qcal, UniformBuildsNeutralRecord)
{
    const DeviceCalibration cal = DeviceCalibration::uniform(
        "dev", 4, GateLibrary::kT1QubitNs, GateLibrary::kT1QuquartNs);
    EXPECT_EQ(cal.numUnits(), 4);
    EXPECT_TRUE(cal.edges.empty());
    for (int u = 0; u < 4; ++u) {
        EXPECT_DOUBLE_EQ(cal.t1QubitNs[u], GateLibrary::kT1QubitNs);
        EXPECT_DOUBLE_EQ(cal.readoutError[u], 0.0);
    }
}

TEST(Qcal, FromFileMissingIsFatalError)
{
    EXPECT_THROW(DeviceCalibration::fromFile("/nonexistent/x.qcal"),
                 FatalError);
}

// ------------------------------------------------------------------
// Topology zoo generators
// ------------------------------------------------------------------

TEST(TopologyZoo, HeavyHexFamilyReproducesHeavyHex65)
{
    const Topology gen = Topology::heavyHex(5, 11);
    const Topology fixed = Topology::heavyHex65();
    EXPECT_EQ(gen.numUnits(), fixed.numUnits());
    EXPECT_EQ(gen.name(), fixed.name());
    // Same graph, not merely isomorphic: identical edge sets AND
    // identical insertion order (adjacency order feeds Dijkstra
    // tie-breaks, so this is what bit-identity rests on).
    EXPECT_EQ(edgeSet(gen), edgeSet(fixed));
    EXPECT_EQ(gen.graph().edges().size(), fixed.graph().edges().size());
    for (std::size_t i = 0; i < gen.graph().edges().size(); ++i) {
        EXPECT_EQ(gen.graph().edges()[i].u, fixed.graph().edges()[i].u);
        EXPECT_EQ(gen.graph().edges()[i].v, fixed.graph().edges()[i].v);
    }
}

TEST(TopologyZoo, HeavyHexFamilySizes)
{
    EXPECT_EQ(Topology::heavyHex(3, 7).numUnits(), 23);
    EXPECT_EQ(Topology::heavyHex(7, 15).numUnits(), 127); // IBM Eagle
    // Every family member is connected.
    for (const auto &t :
         {Topology::heavyHex(3, 7), Topology::heavyHex(7, 15)}) {
        for (int c : connectedComponents(t.graph()))
            EXPECT_EQ(c, 0);
    }
}

TEST(TopologyZoo, HeavyHexRejectsInvalidParameters)
{
    EXPECT_THROW(Topology::heavyHex(2, 11), FatalError); // even rows
    EXPECT_THROW(Topology::heavyHex(1, 11), FatalError); // too few
    EXPECT_THROW(Topology::heavyHex(5, 10), FatalError); // not 3 mod 4
    EXPECT_THROW(Topology::heavyHex(5, 3), FatalError);  // too short
    EXPECT_THROW(Topology::heavyHex(-3, 11), FatalError);
}

TEST(TopologyZoo, Falcon27Shape)
{
    const Topology t = Topology::falcon27();
    EXPECT_EQ(t.numUnits(), 27);
    EXPECT_EQ(t.numEdges(), 28);
    EXPECT_TRUE(t.adjacent(0, 1));
    EXPECT_TRUE(t.adjacent(25, 26));
    EXPECT_TRUE(t.adjacent(12, 15));
    EXPECT_FALSE(t.adjacent(0, 26));
    for (int c : connectedComponents(t.graph()))
        EXPECT_EQ(c, 0);
}

TEST(TopologyZoo, NamedLookup)
{
    EXPECT_EQ(Topology::named("falcon27").numUnits(), 27);
    EXPECT_EQ(Topology::named("heavyhex23").numUnits(), 23);
    EXPECT_EQ(Topology::named("heavyhex65").numUnits(), 65);
    EXPECT_EQ(Topology::named("heavyhex127").numUnits(), 127);
    EXPECT_EQ(Topology::named("ring:16").numUnits(), 16);
    EXPECT_EQ(Topology::named("line:5").numEdges(), 4);
    EXPECT_EQ(Topology::named("grid:3x4").numUnits(), 12);
    EXPECT_EQ(Topology::named("complete:6").numEdges(), 15);
    EXPECT_EQ(Topology::named("heavyhex:5x11").numUnits(), 65);
}

TEST(TopologyZoo, NamedLookupErrorListsValidNames)
{
    try {
        Topology::named("bogus");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bogus"), std::string::npos);
        EXPECT_NE(what.find("falcon27"), std::string::npos);
        EXPECT_NE(what.find("heavyhex65"), std::string::npos);
    }
    EXPECT_THROW(Topology::named("ring:0"), FatalError);
    EXPECT_THROW(Topology::named("ring:abc"), FatalError);
    EXPECT_THROW(Topology::named("grid:4"), FatalError);
    EXPECT_THROW(Topology::named("grid:0x4"), FatalError);
}

// ------------------------------------------------------------------
// Hardened fromText / fromFile
// ------------------------------------------------------------------

TEST(TopologyText, ParsesEdgeListWithComments)
{
    const Topology t = Topology::fromText("# a triangle\n"
                                          "0 1\n"
                                          "1 2  # last edge\n"
                                          "2 0\n",
                                          "inline");
    EXPECT_EQ(t.numUnits(), 3);
    EXPECT_EQ(t.numEdges(), 3);
    EXPECT_EQ(t.name(), "inline");
}

TEST(TopologyText, RejectsMalformedInput)
{
    auto reject = [](const std::string &text) {
        EXPECT_THROW(Topology::fromText(text, "t"), FatalError)
            << "accepted: " << text;
    };
    reject("");             // no edges at all
    reject("# only\n\n");   // comments only
    reject("0\n");          // one token
    reject("0 1 2\n");      // trailing token
    reject("0 -1\n");       // not a digit string
    reject("0 1.5\n");      // not an integer
    reject("0 0\n");        // self-loop
    reject("0 1\n1 0\n");   // duplicate (undirected)
    reject("0 9999999\n");  // over the unit cap
    reject("0 abc\n");
}

TEST(TopologyText, ErrorsCarryLineNumbers)
{
    try {
        Topology::fromText("0 1\n1 1\n", "t");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(TopologyText, FromFileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "qompress_topo.txt";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("0 1\n1 2\n2 3\n3 0\n", f);
        std::fclose(f);
    }
    const Topology t = Topology::fromFile(path);
    EXPECT_EQ(t.numUnits(), 4);
    EXPECT_EQ(t.numEdges(), 4);
    EXPECT_EQ(t.name(), "qompress_topo.txt"); // basename
    std::remove(path.c_str());
    EXPECT_THROW(Topology::fromFile("/nonexistent/topo.txt"),
                 FatalError);
}

// ------------------------------------------------------------------
// DeviceRegistry
// ------------------------------------------------------------------

TEST(DeviceRegistry, DefaultZoo)
{
    DeviceRegistry reg;
    const auto names = reg.names();
    for (const char *want : {"falcon27", "heavyhex23", "heavyhex65",
                             "heavyhex127", "ring65", "grid64"}) {
        EXPECT_TRUE(std::find(names.begin(), names.end(), want) !=
                    names.end())
            << "zoo is missing " << want;
    }
    EXPECT_GE(names.size(), 5u);
    const Device hh = reg.get("heavyhex65");
    EXPECT_EQ(hh.topology.numUnits(), 65);
    EXPECT_EQ(hh.calibration, nullptr);
    EXPECT_EQ(hh.calVersion, 0u);
    for (const DeviceInfo &d : reg.info()) {
        EXPECT_FALSE(d.calibrated);
        EXPECT_GT(d.units, 0);
    }
}

TEST(DeviceRegistry, UnknownDeviceErrorListsNames)
{
    DeviceRegistry reg;
    try {
        reg.get("bogus");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bogus"), std::string::npos);
        EXPECT_NE(what.find("falcon27"), std::string::npos);
        EXPECT_NE(what.find("heavyhex65"), std::string::npos);
    }
}

TEST(DeviceRegistry, AddValidatesNames)
{
    DeviceRegistry reg;
    reg.add("custom", Topology::ring(5));
    EXPECT_TRUE(reg.has("custom"));
    EXPECT_THROW(reg.add("custom", Topology::ring(5)), FatalError);
    EXPECT_THROW(reg.add("", Topology::ring(5)), FatalError);
}

TEST(DeviceRegistry, SetCalibrationValidatesAndVersions)
{
    DeviceRegistry reg;
    reg.add("line3", Topology::line(3));
    DeviceCalibration cal =
        DeviceCalibration::parse(validQcal(), "test");

    EXPECT_THROW(reg.setCalibration("bogus", cal), FatalError);

    // Unit-count mismatch against the topology.
    DeviceCalibration wrongSize = DeviceCalibration::uniform(
        "line3", 4, 1000.0, 500.0);
    EXPECT_THROW(reg.setCalibration("line3", wrongSize), FatalError);

    // Record naming a different device.
    DeviceCalibration wrongName = cal;
    wrongName.device = "other";
    EXPECT_THROW(reg.setCalibration("line3", wrongName), FatalError);

    // An edge that is not a coupling of the topology.
    DeviceCalibration badEdge = cal;
    badEdge.setEdge(0, 2, 0.9, 1.0); // line3 has no (0, 2)
    EXPECT_THROW(reg.setCalibration("line3", badEdge), FatalError);

    // A valid install bumps the version each time.
    EXPECT_EQ(reg.setCalibration("line3", cal), 1u);
    EXPECT_EQ(reg.setCalibration("line3", cal), 2u);
    const Device dev = reg.get("line3");
    ASSERT_NE(dev.calibration, nullptr);
    EXPECT_EQ(dev.calVersion, 2u);
    EXPECT_TRUE(*dev.calibration == cal);
}

// ------------------------------------------------------------------
// Calibration-driven pricing
// ------------------------------------------------------------------

/** The acceptance differential: for every standard strategy on
 *  ring/grid/heavyHex65, a null calibration AND a neutral uniform
 *  calibration both produce results bit-identical to a config without
 *  the field (which is what pre-device builds compiled). */
TEST(CalibrationPricing, UncalibratedIsBitIdenticalToToday)
{
    const Circuit circuit = bernsteinVazirani(8);
    const GateLibrary lib;
    std::vector<Topology> topos;
    topos.push_back(Topology::ring(8));
    topos.push_back(Topology::grid(8));
    topos.push_back(Topology::heavyHex65());

    for (const Topology &topo : topos) {
        for (const std::string &name : strategyNames()) {
            const auto strategy = makeStrategy(name);
            CompilerConfig plain;
            const CompileResult base =
                strategy->compile(circuit, topo, lib, plain);

            // Null calibration: the field exists but is unset.
            CompilerConfig nullCal;
            EXPECT_TRUE(sameResult(
                base, strategy->compile(circuit, topo, lib, nullCal)))
                << name << " on " << topo.name() << " (null)";

            // Neutral uniform calibration: every value equals the
            // library constant, readout zero, no edge scales.
            CompilerConfig neutral;
            neutral.calibration =
                std::make_shared<const DeviceCalibration>(
                    DeviceCalibration::uniform(
                        topo.name(), topo.numUnits(),
                        GateLibrary::kT1QubitNs,
                        GateLibrary::kT1QuquartNs));
            EXPECT_TRUE(sameResult(
                base, strategy->compile(circuit, topo, lib, neutral)))
                << name << " on " << topo.name() << " (neutral)";
        }
    }
}

TEST(CalibrationPricing, PerUnitT1ChangesPricing)
{
    const Circuit circuit = bernsteinVazirani(6);
    const GateLibrary lib;
    const Topology topo = Topology::grid(6);
    const auto strategy = makeStrategy("eqm");

    CompilerConfig plain;
    const CompileResult base =
        strategy->compile(circuit, topo, lib, plain);

    // Crush every unit's T1 100x: coherence must get strictly worse.
    CompilerConfig bad;
    bad.calibration = std::make_shared<const DeviceCalibration>(
        DeviceCalibration::uniform(topo.name(), topo.numUnits(),
                                   GateLibrary::kT1QubitNs / 100.0,
                                   GateLibrary::kT1QuquartNs / 100.0));
    const CompileResult worse =
        strategy->compile(circuit, topo, lib, bad);
    EXPECT_LT(worse.metrics.coherenceEps, base.metrics.coherenceEps);
    EXPECT_LT(worse.metrics.totalEps, base.metrics.totalEps);
}

TEST(CalibrationPricing, ReadoutErrorFoldsIntoTotalEps)
{
    const Circuit circuit = bernsteinVazirani(4);
    const GateLibrary lib;
    const Topology topo = Topology::grid(4);
    const auto strategy = makeStrategy("qubit_only");

    CompilerConfig ro;
    ro.calibration = std::make_shared<const DeviceCalibration>(
        DeviceCalibration::uniform(topo.name(), topo.numUnits(),
                                   GateLibrary::kT1QubitNs,
                                   GateLibrary::kT1QuquartNs, 0.05));
    const CompileResult res = strategy->compile(circuit, topo, lib, ro);
    // 4 measured qubits at 5% readout error each.
    EXPECT_NEAR(res.metrics.readoutEps, std::pow(0.95, 4), 1e-12);
    EXPECT_DOUBLE_EQ(res.metrics.totalEps,
                     res.metrics.gateEps * res.metrics.coherenceEps *
                         res.metrics.readoutEps);

    CompilerConfig plain;
    const CompileResult base =
        strategy->compile(circuit, topo, lib, plain);
    EXPECT_DOUBLE_EQ(base.metrics.readoutEps, 1.0);
}

TEST(CalibrationPricing, EdgeScalesReachScheduledGates)
{
    // Two qubits on a 2-unit line: every cross-unit gate runs on the
    // single coupling, so a fidelity scale must show up in gateEps.
    Circuit c(2, "bell");
    c.h(0);
    c.cx(0, 1);
    const GateLibrary lib;
    const Topology topo = Topology::line(2);
    const auto strategy = makeStrategy("qubit_only");

    CompilerConfig plain;
    const CompileResult base =
        strategy->compile(c, topo, lib, plain);

    DeviceCalibration cal = DeviceCalibration::uniform(
        topo.name(), 2, GateLibrary::kT1QubitNs,
        GateLibrary::kT1QuquartNs);
    cal.setEdge(0, 1, 0.5, 1.0);
    CompilerConfig scaled;
    scaled.calibration =
        std::make_shared<const DeviceCalibration>(std::move(cal));
    const CompileResult res = strategy->compile(c, topo, lib, scaled);
    EXPECT_LT(res.metrics.gateEps, base.metrics.gateEps);
    // The scale applies per cross-unit gate; with exactly one CX the
    // ratio is exactly the fidelity scale.
    EXPECT_NEAR(res.metrics.gateEps / base.metrics.gateEps, 0.5, 1e-12);
}

TEST(CalibrationPricing, MismatchedUnitCountIsFatalError)
{
    const Circuit circuit = bernsteinVazirani(4);
    const Topology topo = Topology::grid(4);
    CompilerConfig cfg;
    cfg.calibration = std::make_shared<const DeviceCalibration>(
        DeviceCalibration::uniform("x", topo.numUnits() + 3, 1000.0,
                                   500.0));
    EXPECT_THROW(
        makeStrategy("eqm")->compile(circuit, topo, GateLibrary{}, cfg),
        FatalError);
}

// ------------------------------------------------------------------
// Service integration: by-name requests and cache invalidation
// ------------------------------------------------------------------

TEST(ServiceDevices, ByNameMatchesExplicitTopology)
{
    CompilerService svc;
    const Circuit circuit = bernsteinVazirani(8);

    const CompileArtifact byName = svc.compileSync(
        CompileRequest::forDevice(circuit, "heavyhex65", "eqm"));
    const CompileArtifact explicitTopo = svc.compileSync(
        CompileRequest::forCircuit(circuit, Topology::heavyHex65(),
                                   "eqm"));
    EXPECT_TRUE(sameResult(*byName, *explicitTopo));
    // Same resolved content -> same artifact key: the second request
    // must have been a memo hit on the first's entry.
    const ServiceStats st = svc.stats();
    EXPECT_EQ(st.requests, 2u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.hits, 1u);
}

TEST(ServiceDevices, UnknownDeviceIsFatalError)
{
    CompilerService svc;
    EXPECT_THROW(svc.compileSync(CompileRequest::forDevice(
                     bernsteinVazirani(4), "bogus", "eqm")),
                 FatalError);
}

/** The invalidation acceptance: installing a calibration re-keys
 *  exactly the calibrated device. Stale requests miss, unrelated warm
 *  entries keep hitting, and the partition invariant
 *  requests == hits + templateHits + diskHits + misses + coalesced
 *  holds at every step. */
TEST(ServiceDevices, CalibrationUpdateInvalidatesExactlyItsDevice)
{
    CompilerService svc;
    const Circuit circuit = bernsteinVazirani(8);
    auto partitionHolds = [&svc] {
        const ServiceStats s = svc.stats();
        return s.requests == s.hits + s.templateHits + s.diskHits +
                                 s.misses + s.coalesced;
    };

    // Warm both devices.
    const CompileArtifact falconCold = svc.compileSync(
        CompileRequest::forDevice(circuit, "falcon27", "eqm"));
    svc.compileSync(CompileRequest::forDevice(circuit, "ring65", "eqm"));
    ServiceStats st = svc.stats();
    EXPECT_EQ(st.misses, 2u);
    EXPECT_TRUE(partitionHolds());

    // Warm repeat: both hit.
    svc.compileSync(CompileRequest::forDevice(circuit, "falcon27", "eqm"));
    svc.compileSync(CompileRequest::forDevice(circuit, "ring65", "eqm"));
    st = svc.stats();
    EXPECT_EQ(st.hits, 2u);
    EXPECT_EQ(st.misses, 2u);

    // Install a real calibration on falcon27 only.
    svc.devices().setCalibration(
        "falcon27", DeviceCalibration::uniform("falcon27", 27,
                                               100000.0, 30000.0, 0.01));

    // falcon27 requests now miss (new key) and reprice...
    const CompileArtifact falconFresh = svc.compileSync(
        CompileRequest::forDevice(circuit, "falcon27", "eqm"));
    st = svc.stats();
    EXPECT_EQ(st.misses, 3u);
    EXPECT_NE(falconFresh->metrics.totalEps,
              falconCold->metrics.totalEps);
    EXPECT_TRUE(partitionHolds());

    // ...then hit on their own fresh entry...
    svc.compileSync(CompileRequest::forDevice(circuit, "falcon27", "eqm"));
    st = svc.stats();
    EXPECT_EQ(st.hits, 3u);
    EXPECT_EQ(st.misses, 3u);

    // ...while the unrelated device's warm entry survives untouched.
    svc.compileSync(CompileRequest::forDevice(circuit, "ring65", "eqm"));
    st = svc.stats();
    EXPECT_EQ(st.hits, 4u);
    EXPECT_EQ(st.misses, 3u);
    EXPECT_TRUE(partitionHolds());

    // A second install bumps the key again: stale again, exactly once.
    svc.devices().setCalibration(
        "falcon27", DeviceCalibration::uniform("falcon27", 27,
                                               90000.0, 25000.0, 0.02));
    svc.compileSync(CompileRequest::forDevice(circuit, "falcon27", "eqm"));
    st = svc.stats();
    EXPECT_EQ(st.misses, 4u);
    EXPECT_TRUE(partitionHolds());
}

TEST(ServiceDevices, TemplateTierRespectsCalibrationKeys)
{
    // Parameterized instances of one structure: the second compile is
    // served by rebind. After a calibration lands, the old template is
    // unreachable (new cfg fingerprint) and a fresh full compile runs.
    CompilerService svc;
    QaoaOptions o1;
    o1.gamma = 0.3;
    QaoaOptions o2;
    o2.gamma = 0.7;
    QaoaOptions o3;
    o3.gamma = 0.9;
    const Topology ringTopo = Topology::ring(8);
    const Graph &problem = ringTopo.graph();

    auto reqFor = [&](const QaoaOptions &o) {
        return CompileRequest::forDevice(
            qaoaFromGraph(problem, o), "ring65", "eqm");
    };

    svc.compileSync(reqFor(o1));
    svc.compileSync(reqFor(o2));
    ServiceStats st = svc.stats();
    EXPECT_EQ(st.templateHits, 1u);
    EXPECT_EQ(st.misses, 1u);

    svc.devices().setCalibration(
        "ring65", DeviceCalibration::uniform("ring65", 65, 120000.0,
                                             40000.0));
    svc.compileSync(reqFor(o3));
    st = svc.stats();
    // The calibrated request could not use the stale template.
    EXPECT_EQ(st.templateHits, 1u);
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.requests,
              st.hits + st.templateHits + st.diskHits + st.misses +
                  st.coalesced);
}

} // namespace
} // namespace qompress
