/**
 * @file
 * Tests for the OpenQASM 2.0 front end: parsing, expression
 * evaluation, error reporting, and the dump/parse round trip.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/arithmetic.hh"
#include "circuits/registry.hh"
#include "common/error.hh"
#include "ir/qasm.hh"

namespace qompress {
namespace {

TEST(Qasm, ParsesBasicProgram)
{
    const Circuit c = parseQasm(R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        creg c[3];
        h q[0];
        cx q[0], q[1];
        ccx q[0], q[1], q[2];
        measure q[0] -> c[0];
    )");
    EXPECT_EQ(c.numQubits(), 3);
    ASSERT_EQ(c.numGates(), 3); // measure ignored
    EXPECT_EQ(c.gates()[0].type, GateType::H);
    EXPECT_EQ(c.gates()[1].type, GateType::CX);
    EXPECT_EQ(c.gates()[2].type, GateType::CCX);
}

TEST(Qasm, ParsesParameters)
{
    const Circuit c = parseQasm(R"(
        OPENQASM 2.0;
        qreg q[1];
        rz(0.5) q[0];
        rx(pi/2) q[0];
        ry(-pi/4) q[0];
        rz(2*pi) q[0];
        rx(1e-3) q[0];
        rz((pi + 1) / 2) q[0];
    )");
    ASSERT_EQ(c.numGates(), 6);
    EXPECT_DOUBLE_EQ(c.gates()[0].param, 0.5);
    EXPECT_DOUBLE_EQ(c.gates()[1].param, M_PI / 2);
    EXPECT_DOUBLE_EQ(c.gates()[2].param, -M_PI / 4);
    EXPECT_DOUBLE_EQ(c.gates()[3].param, 2 * M_PI);
    EXPECT_DOUBLE_EQ(c.gates()[4].param, 1e-3);
    EXPECT_DOUBLE_EQ(c.gates()[5].param, (M_PI + 1) / 2);
}

TEST(Qasm, CommentsAndWhitespace)
{
    const Circuit c = parseQasm(
        "OPENQASM 2.0; // header\n"
        "qreg q[2]; // two qubits\n"
        "// a full-line comment\n"
        "   h   q[ 0 ] ;\n"
        "cx q[0],q[1];\n");
    EXPECT_EQ(c.numGates(), 2);
}

TEST(Qasm, ErrorsCarryLineNumbers)
{
    try {
        parseQasm("OPENQASM 2.0;\nqreg q[2];\nbadgate q[0];\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(Qasm, RejectsOutOfRangeQubit)
{
    EXPECT_THROW(
        parseQasm("OPENQASM 2.0; qreg q[2]; cx q[0], q[5];"),
        FatalError);
}

TEST(Qasm, RejectsMissingHeader)
{
    EXPECT_THROW(parseQasm("qreg q[2];"), FatalError);
}

TEST(Qasm, RejectsGateBeforeQreg)
{
    EXPECT_THROW(parseQasm("OPENQASM 2.0; h q[0]; qreg q[2];"),
                 FatalError);
}

TEST(Qasm, RejectsParamOnFixedGate)
{
    EXPECT_THROW(
        parseQasm("OPENQASM 2.0; qreg q[1]; h(0.5) q[0];"),
        FatalError);
    EXPECT_THROW(
        parseQasm("OPENQASM 2.0; qreg q[1]; rz q[0];"),
        FatalError);
}

TEST(Qasm, RejectsUnknownRegister)
{
    EXPECT_THROW(
        parseQasm("OPENQASM 2.0; qreg q[2]; cx r[0], q[1];"),
        FatalError);
}

TEST(Qasm, RoundTripThroughDump)
{
    // Every benchmark family must survive toQasm -> parseQasm.
    for (const auto &family : benchmarkFamilies()) {
        const Circuit original =
            family.make(std::max(family.minQubits, 10));
        const Circuit reparsed = parseQasm(original.toQasm(),
                                           original.name());
        ASSERT_EQ(reparsed.numQubits(), original.numQubits())
            << family.name;
        ASSERT_EQ(reparsed.numGates(), original.numGates())
            << family.name;
        for (int i = 0; i < original.numGates(); ++i) {
            EXPECT_EQ(reparsed.gates()[i].type,
                      original.gates()[i].type);
            EXPECT_EQ(reparsed.gates()[i].qubits,
                      original.gates()[i].qubits);
            EXPECT_NEAR(reparsed.gates()[i].param,
                        original.gates()[i].param, 1e-9);
        }
    }
}

TEST(Qasm, FileNotFound)
{
    EXPECT_THROW(parseQasmFile("/nonexistent/file.qasm"), FatalError);
}

} // namespace
} // namespace qompress
