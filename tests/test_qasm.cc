/**
 * @file
 * Tests for the OpenQASM 2.0 front end: parsing, expression
 * evaluation, error reporting, and the dump/parse round trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuits/arithmetic.hh"
#include "circuits/registry.hh"
#include "common/error.hh"
#include "ir/qasm.hh"

namespace qompress {
namespace {

TEST(Qasm, ParsesBasicProgram)
{
    const Circuit c = parseQasm(R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        creg c[3];
        h q[0];
        cx q[0], q[1];
        ccx q[0], q[1], q[2];
        measure q[0] -> c[0];
    )");
    EXPECT_EQ(c.numQubits(), 3);
    ASSERT_EQ(c.numGates(), 3); // measure ignored
    EXPECT_EQ(c.gates()[0].type, GateType::H);
    EXPECT_EQ(c.gates()[1].type, GateType::CX);
    EXPECT_EQ(c.gates()[2].type, GateType::CCX);
}

TEST(Qasm, ParsesParameters)
{
    const Circuit c = parseQasm(R"(
        OPENQASM 2.0;
        qreg q[1];
        rz(0.5) q[0];
        rx(pi/2) q[0];
        ry(-pi/4) q[0];
        rz(2*pi) q[0];
        rx(1e-3) q[0];
        rz((pi + 1) / 2) q[0];
    )");
    ASSERT_EQ(c.numGates(), 6);
    EXPECT_DOUBLE_EQ(c.gates()[0].param, 0.5);
    EXPECT_DOUBLE_EQ(c.gates()[1].param, M_PI / 2);
    EXPECT_DOUBLE_EQ(c.gates()[2].param, -M_PI / 4);
    EXPECT_DOUBLE_EQ(c.gates()[3].param, 2 * M_PI);
    EXPECT_DOUBLE_EQ(c.gates()[4].param, 1e-3);
    EXPECT_DOUBLE_EQ(c.gates()[5].param, (M_PI + 1) / 2);
}

TEST(Qasm, CommentsAndWhitespace)
{
    const Circuit c = parseQasm(
        "OPENQASM 2.0; // header\n"
        "qreg q[2]; // two qubits\n"
        "// a full-line comment\n"
        "   h   q[ 0 ] ;\n"
        "cx q[0],q[1];\n");
    EXPECT_EQ(c.numGates(), 2);
}

TEST(Qasm, ErrorsCarryLineNumbers)
{
    try {
        parseQasm("OPENQASM 2.0;\nqreg q[2];\nbadgate q[0];\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(Qasm, RejectsOutOfRangeQubit)
{
    EXPECT_THROW(
        parseQasm("OPENQASM 2.0; qreg q[2]; cx q[0], q[5];"),
        FatalError);
}

TEST(Qasm, RejectsMissingHeader)
{
    EXPECT_THROW(parseQasm("qreg q[2];"), FatalError);
}

TEST(Qasm, RejectsGateBeforeQreg)
{
    EXPECT_THROW(parseQasm("OPENQASM 2.0; h q[0]; qreg q[2];"),
                 FatalError);
}

TEST(Qasm, RejectsParamOnFixedGate)
{
    EXPECT_THROW(
        parseQasm("OPENQASM 2.0; qreg q[1]; h(0.5) q[0];"),
        FatalError);
    EXPECT_THROW(
        parseQasm("OPENQASM 2.0; qreg q[1]; rz q[0];"),
        FatalError);
}

TEST(Qasm, RejectsUnknownRegister)
{
    EXPECT_THROW(
        parseQasm("OPENQASM 2.0; qreg q[2]; cx r[0], q[1];"),
        FatalError);
}

TEST(Qasm, RoundTripThroughDump)
{
    // Every benchmark family must survive toQasm -> parseQasm.
    for (const auto &family : benchmarkFamilies()) {
        const Circuit original =
            family.make(std::max(family.minQubits, 10));
        const Circuit reparsed = parseQasm(original.toQasm(),
                                           original.name());
        ASSERT_EQ(reparsed.numQubits(), original.numQubits())
            << family.name;
        ASSERT_EQ(reparsed.numGates(), original.numGates())
            << family.name;
        for (int i = 0; i < original.numGates(); ++i) {
            EXPECT_EQ(reparsed.gates()[i].type,
                      original.gates()[i].type);
            EXPECT_EQ(reparsed.gates()[i].qubits,
                      original.gates()[i].qubits);
            EXPECT_NEAR(reparsed.gates()[i].param,
                        original.gates()[i].param, 1e-9);
        }
    }
}

TEST(Qasm, FileNotFound)
{
    EXPECT_THROW(parseQasmFile("/nonexistent/file.qasm"), FatalError);
}

// ------------------------------------------------------------------
// Lexer bugfix regressions: these inputs used to hit undefined
// behavior or be silently mis-accepted. Each must now be a FatalError
// naming the offending line.
// ------------------------------------------------------------------

/** Expect parseQasm(@p src) to throw FatalError (never PanicError or
 *  anything else) and return its message. */
std::string
expectFatal(const std::string &src)
{
    try {
        parseQasm(src);
    } catch (const FatalError &e) {
        return e.what();
    } catch (const PanicError &e) {
        ADD_FAILURE() << "PanicError escaped for input: " << src
                      << "\n  " << e.what();
        return "";
    } catch (const std::exception &e) {
        ADD_FAILURE() << "non-Fatal exception for input: " << src
                      << "\n  " << e.what();
        return "";
    }
    ADD_FAILURE() << "no error for input: " << src;
    return "";
}

TEST(QasmBugfix, IntegerLiteralOverflowIsFatalNotUB)
{
    // Used to accumulate into int with signed-overflow UB; now capped
    // with a checked wide accumulator.
    const std::string msg =
        expectFatal("OPENQASM 2.0;\nqreg q[99999999999999];\nx q[0];");
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("integer literal"), std::string::npos) << msg;
    // Same guard on qubit indices.
    expectFatal("OPENQASM 2.0; qreg q[2]; x q[99999999999999];");
    // A 10-digit value just past the cap is also rejected...
    expectFatal("OPENQASM 2.0; qreg q[2000000000]; x q[0];");
    // ...while the cap itself still lexes (then fails the qreg-size
    // check, not the literal check).
    const std::string capMsg =
        expectFatal("OPENQASM 2.0; qreg q[1000000000]; x q[0];");
    EXPECT_EQ(capMsg.find("integer literal"), std::string::npos)
        << capMsg;
}

TEST(QasmBugfix, TrailingGarbageNumbersAreFatalNotTruncated)
{
    // stod used to parse the "1.2" prefix of "1.2.3" and the lexer
    // dropped the rest; now the whole token must be consumed.
    const std::string msg = expectFatal(
        "OPENQASM 2.0;\nqreg q[1];\nrz(1.2.3) q[0];");
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1.2.3"), std::string::npos) << msg;
    // Incomplete exponent: stod throws, surfaced as the same error.
    expectFatal("OPENQASM 2.0; qreg q[1]; rz(1e) q[0];");
    expectFatal("OPENQASM 2.0; qreg q[1]; rz(1.2e+) q[0];");
    // Well-formed scientific notation still parses.
    const Circuit ok = parseQasm(
        "OPENQASM 2.0; qreg q[1]; rz(1.25e-2) q[0];");
    EXPECT_DOUBLE_EQ(ok.gates()[0].param, 1.25e-2);
}

TEST(QasmBugfix, DuplicateQubitOperandIsFatal)
{
    const std::string msg = expectFatal(
        "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];");
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate qubit operand"), std::string::npos)
        << msg;
    expectFatal("OPENQASM 2.0; qreg q[3]; ccx q[1],q[2],q[1];");
    expectFatal("OPENQASM 2.0; qreg q[3]; swap q[2],q[2];");
}

// ------------------------------------------------------------------
// Adversarial inputs: the parser fronts untrusted network bodies via
// qompressd, so every hostile shape must fail closed as FatalError --
// never a PanicError (internal-bug class), never a crash.
// ------------------------------------------------------------------

TEST(QasmAdversarial, HostileInputsAlwaysFailAsFatalError)
{
    const std::vector<std::string> hostile = {
        "",                                     // empty body
        "OPENQASM",                             // truncated header
        "OPENQASM 3.0; qreg q[2];",             // wrong version
        "OPENQASM 2.0;",                        // no qreg, no gates
        "OPENQASM 2.0; qreg q[2]; cx q[0],",    // truncated operands
        "OPENQASM 2.0; qreg q[2]; cx q[0]",     // missing semicolon
        "OPENQASM 2.0; qreg q[2]; cx q[0],q[1]",// EOF inside statement
        "OPENQASM 2.0; qreg q[2]; rz( q[0];",   // unterminated expr
        "OPENQASM 2.0; qreg q[",                // EOF inside index
        "OPENQASM 2.0; qreg q[2]; h p[0];",     // unknown register
        "OPENQASM 2.0; h q[0]; qreg q[2];",     // gate before qreg
        "OPENQASM 2.0; qreg q[200000]; x q[0];",// oversized qreg
        "OPENQASM 2.0; qreg q[0];",             // empty qreg
        "OPENQASM 2.0; qreg q[-3];",            // negative qreg
        "OPENQASM 2.0; qreg q[2]; x q[-1];",    // negative index
        "OPENQASM 2.0; qreg q[1]; rz(nonsense) q[0];",
        "OPENQASM 2.0; qreg q[1]; rz(1/0) q[0];",   // division by zero
        "OPENQASM 2.0; qreg q[1]; rz(1,2) q[0];",   // two params
        "\xff\xfe garbage \x00 bytes",              // binary noise
    };
    for (const std::string &src : hostile)
        expectFatal(src);
}

TEST(QasmAdversarial, DeepParenNestingIsBoundedNotStackOverflow)
{
    // The recursive-descent expression parser caps nesting depth; a
    // parenthesis bomb must be a FatalError, not exhausted stack.
    const std::string bomb = "OPENQASM 2.0; qreg q[1]; rz(" +
                             std::string(5000, '(') + "1" +
                             std::string(5000, ')') + ") q[0];";
    const std::string msg = expectFatal(bomb);
    EXPECT_NE(msg.find("nest"), std::string::npos) << msg;
    // Reasonable nesting still works.
    const Circuit ok = parseQasm("OPENQASM 2.0; qreg q[1]; rz(((((1 + "
                                 "2)))))  q[0];");
    EXPECT_DOUBLE_EQ(ok.gates()[0].param, 3.0);
}

} // namespace
} // namespace qompress
