/**
 * @file
 * Randomized differential harness for the partial-invalidation
 * distance-field cache: every compression strategy, on every topology
 * class (ring, grid, heavy-hex), over seeded random/QAOA circuits,
 * must produce bit-identical compilations with the cache on and off.
 * This is the safety net for threading one mutation-aware cache
 * through mapping, routing, and the strategies themselves.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuits/bv.hh"
#include "circuits/graphs.hh"
#include "circuits/qaoa.hh"
#include "ir/passes.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

const GateLibrary kLib;

/** Strategies exercised on every topology/circuit combination. */
const std::vector<std::string> kStrategies = {
    "qubit_only", "eqm", "rb", "awe", "pp", "fq",
};

void
expectSameLayout(const Layout &a, const Layout &b, const std::string &ctx)
{
    ASSERT_EQ(a.numQubits(), b.numQubits()) << ctx;
    ASSERT_EQ(a.numSlots(), b.numSlots()) << ctx;
    for (QubitId q = 0; q < a.numQubits(); ++q)
        EXPECT_EQ(a.slotOf(q), b.slotOf(q)) << ctx << " qubit " << q;
}

void
expectSameCompile(const CompileResult &cached,
                  const CompileResult &uncached, const std::string &ctx)
{
    // Same chosen compressions...
    ASSERT_EQ(cached.compressions.size(), uncached.compressions.size())
        << ctx;
    for (std::size_t i = 0; i < cached.compressions.size(); ++i) {
        EXPECT_TRUE(cached.compressions[i] == uncached.compressions[i])
            << ctx << " pair " << i;
    }

    // ...same placements...
    expectSameLayout(cached.compiled.initialLayout(),
                     uncached.compiled.initialLayout(),
                     ctx + " initial layout");
    expectSameLayout(cached.compiled.finalLayout(),
                     uncached.compiled.finalLayout(),
                     ctx + " final layout");

    // ...same routed gate sequence, field by field...
    ASSERT_EQ(cached.compiled.numGates(), uncached.compiled.numGates())
        << ctx;
    for (int i = 0; i < cached.compiled.numGates(); ++i) {
        const PhysGate &x = cached.compiled.gates()[i];
        const PhysGate &y = uncached.compiled.gates()[i];
        EXPECT_EQ(x.cls, y.cls) << ctx << " gate " << i;
        EXPECT_EQ(x.slots, y.slots) << ctx << " gate " << i;
        EXPECT_EQ(x.logical, y.logical) << ctx << " gate " << i;
        EXPECT_EQ(x.logical2, y.logical2) << ctx << " gate " << i;
        EXPECT_EQ(x.param, y.param) << ctx << " gate " << i;
        EXPECT_EQ(x.param2, y.param2) << ctx << " gate " << i;
        EXPECT_EQ(x.isRouting, y.isRouting) << ctx << " gate " << i;
        EXPECT_EQ(x.sourceGate, y.sourceGate) << ctx << " gate " << i;
        EXPECT_EQ(x.start, y.start) << ctx << " gate " << i;
        EXPECT_EQ(x.duration, y.duration) << ctx << " gate " << i;
    }

    // ...and bit-identical metrics (same gates -> same arithmetic).
    EXPECT_EQ(cached.metrics.gateEps, uncached.metrics.gateEps) << ctx;
    EXPECT_EQ(cached.metrics.coherenceEps, uncached.metrics.coherenceEps)
        << ctx;
    EXPECT_EQ(cached.metrics.totalEps, uncached.metrics.totalEps) << ctx;
    EXPECT_EQ(cached.metrics.durationNs, uncached.metrics.durationNs)
        << ctx;
    EXPECT_EQ(cached.metrics.numGates, uncached.metrics.numGates) << ctx;
    EXPECT_EQ(cached.metrics.numRoutingGates,
              uncached.metrics.numRoutingGates)
        << ctx;
    EXPECT_EQ(cached.metrics.numEncodedUnits,
              uncached.metrics.numEncodedUnits)
        << ctx;
}

/** Compile with the shared cache on and off and demand identity. */
void
expectCacheInvariant(const std::string &strategy, const Circuit &circuit,
                     const Topology &topo, double lookahead = 0.5)
{
    const std::string ctx =
        strategy + " / " + circuit.name() + " / " + topo.name();
    CompilerConfig cfg;
    cfg.lookaheadWeight = lookahead;

    cfg.useDistanceCache = true;
    const CompileResult cached =
        makeStrategy(strategy)->compile(circuit, topo, kLib, cfg);

    cfg.useDistanceCache = false;
    const CompileResult uncached =
        makeStrategy(strategy)->compile(circuit, topo, kLib, cfg);

    expectSameCompile(cached, uncached, ctx);
}

TEST(StrategyCache, AllStrategiesIdenticalOnRing)
{
    const Topology topo = Topology::ring(12);
    for (const auto &name : kStrategies) {
        for (std::uint64_t seed : {3u, 17u}) {
            expectCacheInvariant(
                name, qaoaFromGraph(randomGraph(8, 0.4, seed)), topo);
        }
        expectCacheInvariant(name, bernsteinVazirani(8), topo);
    }
}

TEST(StrategyCache, AllStrategiesIdenticalOnGrid)
{
    const Topology topo = Topology::grid(12);
    for (const auto &name : kStrategies) {
        for (std::uint64_t seed : {5u, 23u}) {
            expectCacheInvariant(
                name, qaoaFromGraph(randomGraph(10, 0.4, seed)), topo);
        }
        expectCacheInvariant(name, bernsteinVazirani(10), topo);
    }
}

TEST(StrategyCache, AllStrategiesIdenticalOnHeavyHex)
{
    const Topology topo = Topology::heavyHex65();
    for (const auto &name : kStrategies) {
        expectCacheInvariant(
            name, qaoaFromGraph(randomGraph(16, 0.3, 7)), topo);
        // The deep hardware-native workload itself.
        expectCacheInvariant(name, qaoaHeavyHex(16), topo);
    }
}

TEST(StrategyCache, ExhaustiveIdenticalOnSmallCircuits)
{
    // ec recompiles n^2 candidates per committed pair; keep it small
    // but cover both the shared-context candidate loop and the final
    // compile.
    expectCacheInvariant("ec", bernsteinVazirani(6), Topology::grid(6));
    expectCacheInvariant(
        "ec", qaoaFromGraph(randomGraph(6, 0.5, 13)), Topology::grid(6));
}

TEST(StrategyCache, LookaheadOffAlsoIdentical)
{
    // lookahead 0 takes a different field-fetch path in the router.
    const Topology topo = Topology::grid(9);
    for (const auto &name : kStrategies) {
        expectCacheInvariant(
            name, qaoaFromGraph(randomGraph(9, 0.4, 41)), topo,
            /*lookahead=*/0.0);
    }
}

} // namespace
} // namespace qompress
