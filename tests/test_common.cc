/**
 * @file
 * Unit tests for the common utilities: RNG, strings, tables, errors.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/error.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "common/table.hh"

namespace qompress {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= (a() != b());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, NextUintRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextUint(17), 17u);
}

TEST(Rng, NextIntInclusiveRange)
{
    Rng rng(7);
    std::set<int> seen;
    for (int i = 0; i < 500; ++i) {
        const int v = rng.nextInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, NextDoubleUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(11);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextGaussian();
        sum += v;
        sum2 += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(13);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
    rng.shuffle(v);
    std::set<int> s(v.begin(), v.end());
    EXPECT_EQ(s.size(), 8u);
}

TEST(Rng, SampleIsSubset)
{
    Rng rng(15);
    const auto s = rng.sample(10, 4);
    EXPECT_EQ(s.size(), 4u);
    std::set<int> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 4u);
    for (int v : s) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 10);
    }
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("q%d:%s", 3, "x"), "q3:x");
    EXPECT_EQ(format("%.2f", 1.5), "1.50");
}

TEST(Strings, JoinAndSplit)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
}

TEST(Table, AlignedOutputContainsCells)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvEscapesQuotesAndCommas)
{
    TablePrinter t({"a"});
    t.addRow({"x,y\"z"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\"\"z\""), std::string::npos);
}

TEST(Table, RowArityMismatchPanics)
{
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Errors, FatalAndPanicCarryMessages)
{
    try {
        QFATAL("bad input ", 42);
        FAIL() << "should have thrown";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad input 42"),
                  std::string::npos);
    }
    EXPECT_THROW(QPANIC("boom"), PanicError);
    EXPECT_NO_THROW(QPANIC_IF(false, "no"));
    EXPECT_THROW(QPANIC_IF(true, "yes"), PanicError);
}

} // namespace
} // namespace qompress
