/**
 * @file
 * Tests for the optimal-control substrate: matrix algebra, the
 * transmon Hamiltonian, GRAPE gradients and convergence, and the
 * duration-minimization loop.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pulse/duration_search.hh"
#include "pulse/grape.hh"
#include "pulse/hamiltonian.hh"
#include "pulse/matrix.hh"
#include "pulse/targets.hh"

namespace qompress {
namespace {

TEST(CMatrixTest, BasicAlgebra)
{
    CMatrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 3.0;
    a(1, 1) = 4.0;
    const CMatrix i = CMatrix::identity(2);
    const CMatrix prod = a * i;
    EXPECT_NEAR(std::abs(prod(0, 1) - CMatrix::Scalar(2.0)), 0.0, 1e-14);
    const CMatrix sum = a + a;
    EXPECT_NEAR(std::abs(sum(1, 0) - CMatrix::Scalar(6.0)), 0.0, 1e-14);
    EXPECT_NEAR(std::abs(a.trace() - CMatrix::Scalar(5.0)), 0.0, 1e-14);
}

TEST(CMatrixTest, DaggerConjugates)
{
    CMatrix a(2, 2);
    a(0, 1) = CMatrix::Scalar(0.0, 1.0);
    const CMatrix d = a.dagger();
    EXPECT_NEAR(std::abs(d(1, 0) - CMatrix::Scalar(0.0, -1.0)), 0.0,
                1e-14);
}

TEST(CMatrixTest, KronDimensions)
{
    const CMatrix a = CMatrix::identity(2);
    const CMatrix b = CMatrix::identity(3);
    const CMatrix k = CMatrix::kron(a, b);
    EXPECT_EQ(k.rows(), 6);
    EXPECT_NEAR(std::abs(k.trace() - CMatrix::Scalar(6.0)), 0.0, 1e-14);
}

TEST(Expm, DiagonalMatrix)
{
    CMatrix a(2, 2);
    a(0, 0) = 1.0;
    a(1, 1) = 2.0;
    const CMatrix e = expm(a);
    EXPECT_NEAR(std::abs(e(0, 0) - CMatrix::Scalar(std::exp(1.0))), 0.0,
                1e-10);
    EXPECT_NEAR(std::abs(e(1, 1) - CMatrix::Scalar(std::exp(2.0))), 0.0,
                1e-10);
    EXPECT_NEAR(std::abs(e(0, 1)), 0.0, 1e-12);
}

TEST(Expm, PauliXRotation)
{
    // exp(-i theta X / 2) = cos(theta/2) I - i sin(theta/2) X.
    const double theta = 0.7;
    CMatrix x(2, 2);
    x(0, 1) = 1.0;
    x(1, 0) = 1.0;
    const CMatrix e = expm(x * CMatrix::Scalar(0.0, -theta / 2));
    EXPECT_NEAR(std::abs(e(0, 0) - CMatrix::Scalar(std::cos(theta / 2))),
                0.0, 1e-10);
    EXPECT_NEAR(
        std::abs(e(0, 1) - CMatrix::Scalar(0.0, -std::sin(theta / 2))),
        0.0, 1e-10);
    EXPECT_TRUE(e.isUnitary());
}

TEST(Hamiltonian, SingleTransmonShape)
{
    const TransmonSystem sys({2}, 1);
    EXPECT_EQ(sys.dim(), 3);
    EXPECT_EQ(sys.logicalDim(), 2);
    EXPECT_EQ(sys.controls().size(), 2u);
    // Rotating frame of transmon 1: drift has zero 0-1 splitting and
    // a nonzero anharmonic shift on level 2.
    EXPECT_NEAR(std::abs(sys.drift()(1, 1)), 0.0, 1e-12);
    EXPECT_GT(std::abs(sys.drift()(2, 2)), 0.1);
}

TEST(Hamiltonian, TwoTransmonShape)
{
    const TransmonSystem sys({4, 2}, 1);
    EXPECT_EQ(sys.dim(), 5 * 3);
    EXPECT_EQ(sys.logicalDim(), 8);
    EXPECT_EQ(sys.controls().size(), 4u);
    // Coupling term present: off-diagonal |10><01| element.
    const int idx10 = 1 * 3 + 0;
    const int idx01 = 0 * 3 + 1;
    EXPECT_GT(std::abs(sys.drift()(idx10, idx01)), 1e-4);
}

TEST(Hamiltonian, LogicalIndexMapping)
{
    const TransmonSystem sys({4, 2}, 1);
    // Full space is 5 x 3; logical is 4 x 2.
    EXPECT_TRUE(sys.isLogicalIndex(0));
    EXPECT_TRUE(sys.isLogicalIndex(sys.logicalToFull(7)));
    // Guard level of transmon 2 (digit 2).
    EXPECT_FALSE(sys.isLogicalIndex(2));
    // Guard level of transmon 1 (digit 4).
    EXPECT_FALSE(sys.isLogicalIndex(4 * 3 + 0));
}

TEST(Hamiltonian, PropagatorsAreUnitary)
{
    const TransmonSystem sys({2}, 1);
    std::vector<int> dims;
    const CMatrix target = namedTarget("X", dims);
    GrapeOptions opts;
    GrapeOptimizer grape(sys, target, 10.0, 5, opts);
    std::vector<std::vector<double>> controls(
        2, std::vector<double>(5, 0.1));
    for (const auto &u : grape.propagators(controls))
        EXPECT_TRUE(u.isUnitary(1e-8));
    EXPECT_TRUE(grape.totalUnitary(controls).isUnitary(1e-7));
}

TEST(Targets, AllNamedTargetsAreUnitary)
{
    for (const auto &name : namedTargetList()) {
        std::vector<int> dims;
        const CMatrix t = namedTarget(name, dims);
        EXPECT_TRUE(t.isUnitary(1e-12)) << name;
        int d = 1;
        for (int x : dims)
            d *= x;
        EXPECT_EQ(t.rows(), d) << name;
    }
}

TEST(Targets, Cx0FlipsEncodedTarget)
{
    std::vector<int> dims;
    const CMatrix t = namedTarget("CX0", dims);
    // |2> = (q0=1, q1=0) -> |3>.
    EXPECT_NEAR(std::abs(t(3, 2) - CMatrix::Scalar(1.0)), 0.0, 1e-14);
    EXPECT_NEAR(std::abs(t(0, 0) - CMatrix::Scalar(1.0)), 0.0, 1e-14);
}

TEST(Targets, EncMatchesPaperMapping)
{
    std::vector<int> dims;
    const CMatrix t = namedTarget("ENC", dims);
    // (q0=1, q1=1): input index 1*2+1 = 3 -> output (3, 0) = 6.
    EXPECT_NEAR(std::abs(t(6, 3) - CMatrix::Scalar(1.0)), 0.0, 1e-14);
}

TEST(Grape, GradientMatchesFiniteDifference)
{
    const TransmonSystem sys({2}, 1);
    std::vector<int> dims;
    const CMatrix target = namedTarget("X", dims);
    GrapeOptions opts;
    opts.leakageWeight = 0.2;
    GrapeOptimizer grape(sys, target, 12.0, 4, opts);

    std::vector<std::vector<double>> controls(
        2, std::vector<double>(4, 0.0));
    controls[0] = {0.05, -0.08, 0.11, 0.02};
    controls[1] = {-0.03, 0.07, -0.01, 0.09};

    auto objective = [&](const std::vector<std::vector<double>> &c) {
        double f = 0.0, l = 0.0;
        grape.evaluate(c, f, l);
        return (1.0 - f) + opts.leakageWeight * l;
    };

    // Reconstruct the analytic gradient through one optimizer step is
    // awkward; instead compare a directional finite difference of the
    // objective against the same computed via evaluate() on perturbed
    // controls, using the gradient exposed indirectly by runFrom with
    // zero iterations. We approximate by numeric two-sided difference
    // on a few coordinates and require the optimizer to reduce J.
    const double j0 = objective(controls);
    GrapeOptions few = opts;
    few.maxIterations = 40;
    few.targetFidelity = 1.1; // never early-stop
    GrapeOptimizer short_run(sys, target, 12.0, 4, few);
    const GrapeResult res = short_run.runFrom(controls);
    double f1 = 0.0, l1 = 0.0;
    short_run.evaluate(res.controls, f1, l1);
    const double j1 = (1.0 - f1) + opts.leakageWeight * l1;
    EXPECT_LT(j1, j0); // gradient descent actually descends
}

TEST(Grape, ConvergesToXGate)
{
    const TransmonSystem sys({2}, 1);
    std::vector<int> dims;
    const CMatrix target = namedTarget("X", dims);
    GrapeOptions opts;
    opts.maxIterations = 600;
    opts.targetFidelity = 0.995;
    opts.learningRate = 0.01;
    GrapeOptimizer grape(sys, target, 40.0, 16, opts);
    const GrapeResult res = grape.run();
    EXPECT_TRUE(res.converged)
        << "fidelity reached only " << res.fidelity;
    EXPECT_GE(res.fidelity, 0.995);
    // Controls respect the amplitude bound.
    for (const auto &row : res.controls)
        for (double v : row)
            EXPECT_LE(std::abs(v), sys.maxAmplitude() + 1e-12);
}

TEST(Grape, ConvergesToSwapInOnQuquart)
{
    const TransmonSystem sys({4}, 1);
    std::vector<int> dims;
    const CMatrix target = namedTarget("SWAPin", dims);
    GrapeOptions opts;
    opts.maxIterations = 500;
    opts.targetFidelity = 0.99;
    opts.learningRate = 0.01;
    // Qudit transitions sit at multiples of the 330 MHz anharmonicity
    // away from the rotating-frame carrier, so segments must resolve
    // sub-nanosecond oscillations (dt = 0.5 ns here).
    GrapeOptimizer grape(sys, target, 90.0, 180, opts);
    const GrapeResult res = grape.run();
    EXPECT_GE(res.fidelity, 0.9)
        << "SWAPin optimization made no progress";
}

TEST(DurationSearch, ShrinksWhileFeasible)
{
    const TransmonSystem sys({2}, 1);
    std::vector<int> dims;
    const CMatrix target = namedTarget("X", dims);
    DurationSearchOptions opts;
    opts.initialDurationNs = 60.0;
    opts.shrinkFactor = 0.7;
    opts.maxRounds = 3;
    opts.grape.maxIterations = 300;
    opts.grape.targetFidelity = 0.99;
    opts.grape.learningRate = 0.01;
    const DurationSearchResult res = minimizeDuration(sys, target, opts);
    ASSERT_FALSE(res.rounds.empty());
    EXPECT_GT(res.bestDurationNs, 0.0);
    EXPECT_GE(res.bestFidelity, 0.99);
    // Durations strictly decrease across rounds.
    for (std::size_t i = 1; i < res.rounds.size(); ++i)
        EXPECT_LT(res.rounds[i].durationNs, res.rounds[i - 1].durationNs);
}

} // namespace
} // namespace qompress
