/**
 * @file
 * The test wall behind the artifact serialization format and the
 * ArtifactStore's crash-recovery contract.
 *
 * Three walls:
 *  - Round-trip: decode(encode(r)) is BIT-identical to r -- every
 *    PhysGate field, every raw double bit (-0.0, denormals, infinities
 *    and NaN payloads included), metrics, compressions, both layouts --
 *    for real compiler output (every standard strategy x ring/grid/
 *    heavyHex65 x fixed/parameterized circuits) and for 500 seeded
 *    random structural shapes no compiler would ever emit.
 *  - Corruption: every truncation boundary, every single-bit flip,
 *    wrong magic/version, and hostile declared lengths (CRC patched so
 *    the parser-level guard is what's exercised) must surface as a
 *    structured FatalError -- never PanicError, a crash, or an
 *    allocation the input's size does not justify.
 *  - Crash recovery: an ArtifactStore log severed mid-append (at every
 *    byte of the torn frame) reopens to exactly the intact prefix, and
 *    stays appendable.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "circuits/bv.hh"
#include "circuits/registry.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "ir/serialize.hh"
#include "service/artifact_store.hh"
#include "service/compiler_service.hh"
#include "strategies/strategy.hh"

namespace qompress {
namespace {

// ------------------------------------------------------------------
// Bit-exact comparison (NaN-safe: == would reject NaN == NaN)
// ------------------------------------------------------------------

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

bool
bitEq(double a, double b)
{
    return bitsOf(a) == bitsOf(b);
}

::testing::AssertionResult
bitIdentical(const CompileResult &a, const CompileResult &b)
{
    const CompiledCircuit &ca = a.compiled;
    const CompiledCircuit &cb = b.compiled;
    if (ca.name() != cb.name())
        return ::testing::AssertionFailure() << "names differ";
    for (const bool final_ : {false, true}) {
        const Layout &la = final_ ? ca.finalLayout() : ca.initialLayout();
        const Layout &lb = final_ ? cb.finalLayout() : cb.initialLayout();
        if (la.numQubits() != lb.numQubits() ||
            la.numUnits() != lb.numUnits())
            return ::testing::AssertionFailure() << "layout shape differs";
        for (QubitId q = 0; q < la.numQubits(); ++q)
            if (la.slotOf(q) != lb.slotOf(q))
                return ::testing::AssertionFailure()
                       << (final_ ? "final" : "initial") << " layout slot "
                       << q << " differs";
    }
    if (ca.numGates() != cb.numGates())
        return ::testing::AssertionFailure() << "gate counts differ";
    for (int i = 0; i < ca.numGates(); ++i) {
        const PhysGate &x = ca.gates()[i];
        const PhysGate &y = cb.gates()[i];
        if (x.cls != y.cls || x.slots != y.slots ||
            x.logical != y.logical || x.logical2 != y.logical2 ||
            !bitEq(x.param, y.param) || !bitEq(x.param2, y.param2) ||
            x.isRouting != y.isRouting ||
            x.sourceGate != y.sourceGate ||
            x.sourceGate2 != y.sourceGate2 ||
            !bitEq(x.start, y.start) ||
            !bitEq(x.duration, y.duration) ||
            !bitEq(x.fidelity, y.fidelity))
            return ::testing::AssertionFailure()
                   << "gate " << i << " differs";
    }
    const Metrics &ma = a.metrics;
    const Metrics &mb = b.metrics;
    if (!bitEq(ma.gateEps, mb.gateEps) ||
        !bitEq(ma.coherenceEps, mb.coherenceEps) ||
        !bitEq(ma.totalEps, mb.totalEps) ||
        !bitEq(ma.durationNs, mb.durationNs) ||
        ma.numGates != mb.numGates ||
        ma.numRoutingGates != mb.numRoutingGates ||
        ma.numTwoUnitGates != mb.numTwoUnitGates ||
        ma.numEncodedUnits != mb.numEncodedUnits ||
        ma.classHistogram != mb.classHistogram ||
        !bitEq(ma.qubitTimeNs, mb.qubitTimeNs) ||
        !bitEq(ma.ququartTimeNs, mb.ququartTimeNs))
        return ::testing::AssertionFailure() << "metrics differ";
    if (a.compressions != b.compressions)
        return ::testing::AssertionFailure() << "compressions differ";
    return ::testing::AssertionSuccess();
}

// ------------------------------------------------------------------
// Generators
// ------------------------------------------------------------------

/** Any of the 2^64 bit patterns: NaNs, infinities, denormals, -0.0. */
double
rawDouble(Rng &rng)
{
    const std::uint64_t b = rng();
    double v;
    std::memcpy(&v, &b, sizeof v);
    return v;
}

Layout
randomLayout(Rng &rng, int nq, int nu)
{
    Layout l(nq, nu);
    std::vector<SlotId> slots(static_cast<std::size_t>(nu) * 2);
    std::iota(slots.begin(), slots.end(), 0);
    rng.shuffle(slots);
    std::size_t next = 0;
    for (QubitId q = 0; q < nq; ++q)
        if (rng.nextBool(0.8)) // some qubits stay unmapped
            l.place(q, slots[next++]);
    return l;
}

/** A structurally random CompileResult no compiler would emit --
 *  the point is to fuzz the codec, not the pipeline. */
CompileResult
randomResult(Rng &rng)
{
    const int nq = rng.nextInt(0, 6);
    const int nu = rng.nextInt(nq > 0 ? (nq + 1) / 2 : 1, 8);
    std::string name;
    for (int i = rng.nextInt(0, 12); i > 0; --i)
        name.push_back(static_cast<char>(rng.nextInt(0, 255)));
    CompiledCircuit cc(randomLayout(rng, nq, nu), name);
    cc.setFinalLayout(randomLayout(rng, nq, nu));

    const int ngates = rng.nextInt(0, 32);
    for (int i = 0; i < ngates; ++i) {
        PhysGate g;
        g.cls = static_cast<PhysGateClass>(rng.nextUint(
            static_cast<std::uint64_t>(PhysGateClass::NumClasses)));
        g.logical = static_cast<GateType>(
            rng.nextInt(0, static_cast<int>(GateType::CCX)));
        g.logical2 = static_cast<GateType>(
            rng.nextInt(0, static_cast<int>(GateType::CCX)));
        for (int s = rng.nextInt(0, 4); s > 0; --s)
            g.slots.push_back(rng.nextInt(-1, 1 << 20));
        g.param = rawDouble(rng);
        g.param2 = rawDouble(rng);
        g.isRouting = rng.nextBool();
        g.sourceGate = rng.nextInt(-1, 1 << 20);
        g.sourceGate2 = rng.nextInt(-1, 1 << 20);
        g.start = rawDouble(rng);
        g.duration = rawDouble(rng);
        g.fidelity = rawDouble(rng);
        cc.add(std::move(g));
    }

    CompileResult res;
    res.compiled = std::move(cc);
    res.metrics.gateEps = rawDouble(rng);
    res.metrics.coherenceEps = rawDouble(rng);
    res.metrics.totalEps = rawDouble(rng);
    res.metrics.durationNs = rawDouble(rng);
    res.metrics.numGates = rng.nextInt(-1, 1 << 20);
    res.metrics.numRoutingGates = rng.nextInt(-1, 1 << 20);
    res.metrics.numTwoUnitGates = rng.nextInt(-1, 1 << 20);
    res.metrics.numEncodedUnits = rng.nextInt(-1, 1 << 20);
    for (int i = rng.nextInt(0, 8); i > 0; --i)
        res.metrics.classHistogram.push_back(rng.nextInt(-5, 1 << 20));
    res.metrics.qubitTimeNs = rawDouble(rng);
    res.metrics.ququartTimeNs = rawDouble(rng);
    for (int i = rng.nextInt(0, 6); i > 0; --i)
        res.compressions.push_back(
            Compression{rng.nextInt(0, 64), rng.nextInt(0, 64)});
    return res;
}

/** A tiny handcrafted result with a known byte layout (name "t",
 *  2 qubits on 2 units, one gate) for offset-precise tampering. */
CompileResult
tinyResult()
{
    Layout init(2, 2);
    init.place(0, 0);
    init.place(1, 3);
    Layout fin(2, 2);
    fin.place(0, 3);
    fin.place(1, 0);
    CompiledCircuit cc(init, "t");
    cc.setFinalLayout(fin);
    PhysGate g;
    g.cls = PhysGateClass::CxBareBare;
    g.slots = {0, 3};
    g.logical = GateType::CX;
    g.param = -0.0;
    g.start = 1.5;
    g.duration = 251.0;
    g.fidelity = 0.995;
    cc.add(g);
    CompileResult res;
    res.compiled = std::move(cc);
    res.metrics.numGates = 1;
    res.compressions.push_back(Compression{0, 1});
    return res;
}

/** Recompute the header CRC over the (possibly tampered) payload so
 *  corruption tests exercise the parser's own guards, not just the
 *  checksum. */
void
patchCrc(std::vector<std::uint8_t> &rec)
{
    ASSERT_GE(rec.size(), kArtifactHeaderBytes);
    const std::uint32_t c =
        crc32(rec.data() + kArtifactHeaderBytes,
              rec.size() - kArtifactHeaderBytes);
    for (int i = 0; i < 4; ++i)
        rec[16 + i] = static_cast<std::uint8_t>(c >> (8 * i));
}

void
pokeU64(std::vector<std::uint8_t> &rec, std::size_t off, std::uint64_t v)
{
    ASSERT_LE(off + 8, rec.size());
    for (int i = 0; i < 8; ++i)
        rec[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/** Wrap a hand-built payload in a valid header (magic, version,
 *  length, CRC) so only the payload-level validation can object. */
std::vector<std::uint8_t>
wrapPayload(const ByteWriter &payload)
{
    ByteWriter rec;
    rec.u32(kArtifactMagic);
    rec.u32(kArtifactFormatVersion);
    rec.u64(payload.size());
    rec.u32(crc32(payload.data().data(), payload.size()));
    rec.bytes(payload.data().data(), payload.size());
    return rec.take();
}

std::string
tempStorePath(const char *tag)
{
    const std::string path =
        ::testing::TempDir() + "qompress_" + tag + "_store.log";
    std::remove(path.c_str());
    return path;
}

// ------------------------------------------------------------------
// Round-trip
// ------------------------------------------------------------------

TEST(SerializeRoundTrip, EveryStrategyTopologyAndCircuit)
{
    const GateLibrary lib;
    const CompilerConfig cfg;

    std::vector<Circuit> circuits;
    circuits.push_back(bernsteinVazirani(8));
    circuits.push_back(benchmarkFamily("qaoa_random").make(8));
    // A parameterized circuit whose angles stress the raw-bit
    // encoding: -0.0 and a denormal survive only an exact codec
    // (the test_ir -0.0 lesson).
    Circuit special(8, "special_angles");
    special.h(0);
    special.rz(-0.0, 0);
    special.rx(5e-324, 1); // smallest positive denormal
    special.ry(0.375, 2);
    special.cx(0, 1);
    special.cx(2, 3);
    circuits.push_back(special);

    std::vector<Topology> topos;
    topos.push_back(Topology::ring(8));
    topos.push_back(Topology::grid(8));
    topos.push_back(Topology::heavyHex65());

    for (const auto &strat : standardStrategies()) {
        for (const auto &topo : topos) {
            for (const auto &circuit : circuits) {
                const CompileResult direct =
                    strat->compile(circuit, topo, lib, cfg);
                const std::vector<std::uint8_t> rec =
                    encodeCompileResult(direct);
                const CompileResult back = decodeCompileResult(rec);
                EXPECT_TRUE(bitIdentical(direct, back))
                    << strat->name() << " on " << topo.name() << " / "
                    << circuit.name();
            }
        }
    }
}

TEST(SerializeRoundTrip, SpecialDoubleBitPatterns)
{
    CompileResult res = tinyResult();
    auto &g = res.compiled.mutableGates()[0];
    g.param = -0.0;
    g.param2 = 5e-324; // denormal
    g.start = std::numeric_limits<double>::infinity();
    g.duration = -std::numeric_limits<double>::infinity();
    g.fidelity = std::numeric_limits<double>::quiet_NaN();
    res.metrics.qubitTimeNs = -0.0;
    res.metrics.ququartTimeNs =
        std::numeric_limits<double>::denorm_min();

    const CompileResult back =
        decodeCompileResult(encodeCompileResult(res));
    EXPECT_TRUE(bitIdentical(res, back));
    // Spell out the sensitive ones: 0.0 == -0.0 under operator==, so
    // bitIdentical alone passing is not evidence the sign survived.
    EXPECT_EQ(bitsOf(back.compiled.gates()[0].param), bitsOf(-0.0));
    EXPECT_NE(bitsOf(back.compiled.gates()[0].param), bitsOf(0.0));
    EXPECT_TRUE(std::isnan(back.compiled.gates()[0].fidelity));
}

TEST(SerializeRoundTrip, Fuzz500StructuralShapes)
{
    Rng rng(0xC0FFEEu);
    for (int i = 0; i < 500; ++i) {
        const CompileResult res = randomResult(rng);
        const std::vector<std::uint8_t> rec = encodeCompileResult(res);
        const CompileResult back = decodeCompileResult(rec);
        ASSERT_TRUE(bitIdentical(res, back)) << "fuzz shape " << i;
    }
}

TEST(SerializeRoundTrip, ArtifactKeyRoundTrips)
{
    ByteWriter w;
    const ArtifactKey key{0x0123456789abcdefULL, 42, 0, ~0ULL, "eqm"};
    encodeArtifactKey(w, key);
    ByteReader r(w.data().data(), w.size());
    EXPECT_TRUE(decodeArtifactKey(r) == key);
    EXPECT_TRUE(r.atEnd());
}

// ------------------------------------------------------------------
// Corruption injection
// ------------------------------------------------------------------

TEST(SerializeCorruption, EveryTruncationBoundaryIsFatal)
{
    const std::vector<std::uint8_t> rec =
        encodeCompileResult(tinyResult());
    for (std::size_t n = 0; n < rec.size(); ++n) {
        try {
            decodeCompileResult(rec.data(), n);
            FAIL() << "prefix of " << n << " bytes decoded";
        } catch (const FatalError &) {
            // structured failure -- the only acceptable outcome
        } catch (...) {
            FAIL() << "prefix of " << n
                   << " bytes threw something other than FatalError";
        }
    }
}

TEST(SerializeCorruption, EverySingleBitFlipIsFatal)
{
    // Any one-bit flip lands in the magic, the version, the length,
    // the CRC, or the payload; each is guarded (the payload by the
    // checksum), so every flip must produce a FatalError.
    const std::vector<std::uint8_t> rec =
        encodeCompileResult(tinyResult());
    for (std::size_t byte = 0; byte < rec.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<std::uint8_t> bad = rec;
            bad[byte] ^= static_cast<std::uint8_t>(1u << bit);
            try {
                decodeCompileResult(bad);
                FAIL() << "flip at byte " << byte << " bit " << bit
                       << " decoded";
            } catch (const FatalError &) {
            } catch (...) {
                FAIL() << "flip at byte " << byte << " bit " << bit
                       << " threw something other than FatalError";
            }
        }
    }
}

TEST(SerializeCorruption, WrongMagicAndVersionAreFatal)
{
    std::vector<std::uint8_t> rec = encodeCompileResult(tinyResult());
    std::vector<std::uint8_t> bad = rec;
    bad[0] ^= 0xff;
    EXPECT_THROW(decodeCompileResult(bad), FatalError);

    bad = rec;
    bad[4] = 99; // future format version
    EXPECT_THROW(decodeCompileResult(bad), FatalError);
}

TEST(SerializeCorruption, OversizedDeclaredLengthsDoNotAllocate)
{
    // tinyResult's known layout: header (20) | name u64 len at 20 |
    // "t" at 28 | initial layout (8 + 2*4 = 16) at 29 | final at 45 |
    // gate count u64 at 61. Tamper each length to something enormous,
    // re-patch the CRC so the checksum passes, and demand the
    // parser's own bounds guard reject it -- before any allocation a
    // hostile length could command.
    const std::vector<std::uint8_t> rec =
        encodeCompileResult(tinyResult());

    std::vector<std::uint8_t> bad = rec;
    pokeU64(bad, 20, 1ULL << 60); // name length
    patchCrc(bad);
    EXPECT_THROW(decodeCompileResult(bad), FatalError);

    bad = rec;
    pokeU64(bad, 61, 1ULL << 60); // gate count
    patchCrc(bad);
    EXPECT_THROW(decodeCompileResult(bad), FatalError);

    // Header payload length disagreeing with the buffer (both ways).
    bad = rec;
    pokeU64(bad, 8, bad.size()); // claims more than present
    EXPECT_THROW(decodeCompileResult(bad), FatalError);
    bad = rec;
    pokeU64(bad, 8, 1); // claims less -> trailing garbage
    EXPECT_THROW(decodeCompileResult(bad), FatalError);
}

TEST(SerializeCorruption, HostilePayloadFieldsAreFatalNotPanic)
{
    // Hand-built payloads that pass the checksum but violate payload
    // invariants. Each must be a FatalError from the decoder's own
    // validation -- notably the layout cases, which would QPANIC
    // inside Layout::place() if the decoder did not pre-validate.
    const auto expectFatal = [](const ByteWriter &payload,
                                const char *what) {
        const std::vector<std::uint8_t> rec = wrapPayload(payload);
        try {
            decodeCompileResult(rec);
            FAIL() << what << ": decoded";
        } catch (const FatalError &) {
        } catch (...) {
            FAIL() << what << ": threw something other than FatalError";
        }
    };

    const auto emptyLayout = [](ByteWriter &w) {
        w.i32(0); // numQubits
        w.i32(1); // numUnits
    };

    {
        ByteWriter w; // layout slot out of range
        w.str("x");
        w.i32(1);
        w.i32(1);
        w.i32(7); // only slots 0..1 exist
        expectFatal(w, "slot out of range");
    }
    {
        ByteWriter w; // duplicate slot occupancy
        w.str("x");
        w.i32(2);
        w.i32(2);
        w.i32(1);
        w.i32(1); // both qubits at slot 1
        expectFatal(w, "duplicate slot");
    }
    {
        ByteWriter w; // negative qubit count
        w.str("x");
        w.i32(-3);
        w.i32(1);
        expectFatal(w, "negative qubit count");
    }
    {
        ByteWriter w; // gate class out of range
        w.str("x");
        emptyLayout(w);
        emptyLayout(w);
        w.u64(1);
        w.u8(255); // cls
        expectFatal(w, "gate class");
    }
    {
        ByteWriter w; // logical gate type out of range
        w.str("x");
        emptyLayout(w);
        emptyLayout(w);
        w.u64(1);
        w.u8(0);   // cls = SqBare
        w.u8(200); // logical
        expectFatal(w, "logical type");
    }
    {
        ByteWriter w; // slot count beyond any physical gate's arity
        w.str("x");
        emptyLayout(w);
        emptyLayout(w);
        w.u64(1);
        w.u8(0);
        w.u8(0);
        w.u8(0);
        w.u8(0);  // routing flag
        w.u8(17); // nslots
        expectFatal(w, "slot count");
    }
    {
        ByteWriter w; // truncated mid-gate
        w.str("x");
        emptyLayout(w);
        emptyLayout(w);
        w.u64(1);
        w.u8(0);
        expectFatal(w, "truncated gate");
    }
}

// ------------------------------------------------------------------
// ArtifactStore: persistence + crash recovery
// ------------------------------------------------------------------

ArtifactKey
keyN(std::uint64_t n)
{
    return ArtifactKey{n, n * 31, n * 97, n * 131, "eqm"};
}

TEST(ArtifactStore, PutLoadRoundTripAndRestart)
{
    const std::string path = tempStorePath("roundtrip");
    Rng rng(7);
    std::vector<CompileResult> results;
    std::vector<std::vector<std::uint8_t>> blobs;
    for (int i = 0; i < 5; ++i) {
        results.push_back(randomResult(rng));
        blobs.push_back(encodeCompileResult(results.back()));
    }

    {
        ArtifactStore store(path);
        EXPECT_EQ(store.records(), 0u);
        for (int i = 0; i < 5; ++i)
            EXPECT_TRUE(store.put(keyN(i), blobs[i]));
        EXPECT_EQ(store.records(), 5u);
        EXPECT_EQ(store.deadRecords(), 0u);
        EXPECT_TRUE(store.contains(keyN(2)));
        EXPECT_FALSE(store.contains(keyN(99)));
    }

    // A fresh process on the same log sees every record, bit-intact.
    ArtifactStore store(path);
    EXPECT_EQ(store.records(), 5u);
    for (int i = 0; i < 5; ++i) {
        std::vector<std::uint8_t> blob;
        ASSERT_TRUE(store.load(keyN(i), blob));
        EXPECT_EQ(blob, blobs[i]);
        EXPECT_TRUE(
            bitIdentical(results[i], decodeCompileResult(blob)));
    }
    std::remove(path.c_str());
}

TEST(ArtifactStore, TornTailRecoversIntactPrefixAtEveryCut)
{
    const std::string path = tempStorePath("torntail");
    Rng rng(11);
    const std::vector<std::uint8_t> blob_a =
        encodeCompileResult(randomResult(rng));
    const std::vector<std::uint8_t> blob_b =
        encodeCompileResult(randomResult(rng));

    std::uint64_t size_after_a = 0;
    std::uint64_t size_after_b = 0;
    {
        ArtifactStore store(path);
        ASSERT_TRUE(store.put(keyN(1), blob_a));
        size_after_a = store.bytesOnDisk();
        ASSERT_TRUE(store.put(keyN(2), blob_b));
        size_after_b = store.bytesOnDisk();
    }

    // Sever the log at every byte inside the second frame (a crash
    // mid-append) and demand reopen recovers exactly record 1.
    for (std::uint64_t cut = size_after_a; cut < size_after_b; ++cut) {
        std::remove(path.c_str());
        {
            ArtifactStore build(path);
            ASSERT_TRUE(build.put(keyN(1), blob_a));
            ASSERT_TRUE(build.put(keyN(2), blob_b));
        }
        {
            std::FILE *f = std::fopen(path.c_str(), "r+");
            ASSERT_NE(f, nullptr);
            ASSERT_EQ(::ftruncate(::fileno(f),
                                  static_cast<off_t>(cut)),
                      0);
            std::fclose(f);
        }
        ArtifactStore store(path);
        EXPECT_EQ(store.records(), 1u) << "cut at " << cut;
        std::vector<std::uint8_t> blob;
        ASSERT_TRUE(store.load(keyN(1), blob)) << "cut at " << cut;
        EXPECT_EQ(blob, blob_a) << "cut at " << cut;
        EXPECT_FALSE(store.contains(keyN(2)));
        // ...and the recovered log accepts appends again.
        ASSERT_TRUE(store.put(keyN(2), blob_b));
        std::vector<std::uint8_t> back;
        ASSERT_TRUE(store.load(keyN(2), back));
        EXPECT_EQ(back, blob_b);
    }
    std::remove(path.c_str());
}

TEST(ArtifactStore, CorruptMiddleFrameDropsItAndTheTail)
{
    const std::string path = tempStorePath("midframe");
    Rng rng(13);
    const auto blob = encodeCompileResult(randomResult(rng));
    std::uint64_t first_end = 0;
    {
        ArtifactStore store(path);
        ASSERT_TRUE(store.put(keyN(1), blob));
        first_end = store.bytesOnDisk();
        ASSERT_TRUE(store.put(keyN(2), blob));
        ASSERT_TRUE(store.put(keyN(3), blob));
    }
    {
        // Flip one byte inside frame 2's body.
        std::FILE *f = std::fopen(path.c_str(), "r+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, static_cast<long>(first_end) + 20, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, static_cast<long>(first_end) + 20, SEEK_SET);
        std::fputc(c ^ 0xff, f);
        std::fclose(f);
    }
    ArtifactStore store(path);
    // An append-only log cannot trust anything past a bad frame.
    EXPECT_EQ(store.records(), 1u);
    EXPECT_TRUE(store.contains(keyN(1)));
    EXPECT_FALSE(store.contains(keyN(2)));
    EXPECT_FALSE(store.contains(keyN(3)));
    std::remove(path.c_str());
}

TEST(ArtifactStore, ForeignOrVersionBumpedHeaderStartsCold)
{
    const std::string path = tempStorePath("version");
    Rng rng(17);
    const auto blob = encodeCompileResult(randomResult(rng));
    {
        ArtifactStore store(path);
        ASSERT_TRUE(store.put(keyN(1), blob));
    }
    {
        std::FILE *f = std::fopen(path.c_str(), "r+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 4, SEEK_SET);
        std::fputc(0x7f, f); // foreign format version
        std::fclose(f);
    }
    ArtifactStore store(path);
    EXPECT_EQ(store.records(), 0u); // started cold, not guessed
    ASSERT_TRUE(store.put(keyN(1), blob));
    std::vector<std::uint8_t> back;
    EXPECT_TRUE(store.load(keyN(1), back));
    std::remove(path.c_str());
}

TEST(ArtifactStore, CompactDropsDeadRecords)
{
    const std::string path = tempStorePath("compact");
    Rng rng(19);
    std::vector<std::vector<std::uint8_t>> blobs;
    for (int i = 0; i < 4; ++i)
        blobs.push_back(encodeCompileResult(randomResult(rng)));

    ArtifactStore store(path);
    for (int round = 0; round < 3; ++round)
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(store.put(keyN(i), blobs[i]));
    EXPECT_EQ(store.records(), 4u);
    EXPECT_EQ(store.deadRecords(), 8u);
    const std::uint64_t before = store.bytesOnDisk();

    store.compact();
    EXPECT_EQ(store.records(), 4u);
    EXPECT_EQ(store.deadRecords(), 0u);
    EXPECT_LT(store.bytesOnDisk(), before);
    for (int i = 0; i < 4; ++i) {
        std::vector<std::uint8_t> blob;
        ASSERT_TRUE(store.load(keyN(i), blob));
        EXPECT_EQ(blob, blobs[i]);
    }

    // The compacted log must itself recover cleanly.
    ArtifactStore reopened(path);
    EXPECT_EQ(reopened.records(), 4u);
    std::remove(path.c_str());
}

TEST(ArtifactStore, ConcurrentPutsAndLoads)
{
    const std::string path = tempStorePath("concurrent");
    ArtifactStore store(path);
    Rng rng(23);
    std::vector<std::vector<std::uint8_t>> blobs;
    for (int i = 0; i < 16; ++i)
        blobs.push_back(encodeCompileResult(randomResult(rng)));

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&store, &blobs, t] {
            for (int i = 0; i < 16; ++i) {
                store.put(keyN(i), blobs[i]);
                std::vector<std::uint8_t> blob;
                if (store.load(keyN((i + t) % 16), blob))
                    EXPECT_FALSE(blob.empty());
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(store.records(), 16u);
    for (int i = 0; i < 16; ++i) {
        std::vector<std::uint8_t> blob;
        ASSERT_TRUE(store.load(keyN(i), blob));
        EXPECT_EQ(blob, blobs[i]);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace qompress
