/**
 * @file
 * Tests for the EPS metrics (paper section 6.1.1): gate-fidelity
 * product and worst-case coherence accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "compiler/pipeline.hh"

namespace qompress {
namespace {

const GateLibrary kLib;

TEST(Metrics, GateEpsIsFidelityProduct)
{
    Circuit c(2, "two_gates");
    c.h(0);
    c.cx(0, 1);
    const CompileResult res = compileWithPairs(
        c, Topology::line(2), kLib, {}, false);
    EXPECT_NEAR(res.metrics.gateEps, 0.999 * 0.99, 1e-12);
    EXPECT_EQ(res.metrics.numGates, 2);
    EXPECT_EQ(res.metrics.numTwoUnitGates, 1);
}

TEST(Metrics, CoherenceEpsBareQubits)
{
    // Two bare qubits alive for the whole circuit: coherence EPS =
    // exp(-2 T / T1_qubit).
    Circuit c(2, "coh");
    c.cx(0, 1);
    const CompileResult res = compileWithPairs(
        c, Topology::line(2), kLib, {}, false);
    const double t = res.metrics.durationNs;
    EXPECT_DOUBLE_EQ(t, kLib.duration(PhysGateClass::CxBareBare));
    EXPECT_NEAR(res.metrics.coherenceEps,
                std::exp(-2.0 * t / kLib.t1Qubit()), 1e-12);
    EXPECT_NEAR(res.metrics.qubitTimeNs, 2.0 * t, 1e-9);
    EXPECT_DOUBLE_EQ(res.metrics.ququartTimeNs, 0.0);
}

TEST(Metrics, CoherenceEpsEncodedPair)
{
    // A compressed pair spends the whole circuit in the ququart state:
    // coherence EPS = exp(-2 T / T1_ququart).
    Circuit c(2, "coh_enc");
    c.cx(0, 1);
    CompilerConfig cfg;
    cfg.chargeInitialEnc = false;
    const CompileResult res = compileWithPairs(
        c, Topology::line(2), kLib, {{0, 1}}, false, cfg);
    const double t = res.metrics.durationNs;
    EXPECT_DOUBLE_EQ(t, kLib.duration(PhysGateClass::CxInternal0));
    EXPECT_NEAR(res.metrics.coherenceEps,
                std::exp(-2.0 * t / kLib.t1Ququart()), 1e-12);
    EXPECT_NEAR(res.metrics.ququartTimeNs, 2.0 * t, 1e-9);
}

TEST(Metrics, TotalIsProduct)
{
    Circuit c(3, "prod");
    c.cx(0, 1);
    c.cx(1, 2);
    const CompileResult res = compileWithPairs(
        c, Topology::line(3), kLib, {}, false);
    EXPECT_NEAR(res.metrics.totalEps,
                res.metrics.gateEps * res.metrics.coherenceEps, 1e-15);
}

TEST(Metrics, BetterT1RaisesCoherence)
{
    Circuit c(4, "t1");
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    GateLibrary better = kLib;
    better.setT1(10.0 * kLib.t1Qubit(), 10.0 * kLib.t1Ququart());
    const CompileResult base = compileWithPairs(
        c, Topology::line(4), kLib, {{0, 1}}, false);
    const CompileResult boosted = compileWithPairs(
        c, Topology::line(4), better, {{0, 1}}, false);
    EXPECT_GT(boosted.metrics.coherenceEps, base.metrics.coherenceEps);
    // Gate EPS is unchanged by T1.
    EXPECT_NEAR(boosted.metrics.gateEps, base.metrics.gateEps, 1e-12);
}

TEST(Metrics, HistogramMatchesCircuit)
{
    Circuit c(2, "hist");
    c.h(0);
    c.h(1);
    c.cx(0, 1);
    const CompileResult res = compileWithPairs(
        c, Topology::line(2), kLib, {}, false);
    const auto &hist = res.metrics.classHistogram;
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::SqBare)], 2);
    EXPECT_EQ(hist[static_cast<int>(PhysGateClass::CxBareBare)], 1);
    int total = 0;
    for (int v : hist)
        total += v;
    EXPECT_EQ(total, res.metrics.numGates);
}

TEST(Metrics, EncodedUnitCountReported)
{
    Circuit c(4, "enc_count");
    c.cx(0, 1);
    c.cx(2, 3);
    const CompileResult res = compileWithPairs(
        c, Topology::grid(4), kLib, {{0, 1}}, false);
    EXPECT_EQ(res.metrics.numEncodedUnits, 1);
}

} // namespace
} // namespace qompress
